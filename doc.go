// Package repro reproduces "BSLD Threshold Driven Power Management Policy
// for HPC Centers" (Etinski, Corbalan, Labarta, Valero — IPDPS 2010): a
// power-aware EASY backfilling job scheduler for DVFS-enabled clusters
// that assigns each job the lowest CPU frequency keeping its predicted
// bounded slowdown under a threshold.
//
// The root package carries the benchmark harness regenerating every table
// and figure of the paper (bench_test.go); the implementation lives under
// internal/ (see DESIGN.md for the system inventory) and the runnable
// entry points under cmd/ and examples/.
//
// Parameter studies — the paper's headline results are sweeps over BSLD
// threshold × machine size × workload — run through internal/sweep: a
// declarative Grid expands to a deterministic ordered run list and a Pool
// executes it across all cores with byte-identical output regardless of
// worker count. The experiments suite, cmd/calibrate and the standalone
// cmd/sweep CLI (JSON/flag-defined grids, CSV or JSON results) all drive
// their simulations through that pool.
package repro
