// Package repro reproduces "BSLD Threshold Driven Power Management Policy
// for HPC Centers" (Etinski, Corbalan, Labarta, Valero — IPDPS 2010): a
// power-aware EASY backfilling job scheduler for DVFS-enabled clusters
// that assigns each job the lowest CPU frequency keeping its predicted
// bounded slowdown under a threshold.
//
// The root package carries the benchmark harness regenerating every table
// and figure of the paper (bench_test.go); the implementation lives under
// internal/ (see DESIGN.md for the system inventory) and the runnable
// entry points under cmd/ and examples/.
//
// Parameter studies — the paper's headline results are sweeps over BSLD
// threshold × machine size × workload — run through internal/sweep: a
// declarative Grid expands to a deterministic ordered run list and a Pool
// executes it across all cores with byte-identical output regardless of
// worker count. The experiments suite, cmd/calibrate and the standalone
// cmd/sweep CLI (JSON/flag-defined grids, CSV or JSON results) all drive
// their simulations through that pool.
//
// # Scenarios
//
// Every run flows through internal/scenario: a Spec (workload name or
// pre-built source, gear policy as data, machine size, platform
// overrides) compiles into an immutable, goroutine-safe Scenario — the
// workload resolved once into a shared arena (SWF logs parse once,
// presets generate once, streamed presets clone independent RNG cursors
// from one summed prototype), every default filled in, and a canonical
// SHA-256 content hash identifying the run. Compile once, Execute many:
// N goroutines executing one shared scenario produce bit-identical
// metrics.Results (stateful gear policies clone per execution through
// sched.PolicyCloner). runner.Run/BaselinePair remain as thin adapters
// over Compile+Execute for callers holding resolved objects; sweeps
// compile grid points through a shared Compiler so arenas dedup across
// cells; and cmd/schedd serves what-if queries over HTTP with an LRU
// result cache keyed by the scenario hash, in-flight coalescing of
// identical queries, a bounded simulation worker pool and graceful
// drain on shutdown. See examples/whatif for the pattern end to end.
//
// # Power control
//
// Cluster-level power management is a first-class layer over the
// per-job gear decision. sched.PowerController is the seam: a
// controller binds to the System, observes it, and actuates running
// jobs through SetGear at the end of every scheduling pass — composing
// with, not replacing, the per-job sched.GearPolicy (a policy that
// also implements the interface keeps its per-pass hook, e.g. the
// paper's §7 dynamic boost, and an explicit cluster controller runs
// after it: per-job boosting proposes, cluster-level enforcement
// disposes). Observation is O(1): nodepower.Meter maintains the
// instantaneous active draw and running energy integrals online from
// start/finish/regear events, differentially tested against the
// post-hoc nodepower.Evaluate replay. On this seam live
// altpolicy.UtilizationDriven (the utilization-adaptive gear floor)
// and altpolicy.PowerCap — closed-loop power capping: a velocity-form
// PI controller moves a continuous gear-ceiling level on the
// normalized cap error, clamping jobs to min(policy-chosen gear,
// ceiling) and restoring them as headroom returns, with per-job
// eco-mode consent (workload.Job.Eco, opted in via the workload
// filter's EcoUsers hook — user IDs or "*" for all — which
// workload.EcoSet applies uniformly to SWF logs and wgen presets,
// materialized or streamed). The controller is data in scenario.Spec
// (ControllerConfig: cap fraction, PI gains, eco-only), covered by the
// canonical hash, swept as a grid axis (sweep.Grid.CapFracs), tabled
// by the experiments suite (cap levels × BSLD thresholds), and served
// by cmd/schedd (cap tracking stats ride the what-if response). A
// controller-free or cap-disabled run is byte-identical to the
// pre-controller path, and a cap at peak draw never actuates — both
// pinned by determinism tests.
//
// # Scale
//
// The scheduler hot path is built for multi-million-job workloads (the
// wgen Million and TenMillion presets; BENCH_sched.json tracks the
// trajectory and CI's cmd/benchgate fails the build when any of the
// gated speedup ratios — EASY optimized/seed, conservative
// optimized/seed, conservative full-preset optimized/memmove and
// optimized/flatresv, the power-controller capped/off overhead — drops
// more than 20%, or the streamed replay's peak heap grows more than
// 20%, against it). For digging into a regression, cmd/bsldsim takes
// -cpuprofile/-memprofile and writes pprof profiles of a whole run
// (bench_test.go's benchmarks equally accept go test's own -cpuprofile).
// Eight properties keep the path fast and flat in memory:
//
//   - Streaming workloads: workload.JobSource streams jobs one at a time
//     end to end — wgen.Stream generates presets lazily from replayed
//     RNG cursors (byte-identical to the materialized Generate),
//     workload.SWFSource reads logs incrementally with the same filter
//     hooks, and combinators (Concat, Repeat, MergeByArrival, Scale,
//     Filter) compose scenarios without materializing them. The
//     scheduler (sched.System.SimulateSource, runner.Spec.Source) pulls
//     from the cursor, so a ten-million-job replay peaks below 20 MB
//     where the trace slice alone would cost ~920 MB; sweeps give every
//     worker an independent source instead of one shared slice.
//   - Streaming arrivals: the scheduler feeds arrivals lazily from the
//     source cursor, so the event heap holds only running-job
//     completions plus a single pending arrival — O(running jobs), not
//     O(trace).
//   - O(1) completion removal: the run list tombstones finished entries
//     by index and compacts lazily, preserving exact start-order
//     iteration (which the EASY shadow computation and the
//     profile-based variants replay deterministically).
//   - Interval placements: cluster.Alloc stores run-length intervals
//     (Runs []Run) instead of explicit processor ID slices — First Fit
//     packs a 1024-processor job into one 16-byte run — and the
//     nodepower tracker consumes the same intervals through
//     processor-indexed slices.
//   - Allocation-free steady state: the engine pools events, the
//     scheduler pools RunStates (with their Runs and Phases capacity),
//     cluster.AllocateInto refills a pooled allocation in place, the
//     queue backing stays anchored so arrival appends reuse it, and
//     metrics stream: without runner.Spec.KeepCollector the collector
//     folds Results online and holds no per-job records. A 1M-job EASY
//     replay runs at ~1.3M jobs/s with ~0.12 allocations per job.
//   - Log-time availability profile: internal/profile keeps its usage
//     deltas in a prefix-summed sorted tier plus a deferred-merge
//     pending tier (binary-searched point queries, append-only Add),
//     and bulk-loads the scheduler's incrementally maintained release
//     skyline in one pass — conservative backfilling's replanning is no
//     longer quadratic in profile size.
//   - Persistent replanning profile: the conservative/flexible variants
//     no longer rebuild the profile each pass. The base skyline persists
//     across passes (job starts, completions and gear switches apply
//     O(1) occupancy/credit deltas; expired and cancelling pairs fold
//     away during merges), reservations placed in earlier passes are
//     retained and reused verbatim up to the first queue position whose
//     replan could differ (the changed-prefix invariant: an untouched
//     base, the same job at the same position, planning inputs still in
//     the future, and the gear policy re-confirming its choice — for
//     policies declaring sched.EstMonotonePolicy, re-asking only the two
//     endpoints of the start interval). A pass pays one gear-policy
//     re-ask per retained reservation plus full replanning of the
//     changed suffix — no O(running) profile rebuild and no profile
//     queries for the reused prefix; conservative backfilling on the
//     Million preset runs 7.4x faster than the rebuild-per-pass path it
//     replaces (BENCH_sched.json, 40k jobs).
//   - Chunked release index: the (PlannedEnd, id)-sorted release
//     schedule — every running job's planned processor release, the
//     input to both the EASY shadow sweep and the replanning profile's
//     bulk loads — lives in a directory of sorted bounded chunks
//     (internal/sched/relindex.go) instead of one flat slice, so each
//     start, completion and gear switch costs a binary search plus a
//     single-chunk memmove rather than an O(running) shift. The slice
//     path survives behind Compat.SliceReleases as the differential
//     reference (sorted-slice oracle suite, FuzzReleaseIndex, pinned
//     shadow edge cases), and a release-schedule inconsistency now
//     surfaces as an error from Simulate instead of a panic.
//     Conservative backfilling over the flat profile tiers ran the FULL
//     Million preset at 72k jobs/s, 2.3x over the memmove path
//     (BENCH_sched.json).
//   - Chunked profile tiers: the persistent profile's own structures
//     follow the same idiom (internal/profile/skydex.go, resvindex.go).
//     The base skyline lives in a directory of bounded chunks holding
//     deltas with exact in-chunk prefix sums and conservative prefix
//     extrema, so EarliestStart's feasibility sweep skips whole chunks
//     whose extrema cannot cross the limit, inserts coalesce equal-time
//     deltas in one chunk memmove, and expiring history folds away
//     chunk-at-a-time; reservations live in a parallel chunked ordered
//     index that replaces the sorted-slice overlay, making
//     AddReservation and TruncateReservations log-time (a truncate
//     reprocesses at most min(suffix, prefix) journal entries, and
//     re-truncating an already-applied prefix is free). Queries resume:
//     a version-stamped memo keyed on the profile's base tier lets the
//     replanning loop's ascending EarliestStart calls re-enter the sweep
//     at the previous cursor — reservation-tier changes never invalidate
//     it (the overlay re-seeks per query), only base mutations and folds
//     bump the version. The flat tiers (pending buffer + skyline tree +
//     sorted reservation slices) survive behind Compat.FlatReservations
//     as the differential reference, pinned by a pairwise quick suite,
//     FuzzReservationTier and the compat fixtures. Conservative
//     backfilling runs the FULL Million preset at 218k jobs/s (2.8x
//     over the flat tiers) and the TenMillion preset at 195k jobs/s —
//     near-flat scaling to ten million jobs (BENCH_sched.json).
//
// The seed-era implementations remain available behind sched.Compat /
// sched.SeedCompat() purely as a benchmark reference; determinism
// regressions assert both paths produce identical schedules under every
// base policy and queue order, and TestGoldenArtifactCSVs pins every
// paper table and figure byte-for-byte against testdata/golden.
//
// # Static analysis
//
// The conventions the runtime spine cannot test — contracts between
// packages rather than behaviors of one run — are machine-checked by
// reprovet, a custom analyzer suite (internal/analysis) run three ways:
// as the driver test in internal/analysis under plain `go test ./...`,
// as `go run ./cmd/reprovet ./...` in CI (-json for machine-readable
// diagnostics), and per-analyzer against fixtures under
// internal/analysis/testdata/src. Four analyzers:
//
//   - retain: sched.Recorder / sched.GearObserver implementations must
//     not store a pooled *sched.RunState (or pooled memory reachable
//     from one — rs.Phases, rs.Alloc.Runs) into fields, elements or
//     globals: the scheduler recycles run states after JobFinished.
//   - hashcover: every scenario.Spec field must be folded into the
//     canonical content hash or allowlisted as result-neutral in the
//     hashedVia/hashNeutral declaration next to contentHash — adding a
//     Spec field without deciding its hash status fails the build.
//   - determinism: the deterministic core (sched, profile, sim, cluster,
//     scenario) must stay free of observed map iteration, wall-clock
//     time, the global math/rand source and goroutine spawns.
//   - srcerr: workload.JobSource drain loops must check Err(), and
//     error results must never be blank-discarded in non-test code.
//
// A finding is waived only by `//lint:<analyzer> <justification>` on the
// flagged line or the line above (determinism uses //lint:nondeterm);
// the justification is mandatory and its absence is itself reported.
package repro
