// Package repro reproduces "BSLD Threshold Driven Power Management Policy
// for HPC Centers" (Etinski, Corbalan, Labarta, Valero — IPDPS 2010): a
// power-aware EASY backfilling job scheduler for DVFS-enabled clusters
// that assigns each job the lowest CPU frequency keeping its predicted
// bounded slowdown under a threshold.
//
// The root package carries the benchmark harness regenerating every table
// and figure of the paper (bench_test.go); the implementation lives under
// internal/ (see DESIGN.md for the system inventory) and the runnable
// entry points under cmd/ and examples/.
//
// Parameter studies — the paper's headline results are sweeps over BSLD
// threshold × machine size × workload — run through internal/sweep: a
// declarative Grid expands to a deterministic ordered run list and a Pool
// executes it across all cores with byte-identical output regardless of
// worker count. The experiments suite, cmd/calibrate and the standalone
// cmd/sweep CLI (JSON/flag-defined grids, CSV or JSON results) all drive
// their simulations through that pool.
//
// # Scale
//
// The scheduler hot path is built for million-job traces (the wgen
// Million preset; BENCH_sched.json tracks the trajectory). Three
// properties keep it fast and flat in memory:
//
//   - Streaming arrivals: sched.System.Simulate feeds arrivals lazily
//     from the submit-sorted trace, so the event heap holds only
//     running-job completions plus a single pending arrival —
//     O(running jobs), not O(trace).
//   - O(1) completion removal: the run list tombstones finished entries
//     by index and compacts lazily, preserving exact start-order
//     iteration (which the EASY shadow computation and the
//     profile-based variants replay deterministically).
//   - Allocation-free steady state: the engine pools events behind
//     generation-counted handles, and per-pass scratch (shadow release
//     lists, queue filters, availability profiles) is reused across
//     passes.
//
// The seed-era implementations remain available behind sched.Compat /
// sched.SeedCompat() purely as a benchmark reference; determinism
// regressions assert both paths produce identical schedules under every
// base policy and queue order.
package repro
