// Package repro reproduces "BSLD Threshold Driven Power Management Policy
// for HPC Centers" (Etinski, Corbalan, Labarta, Valero — IPDPS 2010): a
// power-aware EASY backfilling job scheduler for DVFS-enabled clusters
// that assigns each job the lowest CPU frequency keeping its predicted
// bounded slowdown under a threshold.
//
// The root package carries the benchmark harness regenerating every table
// and figure of the paper (bench_test.go); the implementation lives under
// internal/ (see DESIGN.md for the system inventory) and the runnable
// entry points under cmd/ and examples/.
package repro
