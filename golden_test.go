package repro

// Golden regression tests: exact metric values for fixed seeds. Every
// layer of the pipeline is deterministic (seeded generators, totally
// ordered events), so any drift here means the scheduling, power or
// accounting semantics changed — recalibrate EXPERIMENTS.md if the change
// is intentional.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/wgen"
)

// goldenTolerance is loose enough to survive floating-point reassociation
// across Go releases but far tighter than any semantic change.
const goldenTolerance = 1e-10

func goldenRun(t *testing.T, policy bool) runner.Outcome {
	t.Helper()
	m := wgen.CTC()
	m.Jobs = 400
	tr, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	spec := runner.Spec{Trace: tr}
	if policy {
		gears := dvfs.PaperGearSet()
		pol, err := core.NewPolicy(core.Params{BSLDThreshold: 2, WQThreshold: 16},
			gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
		if err != nil {
			t.Fatal(err)
		}
		spec.Policy = pol
	}
	out, err := runner.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > goldenTolerance {
		t.Errorf("%s = %.12g, want %.12g", name, got, want)
	}
}

func TestGoldenBaselineCTC400(t *testing.T) {
	r := goldenRun(t, false).Results
	approx(t, "AvgBSLD", r.AvgBSLD, 1.05059226123)
	approx(t, "AvgWait", r.AvgWait, 104.162471004)
	approx(t, "CompEnergy", r.CompEnergy, 1.08987894797e8)
	if r.ReducedJobs != 0 {
		t.Errorf("ReducedJobs = %d, want 0", r.ReducedJobs)
	}
}

func TestGoldenPolicyCTC400(t *testing.T) {
	r := goldenRun(t, true).Results
	approx(t, "AvgBSLD", r.AvgBSLD, 2.16077057902)
	approx(t, "AvgWait", r.AvgWait, 1243.55565344)
	approx(t, "CompEnergy", r.CompEnergy, 7.10142596357e7)
	if r.ReducedJobs != 294 {
		t.Errorf("ReducedJobs = %d, want 294", r.ReducedJobs)
	}
}

// Golden baselines for every calibrated preset (400-job prefixes): the
// generator streams and the scheduling semantics are pinned together. A
// tolerance of 1e-10 passes float noise but fails any semantic drift.
func TestGoldenAllPresets(t *testing.T) {
	golden := map[string][3]float64{ // AvgBSLD, AvgWait, CompEnergy
		"CTC":         {1.050592261, 104.162471, 1.089878948e8},
		"SDSC":        {2.223299188, 1607.619254, 1.101470206e8},
		"SDSCBlue":    {1.437702914, 727.0844868, 4.673088275e8},
		"LLNLThunder": {1, 0, 1.007965528e9},
		"LLNLAtlas":   {1.027572151, 35.06091719, 5.328235202e9},
	}
	// These constants carry 10 significant digits, so compare at 1e-8.
	approx10 := func(name string, got, want float64) {
		t.Helper()
		if want == 0 {
			if got != 0 {
				t.Errorf("%s = %v, want 0", name, got)
			}
			return
		}
		if math.Abs(got-want)/math.Abs(want) > 1e-8 {
			t.Errorf("%s = %.12g, want %.12g", name, got, want)
		}
	}
	for _, m := range wgen.Presets() {
		m.Jobs = 400
		tr, err := wgen.Generate(m)
		if err != nil {
			t.Fatal(err)
		}
		out, err := runner.Run(runner.Spec{Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		want := golden[m.Name]
		r := out.Results
		approx10(m.Name+".AvgBSLD", r.AvgBSLD, want[0])
		approx10(m.Name+".AvgWait", r.AvgWait, want[1])
		approx10(m.Name+".CompEnergy", r.CompEnergy, want[2])
	}
}
