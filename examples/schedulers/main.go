// Schedulers compares the base scheduling policies the library implements
// — FCFS, classic EASY backfilling (the paper's base), flexible
// backfilling with K reservations, conservative backfilling, and EASY
// with SJF queue order — under identical workload and frequency policy.
// It shows where the paper's choice (EASY, FCFS order) sits in the
// fairness/performance space.
//
//	go run ./examples/schedulers              # CTC workload
//	go run ./examples/schedulers SDSCBlue
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/textplot"
	"repro/internal/wgen"
)

func main() {
	name := "CTC"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	model, err := wgen.Preset(name)
	if err != nil {
		log.Fatal(err)
	}
	model.Jobs = 2000
	trace, err := wgen.Generate(model)
	if err != nil {
		log.Fatal(err)
	}
	gears := dvfs.PaperGearSet()
	policy, err := core.NewPolicy(core.Params{BSLDThreshold: 2, WQThreshold: 16},
		gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
	if err != nil {
		log.Fatal(err)
	}

	schedulers := []struct {
		label string
		spec  runner.Spec
	}{
		{"FCFS", runner.Spec{Variant: sched.FCFS}},
		{"EASY (paper)", runner.Spec{Variant: sched.EASY}},
		{"EASY depth-4", runner.Spec{Variant: sched.EASY, Reservations: 4}},
		{"conservative", runner.Spec{Variant: sched.Conservative}},
		{"EASY + SJF order", runner.Spec{Variant: sched.EASY, Order: sched.SJFOrder}},
	}
	table := textplot.Table{
		Title: fmt.Sprintf("Base scheduling policies under bsld(2,16) on %s (%d jobs, %d CPUs)",
			name, model.Jobs, model.CPUs),
		Header: []string{"scheduler", "avgBSLD", "avgWait(s)", "p95Wait(s)", "maxWait(s)", "reduced", "energy"},
		Note:   "energy = computational, normalized to the FCFS row",
	}
	var base float64
	for i, sc := range schedulers {
		spec := sc.spec
		spec.Trace = trace
		spec.Policy = policy
		spec.KeepCollector = true
		out, err := runner.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = out.Results.CompEnergy
		}
		wp, err := out.Collector.WaitPercentiles()
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(sc.label,
			fmt.Sprintf("%.2f", out.Results.AvgBSLD),
			fmt.Sprintf("%.0f", out.Results.AvgWait),
			fmt.Sprintf("%.0f", wp.P95),
			fmt.Sprintf("%.0f", wp.Max),
			fmt.Sprint(out.Results.ReducedJobs),
			fmt.Sprintf("%.2f%%", 100*out.Results.CompEnergy/base))
	}
	fmt.Print(table.Render())
}
