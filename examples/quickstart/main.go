// Quickstart: the smallest complete use of the library.
//
// It generates a 1000-job synthetic workload modeled after the SDSC Blue
// Horizon log, schedules it twice on a DVFS cluster with EASY backfilling
// — once without frequency scaling and once under the paper's
// BSLD-threshold policy (BSLDthreshold=2, WQthreshold=16) — and prints the
// energy/performance comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/wgen"
)

func main() {
	// 1. A workload: 1000 jobs of the calibrated SDSC Blue model.
	model := wgen.SDSCBlue()
	model.Jobs = 1000
	trace, err := wgen.Generate(model)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The paper's frequency assignment algorithm: run a job at the
	// lowest gear whose predicted bounded slowdown stays under 2, but
	// only while at most 16 other jobs wait.
	gears := dvfs.PaperGearSet()
	policy, err := core.NewPolicy(core.Params{
		BSLDThreshold: 2,
		WQThreshold:   16,
	}, gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Simulate both schedules on the original 1152-CPU machine.
	baseline, err := runner.Run(runner.Spec{Trace: trace})
	if err != nil {
		log.Fatal(err)
	}
	powerAware, err := runner.Run(runner.Spec{Trace: trace, Policy: policy})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare.
	b, p := baseline.Results, powerAware.Results
	fmt.Printf("%-22s %12s %12s\n", "", "no DVFS", policy.Name())
	fmt.Printf("%-22s %12.2f %12.2f\n", "average BSLD", b.AvgBSLD, p.AvgBSLD)
	fmt.Printf("%-22s %12.0f %12.0f\n", "average wait (s)", b.AvgWait, p.AvgWait)
	fmt.Printf("%-22s %12d %12d\n", "jobs at reduced freq", b.ReducedJobs, p.ReducedJobs)
	fmt.Printf("%-22s %12.1f %12.1f\n", "comp. energy (norm %)",
		100.0, 100*p.CompEnergy/b.CompEnergy)
	fmt.Printf("%-22s %12.1f %12.1f\n", "total energy (norm %)",
		100.0, 100*p.TotalEnergyLow/b.TotalEnergyLow)
	fmt.Printf("\nCPU energy saved: %.1f%% at a BSLD penalty of %.2f\n",
		100*(1-p.CompEnergy/b.CompEnergy), p.AvgBSLD-b.AvgBSLD)
}
