// Customtrace demonstrates running the power-aware scheduler on a user
// trace in Standard Workload Format — the path a site with real accounting
// logs from the Parallel Workload Archive would take.
//
// Given no arguments it builds a small demonstration trace in memory,
// writes it out as SWF, parses it back (exercising the same code path a
// file would take), and simulates it. Pass a path to use a real file:
//
//	go run ./examples/customtrace               # built-in demo trace
//	go run ./examples/customtrace mylog.swf 512 # file + system size
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/workload"
)

func main() {
	trace, err := loadTrace()
	if err != nil {
		log.Fatal(err)
	}
	st := trace.ComputeStats()
	fmt.Printf("trace %q: %d jobs on %d CPUs, %.1f CPU-hours, offered load %.2f\n\n",
		trace.Name, st.Jobs, trace.CPUs, st.TotalCPUHours, st.Utilization)

	gears := dvfs.PaperGearSet()
	policy, err := core.NewPolicy(core.Params{
		BSLDThreshold: 2,
		WQThreshold:   core.NoWQLimit,
	}, gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
	if err != nil {
		log.Fatal(err)
	}
	out, err := runner.Run(runner.Spec{Trace: trace, Policy: policy, KeepCollector: true})
	if err != nil {
		log.Fatal(err)
	}
	base, err := runner.Run(runner.Spec{Trace: trace})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %8s %8s %6s %10s %8s\n", "job", "submit", "start", "cpus", "gear", "BSLD")
	for i, rec := range out.Collector.Records() {
		if i == 12 {
			fmt.Printf("... (%d more)\n", len(out.Collector.Records())-i)
			break
		}
		fmt.Printf("%-14d %8.0f %8.0f %6d %10s %8.2f\n",
			rec.Job.ID, rec.Job.Submit, rec.Start, rec.Job.Procs, rec.FinalGear, rec.BSLD)
	}
	fmt.Printf("\navg BSLD %.2f (baseline %.2f); computational energy %.1f%% of baseline; %d of %d jobs reduced\n",
		out.Results.AvgBSLD, base.Results.AvgBSLD,
		100*out.Results.CompEnergy/base.Results.CompEnergy,
		out.Results.ReducedJobs, out.Results.Jobs)
}

// loadTrace reads argv or builds the demonstration workload.
func loadTrace() (*workload.Trace, error) {
	if len(os.Args) > 1 {
		cpus := 0
		if len(os.Args) > 2 {
			v, err := strconv.Atoi(os.Args[2])
			if err != nil {
				return nil, fmt.Errorf("bad cpu count %q: %w", os.Args[2], err)
			}
			cpus = v
		}
		f, err := os.Open(os.Args[1])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ParseSWF(f, os.Args[1], cpus)
	}

	// A hand-written mini-cluster day: a wide job blocking the machine,
	// small jobs backfilling around it, and a tail of medium jobs.
	demo := &workload.Trace{Name: "demo", CPUs: 64}
	add := func(id int, submit, runtime float64, procs int, reqtime float64) {
		demo.Jobs = append(demo.Jobs, &workload.Job{
			ID: id, Submit: submit, Runtime: runtime, Procs: procs, ReqTime: reqtime, Beta: -1,
			Status: workload.StatusCompleted,
		})
	}
	add(1, 0, 7200, 32, 9000)
	add(2, 600, 3600, 48, 3600)
	add(3, 700, 1200, 8, 1800)
	add(4, 800, 900, 16, 1200)
	add(5, 900, 5400, 4, 7200)
	for i := 6; i <= 20; i++ {
		add(i, float64(1000+300*i), float64(600+120*(i%5)), 4+(i%3)*12, float64(1800+600*(i%4)))
	}

	// Round-trip through SWF to exercise the reader/writer.
	var buf bytes.Buffer
	if err := workload.WriteSWF(&buf, demo); err != nil {
		return nil, err
	}
	return workload.ParseSWF(&buf, "demo", 0)
}
