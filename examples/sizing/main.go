// Sizing reproduces the paper's system-dimensioning study (Section 5.2)
// for one workload: can the same load on a larger DVFS-enabled machine
// cost less CPU energy at equal or better job performance?
//
// For each size factor it runs the power-aware scheduler (BSLDthreshold 2,
// both WQ modes) and reports energy normalized to the ORIGINAL machine
// without DVFS, the way Figures 7–9 are normalized.
//
//	go run ./examples/sizing              # SDSCBlue workload
//	go run ./examples/sizing LLNLAtlas    # any preset name
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/textplot"
	"repro/internal/wgen"
)

func main() {
	name := "SDSCBlue"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	model, err := wgen.Preset(name)
	if err != nil {
		log.Fatal(err)
	}
	model.Jobs = 2000
	trace, err := wgen.Generate(model)
	if err != nil {
		log.Fatal(err)
	}
	base, err := runner.Run(runner.Spec{Trace: trace})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: original %d CPUs, baseline avgBSLD %.2f, avgWait %.0f s\n\n",
		name, model.CPUs, base.Results.AvgBSLD, base.Results.AvgWait)

	gears := dvfs.PaperGearSet()
	tm := dvfs.NewTimeModel(runner.DefaultBeta, gears)
	sizes := []float64{1.0, 1.1, 1.2, 1.5, 1.75, 2.0, 2.25}

	for _, wq := range []int{0, core.NoWQLimit} {
		pol, err := core.NewPolicy(core.Params{BSLDThreshold: 2, WQThreshold: wq}, gears, tm)
		if err != nil {
			log.Fatal(err)
		}
		table := textplot.Table{
			Title: fmt.Sprintf("Power-aware scheduling with %s on enlarged systems", pol.Name()),
			Header: []string{"size", "CPUs", "energy(idle=0)", "energy(idle=low)",
				"avgBSLD", "avgWait(s)", "beats baseline?"},
			Note: "energies normalized to the original system without DVFS",
		}
		for _, sf := range sizes {
			out, err := runner.Run(runner.Spec{Trace: trace, Policy: pol, SizeFactor: sf})
			if err != nil {
				log.Fatal(err)
			}
			r := out.Results
			verdict := "no"
			if r.AvgBSLD <= base.Results.AvgBSLD {
				verdict = "YES"
			}
			table.AddRow(fmt.Sprintf("+%.0f%%", (sf-1)*100), fmt.Sprint(out.CPUs),
				fmt.Sprintf("%.2f%%", 100*r.CompEnergy/base.Results.CompEnergy),
				fmt.Sprintf("%.2f%%", 100*r.TotalEnergyLow/base.Results.TotalEnergyLow),
				fmt.Sprintf("%.2f", r.AvgBSLD),
				fmt.Sprintf("%.0f", r.AvgWait),
				verdict)
		}
		fmt.Print(table.Render())
		fmt.Println()
	}
}
