// Powerdown contrasts the paper's DVFS approach with the related-work
// alternative it discusses (Section 6): powering down idle nodes (Lawson &
// Smirni; Pinheiro et al.; Hikita et al.), and shows the two compose.
//
// A nodepower.Tracker rides along the simulation as a second recorder,
// collecting per-processor busy intervals; afterwards a shutdown policy
// (idle timeout, wake cost) is evaluated over the idle gaps. First Fit
// packing concentrates idleness on high-numbered processors, which is what
// makes shutdown effective.
//
//	go run ./examples/powerdown            # CTC workload
//	go run ./examples/powerdown SDSCBlue
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/nodepower"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/textplot"
	"repro/internal/wgen"
)

func main() {
	name := "CTC"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	model, err := wgen.Preset(name)
	if err != nil {
		log.Fatal(err)
	}
	model.Jobs = 2000
	trace, err := wgen.Generate(model)
	if err != nil {
		log.Fatal(err)
	}
	pm := dvfs.PaperPowerModel()
	gears := pm.Gears
	policy, err := core.NewPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit},
		gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
	if err != nil {
		log.Fatal(err)
	}
	shutdown := nodepower.DefaultPolicy()

	// totalEnergy simulates once and returns (total energy, avg BSLD):
	// execution energy plus either always-on idle power or the shutdown
	// policy's idle-side energy.
	totalEnergy := func(pol sched.GearPolicy, powerDown bool) (float64, float64) {
		tracker := nodepower.NewTracker(model.CPUs)
		out, err := runner.Run(runner.Spec{
			Trace: trace, Policy: pol,
			ExtraRecorders: []sched.Recorder{tracker},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !powerDown {
			return out.Results.TotalEnergyLow, out.Results.AvgBSLD
		}
		rep, err := tracker.Evaluate(shutdown, pm, trace.Jobs[0].Submit)
		if err != nil {
			log.Fatal(err)
		}
		return out.Results.CompEnergy + rep.TotalIdleSideEnergy(), out.Results.AvgBSLD
	}

	baseline, baseBSLD := totalEnergy(nil, false)
	table := textplot.Table{
		Title:  fmt.Sprintf("Total CPU energy management on %s (%d jobs, %d CPUs)", name, model.Jobs, model.CPUs),
		Header: []string{"strategy", "total energy", "avg BSLD"},
		Note: fmt.Sprintf("power-down: %gs idle timeout, %gs wake cost (optimistic accounting-only bound); baseline BSLD %.2f",
			shutdown.IdleOffDelay, shutdown.WakeEnergySeconds, baseBSLD),
	}
	addRow := func(label string, pol sched.GearPolicy, pd bool) {
		e, bsld := totalEnergy(pol, pd)
		table.AddRow(label, fmt.Sprintf("%.2f%%", 100*e/baseline), fmt.Sprintf("%.2f", bsld))
	}
	table.AddRow("always-on, no DVFS", "100.00%", fmt.Sprintf("%.2f", baseBSLD))
	addRow("DVFS "+policy.Name(), policy, false)
	addRow("power-down only", nil, true)
	addRow("DVFS + power-down", policy, true)
	fmt.Print(table.Render())
}
