// What-if: compile a scenario once, execute it from many goroutines.
//
// The scenario layer (internal/scenario) turns a data-level Spec into an
// immutable, goroutine-safe run description: the workload is resolved
// once into a shared arena, every default is filled in, and the result
// carries a canonical content hash. This example compiles one CTC
// what-if, executes it from four goroutines at once (all four get
// bit-identical results), and then derives its no-DVFS baseline — which
// shares the compiled workload, so nothing is generated twice.
//
//	go run ./examples/whatif
//
// The same Spec shape is what cmd/schedd accepts over HTTP, so the
// round trip below is this program as a service:
//
//	go run ./cmd/schedd -addr :8080 &
//	curl -s localhost:8080/v1/whatif -d '{
//	        "workload": "CTC", "jobs": 2000,
//	        "policy":   {"bsld_thr": 2, "wq_thr": 16}
//	}'
//	# … answers {"hash": "…", "cached": false, "results": {…}}; repeat
//	# the same curl and the answer comes from the LRU cache ("cached":
//	# true) without re-simulating.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/scenario"
)

func main() {
	// 1. Compile: resolve the workload (generated once, shared), the
	// policy and every default into an immutable scenario.
	sc, err := scenario.Compile(scenario.Spec{
		Workload: "CTC",
		Jobs:     2000,
		Policy:   scenario.PolicyConfig{BSLDThr: 2, WQThr: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s\n  workload %s (%d jobs), %d CPUs, policy %s\n",
		sc.Hash()[:12], sc.Workload(), sc.Jobs(), sc.CPUs(), sc.PolicyName())

	// 2. Execute many: the scenario is read-only, so concurrent
	// executions share it safely and deterministically.
	const n = 4
	outs := make([]scenario.Outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := sc.Execute()
			if err != nil {
				log.Fatal(err)
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if outs[i].Results != outs[0].Results {
			log.Fatalf("goroutine %d diverged from goroutine 0", i)
		}
	}
	fmt.Printf("  %d concurrent executions, all bit-identical\n", n)

	// 3. What-if vs baseline: WithBaseline derives the no-DVFS run on
	// the same compiled workload.
	base, err := sc.WithBaseline().Execute()
	if err != nil {
		log.Fatal(err)
	}
	dvfs := outs[0]
	fmt.Printf("\n%-22s %10s %12s %12s\n", "", "avg BSLD", "avg wait (s)", "comp energy")
	fmt.Printf("%-22s %10.2f %12.0f %12.4g\n", "no DVFS",
		base.Results.AvgBSLD, base.Results.AvgWait, base.Results.CompEnergy)
	fmt.Printf("%-22s %10.2f %12.0f %12.4g\n", sc.PolicyName(),
		dvfs.Results.AvgBSLD, dvfs.Results.AvgWait, dvfs.Results.CompEnergy)
	fmt.Printf("\nenergy saved: %.1f%%  (BSLD %.2f → %.2f)\n",
		100*(1-dvfs.Results.CompEnergy/base.Results.CompEnergy),
		base.Results.AvgBSLD, dvfs.Results.AvgBSLD)
}
