// Tradeoff sweeps the two tunables of the frequency assignment algorithm
// — BSLDthreshold and WQthreshold — over one workload and renders the
// energy-performance frontier the paper's Section 5.1 explores: stricter
// settings barely touch the schedule, permissive ones trade bounded
// slowdown for CPU energy.
//
//	go run ./examples/tradeoff            # CTC workload
//	go run ./examples/tradeoff SDSCBlue   # any preset name
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/textplot"
	"repro/internal/wgen"
)

func main() {
	name := "CTC"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	model, err := wgen.Preset(name)
	if err != nil {
		log.Fatal(err)
	}
	model.Jobs = 2000 // enough to show the trade-off, quick to run
	trace, err := wgen.Generate(model)
	if err != nil {
		log.Fatal(err)
	}
	base, err := runner.Run(runner.Spec{Trace: trace})
	if err != nil {
		log.Fatal(err)
	}

	gears := dvfs.PaperGearSet()
	tm := dvfs.NewTimeModel(runner.DefaultBeta, gears)

	table := textplot.Table{
		Title:  fmt.Sprintf("Energy-performance trade-off on %s (%d jobs, %d CPUs)", name, model.Jobs, model.CPUs),
		Header: []string{"policy", "energy(idle=0)", "energy(idle=low)", "avgBSLD", "avgWait(s)", "reduced"},
		Note:   fmt.Sprintf("baseline: avgBSLD %.2f, avgWait %.0f s", base.Results.AvgBSLD, base.Results.AvgWait),
	}
	var groups []string
	var bars [][]float64
	for _, thr := range []float64{1.5, 2, 3} {
		var vals []float64
		for _, wq := range []int{0, 4, 16, core.NoWQLimit} {
			pol, err := core.NewPolicy(core.Params{BSLDThreshold: thr, WQThreshold: wq}, gears, tm)
			if err != nil {
				log.Fatal(err)
			}
			out, err := runner.Run(runner.Spec{Trace: trace, Policy: pol})
			if err != nil {
				log.Fatal(err)
			}
			r := out.Results
			table.AddRow(pol.Name(),
				fmt.Sprintf("%.2f%%", 100*r.CompEnergy/base.Results.CompEnergy),
				fmt.Sprintf("%.2f%%", 100*r.TotalEnergyLow/base.Results.TotalEnergyLow),
				fmt.Sprintf("%.2f", r.AvgBSLD),
				fmt.Sprintf("%.0f", r.AvgWait),
				fmt.Sprint(r.ReducedJobs))
			vals = append(vals, 100*(1-r.CompEnergy/base.Results.CompEnergy))
		}
		groups = append(groups, fmt.Sprintf("BSLDthreshold %g — savings %% by WQ limit", thr))
		bars = append(bars, vals)
	}
	fmt.Print(table.Render())
	fmt.Println()
	fmt.Print(textplot.BarChart("Computational energy savings (%)",
		groups, []string{"WQ 0", "WQ 4", "WQ 16", "WQ NO"}, bars, 40))
}
