// Example streaming replays a multi-million-job workload through the
// streaming pipeline — wgen.Stream generating jobs lazily, the scheduler
// consuming one pending arrival at a time, metrics folding online — and
// reports the peak live heap alongside the scheduling results. The point
// it demonstrates: peak memory tracks the number of RUNNING jobs, not the
// trace length, so a 10M-job replay fits where the materialized trace
// alone (~1 GB of Job structs at 10M) would not.
//
//	go run ./examples/streaming                       # 1M jobs (Million preset)
//	go run ./examples/streaming -workload TenMillion  # 10M jobs, same flat heap
//	go run ./examples/streaming -jobs 200000          # quicker look
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/wgen"
)

func main() {
	var (
		wl   = flag.String("workload", "Million", "workload preset to stream (Million, TenMillion, or any paper preset)")
		jobs = flag.Int("jobs", 0, "override the preset's job count; 0 = native length")
	)
	flag.Parse()
	if err := run(*wl, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}

func run(wl string, jobs int) error {
	model, err := wgen.Preset(wl)
	if err != nil {
		return err
	}
	if jobs > 0 {
		model.Jobs = jobs
	}
	fmt.Printf("streaming %s: %d jobs onto %d CPUs (load %.2f) — no trace is ever materialized\n",
		model.Name, model.Jobs, model.CPUs, model.Load)

	src, err := wgen.Stream(model)
	if err != nil {
		return err
	}
	// The watermark garbage-collects and snapshots the heap now, so its
	// peak is this replay's own footprint.
	heap := metrics.NewHeapWatermark(0)
	start := time.Now()
	out, err := runner.Run(runner.Spec{
		Source:         src,
		ExtraRecorders: []sched.Recorder{heap},
	})
	if err != nil {
		return err
	}
	heap.Sample()
	elapsed := time.Since(start)

	r := out.Results
	fmt.Printf("scheduled     %d jobs in %s (%.0f jobs/s)\n",
		r.Jobs, elapsed.Round(time.Millisecond), float64(r.Jobs)/elapsed.Seconds())
	fmt.Printf("avg BSLD      %.2f   avg wait %.0f s   utilization %.3f\n", r.AvgBSLD, r.AvgWait, r.Utilization)
	fmt.Printf("peak events   %d (event heap high-water: O(running jobs), not O(trace))\n", out.PeakEvents)
	fmt.Printf("peak heap     %.1f MB above baseline\n", heap.PeakMB())
	perJob := 96.0 // approximate bytes per materialized Job struct + pointer
	fmt.Printf("for reference a materialized trace alone needs ~%.0f MB at this length\n",
		float64(model.Jobs)*perJob/(1<<20))
	return nil
}
