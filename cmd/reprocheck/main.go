// Command reprocheck verifies that the repository still reproduces the
// paper: it runs the evaluation grid and checks every qualitative claim
// of DESIGN.md §6, printing a ✓/✗ checklist. Exit status 1 means the
// reproduction is broken.
//
// Usage:
//
//	reprocheck              # full 5000-job grid (~20 s)
//	reprocheck -jobs 1000   # faster, looser evidence
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 0, "trace segment length; 0 = the paper's 5000")
		workers = flag.Int("workers", 0, "parallel simulations; 0 = GOMAXPROCS")
	)
	flag.Parse()
	start := time.Now()
	s := experiments.NewSuite(*jobs)
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if err := s.Prefetch(experiments.GridConfigs(), w); err != nil {
		fmt.Fprintln(os.Stderr, "reprocheck:", err)
		os.Exit(1)
	}
	checks, err := experiments.RunChecks(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprocheck:", err)
		os.Exit(1)
	}
	failed := 0
	for _, c := range checks {
		mark := "✓"
		if !c.Pass {
			mark = "✗"
			failed++
		}
		fmt.Printf("%s %-55s %s\n", mark, c.Name, c.Detail)
	}
	fmt.Printf("\n%d/%d checks passed in %s (%d-job segments)\n",
		len(checks)-failed, len(checks), time.Since(start).Round(time.Millisecond), s.Jobs())
	if failed > 0 {
		os.Exit(1)
	}
}
