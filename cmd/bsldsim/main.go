// Command bsldsim runs one power-aware job scheduling simulation and
// prints the scheduling and energy metrics.
//
// The workload is either one of the built-in synthetic models calibrated
// to the paper's traces (-workload CTC|SDSC|SDSCBlue|LLNLThunder|LLNLAtlas)
// or a Standard Workload Format file (-swf trace.swf).
//
// Examples:
//
//	bsldsim -workload SDSCBlue -bsld 2 -wq 16
//	bsldsim -workload CTC -bsld 3 -wq -1 -size 1.2
//	bsldsim -swf mytrace.swf -cpus 512 -bsld 2 -wq 0
//	bsldsim -workload CTC -nodvfs            # EASY baseline
//	bsldsim -workload TenMillion -stream     # 10M jobs, O(running jobs) memory
//	bsldsim -workload CTC -cap-frac 0.7      # closed-loop power capping at 70% of peak
//
// For performance work, -cpuprofile and -memprofile write pprof profiles
// covering the whole run (both the policy and the no-DVFS baseline leg):
//
//	bsldsim -workload Million -policy conservative -cpuprofile cpu.out
//	go tool pprof -top cpu.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/altpolicy"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/wgen"
	"repro/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "CTC", "built-in workload model (CTC, SDSC, SDSCBlue, LLNLThunder, LLNLAtlas, Million)")
		swf     = flag.String("swf", "", "read this SWF trace instead of a built-in model")
		cpus    = flag.Int("cpus", 0, "system size for -swf traces without a MaxProcs header; 0 = from header")
		jobs    = flag.Int("jobs", 0, "trace segment length for built-in models; 0 = the model's native length (5000 for the paper presets, 1000000 for Million)")
		dropF   = flag.Bool("drop-failed", false, "drop failed jobs (SWF status 0) when reading -swf traces")
		bsldThr = flag.Float64("bsld", 2, "BSLDthreshold of the frequency assignment algorithm")
		wqThr   = flag.Int("wq", 0, "WQthreshold (jobs waiting); -1 = no limit")
		size    = flag.Float64("size", 1.0, "system size factor (1.2 = 20% enlarged)")
		beta    = flag.Float64("beta", runner.DefaultBeta, "β of the execution time model")
		variant = flag.String("policy", "easy", "base scheduling policy: easy, fcfs, conservative")
		sel     = flag.String("select", "firstfit", "resource selection policy: firstfit, contiguous, nextfit")
		stream  = flag.Bool("stream", false, "stream the workload instead of materializing it: presets generate lazily, SWF files are read incrementally — O(running jobs) memory at any trace length")
		noDVFS  = flag.Bool("nodvfs", false, "disable frequency scaling (baseline)")
		strict  = flag.Bool("strict-backfill", false, "literal Figure 2 semantics: BSLD check gates backfills even at Ftop")
		boost   = flag.Int("boost", -1, "dynamic boost extension: raise running reduced jobs to Ftop when more than N jobs wait; -1 disables")
		capFrac = flag.Float64("cap-frac", 0, "power cap as a fraction of peak machine draw, in (0,1]; 0 disables the cap controller")
		capKp   = flag.Float64("cap-kp", 0, "proportional gain of the cap controller (0 = default)")
		capKi   = flag.Float64("cap-ki", 0, "integral gain of the cap controller (0 = default)")
		capEco  = flag.Bool("cap-eco", false, "cap controller only throttles jobs carrying the eco opt-in flag")
		ecoU    = flag.String("eco-users", "", "comma-separated SWF user IDs whose jobs opt into eco mode (\"*\" = all)")
		verbose = flag.Bool("v", false, "print per-gear breakdown")
		asJSON  = flag.Bool("json", false, "emit the report as JSON for downstream tooling")
		cfgPath = flag.String("config", "", "JSON configuration file declaring platform, policy, machine and workload (overrides the other flags)")
		dump    = flag.String("dump", "", "write per-job records (submit, wait, gear, BSLD, energy) to this CSV file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsldsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bsldsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	var err error
	if *cfgPath != "" {
		err = runConfig(*cfgPath, *verbose, *asJSON, *dump)
	} else {
		capCfg := scenario.ControllerConfig{CapFrac: *capFrac, Kp: *capKp, Ki: *capKi, EcoOnly: *capEco}
		err = run(*wl, *swf, *cpus, *jobs, *bsldThr, *wqThr, *size, *beta, *variant, *sel, *stream, *noDVFS, *strict, *dropF, *boost, capCfg, *ecoU, *verbose, *asJSON, *dump)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bsldsim:", err)
		os.Exit(1)
	}
	if *memProf != "" {
		runtime.GC() // settle the heap so the profile shows retained memory
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bsldsim:", err)
			os.Exit(1)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bsldsim:", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// runConfig executes a simulation declared in a configuration file.
func runConfig(path string, verbose, asJSON bool, dump string) error {
	f, err := config.Load(path)
	if err != nil {
		return err
	}
	spec, err := f.BuildSpec()
	if err != nil {
		return err
	}
	spec.KeepCollector = verbose || dump != ""
	// Compile once; the policy and baseline legs share the compiled
	// workload arena.
	sc, err := runner.Compile(spec)
	if err != nil {
		return err
	}
	out, baseOut, err := sc.ExecutePair()
	if err != nil {
		return err
	}
	sizeFactor := spec.SizeFactor
	if sizeFactor == 0 {
		sizeFactor = 1
	}
	if dump != "" {
		if err := dumpRecords(dump, out); err != nil {
			return err
		}
	}
	return report(spec.Trace.Name, sc.Hash(), out, baseOut, spec.Variant, spec.Selection, sizeFactor, verbose, asJSON)
}

// dumpRecords writes the per-job outcomes for offline analysis.
func dumpRecords(path string, out runner.Outcome) error {
	if out.Collector == nil {
		return fmt.Errorf("internal: records not collected")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "job,user,submit_s,start_s,wait_s,procs,runtime_s,reqtime_s,gear_ghz,reduced,penalized_runtime_s,bsld,energy,alloc_runs")
	for _, rec := range out.Collector.Records() {
		j := rec.Job
		fmt.Fprintf(w, "%d,%d,%.3f,%.3f,%.3f,%d,%.3f,%.3f,%.1f,%t,%.3f,%.6f,%.6g,%d\n",
			j.ID, j.User, j.Submit, rec.Start, rec.Wait, j.Procs, j.Runtime, j.ReqTime,
			rec.FinalGear.Freq, rec.Reduced, rec.PenalizedRuntime, rec.BSLD, rec.Energy, rec.AllocRuns)
	}
	return w.Flush()
}

// jsonReport is the machine-readable form of one simulation outcome.
type jsonReport struct {
	Workload       string    `json:"workload"`
	ScenarioHash   string    `json:"scenario_hash"`
	Jobs           int       `json:"jobs"`
	CPUs           int       `json:"cpus"`
	SizeFactor     float64   `json:"size_factor"`
	Policy         string    `json:"policy"`
	Variant        string    `json:"variant"`
	AvgBSLD        float64   `json:"avg_bsld"`
	AvgWaitSec     float64   `json:"avg_wait_sec"`
	MaxWaitSec     float64   `json:"max_wait_sec"`
	ReducedJobs    int       `json:"reduced_jobs"`
	Utilization    float64   `json:"utilization"`
	WindowSec      float64   `json:"window_sec"`
	CompEnergy     float64   `json:"comp_energy"`
	TotalEnergyLow float64   `json:"total_energy_idle_low"`
	NormComp       float64   `json:"normalized_comp_energy"`
	NormTotalLow   float64   `json:"normalized_total_energy"`
	PowerCap       *capStats `json:"power_cap,omitempty"`
}

// capStats is the JSON form of the power-cap controller's report.
type capStats struct {
	Cap        float64 `json:"cap"`
	AvgDraw    float64 `json:"avg_draw"`
	PeakDraw   float64 `json:"peak_draw"`
	OverFrac   float64 `json:"over_cap_time_frac"`
	OverEnergy float64 `json:"over_cap_energy"`
	Actuations int     `json:"actuations"`
	Passes     int     `json:"control_passes"`
}

// capReport extracts the controller statistics when the outcome carries a
// power-cap controller (nil otherwise).
func capReport(out runner.Outcome) *capStats {
	pc, ok := out.Controller.(*altpolicy.PowerCap)
	if !ok {
		return nil
	}
	rep := pc.Report()
	return &capStats{
		Cap: rep.Cap, AvgDraw: rep.AvgDraw, PeakDraw: rep.PeakDraw,
		OverFrac: rep.OverFrac, OverEnergy: rep.OverEnergy,
		Actuations: rep.Actuations, Passes: rep.Passes,
	}
}

func run(wl, swf string, cpus, jobs int, bsldThr float64, wqThr int, size, beta float64,
	variant, sel string, stream, noDVFS, strict, dropFailed bool, boost int,
	capCfg scenario.ControllerConfig, ecoUsers string, verbose, asJSON bool, dump string) error {
	var (
		tr   *workload.Trace
		src  workload.JobSource
		name string
		err  error
	)
	if stream {
		src, err = loadSource(wl, swf, cpus, jobs, dropFailed, ecoUsers)
		if err != nil {
			return err
		}
		name = src.Name()
	} else {
		tr, err = loadTrace(wl, swf, cpus, jobs, dropFailed, ecoUsers)
		if err != nil {
			return err
		}
		name = tr.Name
	}
	var v sched.Variant
	switch strings.ToLower(variant) {
	case "easy":
		v = sched.EASY
	case "fcfs":
		v = sched.FCFS
	case "conservative", "cons":
		v = sched.Conservative
	default:
		return fmt.Errorf("unknown policy %q", variant)
	}
	selection, err := cluster.ParseSelection(strings.ToLower(sel))
	if err != nil {
		return err
	}

	spec := runner.Spec{Trace: tr, Source: src, SizeFactor: size, Variant: v, Beta: beta,
		Selection: selection, Controller: capCfg, KeepCollector: verbose || dump != ""}
	if !noDVFS {
		gears := dvfs.PaperGearSet()
		wq := wqThr
		if wq < 0 {
			wq = core.NoWQLimit
		}
		pol, err := core.NewPolicy(core.Params{
			BSLDThreshold:      bsldThr,
			WQThreshold:        wq,
			StrictBackfillBSLD: strict,
			Boost:              boost >= 0,
			BoostWQ:            max(boost, 0),
		}, gears, dvfs.NewTimeModel(beta, gears))
		if err != nil {
			return err
		}
		spec.Policy = pol
	}
	// Compile the spec once into an immutable scenario; the baseline leg
	// reuses the compiled workload (a shared source is rewound between the
	// two sequential executions).
	sc, err := runner.Compile(spec)
	if err != nil {
		return err
	}
	out, base, err := sc.ExecutePair()
	if err != nil {
		return err
	}
	if dump != "" {
		if err := dumpRecords(dump, out); err != nil {
			return err
		}
	}
	return report(name, sc.Hash(), out, base, v, selection, size, verbose, asJSON)
}

// report renders the outcome in either human or JSON form.
func report(name, hash string, out, base runner.Outcome, v sched.Variant,
	selection cluster.Selection, size float64, verbose, asJSON bool) error {
	r := out.Results
	if asJSON {
		rep := jsonReport{
			Workload: name, ScenarioHash: hash,
			Jobs: r.Jobs, CPUs: out.CPUs, SizeFactor: size,
			Policy: out.Policy, Variant: v.String(),
			AvgBSLD: r.AvgBSLD, AvgWaitSec: r.AvgWait, MaxWaitSec: r.MaxWait,
			ReducedJobs: r.ReducedJobs, Utilization: r.Utilization, WindowSec: r.Window,
			CompEnergy: r.CompEnergy, TotalEnergyLow: r.TotalEnergyLow,
			NormComp:     r.CompEnergy / base.Results.CompEnergy,
			NormTotalLow: r.TotalEnergyLow / base.Results.TotalEnergyLow,
			PowerCap:     capReport(out),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("workload      %s (%d jobs, %d CPUs, size ×%.2f)\n", name, r.Jobs, out.CPUs, size)
	fmt.Printf("policy        %s over %s\n", out.Policy, v)
	fmt.Printf("avg BSLD      %.2f\n", r.AvgBSLD)
	fmt.Printf("avg wait      %.0f s   (max %.0f s)\n", r.AvgWait, r.MaxWait)
	fmt.Printf("reduced jobs  %d / %d\n", r.ReducedJobs, r.Jobs)
	fmt.Printf("utilization   %.3f over %.0f s window\n", r.Utilization, r.Window)
	fmt.Printf("placement     %s selection, %.2f mean contiguous runs per job\n", selection, r.MeanAllocRuns)
	fmt.Printf("energy        computational %.4g   total(idle=low) %.4g\n", r.CompEnergy, r.TotalEnergyLow)
	fmt.Printf("normalized    computational %.2f%%   total(idle=low) %.2f%%   (vs no-DVFS baseline)\n",
		100*r.CompEnergy/base.Results.CompEnergy, 100*r.TotalEnergyLow/base.Results.TotalEnergyLow)
	if cs := capReport(out); cs != nil {
		fmt.Printf("power cap     %.4g   avg draw %.4g (%.1f%% of cap)   peak %.4g\n",
			cs.Cap, cs.AvgDraw, 100*cs.AvgDraw/cs.Cap, cs.PeakDraw)
		fmt.Printf("cap tracking  over cap %.2f%% of time   over-cap energy %.4g   %d regears over %d passes\n",
			100*cs.OverFrac, cs.OverEnergy, cs.Actuations, cs.Passes)
	}

	if verbose && out.Collector != nil {
		type agg struct {
			n      int
			energy float64
		}
		byGear := map[dvfs.Gear]*agg{}
		for _, rec := range out.Collector.Records() {
			a := byGear[rec.FinalGear]
			if a == nil {
				a = &agg{}
				byGear[rec.FinalGear] = a
			}
			a.n++
			a.energy += rec.Energy
		}
		fmt.Println("per final gear:")
		for _, g := range dvfs.PaperGearSet() {
			if a := byGear[g]; a != nil {
				fmt.Printf("  %-14s %5d jobs  energy %.4g\n", g, a.n, a.energy)
			}
		}
		wp, err := out.Collector.WaitPercentiles()
		if err != nil {
			return err
		}
		bp, err := out.Collector.BSLDPercentiles()
		if err != nil {
			return err
		}
		fmt.Printf("wait percentiles (s): p50 %.0f  p90 %.0f  p95 %.0f  p99 %.0f  max %.0f\n",
			wp.P50, wp.P90, wp.P95, wp.P99, wp.Max)
		fmt.Printf("BSLD percentiles:     p50 %.2f  p90 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
			bp.P50, bp.P90, bp.P95, bp.P99, bp.Max)
		fmt.Printf("energy-delay product: %.4g\n", r.EnergyDelayProduct())
		fmt.Println("per job class:")
		bd, err := out.Collector.Breakdown(out.CPUs)
		if err != nil {
			return err
		}
		for _, cl := range metrics.Classes() {
			st, ok := bd[cl]
			if !ok {
				continue
			}
			fmt.Printf("  %-12s %5d jobs  BSLD %6.2f  wait %7.0f s  energy share %5.1f%%  reduced %d\n",
				cl, st.Jobs, st.AvgBSLD, st.AvgWait, 100*st.EnergyShare, st.Reduced)
		}
	}
	return nil
}

// loadSource resolves the workload as a streaming source: presets
// generate jobs lazily, SWF files are read incrementally. Either way a
// simulation holds O(running jobs) memory instead of the whole trace.
// An explicit -swf path is loaded as a file whatever its extension;
// otherwise wgen's shared name resolution applies.
func loadSource(wl, swf string, cpus, jobs int, dropFailed bool, ecoUsers string) (workload.JobSource, error) {
	filter := workload.SWFFilter{DropFailed: dropFailed, EcoUsers: ecoUsers}
	if swf != "" {
		return workload.OpenSWFSource(swf, cpus, filter)
	}
	return wgen.ResolveSource(wl, cpus, jobs, filter)
}

func loadTrace(wl, swf string, cpus, jobs int, dropFailed bool, ecoUsers string) (*workload.Trace, error) {
	filter := workload.SWFFilter{DropFailed: dropFailed, EcoUsers: ecoUsers}
	if swf != "" {
		return workload.ParseSWFFile(swf, cpus, filter)
	}
	return wgen.ResolveTrace(wl, cpus, jobs, filter)
}
