// Command experiments regenerates every table and figure of the paper's
// evaluation (Tables 1–3, Figures 3–9) from the calibrated synthetic
// workloads, printing text renditions and writing CSV files.
//
// Usage:
//
//	experiments                  # full 5000-job reproduction, CSVs in ./out
//	experiments -jobs 1000       # quicker, shorter trace segments
//	experiments -outdir /tmp/x   # CSV destination
//	experiments -workers 4       # bound simulation parallelism
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 0, "trace segment length; 0 = the paper's 5000")
		outdir  = flag.String("outdir", "out", "directory for CSV files; empty disables")
		workers = flag.Int("workers", 0, "parallel simulations; 0 = GOMAXPROCS")
		stream  = flag.Bool("stream", false, "stream workloads per cell (independent lazy sources) instead of caching materialized traces; identical results")
		ext     = flag.Bool("ext", false, "also run the beyond-the-paper extension experiments")
		svg     = flag.Bool("svg", false, "also render the figures as SVG files in the output directory")
	)
	flag.Parse()
	start := time.Now()
	s := experiments.NewSuite(*jobs)
	if *stream {
		s = experiments.NewStreamingSuite(*jobs)
	}
	if err := experiments.RunAll(s, os.Stdout, *outdir, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *ext {
		if err := experiments.RunExtensions(s, os.Stdout, *outdir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *svg && *outdir != "" {
		if err := experiments.WriteSVGs(s, *outdir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("SVG figures written to %s/\n", *outdir)
	}
	fmt.Printf("reproduced all tables and figures in %s (%d-job segments)\n",
		time.Since(start).Round(time.Millisecond), s.Jobs())
	if *outdir != "" {
		fmt.Printf("CSV files written to %s/\n", *outdir)
	}
}
