package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCleanTreeExitsZero is the CLI-level counterpart of the driver test:
// the shipped tree must be finding-free.
func TestCleanTreeExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"repro/..."}); code != 0 {
		t.Fatalf("exit %d on the real tree\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote diagnostics:\n%s", stdout.String())
	}
}

// TestJSONOnBadFixture drives the srcerr fixture through the real CLI:
// findings exit 1 and arrive as machine-readable JSON.
func TestJSONOnBadFixture(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"-json", "../../internal/analysis/testdata/src/srcerr"})
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostics array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings")
	}
	for _, d := range diags {
		if d.Analyzer != "srcerr" {
			t.Errorf("unexpected analyzer %q on the srcerr fixture: %+v", d.Analyzer, d)
		}
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("diagnostic missing position or message: %+v", d)
		}
	}
}

// TestJSONCleanEmitsEmptyArray pins the machine-readable contract for
// the common case: clean output is [], never null.
func TestJSONCleanEmitsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-json", "repro/internal/dvfs"}); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestHumanFindingsExitOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"../../internal/analysis/testdata/src/srcerr"})
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "[srcerr]") {
		t.Errorf("human output lacks analyzer attribution:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("missing summary line on stderr:\n%s", stderr.String())
	}
}

func TestUsageAndLoadErrorsExitTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"-no-such-flag"}); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "retain") {
		t.Errorf("usage does not list the analyzers:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := run(&stdout, &stderr, []string{"./no/such/package"}); code != 2 {
		t.Errorf("broken pattern: exit %d, want 2", code)
	}
}
