// Command reprovet runs the repo's custom static-analysis suite
// (internal/analysis) as a multichecker over package patterns:
//
//	go run ./cmd/reprovet ./...
//
// It machine-checks the correctness contracts the runtime verification
// spine cannot see: RunState pooling (retain), scenario-hash coverage
// (hashcover), nondeterminism sources in the deterministic core
// (determinism) and swallowed stream errors (srcerr). See the package
// documentation of internal/analysis for the contract each enforces and
// the //lint:<analyzer> escape-comment syntax.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// With -json, diagnostics are emitted as a machine-readable JSON array
// (empty array when clean) on stdout, one object per finding:
//
//	[{"analyzer":"retain","file":"...","line":12,"col":3,"message":"..."}]
//
// so CI tooling can annotate pull requests from the output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("reprovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: reprovet [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "reprovet: %v\n", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "reprovet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "reprovet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
