// Command report produces a single self-contained HTML document with the
// complete reproduction: the verification checklist, every table of the
// paper's evaluation annotated with the paper's values, and every figure
// as inline SVG.
//
// Usage:
//
//	report                      # full 5000-job reproduction -> report.html
//	report -o out/report.html -jobs 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 0, "trace segment length; 0 = the paper's 5000")
		out     = flag.String("o", "report.html", "output file")
		workers = flag.Int("workers", 0, "parallel simulations; 0 = GOMAXPROCS")
	)
	flag.Parse()
	start := time.Now()
	s := experiments.NewSuite(*jobs)
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if err := s.Prefetch(experiments.GridConfigs(), w); err != nil {
		fail(err)
	}
	data, err := report.Build(s)
	if err != nil {
		fail(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := report.Render(f, data); err != nil {
		fail(err)
	}
	fmt.Printf("report written to %s in %s (%d-job segments, %d checks, %d tables, %d figures)\n",
		*out, time.Since(start).Round(time.Millisecond), s.Jobs(),
		len(data.Checks), len(data.Sections), len(data.Figures))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
