// Command wgen generates the synthetic workload traces in Standard
// Workload Format, or summarizes an existing SWF file, so the calibrated
// models can be inspected, exported and exchanged with other schedulers.
//
// Usage:
//
//	wgen -workload SDSCBlue > sdscblue.swf     # export a model
//	wgen -workload CTC -jobs 1000 -seed 7      # shorter trace, new seed
//	wgen -inspect trace.swf [-cpus 512]        # summarize an SWF file
//	wgen -list                                 # list built-in models
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/wgen"
	"repro/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "", "built-in model to export as SWF")
		jobs    = flag.Int("jobs", wgen.StandardJobs, "number of jobs to generate")
		seed    = flag.Int64("seed", 0, "override the model's RNG seed (0 keeps the default)")
		inspect = flag.String("inspect", "", "summarize this SWF file instead of generating")
		cpus    = flag.Int("cpus", 0, "system size for -inspect files without a MaxProcs header")
		list    = flag.Bool("list", false, "list the built-in workload models")
	)
	flag.Parse()
	if err := run(*wl, *jobs, *seed, *inspect, *cpus, *list); err != nil {
		fmt.Fprintln(os.Stderr, "wgen:", err)
		os.Exit(1)
	}
}

func run(wl string, jobs int, seed int64, inspect string, cpus int, list bool) error {
	switch {
	case list:
		fmt.Printf("%-12s %6s %6s %6s %5s\n", "name", "cpus", "jobs", "load", "cv")
		for _, m := range wgen.Presets() {
			fmt.Printf("%-12s %6d %6d %6.2f %5.1f\n", m.Name, m.CPUs, m.Jobs, m.Load, m.ArrivalCV)
		}
		return nil

	case inspect != "":
		f, err := os.Open(inspect)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := workload.ParseSWF(f, inspect, cpus)
		if err != nil {
			return err
		}
		summarize(tr)
		return nil

	case wl != "":
		model, err := wgen.Preset(wl)
		if err != nil {
			return err
		}
		model.Jobs = jobs
		if seed != 0 {
			model.Seed = seed
		}
		tr, err := wgen.Generate(model)
		if err != nil {
			return err
		}
		return workload.WriteSWF(os.Stdout, tr)

	default:
		return fmt.Errorf("one of -workload, -inspect or -list is required")
	}
}

func summarize(tr *workload.Trace) {
	st := tr.ComputeStats()
	fmt.Printf("trace        %s\n", tr.Name)
	fmt.Printf("system       %d CPUs\n", tr.CPUs)
	fmt.Printf("jobs         %d\n", st.Jobs)
	fmt.Printf("span         %.0f s (%.1f days)\n", st.Span, st.Span/86400)
	fmt.Printf("demand       %.0f CPU-hours\n", st.TotalCPUHours)
	fmt.Printf("offered load %.3f\n", st.Utilization)
	fmt.Printf("serial share %.2f\n", st.SerialShare)
	fmt.Printf("mean runtime %.0f s\n", st.MeanRuntime)
	fmt.Printf("mean procs   %.1f\n", st.MeanProcs)
}
