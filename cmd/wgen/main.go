// Command wgen generates the synthetic workload traces in Standard
// Workload Format, or summarizes an existing SWF file, so the calibrated
// models can be inspected, exported and exchanged with other schedulers.
//
// Generation streams by default: jobs are produced lazily (wgen.Stream)
// and written as they appear, so exporting even the 10M-job TenMillion
// preset stays flat in memory. The output is byte-identical to the
// materialized path (-stream=false), which remains for comparison.
//
// Usage:
//
//	wgen -workload SDSCBlue > sdscblue.swf     # export a model (streamed)
//	wgen -workload TenMillion > huge.swf       # 10M jobs, O(1) memory
//	wgen -workload CTC -jobs 1000 -seed 7      # shorter trace, new seed
//	wgen -inspect trace.swf [-cpus 512]        # summarize an SWF file
//	wgen -list                                 # list built-in models
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/wgen"
	"repro/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "", "built-in model to export as SWF")
		jobs    = flag.Int("jobs", 0, "number of jobs to generate; 0 = the model's native length")
		seed    = flag.Int64("seed", 0, "override the model's RNG seed (0 keeps the default)")
		stream  = flag.Bool("stream", true, "generate lazily in O(1) memory; false materializes the trace first (identical output)")
		inspect = flag.String("inspect", "", "summarize this SWF file instead of generating")
		cpus    = flag.Int("cpus", 0, "system size for -inspect files without a MaxProcs header")
		list    = flag.Bool("list", false, "list the built-in workload models")
	)
	flag.Parse()
	if err := run(*wl, *jobs, *seed, *stream, *inspect, *cpus, *list); err != nil {
		fmt.Fprintln(os.Stderr, "wgen:", err)
		os.Exit(1)
	}
}

func run(wl string, jobs int, seed int64, stream bool, inspect string, cpus int, list bool) error {
	switch {
	case list:
		fmt.Printf("%-12s %8s %8s %6s %5s\n", "name", "cpus", "jobs", "load", "cv")
		for _, m := range append(wgen.Presets(), wgen.Million(), wgen.TenMillion()) {
			fmt.Printf("%-12s %8d %8d %6.2f %5.1f\n", m.Name, m.CPUs, m.Jobs, m.Load, m.ArrivalCV)
		}
		return nil

	case inspect != "":
		return summarizeFile(inspect, cpus)

	case wl != "":
		model, err := wgen.Preset(wl)
		if err != nil {
			return err
		}
		if jobs > 0 {
			model.Jobs = jobs
		}
		if seed != 0 {
			model.Seed = seed
		}
		if stream {
			src, err := wgen.Stream(model)
			if err != nil {
				return err
			}
			_, err = workload.WriteSWFStream(os.Stdout, src)
			return err
		}
		tr, err := wgen.Generate(model)
		if err != nil {
			return err
		}
		return workload.WriteSWF(os.Stdout, tr)

	default:
		return fmt.Errorf("one of -workload, -inspect or -list is required")
	}
}

// summarizeFile computes trace statistics in one streaming pass (flat in
// memory at any log size), falling back to the materializing parser for
// logs the incremental reader rejects (e.g. out-of-order submits).
func summarizeFile(path string, cpus int) error {
	src, err := workload.OpenSWFSource(path, cpus, workload.SWFFilter{})
	if err == nil {
		defer src.Close()
		st, serr := workload.StatsOf(src)
		if serr == nil {
			summarize(path, src.CPUs(), st)
			return nil
		}
		err = serr
	}
	// Fall back: materialize, sort and retry (matches old behavior).
	f, ferr := os.Open(path)
	if ferr != nil {
		return err
	}
	defer f.Close()
	tr, perr := workload.ParseSWF(f, path, cpus)
	if perr != nil {
		return perr
	}
	summarize(tr.Name, tr.CPUs, tr.ComputeStats())
	return nil
}

func summarize(name string, cpus int, st workload.Stats) {
	fmt.Printf("trace        %s\n", name)
	fmt.Printf("system       %d CPUs\n", cpus)
	fmt.Printf("jobs         %d\n", st.Jobs)
	fmt.Printf("span         %.0f s (%.1f days)\n", st.Span, st.Span/86400)
	fmt.Printf("demand       %.0f CPU-hours\n", st.TotalCPUHours)
	fmt.Printf("offered load %.3f\n", st.Utilization)
	fmt.Printf("serial share %.2f\n", st.SerialShare)
	fmt.Printf("mean runtime %.0f s\n", st.MeanRuntime)
	fmt.Printf("mean procs   %.1f\n", st.MeanProcs)
}
