// Command sweep runs a parameter sweep over the simulator: a grid of
// traces × policies × machine sizes × scheduling options, executed in
// parallel across CPU cores with deterministic, grid-ordered output.
//
// The grid comes either from a JSON file (-grid sweep.json, "-" = stdin)
// matching sweep.Grid, or from axis flags:
//
//	sweep -traces CTC,SDSC -bsld 1.5,2,3 -wq 0,4,16,NO -sizes 1,1.2 -format csv
//	sweep -traces CTC -bsld 2 -caps 0,0.85,0.7 -format csv
//
// Trace names resolve to wgen presets (CTC, SDSC, SDSCBlue, LLNLThunder,
// LLNLAtlas); names ending in .swf are parsed as SWF trace files. Results
// stream to stdout as CSV (default) or a JSON array; rows are always in
// grid order no matter how many workers run.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/wgen"
	"repro/internal/workload"
)

func main() {
	var (
		gridPath   = flag.String("grid", "", "JSON grid file (\"-\" reads stdin); overrides axis flags")
		traces     = flag.String("traces", "", "comma-separated trace names (presets or .swf files)")
		bsld       = flag.String("bsld", "", "comma-separated BSLD thresholds (0 = no-DVFS baseline)")
		wq         = flag.String("wq", "NO", "comma-separated wait-queue thresholds (numbers or NO)")
		sizes      = flag.String("sizes", "", "comma-separated machine size factors (default 1)")
		cpus       = flag.String("cpus", "", "comma-separated machine size overrides")
		variants   = flag.String("variants", "", "comma-separated base policies: easy,fcfs,conservative")
		selections = flag.String("selections", "", "comma-separated selections: firstfit,contiguous,nextfit")
		orders     = flag.String("orders", "", "comma-separated queue orders: fcfs,sjf")
		res        = flag.String("res", "", "comma-separated EASY reservation depths")
		caps       = flag.String("caps", "", "comma-separated power-cap fractions of peak draw (0 = uncapped)")
		jobs       = flag.Int("jobs", wgen.StandardJobs, "trace segment length for presets; 0 = the model's native length (5000 for the paper presets, 1000000 for Million)")
		stream     = flag.Bool("stream", false, "give every run an independent streaming source (presets regenerate lazily, SWF files are read incrementally) instead of sharing one materialized trace")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
		format     = flag.String("format", "csv", "output format: csv or json")
		progress   = flag.Bool("progress", false, "print per-run progress to stderr")
	)
	flag.Parse()

	grid, err := buildGrid(*gridPath, *traces, *bsld, *wq, *sizes, *cpus,
		*variants, *selections, *orders, *res, *caps)
	if err != nil {
		fatal(err)
	}
	// Names resolve through the scenario compiler's shared arena cache:
	// each preset generates (or each SWF file parses) exactly once and
	// every grid cell over it executes against the shared immutable
	// result.
	resolver := &sweep.Resolver{Jobs: *jobs, Materialize: true}
	if *stream {
		// One independent source per run: workers regenerate instead of
		// sharing a materialized slice. For wgen presets the results are
		// byte-identical to the materialized path; for .swf files the
		// incremental reader keeps file order where the materialized
		// parser tie-breaks equal submit times by job ID, so logs with
		// out-of-ID-order ties may schedule (correctly but) differently.
		resolver = &sweep.Resolver{Source: sourceLoader(*jobs)}
	}
	pool := &sweep.Pool{Workers: *workers}
	if *progress {
		pool.OnProgress = func(done, total int, r sweep.Result) {
			status := "ok"
			if r.Err != nil {
				status = r.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s\n", done, total, r.Point.Label(), status)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := sweep.Sweep(ctx, grid, resolver, pool)
	if err != nil && results == nil {
		fatal(err)
	}
	switch *format {
	case "csv":
		err = writeCSV(os.Stdout, results)
	case "json":
		err = writeJSON(os.Stdout, results)
	default:
		err = fmt.Errorf("unknown format %q (csv, json)", *format)
	}
	if err != nil {
		fatal(err)
	}
	if ctx.Err() != nil {
		fatal(fmt.Errorf("sweep interrupted: %w", ctx.Err()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// sourceLoader resolves trace names to independent streaming sources:
// wgen presets generate lazily per run, SWF files are read incrementally.
func sourceLoader(jobs int) func(name string) (workload.JobSource, error) {
	return func(name string) (workload.JobSource, error) {
		return wgen.ResolveSource(name, 0, jobs, workload.SWFFilter{})
	}
}

// buildGrid assembles the sweep grid from the JSON file or the axis flags.
func buildGrid(gridPath, traces, bsld, wq, sizes, cpus, variants, selections, orders, res, caps string) (sweep.Grid, error) {
	var g sweep.Grid
	if gridPath != "" {
		var r io.Reader = os.Stdin
		if gridPath != "-" {
			f, err := os.Open(gridPath)
			if err != nil {
				return g, err
			}
			defer f.Close()
			r = f
		}
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&g); err != nil {
			return g, fmt.Errorf("grid %s: %w", gridPath, err)
		}
		return g, nil
	}
	g.Traces = splitList(traces)
	thresholds, err := parseFloats(bsld)
	if err != nil {
		return g, fmt.Errorf("-bsld: %w", err)
	}
	wqs, err := parseWQs(wq)
	if err != nil {
		return g, fmt.Errorf("-wq: %w", err)
	}
	for _, thr := range thresholds {
		if thr == 0 {
			g.Policies = append(g.Policies, sweep.PolicyConfig{})
			continue
		}
		for _, w := range wqs {
			g.Policies = append(g.Policies, sweep.PolicyConfig{BSLDThr: thr, WQThr: w})
		}
	}
	if g.SizeFactors, err = parseFloats(sizes); err != nil {
		return g, fmt.Errorf("-sizes: %w", err)
	}
	if g.CPUs, err = parseInts(cpus); err != nil {
		return g, fmt.Errorf("-cpus: %w", err)
	}
	g.Variants = splitList(variants)
	g.Selections = splitList(selections)
	g.Orders = splitList(orders)
	if g.Reservations, err = parseInts(res); err != nil {
		return g, fmt.Errorf("-res: %w", err)
	}
	if g.CapFracs, err = parseFloats(caps); err != nil {
		return g, fmt.Errorf("-caps: %w", err)
	}
	return g, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseWQs accepts numbers plus the paper's "NO" (no wait-queue limit).
func parseWQs(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		if strings.EqualFold(p, "NO") {
			out = append(out, core.NoWQLimit)
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// csvHeader is the fixed column set of the CSV output.
var csvHeader = []string{
	"index", "trace", "policy", "size_factor", "cpus_override", "variant",
	"selection", "order", "reservations", "cap_frac", "cpus", "jobs", "avg_bsld",
	"avg_wait_s", "max_wait_s", "reduced_jobs", "comp_energy",
	"idle_energy", "total_energy_low", "utilization", "error",
}

func writeCSV(w io.Writer, results []sweep.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range results {
		p, m := r.Point, r.Outcome.Results
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
			m = metrics.Results{}
		}
		row := []string{
			strconv.Itoa(p.Index), p.Trace, p.Policy.Label(), f(p.SizeFactor),
			strconv.Itoa(p.CPUs), p.Variant, p.Selection, p.Order,
			strconv.Itoa(p.Reservations), f(p.CapFrac), strconv.Itoa(r.Outcome.CPUs),
			strconv.Itoa(m.Jobs), f(m.AvgBSLD), f(m.AvgWait), f(m.MaxWait),
			strconv.Itoa(m.ReducedJobs), f(m.CompEnergy), f(m.IdleEnergy),
			f(m.TotalEnergyLow), f(m.Utilization), errStr,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonRow is the JSON output shape: the point, the metrics and the policy
// name actually used, plus any per-run error.
type jsonRow struct {
	Point   sweep.Point     `json:"point"`
	CPUs    int             `json:"cpus,omitempty"`
	Policy  string          `json:"policy,omitempty"`
	Results json.RawMessage `json:"results,omitempty"`
	Error   string          `json:"error,omitempty"`
}

func writeJSON(w io.Writer, results []sweep.Result) error {
	rows := make([]jsonRow, len(results))
	for i, r := range results {
		rows[i] = jsonRow{Point: r.Point}
		if r.Err != nil {
			rows[i].Error = r.Err.Error()
			continue
		}
		raw, err := json.Marshal(r.Outcome.Results)
		if err != nil {
			return err
		}
		rows[i].CPUs = r.Outcome.CPUs
		rows[i].Policy = r.Outcome.Policy
		rows[i].Results = raw
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
