// Command calibrate is a development aid: it prints baseline and
// DVFS-policy metrics for the five workload presets so generator loads can
// be tuned against the paper's Tables 1 and 3. The 25-run grid executes
// in parallel through the sweep pool; output stays in preset order.
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/wgen"
)

func main() {
	presets := wgen.Presets()
	grid := sweep.Grid{
		Policies: []sweep.PolicyConfig{
			{}, // no-DVFS baseline, the normalization denominator
			{BSLDThr: 1.5, WQThr: 0},
			{BSLDThr: 2, WQThr: 4},
			{BSLDThr: 2, WQThr: core.NoWQLimit},
			{BSLDThr: 3, WQThr: core.NoWQLimit},
		},
	}
	for _, m := range presets {
		grid.Traces = append(grid.Traces, m.Name)
	}
	// Name-based resolution through the scenario compiler: each preset
	// generates once at its native length (Jobs: 0) into a shared arena
	// all five policy cells execute against.
	resolver := &sweep.Resolver{Materialize: true}
	results, err := sweep.Sweep(context.Background(), grid, resolver, nil)
	if err != nil {
		fail(err)
	}
	perPreset := len(grid.Policies)
	for i := range presets {
		rows := results[i*perPreset : (i+1)*perPreset]
		for _, r := range rows {
			if r.Err != nil {
				fail(fmt.Errorf("%s: %w", r.Point.Label(), r.Err))
			}
		}
		base := rows[0].Outcome
		fmt.Printf("%-12s base: BSLD=%6.2f wait=%7.0f Ecomp=%11.4g\n",
			rows[0].Point.Trace, base.Results.AvgBSLD, base.Results.AvgWait, base.Results.CompEnergy)
		for _, r := range rows[1:] {
			out := r.Outcome
			fmt.Printf("  %-14s BSLD=%6.2f wait=%7.0f Ecomp=%6.2f%% Elow=%6.2f%% reduced=%4d\n",
				out.Policy, out.Results.AvgBSLD, out.Results.AvgWait,
				100*out.Results.CompEnergy/base.Results.CompEnergy,
				100*out.Results.TotalEnergyLow/base.Results.TotalEnergyLow,
				out.Results.ReducedJobs)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
