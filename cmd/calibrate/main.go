// Command calibrate is a development aid: it prints baseline and
// DVFS-policy metrics for the five workload presets so generator loads can
// be tuned against the paper's Tables 1 and 3.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/wgen"
)

func main() {
	gears := dvfs.PaperGearSet()
	tm := dvfs.NewTimeModel(runner.DefaultBeta, gears)
	for _, m := range wgen.Presets() {
		tr, err := wgen.Generate(m)
		if err != nil {
			panic(err)
		}
		base, err := runner.Run(runner.Spec{Trace: tr})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s base: BSLD=%6.2f wait=%7.0f Ecomp=%11.4g\n",
			m.Name, base.Results.AvgBSLD, base.Results.AvgWait, base.Results.CompEnergy)
		for _, cfg := range []struct {
			thr float64
			wq  int
		}{{1.5, 0}, {2, 4}, {2, core.NoWQLimit}, {3, core.NoWQLimit}} {
			pol, err := core.NewPolicy(core.Params{BSLDThreshold: cfg.thr, WQThreshold: cfg.wq}, gears, tm)
			if err != nil {
				panic(err)
			}
			out, err := runner.Run(runner.Spec{Trace: tr, Policy: pol})
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-14s BSLD=%6.2f wait=%7.0f Ecomp=%6.2f%% Elow=%6.2f%% reduced=%4d\n",
				pol.Name(), out.Results.AvgBSLD, out.Results.AvgWait,
				100*out.Results.CompEnergy/base.Results.CompEnergy,
				100*out.Results.TotalEnergyLow/base.Results.TotalEnergyLow,
				out.Results.ReducedJobs)
		}
	}
}
