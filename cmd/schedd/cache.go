package main

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU over scenario hashes. Every entry
// is a fully rendered what-if answer: identical requests hash to the same
// scenario, so one simulation serves every client that ever asks the same
// question (the whole pipeline is deterministic — a cached answer is
// bit-identical to a re-run).
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	byKey map[string]*list.Element // hash → element whose Value is *cacheEntry
}

type cacheEntry struct {
	key string
	val whatifResponse
}

// newResultCache returns an LRU holding up to cap entries; cap <= 0
// disables caching (every Get misses, every Put is dropped).
func newResultCache(cap int) *resultCache {
	return &resultCache{
		cap:   cap,
		order: list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// Get returns the cached answer for the hash, marking it most recently
// used.
func (c *resultCache) Get(key string) (whatifResponse, bool) {
	if c.cap <= 0 {
		return whatifResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return whatifResponse{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores the answer under the hash, evicting the least recently used
// entry when over capacity.
func (c *resultCache) Put(key string, val whatifResponse) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// Len is the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
