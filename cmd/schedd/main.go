// Command schedd serves what-if scheduling queries over HTTP. A client
// POSTs a scenario spec (workload preset, DVFS policy, machine size,
// platform overrides) to /v1/whatif and gets back the simulated metrics:
//
//	schedd -addr :8080 &
//	curl -s localhost:8080/v1/whatif -d '{
//	        "workload": "CTC", "jobs": 2000,
//	        "policy":   {"bsld_thr": 2, "wq_thr": 4}
//	}'
//
// ("wq_thr": 2147483647 — core.NoWQLimit — is the paper's "NO LIMIT".)
//
// Every request compiles to an immutable scenario whose canonical hash
// keys an LRU result cache, so repeated questions are answered without
// re-simulating and identical concurrent questions share one run. One
// compiler instance backs the whole server: each workload generates or
// parses once into a shared arena no matter how many requests touch it.
// Simulations run on a bounded worker pool (-workers); shutdown via
// SIGINT/SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "max concurrent simulations (0 = all cores)")
		cacheSize = flag.Int("cache", 256, "result cache capacity in scenarios (0 disables)")
		maxJobs   = flag.Int("max-jobs", 200000, "largest workload length served (0 = unlimited)")
		allowSWF  = flag.Bool("allow-swf", false, "allow .swf workload paths (reads server-local files)")
		drain     = flag.Duration("drain", 2*time.Minute, "shutdown grace period for in-flight simulations")
	)
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}

	s := newServer(serverConfig{
		Workers:   *workers,
		CacheSize: *cacheSize,
		MaxJobs:   *maxJobs,
		AllowSWF:  *allowSWF,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("schedd: listening on %s (workers=%d cache=%d max-jobs=%d)",
		*addr, *workers, *cacheSize, *maxJobs)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	log.Printf("schedd: shutting down, draining in-flight simulations (up to %s)", *drain)
	sdctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sdctx); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("schedd: bye (hits=%d misses=%d errors=%d)",
		s.hits.Load(), s.misses.Load(), s.errors.Load())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedd:", err)
	os.Exit(1)
}
