package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/altpolicy"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/wgen"
)

// serverConfig bounds what the server will simulate.
type serverConfig struct {
	// Workers bounds concurrently running simulations; requests beyond it
	// queue on the semaphore.
	Workers int
	// CacheSize is the LRU capacity in scenario results (0 disables).
	CacheSize int
	// MaxJobs rejects what-ifs whose workload exceeds this many jobs
	// (0 = unlimited). The Million/TenMillion presets are minutes of CPU;
	// an open endpoint needs a ceiling.
	MaxJobs int
	// AllowSWF permits .swf workload paths, i.e. serving files from the
	// server's filesystem. Off by default: a remote client choosing local
	// paths is a read primitive.
	AllowSWF bool
}

// server answers what-if queries over shared compiled scenarios. One
// compiler (and so one workload arena per preset/log) backs every
// request; results are cached by canonical scenario hash and identical
// in-flight requests are coalesced into one simulation.
type server struct {
	cfg   serverConfig
	comp  scenario.Compiler
	cache *resultCache
	sem   chan struct{} // simulation worker slots

	mu       sync.Mutex
	inflight map[string]*flight // scenario hash → running simulation

	hits, misses, errors atomic.Int64
}

// flight is one running simulation identical requests wait on.
type flight struct {
	done chan struct{}
	resp whatifResponse
	err  error
}

func newServer(cfg serverConfig) *server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &server{
		cfg:      cfg,
		cache:    newResultCache(cfg.CacheSize),
		sem:      make(chan struct{}, cfg.Workers),
		inflight: make(map[string]*flight),
	}
}

// whatifResponse is the answer to one what-if query. Cached and
// ElapsedMS are per-request (a cache hit reports cached=true and the
// lookup's elapsed time, not the original simulation's).
type whatifResponse struct {
	Hash      string          `json:"hash"`
	Cached    bool            `json:"cached"`
	Workload  string          `json:"workload"`
	Jobs      int             `json:"jobs"`
	CPUs      int             `json:"cpus"`
	Policy    string          `json:"policy"`
	Results   metrics.Results `json:"results"`
	PowerCap  *capStats       `json:"power_cap,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

// capStats reports the power-cap controller's tracking statistics for
// capped scenarios (absent otherwise).
type capStats struct {
	Cap        float64 `json:"cap"`
	AvgDraw    float64 `json:"avg_draw"`
	PeakDraw   float64 `json:"peak_draw"`
	OverFrac   float64 `json:"over_cap_time_frac"`
	Actuations int     `json:"actuations"`
}

// errorResponse is the JSON error shape.
type errorResponse struct {
	Error string `json:"error"`
}

// mux wires the server's routes.
func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", s.handleHealthz)
	m.HandleFunc("/v1/whatif", s.handleWhatif)
	m.HandleFunc("/v1/stats", s.handleStats)
	return m
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statsResponse reports cache effectiveness and error volume.
type statsResponse struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Errors       int64 `json:"errors"`
	CacheEntries int   `json:"cache_entries"`
	Workers      int   `json:"workers"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Errors:       s.errors.Load(),
		CacheEntries: s.cache.Len(),
		Workers:      s.cfg.Workers,
	})
}

// handleWhatif answers POST /v1/whatif: the body is the JSON form of
// scenario.Spec (workload name, policy, machine, platform overrides).
func (s *server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST a scenario spec"})
		return
	}
	var spec scenario.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if status, err := s.admit(spec); err != nil {
		s.errors.Add(1)
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}

	start := time.Now()
	sc, err := s.comp.Compile(spec)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if resp, ok := s.cache.Get(sc.Hash()); ok {
		s.hits.Add(1)
		resp.Cached = true
		resp.ElapsedMS = msSince(start)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.misses.Add(1)
	resp, err := s.execute(r, sc)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	resp.ElapsedMS = msSince(start)
	writeJSON(w, http.StatusOK, resp)
}

// admit applies the server's workload policy before any compilation
// work happens.
func (s *server) admit(spec scenario.Spec) (int, error) {
	if spec.Workload == "" {
		return http.StatusBadRequest, fmt.Errorf("workload is required (a preset name%s)", swfHint(s.cfg.AllowSWF))
	}
	if strings.HasSuffix(spec.Workload, ".swf") {
		if !s.cfg.AllowSWF {
			return http.StatusForbidden, fmt.Errorf("SWF file workloads are disabled on this server (start with -allow-swf)")
		}
		return 0, nil
	}
	if s.cfg.MaxJobs > 0 {
		// The preset's native length applies when the request doesn't
		// override it; checking here keeps oversized requests from paying
		// compile-time generation passes before being refused.
		m, err := wgen.Preset(spec.Workload)
		if err != nil {
			return http.StatusBadRequest, err
		}
		jobs := spec.Jobs
		if jobs <= 0 {
			jobs = m.Jobs
		}
		if jobs > s.cfg.MaxJobs {
			return http.StatusForbidden, fmt.Errorf("workload %s at %d jobs exceeds this server's -max-jobs %d", spec.Workload, jobs, s.cfg.MaxJobs)
		}
	}
	return 0, nil
}

func swfHint(allowed bool) string {
	if allowed {
		return " or .swf path"
	}
	return ""
}

// execute runs the scenario on a worker slot, coalescing identical
// in-flight requests onto one simulation: the first request simulates,
// the rest wait on its flight and share the answer.
func (s *server) execute(r *http.Request, sc *scenario.Scenario) (whatifResponse, error) {
	key := sc.Hash()
	s.mu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.resp, f.err
		case <-r.Context().Done():
			return whatifResponse{}, r.Context().Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(f.done)
	}()

	s.sem <- struct{}{} // acquire a worker slot
	out, err := sc.Execute()
	<-s.sem
	if err != nil {
		f.err = err
		return whatifResponse{}, err
	}
	f.resp = whatifResponse{
		Hash:     key,
		Workload: sc.Workload(),
		Jobs:     out.Results.Jobs,
		CPUs:     out.CPUs,
		Policy:   out.Policy,
		Results:  out.Results,
	}
	if pc, ok := out.Controller.(*altpolicy.PowerCap); ok {
		rep := pc.Report()
		f.resp.PowerCap = &capStats{
			Cap: rep.Cap, AvgDraw: rep.AvgDraw, PeakDraw: rep.PeakDraw,
			OverFrac: rep.OverFrac, Actuations: rep.Actuations,
		}
	}
	s.cache.Put(key, f.resp)
	return f.resp, nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
