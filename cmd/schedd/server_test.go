package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinySpec is a CTC what-if small enough for unit tests.
const tinySpec = `{"workload": "CTC", "jobs": 300, "policy": {"bsld_thr": 2, "wq_thr": 4}}`

func postWhatif(t *testing.T, ts *httptest.Server, body string) (int, whatifResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/whatif", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/whatif: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	var out whatifResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode response (status %d): %v\n%s", resp.StatusCode, err, raw)
	}
	return resp.StatusCode, out, string(raw)
}

func TestWhatifRoundTripAndCacheHit(t *testing.T) {
	s := newServer(serverConfig{Workers: 2, CacheSize: 8})
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	status, first, raw := postWhatif(t, ts, tinySpec)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d\n%s", status, raw)
	}
	if first.Cached {
		t.Fatalf("first request reported cached=true")
	}
	if first.Hash == "" || first.Jobs != 300 || first.Policy == "" || first.Results.AvgBSLD <= 0 {
		t.Fatalf("implausible first response: %+v", first)
	}

	status, second, raw := postWhatif(t, ts, tinySpec)
	if status != http.StatusOK {
		t.Fatalf("second request: status %d\n%s", status, raw)
	}
	if !second.Cached {
		t.Fatalf("second identical request missed the cache: %+v", second)
	}
	if second.Hash != first.Hash {
		t.Fatalf("hash changed between identical requests: %q vs %q", first.Hash, second.Hash)
	}
	if second.Results != first.Results {
		t.Fatalf("cached results differ from originals:\n%+v\n%+v", first.Results, second.Results)
	}
	if h, m := s.hits.Load(), s.misses.Load(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
}

// TestWhatifConcurrentIdenticalRequests hammers one spec from many
// goroutines: every answer must be bit-identical, and the in-flight
// coalescing plus cache must keep the simulation count at one.
func TestWhatifConcurrentIdenticalRequests(t *testing.T) {
	s := newServer(serverConfig{Workers: 4, CacheSize: 8})
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	const n = 8
	responses := make([]whatifResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, out, raw := postWhatif(t, ts, tinySpec)
			if status != http.StatusOK {
				t.Errorf("goroutine %d: status %d\n%s", i, status, raw)
				return
			}
			responses[i] = out
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < n; i++ {
		if responses[i].Results != responses[0].Results {
			t.Fatalf("goroutine %d got different results:\n%+v\n%+v",
				i, responses[0].Results, responses[i].Results)
		}
		if responses[i].Hash != responses[0].Hash {
			t.Fatalf("goroutine %d got hash %q, want %q", i, responses[i].Hash, responses[0].Hash)
		}
	}
	// Coalescing guarantee: n identical concurrent requests run the
	// simulation at most a couple of times (one in-flight leader plus any
	// request that arrived after the leader finished but missed the LRU
	// window), never once per request.
	if m := s.misses.Load(); m == 0 || m > 3 {
		t.Fatalf("misses=%d for %d identical requests, want a small positive count", m, n)
	}
}

// TestWhatifDistinctPoliciesShareOneArena checks that different policies
// over the same workload return different hashes and results but reuse
// the compiled workload (observable only as correctness here; arena
// sharing itself is covered by the scenario package tests).
func TestWhatifDistinctPolicies(t *testing.T) {
	s := newServer(serverConfig{Workers: 2, CacheSize: 8})
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	_, dvfs, _ := postWhatif(t, ts, tinySpec)
	_, base, _ := postWhatif(t, ts, `{"workload": "CTC", "jobs": 300}`)
	if dvfs.Hash == base.Hash {
		t.Fatalf("baseline and DVFS specs produced the same hash %q", dvfs.Hash)
	}
	if !strings.HasPrefix(base.Policy, "fixed@") {
		t.Fatalf("baseline policy = %q, want a fixed top-gear policy", base.Policy)
	}
	if dvfs.Results.CompEnergy >= base.Results.CompEnergy {
		t.Fatalf("DVFS comp energy %g not below baseline %g",
			dvfs.Results.CompEnergy, base.Results.CompEnergy)
	}
}

// TestWhatifPowerCap checks a capped spec hashes apart from the uncapped
// one and carries the controller's tracking stats in the response.
func TestWhatifPowerCap(t *testing.T) {
	s := newServer(serverConfig{Workers: 2, CacheSize: 8})
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	capped := `{"workload": "CTC", "jobs": 300, "policy": {"bsld_thr": 2, "wq_thr": 4}, "controller": {"cap_frac": 0.6}}`
	_, free, _ := postWhatif(t, ts, tinySpec)
	status, cap, raw := postWhatif(t, ts, capped)
	if status != http.StatusOK {
		t.Fatalf("capped request: status %d\n%s", status, raw)
	}
	if cap.Hash == free.Hash {
		t.Fatalf("capped and uncapped specs produced the same hash %q", cap.Hash)
	}
	if free.PowerCap != nil {
		t.Fatalf("uncapped response carries cap stats: %+v", free.PowerCap)
	}
	if cap.PowerCap == nil {
		t.Fatalf("capped response missing power_cap stats:\n%s", raw)
	}
	if cap.PowerCap.Cap <= 0 || cap.PowerCap.AvgDraw <= 0 {
		t.Fatalf("implausible cap stats: %+v", cap.PowerCap)
	}

	// The cached answer keeps the stats.
	_, again, _ := postWhatif(t, ts, capped)
	if !again.Cached || again.PowerCap == nil || *again.PowerCap != *cap.PowerCap {
		t.Fatalf("cache hit lost cap stats: cached=%t %+v", again.Cached, again.PowerCap)
	}
}

func TestWhatifRejections(t *testing.T) {
	s := newServer(serverConfig{Workers: 1, CacheSize: 8, MaxJobs: 1000})
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	cases := []struct {
		name, body string
		status     int
		errSubstr  string
	}{
		{"empty workload", `{}`, http.StatusBadRequest, "workload is required"},
		{"unknown field", `{"workload": "CTC", "zap": 1}`, http.StatusBadRequest, "unknown field"},
		{"unknown preset", `{"workload": "Nope"}`, http.StatusBadRequest, "unknown workload"},
		{"swf disabled", `{"workload": "/etc/passwd.swf"}`, http.StatusForbidden, "-allow-swf"},
		{"over max jobs", `{"workload": "CTC", "jobs": 5000}`, http.StatusForbidden, "-max-jobs"},
		{"native length over max jobs", `{"workload": "CTC"}`, http.StatusForbidden, "-max-jobs"},
		{"bad beta", `{"workload": "CTC", "jobs": 300, "beta": 0}`, http.StatusBadRequest, "Beta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/whatif", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("decode error body: %v", err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (error %q)", resp.StatusCode, tc.status, e.Error)
			}
			if !strings.Contains(e.Error, tc.errSubstr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.errSubstr)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/whatif")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/whatif: status %d, want 405", resp.StatusCode)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s := newServer(serverConfig{Workers: 2, CacheSize: 8})
	ts := httptest.NewServer(s.mux())
	defer ts.Close()

	postWhatif(t, ts, tinySpec)
	postWhatif(t, ts, tinySpec)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Misses != 1 || st.CacheEntries != 1 || st.Workers != 2 {
		t.Fatalf("stats %+v, want hits=1 misses=1 entries=1 workers=2", st)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
}

// TestGracefulShutdownDrains verifies http.Server.Shutdown waits for an
// in-flight simulation to answer before returning.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newServer(serverConfig{Workers: 2, CacheSize: 8})
	srv := httptest.NewServer(s.mux())
	// Take over the underlying server so we can call Shutdown ourselves.
	inner := srv.Config

	type result struct {
		status int
		out    whatifResponse
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/whatif", "application/json",
			strings.NewReader(`{"workload": "SDSC", "jobs": 2000, "policy": {"bsld_thr": 2, "wq_thr": 2147483647}}`))
		if err != nil {
			t.Errorf("in-flight request failed: %v", err)
			resc <- result{}
			return
		}
		defer resp.Body.Close()
		var out whatifResponse
		json.NewDecoder(resp.Body).Decode(&out)
		resc <- result{resp.StatusCode, out}
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the handler

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := inner.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	select {
	case r := <-resc:
		if t.Failed() {
			t.FailNow()
		}
		if r.status != http.StatusOK || r.out.Results.Jobs != 2000 {
			t.Fatalf("drained request: status %d results %+v", r.status, r.out.Results)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed after Shutdown returned")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", whatifResponse{Hash: "a"})
	c.Put("b", whatifResponse{Hash: "b"})
	if _, ok := c.Get("a"); !ok { // touch a → b is now LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", whatifResponse{Hash: "c"})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if v, ok := c.Get(k); !ok || v.Hash != k {
			t.Fatalf("entry %q missing or wrong after eviction", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}

	off := newResultCache(0)
	off.Put("a", whatifResponse{Hash: "a"})
	if _, ok := off.Get("a"); ok || off.Len() != 0 {
		t.Fatal("cap 0 cache stored an entry")
	}
}
