// Command benchgate guards the scheduler hot path's throughput in CI: it
// parses `go test -bench` output and compares the Million-preset
// seed-vs-optimized speedup ratio against the last committed entry of
// BENCH_sched.json. A drop beyond the allowed fraction fails the build.
//
// The gate is a ratio, not absolute jobs/s, on purpose: both modes run
// in the same bench invocation on the same host, so dividing them
// cancels runner hardware out — a slow CI machine scales both numbers
// down together, while an accidental O(n²) hiding in the optimized pass
// loop craters only the numerator. Absolute thresholds would instead
// track whatever hardware CI happens to land on.
//
// Usage:
//
//	go test -run '^$' -bench HotPathSeedVsOptimized -benchtime 1x . | tee bench.out
//	go run ./cmd/benchgate -bench bench.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchFile mirrors the subset of BENCH_sched.json the gate needs.
type benchFile struct {
	Entries []struct {
		PR        int    `json:"pr"`
		Benchmark string `json:"benchmark"`
		Results   []struct {
			Jobs     int     `json:"jobs"`
			Mode     string  `json:"mode"`
			JobsPerS float64 `json:"jobs_per_s"`
		} `json:"results"`
	} `json:"entries"`
}

func main() {
	var (
		benchPath  = flag.String("bench", "bench.out", "go test -bench output to scan")
		basePath   = flag.String("baseline", "BENCH_sched.json", "committed performance trajectory")
		benchmark  = flag.String("benchmark", "BenchmarkHotPathSeedVsOptimized", "benchmark to gate on")
		jobs       = flag.Int("jobs", 1_000_000, "Million-preset job count of the gated sub-runs")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum allowed fractional drop of the optimized/seed speedup")
	)
	flag.Parse()

	baseRatio, err := baselineRatio(*basePath, *benchmark, *jobs)
	if err != nil {
		fatal(err)
	}
	prefix := fmt.Sprintf("%s/jobs=%d/", *benchmark, *jobs)
	seed, err := measuredJobsPerSec(*benchPath, prefix+"seed")
	if err != nil {
		fatal(err)
	}
	opt, err := measuredJobsPerSec(*benchPath, prefix+"optimized")
	if err != nil {
		fatal(err)
	}
	ratio := opt / seed
	floor := baseRatio * (1 - *maxRegress)
	fmt.Printf("benchgate: optimized/seed speedup %.2fx (optimized %.0f, seed %.0f jobs/s); baseline %.2fx, floor %.2fx\n",
		ratio, opt, seed, baseRatio, floor)
	if ratio < floor {
		fatal(fmt.Errorf("speedup regressed %.1f%% (> %.0f%% allowed): %.2fx < %.2fx",
			100*(1-ratio/baseRatio), 100**maxRegress, ratio, floor))
	}
	fmt.Println("benchgate: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

// baselineRatio returns optimized/seed jobs/s from the newest
// BENCH_sched.json entry of the benchmark carrying both rows at the
// given job count.
func baselineRatio(path, benchmark string, jobs int) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for i := len(bf.Entries) - 1; i >= 0; i-- {
		if bf.Entries[i].Benchmark != benchmark {
			continue
		}
		var seed, opt float64
		for _, r := range bf.Entries[i].Results {
			if r.Jobs != jobs {
				continue
			}
			switch r.Mode {
			case "seed":
				seed = r.JobsPerS
			case "optimized":
				opt = r.JobsPerS
			}
		}
		if seed > 0 && opt > 0 {
			return opt / seed, nil
		}
	}
	return 0, fmt.Errorf("%s: no %s entry with seed+optimized rows at jobs=%d", path, benchmark, jobs)
}

// measuredJobsPerSec scans go-test bench output for the target sub-run
// and returns the value reported with the jobs/s unit. Benchmark lines
// read: Name-P  N  <value> <unit>  <value> <unit> ...
func measuredJobsPerSec(path, target string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], target) {
			continue
		}
		for i := 2; i < len(fields)-1; i++ {
			if fields[i+1] == "jobs/s" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, fmt.Errorf("parsing %q: %w", fields[i], err)
				}
				return v, nil
			}
		}
		return 0, fmt.Errorf("bench line for %s carries no jobs/s metric", target)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("%s: no bench line matching %s", path, target)
}
