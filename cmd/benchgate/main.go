// Command benchgate guards the scheduler hot path's throughput and the
// streaming pipeline's memory footprint in CI: it parses `go test -bench`
// output and compares two quantities against the last committed entries
// of BENCH_sched.json, failing the build on a regression beyond the
// allowed fraction.
//
// Gate 1 — throughput: the Million-preset seed-vs-optimized speedup
// ratio. The gate is a ratio, not absolute jobs/s, on purpose: both modes
// run in the same bench invocation on the same host, so dividing them
// cancels runner hardware out — a slow CI machine scales both numbers
// down together, while an accidental O(n²) hiding in the optimized pass
// loop craters only the numerator. Absolute thresholds would instead
// track whatever hardware CI happens to land on.
//
// Gate 2 — memory: the streamed Million replay's peak-heap-MB high-water
// (BenchmarkStreamingMillionHeap). Unlike wall clock, the allocation
// pattern of a deterministic replay is essentially host-independent, so
// this gate compares the absolute megabytes: an O(trace) slice sneaking
// back into the streaming path shows up as a ~5x jump, far beyond the
// regression allowance.
//
// Gate 3 — replanning: the conservative-backfilling Million-preset
// seed-vs-optimized speedup ratio (BenchmarkConservativeMillionPreset).
// Conservative replans every queued job against the availability profile
// each pass, so this ratio holds the incremental-replanning win — the
// persistent profile, the changed-prefix reservation reuse and the
// skyline-tree EarliestStart — the same way gate 1 holds the hot-path
// win: as a same-host ratio that cancels runner hardware out.
//
// Gate 4 — release index: the conservative FULL-Million-preset
// memmove-vs-optimized speedup ratio (BenchmarkConservativeFullMillion).
// The baseline mode here is Compat.SliceReleases — the PR 5 flat release
// cache whose O(running) memmove insert/remove dominated replanning
// passes once the profile persisted — because the seed path is infeasible
// at one million jobs (close to an hour per run). The ratio holds the
// chunked ordered release index's win at system scale.
//
// Gate 5 — controller overhead: the EASY Million-preset capped-vs-off
// throughput ratio (BenchmarkControllerMillion). The capped mode runs the
// PI power-cap controller at CapFrac=1, where it meters and decides every
// pass but never actuates, so the schedule is byte-identical and the
// ratio isolates the power-controller layer's observe/decide cost. Like
// the other ratios it cancels runner hardware out; a drop means the
// controller hot path (O(1) metering, the control law, the gear-ceiling
// walk) grew beyond its allowance.
//
// Gate 6 — reservation tier: the conservative FULL-Million-preset
// flatresv-vs-optimized speedup ratio, from the same
// BenchmarkConservativeFullMillion invocation gate 4 reads. The baseline
// mode is Compat.FlatReservations — the PR 6-8 flat profile tiers
// (pending buffer + skyline tree + flat reservation slices) — so the
// ratio isolates exactly what the chunked skyline and reservation
// indexes bought, independently of the release-index win gate 4 holds.
//
// Every gate disables via an empty benchmark name.
//
// Usage:
//
//	go test -run '^$' -bench 'HotPathSeedVsOptimized|StreamingMillionHeap|ConservativeMillionPreset|ConservativeFullMillion|ControllerMillion' -benchtime 1x . | tee bench.out
//	go run ./cmd/benchgate -bench bench.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchFile mirrors the subset of BENCH_sched.json the gates need.
type benchFile struct {
	Entries []struct {
		PR        int    `json:"pr"`
		Benchmark string `json:"benchmark"`
		Results   []struct {
			Jobs       int     `json:"jobs"`
			Mode       string  `json:"mode"`
			JobsPerS   float64 `json:"jobs_per_s"`
			PeakHeapMB float64 `json:"peak_heap_mb"`
		} `json:"results"`
	} `json:"entries"`
}

// config carries every gate's knobs; each gate disables via an empty
// benchmark name.
type config struct {
	benchPath, basePath string

	benchmark  string // gate 1
	jobs       int
	maxRegress float64

	heapBench  string // gate 2
	heapGrowth float64

	consBench   string // gate 3
	consJobs    int
	consRegress float64

	idxBench   string // gate 4
	idxJobs    int
	idxRegress float64

	ctrlBench   string // gate 5
	ctrlJobs    int
	ctrlRegress float64

	resvBench   string // gate 6
	resvJobs    int
	resvRegress float64
}

func parseFlags(fs *flag.FlagSet, args []string) (config, error) {
	var cfg config
	fs.StringVar(&cfg.benchPath, "bench", "bench.out", "go test -bench output to scan")
	fs.StringVar(&cfg.basePath, "baseline", "BENCH_sched.json", "committed performance trajectory")
	fs.StringVar(&cfg.benchmark, "benchmark", "BenchmarkHotPathSeedVsOptimized", "throughput benchmark to gate on (empty disables the throughput gate)")
	fs.IntVar(&cfg.jobs, "jobs", 1_000_000, "Million-preset job count of the gated sub-runs")
	fs.Float64Var(&cfg.maxRegress, "max-regress", 0.20, "maximum allowed fractional drop of the optimized/seed speedup")
	fs.StringVar(&cfg.heapBench, "heap-benchmark", "BenchmarkStreamingMillionHeap", "streaming peak-heap benchmark to gate on (empty disables the heap gate)")
	fs.Float64Var(&cfg.heapGrowth, "heap-max-growth", 0.20, "maximum allowed fractional growth of the streamed peak heap")
	fs.StringVar(&cfg.consBench, "cons-benchmark", "BenchmarkConservativeMillionPreset", "replanning benchmark to gate on (empty disables the replanning gate)")
	fs.IntVar(&cfg.consJobs, "cons-jobs", 40_000, "Million-preset job count of the gated replanning sub-runs")
	fs.Float64Var(&cfg.consRegress, "cons-max-regress", 0.20, "maximum allowed fractional drop of the replanning optimized/seed speedup")
	fs.StringVar(&cfg.idxBench, "relindex-benchmark", "BenchmarkConservativeFullMillion", "release-index benchmark to gate on (empty disables the release-index gate)")
	fs.IntVar(&cfg.idxJobs, "relindex-jobs", 1_000_000, "job count of the gated full-preset replanning sub-runs")
	fs.Float64Var(&cfg.idxRegress, "relindex-max-regress", 0.20, "maximum allowed fractional drop of the optimized/memmove speedup")
	fs.StringVar(&cfg.ctrlBench, "ctrl-benchmark", "BenchmarkControllerMillion", "controller-overhead benchmark to gate on (empty disables the controller gate)")
	fs.IntVar(&cfg.ctrlJobs, "ctrl-jobs", 1_000_000, "Million-preset job count of the gated controller sub-runs")
	fs.Float64Var(&cfg.ctrlRegress, "ctrl-max-regress", 0.20, "maximum allowed fractional drop of the capped/off throughput ratio")
	fs.StringVar(&cfg.resvBench, "resv-benchmark", "BenchmarkConservativeFullMillion", "reservation-tier benchmark to gate on (empty disables the reservation-tier gate)")
	fs.IntVar(&cfg.resvJobs, "resv-jobs", 1_000_000, "job count of the gated reservation-tier sub-runs")
	fs.Float64Var(&cfg.resvRegress, "resv-max-regress", 0.20, "maximum allowed fractional drop of the optimized/flatresv speedup")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// run evaluates every enabled gate in order and returns the first
// violation or read error.
func run(cfg config, out io.Writer) error {
	if cfg.benchmark != "" {
		if err := gateRatio(out, "hot-path", cfg.benchPath, cfg.basePath, cfg.benchmark, cfg.jobs, cfg.maxRegress, "seed", "optimized"); err != nil {
			return err
		}
	}

	if cfg.heapBench != "" {
		baseHeap, err := baselineHeapMB(cfg.basePath, cfg.heapBench, cfg.jobs, "streamed")
		if err != nil {
			return err
		}
		target := fmt.Sprintf("%s/jobs=%d/streamed", cfg.heapBench, cfg.jobs)
		heap, err := measuredMetric(cfg.benchPath, target, "peak-heap-MB")
		if err != nil {
			return err
		}
		ceiling := baseHeap * (1 + cfg.heapGrowth)
		fmt.Fprintf(out, "benchgate: streamed peak heap %.1f MB; baseline %.1f MB, ceiling %.1f MB\n",
			heap, baseHeap, ceiling)
		if heap > ceiling {
			return fmt.Errorf("streamed peak heap grew %.1f%% (> %.0f%% allowed): %.1f MB > %.1f MB",
				100*(heap/baseHeap-1), 100*cfg.heapGrowth, heap, ceiling)
		}
	}

	if cfg.consBench != "" {
		if err := gateRatio(out, "replanning", cfg.benchPath, cfg.basePath, cfg.consBench, cfg.consJobs, cfg.consRegress, "seed", "optimized"); err != nil {
			return err
		}
	}

	if cfg.idxBench != "" {
		if err := gateRatio(out, "release-index", cfg.benchPath, cfg.basePath, cfg.idxBench, cfg.idxJobs, cfg.idxRegress, "memmove", "optimized"); err != nil {
			return err
		}
	}

	if cfg.ctrlBench != "" {
		if err := gateRatio(out, "controller", cfg.benchPath, cfg.basePath, cfg.ctrlBench, cfg.ctrlJobs, cfg.ctrlRegress, "off", "capped"); err != nil {
			return err
		}
	}

	if cfg.resvBench != "" {
		if err := gateRatio(out, "reservation-tier", cfg.benchPath, cfg.basePath, cfg.resvBench, cfg.resvJobs, cfg.resvRegress, "flatresv", "optimized"); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "benchgate: ok")
	return nil
}

// gateRatio holds one optMode/baseMode speedup ratio against the newest
// committed baseline of the given benchmark, returning an error when it
// drops beyond the allowed fraction. Both sub-runs come from the same
// bench invocation on the same host, so the ratio cancels runner
// hardware out.
func gateRatio(out io.Writer, label, benchPath, basePath, benchmark string, jobs int, maxRegress float64, baseMode, optMode string) error {
	base, err := baselineRatio(basePath, benchmark, jobs, baseMode, optMode)
	if err != nil {
		return err
	}
	prefix := fmt.Sprintf("%s/jobs=%d/", benchmark, jobs)
	ref, err := measuredMetric(benchPath, prefix+baseMode, "jobs/s")
	if err != nil {
		return err
	}
	opt, err := measuredMetric(benchPath, prefix+optMode, "jobs/s")
	if err != nil {
		return err
	}
	ratio := opt / ref
	floor := base * (1 - maxRegress)
	fmt.Fprintf(out, "benchgate: %s %s/%s speedup %.2fx (%s %.0f, %s %.0f jobs/s); baseline %.2fx, floor %.2fx\n",
		label, optMode, baseMode, ratio, optMode, opt, baseMode, ref, base, floor)
	if ratio < floor {
		return fmt.Errorf("%s speedup regressed %.1f%% (> %.0f%% allowed): %.2fx < %.2fx",
			label, 100*(1-ratio/base), 100*maxRegress, ratio, floor)
	}
	return nil
}

// baselineRatio returns optMode/baseMode jobs/s from the newest
// BENCH_sched.json entry of the benchmark carrying both rows at the
// given job count.
func baselineRatio(path, benchmark string, jobs int, baseMode, optMode string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for i := len(bf.Entries) - 1; i >= 0; i-- {
		if bf.Entries[i].Benchmark != benchmark {
			continue
		}
		var ref, opt float64
		for _, r := range bf.Entries[i].Results {
			if r.Jobs != jobs {
				continue
			}
			switch r.Mode {
			case baseMode:
				ref = r.JobsPerS
			case optMode:
				opt = r.JobsPerS
			}
		}
		if ref > 0 && opt > 0 {
			return opt / ref, nil
		}
	}
	return 0, fmt.Errorf("%s: no %s entry with %s+%s rows at jobs=%d", path, benchmark, baseMode, optMode, jobs)
}

// baselineHeapMB returns the peak_heap_mb of the newest BENCH_sched.json
// entry of the benchmark carrying a row at the given job count and mode.
func baselineHeapMB(path, benchmark string, jobs int, mode string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for i := len(bf.Entries) - 1; i >= 0; i-- {
		if bf.Entries[i].Benchmark != benchmark {
			continue
		}
		for _, r := range bf.Entries[i].Results {
			if r.Jobs == jobs && r.Mode == mode && r.PeakHeapMB > 0 {
				return r.PeakHeapMB, nil
			}
		}
	}
	return 0, fmt.Errorf("%s: no %s entry with a %s peak_heap_mb row at jobs=%d", path, benchmark, mode, jobs)
}

// measuredMetric scans go-test bench output for the target sub-run and
// returns the value reported with the given unit. Benchmark lines read:
// Name-P  N  <value> <unit>  <value> <unit> ...
func measuredMetric(path, target, unit string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], target) {
			continue
		}
		for i := 2; i < len(fields)-1; i++ {
			if fields[i+1] == unit {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return 0, fmt.Errorf("parsing %q: %w", fields[i], err)
				}
				return v, nil
			}
		}
		return 0, fmt.Errorf("bench line for %s carries no %s metric", target, unit)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("%s: no bench line matching %s", path, target)
}
