package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fixture baseline carries one FullMillion entry whose
// optimized/flatresv ratio is 2.5x, so the default 20% allowance puts
// the gate floor at 2.0x.
const baselineJSON = `{
  "entries": [
    {
      "pr": 9,
      "benchmark": "BenchmarkConservativeFullMillion",
      "results": [
        {"jobs": 1000000, "mode": "memmove", "jobs_per_s": 40000},
        {"jobs": 1000000, "mode": "flatresv", "jobs_per_s": 100000},
        {"jobs": 1000000, "mode": "optimized", "jobs_per_s": 250000}
      ]
    }
  ]
}`

const benchOutPass = `goos: linux
BenchmarkConservativeFullMillion/jobs=1000000/memmove-8         	       1	25000000000 ns/op	     40000 jobs/s
BenchmarkConservativeFullMillion/jobs=1000000/flatresv-8        	       1	10000000000 ns/op	    100000 jobs/s
BenchmarkConservativeFullMillion/jobs=1000000/optimized-8       	       1	 3846153846 ns/op	    260000 jobs/s
PASS
`

// The regressed run keeps the baseline flatresv throughput but the
// optimized mode collapses to 1.5x — under the 2.0x floor.
const benchOutRegressed = `goos: linux
BenchmarkConservativeFullMillion/jobs=1000000/memmove-8         	       1	25000000000 ns/op	     40000 jobs/s
BenchmarkConservativeFullMillion/jobs=1000000/flatresv-8        	       1	10000000000 ns/op	    100000 jobs/s
BenchmarkConservativeFullMillion/jobs=1000000/optimized-8       	       1	 6666666666 ns/op	    150000 jobs/s
PASS
`

// runGate parses the given extra flags on top of paths pointing at the
// two fixture files and evaluates the gates, returning run's error and
// everything printed. Every gate except the reservation-tier one is
// disabled unless the extra flags re-enable it.
func runGate(t *testing.T, baseline, benchOut string, extra ...string) (string, error) {
	t.Helper()
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_sched.json")
	benchPath := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(basePath, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchPath, []byte(benchOut), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-bench", benchPath, "-baseline", basePath,
		"-benchmark=", "-heap-benchmark=", "-cons-benchmark=",
		"-relindex-benchmark=", "-ctrl-benchmark=",
	}
	args = append(args, extra...)
	fs := flag.NewFlagSet("benchgate-test", flag.ContinueOnError)
	cfg, err := parseFlags(fs, args)
	if err != nil {
		t.Fatalf("parsing flags: %v", err)
	}
	var out strings.Builder
	err = run(cfg, &out)
	return out.String(), err
}

func TestReservationTierGatePasses(t *testing.T) {
	out, err := runGate(t, baselineJSON, benchOutPass)
	if err != nil {
		t.Fatalf("gate failed on a healthy run: %v", err)
	}
	if !strings.Contains(out, "reservation-tier optimized/flatresv speedup 2.60x") {
		t.Errorf("missing gate report, got:\n%s", out)
	}
	if !strings.Contains(out, "benchgate: ok") {
		t.Errorf("missing ok line, got:\n%s", out)
	}
}

func TestReservationTierGateFailsOnRegression(t *testing.T) {
	_, err := runGate(t, baselineJSON, benchOutRegressed)
	if err == nil {
		t.Fatal("gate passed a 1.5x run against a 2.0x floor")
	}
	if !strings.Contains(err.Error(), "reservation-tier speedup regressed") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGateFailsOnMissingBenchLine(t *testing.T) {
	// The run dropped the flatresv sub-benchmark entirely — the gate must
	// fail loudly rather than treat the hole as a pass.
	trimmed := strings.ReplaceAll(benchOutPass,
		"BenchmarkConservativeFullMillion/jobs=1000000/flatresv", "BenchmarkSomethingElse/flatresv")
	_, err := runGate(t, baselineJSON, trimmed)
	if err == nil {
		t.Fatal("gate passed with the flatresv bench line missing")
	}
	if !strings.Contains(err.Error(), "no bench line matching") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGateFailsOnMissingBaselineRows(t *testing.T) {
	// A baseline whose newest FullMillion entry predates the flatresv
	// mode: no entry carries both rows, so the gate cannot establish a
	// floor and must fail.
	old := strings.ReplaceAll(baselineJSON, `"flatresv"`, `"prehistoric"`)
	_, err := runGate(t, old, benchOutPass)
	if err == nil {
		t.Fatal("gate passed without a usable baseline entry")
	}
	if !strings.Contains(err.Error(), "no BenchmarkConservativeFullMillion entry with flatresv+optimized rows") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGatesDisableByEmptyName(t *testing.T) {
	// With every benchmark name empty, nothing is read: even files full
	// of garbage cannot fail the run.
	out, err := runGate(t, "not json", "no bench lines", "-resv-benchmark=")
	if err != nil {
		t.Fatalf("disabled gates still ran: %v", err)
	}
	if !strings.Contains(out, "benchgate: ok") {
		t.Errorf("missing ok line, got:\n%s", out)
	}
}

func TestReleaseIndexGateReadsSameBenchOutput(t *testing.T) {
	// Gates 4 and 6 share one BenchmarkConservativeFullMillion
	// invocation: enabling both against the same fixture must evaluate
	// both ratios (6.5x and 2.6x) from the same file.
	out, err := runGate(t, baselineJSON, benchOutPass,
		"-relindex-benchmark=BenchmarkConservativeFullMillion")
	if err != nil {
		t.Fatalf("gates failed on a healthy run: %v", err)
	}
	if !strings.Contains(out, "release-index optimized/memmove speedup 6.50x") {
		t.Errorf("missing release-index report, got:\n%s", out)
	}
	if !strings.Contains(out, "reservation-tier optimized/flatresv speedup 2.60x") {
		t.Errorf("missing reservation-tier report, got:\n%s", out)
	}
}
