package profile

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"
	"testing/quick"
)

// checkResvIndexInvariants verifies the reservation index's structural
// contract: every chunk is non-empty and below the split threshold,
// sorted within itself, chunk key ranges are disjoint and ascending, the
// per-chunk sums match their contents and the size matches the entry
// count.
func checkResvIndexInvariants(ix *resvIndex) error {
	if len(ix.chunks) != len(ix.sums) {
		return fmt.Errorf("directory skew: %d chunks, %d sums", len(ix.chunks), len(ix.sums))
	}
	n := 0
	lastT := float64(0)
	for ci, ch := range ix.chunks {
		if len(ch) == 0 {
			return fmt.Errorf("chunk %d empty", ci)
		}
		if len(ch) >= resvChunkMax {
			return fmt.Errorf("chunk %d holds %d entries, max %d", ci, len(ch), resvChunkMax)
		}
		sum := 0
		for k, d := range ch {
			if (ci > 0 || k > 0) && d.t < lastT {
				return fmt.Errorf("chunk %d[%d]: key %v below predecessor %v", ci, k, d.t, lastT)
			}
			lastT = d.t
			sum += d.d
		}
		if sum != ix.sums[ci] {
			return fmt.Errorf("chunk %d: sum %d, cached %d", ci, sum, ix.sums[ci])
		}
		n += len(ch)
	}
	if n != ix.size {
		return fmt.Errorf("size %d, counted %d", ix.size, n)
	}
	return nil
}

// checkSkyDexInvariants verifies the skyline index's structural
// contract: non-empty chunks below the split threshold, strictly
// increasing times within and across chunks (equal-time deltas coalesce
// on insert), prefix sums consistent with the deltas, extrema bounds
// never tighter than the true in-chunk prefix extrema, and a size
// matching the entry count.
func checkSkyDexInvariants(d *skyDex) error {
	n := 0
	lastT := float64(0)
	for ci := range d.chunks {
		c := &d.chunks[ci]
		if len(c.ds) == 0 {
			return fmt.Errorf("chunk %d empty", ci)
		}
		if len(c.ds) >= skyChunkMax {
			return fmt.Errorf("chunk %d holds %d entries, max %d", ci, len(c.ds), skyChunkMax)
		}
		if len(c.ds) != len(c.pre) {
			return fmt.Errorf("chunk %d: %d deltas, %d prefixes", ci, len(c.ds), len(c.pre))
		}
		run := 0
		for k, dd := range c.ds {
			if (ci > 0 || k > 0) && dd.t <= lastT {
				return fmt.Errorf("chunk %d[%d]: key %v not above predecessor %v (uncoalesced?)", ci, k, dd.t, lastT)
			}
			lastT = dd.t
			if dd.d == 0 {
				return fmt.Errorf("chunk %d[%d]: zero delta survived", ci, k)
			}
			run += dd.d
			if c.pre[k] != run {
				return fmt.Errorf("chunk %d[%d]: pre %d, recomputed %d", ci, k, c.pre[k], run)
			}
			if c.pre[k] > c.maxPre {
				return fmt.Errorf("chunk %d[%d]: pre %d above maxPre %d", ci, k, c.pre[k], c.maxPre)
			}
			if c.pre[k] < c.minPre {
				return fmt.Errorf("chunk %d[%d]: pre %d below minPre %d", ci, k, c.pre[k], c.minPre)
			}
		}
		n += len(c.ds)
	}
	if n != d.size {
		return fmt.Errorf("size %d, counted %d", d.size, n)
	}
	return nil
}

// TestQuickReservationTierMatchesFlatTiers is the pairwise differential
// for the chunked tier structures: one incremental profile on the
// default chunked indexes and one pinned to the flat compat tiers are
// driven through the same mixed op stream — starts, completions,
// reservation placements at colliding integer times, suffix truncations
// including full and no-op ones — and must answer every UsedAt and
// EarliestStart identically, with the index invariants intact after
// every pass.
func TestQuickReservationTierMatchesFlatTiers(t *testing.T) {
	passes := 1200
	if testing.Short() {
		passes = 150
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 16 + r.Intn(112)
		now := float64(r.Intn(8))

		idx := New(total)
		flat := New(total)
		flat.FlatReservations(true)
		var rels []Release
		for i := 0; i < r.Intn(12); i++ {
			rels = append(rels, Release{Time: now + float64(1+r.Intn(300)), CPUs: 1 + r.Intn(total/3)})
		}
		sortReleases(rels)
		idx.StartEpoch(total, now, rels)
		flat.StartEpoch(total, now, rels)

		var running []incJob
		for _, rel := range rels {
			running = append(running, incJob{cpus: rel.CPUs, end: rel.Time})
		}
		resvs := 0
		for pass := 0; pass < passes; pass++ {
			now += float64(r.Intn(3))
			idx.BeginPass(now)
			flat.BeginPass(now)
			switch r.Intn(12) {
			case 0, 1, 2:
				j := incJob{cpus: 1 + r.Intn(total/2), end: now + float64(1+r.Intn(250))}
				idx.Occupy(j.cpus, now, j.end)
				flat.Occupy(j.cpus, now, j.end)
				running = append(running, j)
			case 3, 4:
				if len(running) > 0 {
					i := r.Intn(len(running))
					j := running[i]
					idx.Vacate(j.cpus, now, j.end)
					flat.Vacate(j.cpus, now, j.end)
					running = append(running[:i], running[i+1:]...)
				}
			case 5, 6, 7, 8:
				// Integer start/duration force equal-time pileups across
				// reservations and the base skyline.
				cpus := 1 + r.Intn(total)
				dur := float64(r.Intn(60))
				st := idx.EarliestStart(cpus, dur, now)
				e := Entry{Start: st, End: st + dur, CPUs: cpus}
				idx.AddReservation(e)
				flat.AddReservation(e)
				resvs++
			default:
				keep := 0
				if resvs > 0 {
					keep = r.Intn(resvs + 1) // full, partial and no-op cuts
				}
				idx.TruncateReservations(keep)
				flat.TruncateReservations(keep)
				resvs = keep
			}
			if err := checkResvIndexInvariants(&idx.ridx); err != nil {
				t.Logf("seed %d pass %d: reservation index: %v", seed, pass, err)
				return false
			}
			if err := checkSkyDexInvariants(&idx.dex); err != nil {
				t.Logf("seed %d pass %d: skyline index: %v", seed, pass, err)
				return false
			}
			for trial := 0; trial < 3; trial++ {
				q := now + float64(r.Intn(200))
				if iu, fu := idx.UsedAt(q), flat.UsedAt(q); iu != fu {
					t.Logf("seed %d pass %d: UsedAt(%v) indexed=%d flat=%d", seed, pass, q, iu, fu)
					return false
				}
				cpus := 1 + r.Intn(total)
				dur := float64(r.Intn(90))
				from := now + float64(r.Intn(40))
				ie := idx.EarliestStart(cpus, dur, from)
				fe := flat.EarliestStart(cpus, dur, from)
				if ie != fe {
					t.Logf("seed %d pass %d: EarliestStart(%d,%v,%v) indexed=%v flat=%v (dex=%d ridx=%d)",
						seed, pass, cpus, dur, from, ie, fe, idx.dex.len(), idx.ridx.len())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestTruncateReservationsWorkBounds pins the rollback cost contract:
// with the indexed tier a truncate reprocesses at most min(suffix,
// prefix) journal entries and a full truncate is a free reset; repeated
// truncation to an already-applied prefix — the scheduler's steady
// state when a pass invalidates nothing — costs zero work in both
// modes. The counters are exact, so any regression to journal-replay
// behavior fails the equality, not just a loose bound.
func TestTruncateReservationsWorkBounds(t *testing.T) {
	build := func(flat bool, n int) *Profile {
		p := New(64)
		p.FlatReservations(flat)
		p.StartEpoch(64, 0, nil)
		for i := 0; i < n; i++ {
			st := float64(1 + i%37)
			p.AddReservation(Entry{Start: st, End: st + 5, CPUs: 1 + i%3})
		}
		return p
	}

	t.Run("indexed-suffix-removal", func(t *testing.T) {
		p := build(false, 1000)
		p.TruncateReservations(990)
		if p.truncWork != 10 {
			t.Fatalf("dropping a 10-entry suffix cost %d, want 10", p.truncWork)
		}
		if p.Reservations() != 990 || p.ridx.len() != 2*990 {
			t.Fatalf("after cut: %d journaled, %d indexed deltas", p.Reservations(), p.ridx.len())
		}
	})
	t.Run("indexed-prefix-rebuild", func(t *testing.T) {
		p := build(false, 1000)
		p.TruncateReservations(10)
		if p.truncWork != 10 {
			t.Fatalf("keeping a 10-entry prefix cost %d, want 10 (rebuilt from the kept side)", p.truncWork)
		}
		if p.ridx.len() != 2*10 {
			t.Fatalf("after rebuild: %d indexed deltas, want 20", p.ridx.len())
		}
	})
	t.Run("indexed-full-reset", func(t *testing.T) {
		p := build(false, 1000)
		p.TruncateReservations(0)
		if p.truncWork != 0 {
			t.Fatalf("full truncate cost %d, want 0 (wholesale reset)", p.truncWork)
		}
		if p.ridx.len() != 0 {
			t.Fatalf("index still holds %d deltas after full truncate", p.ridx.len())
		}
	})
	t.Run("flat-merged-tier-rebuild", func(t *testing.T) {
		p := build(true, 200)
		// Force the pending reservations through the flush threshold into
		// the merged tier, then cut below the merged boundary.
		p.EarliestStart(1, 1, 0)
		if p.resvMain != 200 {
			t.Fatalf("merged boundary at %d after flush, want 200", p.resvMain)
		}
		p.TruncateReservations(50)
		if p.truncWork != 50 {
			t.Fatalf("merged-tier rebuild cost %d, want 50 (the kept prefix)", p.truncWork)
		}
		if p.resvMain != 50 || len(p.resvPend) != 0 {
			t.Fatalf("after rebuild: resvMain=%d pending=%d", p.resvMain, len(p.resvPend))
		}
	})
	for _, mode := range []struct {
		name string
		flat bool
	}{{"indexed", false}, {"flat", true}} {
		t.Run("repeated-same-prefix-"+mode.name, func(t *testing.T) {
			p := build(mode.flat, 500)
			p.TruncateReservations(200)
			w := p.truncWork
			for i := 0; i < 100; i++ {
				p.TruncateReservations(200) // already applied: the journal shrank
				p.TruncateReservations(700) // beyond the journal: equally free
			}
			if p.truncWork != w {
				t.Fatalf("repeated truncate-to-same-prefix cost %d extra entries, want 0", p.truncWork-w)
			}
			if p.Reservations() != 200 {
				t.Fatalf("journal at %d entries, want 200", p.Reservations())
			}
		})
	}
}

// FuzzReservationTier drives the chunked reservation index from an
// arbitrary byte-encoded op stream and asserts its structural invariants
// and its query answers against a sorted-slice oracle after every
// mutation. Each op consumes two bytes: the opcode selector and an
// argument. Insert times come from the argument's low nibble, so
// equal-time runs pile up and span chunk boundaries; removals target a
// live delta or probe an absent key; rebuilds exercise the bulk loader
// the truncate prefix-rebuild path uses. The seed corpus lives under
// testdata/fuzz/FuzzReservationTier; CI runs a short -fuzz smoke on top
// of the seeds.
func FuzzReservationTier(f *testing.F) {
	f.Add([]byte{})
	// Reservation ramp then rollback-style drain.
	f.Add([]byte{0, 0x21, 0, 0x32, 0, 0x43, 0, 0x54, 1, 0, 1, 0, 1, 0, 1, 0})
	// Tie-heavy inserts with probes and an absent-key miss.
	f.Add([]byte{0, 0x13, 0, 0x13, 0, 0x13, 3, 9, 2, 3, 0, 0x13, 4, 1, 1, 2, 3, 0})
	// Enough churn to split chunks, then a rebuild and partial drain.
	seed := make([]byte, 0, 1500)
	for i := 0; i < 320; i++ {
		seed = append(seed, 0, byte(i))
	}
	seed = append(seed, 4, 0)
	for i := 0; i < 160; i++ {
		seed = append(seed, 1, byte(5*i))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		var ix resvIndex
		var live []delta // oracle: the exact multiset of indexed deltas
		sum := func(at float64) int {
			s := 0
			for _, d := range live {
				if d.t <= at {
					s += d.d
				}
			}
			return s
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 5 {
			case 0: // insert; low-nibble times force equal-time runs
				d := delta{t: float64(arg & 0x0f), d: 1 + int(arg>>4)}
				ix.insert(d)
				live = append(live, d)
			case 1: // remove a live delta (the truncate suffix path)
				if len(live) == 0 {
					continue
				}
				k := int(arg) % len(live)
				d := live[k]
				if !ix.removeOne(d.t, d.d) {
					t.Fatalf("removeOne(%v,%d) missed a live delta", d.t, d.d)
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			case 2: // removal probe with an impossible magnitude: must miss
				if ix.removeOne(float64(arg&0x0f), 99) {
					t.Fatal("removeOne hit an absent delta")
				}
			case 3: // point and entry queries against the oracle
				at := float64(arg&0x0f) + float64(arg>>4)/32
				if got, want := ix.sumAt(at), sum(at); got != want {
					t.Fatalf("sumAt(%v) = %d, oracle %d", at, got, want)
				}
				ci, k, s := ix.seek(at)
				if s != sum(at) {
					t.Fatalf("seek(%v) sum %d, oracle %d", at, s, sum(at))
				}
				if ci < len(ix.chunks) {
					if k >= len(ix.chunks[ci]) {
						t.Fatalf("seek(%v) cursor (%d,%d) out of chunk", at, ci, k)
					}
					if ix.chunks[ci][k].t <= at {
						t.Fatalf("seek(%v) landed on key %v", at, ix.chunks[ci][k].t)
					}
				}
			case 4: // rebuild from the oracle (the truncate prefix path)
				ds := slices.Clone(live)
				slices.SortFunc(ds, deltaCmp)
				ix.load(ds)
			}
			if ix.len() != len(live) {
				t.Fatalf("op %d: size %d, oracle %d", i/2, ix.len(), len(live))
			}
			if err := checkResvIndexInvariants(&ix); err != nil {
				t.Fatalf("op %d: %v", i/2, err)
			}
		}
		// Final content audit: same multiset, yielded in nondecreasing
		// time order (order within an equal-time run is unspecified).
		var got []delta
		ix.each(func(d delta) bool { got = append(got, d); return true })
		if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].t < got[b].t }) {
			t.Fatal("final iteration out of time order")
		}
		want := slices.Clone(live)
		key := func(a, b delta) int {
			if c := deltaCmp(a, b); c != 0 {
				return c
			}
			return a.d - b.d
		}
		slices.SortFunc(got, key)
		slices.SortFunc(want, key)
		if !slices.Equal(got, want) {
			t.Fatalf("final content diverged: %d indexed vs %d oracle deltas", len(got), len(want))
		}
	})
}
