// Package profile implements an availability profile: a step function of
// processor usage over future time built from running and planned jobs.
// The conservative and flexible backfilling variants plan every protected
// job against it, and tests use it as an independent oracle for the EASY
// shadow-time computation.
//
// The profile keeps its usage deltas in two tiers: a time-sorted main
// list with prefix-summed usage, and a small append-only pending buffer
// that is sorted on demand and merged into the main list once it grows
// past a fraction of it. Add is therefore an O(1) append (the seed-era
// implementation insertion-sorted every delta, turning a replanning pass
// over n entries into O(n²) memmoves), point queries binary-search the
// prefix sums, and the skyline sweeps of EarliestStart walk the sorted
// tiers with a single merge cursor. LoadReleases bulk-loads an
// already-sorted release schedule — the scheduler maintains one
// incrementally across passes — in one pass with no sorting at all.
//
// On top of that the profile has a persistent ("incremental") mode for
// schedulers that replan every pass: StartEpoch loads the base skyline
// once, Occupy/Vacate then mutate it in O(1) amortized per job start,
// completion and gear switch (a completion is a negative "credit" entry
// cancelling the tail of the planned occupancy), and reservations live in
// a separate journaled layer that TruncateReservations can roll back to
// any pass prefix — the changed-prefix contract the scheduler's
// replanning uses to reuse untouched reservations verbatim. Queries in
// this mode overlay base and reservation tiers; for times at or after the
// latest BeginPass they answer exactly like a profile rebuilt from
// scratch, and EarliestStart descends a max/min-augmented skyline tree
// over the main tier in O(log n) instead of walking its segments. Expired
// and mutually-cancelling deltas are folded away during merges, so the
// live delta count tracks the running and planned jobs, not the history
// of the run.
package profile

import (
	"math"
	"slices"
	"sort"
)

// Entry is one occupancy interval: cpus processors are busy during
// [Start, End).
type Entry struct {
	Start, End float64
	CPUs       int
}

// Release is one future processor release: CPUs processors become free at
// Time. It is the unit of LoadReleases' bulk initialization.
type Release struct {
	Time float64
	CPUs int
}

// delta is a usage change of d processors at time t.
type delta struct {
	t float64
	d int
}

// incPendingFlush caps the live pending tier in incremental mode. It is
// deliberately tighter than the shared-tier threshold: every query scans
// the live pending tier linearly, and in incremental mode queries run on
// every scheduling pass, so a small bound keeps the per-pass overlay walk
// short while the fold/merge cost stays O(1) amortized per mutation.
const incPendingFlush = 192

// Profile is a set of occupancy entries on a machine of Total processors.
type Profile struct {
	Total    int
	nentries int

	deltas []delta // time-sorted main tier
	prefix []int   // prefix[i] = usage after applying deltas[:i+1]

	pending       []delta // recent Adds, sorted lazily at query time
	pendingSorted bool
	pendLo        int // pending[:pendLo] has been folded into pendBase
	pendBase      int // usage sum of folded pending deltas (incremental)

	scratch []delta // merge buffer reused across flushes

	// Incremental (persistent) mode: StartEpoch loads the base skyline,
	// Occupy/Vacate mutate it, and reservations live in their own
	// journaled layer so the scheduler can roll back exactly the suffix a
	// pass replans.
	inc     bool
	horizon float64 // latest BeginPass time; deltas at or before it fold

	resv           []delta // sorted reservation tier
	resvPrefix     []int
	resvPend       []delta // recent reservations, sorted lazily
	resvPendSorted bool
	resvLog        []Entry // placement-order reservation journal
	resvMain       int     // resvLog[:resvMain] is folded into resv

	tree skyTree
	// noTree disables the skyline-tree sweep (differential tests compare
	// the tree descent against the linear reference).
	noTree bool
}

// New returns an empty profile for a machine of total processors.
func New(total int) *Profile {
	return &Profile{Total: total, pendingSorted: true, resvPendSorted: true}
}

// Reset empties the profile for a machine of total processors, retaining
// the storage capacity of previous use. It lets a scheduler replan every
// pass without reallocating the profile storage. Reset leaves incremental
// mode; StartEpoch re-enters it.
func (p *Profile) Reset(total int) {
	p.Total = total
	p.nentries = 0
	p.deltas = p.deltas[:0]
	p.prefix = p.prefix[:0]
	p.pending = p.pending[:0]
	p.pendingSorted = true
	p.pendLo = 0
	p.pendBase = 0
	p.inc = false
	p.horizon = math.Inf(-1)
	p.resv = p.resv[:0]
	p.resvPrefix = p.resvPrefix[:0]
	p.resvPend = p.resvPend[:0]
	p.resvPendSorted = true
	p.resvLog = p.resvLog[:0]
	p.resvMain = 0
	p.tree.drop()
}

// Add inserts an occupancy interval. Entries with non-positive duration or
// zero cpus are ignored.
func (p *Profile) Add(e Entry) {
	if e.End <= e.Start || e.CPUs <= 0 {
		return
	}
	p.nentries++
	p.basePush(e.Start, e.End, e.CPUs)
}

// basePush appends the delta pair of a (possibly negative) base usage
// interval to the pending tier.
func (p *Profile) basePush(start, end float64, d int) {
	if n := len(p.pending); n > p.pendLo && start < p.pending[n-1].t {
		p.pendingSorted = false
	}
	// end > start, so the second append never breaks sortedness on its own.
	p.pending = append(p.pending, delta{t: start, d: d}, delta{t: end, d: -d})
}

// LoadReleases resets the profile to a machine of total processors and
// bulk-loads a running-job release schedule: Σ rels.CPUs processors are
// busy from now on, dropping by r.CPUs at each r.Time. rels must be
// sorted ascending by Time with every Time > now; the slice is not
// retained. One release corresponds to one occupancy entry [now, r.Time).
func (p *Profile) LoadReleases(total int, now float64, rels []Release) {
	p.Reset(total)
	used := 0
	for _, r := range rels {
		used += r.CPUs
	}
	if used > 0 {
		p.deltas = append(p.deltas, delta{t: now, d: used})
		p.prefix = append(p.prefix, used)
	}
	run := used
	for _, r := range rels {
		p.deltas = append(p.deltas, delta{t: r.Time, d: -r.CPUs})
		run -= r.CPUs
		p.prefix = append(p.prefix, run)
	}
	p.nentries += len(rels)
}

// StartEpoch enters incremental mode: the base skyline is bulk-loaded
// from the release schedule exactly like LoadReleases, and the profile
// then persists across scheduling passes — Occupy/Vacate keep the base
// current and AddReservation/TruncateReservations manage the journaled
// reservation layer. Queries are exact for times at or after the latest
// BeginPass.
func (p *Profile) StartEpoch(total int, now float64, rels []Release) {
	p.LoadReleases(total, now, rels)
	p.inc = true
	p.horizon = now
	p.tree.build(p.prefix)
}

// BeginPass advances the query horizon to the current pass time. Deltas
// at or before the horizon may be folded together during merges (they are
// indistinguishable to queries at or after it), which is what keeps the
// live delta count proportional to the running and planned jobs.
// now must be nondecreasing across passes.
func (p *Profile) BeginPass(now float64) {
	if p.inc && now > p.horizon {
		p.horizon = now
	}
}

// Occupy records cpus processors becoming busy during [start, end) — a
// job start in incremental mode. O(1) amortized.
func (p *Profile) Occupy(cpus int, start, end float64) {
	if end <= start || cpus <= 0 {
		return
	}
	p.basePush(start, end, cpus)
}

// Vacate cancels a previously recorded occupancy over [start, end): the
// processors of a job that completed (or switched gears) before its
// planned end are handed back by a negative "credit" entry. start must be
// at or before the current pass time and end must be the exact End the
// occupancy was recorded with, so the base step function over the queried
// future matches a fresh rebuild. O(1) amortized.
func (p *Profile) Vacate(cpus int, start, end float64) {
	if end <= start || cpus <= 0 {
		return
	}
	p.basePush(start, end, -cpus)
}

// AddReservation appends a planned-job reservation to the journaled
// reservation layer. Degenerate entries occupy nothing but still consume
// a journal position, so journal indexes align with the scheduler's queue
// positions.
func (p *Profile) AddReservation(e Entry) {
	p.resvLog = append(p.resvLog, e)
	if e.End <= e.Start || e.CPUs <= 0 {
		return
	}
	p.nentries++
	if n := len(p.resvPend); n > 0 && e.Start < p.resvPend[n-1].t {
		p.resvPendSorted = false
	}
	p.resvPend = append(p.resvPend, delta{t: e.Start, d: e.CPUs}, delta{t: e.End, d: -e.CPUs})
}

// Reservations returns the number of journaled reservations.
func (p *Profile) Reservations() int { return len(p.resvLog) }

// TruncateReservations rolls the reservation layer back to its first n
// journal entries: the suffix a replanning pass invalidated is dropped,
// everything before it stays placed verbatim. Dropping only journal
// entries still in the pending tier is O(suffix); cutting into the merged
// tier rebuilds it from the journal prefix.
func (p *Profile) TruncateReservations(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(p.resvLog) {
		return
	}
	if n >= p.resvMain {
		// The suffix lives entirely in the pending tier: rebuild it from
		// the journal slice between the merged boundary and the cut.
		p.resvPend = p.resvPend[:0]
		p.resvPendSorted = true
		for _, e := range p.resvLog[p.resvMain:n] {
			if e.End <= e.Start || e.CPUs <= 0 {
				continue
			}
			if m := len(p.resvPend); m > 0 && e.Start < p.resvPend[m-1].t {
				p.resvPendSorted = false
			}
			p.resvPend = append(p.resvPend, delta{t: e.Start, d: e.CPUs}, delta{t: e.End, d: -e.CPUs})
		}
	} else {
		// The cut reaches into the merged tier: rebuild it from the kept
		// journal prefix.
		p.resv = p.resv[:0]
		for _, e := range p.resvLog[:n] {
			if e.End <= e.Start || e.CPUs <= 0 {
				continue
			}
			p.resv = append(p.resv, delta{t: e.Start, d: e.CPUs}, delta{t: e.End, d: -e.CPUs})
		}
		slices.SortFunc(p.resv, deltaCmp)
		p.resvPrefix = p.resvPrefix[:0]
		run := 0
		for _, d := range p.resv {
			run += d.d
			p.resvPrefix = append(p.resvPrefix, run)
		}
		p.resvMain = n
		p.resvPend = p.resvPend[:0]
		p.resvPendSorted = true
	}
	for _, e := range p.resvLog[n:] {
		if e.End > e.Start && e.CPUs > 0 {
			p.nentries--
		}
	}
	p.resvLog = p.resvLog[:n]
}

// BaseDeltas returns the live delta count of the base tiers — the
// scheduler's trigger for re-anchoring an epoch when credit history has
// accumulated past a multiple of the running set.
func (p *Profile) BaseDeltas() int {
	return len(p.deltas) + len(p.pending) - p.pendLo
}

func deltaCmp(a, b delta) int {
	switch {
	case a.t < b.t:
		return -1
	case a.t > b.t:
		return 1
	}
	return 0
}

// prepare sorts the pending tiers if needed, folds expired deltas behind
// the horizon, and merges a tier into its main list once it outgrows the
// merge threshold. Amortized across a replanning pass the merges cost
// O(1) per mutation; between merges queries pay one extra scan over the
// (bounded) pending tiers.
func (p *Profile) prepare() {
	if !p.pendingSorted {
		slices.SortFunc(p.pending[p.pendLo:], deltaCmp)
		p.pendingSorted = true
	}
	if p.inc {
		// Fold pending deltas that can no longer be distinguished by any
		// valid query (t <= horizon) into a single usage offset.
		for p.pendLo < len(p.pending) && p.pending[p.pendLo].t <= p.horizon {
			p.pendBase += p.pending[p.pendLo].d
			p.pendLo++
		}
		if len(p.pending)-p.pendLo > incPendingFlush {
			p.flush()
		}
		if !p.resvPendSorted {
			slices.SortFunc(p.resvPend, deltaCmp)
			p.resvPendSorted = true
		}
		if len(p.resvPend) > 64+len(p.resv)/16 {
			p.flushResv()
		}
		return
	}
	if len(p.pending) > 64+len(p.deltas)/16 {
		p.flush()
	}
}

// flush merges the sorted pending tier into the main tier and rebuilds
// the prefix sums in one pass, writing into the scratch buffer (never
// aliasing its inputs). In incremental mode the merge also compacts:
// everything at or before the horizon (including the folded pending
// offset) collapses into one leading delta at the horizon, equal-time
// groups merge, and groups with zero net change vanish — expired history
// and credit/occupancy pairs cancel instead of accumulating, while the
// step function over [horizon, ∞) is unchanged.
func (p *Profile) flush() {
	merged := p.scratch[:0]
	pend := p.pending[p.pendLo:]
	i, j := 0, 0
	if p.inc {
		lead := p.pendBase
		p.pendBase = 0
		for i < len(p.deltas) && p.deltas[i].t <= p.horizon {
			lead += p.deltas[i].d
			i++
		}
		for j < len(pend) && pend[j].t <= p.horizon {
			lead += pend[j].d
			j++
		}
		if lead != 0 {
			merged = append(merged, delta{t: p.horizon, d: lead})
		}
		for i < len(p.deltas) || j < len(pend) {
			t := math.Inf(1)
			if i < len(p.deltas) {
				t = p.deltas[i].t
			}
			if j < len(pend) && pend[j].t < t {
				t = pend[j].t
			}
			d := 0
			for i < len(p.deltas) && p.deltas[i].t == t {
				d += p.deltas[i].d
				i++
			}
			for j < len(pend) && pend[j].t == t {
				d += pend[j].d
				j++
			}
			if d != 0 {
				merged = append(merged, delta{t: t, d: d})
			}
		}
	} else {
		for i < len(p.deltas) || j < len(pend) {
			if j >= len(pend) || (i < len(p.deltas) && p.deltas[i].t <= pend[j].t) {
				merged = append(merged, p.deltas[i])
				i++
			} else {
				merged = append(merged, pend[j])
				j++
			}
		}
	}
	p.scratch, p.deltas = p.deltas[:0], merged
	p.pending = p.pending[:0]
	p.pendLo = 0
	p.prefix = p.prefix[:0]
	run := 0
	for _, d := range p.deltas {
		run += d.d
		p.prefix = append(p.prefix, run)
	}
	if p.inc {
		p.tree.build(p.prefix)
	}
}

// flushResv merges the sorted reservation pending tier into the
// reservation main tier. Reservation deltas are never folded or
// collapsed: TruncateReservations must be able to rebuild any prefix from
// the journal, and the layer is cleared wholesale on full replans.
func (p *Profile) flushResv() {
	merged := p.scratch[:0]
	i, j := 0, 0
	for i < len(p.resv) || j < len(p.resvPend) {
		if j >= len(p.resvPend) || (i < len(p.resv) && p.resv[i].t <= p.resvPend[j].t) {
			merged = append(merged, p.resv[i])
			i++
		} else {
			merged = append(merged, p.resvPend[j])
			j++
		}
	}
	p.scratch, p.resv = p.resv[:0], merged
	p.resvPend = p.resvPend[:0]
	p.resvMain = len(p.resvLog)
	p.resvPrefix = p.resvPrefix[:0]
	run := 0
	for _, d := range p.resv {
		run += d.d
		p.resvPrefix = append(p.resvPrefix, run)
	}
}

// Len returns the number of entries.
func (p *Profile) Len() int { return p.nentries }

// UsedAt returns the number of processors busy at time t. The main tiers
// are answered by binary search over the prefix-summed deltas; only the
// small pending tiers are scanned. In incremental mode t must be at or
// after the latest BeginPass time.
func (p *Profile) UsedAt(t float64) int {
	p.prepare()
	used := p.pendBase
	if i := sort.Search(len(p.deltas), func(i int) bool { return p.deltas[i].t > t }); i > 0 {
		used += p.prefix[i-1]
	}
	for j := p.pendLo; j < len(p.pending) && p.pending[j].t <= t; j++ {
		used += p.pending[j].d
	}
	if p.inc {
		if i := sort.Search(len(p.resv), func(i int) bool { return p.resv[i].t > t }); i > 0 {
			used += p.resvPrefix[i-1]
		}
		for j := 0; j < len(p.resvPend) && p.resvPend[j].t <= t; j++ {
			used += p.resvPend[j].d
		}
	}
	return used
}

// FreeAt returns the number of processors free at time t.
func (p *Profile) FreeAt(t float64) int { return p.Total - p.UsedAt(t) }

// CanPlace reports whether cpus processors are continuously available
// during [start, start+dur). A non-positive dur degenerates to the
// instantaneous check: the processors must still be free at the start
// itself, or a zero-length job could be placed on a full machine and
// break the scheduler's allocation invariant.
func (p *Profile) CanPlace(cpus int, start, dur float64) bool {
	if cpus > p.Total {
		return false
	}
	if dur <= 0 {
		return p.UsedAt(start)+cpus <= p.Total
	}
	return p.EarliestStart(cpus, dur, start) == start
}

// ovCursor walks the overlay tiers (live pending deltas plus, in
// incremental mode, both reservation tiers) as one merged stream.
type ovCursor struct {
	a, b, c []delta
	i, j, k int
}

// peek returns the next overlay time, +Inf when exhausted.
func (c *ovCursor) peek() float64 {
	t := math.Inf(1)
	if c.i < len(c.a) && c.a[c.i].t < t {
		t = c.a[c.i].t
	}
	if c.j < len(c.b) && c.b[c.j].t < t {
		t = c.b[c.j].t
	}
	if c.k < len(c.c) && c.c[c.k].t < t {
		t = c.c[c.k].t
	}
	return t
}

// take consumes every overlay delta at exactly t and returns their sum.
func (c *ovCursor) take(t float64) int {
	d := 0
	for c.i < len(c.a) && c.a[c.i].t == t {
		d += c.a[c.i].d
		c.i++
	}
	for c.j < len(c.b) && c.b[c.j].t == t {
		d += c.b[c.j].d
		c.j++
	}
	for c.k < len(c.c) && c.c[c.k].t == t {
		d += c.c[c.k].d
		c.k++
	}
	return d
}

// skip consumes overlay deltas at or before t and returns their sum.
func (c *ovCursor) skip(t float64) int {
	d := 0
	for c.i < len(c.a) && c.a[c.i].t <= t {
		d += c.a[c.i].d
		c.i++
	}
	for c.j < len(c.b) && c.b[c.j].t <= t {
		d += c.b[c.j].d
		c.j++
	}
	for c.k < len(c.c) && c.c[c.k].t <= t {
		d += c.c[c.k].d
		c.k++
	}
	return d
}

// EarliestStart returns the earliest time t >= from at which cpus
// processors are continuously available for dur seconds. It returns +Inf
// when cpus exceeds the machine size. The usage at `from` comes from
// binary searches over the prefix sums; the sweep then either walks the
// sorted tiers forward with a merge cursor, or — in incremental mode —
// descends the max/min-augmented skyline tree over the main tier in
// O(log n) per feasibility transition, overlaying the small pending and
// reservation tiers. In incremental mode from must be at or after the
// latest BeginPass time.
func (p *Profile) EarliestStart(cpus int, dur, from float64) float64 {
	if cpus > p.Total {
		return math.Inf(1)
	}
	p.prepare()
	limit := p.Total - cpus
	i := sort.Search(len(p.deltas), func(k int) bool { return p.deltas[k].t > from })
	baseU := 0
	if i > 0 {
		baseU = p.prefix[i-1]
	}
	ov := ovCursor{a: p.pending[p.pendLo:]}
	if p.inc {
		r := sort.Search(len(p.resv), func(k int) bool { return p.resv[k].t > from })
		ov.b, ov.j = p.resv, r
		rv := 0
		if r > 0 {
			rv = p.resvPrefix[r-1]
		}
		ov.c = p.resvPend
		V := p.pendBase + rv + func() int {
			d := 0
			for ov.i < len(ov.a) && ov.a[ov.i].t <= from {
				d += ov.a[ov.i].d
				ov.i++
			}
			for ov.k < len(ov.c) && ov.c[ov.k].t <= from {
				d += ov.c[ov.k].d
				ov.k++
			}
			return d
		}()
		if !p.noTree && p.tree.len() == len(p.deltas) && len(p.deltas) >= skyTreeMin {
			return p.earliestTree(i, baseU, V, ov, limit, dur, from)
		}
		return p.earliestLinear(i, baseU+V, ov, limit, dur, from)
	}
	used := baseU + p.pendBase + ov.skip(from)
	return p.earliestLinear(i, used, ov, limit, dur, from)
}

// earliestLinear is the merge-cursor feasibility sweep over the main tier
// and the overlay cursor. It is the reference the skyline-tree descent
// must agree with exactly.
func (p *Profile) earliestLinear(i, used int, ov ovCursor, limit int, dur, from float64) float64 {
	if len(ov.b) == 0 && len(ov.c) == 0 {
		// Single overlay list (non-incremental mode, or an incremental
		// profile with no reservations): the tight two-cursor merge.
		return p.earliestTwoWay(i, used, ov.a, ov.i, limit, dur, from)
	}
	main := p.deltas
	cand := from
	for {
		t := ov.peek()
		if i < len(main) && main[i].t < t {
			t = main[i].t
		}
		if math.IsInf(t, 1) {
			break
		}
		// The segment ending at t has constant usage `used`.
		if used > limit {
			// Violated throughout; the earliest possible start moves to
			// the segment's end.
			cand = t
		} else if t-cand >= dur {
			return cand
		}
		for i < len(main) && main[i].t == t {
			used += main[i].d
			i++
		}
		used += ov.take(t)
	}
	// Past the last delta the machine is empty (all entries closed), so
	// the candidate holds forever.
	return cand
}

// earliestTwoWay sweeps the main tier against one pending list with the
// minimal per-segment work; semantics are identical to earliestLinear.
func (p *Profile) earliestTwoWay(i, used int, pend []delta, j, limit int, dur, from float64) float64 {
	main := p.deltas
	cand := from
	for i < len(main) || j < len(pend) {
		var t float64
		if i < len(main) && (j >= len(pend) || main[i].t <= pend[j].t) {
			t = main[i].t
		} else {
			t = pend[j].t
		}
		// The segment ending at t has constant usage `used`.
		if used > limit {
			cand = t
		} else if t-cand >= dur {
			return cand
		}
		for i < len(main) && main[i].t == t {
			used += main[i].d
			i++
		}
		for j < len(pend) && pend[j].t == t {
			used += pend[j].d
			j++
		}
	}
	return cand
}

// earliestTree is the skyline-tree feasibility sweep: between overlay
// deltas the base usage is constant-shifted, so the next feasibility
// transition inside the main tier is found by descending the tree for
// the first prefix above/at-or-below the shifted limit instead of
// walking segments one by one.
func (p *Profile) earliestTree(i, baseU, V int, ov ovCursor, limit int, dur, from float64) float64 {
	main, pfx := p.deltas, p.prefix
	used := baseU + V
	cand := from
	for {
		tOv := ov.peek()
		iEnd := len(main)
		if !math.IsInf(tOv, 1) {
			iEnd = i + sort.Search(len(main)-i, func(k int) bool { return main[i+k].t >= tOv })
		}
		// Sweep the base range [i, iEnd) under constant overlay V: base
		// usage must stay at or below L for the window to be feasible.
		L := limit - V
		for {
			if used > limit {
				w := p.tree.first(i, iEnd, L, false)
				if w < 0 {
					break // violated up to tOv
				}
				// Violated segments end where the base prefix drops back
				// to L: the candidate restarts at that boundary.
				cand = main[w].t
				i = w + 1
				used = pfx[w] + V
			} else {
				w := p.tree.first(i, iEnd, L, true)
				if w < 0 {
					break // feasible up to tOv
				}
				if main[w].t-cand >= dur {
					return cand
				}
				i = w + 1
				used = pfx[w] + V
			}
		}
		// No more crossings before the overlay boundary: apply the rest of
		// the range (its deltas shift usage without crossing the limit),
		// then check the segment ending at the boundary.
		i = iEnd
		if i > 0 {
			used = pfx[i-1] + V
		} else {
			used = V
		}
		if used > limit {
			cand = tOv
		} else if tOv-cand >= dur {
			return cand // also the tOv = +Inf exit: the tail is free
		}
		if math.IsInf(tOv, 1) {
			return cand
		}
		V += ov.take(tOv)
		for i < len(main) && main[i].t == tOv {
			i++
		}
		if i > 0 {
			used = pfx[i-1] + V
		} else {
			used = V
		}
	}
}
