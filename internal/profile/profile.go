// Package profile implements an availability profile: a step function of
// processor usage over future time built from running and planned jobs.
// The conservative and flexible backfilling variants plan every protected
// job against it, and tests use it as an independent oracle for the EASY
// shadow-time computation.
//
// The profile maintains a time-sorted list of usage deltas, so the
// planning queries run in linear time per call: EarliestStart sweeps the
// skyline once instead of re-evaluating usage per boundary, which keeps
// conservative backfilling of 5000-job traces tractable.
package profile

import (
	"math"
	"sort"
)

// Entry is one occupancy interval: cpus processors are busy during
// [Start, End).
type Entry struct {
	Start, End float64
	CPUs       int
}

// delta is a usage change of d processors at time t.
type delta struct {
	t float64
	d int
}

// Profile is a set of occupancy entries on a machine of Total processors.
type Profile struct {
	Total   int
	entries []Entry
	deltas  []delta // sorted by time
}

// New returns an empty profile for a machine of total processors.
func New(total int) *Profile {
	return &Profile{Total: total}
}

// Reset empties the profile for a machine of total processors, retaining
// the entry and delta capacity of previous use. It lets a scheduler replan
// every pass without reallocating the profile storage.
func (p *Profile) Reset(total int) {
	p.Total = total
	p.entries = p.entries[:0]
	p.deltas = p.deltas[:0]
}

// Add inserts an occupancy interval. Entries with non-positive duration or
// zero cpus are ignored.
func (p *Profile) Add(e Entry) {
	if e.End <= e.Start || e.CPUs <= 0 {
		return
	}
	p.entries = append(p.entries, e)
	p.insertDelta(delta{t: e.Start, d: e.CPUs})
	p.insertDelta(delta{t: e.End, d: -e.CPUs})
}

// insertDelta keeps the delta list time-sorted.
func (p *Profile) insertDelta(d delta) {
	i := sort.Search(len(p.deltas), func(i int) bool { return p.deltas[i].t > d.t })
	p.deltas = append(p.deltas, delta{})
	copy(p.deltas[i+1:], p.deltas[i:])
	p.deltas[i] = d
}

// Len returns the number of entries.
func (p *Profile) Len() int { return len(p.entries) }

// UsedAt returns the number of processors busy at time t.
func (p *Profile) UsedAt(t float64) int {
	used := 0
	for _, e := range p.entries {
		if e.Start <= t && t < e.End {
			used += e.CPUs
		}
	}
	return used
}

// FreeAt returns the number of processors free at time t.
func (p *Profile) FreeAt(t float64) int { return p.Total - p.UsedAt(t) }

// CanPlace reports whether cpus processors are continuously available
// during [start, start+dur).
func (p *Profile) CanPlace(cpus int, start, dur float64) bool {
	if cpus > p.Total {
		return false
	}
	if dur <= 0 {
		return true
	}
	return p.EarliestStart(cpus, dur, start) == start
}

// EarliestStart returns the earliest time t >= from at which cpus
// processors are continuously available for dur seconds. It returns +Inf
// when cpus exceeds the machine size. The sweep over the usage skyline
// runs in O(entries).
func (p *Profile) EarliestStart(cpus int, dur, from float64) float64 {
	if cpus > p.Total {
		return math.Inf(1)
	}
	limit := p.Total - cpus
	// Usage at `from`: apply every delta at or before it.
	used := 0
	i := 0
	for ; i < len(p.deltas) && p.deltas[i].t <= from; i++ {
		used += p.deltas[i].d
	}
	cand := from
	for i < len(p.deltas) {
		t := p.deltas[i].t
		// The segment [max(prev, from), t) has constant usage `used`.
		if used > limit {
			// Violated throughout; the earliest possible start moves to
			// the segment's end.
			cand = t
		} else if t-cand >= dur {
			return cand
		}
		for i < len(p.deltas) && p.deltas[i].t == t {
			used += p.deltas[i].d
			i++
		}
	}
	// Past the last delta the machine is empty (all entries closed), so
	// the candidate holds forever.
	return cand
}
