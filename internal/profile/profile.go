// Package profile implements an availability profile: a step function of
// processor usage over future time built from running and planned jobs.
// The conservative and flexible backfilling variants plan every protected
// job against it, and tests use it as an independent oracle for the EASY
// shadow-time computation.
//
// The profile keeps its usage deltas in two tiers: a time-sorted main
// list with prefix-summed usage, and a small append-only pending buffer
// that is sorted on demand and merged into the main list once it grows
// past a fraction of it. Add is therefore an O(1) append (the seed-era
// implementation insertion-sorted every delta, turning a replanning pass
// over n entries into O(n²) memmoves), point queries binary-search the
// prefix sums, and the skyline sweeps of EarliestStart walk the two
// sorted tiers with a single merge cursor. LoadReleases bulk-loads an
// already-sorted release schedule — the scheduler maintains one
// incrementally across passes — in one pass with no sorting at all.
package profile

import (
	"math"
	"slices"
	"sort"
)

// Entry is one occupancy interval: cpus processors are busy during
// [Start, End).
type Entry struct {
	Start, End float64
	CPUs       int
}

// Release is one future processor release: CPUs processors become free at
// Time. It is the unit of LoadReleases' bulk initialization.
type Release struct {
	Time float64
	CPUs int
}

// delta is a usage change of d processors at time t.
type delta struct {
	t float64
	d int
}

// Profile is a set of occupancy entries on a machine of Total processors.
type Profile struct {
	Total    int
	nentries int

	deltas []delta // time-sorted main tier
	prefix []int   // prefix[i] = usage after applying deltas[:i+1]

	pending       []delta // recent Adds, sorted lazily at query time
	pendingSorted bool

	scratch []delta // merge buffer reused across flushes
}

// New returns an empty profile for a machine of total processors.
func New(total int) *Profile {
	return &Profile{Total: total, pendingSorted: true}
}

// Reset empties the profile for a machine of total processors, retaining
// the storage capacity of previous use. It lets a scheduler replan every
// pass without reallocating the profile storage.
func (p *Profile) Reset(total int) {
	p.Total = total
	p.nentries = 0
	p.deltas = p.deltas[:0]
	p.prefix = p.prefix[:0]
	p.pending = p.pending[:0]
	p.pendingSorted = true
}

// Add inserts an occupancy interval. Entries with non-positive duration or
// zero cpus are ignored.
func (p *Profile) Add(e Entry) {
	if e.End <= e.Start || e.CPUs <= 0 {
		return
	}
	p.nentries++
	if n := len(p.pending); n > 0 && e.Start < p.pending[n-1].t {
		p.pendingSorted = false
	}
	// End > Start, so the second append never breaks sortedness on its own.
	p.pending = append(p.pending, delta{t: e.Start, d: e.CPUs}, delta{t: e.End, d: -e.CPUs})
}

// LoadReleases resets the profile to a machine of total processors and
// bulk-loads a running-job release schedule: Σ rels.CPUs processors are
// busy from now on, dropping by r.CPUs at each r.Time. rels must be
// sorted ascending by Time with every Time > now; the slice is not
// retained. One release corresponds to one occupancy entry [now, r.Time).
func (p *Profile) LoadReleases(total int, now float64, rels []Release) {
	p.Reset(total)
	used := 0
	for _, r := range rels {
		used += r.CPUs
	}
	if used > 0 {
		p.deltas = append(p.deltas, delta{t: now, d: used})
		p.prefix = append(p.prefix, used)
	}
	run := used
	for _, r := range rels {
		p.deltas = append(p.deltas, delta{t: r.Time, d: -r.CPUs})
		run -= r.CPUs
		p.prefix = append(p.prefix, run)
	}
	p.nentries += len(rels)
}

// prepare sorts the pending tier if needed and folds it into the main
// tier once it outgrows the merge threshold. Amortized across a
// replanning pass the merges cost O(1) per Add; between merges queries
// pay one extra scan over the (bounded) pending tier.
func (p *Profile) prepare() {
	if !p.pendingSorted {
		slices.SortFunc(p.pending, func(a, b delta) int {
			switch {
			case a.t < b.t:
				return -1
			case a.t > b.t:
				return 1
			}
			return 0
		})
		p.pendingSorted = true
	}
	if len(p.pending) > 64+len(p.deltas)/16 {
		p.flush()
	}
}

// flush merges the sorted pending tier into the main tier and rebuilds
// the prefix sums in one pass.
func (p *Profile) flush() {
	merged := p.scratch[:0]
	i, j := 0, 0
	for i < len(p.deltas) || j < len(p.pending) {
		if j >= len(p.pending) || (i < len(p.deltas) && p.deltas[i].t <= p.pending[j].t) {
			merged = append(merged, p.deltas[i])
			i++
		} else {
			merged = append(merged, p.pending[j])
			j++
		}
	}
	p.scratch, p.deltas = p.deltas[:0], merged
	p.pending = p.pending[:0]
	p.prefix = p.prefix[:0]
	run := 0
	for _, d := range p.deltas {
		run += d.d
		p.prefix = append(p.prefix, run)
	}
}

// Len returns the number of entries.
func (p *Profile) Len() int { return p.nentries }

// UsedAt returns the number of processors busy at time t. The main tier
// is answered by binary search over the prefix-summed deltas; only the
// small pending tier is scanned.
func (p *Profile) UsedAt(t float64) int {
	p.prepare()
	used := 0
	if i := sort.Search(len(p.deltas), func(i int) bool { return p.deltas[i].t > t }); i > 0 {
		used = p.prefix[i-1]
	}
	for j := 0; j < len(p.pending) && p.pending[j].t <= t; j++ {
		used += p.pending[j].d
	}
	return used
}

// FreeAt returns the number of processors free at time t.
func (p *Profile) FreeAt(t float64) int { return p.Total - p.UsedAt(t) }

// CanPlace reports whether cpus processors are continuously available
// during [start, start+dur).
func (p *Profile) CanPlace(cpus int, start, dur float64) bool {
	if cpus > p.Total {
		return false
	}
	if dur <= 0 {
		return true
	}
	return p.EarliestStart(cpus, dur, start) == start
}

// EarliestStart returns the earliest time t >= from at which cpus
// processors are continuously available for dur seconds. It returns +Inf
// when cpus exceeds the machine size. The usage at `from` comes from a
// binary search over the prefix sums; the sweep then walks the two
// sorted tiers forward with a merge cursor and exits at the first
// feasible window.
func (p *Profile) EarliestStart(cpus int, dur, from float64) float64 {
	if cpus > p.Total {
		return math.Inf(1)
	}
	p.prepare()
	limit := p.Total - cpus
	main, pend := p.deltas, p.pending
	i := sort.Search(len(main), func(k int) bool { return main[k].t > from })
	used := 0
	if i > 0 {
		used = p.prefix[i-1]
	}
	j := 0
	for ; j < len(pend) && pend[j].t <= from; j++ {
		used += pend[j].d
	}
	cand := from
	for i < len(main) || j < len(pend) {
		var t float64
		if i < len(main) && (j >= len(pend) || main[i].t <= pend[j].t) {
			t = main[i].t
		} else {
			t = pend[j].t
		}
		// The segment ending at t has constant usage `used`.
		if used > limit {
			// Violated throughout; the earliest possible start moves to
			// the segment's end.
			cand = t
		} else if t-cand >= dur {
			return cand
		}
		for i < len(main) && main[i].t == t {
			used += main[i].d
			i++
		}
		for j < len(pend) && pend[j].t == t {
			used += pend[j].d
			j++
		}
	}
	// Past the last delta the machine is empty (all entries closed), so
	// the candidate holds forever.
	return cand
}
