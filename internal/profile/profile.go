// Package profile implements an availability profile: a step function of
// processor usage over future time built from running and planned jobs.
// The conservative and flexible backfilling variants plan every protected
// job against it, and tests use it as an independent oracle for the EASY
// shadow-time computation.
//
// The profile keeps its usage deltas in two tiers: a time-sorted main
// list with prefix-summed usage, and a small append-only pending buffer
// that is sorted on demand and merged into the main list once it grows
// past a fraction of it. Add is therefore an O(1) append (the seed-era
// implementation insertion-sorted every delta, turning a replanning pass
// over n entries into O(n²) memmoves), point queries binary-search the
// prefix sums, and the skyline sweeps of EarliestStart walk the sorted
// tiers with a single merge cursor. LoadReleases bulk-loads an
// already-sorted release schedule — the scheduler maintains one
// incrementally across passes — in one pass with no sorting at all.
//
// On top of that the profile has a persistent ("incremental") mode for
// schedulers that replan every pass: StartEpoch loads the base skyline
// once, Occupy/Vacate then mutate it (a completion is a negative
// "credit" entry cancelling the tail of the planned occupancy), and
// reservations live in a separate journaled layer that
// TruncateReservations can roll back to any pass prefix — the
// changed-prefix contract the scheduler's replanning uses to reuse
// untouched reservations verbatim. Queries in this mode overlay base and
// reservation tiers; for times at or after the latest BeginPass they
// answer exactly like a profile rebuilt from scratch. In the default
// incremental path both tiers are chunked ordered indexes (skydex.go for
// the base, resvindex.go for reservations): mutations are local chunk
// edits, equal-time credit/occupancy pairs cancel on contact, expired
// chunks fold behind the horizon in O(1), and the EarliestStart sweep
// skips whole chunks per feasibility transition via per-chunk prefix
// extrema. The pre-index machinery — append-only pending tier with
// periodic merge, max/min-augmented skyline tree, flat reservation
// slices — survives behind FlatReservations as the differentially-tested
// reference. Either way the live delta count tracks the running and
// planned jobs, not the history of the run.
package profile

import (
	"math"
	"slices"
	"sort"
)

// Entry is one occupancy interval: cpus processors are busy during
// [Start, End).
type Entry struct {
	Start, End float64
	CPUs       int
}

// Release is one future processor release: CPUs processors become free at
// Time. It is the unit of LoadReleases' bulk initialization.
type Release struct {
	Time float64
	CPUs int
}

// delta is a usage change of d processors at time t.
type delta struct {
	t float64
	d int
}

// incPendingFlush caps the live pending tier in incremental mode. It is
// deliberately tighter than the shared-tier threshold: every query scans
// the live pending tier linearly, and in incremental mode queries run on
// every scheduling pass, so a small bound keeps the per-pass overlay walk
// short while the fold/merge cost stays O(1) amortized per mutation.
const incPendingFlush = 192

// Profile is a set of occupancy entries on a machine of Total processors.
type Profile struct {
	Total    int
	nentries int

	deltas []delta // time-sorted main tier
	prefix []int   // prefix[i] = usage after applying deltas[:i+1]

	pending       []delta // recent Adds, sorted lazily at query time
	pendingSorted bool
	pendLo        int // pending[:pendLo] has been folded into pendBase
	pendBase      int // usage sum of folded pending deltas (incremental)

	scratch []delta // merge buffer reused across flushes

	// Incremental (persistent) mode: StartEpoch loads the base skyline,
	// Occupy/Vacate mutate it, and reservations live in their own
	// journaled layer so the scheduler can roll back exactly the suffix a
	// pass replans.
	inc     bool
	horizon float64 // latest BeginPass time; deltas at or before it fold

	// Reservation layer. The default structure is the chunked ordered
	// index ridx (O(log n + chunk) add/remove, directory-walk prefix
	// sums); the flat tier pair below survives behind FlatReservations as
	// the differentially-tested reference.
	ridx     resvIndex
	flatResv bool

	resv           []delta // flat mode: sorted reservation tier
	resvPrefix     []int
	resvPend       []delta // flat mode: recent reservations, sorted lazily
	resvPendSorted bool
	resvLog        []Entry // placement-order reservation journal
	resvMain       int     // flat mode: resvLog[:resvMain] is folded into resv

	// truncWork counts journal entries reprocessed by
	// TruncateReservations (suffix removals and prefix rebuilds) — the
	// cost bound the truncate regression tests assert on.
	truncWork int

	// dex is the default incremental base tier: the chunked skyline index
	// Occupy/Vacate edit in place (skydex.go). Exactly one of dex and the
	// pending/deltas machinery above is live in incremental mode,
	// selected by flatResv.
	dex skyDex

	// Query-entry memo (default incremental path): consecutive
	// EarliestStart queries of a replanning pass share `from` over an
	// unchanged base — only reservations move between them — so the base
	// entry position and usage at `from` are cached under a version
	// counter bumped by every base mutation and horizon fold.
	// Reservation-tier changes (AddReservation, TruncateReservations)
	// never touch it: reservations re-seek on every query.
	ver      int     // base version; bumped on every dex mutation or fold
	memoVer  int     // ver the memo was taken at; -1 when invalid
	memoFrom float64 // NaN when invalid
	memoCi   int     // dex chunk of the first delta with t > memoFrom
	memoK    int     // in-chunk offset of that delta
	memoP    int     // base usage at memoFrom

	tree skyTree
	// noTree disables the skyline-tree sweep (differential tests compare
	// the tree descent against the linear reference).
	noTree bool
}

// New returns an empty profile for a machine of total processors.
func New(total int) *Profile {
	return &Profile{Total: total, pendingSorted: true, resvPendSorted: true,
		memoVer: -1, memoFrom: math.NaN()}
}

// FlatReservations selects the legacy flat reservation tier pair (merged
// slice + lazily sorted pending slice) instead of the chunked ordered
// reservation index — the differentially-tested reference wired to
// sched.Compat.FlatReservations. It must be set before any reservations
// are journaled and survives Reset.
func (p *Profile) FlatReservations(on bool) { p.flatResv = on }

// Reset empties the profile for a machine of total processors, retaining
// the storage capacity of previous use. It lets a scheduler replan every
// pass without reallocating the profile storage. Reset leaves incremental
// mode; StartEpoch re-enters it.
func (p *Profile) Reset(total int) {
	p.Total = total
	p.nentries = 0
	p.deltas = p.deltas[:0]
	p.prefix = p.prefix[:0]
	p.pending = p.pending[:0]
	p.pendingSorted = true
	p.pendLo = 0
	p.pendBase = 0
	p.inc = false
	p.horizon = math.Inf(-1)
	p.resv = p.resv[:0]
	p.resvPrefix = p.resvPrefix[:0]
	p.resvPend = p.resvPend[:0]
	p.resvPendSorted = true
	p.resvLog = p.resvLog[:0]
	p.resvMain = 0
	p.ridx.reset()
	p.dex.reset()
	p.memoVer = -1
	p.memoFrom = math.NaN()
	p.tree.drop()
}

// Add inserts an occupancy interval. Entries with non-positive duration or
// zero cpus are ignored.
func (p *Profile) Add(e Entry) {
	if e.End <= e.Start || e.CPUs <= 0 {
		return
	}
	p.nentries++
	p.basePush(e.Start, e.End, e.CPUs)
}

// basePush records the delta pair of a (possibly negative) base usage
// interval. The default incremental path edits the chunked skyline index
// in place — deltas at or behind the horizon fold into the pending-base
// offset, equal-time credit/occupancy pairs cancel on contact — while
// the flat compat path and the non-incremental profile keep the O(1)
// append sorted lazily at query time (bulk rebuilds push thousands of
// entries between queries, where per-push insertion would be quadratic).
func (p *Profile) basePush(start, end float64, d int) {
	if p.inc && !p.flatResv {
		p.ver++
		p.dexPush(start, d)
		p.dexPush(end, -d)
		return
	}
	if n := len(p.pending); n > p.pendLo && start < p.pending[n-1].t {
		p.pendingSorted = false
	}
	// end > start, so the second append never breaks sortedness on its own.
	p.pending = append(p.pending, delta{t: start, d: d}, delta{t: end, d: -d})
}

// dexPush records one base delta in the chunked skyline index. A delta
// at or behind the horizon is indistinguishable to every valid query, so
// it folds straight into the pending-base offset.
func (p *Profile) dexPush(t float64, d int) {
	if t <= p.horizon {
		p.pendBase += d
		return
	}
	p.dex.insert(t, d)
}

// LoadReleases resets the profile to a machine of total processors and
// bulk-loads a running-job release schedule: Σ rels.CPUs processors are
// busy from now on, dropping by r.CPUs at each r.Time. rels must be
// sorted ascending by Time with every Time > now; the slice is not
// retained. One release corresponds to one occupancy entry [now, r.Time).
func (p *Profile) LoadReleases(total int, now float64, rels []Release) {
	p.Reset(total)
	used := 0
	for _, r := range rels {
		used += r.CPUs
	}
	if used > 0 {
		p.deltas = append(p.deltas, delta{t: now, d: used})
		p.prefix = append(p.prefix, used)
	}
	run := used
	for _, r := range rels {
		p.deltas = append(p.deltas, delta{t: r.Time, d: -r.CPUs})
		run -= r.CPUs
		p.prefix = append(p.prefix, run)
	}
	p.nentries += len(rels)
}

// StartEpoch enters incremental mode: the base skyline is bulk-loaded
// from the release schedule exactly like LoadReleases, and the profile
// then persists across scheduling passes — Occupy/Vacate keep the base
// current and AddReservation/TruncateReservations manage the journaled
// reservation layer. Queries are exact for times at or after the latest
// BeginPass.
func (p *Profile) StartEpoch(total int, now float64, rels []Release) {
	p.LoadReleases(total, now, rels)
	p.inc = true
	p.horizon = now
	if p.flatResv {
		p.tree.build(p.prefix)
		return
	}
	// Default path: move the freshly built (sorted, equal-time-merged)
	// skyline into the chunked index and run from it.
	p.dex.load(p.deltas)
	p.deltas = p.deltas[:0]
	p.prefix = p.prefix[:0]
	p.ver++
}

// BeginPass advances the query horizon to the current pass time. Deltas
// at or before the horizon may be folded together during merges (they are
// indistinguishable to queries at or after it), which is what keeps the
// live delta count proportional to the running and planned jobs.
// now must be nondecreasing across passes.
func (p *Profile) BeginPass(now float64) {
	if p.inc && now > p.horizon {
		p.horizon = now
	}
}

// Occupy records cpus processors becoming busy during [start, end) — a
// job start in incremental mode. O(1) amortized.
func (p *Profile) Occupy(cpus int, start, end float64) {
	if end <= start || cpus <= 0 {
		return
	}
	p.basePush(start, end, cpus)
}

// Vacate cancels a previously recorded occupancy over [start, end): the
// processors of a job that completed (or switched gears) before its
// planned end are handed back by a negative "credit" entry. start must be
// at or before the current pass time and end must be the exact End the
// occupancy was recorded with, so the base step function over the queried
// future matches a fresh rebuild. O(1) amortized.
func (p *Profile) Vacate(cpus int, start, end float64) {
	if end <= start || cpus <= 0 {
		return
	}
	p.basePush(start, end, -cpus)
}

// AddReservation appends a planned-job reservation to the journaled
// reservation layer. Degenerate entries occupy nothing but still consume
// a journal position, so journal indexes align with the scheduler's queue
// positions.
func (p *Profile) AddReservation(e Entry) {
	p.resvLog = append(p.resvLog, e)
	if e.End <= e.Start || e.CPUs <= 0 {
		return
	}
	p.nentries++
	if p.flatResv {
		if n := len(p.resvPend); n > 0 && e.Start < p.resvPend[n-1].t {
			p.resvPendSorted = false
		}
		p.resvPend = append(p.resvPend, delta{t: e.Start, d: e.CPUs}, delta{t: e.End, d: -e.CPUs})
		return
	}
	p.ridx.insert(delta{t: e.Start, d: e.CPUs})
	p.ridx.insert(delta{t: e.End, d: -e.CPUs})
}

// Reservations returns the number of journaled reservations.
func (p *Profile) Reservations() int { return len(p.resvLog) }

// TruncateReservations rolls the reservation layer back to its first n
// journal entries: the suffix a replanning pass invalidated is dropped,
// everything before it stays placed verbatim. Truncating to the journal's
// current length (repeated truncate-to-same-prefix included: the journal
// shrank on the first call) is O(1). With the indexed tier the cost is
// otherwise bounded by O(min(suffix, prefix)) chunk operations — dropped
// entries are removed point-wise, unless the kept prefix is the smaller
// side, in which case the index is rebuilt from it (and a full truncate
// just resets it). The flat compat tier keeps its journal-replay
// behavior: O(suffix) while the cut stays in the pending tier, a merged-
// tier rebuild from the journal prefix below that.
func (p *Profile) TruncateReservations(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(p.resvLog) {
		return
	}
	if p.flatResv {
		p.truncFlat(n)
	} else {
		p.truncIndexed(n)
	}
	for _, e := range p.resvLog[n:] {
		if e.End > e.Start && e.CPUs > 0 {
			p.nentries--
		}
	}
	p.resvLog = p.resvLog[:n]
}

// truncIndexed rolls the chunked reservation index back to the first n
// journal entries, taking whichever side of the cut is cheaper.
func (p *Profile) truncIndexed(n int) {
	if n == 0 {
		p.ridx.reset()
		return
	}
	if len(p.resvLog)-n <= n {
		for _, e := range p.resvLog[n:] {
			if e.End <= e.Start || e.CPUs <= 0 {
				continue
			}
			p.ridx.removeOne(e.Start, e.CPUs)
			p.ridx.removeOne(e.End, -e.CPUs)
		}
		p.truncWork += len(p.resvLog) - n
		return
	}
	// The kept prefix is the smaller side: rebuild the index from it.
	ds := p.scratch[:0]
	for _, e := range p.resvLog[:n] {
		if e.End <= e.Start || e.CPUs <= 0 {
			continue
		}
		ds = append(ds, delta{t: e.Start, d: e.CPUs}, delta{t: e.End, d: -e.CPUs})
	}
	slices.SortFunc(ds, deltaCmp)
	p.ridx.load(ds)
	p.scratch = ds[:0]
	p.truncWork += n
}

// truncFlat is the flat compat tier's rollback (the pre-index behavior).
func (p *Profile) truncFlat(n int) {
	if n >= p.resvMain {
		// The suffix lives entirely in the pending tier: rebuild it from
		// the journal slice between the merged boundary and the cut.
		p.resvPend = p.resvPend[:0]
		p.resvPendSorted = true
		for _, e := range p.resvLog[p.resvMain:n] {
			if e.End <= e.Start || e.CPUs <= 0 {
				continue
			}
			if m := len(p.resvPend); m > 0 && e.Start < p.resvPend[m-1].t {
				p.resvPendSorted = false
			}
			p.resvPend = append(p.resvPend, delta{t: e.Start, d: e.CPUs}, delta{t: e.End, d: -e.CPUs})
		}
		p.truncWork += n - p.resvMain
	} else {
		// The cut reaches into the merged tier: rebuild it from the kept
		// journal prefix.
		p.resv = p.resv[:0]
		for _, e := range p.resvLog[:n] {
			if e.End <= e.Start || e.CPUs <= 0 {
				continue
			}
			p.resv = append(p.resv, delta{t: e.Start, d: e.CPUs}, delta{t: e.End, d: -e.CPUs})
		}
		slices.SortFunc(p.resv, deltaCmp)
		p.resvPrefix = p.resvPrefix[:0]
		run := 0
		for _, d := range p.resv {
			run += d.d
			p.resvPrefix = append(p.resvPrefix, run)
		}
		p.resvMain = n
		p.resvPend = p.resvPend[:0]
		p.resvPendSorted = true
		p.truncWork += n
	}
}

// BaseDeltas returns the live delta count of the base tiers — the
// scheduler's trigger for re-anchoring an epoch when credit history has
// accumulated past a multiple of the running set.
func (p *Profile) BaseDeltas() int {
	return len(p.deltas) + len(p.pending) - p.pendLo + p.dex.len()
}

func deltaCmp(a, b delta) int {
	switch {
	case a.t < b.t:
		return -1
	case a.t > b.t:
		return 1
	}
	return 0
}

// prepare sorts the pending tiers if needed, folds expired deltas behind
// the horizon, and merges a tier into its main list once it outgrows the
// merge threshold. Amortized across a replanning pass the merges cost
// O(1) per mutation; between merges queries pay one extra scan over the
// (bounded) pending tiers.
func (p *Profile) prepare() {
	if p.inc && !p.flatResv {
		// Default incremental path: both chunked indexes are always
		// ordered; folding expired leading chunks behind the horizon is
		// all that remains, and it invalidates the query-entry memo.
		if f := p.dex.foldTo(p.horizon); f != 0 {
			p.pendBase += f
			p.ver++
		}
		return
	}
	if !p.pendingSorted {
		slices.SortFunc(p.pending[p.pendLo:], deltaCmp)
		p.pendingSorted = true
	}
	if p.inc {
		// Flat compat path. Fold pending deltas that can no longer be
		// distinguished by any valid query (t <= horizon) into a single
		// usage offset.
		for p.pendLo < len(p.pending) && p.pending[p.pendLo].t <= p.horizon {
			p.pendBase += p.pending[p.pendLo].d
			p.pendLo++
		}
		if len(p.pending)-p.pendLo > incPendingFlush {
			p.flush()
		}
		if !p.resvPendSorted {
			slices.SortFunc(p.resvPend, deltaCmp)
			p.resvPendSorted = true
		}
		if len(p.resvPend) > 64+len(p.resv)/16 {
			p.flushResv()
		}
		return
	}
	if len(p.pending) > 64+len(p.deltas)/16 {
		p.flush()
	}
}

// flush merges the sorted pending tier into the main tier and rebuilds
// the prefix sums in one pass, writing into the scratch buffer (never
// aliasing its inputs). In incremental mode the merge also compacts:
// everything at or before the horizon (including the folded pending
// offset) collapses into one leading delta at the horizon, equal-time
// groups merge, and groups with zero net change vanish — expired history
// and credit/occupancy pairs cancel instead of accumulating, while the
// step function over [horizon, ∞) is unchanged.
func (p *Profile) flush() {
	merged := p.scratch[:0]
	pend := p.pending[p.pendLo:]
	i, j := 0, 0
	if p.inc {
		lead := p.pendBase
		p.pendBase = 0
		for i < len(p.deltas) && p.deltas[i].t <= p.horizon {
			lead += p.deltas[i].d
			i++
		}
		for j < len(pend) && pend[j].t <= p.horizon {
			lead += pend[j].d
			j++
		}
		if lead != 0 {
			merged = append(merged, delta{t: p.horizon, d: lead})
		}
		for i < len(p.deltas) || j < len(pend) {
			t := math.Inf(1)
			if i < len(p.deltas) {
				t = p.deltas[i].t
			}
			if j < len(pend) && pend[j].t < t {
				t = pend[j].t
			}
			d := 0
			for i < len(p.deltas) && p.deltas[i].t == t {
				d += p.deltas[i].d
				i++
			}
			for j < len(pend) && pend[j].t == t {
				d += pend[j].d
				j++
			}
			if d != 0 {
				merged = append(merged, delta{t: t, d: d})
			}
		}
	} else {
		for i < len(p.deltas) || j < len(pend) {
			if j >= len(pend) || (i < len(p.deltas) && p.deltas[i].t <= pend[j].t) {
				merged = append(merged, p.deltas[i])
				i++
			} else {
				merged = append(merged, pend[j])
				j++
			}
		}
	}
	p.scratch, p.deltas = p.deltas[:0], merged
	p.pending = p.pending[:0]
	p.pendLo = 0
	p.prefix = p.prefix[:0]
	run := 0
	for _, d := range p.deltas {
		run += d.d
		p.prefix = append(p.prefix, run)
	}
	if p.inc {
		p.tree.build(p.prefix)
	}
}

// flushResv merges the sorted reservation pending tier into the
// reservation main tier. Reservation deltas are never folded or
// collapsed: TruncateReservations must be able to rebuild any prefix from
// the journal, and the layer is cleared wholesale on full replans.
func (p *Profile) flushResv() {
	merged := p.scratch[:0]
	i, j := 0, 0
	for i < len(p.resv) || j < len(p.resvPend) {
		if j >= len(p.resvPend) || (i < len(p.resv) && p.resv[i].t <= p.resvPend[j].t) {
			merged = append(merged, p.resv[i])
			i++
		} else {
			merged = append(merged, p.resvPend[j])
			j++
		}
	}
	p.scratch, p.resv = p.resv[:0], merged
	p.resvPend = p.resvPend[:0]
	p.resvMain = len(p.resvLog)
	p.resvPrefix = p.resvPrefix[:0]
	run := 0
	for _, d := range p.resv {
		run += d.d
		p.resvPrefix = append(p.resvPrefix, run)
	}
}

// Len returns the number of entries.
func (p *Profile) Len() int { return p.nentries }

// UsedAt returns the number of processors busy at time t. The main tiers
// are answered by binary search over the prefix-summed deltas; only the
// small pending tiers are scanned. In incremental mode t must be at or
// after the latest BeginPass time.
func (p *Profile) UsedAt(t float64) int {
	p.prepare()
	if p.inc && !p.flatResv {
		return p.pendBase + p.dex.sumAt(t) + p.ridx.sumAt(t)
	}
	used := p.pendBase
	if i := sort.Search(len(p.deltas), func(i int) bool { return p.deltas[i].t > t }); i > 0 {
		used += p.prefix[i-1]
	}
	for j := p.pendLo; j < len(p.pending) && p.pending[j].t <= t; j++ {
		used += p.pending[j].d
	}
	if p.inc {
		if i := sort.Search(len(p.resv), func(i int) bool { return p.resv[i].t > t }); i > 0 {
			used += p.resvPrefix[i-1]
		}
		for j := 0; j < len(p.resvPend) && p.resvPend[j].t <= t; j++ {
			used += p.resvPend[j].d
		}
	}
	return used
}

// FreeAt returns the number of processors free at time t.
func (p *Profile) FreeAt(t float64) int { return p.Total - p.UsedAt(t) }

// CanPlace reports whether cpus processors are continuously available
// during [start, start+dur). A non-positive dur degenerates to the
// instantaneous check: the processors must still be free at the start
// itself, or a zero-length job could be placed on a full machine and
// break the scheduler's allocation invariant.
func (p *Profile) CanPlace(cpus int, start, dur float64) bool {
	if cpus > p.Total {
		return false
	}
	if dur <= 0 {
		return p.UsedAt(start)+cpus <= p.Total
	}
	return p.EarliestStart(cpus, dur, start) == start
}

// ovCursor walks the overlay tiers (live pending deltas plus, in
// incremental mode, the reservation tier — either the chunked index via
// ix/ci/ck or the flat slice pair via b/c) as one merged stream.
type ovCursor struct {
	a, b, c []delta
	i, j, k int

	ix     *resvIndex // indexed reservation tier; nil when flat or exhausted
	ci, ck int        // chunk / in-chunk position within ix
}

// ixPeek returns the time of the next indexed reservation delta.
// The index cursor is kept normalized: ci < len(chunks) implies
// ck < len(chunks[ci]).
func (c *ovCursor) ixPeek() (float64, bool) {
	if c.ix == nil || c.ci >= len(c.ix.chunks) {
		return 0, false
	}
	return c.ix.chunks[c.ci][c.ck].t, true
}

// ixStep consumes the current indexed delta and rolls into the next
// chunk at its end.
func (c *ovCursor) ixStep() int {
	d := c.ix.chunks[c.ci][c.ck].d
	c.ck++
	if c.ck >= len(c.ix.chunks[c.ci]) {
		c.ci++
		c.ck = 0
	}
	return d
}

// peek returns the next overlay time, +Inf when exhausted.
func (c *ovCursor) peek() float64 {
	t := math.Inf(1)
	if c.i < len(c.a) && c.a[c.i].t < t {
		t = c.a[c.i].t
	}
	if c.j < len(c.b) && c.b[c.j].t < t {
		t = c.b[c.j].t
	}
	if c.k < len(c.c) && c.c[c.k].t < t {
		t = c.c[c.k].t
	}
	if it, ok := c.ixPeek(); ok && it < t {
		t = it
	}
	return t
}

// take consumes every overlay delta at exactly t and returns their sum.
func (c *ovCursor) take(t float64) int {
	d := 0
	for c.i < len(c.a) && c.a[c.i].t == t {
		d += c.a[c.i].d
		c.i++
	}
	for c.j < len(c.b) && c.b[c.j].t == t {
		d += c.b[c.j].d
		c.j++
	}
	for c.k < len(c.c) && c.c[c.k].t == t {
		d += c.c[c.k].d
		c.k++
	}
	for {
		it, ok := c.ixPeek()
		if !ok || it != t {
			break
		}
		d += c.ixStep()
	}
	return d
}

// skip consumes overlay deltas at or before t and returns their sum.
func (c *ovCursor) skip(t float64) int {
	d := 0
	for c.i < len(c.a) && c.a[c.i].t <= t {
		d += c.a[c.i].d
		c.i++
	}
	for c.j < len(c.b) && c.b[c.j].t <= t {
		d += c.b[c.j].d
		c.j++
	}
	for c.k < len(c.c) && c.c[c.k].t <= t {
		d += c.c[c.k].d
		c.k++
	}
	for {
		it, ok := c.ixPeek()
		if !ok || it > t {
			break
		}
		d += c.ixStep()
	}
	return d
}

// EarliestStart returns the earliest time t >= from at which cpus
// processors are continuously available for dur seconds. It returns +Inf
// when cpus exceeds the machine size. The usage at `from` comes from
// binary searches over the prefix sums; the sweep then either walks the
// sorted tiers forward with a merge cursor, or — in incremental mode —
// jumps between feasibility transitions directly: the default path skips
// whole chunks of the skyline index via their prefix extrema, the flat
// compat path descends the max/min-augmented skyline tree, both
// overlaying the reservation tier. In incremental mode from must be at
// or after the latest BeginPass time.
func (p *Profile) EarliestStart(cpus int, dur, from float64) float64 {
	if cpus > p.Total {
		return math.Inf(1)
	}
	p.prepare()
	limit := p.Total - cpus
	if p.inc {
		if p.flatResv {
			return p.earliestIncFlat(limit, dur, from)
		}
		return p.earliestIncDex(limit, dur, from)
	}
	i := sort.Search(len(p.deltas), func(k int) bool { return p.deltas[k].t > from })
	baseU := 0
	if i > 0 {
		baseU = p.prefix[i-1]
	}
	ov := ovCursor{a: p.pending[p.pendLo:]}
	used := baseU + p.pendBase + ov.skip(from)
	return p.earliestLinear(p.deltas, i, used, ov, limit, dur, from)
}

// earliestIncFlat is the flat-tier (compat) incremental query entry: the
// pre-index behavior of lazily sorted pending slices overlaying the
// merged main tier, swept by the skyline-tree descent.
func (p *Profile) earliestIncFlat(limit int, dur, from float64) float64 {
	i := sort.Search(len(p.deltas), func(k int) bool { return p.deltas[k].t > from })
	baseU := 0
	if i > 0 {
		baseU = p.prefix[i-1]
	}
	ov := ovCursor{a: p.pending[p.pendLo:]}
	V := p.pendBase + ov.skip(from)
	r := sort.Search(len(p.resv), func(k int) bool { return p.resv[k].t > from })
	ov.b, ov.j = p.resv, r
	if r > 0 {
		V += p.resvPrefix[r-1]
	}
	ov.c = p.resvPend
	for ov.k < len(ov.c) && ov.c[ov.k].t <= from {
		V += ov.c[ov.k].d
		ov.k++
	}
	if !p.noTree && p.tree.len() == len(p.deltas) && len(p.deltas) >= skyTreeMin {
		return p.earliestTree(i, baseU, V, ov, limit, dur, from)
	}
	return p.earliestLinear(p.deltas, i, baseU+V, ov, limit, dur, from)
}

// earliestIncDex is the default incremental query entry: the base tier
// lives in the chunked skyline index and reservations in the chunked
// reservation index. Consecutive queries of a replanning pass share
// `from` over an unchanged base — only reservations move between them —
// so the base entry position and usage are memoized under the base
// version counter; AddReservation and TruncateReservations never
// invalidate the memo because reservations re-seek on every query.
func (p *Profile) earliestIncDex(limit int, dur, from float64) float64 {
	var ci, k, P int
	if p.ver == p.memoVer && from == p.memoFrom {
		ci, k, P = p.memoCi, p.memoK, p.memoP
	} else {
		ci, k, P = p.dex.seek(from)
		p.memoVer, p.memoFrom = p.ver, from
		p.memoCi, p.memoK, p.memoP = ci, k, P
	}
	V := p.pendBase
	var ov ovCursor
	if p.ridx.size > 0 {
		rci, rck, rv := p.ridx.seek(from)
		V += rv
		if rci < len(p.ridx.chunks) {
			ov.ix, ov.ci, ov.ck = &p.ridx, rci, rck
		}
	}
	if p.noTree {
		return p.earliestDexLinear(P, V, ov, limit, dur, from)
	}
	return p.earliestDex(ci, k, P, V, ov, limit, dur, from)
}

// earliestDex is the chunk-skipping feasibility sweep over the skyline
// index: between overlay (reservation) boundaries the base usage is
// constant-shifted, so the next feasibility transition is found by
// cross, which skips whole chunks whose prefix extrema exclude one.
// Semantics are identical to earliestLinear over the materialized base.
func (p *Profile) earliestDex(ci, k, P, V int, ov ovCursor, limit int, dur, from float64) float64 {
	d := &p.dex
	used := P + V
	cand := from
	for {
		tOv := ov.peek()
		// Sweep the base deltas before tOv under constant overlay V: base
		// usage must stay at or below L for a window to be feasible.
		L := limit - V
		for {
			above := used <= limit
			nci, nk, nP, t, ip, ok := d.cross(ci, k, P, L, above, tOv)
			ci, k, P = nci, nk, nP
			if !ok {
				// No more crossings before the boundary; the cursor sits on
				// the first delta at or after it.
				used = P + V
				break
			}
			if above {
				if t-cand >= dur {
					return cand
				}
			} else {
				// Violated segments end where the usage drops back to the
				// limit: the candidate restarts at that boundary.
				cand = t
			}
			used = ip + V
		}
		// The segment ending at the overlay boundary has constant usage.
		if used > limit {
			cand = tOv
		} else if tOv-cand >= dur {
			return cand // also the tOv = +Inf exit: the tail is free
		}
		if math.IsInf(tOv, 1) {
			return cand
		}
		V += ov.take(tOv)
		for ci < len(d.chunks) && d.chunks[ci].ds[k].t == tOv {
			P += d.chunks[ci].ds[k].d
			k++
			if k == len(d.chunks[ci].ds) {
				ci, k = ci+1, 0
			}
		}
		used = P + V
	}
}

// earliestDexLinear is the differential reference for the chunk-skipping
// sweep: it materializes the skyline index into the scratch buffer and
// runs the plain merge sweep over it.
func (p *Profile) earliestDexLinear(P, V int, ov ovCursor, limit int, dur, from float64) float64 {
	ds := p.scratch[:0]
	p.dex.each(func(dd delta) bool { ds = append(ds, dd); return true })
	i := sort.Search(len(ds), func(j int) bool { return ds[j].t > from })
	res := p.earliestLinear(ds, i, P+V, ov, limit, dur, from)
	p.scratch = ds[:0]
	return res
}

// earliestLinear is the merge-cursor feasibility sweep over a sorted
// base slice and the overlay cursor. It is the reference the
// chunk-skipping and skyline-tree sweeps must agree with exactly.
func (p *Profile) earliestLinear(main []delta, i, used int, ov ovCursor, limit int, dur, from float64) float64 {
	if len(ov.b) == 0 && len(ov.c) == 0 && ov.ix == nil {
		// Single overlay list (non-incremental mode, or an incremental
		// profile with no reservations): the tight two-cursor merge.
		return p.earliestTwoWay(main, i, used, ov.a, ov.i, limit, dur, from)
	}
	cand := from
	for {
		t := ov.peek()
		if i < len(main) && main[i].t < t {
			t = main[i].t
		}
		if math.IsInf(t, 1) {
			break
		}
		// The segment ending at t has constant usage `used`.
		if used > limit {
			// Violated throughout; the earliest possible start moves to
			// the segment's end.
			cand = t
		} else if t-cand >= dur {
			return cand
		}
		for i < len(main) && main[i].t == t {
			used += main[i].d
			i++
		}
		used += ov.take(t)
	}
	// Past the last delta the machine is empty (all entries closed), so
	// the candidate holds forever.
	return cand
}

// earliestTwoWay sweeps the base slice against one pending list with the
// minimal per-segment work; semantics are identical to earliestLinear.
func (p *Profile) earliestTwoWay(main []delta, i, used int, pend []delta, j, limit int, dur, from float64) float64 {
	cand := from
	for i < len(main) || j < len(pend) {
		var t float64
		if i < len(main) && (j >= len(pend) || main[i].t <= pend[j].t) {
			t = main[i].t
		} else {
			t = pend[j].t
		}
		// The segment ending at t has constant usage `used`.
		if used > limit {
			cand = t
		} else if t-cand >= dur {
			return cand
		}
		for i < len(main) && main[i].t == t {
			used += main[i].d
			i++
		}
		for j < len(pend) && pend[j].t == t {
			used += pend[j].d
			j++
		}
	}
	return cand
}

// earliestTree is the skyline-tree feasibility sweep: between overlay
// deltas the base usage is constant-shifted, so the next feasibility
// transition inside the main tier is found by descending the tree for
// the first prefix above/at-or-below the shifted limit instead of
// walking segments one by one.
func (p *Profile) earliestTree(i, baseU, V int, ov ovCursor, limit int, dur, from float64) float64 {
	main, pfx := p.deltas, p.prefix
	used := baseU + V
	cand := from
	for {
		tOv := ov.peek()
		iEnd := len(main)
		if !math.IsInf(tOv, 1) {
			// Overlay boundaries only increase across the sweep, so gallop
			// from the cursor (exponential probe, then binary search in the
			// bracketed range) instead of binary-searching the whole
			// remaining suffix at every boundary.
			lo, hi := i, i
			for step := 1; hi < len(main) && main[hi].t < tOv; step <<= 1 {
				lo = hi + 1
				hi += step
			}
			if hi > len(main) {
				hi = len(main)
			}
			iEnd = lo + sort.Search(hi-lo, func(k int) bool { return main[lo+k].t >= tOv })
		}
		// Sweep the base range [i, iEnd) under constant overlay V: base
		// usage must stay at or below L for the window to be feasible.
		L := limit - V
		for {
			if used > limit {
				w := p.tree.first(i, iEnd, L, false)
				if w < 0 {
					break // violated up to tOv
				}
				// Violated segments end where the base prefix drops back
				// to L: the candidate restarts at that boundary.
				cand = main[w].t
				i = w + 1
				used = pfx[w] + V
			} else {
				w := p.tree.first(i, iEnd, L, true)
				if w < 0 {
					break // feasible up to tOv
				}
				if main[w].t-cand >= dur {
					return cand
				}
				i = w + 1
				used = pfx[w] + V
			}
		}
		// No more crossings before the overlay boundary: apply the rest of
		// the range (its deltas shift usage without crossing the limit),
		// then check the segment ending at the boundary.
		i = iEnd
		if i > 0 {
			used = pfx[i-1] + V
		} else {
			used = V
		}
		if used > limit {
			cand = tOv
		} else if tOv-cand >= dur {
			return cand // also the tOv = +Inf exit: the tail is free
		}
		if math.IsInf(tOv, 1) {
			return cand
		}
		V += ov.take(tOv)
		for i < len(main) && main[i].t == tOv {
			i++
		}
		if i > 0 {
			used = pfx[i-1] + V
		} else {
			used = V
		}
	}
}
