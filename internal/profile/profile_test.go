package profile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUsedAtAndFreeAt(t *testing.T) {
	p := New(10)
	p.Add(Entry{Start: 0, End: 10, CPUs: 4})
	p.Add(Entry{Start: 5, End: 15, CPUs: 3})
	cases := []struct {
		t    float64
		used int
	}{
		{-1, 0}, {0, 4}, {4.9, 4}, {5, 7}, {9.9, 7}, {10, 3}, {14.9, 3}, {15, 0},
	}
	for _, c := range cases {
		if got := p.UsedAt(c.t); got != c.used {
			t.Errorf("UsedAt(%v) = %d, want %d", c.t, got, c.used)
		}
		if got := p.FreeAt(c.t); got != 10-c.used {
			t.Errorf("FreeAt(%v) = %d, want %d", c.t, got, 10-c.used)
		}
	}
}

func TestAddIgnoresDegenerate(t *testing.T) {
	p := New(4)
	p.Add(Entry{Start: 5, End: 5, CPUs: 2})
	p.Add(Entry{Start: 5, End: 4, CPUs: 2})
	p.Add(Entry{Start: 0, End: 10, CPUs: 0})
	if p.Len() != 0 {
		t.Errorf("degenerate entries stored: %d", p.Len())
	}
}

func TestCanPlace(t *testing.T) {
	p := New(10)
	p.Add(Entry{Start: 10, End: 20, CPUs: 8})
	if !p.CanPlace(2, 10, 10) {
		t.Error("2 cpus alongside 8 should fit")
	}
	if p.CanPlace(3, 10, 10) {
		t.Error("3 cpus alongside 8 should not fit")
	}
	if !p.CanPlace(10, 0, 10) {
		t.Error("full machine before the entry should fit")
	}
	if p.CanPlace(10, 5, 6) {
		t.Error("window overlapping the entry should not fit the full machine")
	}
	if p.CanPlace(11, 0, 1) {
		t.Error("more cpus than the machine accepted")
	}
	if !p.CanPlace(10, 20, 1000) {
		t.Error("full machine after all entries should fit")
	}
}

// Regression: a zero-duration request (a zero-ReqTime job's kill limit)
// must still check instantaneous availability — it used to report true on
// a fully busy machine, letting the scheduler backfill a job it could not
// allocate.
func TestCanPlaceZeroDurationChecksInstantaneousFree(t *testing.T) {
	p := New(8)
	p.Add(Entry{Start: 0, End: 100, CPUs: 8})
	if p.CanPlace(1, 50, 0) {
		t.Error("zero-duration placement accepted on a full machine")
	}
	if !p.CanPlace(1, 100, 0) {
		t.Error("zero-duration placement rejected after the release")
	}
	if !p.CanPlace(8, 100, 0) {
		t.Error("zero-duration full-machine placement rejected on an idle machine")
	}
	if p.CanPlace(9, 100, 0) {
		t.Error("oversized zero-duration placement accepted")
	}
}

func TestEarliestStartBasic(t *testing.T) {
	p := New(10)
	p.Add(Entry{Start: 0, End: 100, CPUs: 8})
	// 2 cpus fit immediately; 4 must wait for the release at t=100.
	if got := p.EarliestStart(2, 50, 0); got != 0 {
		t.Errorf("EarliestStart(2) = %v, want 0", got)
	}
	if got := p.EarliestStart(4, 50, 0); got != 100 {
		t.Errorf("EarliestStart(4) = %v, want 100", got)
	}
}

func TestEarliestStartRespectsFrom(t *testing.T) {
	p := New(4)
	if got := p.EarliestStart(2, 10, 42); got != 42 {
		t.Errorf("EarliestStart from=42 on empty profile = %v, want 42", got)
	}
}

func TestEarliestStartHole(t *testing.T) {
	// A hole between two occupancy intervals: 4 cpus free during [10, 20).
	p := New(4)
	p.Add(Entry{Start: 0, End: 10, CPUs: 4})
	p.Add(Entry{Start: 20, End: 30, CPUs: 4})
	if got := p.EarliestStart(4, 10, 0); got != 10 {
		t.Errorf("fits in hole: EarliestStart = %v, want 10", got)
	}
	// Too long for the hole: must wait until the second interval ends.
	if got := p.EarliestStart(4, 11, 0); got != 30 {
		t.Errorf("overflows hole: EarliestStart = %v, want 30", got)
	}
	// A narrower job shares the hole and the second interval... but the
	// second interval uses the whole machine, so it still overflows.
	if got := p.EarliestStart(1, 11, 0); got != 30 {
		t.Errorf("narrow overflow: EarliestStart = %v, want 30", got)
	}
}

func TestEarliestStartOversized(t *testing.T) {
	p := New(4)
	if !math.IsInf(p.EarliestStart(5, 1, 0), 1) {
		t.Error("oversized request should return +Inf")
	}
}

// refCanPlace is the independent reference: usage checked point-wise at
// the window start and every boundary inside it (the pre-optimization
// algorithm).
func refCanPlace(p *Profile, entries []Entry, cpus int, start, dur float64) bool {
	if cpus > p.Total {
		return false
	}
	if dur <= 0 {
		// Zero-length placements still need the processors free at the
		// start instant (the scheduler allocates them there).
		return naiveUsedAt(entries, start)+cpus <= p.Total
	}
	end := start + dur
	if p.UsedAt(start)+cpus > p.Total {
		return false
	}
	for _, e := range entries {
		for _, b := range [2]float64{e.Start, e.End} {
			if b > start && b < end && p.UsedAt(b)+cpus > p.Total {
				return false
			}
		}
	}
	return true
}

// Property: the sweep-based CanPlace agrees with the point-wise reference.
func TestQuickCanPlaceMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 2 + r.Intn(16)
		p := New(total)
		var entries []Entry
		for i := 0; i < r.Intn(10); i++ {
			s := float64(r.Intn(50))
			e := Entry{Start: s, End: s + float64(1+r.Intn(30)), CPUs: 1 + r.Intn(total)}
			p.Add(e)
			entries = append(entries, e)
		}
		for trial := 0; trial < 20; trial++ {
			cpus := 1 + r.Intn(total+1)
			start := float64(r.Intn(60))
			dur := float64(r.Intn(40))
			if p.CanPlace(cpus, start, dur) != refCanPlace(p, entries, cpus, start, dur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the returned start is feasible, and no earlier boundary (or
// `from` itself) admits the window.
func TestQuickEarliestStartOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 2 + r.Intn(16)
		p := New(total)
		n := r.Intn(8)
		var bounds []float64
		for i := 0; i < n; i++ {
			s := float64(r.Intn(50))
			d := float64(1 + r.Intn(30))
			c := 1 + r.Intn(total)
			p.Add(Entry{Start: s, End: s + d, CPUs: c})
			bounds = append(bounds, s, s+d)
		}
		cpus := 1 + r.Intn(total)
		dur := float64(1 + r.Intn(40))
		from := float64(r.Intn(30))
		got := p.EarliestStart(cpus, dur, from)
		if math.IsInf(got, 1) {
			return false // cpus <= total, so a start must exist
		}
		if got < from {
			return false
		}
		if !p.CanPlace(cpus, got, dur) {
			return false
		}
		// No earlier candidate works.
		cands := append([]float64{from}, bounds...)
		for _, c := range cands {
			if c >= from && c < got && p.CanPlace(cpus, c, dur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// naiveUsedAt is the seed-era reference: a linear scan over the raw
// entries. The tiered implementation must agree everywhere.
func naiveUsedAt(entries []Entry, t float64) int {
	used := 0
	for _, e := range entries {
		if e.Start <= t && t < e.End {
			used += e.CPUs
		}
	}
	return used
}

// Satellite regression for the binary-searched UsedAt: agreement with the
// naive scan on randomized profiles, probed at entry boundaries (where
// the half-open [Start, End) semantics bite) and at random times, with
// queries interleaved between Adds so every pending/merged tier state is
// exercised.
func TestQuickUsedAtMatchesNaiveScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 2 + r.Intn(64)
		p := New(total)
		var entries []Entry
		probe := func() bool {
			ts := []float64{-1, 0, float64(r.Intn(100)), r.Float64() * 100}
			for _, e := range entries {
				ts = append(ts, e.Start, e.End, math.Nextafter(e.End, 0))
			}
			for _, q := range ts {
				if p.UsedAt(q) != naiveUsedAt(entries, q) {
					return false
				}
				if p.FreeAt(q) != total-naiveUsedAt(entries, q) {
					return false
				}
			}
			return true
		}
		for i := 0; i < 40; i++ {
			s := float64(r.Intn(80))
			e := Entry{Start: s, End: s + float64(1+r.Intn(40)), CPUs: 1 + r.Intn(total)}
			p.Add(e)
			entries = append(entries, e)
			if r.Intn(4) == 0 && !probe() {
				return false
			}
		}
		return probe()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// LoadReleases must be observationally identical to adding one
// [now, Time) entry per release.
func TestLoadReleasesMatchesAdds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 4 + r.Intn(60)
		now := r.Float64() * 10
		n := r.Intn(12)
		rels := make([]Release, n)
		for i := range rels {
			rels[i] = Release{Time: now + 0.5 + r.Float64()*50, CPUs: 1 + r.Intn(8)}
		}
		sortReleases(rels)
		bulk := New(total)
		bulk.LoadReleases(total, now, rels)
		ref := New(total)
		for _, rel := range rels {
			ref.Add(Entry{Start: now, End: rel.Time, CPUs: rel.CPUs})
		}
		if bulk.Len() != ref.Len() {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			q := now + r.Float64()*60 - 2
			if bulk.UsedAt(q) != ref.UsedAt(q) {
				return false
			}
			cpus := 1 + r.Intn(total)
			dur := r.Float64() * 30
			if bulk.EarliestStart(cpus, dur, q) != ref.EarliestStart(cpus, dur, q) {
				return false
			}
		}
		// Mixing reservations on top must stay equivalent too.
		for i := 0; i < 5; i++ {
			s := now + r.Float64()*40
			e := Entry{Start: s, End: s + 1 + r.Float64()*20, CPUs: 1 + r.Intn(8)}
			bulk.Add(e)
			ref.Add(e)
			q := now + r.Float64()*60
			if bulk.UsedAt(q) != ref.UsedAt(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sortReleases(rels []Release) {
	for i := 1; i < len(rels); i++ {
		for j := i; j > 0 && rels[j].Time < rels[j-1].Time; j-- {
			rels[j], rels[j-1] = rels[j-1], rels[j]
		}
	}
}

// The pending tier must fold into the main tier once it outgrows the
// merge threshold, keeping point queries logarithmic: after thousands of
// Adds the pending buffer stays bounded.
func TestPendingTierStaysBounded(t *testing.T) {
	p := New(1 << 20)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		s := r.Float64() * 1e6
		p.Add(Entry{Start: s, End: s + 1 + r.Float64()*1e4, CPUs: 1 + r.Intn(64)})
		if i%97 == 0 {
			p.UsedAt(r.Float64() * 1e6)
		}
	}
	p.UsedAt(0)
	if cap := 64 + len(p.deltas)/16; len(p.pending) > cap {
		t.Errorf("pending tier %d exceeds threshold %d after queries", len(p.pending), cap)
	}
	if p.Len() != 5000 {
		t.Errorf("Len = %d, want 5000", p.Len())
	}
}

// Property: CanPlace is monotone in cpus — if n cpus fit, n-1 fit too.
func TestQuickCanPlaceMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 2 + r.Intn(12)
		p := New(total)
		for i := 0; i < r.Intn(6); i++ {
			s := float64(r.Intn(40))
			p.Add(Entry{Start: s, End: s + float64(1+r.Intn(20)), CPUs: 1 + r.Intn(total)})
		}
		start := float64(r.Intn(40))
		dur := float64(1 + r.Intn(20))
		for n := total; n > 1; n-- {
			if p.CanPlace(n, start, dur) && !p.CanPlace(n-1, start, dur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
