package profile

import "math"

// skyTreeMin is the main-tier size below which the linear merge sweep is
// used outright: descending a tree over a handful of segments costs more
// than walking them.
const skyTreeMin = 32

// skyTree is a max/min-augmented segment tree over the main tier's
// prefix-summed usage ("skyline"): node k covers a power-of-two range of
// delta indexes and stores the maximum and minimum prefix usage inside
// it. EarliestStart uses it to find the first index in a range whose
// usage crosses a feasibility limit in O(log n) — the boundary where a
// violated stretch ends or a feasible stretch breaks — instead of
// walking every segment in between.
type skyTree struct {
	size     int // number of leaves (power of two), 0 when absent
	n        int // live leaves (= len of the prefix array built from)
	max, min []int
}

// drop discards the tree (the main tier is about to change shape).
func (t *skyTree) drop() { t.size, t.n = 0, 0 }

// len returns the number of live leaves, 0 when the tree is absent.
func (t *skyTree) len() int {
	if t.size == 0 {
		return 0
	}
	return t.n
}

// build (re)builds the tree over the given prefix-usage array in O(n).
func (t *skyTree) build(prefix []int) {
	n := len(prefix)
	if n < skyTreeMin {
		t.drop()
		return
	}
	size := 1
	for size < n {
		size <<= 1
	}
	if cap(t.max) < 2*size {
		t.max = make([]int, 2*size)
		t.min = make([]int, 2*size)
	}
	t.max = t.max[:2*size]
	t.min = t.min[:2*size]
	t.size, t.n = size, n
	for i := 0; i < n; i++ {
		t.max[size+i] = prefix[i]
		t.min[size+i] = prefix[i]
	}
	for i := n; i < size; i++ {
		// Padding leaves can never qualify for either search direction.
		t.max[size+i] = math.MinInt
		t.min[size+i] = math.MaxInt
	}
	for i := size - 1; i >= 1; i-- {
		l, r := 2*i, 2*i+1
		t.max[i] = t.max[l]
		if t.max[r] > t.max[i] {
			t.max[i] = t.max[r]
		}
		t.min[i] = t.min[l]
		if t.min[r] < t.min[i] {
			t.min[i] = t.min[r]
		}
	}
}

// first returns the smallest index in [lo, hi) whose prefix usage is
// above the limit (above=true) or at/below it (above=false), or -1 when
// no such index exists in the range.
func (t *skyTree) first(lo, hi, limit int, above bool) int {
	if lo >= hi || t.size == 0 {
		return -1
	}
	return t.descend(1, 0, t.size, lo, hi, limit, above)
}

func (t *skyTree) descend(node, nlo, nhi, lo, hi, limit int, above bool) int {
	if nhi <= lo || hi <= nlo {
		return -1
	}
	if above {
		if t.max[node] <= limit {
			return -1
		}
	} else if t.min[node] > limit {
		return -1
	}
	if nhi-nlo == 1 {
		return nlo
	}
	mid := (nlo + nhi) / 2
	if r := t.descend(2*node, nlo, mid, lo, hi, limit, above); r >= 0 {
		return r
	}
	return t.descend(2*node+1, mid, nhi, lo, hi, limit, above)
}
