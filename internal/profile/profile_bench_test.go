package profile

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchProfile(entries int) *Profile {
	r := rand.New(rand.NewSource(7))
	p := New(1024)
	for i := 0; i < entries; i++ {
		s := r.Float64() * 1e5
		p.Add(Entry{Start: s, End: s + 1 + r.Float64()*1e4, CPUs: 1 + r.Intn(512)})
	}
	return p
}

// BenchmarkEarliestStart measures the planning query driving conservative
// and flexible backfilling.
func BenchmarkEarliestStart(b *testing.B) {
	p := benchProfile(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EarliestStart(64, 3600, float64(i%100000))
	}
}

// BenchmarkReplanPass models one conservative replanning pass at scale:
// bulk-load n running-job releases, then interleave reservation Adds with
// EarliestStart queries for a queue of 256 jobs. The seed implementation
// insertion-sorted every delta (O(n) memmoves per Add, O(n²) per pass);
// with the bulk loader and the deferred-merge pending tier the per-pass
// time must grow near-linearly in n — watch ns/op roughly 4× per 4× n.
func BenchmarkReplanPass(b *testing.B) {
	for _, n := range []int{1_000, 4_000, 16_000} {
		b.Run(fmt.Sprintf("running=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(11))
			rels := make([]Release, n)
			t := 0.0
			for i := range rels {
				t += r.Float64() * 10
				rels[i] = Release{Time: 1 + t, CPUs: 1 + r.Intn(64)}
			}
			const total = 1 << 20
			p := New(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.LoadReleases(total, 0, rels)
				for k := 0; k < 256; k++ {
					st := p.EarliestStart(1024, 3600, 0)
					p.Add(Entry{Start: st, End: st + 3600, CPUs: 1024})
				}
			}
		})
	}
}

// BenchmarkIncrementalPass models the persistent-profile steady state at
// n running jobs: each pass advances the horizon, credits one early
// completion, records one start and answers two planning queries — no
// rebuild anywhere. Compare with BenchmarkReplanPass, which pays the
// bulk load on every pass: the per-pass cost here must be independent of
// n up to the O(log n) query descents and the amortized fold/merge.
func BenchmarkIncrementalPass(b *testing.B) {
	for _, n := range []int{1_000, 4_000, 16_000} {
		b.Run(fmt.Sprintf("running=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(11))
			const total = 1 << 20
			type job struct {
				cpus int
				end  float64
			}
			rels := make([]Release, n)
			live := make([]job, 0, n+1)
			t := 0.0
			for i := range rels {
				t += 1 + r.Float64()*10
				rels[i] = Release{Time: t, CPUs: 1 + r.Intn(64)}
				live = append(live, job{cpus: rels[i].CPUs, end: rels[i].Time})
			}
			dur := t // every new job outlives all current ends, keeping the ring sorted
			p := New(total)
			p.StartEpoch(total, 0, rels)
			now := 0.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := live[0]
				live = live[1:]
				now = done.end - 0.5
				p.BeginPass(now)
				p.Vacate(done.cpus, now, done.end)
				started := job{cpus: 1 + r.Intn(64), end: now + dur}
				p.Occupy(started.cpus, now, started.end)
				live = append(live, started)
				p.EarliestStart(1024, 3600, now)
				p.EarliestStart(64, 36000, now)
			}
		})
	}
}

// BenchmarkIncrementalPassResv isolates the reservation-tier cost the
// conservative variant adds on top of the base skyline: each pass keeps
// the usual completion/start churn, then invalidates half the planned
// queue (TruncateReservations), replaces it with fresh placements at
// their earliest starts, and answers backfill-style probes through the
// reservation overlay. The indexed mode runs the chunked reservation
// index; the flat mode pins the PR 6-8 slice tiers for comparison. As
// with BenchmarkIncrementalPass, per-pass cost must stay independent of
// the running-set size n up to logarithmic factors.
func BenchmarkIncrementalPassResv(b *testing.B) {
	const queue = 64
	for _, n := range []int{1_000, 4_000, 16_000} {
		for _, mode := range []struct {
			name string
			flat bool
		}{{"indexed", false}, {"flat", true}} {
			b.Run(fmt.Sprintf("running=%d/%s", n, mode.name), func(b *testing.B) {
				r := rand.New(rand.NewSource(11))
				const total = 1 << 20
				type job struct {
					cpus int
					end  float64
				}
				rels := make([]Release, n)
				live := make([]job, 0, n+1)
				t := 0.0
				for i := range rels {
					t += 1 + r.Float64()*10
					rels[i] = Release{Time: t, CPUs: 1 + r.Intn(64)}
					live = append(live, job{cpus: rels[i].CPUs, end: rels[i].Time})
				}
				dur := t
				p := New(total)
				p.FlatReservations(mode.flat)
				p.StartEpoch(total, 0, rels)
				now := 0.0
				for k := 0; k < queue; k++ {
					st := p.EarliestStart(256, 3600, now)
					p.AddReservation(Entry{Start: st, End: st + 3600, CPUs: 256})
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					done := live[0]
					live = live[1:]
					now = done.end - 0.5
					p.BeginPass(now)
					p.Vacate(done.cpus, now, done.end)
					started := job{cpus: 1 + r.Intn(64), end: now + dur}
					p.Occupy(started.cpus, now, started.end)
					live = append(live, started)
					p.TruncateReservations(queue / 2)
					for k := p.Reservations(); k < queue; k++ {
						st := p.EarliestStart(256, 3600, now)
						p.AddReservation(Entry{Start: st, End: st + 3600, CPUs: 256})
					}
					p.EarliestStart(1024, 7200, now)
					p.CanPlace(64, now, 600)
				}
			})
		}
	}
}

// BenchmarkCanPlace measures the backfill feasibility check.
func BenchmarkCanPlace(b *testing.B) {
	p := benchProfile(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.CanPlace(64, float64(i%100000), 3600)
	}
}
