package profile

import (
	"math/rand"
	"testing"
)

func benchProfile(entries int) *Profile {
	r := rand.New(rand.NewSource(7))
	p := New(1024)
	for i := 0; i < entries; i++ {
		s := r.Float64() * 1e5
		p.Add(Entry{Start: s, End: s + 1 + r.Float64()*1e4, CPUs: 1 + r.Intn(512)})
	}
	return p
}

// BenchmarkEarliestStart measures the planning query driving conservative
// and flexible backfilling.
func BenchmarkEarliestStart(b *testing.B) {
	p := benchProfile(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EarliestStart(64, 3600, float64(i%100000))
	}
}

// BenchmarkCanPlace measures the backfill feasibility check.
func BenchmarkCanPlace(b *testing.B) {
	p := benchProfile(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.CanPlace(64, float64(i%100000), 3600)
	}
}
