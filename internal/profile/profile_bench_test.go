package profile

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchProfile(entries int) *Profile {
	r := rand.New(rand.NewSource(7))
	p := New(1024)
	for i := 0; i < entries; i++ {
		s := r.Float64() * 1e5
		p.Add(Entry{Start: s, End: s + 1 + r.Float64()*1e4, CPUs: 1 + r.Intn(512)})
	}
	return p
}

// BenchmarkEarliestStart measures the planning query driving conservative
// and flexible backfilling.
func BenchmarkEarliestStart(b *testing.B) {
	p := benchProfile(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EarliestStart(64, 3600, float64(i%100000))
	}
}

// BenchmarkReplanPass models one conservative replanning pass at scale:
// bulk-load n running-job releases, then interleave reservation Adds with
// EarliestStart queries for a queue of 256 jobs. The seed implementation
// insertion-sorted every delta (O(n) memmoves per Add, O(n²) per pass);
// with the bulk loader and the deferred-merge pending tier the per-pass
// time must grow near-linearly in n — watch ns/op roughly 4× per 4× n.
func BenchmarkReplanPass(b *testing.B) {
	for _, n := range []int{1_000, 4_000, 16_000} {
		b.Run(fmt.Sprintf("running=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(11))
			rels := make([]Release, n)
			t := 0.0
			for i := range rels {
				t += r.Float64() * 10
				rels[i] = Release{Time: 1 + t, CPUs: 1 + r.Intn(64)}
			}
			const total = 1 << 20
			p := New(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.LoadReleases(total, 0, rels)
				for k := 0; k < 256; k++ {
					st := p.EarliestStart(1024, 3600, 0)
					p.Add(Entry{Start: st, End: st + 3600, CPUs: 1024})
				}
			}
		})
	}
}

// BenchmarkCanPlace measures the backfill feasibility check.
func BenchmarkCanPlace(b *testing.B) {
	p := benchProfile(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.CanPlace(64, float64(i%100000), 3600)
	}
}
