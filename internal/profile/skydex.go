package profile

import "sort"

// The skyline chunk index (skyDex) holds the incremental base tier: the
// usage deltas of running-job occupancies and completion credits, kept
// totally ordered and mutation-friendly. The flat-tier design it
// replaces (append-only pending buffer, periodic O(n) merge into a
// prefix-summed main slice, O(n) skyline-tree rebuild per merge) made
// every mutation cheap but charged queries for it twice: each
// EarliestStart walked the whole live pending buffer alongside the
// reservation overlay, and each merge re-sorted, re-summed and re-built
// structures proportional to the running set. On replanning-heavy runs
// those two costs dominated the scheduler's hot path.
//
// The skyDex is a directory of small sorted chunks (the relindex.go
// idiom) where each chunk carries its in-chunk inclusive prefix sums and
// their min/max. A mutation binary-searches the directory, edits one
// chunk and re-aggregates it — O(log chunks + chunk). Equal-time deltas
// coalesce and cancel on contact (an occupancy end and its completion
// credit annihilate immediately instead of waiting for a merge), so the
// live size tracks the running set with no deferred compaction. The
// EarliestStart sweep advances a (chunk, offset, prefix) cursor and uses
// the per-chunk prefix min/max to skip whole chunks that provably
// contain no feasibility crossing, scanning inside a chunk only where a
// crossing or an overlay boundary actually lands.
//
// The flat tiers survive behind Profile.FlatReservations as the
// differentially-tested reference.
const (
	// skyChunkMax is the split threshold: a chunk reaching this many
	// deltas is halved.
	skyChunkMax = 256
	// skyChunkMin is the merge threshold: a chunk draining below it is
	// folded into a neighbor when the pair fits.
	skyChunkMin = skyChunkMax / 8
	// skyChunkFill is the target fill of bulk-loaded chunks.
	skyChunkFill = skyChunkMax / 2
	// skyChunkStale caps how many conservative extrema updates a chunk
	// takes before its exact extrema are recomputed (see skyChunk.shift).
	skyChunkStale = 16
)

// skyChunk is one directory entry: a sorted run of deltas with its
// inclusive prefix sums and their extrema. pre[j] is the sum of
// ds[:j+1]; minPre/maxPre bound min/max over pre (exactly after a
// rebuild, conservatively — never tighter than the truth — between
// them), so a chunk entered with absolute prefix P can be skipped by a
// crossing search whenever P+minPre..P+maxPre stays on one side of the
// level.
type skyChunk struct {
	ds     []delta
	pre    []int
	minPre int
	maxPre int
	stale  int // conservative extrema updates since the last exact rebuild
}

// sum returns the chunk's total delta.
func (c *skyChunk) sum() int { return c.pre[len(c.pre)-1] }

// reagg recomputes pre[from:] and the exact extrema after ds[from:]
// changed.
func (c *skyChunk) reagg(from int) {
	run := 0
	if from > 0 {
		run = c.pre[from-1]
	}
	for j := from; j < len(c.ds); j++ {
		run += c.ds[j].d
		c.pre[j] = run
	}
	mn, mx := c.pre[0], c.pre[0]
	for _, v := range c.pre[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	c.minPre, c.maxPre = mn, mx
	c.stale = 0
}

// shift adds dv to pre[k:] — the tail update of a point edit — and
// loosens the extrema conservatively instead of rescanning the whole
// chunk: a one-sided widening by dv plus covering pre[k] itself can
// never claim a tighter range than the truth, which is all a crossing
// search needs to skip safely. After skyChunkStale loose updates the
// exact extrema are recomputed, so the drift (and the spurious in-chunk
// scans it can cause) stays bounded.
func (c *skyChunk) shift(k, dv int) {
	for j := k; j < len(c.pre); j++ {
		c.pre[j] += dv
	}
	c.stale++
	if c.stale >= skyChunkStale {
		c.reagg(len(c.ds))
		return
	}
	if dv > 0 {
		c.maxPre += dv
	} else {
		c.minPre += dv
	}
	if k < len(c.pre) {
		if c.pre[k] > c.maxPre {
			c.maxPre = c.pre[k]
		}
		if c.pre[k] < c.minPre {
			c.minPre = c.pre[k]
		}
	}
}

// skyDex is the chunked ordered skyline index over base usage deltas.
// Every chunk is non-empty with strictly increasing times (equal-time
// deltas coalesce on insert) and the chunks' key ranges are disjoint and
// ascending. The zero value is an empty index.
type skyDex struct {
	chunks []skyChunk
	size   int
	spareD [][]delta
	spareP [][]int
}

// len returns the number of live deltas.
func (d *skyDex) len() int { return d.size }

// reset empties the index, recycling chunk backings.
func (d *skyDex) reset() {
	for i := range d.chunks {
		d.spareD = append(d.spareD, d.chunks[i].ds[:0])
		d.spareP = append(d.spareP, d.chunks[i].pre[:0])
		d.chunks[i] = skyChunk{}
	}
	d.chunks = d.chunks[:0]
	d.size = 0
}

// newChunk pops recycled backings or allocates fresh ones.
func (d *skyDex) newChunk() ([]delta, []int) {
	var ds []delta
	var pre []int
	if n := len(d.spareD); n > 0 {
		ds = d.spareD[n-1]
		d.spareD[n-1] = nil
		d.spareD = d.spareD[:n-1]
	} else {
		ds = make([]delta, 0, skyChunkMax)
	}
	if n := len(d.spareP); n > 0 {
		pre = d.spareP[n-1]
		d.spareP[n-1] = nil
		d.spareP = d.spareP[:n-1]
	} else {
		pre = make([]int, 0, skyChunkMax)
	}
	return ds, pre
}

// load bulk-initializes the index from a time-sorted delta slice,
// merging equal-time runs and dropping zero nets on the way in — the
// release schedule may hold several jobs ending at the same instant,
// and every chunk must keep strictly increasing keys (cross evaluates
// per-entry prefixes, so an intermediate prefix inside an equal-time
// group would masquerade as a zero-width feasibility transition). The
// slice is not retained.
func (d *skyDex) load(ds []delta) {
	d.reset()
	for i := 0; i < len(ds); {
		t := ds[i].t
		dv := 0
		for ; i < len(ds) && ds[i].t == t; i++ {
			dv += ds[i].d
		}
		if dv == 0 {
			continue
		}
		if n := len(d.chunks); n == 0 || len(d.chunks[n-1].ds) >= skyChunkFill {
			cds, cpre := d.newChunk()
			d.chunks = append(d.chunks, skyChunk{ds: cds[:0], pre: cpre[:0]})
		}
		c := &d.chunks[len(d.chunks)-1]
		c.ds = append(c.ds, delta{t: t, d: dv})
		c.pre = append(c.pre, 0)
		d.size++
	}
	for i := range d.chunks {
		d.chunks[i].reagg(0)
	}
}

// findChunk returns the index of the first chunk whose last key is at or
// after t, or len(chunks).
func (d *skyDex) findChunk(t float64) int {
	return sort.Search(len(d.chunks), func(i int) bool {
		ds := d.chunks[i].ds
		return ds[len(ds)-1].t >= t
	})
}

// insert applies a delta of dv at time t, coalescing with an existing
// delta at exactly t (and removing the entry when the result is zero —
// this is how an occupancy end and its completion credit annihilate).
func (d *skyDex) insert(t float64, dv int) {
	if dv == 0 {
		return
	}
	if len(d.chunks) == 0 {
		cds, cpre := d.newChunk()
		c := skyChunk{ds: append(cds, delta{t: t, d: dv}), pre: append(cpre[:0], dv)}
		c.minPre, c.maxPre = dv, dv
		d.chunks = append(d.chunks, c)
		d.size = 1
		return
	}
	ci := d.findChunk(t)
	if ci == len(d.chunks) {
		ci--
	}
	c := &d.chunks[ci]
	k := sort.Search(len(c.ds), func(i int) bool { return c.ds[i].t >= t })
	if k < len(c.ds) && c.ds[k].t == t {
		c.ds[k].d += dv
		if c.ds[k].d == 0 {
			copy(c.ds[k:], c.ds[k+1:])
			c.ds = c.ds[:len(c.ds)-1]
			copy(c.pre[k:], c.pre[k+1:])
			c.pre = c.pre[:len(c.pre)-1]
			d.size--
			switch {
			case len(c.ds) == 0:
				d.dropChunk(ci)
			case len(c.ds) < skyChunkMin:
				c.shift(k, dv)
				d.mergeAt(ci)
			default:
				c.shift(k, dv)
			}
			return
		}
		c.shift(k, dv)
		return
	}
	c.ds = append(c.ds, delta{})
	copy(c.ds[k+1:], c.ds[k:])
	c.ds[k] = delta{t: t, d: dv}
	c.pre = append(c.pre, 0)
	copy(c.pre[k+1:], c.pre[k:])
	if k > 0 {
		c.pre[k] = c.pre[k-1]
	} else {
		c.pre[k] = 0
	}
	c.shift(k, dv)
	d.size++
	if len(c.ds) >= skyChunkMax {
		d.split(ci)
	}
}

// split halves the chunk at ci.
func (d *skyDex) split(ci int) {
	c := &d.chunks[ci]
	mid := len(c.ds) / 2
	rds, rpre := d.newChunk()
	rds = append(rds, c.ds[mid:]...)
	rpre = rpre[:0]
	for range rds {
		rpre = append(rpre, 0)
	}
	right := skyChunk{ds: rds, pre: rpre}
	right.reagg(0)
	c.ds = c.ds[:mid]
	c.pre = c.pre[:mid]
	c.reagg(0)
	d.chunks = append(d.chunks, skyChunk{})
	copy(d.chunks[ci+2:], d.chunks[ci+1:])
	d.chunks[ci+1] = right
}

// dropChunk removes the (empty) directory entry at ci.
func (d *skyDex) dropChunk(ci int) {
	d.spareD = append(d.spareD, d.chunks[ci].ds[:0])
	d.spareP = append(d.spareP, d.chunks[ci].pre[:0])
	copy(d.chunks[ci:], d.chunks[ci+1:])
	d.chunks[len(d.chunks)-1] = skyChunk{}
	d.chunks = d.chunks[:len(d.chunks)-1]
}

// mergeAt folds the underfull chunk at ci into its smaller neighbor when
// the combined chunk stays clear of the split threshold.
func (d *skyDex) mergeAt(ci int) {
	into := -1
	if ci > 0 {
		into = ci - 1
	}
	if ci+1 < len(d.chunks) && (into < 0 || len(d.chunks[ci+1].ds) < len(d.chunks[into].ds)) {
		into = ci + 1
	}
	if into < 0 || len(d.chunks[ci].ds)+len(d.chunks[into].ds) > 3*skyChunkMax/4 {
		return
	}
	lo, hi := into, ci
	if lo > hi {
		lo, hi = hi, lo
	}
	c := &d.chunks[lo]
	c.ds = append(c.ds, d.chunks[hi].ds...)
	for range d.chunks[hi].ds {
		c.pre = append(c.pre, 0)
	}
	c.reagg(0)
	d.dropChunk(hi)
}

// foldTo removes every delta with time at or before h — indistinguishable
// to queries past the horizon — and returns their sum, which the caller
// folds into its base offset. Whole expired chunks drop in O(1) each;
// only the boundary chunk is edited.
func (d *skyDex) foldTo(h float64) int {
	folded := 0
	for len(d.chunks) > 0 {
		c := &d.chunks[0]
		if c.ds[len(c.ds)-1].t <= h {
			folded += c.sum()
			d.size -= len(c.ds)
			d.dropChunk(0)
			continue
		}
		j := sort.Search(len(c.ds), func(i int) bool { return c.ds[i].t > h })
		if j > 0 {
			folded += c.pre[j-1]
			copy(c.ds, c.ds[j:])
			c.ds = c.ds[:len(c.ds)-j]
			c.pre = c.pre[:len(c.pre)-j]
			c.reagg(0)
			d.size -= j
			if len(c.ds) < skyChunkMin {
				d.mergeAt(0)
			}
		}
		break
	}
	return folded
}

// seek positions a cursor at the first delta with time strictly after
// `from`, returning its (chunk, offset) position and the sum of every
// delta at or before `from`.
func (d *skyDex) seek(from float64) (ci, k, sum int) {
	for ci < len(d.chunks) {
		c := &d.chunks[ci]
		if c.ds[len(c.ds)-1].t <= from {
			sum += c.sum()
			ci++
			continue
		}
		k = sort.Search(len(c.ds), func(i int) bool { return c.ds[i].t > from })
		if k > 0 {
			sum += c.pre[k-1]
		}
		return ci, k, sum
	}
	return ci, 0, sum
}

// sumAt returns the sum of every delta at or before t — the point query
// behind UsedAt.
func (d *skyDex) sumAt(t float64) int {
	_, _, sum := d.seek(t)
	return sum
}

// cross scans forward from position (ci, k) — entered with absolute
// prefix P, the sum of every delta strictly before it — for the first
// delta with time before tLimit whose inclusive prefix crosses level L
// (above: prefix > L; otherwise: prefix <= L). Whole chunks whose prefix
// extrema exclude a crossing are skipped in O(1); a chunk is scanned
// only when its aggregates admit a crossing or tLimit lands inside it
// (the aggregate test is conservative for mid-chunk entries, so a scan
// may come up empty — the cursor still advances, so the total scan work
// of a sweep is bounded by the deltas it traverses).
//
// On a hit it returns the crossing's time and inclusive prefix with the
// cursor advanced one past it. Otherwise found is false and the cursor
// lands on the first delta with time at or after tLimit (or the end),
// with P the prefix before it.
func (d *skyDex) cross(ci, k, P, L int, above bool, tLimit float64) (nci, nk, nP int, t float64, pre int, found bool) {
	for ci < len(d.chunks) {
		c := &d.chunks[ci]
		n := len(c.ds)
		base := P
		if k > 0 {
			base = P - c.pre[k-1]
		}
		bounded := c.ds[n-1].t >= tLimit
		hit := (above && base+c.maxPre > L) || (!above && base+c.minPre <= L)
		if !hit && !bounded {
			P = base + c.pre[n-1]
			ci, k = ci+1, 0
			continue
		}
		if !hit {
			// tLimit lands in this chunk and no crossing precedes it.
			j := k + sort.Search(n-k, func(i int) bool { return c.ds[k+i].t >= tLimit })
			if j > 0 {
				P = base + c.pre[j-1]
			} else {
				P = base
			}
			return ci, j, P, 0, 0, false
		}
		for j := k; j < n; j++ {
			if c.ds[j].t >= tLimit {
				if j > 0 {
					P = base + c.pre[j-1]
				} else {
					P = base
				}
				return ci, j, P, 0, 0, false
			}
			ip := base + c.pre[j]
			if (above && ip > L) || (!above && ip <= L) {
				if j+1 == n {
					return ci + 1, 0, ip, c.ds[j].t, ip, true
				}
				return ci, j + 1, ip, c.ds[j].t, ip, true
			}
		}
		P = base + c.pre[n-1]
		ci, k = ci+1, 0
	}
	return ci, 0, P, 0, 0, false
}

// each calls fn on every delta in time order until fn returns false —
// the ordered traversal for the differential reference and tests.
func (d *skyDex) each(fn func(delta) bool) {
	for i := range d.chunks {
		for _, dd := range d.chunks[i].ds {
			if !fn(dd) {
				return
			}
		}
	}
}
