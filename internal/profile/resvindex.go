package profile

import "sort"

// The chunked ordered reservation index replaces the flat reservation
// tier pair (merged slice + lazily re-sorted pending slice) on the
// replanning hot path. A conservative pass places one reservation per
// queued job and queries EarliestStart between placements; with the flat
// tiers every out-of-order placement forced the next query to re-sort
// the whole pending slice, and every flush re-merged the merged tier —
// O(k²·log k) sorting work per pass over k reservations. The index keeps
// the reservation deltas totally ordered in a directory of small sorted
// chunks (the relindex.go idiom): an insert or removal binary-searches
// the directory, then moves at most one chunk's worth of entries, and a
// per-chunk running sum makes the usage-at-`from` prefix a directory
// walk instead of a binary search over a freshly merged slice. The
// EarliestStart overlay walks the chunks in time order through the same
// cursor that merges the pending tier.
//
// The flat tiers survive behind Profile.FlatReservations (wired to
// sched.Compat.FlatReservations) as the differentially-tested reference.
const (
	// resvChunkMax is the split threshold: a chunk reaching this many
	// deltas is halved. Reservation deltas are 16 bytes, so a mutation
	// memmoves at most a few cache lines.
	resvChunkMax = 256
	// resvChunkMin is the merge threshold: a chunk draining below it is
	// folded into a neighbor when the pair fits, bounding directory
	// growth under truncate-heavy churn.
	resvChunkMin = resvChunkMax / 8
	// resvChunkFill is the target fill of bulk-loaded chunks, leaving
	// headroom so a load followed by inserts doesn't split immediately.
	resvChunkFill = resvChunkMax / 2
)

// resvIndex is an ordered index over reservation usage deltas, keyed by
// time (duplicates allowed — equal-time deltas are interchangeable to
// every query): a directory of sorted chunks whose key ranges are
// disjoint and ascending, each carrying the running sum of its deltas.
// The zero value is an empty index.
type resvIndex struct {
	chunks [][]delta // each non-empty, sorted by t, < resvChunkMax entries
	sums   []int     // sums[i] = Σ d over chunks[i]
	size   int
	spare  [][]delta // recycled chunk backings
}

// len returns the number of indexed deltas.
func (ix *resvIndex) len() int { return ix.size }

// reset empties the index, recycling every chunk backing.
func (ix *resvIndex) reset() {
	for i, ch := range ix.chunks {
		ix.spare = append(ix.spare, ch[:0])
		ix.chunks[i] = nil
	}
	ix.chunks = ix.chunks[:0]
	ix.sums = ix.sums[:0]
	ix.size = 0
}

// newChunk pops a recycled chunk backing or allocates a fresh one.
func (ix *resvIndex) newChunk() []delta {
	if n := len(ix.spare); n > 0 {
		ch := ix.spare[n-1]
		ix.spare[n-1] = nil
		ix.spare = ix.spare[:n-1]
		return ch
	}
	return make([]delta, 0, resvChunkMax)
}

// findChunk returns the index of the first chunk whose last key is at or
// after t — the first chunk that may hold a delta at t — or len(chunks)
// when t is beyond every chunk.
func (ix *resvIndex) findChunk(t float64) int {
	return sort.Search(len(ix.chunks), func(i int) bool {
		ch := ix.chunks[i]
		return ch[len(ch)-1].t >= t
	})
}

// insert adds d, keeping the chunk holding its position sorted and
// splitting it when it reaches the capacity threshold. Equal-time deltas
// insert after their peers (minimal movement; order among them is
// irrelevant to queries and removal).
func (ix *resvIndex) insert(d delta) {
	if len(ix.chunks) == 0 {
		ix.chunks = append(ix.chunks, append(ix.newChunk(), d))
		ix.sums = append(ix.sums, d.d)
		ix.size = 1
		return
	}
	ci := ix.findChunk(d.t)
	if ci == len(ix.chunks) {
		ci-- // beyond every key: extend the last chunk
	}
	ch := ix.chunks[ci]
	k := sort.Search(len(ch), func(i int) bool { return ch[i].t > d.t })
	ch = append(ch, delta{})
	copy(ch[k+1:], ch[k:])
	ch[k] = d
	ix.chunks[ci] = ch
	ix.sums[ci] += d.d
	ix.size++
	if len(ch) >= resvChunkMax {
		ix.split(ci)
	}
}

// split halves the chunk at ci into two directory entries.
func (ix *resvIndex) split(ci int) {
	ch := ix.chunks[ci]
	mid := len(ch) / 2
	right := append(ix.newChunk(), ch[mid:]...)
	rsum := 0
	for _, d := range right {
		rsum += d.d
	}
	ix.chunks = append(ix.chunks, nil)
	copy(ix.chunks[ci+2:], ix.chunks[ci+1:])
	ix.chunks[ci] = ch[:mid]
	ix.chunks[ci+1] = right
	ix.sums = append(ix.sums, 0)
	copy(ix.sums[ci+2:], ix.sums[ci+1:])
	ix.sums[ci+1] = rsum
	ix.sums[ci] -= rsum
}

// removeOne deletes one delta matching (t, dv), reporting whether one was
// present. Equal-time runs may span chunk boundaries, so the scan walks
// forward from the first candidate chunk until the key is passed.
func (ix *resvIndex) removeOne(t float64, dv int) bool {
	for ci := ix.findChunk(t); ci < len(ix.chunks) && ix.chunks[ci][0].t <= t; ci++ {
		ch := ix.chunks[ci]
		for k := sort.Search(len(ch), func(i int) bool { return ch[i].t >= t }); k < len(ch) && ch[k].t == t; k++ {
			if ch[k].d != dv {
				continue
			}
			copy(ch[k:], ch[k+1:])
			ch = ch[:len(ch)-1]
			ix.chunks[ci] = ch
			ix.sums[ci] -= dv
			ix.size--
			switch {
			case len(ch) == 0:
				ix.dropChunk(ci)
			case len(ch) < resvChunkMin:
				ix.mergeAt(ci)
			}
			return true
		}
	}
	return false
}

// dropChunk removes the (empty) directory entry at ci.
func (ix *resvIndex) dropChunk(ci int) {
	ix.spare = append(ix.spare, ix.chunks[ci][:0])
	copy(ix.chunks[ci:], ix.chunks[ci+1:])
	ix.chunks[len(ix.chunks)-1] = nil
	ix.chunks = ix.chunks[:len(ix.chunks)-1]
	copy(ix.sums[ci:], ix.sums[ci+1:])
	ix.sums = ix.sums[:len(ix.sums)-1]
}

// mergeAt folds the underfull chunk at ci into its smaller neighbor when
// the combined chunk stays clear of the split threshold; a small chunk
// next to two near-full neighbors is left alone (its neighbors' fullness
// bounds the directory size).
func (ix *resvIndex) mergeAt(ci int) {
	ch := ix.chunks[ci]
	into := -1
	if ci > 0 {
		into = ci - 1
	}
	if ci+1 < len(ix.chunks) && (into < 0 || len(ix.chunks[ci+1]) < len(ix.chunks[into])) {
		into = ci + 1
	}
	if into < 0 || len(ch)+len(ix.chunks[into]) > 3*resvChunkMax/4 {
		return
	}
	ix.sums[into] += ix.sums[ci]
	ix.sums[ci] = 0
	if into == ci-1 {
		ix.chunks[into] = append(ix.chunks[into], ch...)
		ix.chunks[ci] = ch[:0]
	} else {
		// Prepend ch to the right neighbor, reusing ch's backing.
		merged := append(ch, ix.chunks[into]...)
		ix.chunks[ci] = ix.chunks[into][:0]
		ix.chunks[into] = merged
	}
	ix.dropChunk(ci)
}

// load bulk-initializes the index from a time-sorted delta slice, filling
// chunks to the target fill so follow-up inserts have headroom. The slice
// is not retained.
func (ix *resvIndex) load(ds []delta) {
	ix.reset()
	for len(ds) > 0 {
		n := resvChunkFill
		if len(ds) < n {
			n = len(ds)
		}
		sum := 0
		for _, d := range ds[:n] {
			sum += d.d
		}
		ix.chunks = append(ix.chunks, append(ix.newChunk(), ds[:n]...))
		ix.sums = append(ix.sums, sum)
		ix.size += n
		ds = ds[n:]
	}
}

// seek positions a cursor at the first delta with time strictly after
// `from`, returning its (chunk, offset) position and the sum of every
// delta at or before `from` — the reservation tier's usage contribution
// at the query start. Whole chunks before the boundary contribute their
// precomputed sums; only the boundary chunk is scanned.
func (ix *resvIndex) seek(from float64) (ci, k, sum int) {
	for ci < len(ix.chunks) {
		ch := ix.chunks[ci]
		if ch[len(ch)-1].t <= from {
			sum += ix.sums[ci]
			ci++
			continue
		}
		k = sort.Search(len(ch), func(i int) bool { return ch[i].t > from })
		for _, d := range ch[:k] {
			sum += d.d
		}
		return ci, k, sum
	}
	return ci, 0, sum
}

// sumAt returns the sum of every delta at or before t — the point query
// behind UsedAt.
func (ix *resvIndex) sumAt(t float64) int {
	_, _, sum := ix.seek(t)
	return sum
}

// each calls fn on every delta in time order until fn returns false.
// Hot-path consumers iterate the chunks through ovCursor; this is the
// ordered traversal for tests and oracles.
func (ix *resvIndex) each(fn func(delta) bool) {
	for _, ch := range ix.chunks {
		for _, d := range ch {
			if !fn(d) {
				return
			}
		}
	}
}
