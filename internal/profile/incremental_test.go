package profile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// incJob is one simulated running job for the differential driver: cpus
// busy until end (the End its occupancy was recorded with).
type incJob struct {
	cpus int
	end  float64
}

// TestQuickIncrementalMatchesFreshOracle is the differential regression
// for the persistent profile: it drives thousands of mixed passes —
// completions (Vacate credits), starts (Occupy), reservation placements
// and changed-prefix truncations — through one incremental profile and,
// every pass, asserts that UsedAt and EarliestStart answer exactly like a
// profile rebuilt from scratch out of the live occupancies and the
// reservation journal. Every EarliestStart is also evaluated twice, with
// the indexed sweep (chunk-skipping by default, skyline-tree descent in
// flat compat mode) and with the linear merge sweep, which must agree to
// the bit. Both incremental tier layouts are driven. Integer times force
// equal-timestamp collisions, the fold/flush/truncate paths all trigger
// at these sizes.
func TestQuickIncrementalMatchesFreshOracle(t *testing.T) {
	passes := 1500
	if testing.Short() {
		passes = 200
	}
	f := func(seed int64, flat bool) bool {
		r := rand.New(rand.NewSource(seed))
		total := 8 + r.Intn(56)
		now := float64(r.Intn(10))

		var running []incJob
		var resvs []Entry // mirrors the profile's reservation journal
		p := New(total)
		p.FlatReservations(flat)

		startEpoch := func() {
			rels := make([]Release, len(running))
			for i, j := range running {
				rels[i] = Release{Time: j.end, CPUs: j.cpus}
			}
			sortReleases(rels)
			p.StartEpoch(total, now, rels)
			resvs = resvs[:0]
		}
		// Seed the epoch with a few running jobs.
		for i := 0; i < r.Intn(8); i++ {
			running = append(running, incJob{cpus: 1 + r.Intn(total/2), end: now + float64(1+r.Intn(200))})
		}
		startEpoch()

		oracle := New(total)
		check := func() bool {
			// Fresh oracle: live occupancies clipped to [now, ∞) plus the
			// journaled reservations, loaded into a plain profile.
			oracle.Reset(total)
			for _, j := range running {
				oracle.Add(Entry{Start: now, End: j.end, CPUs: j.cpus})
			}
			for _, e := range resvs {
				oracle.Add(e)
			}
			probes := []float64{now, now + 0.5, now + float64(r.Intn(300))}
			for _, j := range running {
				probes = append(probes, j.end)
			}
			for _, e := range resvs {
				if e.Start >= now {
					probes = append(probes, e.Start)
				}
				if e.End >= now {
					probes = append(probes, e.End)
				}
			}
			for _, q := range probes {
				if q < now {
					continue
				}
				if p.UsedAt(q) != oracle.UsedAt(q) {
					t.Logf("seed %d: UsedAt(%v) = %d, oracle %d", seed, q, p.UsedAt(q), oracle.UsedAt(q))
					return false
				}
			}
			for trial := 0; trial < 4; trial++ {
				cpus := 1 + r.Intn(total)
				dur := float64(r.Intn(120))
				from := now
				if trial%2 == 1 {
					from = now + float64(r.Intn(150))
				}
				want := oracle.EarliestStart(cpus, dur, from)
				got := p.EarliestStart(cpus, dur, from)
				p.noTree = true
				lin := p.EarliestStart(cpus, dur, from)
				p.noTree = false
				if got != want || lin != want {
					t.Logf("seed %d flat=%v: EarliestStart(%d, %v, %v) indexed=%v linear=%v oracle=%v (main=%d pend=%d dex=%d resv=%d+%d ridx=%d)",
						seed, flat, cpus, dur, from, got, lin, want,
						len(p.deltas), len(p.pending)-p.pendLo, p.dex.len(),
						len(p.resv), len(p.resvPend), p.ridx.len())
					return false
				}
				if p.CanPlace(cpus, from, dur) != oracle.CanPlace(cpus, from, dur) {
					t.Logf("seed %d: CanPlace(%d, %v, %v) diverged", seed, cpus, from, dur)
					return false
				}
			}
			return true
		}

		for pass := 0; pass < passes; pass++ {
			now += float64(r.Intn(4))
			if r.Intn(40) == 0 {
				// Long idle gap: the whole base expires behind the horizon
				// (the regression that caught the flush fold aliasing the
				// merge buffer needed an emptied main tier).
				now += 500
			}
			p.BeginPass(now)
			switch r.Intn(10) {
			case 0, 1, 2: // completion: credit the planned tail
				if len(running) > 0 {
					i := r.Intn(len(running))
					j := running[i]
					p.Vacate(j.cpus, now, j.end)
					running = append(running[:i], running[i+1:]...)
				}
			case 3, 4, 5, 6: // start: new occupancy from now
				j := incJob{cpus: 1 + r.Intn(total/2), end: now + float64(1+r.Intn(200))}
				p.Occupy(j.cpus, now, j.end)
				running = append(running, j)
			case 7, 8: // reservation placed at (or past) its earliest start
				cpus := 1 + r.Intn(total)
				dur := float64(r.Intn(90))
				st := p.EarliestStart(cpus, dur, now)
				e := Entry{Start: st, End: st + dur, CPUs: cpus}
				p.AddReservation(e)
				resvs = append(resvs, e)
			default: // replan: drop a suffix of the reservations
				if n := len(resvs); n > 0 {
					keep := r.Intn(n + 1)
					p.TruncateReservations(keep)
					resvs = resvs[:keep]
				}
			}
			if p.Reservations() != len(resvs) {
				t.Logf("seed %d: journal %d, driver %d", seed, p.Reservations(), len(resvs))
				return false
			}
			if pass%7 == 0 || pass == passes-1 {
				if !check() {
					return false
				}
			}
		}
		return check()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestQuickSkylineTreeMatchesLinearSweep pins the tree descent to the
// linear reference on epochs large enough that the tree is always active,
// with overlays from all three small tiers in play. The skyline tree
// only serves the flat compat path now, so that is what it drives.
func TestQuickSkylineTreeMatchesLinearSweep(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 256 + r.Intn(1024)
		now := float64(r.Intn(5))
		n := 200 + r.Intn(400)
		rels := make([]Release, n)
		for i := range rels {
			rels[i] = Release{Time: now + float64(1+r.Intn(2000)), CPUs: 1 + r.Intn(8)}
		}
		sortReleases(rels)
		p := New(total)
		p.FlatReservations(true)
		p.StartEpoch(total, now, rels)
		if p.tree.len() == 0 {
			t.Log("tree not built on a large epoch")
			return false
		}
		for step := 0; step < 60; step++ {
			now += float64(r.Intn(3))
			p.BeginPass(now)
			switch r.Intn(3) {
			case 0:
				p.Occupy(1+r.Intn(32), now, now+float64(1+r.Intn(800)))
			case 1:
				st := now + float64(r.Intn(500))
				p.AddReservation(Entry{Start: st, End: st + float64(1+r.Intn(300)), CPUs: 1 + r.Intn(64)})
			default:
			}
			cpus := 1 + r.Intn(total)
			dur := float64(r.Intn(600))
			from := now + float64(r.Intn(100))
			tree := p.EarliestStart(cpus, dur, from)
			p.noTree = true
			lin := p.EarliestStart(cpus, dur, from)
			p.noTree = false
			if tree != lin {
				t.Logf("seed %d step %d: EarliestStart(%d, %v, %v) tree=%v linear=%v",
					seed, step, cpus, dur, from, tree, lin)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The persistent profile's live delta count must track the running and
// planned set, not the history: after thousands of start/complete cycles
// at a bounded running-set size, the base tiers stay bounded too. The
// flat compat tier folds expired history and credit pairs during merges;
// the chunked skyline index cancels credit pairs on contact, so it is
// held to a tighter bound (one delta per distinct live end, plus slack
// for same-pass stragglers ahead of a fold).
func TestIncrementalBaseStaysBounded(t *testing.T) {
	run := func(t *testing.T, flat bool, bound int) {
		const total = 1 << 12
		r := rand.New(rand.NewSource(5))
		p := New(total)
		p.FlatReservations(flat)
		now := 0.0
		p.StartEpoch(total, now, nil)
		var running []incJob
		for pass := 0; pass < 20000; pass++ {
			now += 1
			p.BeginPass(now)
			if len(running) < 64 && r.Intn(3) > 0 {
				j := incJob{cpus: 1 + r.Intn(32), end: now + float64(1+r.Intn(400))}
				p.Occupy(j.cpus, now, j.end)
				running = append(running, j)
			} else if len(running) > 0 {
				i := r.Intn(len(running))
				j := running[i]
				p.Vacate(j.cpus, now, j.end)
				running = append(running[:i], running[i+1:]...)
			}
			p.UsedAt(now) // exercise fold/flush
		}
		// Planned ends reach at most 400 ticks ahead and the running set
		// is capped at 64 jobs, so the live footprint must stay in the
		// hundreds even though 20k mutations flowed through.
		if n := p.BaseDeltas(); n > bound {
			t.Fatalf("base deltas grew to %d after 20k bounded-churn passes", n)
		}
	}
	t.Run("indexed", func(t *testing.T) { run(t, false, 64+16) })
	t.Run("flat", func(t *testing.T) { run(t, true, 4*64+2*incPendingFlush) })
}
