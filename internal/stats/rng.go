// Package stats provides the deterministic random number generation and
// probability distributions used by the synthetic workload generators.
//
// All randomness in the repository flows through *stats.RNG so that every
// simulation is reproducible from a single integer seed. The distributions
// implemented here (exponential, gamma, lognormal, Weibull, two-phase
// hyper-exponential, weighted discrete choice) are the standard building
// blocks of parallel workload models such as Lublin–Feitelson.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic source of random variates. It wraps math/rand's
// generator seeded explicitly; two RNGs built with the same seed produce
// identical streams.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Uniform returns a uniform variate in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a standard normal variate (mean 0, stddev 1).
func (r *RNG) Normal() float64 { return r.src.NormFloat64() }

// Exp returns an exponential variate with the given mean. The mean must be
// positive.
func (r *RNG) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Lognormal returns a variate whose natural logarithm is normal with the
// given location mu and scale sigma. The median of the distribution is
// exp(mu).
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Weibull returns a Weibull variate with the given shape k and scale lambda.
// shape and scale must be positive.
func (r *RNG) Weibull(shape, scale float64) float64 {
	u := r.src.Float64()
	// Guard against log(0): Float64 is in [0,1), so 1-u is in (0,1].
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Gamma returns a gamma variate with the given shape k and scale theta
// (mean k*theta), using the Marsaglia–Tsang squeeze method. Both parameters
// must be positive.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape < 1 {
		// Boost to shape+1 and correct with a power of a uniform variate.
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// HyperExp2 returns a two-phase hyper-exponential variate: with probability
// p the variate is exponential with mean1, otherwise exponential with
// mean2. Hyper-exponentials model the heavy-tailed runtimes of HPC jobs.
func (r *RNG) HyperExp2(p, mean1, mean2 float64) float64 {
	if r.src.Float64() < p {
		return r.Exp(mean1)
	}
	return r.Exp(mean2)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.src.Float64() < p }

// Zipf returns a sampler of integers in [0, n) with P(k) ∝ 1/(k+1)^s,
// s > 1. HPC centers show Zipf-like user activity: a few users submit
// most jobs.
func (r *RNG) Zipf(s float64, n int) func() int {
	z := rand.NewZipf(r.src, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// Choice draws an index in [0, len(weights)) with probability proportional
// to the weights. It panics if weights is empty or sums to a non-positive
// value.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("stats: Choice requires positive total weight")
	}
	x := r.src.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
