package stats

import (
	"math"
	"sort"
)

// Summary holds streaming first- and second-moment statistics plus extrema
// of a sequence of observations.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	// Welford's online update keeps the variance numerically stable.
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance, or 0 when fewer than two samples.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 when empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 when empty.
func (s *Summary) Max() float64 { return s.max }

// Quantile returns the q-quantile (0 <= q <= 1) of the data using the
// nearest-rank method. The input slice is not modified.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean of data, or 0 when empty.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range data {
		sum += x
	}
	return sum / float64(len(data))
}
