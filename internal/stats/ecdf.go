package stats

import "sort"

// ECDF is an empirical cumulative distribution function over a sample,
// used to compare generated workload distributions against references
// (two-sample Kolmogorov–Smirnov distance).
type ECDF struct {
	xs []float64 // sorted ascending
}

// NewECDF copies and sorts the sample.
func NewECDF(data []float64) ECDF {
	xs := make([]float64, len(data))
	copy(xs, data)
	sort.Float64s(xs)
	return ECDF{xs: xs}
}

// N returns the sample size.
func (e ECDF) N() int { return len(e.xs) }

// At returns F(x) = P(X <= x).
func (e ECDF) At(x float64) float64 {
	if len(e.xs) == 0 {
		return 0
	}
	// Number of samples <= x.
	n := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > x })
	return float64(n) / float64(len(e.xs))
}

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic
// sup_x |Fa(x) − Fb(x)|, in [0, 1]. Zero for identical samples, one for
// fully separated supports.
func KSDistance(a, b ECDF) float64 {
	if a.N() == 0 || b.N() == 0 {
		return 0
	}
	max := 0.0
	// The supremum is attained at a sample point of either distribution.
	for _, x := range a.xs {
		if d := abs(a.At(x) - b.At(x)); d > max {
			max = d
		}
	}
	for _, x := range b.xs {
		if d := abs(a.At(x) - b.At(x)); d > max {
			max = d
		}
	}
	return max
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
