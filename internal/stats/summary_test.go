package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Var()-4) > 1e-12 {
		t.Errorf("Var = %v, want 4", s.Var())
	}
	if s.StdDev() != 2 {
		t.Errorf("StdDev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Var() != 0 || s.Min() != 3.5 || s.Max() != 3.5 {
		t.Error("single-sample summary wrong")
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.5, 3}, {0.8, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if data[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileEmpty(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) should be 0")
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean([1 2 3]) != 2")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

// Property: mean lies within [min, max] and variance is non-negative.
// Inputs are clamped to physically plausible magnitudes (the simulator
// works in seconds and joules); near ±MaxFloat64 the Welford update
// overflows, which is out of scope.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e15 {
				continue
			}
			s.Add(x)
		}
		if s.N() > 0 {
			ok = s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Var() >= -1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(xs []float64, qa, qb uint8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(clean, q1) <= Quantile(clean, q2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
