package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		x := r.Uniform(3, 9)
		if x < 3 || x >= 9 {
			t.Fatalf("Uniform(3,9) = %v out of range", x)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Exp(5))
	}
	if math.Abs(s.Mean()-5) > 0.1 {
		t.Errorf("Exp(5) sample mean = %v, want ~5", s.Mean())
	}
}

func TestLognormalMedian(t *testing.T) {
	r := NewRNG(13)
	mu := 2.0
	data := make([]float64, 100000)
	for i := range data {
		data[i] = r.Lognormal(mu, 1.5)
	}
	med := Quantile(data, 0.5)
	want := math.Exp(mu)
	if math.Abs(med-want)/want > 0.1 {
		t.Errorf("lognormal median = %v, want ~%v", med, want)
	}
}

func TestWeibullMean(t *testing.T) {
	r := NewRNG(17)
	// For shape k and scale lambda, the mean is lambda*Gamma(1+1/k).
	// With k=1 the Weibull reduces to an exponential with mean lambda.
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Weibull(1, 4))
	}
	if math.Abs(s.Mean()-4) > 0.1 {
		t.Errorf("Weibull(1,4) mean = %v, want ~4", s.Mean())
	}
}

func TestGammaMeanAndVariance(t *testing.T) {
	r := NewRNG(19)
	shape, scale := 3.0, 2.0
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Gamma(shape, scale))
	}
	if math.Abs(s.Mean()-shape*scale) > 0.15 {
		t.Errorf("Gamma(3,2) mean = %v, want ~6", s.Mean())
	}
	if math.Abs(s.Var()-shape*scale*scale) > 0.6 {
		t.Errorf("Gamma(3,2) var = %v, want ~12", s.Var())
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := NewRNG(23)
	shape, scale := 0.5, 3.0
	var s Summary
	for i := 0; i < 200000; i++ {
		x := r.Gamma(shape, scale)
		if x < 0 {
			t.Fatalf("gamma variate negative: %v", x)
		}
		s.Add(x)
	}
	if math.Abs(s.Mean()-shape*scale) > 0.15 {
		t.Errorf("Gamma(0.5,3) mean = %v, want ~1.5", s.Mean())
	}
}

func TestHyperExp2Mean(t *testing.T) {
	r := NewRNG(29)
	p, m1, m2 := 0.7, 10.0, 100.0
	var s Summary
	for i := 0; i < 300000; i++ {
		s.Add(r.HyperExp2(p, m1, m2))
	}
	want := p*m1 + (1-p)*m2
	if math.Abs(s.Mean()-want)/want > 0.05 {
		t.Errorf("HyperExp2 mean = %v, want ~%v", s.Mean(), want)
	}
}

func TestChoiceDistribution(t *testing.T) {
	r := NewRNG(31)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * float64(n)
		if math.Abs(float64(counts[i])-want) > 0.05*float64(n) {
			t.Errorf("Choice bucket %d count = %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice on empty weights did not panic")
		}
	}()
	NewRNG(1).Choice(nil)
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(37)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

// Property: all distribution draws are non-negative for valid parameters.
func TestQuickNonNegativeDraws(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		r := NewRNG(seed)
		shape := 0.1 + float64(a%50)/10
		scale := 0.1 + float64(b%50)/10
		return r.Exp(scale) >= 0 &&
			r.Weibull(shape, scale) >= 0 &&
			r.Gamma(shape, scale) >= 0 &&
			r.Lognormal(0, scale) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Choice always returns a valid index.
func TestQuickChoiceIndexInRange(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		for i, v := range raw {
			weights[i] = float64(v) + 1 // ensure positive
		}
		idx := NewRNG(seed).Choice(weights)
		return idx >= 0 && idx < len(weights)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(41)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(43)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Normal())
	}
	if math.Abs(s.Mean()) > 0.02 || math.Abs(s.StdDev()-1) > 0.02 {
		t.Errorf("Normal moments = %v/%v, want ~0/1", s.Mean(), s.StdDev())
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(47)
	draw := r.Zipf(1.5, 20)
	counts := make([]int, 20)
	for i := 0; i < 50000; i++ {
		v := draw()
		if v < 0 || v >= 20 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 10 heavily.
	if counts[0] < 5*counts[10] {
		t.Errorf("Zipf not skewed: rank0=%d rank10=%d", counts[0], counts[10])
	}
}
