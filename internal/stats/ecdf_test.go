package stats

import (
	"testing"
	"testing/quick"
)

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 0.75}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.N() != 0 {
		t.Error("empty ECDF should be zero")
	}
}

func TestECDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewECDF(in)
	if in[0] != 3 {
		t.Error("input reordered")
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3, 4, 5})
	if d := KSDistance(a, a); d != 0 {
		t.Errorf("KS of identical samples = %v", d)
	}
}

func TestKSDisjointSupports(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3})
	b := NewECDF([]float64{10, 11, 12})
	if d := KSDistance(a, b); d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSKnownValue(t *testing.T) {
	// F_a jumps to 1 at 1; F_b jumps to 1 at 2: sup difference is 1 at x=1...
	// with interleaving {1,3} vs {2,4}: at x=1 |0.5-0|=0.5, x=2 |0.5-0.5|=0,
	// x=3 |1-0.5|=0.5 -> KS = 0.5.
	a := NewECDF([]float64{1, 3})
	b := NewECDF([]float64{2, 4})
	if d := KSDistance(a, b); d != 0.5 {
		t.Errorf("KS = %v, want 0.5", d)
	}
}

func TestKSSameSeedGenerators(t *testing.T) {
	// Large same-distribution samples: KS should be small.
	r1, r2 := NewRNG(1), NewRNG(2)
	var a, b []float64
	for i := 0; i < 20000; i++ {
		a = append(a, r1.Lognormal(2, 1))
		b = append(b, r2.Lognormal(2, 1))
	}
	if d := KSDistance(NewECDF(a), NewECDF(b)); d > 0.03 {
		t.Errorf("KS of same-distribution samples = %v, want < 0.03", d)
	}
	// Different distributions: clearly separated.
	var c []float64
	r3 := NewRNG(3)
	for i := 0; i < 20000; i++ {
		c = append(c, r3.Lognormal(3, 1))
	}
	if d := KSDistance(NewECDF(a), NewECDF(c)); d < 0.2 {
		t.Errorf("KS of shifted distributions = %v, want > 0.2", d)
	}
}

// Property: KS is symmetric and within [0, 1].
func TestQuickKSProperties(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		if len(ra) == 0 || len(rb) == 0 {
			return true
		}
		xa := make([]float64, len(ra))
		for i, v := range ra {
			xa[i] = float64(v)
		}
		xb := make([]float64, len(rb))
		for i, v := range rb {
			xb[i] = float64(v)
		}
		a, b := NewECDF(xa), NewECDF(xb)
		d1, d2 := KSDistance(a, b), KSDistance(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
