package metrics

import (
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

func windowCollector(t *testing.T, n int) *Collector {
	t.Helper()
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	for i := 0; i < n; i++ {
		j := &workload.Job{ID: i + 1, Submit: float64(i * 10), Runtime: 100,
			Procs: 1, ReqTime: 100, Beta: -1}
		rs, end := finishedState(j, j.Submit+float64(i), []sched.Phase{{Gear: top, Dur: 100}})
		c.JobStarted(rs, rs.Start)
		c.JobFinished(rs, end)
	}
	return c
}

func TestSummarizeJobsNilFilter(t *testing.T) {
	c := windowCollector(t, 10)
	a := c.SummarizeJobs(nil)
	if a.Jobs != 10 {
		t.Errorf("jobs = %d", a.Jobs)
	}
	// Wait of job i is i: mean 4.5, max 9.
	if math.Abs(a.AvgWait-4.5) > 1e-12 || a.MaxWait != 9 {
		t.Errorf("wait = %v/%v", a.AvgWait, a.MaxWait)
	}
}

func TestSummarizeJobsFilter(t *testing.T) {
	c := windowCollector(t, 10)
	a := c.SummarizeJobs(func(r *JobRecord) bool { return r.Job.ID%2 == 0 })
	if a.Jobs != 5 {
		t.Errorf("filtered jobs = %d, want 5", a.Jobs)
	}
}

func TestSteadyStateTrimsBothEnds(t *testing.T) {
	c := windowCollector(t, 100)
	a := c.SteadyState(0.1)
	// 10 trimmed from each end: 80..81 jobs remain depending on bounds.
	if a.Jobs < 79 || a.Jobs > 81 {
		t.Errorf("steady jobs = %d, want ~80", a.Jobs)
	}
	// The earliest and latest jobs are trimmed.
	filter := c.SteadyStateFilter(0.1)
	first, last := c.records[0], c.records[len(c.records)-1]
	if filter(first) || filter(last) {
		t.Error("steady-state filter kept the warmup/cooldown edges")
	}
	mid := c.records[len(c.records)/2]
	if !filter(mid) {
		t.Error("steady-state filter dropped the middle of the run")
	}
}

func TestSteadyStateDegenerateFrac(t *testing.T) {
	c := windowCollector(t, 10)
	for _, frac := range []float64{0, -1, 0.5, 0.9} {
		a := c.SteadyState(frac)
		if a.Jobs != 10 {
			t.Errorf("frac %v: jobs = %d, want all 10 (filter disabled)", frac, a.Jobs)
		}
	}
}

func TestSteadyStateEmptyCollector(t *testing.T) {
	c := NewCollector(dvfs.PaperPowerModel(), 600)
	if a := c.SteadyState(0.1); a.Jobs != 0 {
		t.Errorf("empty steady state = %+v", a)
	}
}
