package metrics

// Fairness analysis: backfilling variants trade mean performance against
// the tail and against per-user equity (SJF's starvation risk is the
// classic example), so the analysis tools report the standard fairness
// figures alongside the means.

// JainIndex computes Jain's fairness index of a sample:
// (Σx)² / (n·Σx²) — 1.0 when all values are equal, →1/n when one value
// dominates. Conventionally applied to per-job slowdowns.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// BSLDFairness returns Jain's index over per-job bounded slowdowns. It
// fails with ErrStreaming when the collector retained no records.
func (c *Collector) BSLDFairness() (float64, error) {
	if !c.retain {
		return 0, ErrStreaming
	}
	xs := make([]float64, len(c.records))
	for i, r := range c.records {
		xs[i] = r.BSLD
	}
	return JainIndex(xs), nil
}

// UserStats aggregates outcomes for one submitting user.
type UserStats struct {
	Jobs    int
	AvgBSLD float64
	AvgWait float64
	MaxWait float64
}

// PerUser groups records by user ID (jobs with unknown user -1 are
// aggregated under -1), supporting per-user equity analysis. It fails
// with ErrStreaming when the collector retained no records.
func (c *Collector) PerUser() (map[int]UserStats, error) {
	if !c.retain {
		return nil, ErrStreaming
	}
	sums := map[int]*UserStats{}
	for _, rec := range c.records {
		u := rec.Job.User
		s := sums[u]
		if s == nil {
			s = &UserStats{}
			sums[u] = s
		}
		s.Jobs++
		s.AvgBSLD += rec.BSLD
		s.AvgWait += rec.Wait
		if rec.Wait > s.MaxWait {
			s.MaxWait = rec.Wait
		}
	}
	out := make(map[int]UserStats, len(sums))
	for u, s := range sums {
		n := float64(s.Jobs)
		s.AvgBSLD /= n
		s.AvgWait /= n
		out[u] = *s
	}
	return out, nil
}
