package metrics

import (
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

func collectorWith(t *testing.T, jobs []struct {
	procs   int
	runtime float64
	wait    float64
	gear    dvfs.Gear
}) *Collector {
	t.Helper()
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	tm := dvfs.NewTimeModel(0.5, pm.Gears)
	for i, spec := range jobs {
		j := &workload.Job{
			ID: i + 1, Submit: 0, Runtime: spec.runtime, Procs: spec.procs,
			ReqTime: spec.runtime, Beta: -1,
		}
		dur := tm.Dilate(spec.runtime, spec.gear)
		rs, end := finishedState(j, spec.wait, []sched.Phase{{Gear: spec.gear, Dur: dur}})
		c.JobStarted(rs, spec.wait)
		c.JobFinished(rs, end)
	}
	return c
}

func TestPercentiles(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	for i := 1; i <= 100; i++ {
		j := &workload.Job{ID: i, Submit: 0, Runtime: 10, Procs: 1, ReqTime: 10, Beta: -1}
		rs, end := finishedState(j, float64(i), []sched.Phase{{Gear: top, Dur: 10}})
		c.JobStarted(rs, float64(i))
		c.JobFinished(rs, end)
	}
	p, err := c.WaitPercentiles()
	if err != nil {
		t.Fatal(err)
	}
	if p.P50 != 50 || p.P90 != 90 || p.P95 != 95 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles = %+v", p)
	}
	b, err := c.BSLDPercentiles()
	if err != nil {
		t.Fatal(err)
	}
	if b.P50 < 1 || b.Max < b.P50 {
		t.Errorf("BSLD percentiles inconsistent: %+v", b)
	}
}

func TestPercentilesEmpty(t *testing.T) {
	c := NewCollector(dvfs.PaperPowerModel(), 600)
	if p, err := c.WaitPercentiles(); err != nil || p.Max != 0 {
		t.Errorf("empty percentiles = %+v (err %v)", p, err)
	}
}

func TestEnergyDelayProduct(t *testing.T) {
	r := Results{CompEnergy: 100, AvgBSLD: 2.5}
	if got := r.EnergyDelayProduct(); got != 250 {
		t.Errorf("EDP = %v, want 250", got)
	}
}

func TestClassify(t *testing.T) {
	top := dvfs.PaperGearSet().Top()
	cases := []struct {
		procs   int
		runtime float64
		want    JobClass
	}{
		{1, 100, ShortJobs},
		{64, 100, ShortJobs},
		{1, 7200, LongSerial},
		{4, 7200, LongNarrow}, // 4*16=64 <= 128
		{8, 7200, LongNarrow}, // 8*16=128 <= 128
		{9, 7200, LongWide},   // 9*16=144 > 128
		{128, 7200, LongWide},
	}
	for _, cse := range cases {
		rec := &JobRecord{Job: &workload.Job{Procs: cse.procs, Runtime: cse.runtime, ReqTime: cse.runtime}, FinalGear: top}
		if got := classify(rec, 128, 600); got != cse.want {
			t.Errorf("classify(procs=%d, rt=%v) = %v, want %v", cse.procs, cse.runtime, got, cse.want)
		}
	}
}

func TestBreakdown(t *testing.T) {
	gears := dvfs.PaperGearSet()
	c := collectorWith(t, []struct {
		procs   int
		runtime float64
		wait    float64
		gear    dvfs.Gear
	}{
		{1, 100, 0, gears.Top()},     // short
		{1, 100, 10, gears.Lowest()}, // short, reduced
		{1, 7200, 100, gears.Top()},  // long-serial
		{4, 7200, 200, gears.Top()},  // long-narrow on 128
		{64, 7200, 300, gears.Top()}, // long-wide on 128
	})
	bd, err := c.Breakdown(128)
	if err != nil {
		t.Fatal(err)
	}
	if bd[ShortJobs].Jobs != 2 || bd[ShortJobs].Reduced != 1 {
		t.Errorf("short = %+v", bd[ShortJobs])
	}
	if bd[LongSerial].Jobs != 1 || bd[LongNarrow].Jobs != 1 || bd[LongWide].Jobs != 1 {
		t.Errorf("long classes = %+v %+v %+v", bd[LongSerial], bd[LongNarrow], bd[LongWide])
	}
	// Energy shares sum to 1 over present classes.
	sum := 0.0
	for _, cl := range Classes() {
		sum += bd[cl].EnergyShare
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("energy shares sum to %v", sum)
	}
	// The wide long job dominates energy on this mix.
	if bd[LongWide].EnergyShare < 0.8 {
		t.Errorf("wide share = %v, want dominant", bd[LongWide].EnergyShare)
	}
	if bd[LongSerial].AvgWait != 100 {
		t.Errorf("long-serial wait = %v", bd[LongSerial].AvgWait)
	}
}

func TestClassStrings(t *testing.T) {
	want := map[JobClass]string{
		ShortJobs: "short", LongSerial: "long-serial",
		LongNarrow: "long-narrow", LongWide: "long-wide",
	}
	for cl, s := range want {
		if cl.String() != s {
			t.Errorf("%d.String() = %q", cl, cl.String())
		}
	}
	if JobClass(99).String() != "unknown" {
		t.Error("unknown class string")
	}
}

// The per-job analyses must fail loudly on a streaming collector instead
// of silently reporting all-zero results (the regression PR 3 introduced
// when streaming became the runner default).
func TestAnalysesRejectStreamingCollector(t *testing.T) {
	c := NewStreamingCollector(dvfs.PaperPowerModel(), 600)
	if _, err := c.WaitPercentiles(); err != ErrStreaming {
		t.Errorf("WaitPercentiles err = %v, want ErrStreaming", err)
	}
	if _, err := c.BSLDPercentiles(); err != ErrStreaming {
		t.Errorf("BSLDPercentiles err = %v, want ErrStreaming", err)
	}
	if _, err := c.Breakdown(128); err != ErrStreaming {
		t.Errorf("Breakdown err = %v, want ErrStreaming", err)
	}
	if _, err := c.PerUser(); err != ErrStreaming {
		t.Errorf("PerUser err = %v, want ErrStreaming", err)
	}
	if _, err := c.BSLDFairness(); err != ErrStreaming {
		t.Errorf("BSLDFairness err = %v, want ErrStreaming", err)
	}
}
