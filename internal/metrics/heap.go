package metrics

import (
	"runtime"

	"repro/internal/sched"
)

// HeapWatermark rides along a simulation (runner.Spec.ExtraRecorders) and
// tracks the live-heap high-water mark relative to a baseline captured at
// construction. It is the measurement behind the streaming pipeline's
// O(running jobs) claim: a materialized million-job replay's watermark is
// dominated by the trace slice, a streamed one by the running set.
//
// Sampling reads runtime.MemStats, which stops the world briefly, so the
// watermark probes only every Every scheduling passes (default 4096 —
// fine-grained enough to catch the peak of a long replay, cheap enough
// not to distort throughput).
type HeapWatermark struct {
	// Every is the pass-sampling stride; <= 0 selects 4096.
	Every int

	baseline uint64
	passes   int
	peak     uint64 // high-water of HeapAlloc - baseline
}

var (
	_ sched.Recorder     = (*HeapWatermark)(nil)
	_ sched.PassObserver = (*HeapWatermark)(nil)
)

// NewHeapWatermark garbage-collects, captures the current live heap as
// the baseline and returns a ready watermark: the peak it reports is the
// run's own footprint, not whatever previous work left on the heap.
func NewHeapWatermark(every int) *HeapWatermark {
	w := &HeapWatermark{Every: every}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.baseline = ms.HeapAlloc
	return w
}

// JobStarted implements sched.Recorder (no-op).
func (w *HeapWatermark) JobStarted(*sched.RunState, float64) {}

// JobFinished implements sched.Recorder (no-op).
func (w *HeapWatermark) JobFinished(*sched.RunState, float64) {}

// PassEnd implements sched.PassObserver, probing the heap every Every
// passes.
func (w *HeapWatermark) PassEnd(now float64, queued, busy int) {
	w.passes++
	every := w.Every
	if every <= 0 {
		every = 4096
	}
	if w.passes%every != 0 {
		return
	}
	w.Sample()
}

// Sample probes the heap immediately; callers may invoke it around
// phases the pass stride would miss (e.g. right after trace loading).
func (w *HeapWatermark) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > w.baseline && ms.HeapAlloc-w.baseline > w.peak {
		w.peak = ms.HeapAlloc - w.baseline
	}
}

// PeakBytes returns the high-water mark of live heap above the baseline.
func (w *HeapWatermark) PeakBytes() uint64 { return w.peak }

// PeakMB returns the high-water mark in mebibytes.
func (w *HeapWatermark) PeakMB() float64 { return float64(w.peak) / (1 << 20) }
