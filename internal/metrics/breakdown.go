package metrics

import (
	"errors"
	"sort"

	"repro/internal/stats"
)

// ErrStreaming is returned by the per-job analyses (percentiles,
// breakdowns, fairness) when the collector ran in streaming mode and
// therefore retained no records. Callers that need these analyses must
// build the collector with NewCollector (runner.Spec.KeepCollector).
// Before this sentinel existed the analyses silently returned all-zero
// results on streaming collectors.
var ErrStreaming = errors.New("metrics: per-job analysis needs a retaining collector (runner.Spec.KeepCollector); this collector streams and keeps no records")

// Percentiles of the wait and BSLD distributions; mean values hide the
// tail pain that Figure 6 of the paper visualizes, so the analysis tools
// report these alongside.
type Percentiles struct {
	P50, P90, P95, P99, Max float64
}

// percentilesOf computes the standard percentile set of a sample.
func percentilesOf(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	at := func(q float64) float64 { return stats.Quantile(sorted, q) }
	return Percentiles{
		P50: at(0.50), P90: at(0.90), P95: at(0.95), P99: at(0.99),
		Max: sorted[len(sorted)-1],
	}
}

// WaitPercentiles returns the distribution of job wait times. It fails
// with ErrStreaming when the collector retained no records.
func (c *Collector) WaitPercentiles() (Percentiles, error) {
	if !c.retain {
		return Percentiles{}, ErrStreaming
	}
	xs := make([]float64, len(c.records))
	for i, r := range c.records {
		xs[i] = r.Wait
	}
	return percentilesOf(xs), nil
}

// BSLDPercentiles returns the distribution of job bounded slowdowns. It
// fails with ErrStreaming when the collector retained no records.
func (c *Collector) BSLDPercentiles() (Percentiles, error) {
	if !c.retain {
		return Percentiles{}, ErrStreaming
	}
	xs := make([]float64, len(c.records))
	for i, r := range c.records {
		xs[i] = r.BSLD
	}
	return percentilesOf(xs), nil
}

// EnergyDelayProduct returns Σ energy × avg BSLD — the standard combined
// figure of merit for power-management policies: a policy that saves
// energy by destroying slowdown scores worse than one that balances both.
func (r Results) EnergyDelayProduct() float64 {
	return r.CompEnergy * r.AvgBSLD
}

// JobClass partitions jobs the way the paper discusses them: by runtime
// against the 600 s short-job threshold, and by degree of parallelism.
type JobClass int

const (
	// ShortJobs ran under the BSLD clamp threshold.
	ShortJobs JobClass = iota
	// LongSerial are 1-processor jobs above the threshold.
	LongSerial
	// LongNarrow use at most 1/16 of the machine.
	LongNarrow
	// LongWide use more than 1/16 of the machine.
	LongWide
)

// String names the class.
func (c JobClass) String() string {
	switch c {
	case ShortJobs:
		return "short"
	case LongSerial:
		return "long-serial"
	case LongNarrow:
		return "long-narrow"
	case LongWide:
		return "long-wide"
	}
	return "unknown"
}

// Classes lists the job classes in presentation order.
func Classes() []JobClass {
	return []JobClass{ShortJobs, LongSerial, LongNarrow, LongWide}
}

// ClassStats summarizes the jobs of one class.
type ClassStats struct {
	Jobs        int
	AvgBSLD     float64
	AvgWait     float64
	Energy      float64
	EnergyShare float64 // fraction of total computational energy
	Reduced     int
}

// classify assigns a record to a class given machine size.
func classify(rec *JobRecord, cpus int, shortTh float64) JobClass {
	if rec.Job.EffectiveRuntime() < shortTh {
		return ShortJobs
	}
	switch {
	case rec.Job.Procs == 1:
		return LongSerial
	case rec.Job.Procs*16 <= cpus:
		return LongNarrow
	default:
		return LongWide
	}
}

// Breakdown aggregates the records per job class for a machine of the
// given size. It explains *where* the energy savings come from: the
// paper's workload narratives (Thunder's short jobs, Atlas's wide jobs)
// become visible here. It fails with ErrStreaming when the collector
// retained no records.
func (c *Collector) Breakdown(cpus int) (map[JobClass]ClassStats, error) {
	if !c.retain {
		return nil, ErrStreaming
	}
	out := make(map[JobClass]ClassStats)
	total := 0.0
	for _, rec := range c.records {
		total += rec.Energy
	}
	sums := make(map[JobClass]*ClassStats)
	for _, rec := range c.records {
		cl := classify(rec, cpus, c.th)
		s := sums[cl]
		if s == nil {
			s = &ClassStats{}
			sums[cl] = s
		}
		s.Jobs++
		s.AvgBSLD += rec.BSLD
		s.AvgWait += rec.Wait
		s.Energy += rec.Energy
		if rec.Reduced {
			s.Reduced++
		}
	}
	for cl, s := range sums {
		n := float64(s.Jobs)
		s.AvgBSLD /= n
		s.AvgWait /= n
		if total > 0 {
			s.EnergyShare = s.Energy / total
		}
		out[cl] = *s
	}
	return out, nil
}
