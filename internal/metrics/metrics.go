// Package metrics collects per-job scheduling outcomes and derives the
// quantities the paper reports: bounded slowdown (BSLD) with penalized
// run times (eq. 6), wait times, reduced-job counts, and CPU energy under
// the two accounting modes of Section 5 — computational energy (idle
// processors dissipate nothing, "Eidle=0") and total energy with idle
// processors at low power ("Eidle=low").
//
// The collector has two modes. With retention on (NewCollector) it keeps
// one JobRecord per finished job, which the distribution, fairness and
// breakdown analyses need. With retention off (NewStreamingCollector) it
// folds every job into running aggregates as it finishes and holds no
// per-job state at all — the mode million-job replays use, where O(trace)
// live records would otherwise dominate the heap. Both modes accumulate
// the aggregates in completion order, so Results are bit-identical.
package metrics

import (
	"math"
	"sort"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// JobRecord is the outcome of one job's passage through the system.
type JobRecord struct {
	Job   *workload.Job
	Start float64
	End   float64
	Wait  float64 // Start − Submit
	// PenalizedRuntime is the wall-clock execution time including any
	// frequency-reduction dilation (End − Start).
	PenalizedRuntime float64
	// BSLD is eq. (6): max((Wait+PenalizedRuntime)/max(Th, RunTime), 1),
	// with RunTime the job's execution time at the top frequency.
	BSLD float64
	// Energy is the job's CPU energy: Σ over phases procs·P(gear)·dur.
	Energy float64
	// FinalGear is the gear at completion; Reduced reports whether any
	// phase ran below the top gear.
	FinalGear dvfs.Gear
	Reduced   bool
	// AllocRuns is the number of contiguous processor runs of the job's
	// placement (1 = fully contiguous); depends on the resource
	// selection policy.
	AllocRuns int
}

// Collector implements sched.Recorder, aggregating jobs as they finish.
// It must be created with NewCollector or NewStreamingCollector.
type Collector struct {
	pm     *dvfs.PowerModel
	th     float64 // short-job threshold of the BSLD formula
	retain bool

	// Online aggregates, maintained in both modes in completion order.
	jobs        int
	bsldSum     float64
	waitSum     float64
	runsSum     float64
	maxWait     float64
	reducedJobs int
	compEnergy  float64

	records     []*JobRecord // retained mode only
	firstSubmit float64
	lastEnd     float64
	any         bool
}

var _ sched.Recorder = (*Collector)(nil)

// NewCollector returns a collector charging energy with pm and computing
// BSLD with short-job threshold th (600 s in the paper). It retains one
// JobRecord per finished job for the per-job analyses (Records,
// WaitSeries, percentiles, fairness, breakdowns).
func NewCollector(pm *dvfs.PowerModel, th float64) *Collector {
	return &Collector{pm: pm, th: th, retain: true}
}

// NewStreamingCollector returns a collector that folds jobs into the
// aggregate Results online and retains no per-job records: memory stays
// O(1) in trace length. Summarize and Window work exactly as in retained
// mode; Records returns nil and the record-based analyses report empty.
func NewStreamingCollector(pm *dvfs.PowerModel, th float64) *Collector {
	return &Collector{pm: pm, th: th}
}

// Retaining reports whether the collector keeps per-job records.
func (c *Collector) Retaining() bool { return c.retain }

// JobStarted implements sched.Recorder.
func (c *Collector) JobStarted(rs *sched.RunState, now float64) {
	if !c.any || rs.Job.Submit < c.firstSubmit {
		c.firstSubmit = rs.Job.Submit
	}
	c.any = true
}

// JobFinished implements sched.Recorder.
func (c *Collector) JobFinished(rs *sched.RunState, now float64) {
	j := rs.Job
	wait := rs.Start - j.Submit
	penalized := now - rs.Start
	bsld := BSLD(wait, penalized, j.EffectiveRuntime(), c.th)
	energy := 0.0
	for _, ph := range rs.Phases {
		energy += float64(j.Procs) * c.pm.Active(ph.Gear) * ph.Dur
	}
	c.jobs++
	c.bsldSum += bsld
	c.waitSum += wait
	c.runsSum += float64(len(rs.Alloc.Runs))
	if wait > c.maxWait {
		c.maxWait = wait
	}
	if rs.Reduced {
		c.reducedJobs++
	}
	c.compEnergy += energy
	if now > c.lastEnd {
		c.lastEnd = now
	}
	if !c.retain {
		return
	}
	c.records = append(c.records, &JobRecord{
		Job:              j,
		Start:            rs.Start,
		End:              now,
		Wait:             wait,
		PenalizedRuntime: penalized,
		BSLD:             bsld,
		Energy:           energy,
		FinalGear:        rs.Gear,
		Reduced:          rs.Reduced,
		AllocRuns:        len(rs.Alloc.Runs),
	})
}

// BSLD evaluates eq. (6) of the paper. runtime is the job's execution
// time at the top frequency (the denominator keeps the original runtime
// even when the numerator is penalized by frequency scaling).
func BSLD(wait, penalizedRuntime, runtime, th float64) float64 {
	denom := math.Max(th, runtime)
	if denom <= 0 {
		return 1
	}
	v := (wait + penalizedRuntime) / denom
	if v < 1 {
		return 1
	}
	return v
}

// Records returns the finished jobs in completion order. It is nil in
// streaming mode.
func (c *Collector) Records() []*JobRecord { return c.records }

// Window returns the observation interval [first submit, last completion].
func (c *Collector) Window() (start, end float64) { return c.firstSubmit, c.lastEnd }

// Results aggregates a run.
type Results struct {
	Jobs        int
	AvgBSLD     float64
	AvgWait     float64 // seconds
	MaxWait     float64
	ReducedJobs int // jobs that ran any phase below the top gear (Fig. 4)

	// CompEnergy is Σ job energies: the Eidle=0 accounting.
	CompEnergy float64
	// IdleEnergy charges idle processors P_idle over the window.
	IdleEnergy float64
	// TotalEnergyLow is CompEnergy + IdleEnergy: the Eidle=low accounting.
	TotalEnergyLow float64

	Window      float64 // last completion − first submit
	Utilization float64 // busy CPU·s ÷ (CPUs·Window)
	// MeanAllocRuns is the average placement contiguity (1 = every job
	// fully contiguous); a property of the resource selection policy.
	MeanAllocRuns float64
}

// Summarize folds the collector's aggregates into Results.
// idleCPUSeconds and busyCPUSeconds come from the cluster's occupancy
// integral; cpus is the machine size. It works identically in retained
// and streaming mode: the sums are accumulated online in completion
// order, which is the same order the seed implementation folded the
// record list in, so the floating-point results are bit-identical.
func (c *Collector) Summarize(idleCPUSeconds, busyCPUSeconds float64, cpus int) Results {
	r := Results{Jobs: c.jobs}
	if r.Jobs == 0 {
		return r
	}
	n := float64(r.Jobs)
	r.AvgBSLD = c.bsldSum / n
	r.AvgWait = c.waitSum / n
	r.MaxWait = c.maxWait
	r.ReducedJobs = c.reducedJobs
	r.CompEnergy = c.compEnergy
	r.MeanAllocRuns = c.runsSum / n
	r.IdleEnergy = idleCPUSeconds * c.pm.Idle()
	r.TotalEnergyLow = r.CompEnergy + r.IdleEnergy
	r.Window = c.lastEnd - c.firstSubmit
	if r.Window > 0 && cpus > 0 {
		r.Utilization = busyCPUSeconds / (float64(cpus) * r.Window)
	}
	return r
}

// WaitPoint is one sample of the wait-time series of Figure 6.
type WaitPoint struct {
	Submit float64
	Wait   float64
}

// WaitSeries returns (submit, wait) pairs ordered by submit time,
// reproducing the per-job wait traces of Figure 6. It is empty in
// streaming mode.
func (c *Collector) WaitSeries() []WaitPoint {
	pts := make([]WaitPoint, len(c.records))
	for i, rec := range c.records {
		pts[i] = WaitPoint{Submit: rec.Job.Submit, Wait: rec.Wait}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].Submit < pts[b].Submit })
	return pts
}
