package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestJainIndexEqualValues(t *testing.T) {
	if got := JainIndex([]float64{3, 3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal values index = %v, want 1", got)
	}
}

func TestJainIndexDominated(t *testing.T) {
	// One huge value among n: index → 1/n.
	xs := []float64{1000, 0, 0, 0}
	if got := JainIndex(xs); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("dominated index = %v, want 0.25", got)
	}
}

func TestJainIndexEdges(t *testing.T) {
	if JainIndex(nil) != 1 {
		t.Error("empty sample index != 1")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero sample index != 1")
	}
}

// Property: Jain's index lies in [1/n, 1] for non-negative samples.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		idx := JainIndex(xs)
		n := float64(len(xs))
		return idx >= 1/n-1e-9 && idx <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerUser(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	add := func(user int, wait float64) {
		j := &workload.Job{ID: user*100 + int(wait), Submit: 0, Runtime: 100,
			Procs: 1, ReqTime: 100, Beta: -1, User: user}
		rs, end := finishedState(j, wait, []sched.Phase{{Gear: top, Dur: 100}})
		c.JobStarted(rs, wait)
		c.JobFinished(rs, end)
	}
	add(1, 10)
	add(1, 30)
	add(2, 100)
	add(-1, 5)
	stats, err := c.PerUser()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("user groups = %d, want 3", len(stats))
	}
	u1 := stats[1]
	if u1.Jobs != 2 || u1.AvgWait != 20 || u1.MaxWait != 30 {
		t.Errorf("user 1 = %+v", u1)
	}
	if stats[2].Jobs != 1 || stats[2].AvgWait != 100 {
		t.Errorf("user 2 = %+v", stats[2])
	}
	if stats[-1].Jobs != 1 {
		t.Errorf("unknown user = %+v", stats[-1])
	}
}

func TestBSLDFairnessOnCollector(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	// Two jobs with identical outcomes: perfectly fair.
	for i := 1; i <= 2; i++ {
		j := &workload.Job{ID: i, Submit: 0, Runtime: 1000, Procs: 1, ReqTime: 1000, Beta: -1}
		rs, end := finishedState(j, 0, []sched.Phase{{Gear: top, Dur: 1000}})
		c.JobStarted(rs, 0)
		c.JobFinished(rs, end)
	}
	if got, err := c.BSLDFairness(); err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("fairness = %v, want 1 (err %v)", got, err)
	}
}
