package metrics_test

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/wgen"
)

func TestSystemSamplerCollectsPasses(t *testing.T) {
	m := wgen.CTC()
	m.Jobs = 300
	tr, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	sampler := &metrics.SystemSampler{}
	out, err := runner.Run(runner.Spec{
		Trace:          tr,
		ExtraRecorders: []sched.Recorder{sampler},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One sample per event: arrivals + completions.
	if len(sampler.Samples) != 2*out.Results.Jobs {
		t.Fatalf("samples = %d, want %d", len(sampler.Samples), 2*out.Results.Jobs)
	}
	prev := -1.0
	for _, s := range sampler.Samples {
		if s.T < prev {
			t.Fatal("sample times not monotone")
		}
		prev = s.T
		if s.Busy < 0 || s.Busy > out.CPUs {
			t.Fatalf("busy %d out of [0,%d]", s.Busy, out.CPUs)
		}
		if s.Queued < 0 {
			t.Fatalf("negative queue %d", s.Queued)
		}
	}
	// The last pass (final completion) must leave an empty system.
	last := sampler.Samples[len(sampler.Samples)-1]
	if last.Busy != 0 || last.Queued != 0 {
		t.Errorf("final sample = %+v, want drained system", last)
	}
}

func TestSamplerSeriesHelpers(t *testing.T) {
	s := &metrics.SystemSampler{Samples: []metrics.SystemSample{
		{T: 0, Queued: 0, Busy: 2},
		{T: 10, Queued: 3, Busy: 4},
		{T: 20, Queued: 1, Busy: 0},
	}}
	if s.MaxQueued() != 3 {
		t.Errorf("MaxQueued = %d", s.MaxQueued())
	}
	u := s.UtilizationSeries(4)
	if len(u) != 3 || u[1][1] != 1.0 || u[0][1] != 0.5 {
		t.Errorf("utilization series = %v", u)
	}
	q := s.QueueSeries()
	if q[1][1] != 3 {
		t.Errorf("queue series = %v", q)
	}
}

func TestSamplerEmpty(t *testing.T) {
	s := &metrics.SystemSampler{}
	if s.MaxQueued() != 0 || len(s.UtilizationSeries(4)) != 0 || len(s.QueueSeries()) != 0 {
		t.Error("empty sampler should return zeros")
	}
}
