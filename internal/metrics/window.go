package metrics

import "sort"

// JobAggregates are the per-job scheduling metrics over a subset of the
// records. Unlike Results it carries no idle-energy terms: idle power is a
// whole-run quantity and is not attributable to a job subset.
type JobAggregates struct {
	Jobs        int
	AvgBSLD     float64
	AvgWait     float64
	MaxWait     float64
	ReducedJobs int
	CompEnergy  float64
}

// SummarizeJobs aggregates the records accepted by the filter (nil
// accepts all).
func (c *Collector) SummarizeJobs(filter func(*JobRecord) bool) JobAggregates {
	var a JobAggregates
	for _, rec := range c.records {
		if filter != nil && !filter(rec) {
			continue
		}
		a.Jobs++
		a.AvgBSLD += rec.BSLD
		a.AvgWait += rec.Wait
		if rec.Wait > a.MaxWait {
			a.MaxWait = rec.Wait
		}
		if rec.Reduced {
			a.ReducedJobs++
		}
		a.CompEnergy += rec.Energy
	}
	if a.Jobs > 0 {
		a.AvgBSLD /= float64(a.Jobs)
		a.AvgWait /= float64(a.Jobs)
	}
	return a
}

// SteadyStateFilter returns a filter keeping jobs whose submit time lies
// strictly inside the trimmed span: the first and last `frac` of the
// submit-ordered jobs are discarded. This is the standard warmup/cooldown
// trimming for steady-state analysis of an initially-empty and
// finally-draining simulated system. frac must be in [0, 0.5).
func (c *Collector) SteadyStateFilter(frac float64) func(*JobRecord) bool {
	if frac <= 0 || frac >= 0.5 || len(c.records) == 0 {
		return nil
	}
	submits := make([]float64, len(c.records))
	for i, rec := range c.records {
		submits[i] = rec.Job.Submit
	}
	sort.Float64s(submits)
	lo := submits[int(frac*float64(len(submits)))]
	hi := submits[len(submits)-1-int(frac*float64(len(submits)))]
	return func(rec *JobRecord) bool {
		return rec.Job.Submit >= lo && rec.Job.Submit <= hi
	}
}

// SteadyState is shorthand for SummarizeJobs(SteadyStateFilter(frac)).
func (c *Collector) SteadyState(frac float64) JobAggregates {
	return c.SummarizeJobs(c.SteadyStateFilter(frac))
}
