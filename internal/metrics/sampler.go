package metrics

import "repro/internal/sched"

// SystemSample is one post-pass snapshot of the machine.
type SystemSample struct {
	T      float64 // simulation time of the scheduling pass
	Queued int     // jobs waiting on execution
	Busy   int     // processors executing jobs
}

// SystemSampler records the machine's state after every scheduling pass.
// Attach it through runner.Spec.ExtraRecorders to obtain utilization and
// backlog time series (the system-level view complementing Figure 6's
// per-job waits).
type SystemSampler struct {
	Samples []SystemSample
}

var (
	_ sched.Recorder     = (*SystemSampler)(nil)
	_ sched.PassObserver = (*SystemSampler)(nil)
)

// JobStarted implements sched.Recorder (no-op).
func (s *SystemSampler) JobStarted(*sched.RunState, float64) {}

// JobFinished implements sched.Recorder (no-op).
func (s *SystemSampler) JobFinished(*sched.RunState, float64) {}

// PassEnd implements sched.PassObserver.
func (s *SystemSampler) PassEnd(now float64, queued, busy int) {
	s.Samples = append(s.Samples, SystemSample{T: now, Queued: queued, Busy: busy})
}

// MaxQueued returns the deepest observed backlog.
func (s *SystemSampler) MaxQueued() int {
	max := 0
	for _, x := range s.Samples {
		if x.Queued > max {
			max = x.Queued
		}
	}
	return max
}

// UtilizationSeries converts the samples to (time, busy/total) points.
func (s *SystemSampler) UtilizationSeries(total int) [][2]float64 {
	out := make([][2]float64, len(s.Samples))
	for i, x := range s.Samples {
		out[i] = [2]float64{x.T, float64(x.Busy) / float64(total)}
	}
	return out
}

// QueueSeries converts the samples to (time, queued) points.
func (s *SystemSampler) QueueSeries() [][2]float64 {
	out := make([][2]float64, len(s.Samples))
	for i, x := range s.Samples {
		out[i] = [2]float64{x.T, float64(x.Queued)}
	}
	return out
}
