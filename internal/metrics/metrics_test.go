package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestBSLDFormula(t *testing.T) {
	cases := []struct {
		wait, pen, rt, th, want float64
	}{
		{0, 3600, 3600, 600, 1},             // no wait, no penalty
		{3600, 3600, 3600, 600, 2},          // wait equal to runtime
		{0, 6975, 3600, 600, 6975.0 / 3600}, // dilation penalty with original denominator
		{0, 100, 100, 600, 1},               // short job clamp
		{500, 100, 100, 600, 1},             // (500+100)/600 = 1
		{501, 100, 100, 600, 601.0 / 600},
		{0, 0, 0, 600, 1}, // degenerate
	}
	for _, c := range cases {
		if got := BSLD(c.wait, c.pen, c.rt, c.th); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BSLD(%v,%v,%v,%v) = %v, want %v", c.wait, c.pen, c.rt, c.th, got, c.want)
		}
	}
}

// Build a synthetic RunState the way the scheduler would.
func finishedState(j *workload.Job, start float64, phases []sched.Phase) (*sched.RunState, float64) {
	end := start
	for _, p := range phases {
		end += p.Dur
	}
	return &sched.RunState{
		Job: j, Start: start, Gear: phases[len(phases)-1].Gear,
		Phases: phases, Reduced: anyReduced(phases),
	}, end
}

func anyReduced(phases []sched.Phase) bool {
	top := dvfs.PaperGearSet().Top()
	for _, p := range phases {
		if p.Gear != top {
			return true
		}
	}
	return false
}

// A collector that saw no jobs must summarize to all-zero Results in
// both modes, and a single job starting and ending at its submit instant
// (zero-length window) must not divide by the zero window.
func TestCollectorZeroLengthWindow(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	for _, c := range []*Collector{NewCollector(pm, 600), NewStreamingCollector(pm, 600)} {
		if r := c.Summarize(0, 0, 128); r != (Results{}) {
			t.Errorf("empty collector Results = %+v, want zero", r)
		}
		j := &workload.Job{ID: 1, Submit: 50, Runtime: 0, Procs: 2, ReqTime: 0, Beta: -1}
		rs := &sched.RunState{Job: j, Start: 50, Gear: pm.Gears.Top()}
		c.JobStarted(rs, 50)
		c.JobFinished(rs, 50)
		r := c.Summarize(0, 0, 128)
		if r.Jobs != 1 {
			t.Fatalf("Jobs = %d, want 1", r.Jobs)
		}
		if r.Window != 0 {
			t.Errorf("Window = %v, want 0", r.Window)
		}
		if r.Utilization != 0 {
			t.Errorf("Utilization = %v, want 0 (undefined over a zero window)", r.Utilization)
		}
		if r.AvgBSLD != 1 || r.AvgWait != 0 {
			t.Errorf("AvgBSLD/AvgWait = %v/%v, want 1/0", r.AvgBSLD, r.AvgWait)
		}
		if math.IsNaN(r.MeanAllocRuns) {
			t.Error("MeanAllocRuns is NaN")
		}
	}
}

// th=0 removes the short-job clamp's floor: a zero-runtime job then has a
// zero denominator, which BSLD defines as 1 (degenerate case), and a
// positive-runtime job falls back to the plain slowdown.
func TestCollectorZeroThresholdZeroRuntime(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	top := pm.Gears.Top()
	for _, c := range []*Collector{NewCollector(pm, 0), NewStreamingCollector(pm, 0)} {
		zero := &workload.Job{ID: 1, Submit: 0, Runtime: 0, Procs: 1, ReqTime: 0, Beta: -1}
		rs := &sched.RunState{Job: zero, Start: 10, Gear: top}
		c.JobStarted(rs, 10)
		c.JobFinished(rs, 10) // waited 10 s, ran 0 s, denominator max(0,0)=0
		pos := &workload.Job{ID: 2, Submit: 0, Runtime: 100, Procs: 1, ReqTime: 100, Beta: -1}
		rs2, end := finishedState(pos, 100, []sched.Phase{{Gear: top, Dur: 100}})
		c.JobStarted(rs2, 100)
		c.JobFinished(rs2, end) // (100+100)/100 = 2, unclamped at th=0
		r := c.Summarize(0, 0, 4)
		if want := (1.0 + 2.0) / 2; math.Abs(r.AvgBSLD-want) > 1e-12 {
			t.Errorf("AvgBSLD = %v, want %v", r.AvgBSLD, want)
		}
	}
}

// Streaming and retained collectors observing the same completion stream
// must produce identical Results — bit for bit, since both fold in
// completion order — while only the retained one holds records.
func TestStreamingMatchesRetainedOnRandomTrace(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	gears := pm.Gears
	rng := func(seed, mod int) int { return (seed*2654435761 + 12345) % mod }
	ret := NewCollector(pm, 600)
	str := NewStreamingCollector(pm, 600)
	now := 0.0
	for i := 1; i <= 500; i++ {
		submit := now
		wait := float64(rng(i, 5000))
		run := float64(1 + rng(i*7, 20000))
		g := gears[rng(i*13, len(gears))]
		j := &workload.Job{ID: i, Submit: submit, Runtime: run, Procs: 1 + rng(i*3, 64), ReqTime: run, Beta: -1}
		rs, end := finishedState(j, submit+wait, []sched.Phase{{Gear: g, Dur: run}})
		rs.Alloc = cluster.AllocOf(0, 2, 3) // two runs
		for _, c := range []*Collector{ret, str} {
			c.JobStarted(rs, submit+wait)
			c.JobFinished(rs, end)
		}
		now += float64(rng(i*31, 300))
	}
	if ret.Summarize(1e9, 5e9, 4096) != str.Summarize(1e9, 5e9, 4096) {
		t.Errorf("streaming Results differ from retained:\n%+v\n%+v",
			str.Summarize(1e9, 5e9, 4096), ret.Summarize(1e9, 5e9, 4096))
	}
	if got := len(ret.Records()); got != 500 {
		t.Errorf("retained records = %d, want 500", got)
	}
	if str.Records() != nil {
		t.Errorf("streaming collector retained %d records", len(str.Records()))
	}
	if !ret.Retaining() || str.Retaining() {
		t.Error("Retaining() flags wrong")
	}
	if len(str.WaitSeries()) != 0 {
		t.Error("streaming WaitSeries not empty")
	}
	rs, re := ret.Window()
	ss, se := str.Window()
	if rs != ss || re != se {
		t.Errorf("windows differ: [%v,%v] vs [%v,%v]", rs, re, ss, se)
	}
}

func TestCollectorSingleJobEnergyAndBSLD(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	j := &workload.Job{ID: 1, Submit: 0, Runtime: 3600, Procs: 4, ReqTime: 3600, Beta: -1}
	rs, end := finishedState(j, 100, []sched.Phase{{Gear: top, Dur: 3600}})
	c.JobStarted(rs, 100)
	c.JobFinished(rs, end)

	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	rec := recs[0]
	if rec.Wait != 100 || rec.PenalizedRuntime != 3600 {
		t.Errorf("wait/pen = %v/%v", rec.Wait, rec.PenalizedRuntime)
	}
	wantE := 4 * pm.Active(top) * 3600
	if math.Abs(rec.Energy-wantE) > 1e-9 {
		t.Errorf("energy = %v, want %v", rec.Energy, wantE)
	}
	wantB := (100.0 + 3600.0) / 3600.0
	if math.Abs(rec.BSLD-wantB) > 1e-12 {
		t.Errorf("BSLD = %v, want %v", rec.BSLD, wantB)
	}
}

func TestCollectorReducedJobUsesOriginalRuntimeDenominator(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	low := pm.Gears.Lowest()
	// 3600 s of work dilated by 1.9375 at the lowest gear.
	j := &workload.Job{ID: 1, Submit: 0, Runtime: 3600, Procs: 2, ReqTime: 3600, Beta: -1}
	rs, end := finishedState(j, 0, []sched.Phase{{Gear: low, Dur: 3600 * 1.9375}})
	c.JobStarted(rs, 0)
	c.JobFinished(rs, end)
	rec := c.Records()[0]
	// Eq. (6): penalized runtime in the numerator, original in the
	// denominator -> BSLD = 1.9375 even with zero wait.
	if math.Abs(rec.BSLD-1.9375) > 1e-12 {
		t.Errorf("BSLD = %v, want 1.9375", rec.BSLD)
	}
	if !rec.Reduced {
		t.Error("record not marked reduced")
	}
}

func TestCollectorMultiPhaseEnergy(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	low, top := pm.Gears.Lowest(), pm.Gears.Top()
	j := &workload.Job{ID: 1, Submit: 0, Runtime: 1000, Procs: 3, ReqTime: 1000, Beta: -1}
	rs, end := finishedState(j, 0, []sched.Phase{
		{Gear: low, Dur: 968.75},
		{Gear: top, Dur: 500},
	})
	c.JobStarted(rs, 0)
	c.JobFinished(rs, end)
	want := 3 * (pm.Active(low)*968.75 + pm.Active(top)*500)
	if got := c.Records()[0].Energy; math.Abs(got-want) > 1e-9 {
		t.Errorf("multi-phase energy = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	low := pm.Gears.Lowest()
	jobs := []struct {
		j      *workload.Job
		start  float64
		phases []sched.Phase
	}{
		{&workload.Job{ID: 1, Submit: 0, Runtime: 1000, Procs: 2, ReqTime: 1000, Beta: -1}, 0,
			[]sched.Phase{{Gear: top, Dur: 1000}}},
		{&workload.Job{ID: 2, Submit: 100, Runtime: 1000, Procs: 2, ReqTime: 1000, Beta: -1}, 600,
			[]sched.Phase{{Gear: low, Dur: 1937.5}}},
	}
	for _, x := range jobs {
		rs, end := finishedState(x.j, x.start, x.phases)
		c.JobStarted(rs, x.start)
		c.JobFinished(rs, end)
	}
	res := c.Summarize(5000, 2*1000+2*1937.5, 4)
	if res.Jobs != 2 {
		t.Fatalf("Jobs = %d", res.Jobs)
	}
	if res.ReducedJobs != 1 {
		t.Errorf("ReducedJobs = %d, want 1", res.ReducedJobs)
	}
	// Wait: job1 0, job2 500 -> avg 250, max 500.
	if res.AvgWait != 250 || res.MaxWait != 500 {
		t.Errorf("wait = avg %v max %v", res.AvgWait, res.MaxWait)
	}
	// BSLD: job1 = 1; job2 = (500+1937.5)/1000 = 2.4375.
	if math.Abs(res.AvgBSLD-(1+2.4375)/2) > 1e-12 {
		t.Errorf("AvgBSLD = %v", res.AvgBSLD)
	}
	wantComp := 2*pm.Active(top)*1000 + 2*pm.Active(low)*1937.5
	if math.Abs(res.CompEnergy-wantComp) > 1e-9 {
		t.Errorf("CompEnergy = %v, want %v", res.CompEnergy, wantComp)
	}
	wantIdle := 5000 * pm.Idle()
	if math.Abs(res.IdleEnergy-wantIdle) > 1e-9 {
		t.Errorf("IdleEnergy = %v, want %v", res.IdleEnergy, wantIdle)
	}
	if math.Abs(res.TotalEnergyLow-(wantComp+wantIdle)) > 1e-9 {
		t.Errorf("TotalEnergyLow = %v", res.TotalEnergyLow)
	}
	// Window: first submit 0 to last end 600+1937.5.
	if math.Abs(res.Window-2537.5) > 1e-9 {
		t.Errorf("Window = %v, want 2537.5", res.Window)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	c := NewCollector(dvfs.PaperPowerModel(), 600)
	res := c.Summarize(0, 0, 4)
	if res.Jobs != 0 || res.AvgBSLD != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestWaitSeriesSorted(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	// Finish jobs out of submit order.
	for _, sub := range []float64{300, 100, 200} {
		j := &workload.Job{ID: int(sub), Submit: sub, Runtime: 10, Procs: 1, ReqTime: 10, Beta: -1}
		rs, end := finishedState(j, sub+5, []sched.Phase{{Gear: top, Dur: 10}})
		c.JobStarted(rs, sub+5)
		c.JobFinished(rs, end)
	}
	pts := c.WaitSeries()
	if len(pts) != 3 {
		t.Fatalf("series length = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Submit < pts[i-1].Submit {
			t.Fatal("series not sorted by submit")
		}
	}
	if pts[0].Wait != 5 {
		t.Errorf("wait = %v, want 5", pts[0].Wait)
	}
}

// Property: BSLD >= 1 and monotone in wait and penalized runtime.
func TestQuickBSLDProperties(t *testing.T) {
	f := func(w, p, extra uint16, rt uint16) bool {
		wait, pen := float64(w), float64(p)
		run := float64(rt)
		a := BSLD(wait, pen, run, 600)
		b := BSLD(wait+float64(extra), pen, run, 600)
		c := BSLD(wait, pen+float64(extra), run, 600)
		return a >= 1 && b >= a && c >= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
