package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestBSLDFormula(t *testing.T) {
	cases := []struct {
		wait, pen, rt, th, want float64
	}{
		{0, 3600, 3600, 600, 1},             // no wait, no penalty
		{3600, 3600, 3600, 600, 2},          // wait equal to runtime
		{0, 6975, 3600, 600, 6975.0 / 3600}, // dilation penalty with original denominator
		{0, 100, 100, 600, 1},               // short job clamp
		{500, 100, 100, 600, 1},             // (500+100)/600 = 1
		{501, 100, 100, 600, 601.0 / 600},
		{0, 0, 0, 600, 1}, // degenerate
	}
	for _, c := range cases {
		if got := BSLD(c.wait, c.pen, c.rt, c.th); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BSLD(%v,%v,%v,%v) = %v, want %v", c.wait, c.pen, c.rt, c.th, got, c.want)
		}
	}
}

// Build a synthetic RunState the way the scheduler would.
func finishedState(j *workload.Job, start float64, phases []sched.Phase) (*sched.RunState, float64) {
	end := start
	for _, p := range phases {
		end += p.Dur
	}
	return &sched.RunState{
		Job: j, Start: start, Gear: phases[len(phases)-1].Gear,
		Phases: phases, Reduced: anyReduced(phases),
	}, end
}

func anyReduced(phases []sched.Phase) bool {
	top := dvfs.PaperGearSet().Top()
	for _, p := range phases {
		if p.Gear != top {
			return true
		}
	}
	return false
}

func TestCollectorSingleJobEnergyAndBSLD(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	j := &workload.Job{ID: 1, Submit: 0, Runtime: 3600, Procs: 4, ReqTime: 3600, Beta: -1}
	rs, end := finishedState(j, 100, []sched.Phase{{Gear: top, Dur: 3600}})
	c.JobStarted(rs, 100)
	c.JobFinished(rs, end)

	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	rec := recs[0]
	if rec.Wait != 100 || rec.PenalizedRuntime != 3600 {
		t.Errorf("wait/pen = %v/%v", rec.Wait, rec.PenalizedRuntime)
	}
	wantE := 4 * pm.Active(top) * 3600
	if math.Abs(rec.Energy-wantE) > 1e-9 {
		t.Errorf("energy = %v, want %v", rec.Energy, wantE)
	}
	wantB := (100.0 + 3600.0) / 3600.0
	if math.Abs(rec.BSLD-wantB) > 1e-12 {
		t.Errorf("BSLD = %v, want %v", rec.BSLD, wantB)
	}
}

func TestCollectorReducedJobUsesOriginalRuntimeDenominator(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	low := pm.Gears.Lowest()
	// 3600 s of work dilated by 1.9375 at the lowest gear.
	j := &workload.Job{ID: 1, Submit: 0, Runtime: 3600, Procs: 2, ReqTime: 3600, Beta: -1}
	rs, end := finishedState(j, 0, []sched.Phase{{Gear: low, Dur: 3600 * 1.9375}})
	c.JobStarted(rs, 0)
	c.JobFinished(rs, end)
	rec := c.Records()[0]
	// Eq. (6): penalized runtime in the numerator, original in the
	// denominator -> BSLD = 1.9375 even with zero wait.
	if math.Abs(rec.BSLD-1.9375) > 1e-12 {
		t.Errorf("BSLD = %v, want 1.9375", rec.BSLD)
	}
	if !rec.Reduced {
		t.Error("record not marked reduced")
	}
}

func TestCollectorMultiPhaseEnergy(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	low, top := pm.Gears.Lowest(), pm.Gears.Top()
	j := &workload.Job{ID: 1, Submit: 0, Runtime: 1000, Procs: 3, ReqTime: 1000, Beta: -1}
	rs, end := finishedState(j, 0, []sched.Phase{
		{Gear: low, Dur: 968.75},
		{Gear: top, Dur: 500},
	})
	c.JobStarted(rs, 0)
	c.JobFinished(rs, end)
	want := 3 * (pm.Active(low)*968.75 + pm.Active(top)*500)
	if got := c.Records()[0].Energy; math.Abs(got-want) > 1e-9 {
		t.Errorf("multi-phase energy = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	low := pm.Gears.Lowest()
	jobs := []struct {
		j      *workload.Job
		start  float64
		phases []sched.Phase
	}{
		{&workload.Job{ID: 1, Submit: 0, Runtime: 1000, Procs: 2, ReqTime: 1000, Beta: -1}, 0,
			[]sched.Phase{{Gear: top, Dur: 1000}}},
		{&workload.Job{ID: 2, Submit: 100, Runtime: 1000, Procs: 2, ReqTime: 1000, Beta: -1}, 600,
			[]sched.Phase{{Gear: low, Dur: 1937.5}}},
	}
	for _, x := range jobs {
		rs, end := finishedState(x.j, x.start, x.phases)
		c.JobStarted(rs, x.start)
		c.JobFinished(rs, end)
	}
	res := c.Summarize(5000, 2*1000+2*1937.5, 4)
	if res.Jobs != 2 {
		t.Fatalf("Jobs = %d", res.Jobs)
	}
	if res.ReducedJobs != 1 {
		t.Errorf("ReducedJobs = %d, want 1", res.ReducedJobs)
	}
	// Wait: job1 0, job2 500 -> avg 250, max 500.
	if res.AvgWait != 250 || res.MaxWait != 500 {
		t.Errorf("wait = avg %v max %v", res.AvgWait, res.MaxWait)
	}
	// BSLD: job1 = 1; job2 = (500+1937.5)/1000 = 2.4375.
	if math.Abs(res.AvgBSLD-(1+2.4375)/2) > 1e-12 {
		t.Errorf("AvgBSLD = %v", res.AvgBSLD)
	}
	wantComp := 2*pm.Active(top)*1000 + 2*pm.Active(low)*1937.5
	if math.Abs(res.CompEnergy-wantComp) > 1e-9 {
		t.Errorf("CompEnergy = %v, want %v", res.CompEnergy, wantComp)
	}
	wantIdle := 5000 * pm.Idle()
	if math.Abs(res.IdleEnergy-wantIdle) > 1e-9 {
		t.Errorf("IdleEnergy = %v, want %v", res.IdleEnergy, wantIdle)
	}
	if math.Abs(res.TotalEnergyLow-(wantComp+wantIdle)) > 1e-9 {
		t.Errorf("TotalEnergyLow = %v", res.TotalEnergyLow)
	}
	// Window: first submit 0 to last end 600+1937.5.
	if math.Abs(res.Window-2537.5) > 1e-9 {
		t.Errorf("Window = %v, want 2537.5", res.Window)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	c := NewCollector(dvfs.PaperPowerModel(), 600)
	res := c.Summarize(0, 0, 4)
	if res.Jobs != 0 || res.AvgBSLD != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestWaitSeriesSorted(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	c := NewCollector(pm, 600)
	top := pm.Gears.Top()
	// Finish jobs out of submit order.
	for _, sub := range []float64{300, 100, 200} {
		j := &workload.Job{ID: int(sub), Submit: sub, Runtime: 10, Procs: 1, ReqTime: 10, Beta: -1}
		rs, end := finishedState(j, sub+5, []sched.Phase{{Gear: top, Dur: 10}})
		c.JobStarted(rs, sub+5)
		c.JobFinished(rs, end)
	}
	pts := c.WaitSeries()
	if len(pts) != 3 {
		t.Fatalf("series length = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Submit < pts[i-1].Submit {
			t.Fatal("series not sorted by submit")
		}
	}
	if pts[0].Wait != 5 {
		t.Errorf("wait = %v, want 5", pts[0].Wait)
	}
}

// Property: BSLD >= 1 and monotone in wait and penalized runtime.
func TestQuickBSLDProperties(t *testing.T) {
	f := func(w, p, extra uint16, rt uint16) bool {
		wait, pen := float64(w), float64(p)
		run := float64(rt)
		a := BSLD(wait, pen, run, 600)
		b := BSLD(wait+float64(extra), pen, run, 600)
		c := BSLD(wait, pen+float64(extra), run, 600)
		return a >= 1 && b >= a && c >= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
