// Integration tests live in an external package: they drive the policies
// through the runner/scenario layers, which import altpolicy — an
// in-package test would close that cycle.
package altpolicy_test

import (
	"testing"

	"repro/internal/altpolicy"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/wgen"
	"repro/internal/workload"
)

func TestUtilizationDrivenEndToEnd(t *testing.T) {
	m := wgen.LLNLThunder()
	m.Jobs = 600
	tr, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	gears := dvfs.PaperGearSet()
	pol, err := altpolicy.NewUtilizationDriven(gears, 0.3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	base, err := runner.Run(runner.Spec{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	out, err := runner.Run(runner.Spec{Trace: tr, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if out.Results.CompEnergy >= base.Results.CompEnergy {
		t.Errorf("utilization-driven policy saved nothing: %v vs %v",
			out.Results.CompEnergy, base.Results.CompEnergy)
	}
	if out.Results.ReducedJobs == 0 {
		t.Error("no jobs reduced")
	}
}

// The data-plane path: a ControllerConfig on the runner spec compiles
// into a live power-cap controller, the outcome exposes the bound
// instance for its report, and the capped run trades BSLD for power.
func TestPowerCapThroughRunner(t *testing.T) {
	m := wgen.LLNLThunder()
	m.Jobs = 500
	tr, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	free, err := runner.Run(runner.Spec{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if free.Controller != nil {
		t.Fatalf("controller-free run exposed a controller: %v", free.Controller)
	}
	capped, err := runner.Run(runner.Spec{
		Trace:      tr,
		Controller: scenario.ControllerConfig{CapFrac: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	pc, ok := capped.Controller.(*altpolicy.PowerCap)
	if !ok {
		t.Fatalf("outcome controller = %T, want *altpolicy.PowerCap", capped.Controller)
	}
	rep := pc.Report()
	if rep.Passes == 0 || rep.Cap <= 0 {
		t.Fatalf("controller never ran: %+v", rep)
	}
	if rep.Actuations > 0 && capped.Results.AvgBSLD < free.Results.AvgBSLD {
		t.Errorf("cap throttled %d times yet improved BSLD %v -> %v",
			rep.Actuations, free.Results.AvgBSLD, capped.Results.AvgBSLD)
	}
	if rep.AvgDraw > rep.Cap*1.25 {
		t.Errorf("average draw %v far above cap %v", rep.AvgDraw, rep.Cap)
	}
}

// Eco consent flows through preset resolution end to end: an EcoUsers
// "*" hook on a named-preset spec tags every job (streamed and
// materialized arenas alike), so an eco-only cap bites; the same
// eco-only cap without the hook has no consenting jobs and reproduces
// the uncapped schedule exactly.
func TestEcoUsersPresetEndToEnd(t *testing.T) {
	base := scenario.Spec{Workload: "LLNLThunder", Jobs: 500}
	free, err := scenario.Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	freeOut, err := free.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, materialize := range []bool{false, true} {
		spec := base
		spec.Materialize = materialize
		spec.Controller = scenario.ControllerConfig{CapFrac: 0.5, EcoOnly: true}

		noEco, err := scenario.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		out, err := noEco.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if out.Results != freeOut.Results {
			t.Errorf("materialize=%v: eco-only cap with no consenting jobs changed results:\n%+v\n%+v",
				materialize, out.Results, freeOut.Results)
		}
		if rep := out.Controller.(*altpolicy.PowerCap).Report(); rep.Actuations != 0 {
			t.Errorf("materialize=%v: %d actuations without a consenting job", materialize, rep.Actuations)
		}

		spec.Filter = workload.SWFFilter{EcoUsers: "*"}
		eco, err := scenario.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		if eco.Hash() == noEco.Hash() {
			t.Errorf("materialize=%v: EcoUsers hook missing from the canonical hash", materialize)
		}
		ecoOut, err := eco.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if rep := ecoOut.Controller.(*altpolicy.PowerCap).Report(); rep.Actuations == 0 {
			t.Errorf("materialize=%v: cap never actuated despite universal consent", materialize)
		}
	}

	bad := base
	bad.Filter = workload.SWFFilter{EcoUsers: "seven"}
	if _, err := scenario.Compile(bad); err == nil {
		t.Error("compile accepted a malformed EcoUsers hook on a preset")
	}
}

// A zero ControllerConfig is the pre-controller path: identical results
// AND an identical scenario hash, while a configured cap hashes apart.
func TestControllerConfigHashAndNeutrality(t *testing.T) {
	m := wgen.CTC()
	m.Jobs = 300
	tr, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := runner.Compile(runner.Spec{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := runner.Compile(runner.Spec{Trace: tr, Controller: scenario.ControllerConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Hash() != zero.Hash() {
		t.Errorf("zero controller config changed the hash: %s vs %s", plain.Hash(), zero.Hash())
	}
	capped, err := runner.Compile(runner.Spec{Trace: tr, Controller: scenario.ControllerConfig{CapFrac: 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Hash() == plain.Hash() {
		t.Error("capped scenario hashes identically to uncapped")
	}
	// Explicit default gains describe the same scenario as omitted ones.
	explicit, err := runner.Compile(runner.Spec{Trace: tr, Controller: scenario.ControllerConfig{
		CapFrac: 0.7, Kp: altpolicy.DefaultKp, Ki: altpolicy.DefaultKi,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Hash() != capped.Hash() {
		t.Error("explicit default gains hash apart from omitted gains")
	}
	// Stripping the controller recovers the uncapped scenario exactly.
	if got := capped.WithoutController().Hash(); got != plain.Hash() {
		t.Errorf("WithoutController hash %s, want %s", got, plain.Hash())
	}

	a, err := plain.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := zero.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Results != b.Results {
		t.Errorf("zero controller config changed results:\n%+v\n%+v", a.Results, b.Results)
	}
}
