package altpolicy

import (
	"math/rand"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// schedAudit captures the schedule (start/end times and the gear at each
// endpoint) for byte-identity comparisons.
type schedAudit struct {
	starts, ends       map[int]float64
	startGear, endGear map[int]dvfs.Gear
}

func newSchedAudit() *schedAudit {
	return &schedAudit{
		starts: map[int]float64{}, ends: map[int]float64{},
		startGear: map[int]dvfs.Gear{}, endGear: map[int]dvfs.Gear{},
	}
}

func (a *schedAudit) JobStarted(rs *sched.RunState, now float64) {
	a.starts[rs.Job.ID] = now
	a.startGear[rs.Job.ID] = rs.Gear
}

func (a *schedAudit) JobFinished(rs *sched.RunState, now float64) {
	a.ends[rs.Job.ID] = now
	a.endGear[rs.Job.ID] = rs.Gear
}

func (a *schedAudit) equal(b *schedAudit) bool {
	if len(a.starts) != len(b.starts) || len(a.ends) != len(b.ends) {
		return false
	}
	for id, v := range a.starts {
		if b.starts[id] != v || b.startGear[id] != a.startGear[id] {
			return false
		}
	}
	for id, v := range a.ends {
		if b.ends[id] != v || b.endGear[id] != a.endGear[id] {
			return false
		}
	}
	return true
}

// denseTrace generates a bursty synthetic trace that keeps the machine
// saturated with a deep queue for most of the run.
func denseTrace(seed int64, cpus, jobs int) *workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &workload.Trace{Name: "dense", CPUs: cpus}
	sub := 0.0
	for i := 1; i <= jobs; i++ {
		sub += rng.Float64() * 30
		rt := 600 + rng.Float64()*3000
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i, Submit: sub, Runtime: rt, ReqTime: rt * 1.5,
			Procs: 1 + rng.Intn(cpus/4), Beta: -1,
		})
	}
	return tr
}

func runWith(t *testing.T, tr *workload.Trace, variant sched.Variant, pol sched.GearPolicy, ctrl sched.PowerController) *schedAudit {
	t.Helper()
	gears := dvfs.PaperGearSet()
	audit := newSchedAudit()
	sys, err := sched.New(sched.Config{
		CPUs: tr.CPUs, Gears: gears,
		TimeModel:  dvfs.NewTimeModel(0.5, gears),
		Policy:     pol,
		Variant:    variant,
		Recorder:   audit,
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	return audit
}

func TestNewPowerCapValidation(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pm := dvfs.PaperPowerModel()
	bad := []struct {
		cap, kp, ki float64
	}{
		{0, DefaultKp, DefaultKi},
		{-0.5, DefaultKp, DefaultKi},
		{1.5, DefaultKp, DefaultKi},
		{0.7, -1, DefaultKi},
		{0.7, DefaultKp, -1},
	}
	for _, b := range bad {
		if _, err := NewPowerCap(gears, pm, b.cap, b.kp, b.ki, false); err == nil {
			t.Errorf("config %+v accepted", b)
		}
	}
	if _, err := NewPowerCap(gears, pm, 0.7, 0, 0, false); err != nil {
		t.Errorf("zero gains (defaults) rejected: %v", err)
	}
	if _, err := NewPowerCap(gears, nil, 0.7, 0, 0, false); err == nil {
		t.Error("nil power model accepted")
	}
}

// With the cap at the machine's peak draw the controller must never
// actuate: the schedule is byte-identical to a controller-free run. This
// is the cap-disabled half of the determinism contract — enabling the
// layer with full headroom changes nothing.
func TestPowerCapNeutralAtFullHeadroom(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pm := dvfs.PaperPowerModel()
	ud := func() sched.GearPolicy {
		p, err := NewUtilizationDriven(gears, 0.3, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	policies := map[string]func() sched.GearPolicy{
		"top":    func() sched.GearPolicy { return sched.FixedGear{Gear: gears.Top()} },
		"lowest": func() sched.GearPolicy { return sched.FixedGear{Gear: gears.Lowest()} },
		"util":   ud,
	}
	for name, mk := range policies {
		for _, variant := range []sched.Variant{sched.EASY, sched.Conservative} {
			for seed := int64(1); seed <= 3; seed++ {
				tr := denseTrace(seed, 32, 250)
				free := runWith(t, tr, variant, mk(), nil)
				pc, err := NewPowerCap(gears, pm, 1, 0, 0, false)
				if err != nil {
					t.Fatal(err)
				}
				capped := runWith(t, tr, variant, mk(), pc)
				if !free.equal(capped) {
					t.Errorf("%s/%v/seed%d: full-headroom cap changed the schedule", name, variant, seed)
				}
				if rep := pc.Report(); rep.Actuations != 0 {
					t.Errorf("%s/%v/seed%d: %d actuations at full headroom", name, variant, seed, rep.Actuations)
				} else if rep.Passes == 0 {
					t.Errorf("%s/%v/seed%d: controller never ran", name, variant, seed)
				}
			}
		}
	}
}

// boostLocal is a per-job policy with its own per-pass hook: it starts
// everything at the lowest gear and boosts running jobs to the top when
// the queue is deep. It exercises the two-slot controller seam.
type boostLocal struct{ gears dvfs.GearSet }

func (p boostLocal) Name() string { return "boost-local" }

func (p boostLocal) ReserveGear(j *workload.Job, start, now float64, wqOthers int) dvfs.Gear {
	return p.gears.Lowest()
}

func (p boostLocal) BackfillGear(j *workload.Job, now float64, wqOthers int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	for _, g := range p.gears {
		if feasible(g) {
			return g, true
		}
	}
	return dvfs.Gear{}, false
}

func (p boostLocal) Bind(*sched.System) {}

func (p boostLocal) ControlPass(sys *sched.System, now float64) {
	if sys.QueueLen() <= 2 {
		return
	}
	top := p.gears.Top()
	for _, rs := range sys.Running() {
		if rs.Gear != top {
			sys.SetGear(rs, top, now)
		}
	}
}

// A boosting policy and a full-headroom cap must compose neutrally: the
// policy's hook keeps running (it is not displaced by the explicit
// controller), its regears redefine the jobs' natural gears, and the
// controller neither undoes the boost nor issues any switch of its own.
func TestPowerCapComposesWithBoostingPolicy(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pm := dvfs.PaperPowerModel()
	for seed := int64(1); seed <= 3; seed++ {
		tr := denseTrace(seed, 32, 250)
		free := runWith(t, tr, sched.EASY, boostLocal{gears}, nil)
		pc, err := NewPowerCap(gears, pm, 1, 0, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		capped := runWith(t, tr, sched.EASY, boostLocal{gears}, pc)
		if !free.equal(capped) {
			t.Errorf("seed %d: full-headroom cap perturbed the boosting policy", seed)
		}
		if rep := pc.Report(); rep.Actuations != 0 {
			t.Errorf("seed %d: controller fought the boost (%d actuations)", seed, rep.Actuations)
		}
		boosted := false
		for id, g := range free.endGear {
			if free.startGear[id] != g {
				boosted = true
				break
			}
		}
		if !boosted {
			t.Error("trace never triggered a boost; test is vacuous")
		}
	}
}

// A tight cap on a saturated machine must pull the tracked draw under
// the cap and hold it there: lower average draw than the uncapped run,
// bounded cap overshoot, and a dilated schedule (throttling costs time).
func TestPowerCapEnforcesCap(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pm := dvfs.PaperPowerModel()
	tr := denseTrace(7, 64, 400)
	top := sched.FixedGear{Gear: gears.Top()}

	ref, err := NewPowerCap(gears, pm, 1, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	freeAudit := runWith(t, tr, sched.EASY, top, ref)

	pc, err := NewPowerCap(gears, pm, 0.6, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cappedAudit := runWith(t, tr, sched.EASY, top, pc)

	rep := pc.Report()
	if rep.Actuations == 0 {
		t.Fatal("tight cap issued no gear switches")
	}
	if rep.AvgDraw > rep.Cap*1.05 {
		t.Errorf("average draw %v not held near cap %v", rep.AvgDraw, rep.Cap)
	}
	if refRep := ref.Report(); rep.AvgDraw >= refRep.AvgDraw {
		t.Errorf("capped average draw %v not below uncapped %v", rep.AvgDraw, refRep.AvgDraw)
	}
	if rep.OverFrac > 0.5 {
		t.Errorf("draw above cap %v of the time", rep.OverFrac)
	}
	var freeEnd, capEnd float64
	for _, e := range freeAudit.ends {
		if e > freeEnd {
			freeEnd = e
		}
	}
	for _, e := range cappedAudit.ends {
		if e > capEnd {
			capEnd = e
		}
	}
	if capEnd <= freeEnd {
		t.Errorf("capped makespan %v not dilated vs uncapped %v", capEnd, freeEnd)
	}
}

// Eco-only capping may only touch consenting jobs: with no Eco jobs in
// the trace the controller is inert even far over its cap; with every
// job consenting it throttles.
func TestPowerCapEcoOnly(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pm := dvfs.PaperPowerModel()
	top := sched.FixedGear{Gear: gears.Top()}

	tr := denseTrace(11, 64, 300)
	free := runWith(t, tr, sched.EASY, top, nil)
	pc, err := NewPowerCap(gears, pm, 0.6, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	inert := runWith(t, tr, sched.EASY, top, pc)
	if rep := pc.Report(); rep.Actuations != 0 {
		t.Errorf("eco-only cap throttled %d non-eco jobs", rep.Actuations)
	}
	if !free.equal(inert) {
		t.Error("eco-only cap with no eco jobs changed the schedule")
	}

	eco := denseTrace(11, 64, 300)
	for _, j := range eco.Jobs {
		j.Eco = true
	}
	pcEco, err := NewPowerCap(gears, pm, 0.6, 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	runWith(t, eco, sched.EASY, top, pcEco)
	if rep := pcEco.Report(); rep.Actuations == 0 {
		t.Error("eco-only cap never throttled a consenting job")
	}
	if EcoShare(eco) != 1 {
		t.Errorf("EcoShare = %v, want 1", EcoShare(eco))
	}
}

// CloneController must copy configuration and drop bound state.
func TestPowerCapCloneIsUnbound(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pm := dvfs.PaperPowerModel()
	pc, err := NewPowerCap(gears, pm, 0.6, 2, 0.1, true)
	if err != nil {
		t.Fatal(err)
	}
	runWith(t, denseTrace(3, 32, 150), sched.EASY, sched.FixedGear{Gear: gears.Top()}, pc)
	if pc.Meter() == nil || pc.Report().Passes == 0 {
		t.Fatal("original controller never bound")
	}
	clone, ok := pc.CloneController().(*PowerCap)
	if !ok {
		t.Fatal("clone type changed")
	}
	if clone.CapFrac != 0.6 || clone.Kp != 2 || clone.Ki != 0.1 || !clone.EcoOnly {
		t.Errorf("clone lost configuration: %+v", clone)
	}
	if clone.Meter() != nil || clone.Report().Passes != 0 || clone.Cap() != 0 {
		t.Error("clone carried bound state")
	}
}

// The utilization-driven policy re-homed onto the controller seam must
// reproduce its pre-refactor schedules: seed-era scheduler compat and
// the optimized path agree byte-for-byte.
func TestUtilizationDrivenSeamCompat(t *testing.T) {
	gears := dvfs.PaperGearSet()
	for seed := int64(1); seed <= 3; seed++ {
		tr := denseTrace(seed, 32, 250)
		audits := make(map[string]*schedAudit)
		for name, compat := range map[string]sched.Compat{"opt": {}, "seed": sched.SeedCompat()} {
			pol, err := NewUtilizationDriven(gears, 0.3, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			audit := newSchedAudit()
			sys, err := sched.New(sched.Config{
				CPUs: tr.CPUs, Gears: gears,
				TimeModel: dvfs.NewTimeModel(0.5, gears),
				Policy:    pol, Variant: sched.EASY,
				Recorder: audit, Compat: compat,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Simulate(tr); err != nil {
				t.Fatal(err)
			}
			audits[name] = audit
		}
		if !audits["opt"].equal(audits["seed"]) {
			t.Errorf("seed %d: utilization-driven schedules diverge across compat modes", seed)
		}
	}
}
