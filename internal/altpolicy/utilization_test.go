package altpolicy

import (
	"strings"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestNewUtilizationDrivenValidation(t *testing.T) {
	gears := dvfs.PaperGearSet()
	bad := [][2]float64{{-0.1, 0.9}, {0.5, 1.1}, {0.9, 0.5}, {0.5, 0.5}}
	for _, b := range bad {
		if _, err := NewUtilizationDriven(gears, b[0], b[1]); err == nil {
			t.Errorf("bracket %v accepted", b)
		}
	}
	if _, err := NewUtilizationDriven(dvfs.GearSet{}, 0.2, 0.8); err == nil {
		t.Error("empty gear set accepted")
	}
	if _, err := NewUtilizationDriven(gears, 0.2, 0.8); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}

// On an empty machine new jobs take the lowest gear; when the machine
// fills up they take the top gear.
func TestUtilizationMapping(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pol, err := NewUtilizationDriven(gears, 0.25, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	rec := &gearCapture{}
	sys, err := sched.New(sched.Config{
		CPUs: 8, Gears: gears,
		TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy:    pol, Variant: sched.EASY, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "u", CPUs: 8, Jobs: []*workload.Job{
		// Empty machine: utilization 0 -> lowest gear.
		{ID: 1, Submit: 0, Runtime: 10000, Procs: 4, ReqTime: 10000, Beta: -1},
		// Now 4/8 busy = 0.5 -> a middle gear.
		{ID: 2, Submit: 1, Runtime: 10000, Procs: 2, ReqTime: 10000, Beta: -1},
		// 6/8 busy = 0.75 -> top gear.
		{ID: 3, Submit: 2, Runtime: 10000, Procs: 2, ReqTime: 10000, Beta: -1},
	}}
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if g := rec.gears[1]; g != gears.Lowest() {
		t.Errorf("job 1 gear = %v, want lowest", g)
	}
	// Utilization 0.5 maps mid-bracket; the exact gear depends on
	// rounding but must be strictly between the extremes.
	if g := rec.gears[2]; g == gears.Lowest() || g == gears.Top() {
		t.Errorf("job 2 gear = %v, want a middle gear", g)
	}
	if g := rec.gears[3]; g != gears.Top() {
		t.Errorf("job 3 gear = %v, want top", g)
	}
}

type gearCapture struct {
	gears map[int]dvfs.Gear
}

func (c *gearCapture) JobStarted(rs *sched.RunState, now float64) {
	if c.gears == nil {
		c.gears = map[int]dvfs.Gear{}
	}
	c.gears[rs.Job.ID] = rs.Gear
}
func (c *gearCapture) JobFinished(rs *sched.RunState, now float64) {}

// Regression: using the policy without Bind (anything that sidesteps the
// sched.New binder hook, e.g. hand-rolled runner wiring) used to crash
// with a bare nil dereference mid-run. It must fail fast with a message
// that names the fix.
func TestUtilizationDrivenWithoutBindFailsFast(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pol, err := NewUtilizationDriven(gears, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unbound policy did not fail")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "without a bound system") {
			t.Fatalf("panic = %v, want the unbound-policy diagnosis", r)
		}
	}()
	pol.ReserveGear(&workload.Job{ID: 1, Procs: 1, ReqTime: 10, Runtime: 5}, 0, 0, 0)
}
