// Package altpolicy implements comparison frequency-assignment policies
// from the paper's related work, so the BSLD-threshold algorithm can be
// judged against the obvious alternatives rather than only against the
// no-DVFS baseline.
package altpolicy

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// UtilizationDriven assigns gears from the instantaneous cluster
// utilization, the trigger Fan et al. investigate for warehouse-scale
// machines (related work §6): an idle machine runs new jobs at the lowest
// gear, a busy one at the top gear, linear in between. Unlike the paper's
// policy it looks at no per-job prediction, so nothing bounds the
// slowdown a reduced job may suffer — which is exactly the contrast the
// comparison is meant to expose.
type UtilizationDriven struct {
	Gears dvfs.GearSet
	// LowUtil and HighUtil bracket the mapping: utilization at or below
	// LowUtil selects the lowest gear, at or above HighUtil the top gear.
	LowUtil, HighUtil float64

	sys *sched.System
}

var (
	_ sched.GearPolicy      = (*UtilizationDriven)(nil)
	_ sched.PowerController = (*UtilizationDriven)(nil)
	_ sched.PolicyCloner    = (*UtilizationDriven)(nil)
)

// NewUtilizationDriven validates the bracket and returns the policy.
func NewUtilizationDriven(gears dvfs.GearSet, lowUtil, highUtil float64) (*UtilizationDriven, error) {
	if err := gears.Validate(); err != nil {
		return nil, err
	}
	if lowUtil < 0 || highUtil > 1 || lowUtil >= highUtil {
		return nil, fmt.Errorf("altpolicy: utilization bracket [%v,%v] invalid", lowUtil, highUtil)
	}
	return &UtilizationDriven{Gears: gears, LowUtil: lowUtil, HighUtil: highUtil}, nil
}

// Bind implements sched.PowerController: the policy reads live cluster
// state, so sched.New hands it the system before the run (the policy is
// auto-promoted to the controller seam).
func (p *UtilizationDriven) Bind(sys *sched.System) { p.sys = sys }

// ClonePolicy implements sched.PolicyCloner: the clone carries the same
// bracket and gear set but no system binding, so every execution can bind
// its own copy and concurrent runs never share the live-state pointer.
func (p *UtilizationDriven) ClonePolicy() sched.GearPolicy {
	return &UtilizationDriven{Gears: p.Gears, LowUtil: p.LowUtil, HighUtil: p.HighUtil}
}

// Name implements sched.GearPolicy.
func (p *UtilizationDriven) Name() string {
	return fmt.Sprintf("util(%g,%g)", p.LowUtil, p.HighUtil)
}

// target maps current utilization to a gear index.
func (p *UtilizationDriven) target() int {
	if p.sys == nil {
		// Fail fast with a diagnosis instead of a bare nil dereference:
		// the policy reads live cluster state, so it only works when
		// sched.New had the chance to call Bind.
		panic("altpolicy: UtilizationDriven used without a bound system: pass it as sched.Config.Policy (or runner.Spec.Policy) so sched.New invokes Bind before the run")
	}
	cl := p.sys.Cluster()
	util := float64(cl.Busy()) / float64(cl.Total())
	switch {
	case util <= p.LowUtil:
		return 0
	case util >= p.HighUtil:
		return len(p.Gears) - 1
	}
	frac := (util - p.LowUtil) / (p.HighUtil - p.LowUtil)
	idx := int(math.Round(frac * float64(len(p.Gears)-1)))
	if idx >= len(p.Gears) {
		idx = len(p.Gears) - 1
	}
	return idx
}

// ReserveGear implements sched.GearPolicy.
func (p *UtilizationDriven) ReserveGear(j *workload.Job, start, now float64, wqOthers int) dvfs.Gear {
	return p.Gears[p.target()]
}

// BackfillGear implements sched.GearPolicy: start from the
// utilization-selected gear and climb until the reservation is safe.
func (p *UtilizationDriven) BackfillGear(j *workload.Job, now float64, wqOthers int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	for i := p.target(); i < len(p.Gears); i++ {
		if feasible(p.Gears[i]) {
			return p.Gears[i], true
		}
	}
	return dvfs.Gear{}, false
}

// ControlPass implements sched.PowerController (no dynamic adjustment:
// the utilization reading happens per job decision, not per pass).
func (p *UtilizationDriven) ControlPass(sys *sched.System, now float64) {}
