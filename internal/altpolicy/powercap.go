package altpolicy

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
	"repro/internal/nodepower"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Default PI gains of the power-cap controller: a velocity-form loop on
// the normalized cap error. Tuned for the pass cadence of the paper's
// traces — responsive enough to pull a saturated cluster under the cap
// within a handful of scheduling epochs, damped enough not to oscillate
// across the whole gear range on single-job churn.
const (
	DefaultKp = 5
	DefaultKi = 0.05
)

// levelEps is the upward tolerance when quantizing the continuous level
// to a gear index. It absorbs float dust around exact error cancellation
// (draw == cap at full headroom) and is far below the one-gear quantum,
// so it never changes a deliberate control decision.
const levelEps = 1e-6

// errEps is the deadband on the normalized cap error: smaller errors are
// float dust from draw accumulation, not control signal.
const errEps = 1e-9

// PowerCap is a closed-loop power-capping controller in the style of
// Cerf et al.'s control-theoretic runtime (PAPERS.md): each scheduling
// pass it observes the cluster's tracked instantaneous draw (the online
// nodepower.Meter, O(1) per query), compares it against a configured
// cap, and actuates the gear distribution of the running jobs through
// sched.SetGear.
//
// The controlled variable is a continuous gear-ceiling level L in
// [0, top]: a velocity-form PI loop moves L on the normalized error
// e = (cap − draw)/cap, and actuation clamps every running job to gear
// index min(natural, floor(L)), where "natural" is the gear the
// per-job policy last chose — at start, or through a later dynamic
// boost — and is restored as headroom returns. With
// EcoOnly, only jobs carrying workload.Job.Eco are throttled —
// Angelelli et al.'s user-assisted Eco-Mode consent model.
//
// With the cap at or above the machine's peak draw the level saturates
// at the top and the controller never issues a gear switch, so the
// schedule is byte-identical to an uncontrolled run (pinned by the
// determinism tests).
type PowerCap struct {
	// Gears is the machine's gear set; PM the power model the meter
	// integrates under.
	Gears dvfs.GearSet
	PM    *dvfs.PowerModel
	// CapFrac expresses the cap as a fraction of the machine's maximum
	// draw (every processor active at the top gear). Must be in (0, 1].
	CapFrac float64
	// Kp and Ki are the PI gains on the normalized error; zero selects
	// the defaults.
	Kp, Ki float64
	// EcoOnly restricts actuation to jobs with the Eco flag.
	EcoOnly bool

	// Bound per run.
	sys   *sched.System
	meter *nodepower.Meter
	cap   float64 // absolute cap, CapFrac · CPUs · Active(top)

	// Controller state.
	level     float64 // continuous gear ceiling in [0, top index]
	prevErr   float64
	lastT     float64
	hasPrev   bool
	natural   map[int]int // job ID → latest externally-chosen gear index
	actuating bool        // inside our own actuation loop (see JobRegeared)
	atTop     bool        // the ceiling sat at the top index after the last pass

	// Steady-state accounting (Report).
	statT       float64 // time integrated into the stats
	drawSum     float64 // ∫ draw dt (pass-sampled, piecewise constant)
	overSum     float64 // ∫ max(0, draw − cap) dt
	overT       float64 // seconds with draw > cap
	peakDraw    float64
	lastDraw    float64
	actuations  int // SetGear calls issued
	passesTotal int
}

var (
	_ sched.PowerController  = (*PowerCap)(nil)
	_ sched.ControllerCloner = (*PowerCap)(nil)
	_ sched.Recorder         = (*PowerCap)(nil)
	_ sched.GearObserver     = (*PowerCap)(nil)
)

// NewPowerCap validates the configuration and returns the controller.
func NewPowerCap(gears dvfs.GearSet, pm *dvfs.PowerModel, capFrac, kp, ki float64, ecoOnly bool) (*PowerCap, error) {
	p := &PowerCap{Gears: gears, PM: pm, CapFrac: capFrac, Kp: kp, Ki: ki, EcoOnly: ecoOnly}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate reports the first problem with the configuration.
func (p *PowerCap) Validate() error {
	if err := p.Gears.Validate(); err != nil {
		return err
	}
	if p.PM == nil {
		return fmt.Errorf("altpolicy: PowerCap needs a power model")
	}
	if p.CapFrac <= 0 || p.CapFrac > 1 || math.IsNaN(p.CapFrac) {
		return fmt.Errorf("altpolicy: PowerCap.CapFrac %v out of (0, 1]", p.CapFrac)
	}
	if p.Kp < 0 || p.Ki < 0 {
		return fmt.Errorf("altpolicy: negative PI gains (Kp=%v, Ki=%v)", p.Kp, p.Ki)
	}
	return nil
}

// Name implements sched.PowerController.
func (p *PowerCap) Name() string {
	eco := ""
	if p.EcoOnly {
		eco = ",eco"
	}
	return fmt.Sprintf("powercap(%g%s)", p.CapFrac, eco)
}

// CloneController implements sched.ControllerCloner: the clone carries
// the configuration but none of the per-run state, so concurrent
// executions never share a meter or a control loop.
func (p *PowerCap) CloneController() sched.PowerController {
	return &PowerCap{Gears: p.Gears, PM: p.PM, CapFrac: p.CapFrac,
		Kp: p.Kp, Ki: p.Ki, EcoOnly: p.EcoOnly}
}

// Bind implements sched.PowerController: resolve the absolute cap from
// the machine size and start the loop at full headroom (the top gear
// ceiling), so an under-cap run never throttles.
func (p *PowerCap) Bind(sys *sched.System) {
	p.sys = sys
	p.meter = nodepower.NewMeter(sys.Cluster().Total(), p.PM)
	p.cap = p.CapFrac * float64(sys.Cluster().Total()) * p.PM.Active(p.Gears.Top())
	p.level = float64(len(p.Gears) - 1)
	p.natural = make(map[int]int)
}

// Meter exposes the controller's online accumulator (for reports and
// tests).
func (p *PowerCap) Meter() *nodepower.Meter { return p.meter }

// Cap is the absolute cap the controller regulates against.
func (p *PowerCap) Cap() float64 { return p.cap }

// gains resolves the configured PI gains with defaults applied.
func (p *PowerCap) gains() (kp, ki float64) {
	kp, ki = p.Kp, p.Ki
	if kp == 0 {
		kp = DefaultKp
	}
	if ki == 0 {
		ki = DefaultKi
	}
	return kp, ki
}

// JobStarted implements sched.Recorder: feed the meter and pin the
// job's policy-chosen ("natural") gear, the ceiling actuation restores
// toward. Keyed by job ID because the scheduler recycles RunState
// values after completion.
func (p *PowerCap) JobStarted(rs *sched.RunState, now float64) {
	p.meter.JobStarted(rs, now)
	if idx := p.Gears.Index(rs.Gear); idx >= 0 {
		p.natural[rs.Job.ID] = idx
	}
}

// JobFinished implements sched.Recorder.
func (p *PowerCap) JobFinished(rs *sched.RunState, now float64) {
	p.meter.JobFinished(rs, now)
	delete(p.natural, rs.Job.ID)
}

// JobRegeared implements sched.GearObserver. External gear switches —
// the per-job policy's dynamic boost regearing a running job — redefine
// the job's natural gear, so the controller clamps relative to (and
// restores toward) whatever the policy currently wants. The controller's
// own actuations also flow through this callback; they must not, so they
// are masked out by the actuating flag.
func (p *PowerCap) JobRegeared(rs *sched.RunState, old dvfs.Gear, now float64) {
	p.meter.JobRegeared(rs, old, now)
	if p.actuating {
		return
	}
	if idx := p.Gears.Index(rs.Gear); idx >= 0 {
		p.natural[rs.Job.ID] = idx
	}
}

// accumulate integrates the pass-sampled draw into the steady-state
// statistics: the previous sample held from lastT to now.
func (p *PowerCap) accumulate(now float64) {
	if p.hasPrev && now > p.lastT {
		dt := now - p.lastT
		p.statT += dt
		p.drawSum += p.lastDraw * dt
		if p.lastDraw > p.cap {
			p.overSum += (p.lastDraw - p.cap) * dt
			p.overT += dt
		}
	}
}

// ControlPass implements sched.PowerController: observe the tracked
// draw, move the gear-ceiling level under the velocity-form PI law, and
// clamp running jobs to it. Clamping the level into [0, top] doubles as
// anti-windup — the integral action cannot accumulate beyond the
// actuator's range.
func (p *PowerCap) ControlPass(sys *sched.System, now float64) {
	p.passesTotal++
	p.meter.Advance(now)
	draw := p.meter.Draw()
	p.accumulate(now)

	e := (p.cap - draw) / p.cap
	if math.Abs(e) <= errEps {
		// Deadband: a fully-loaded machine at exactly the cap accumulates
		// its draw as a sum of per-job terms while the cap is a single
		// product, so e carries ±ulp dust. A normalized overshoot this
		// small is physically meaningless and must not trip the over-cap
		// response.
		e = 0
	}
	kp, ki := p.gains()
	prev := p.level
	if p.hasPrev {
		dt := now - p.lastT
		p.level += kp*(e-p.prevErr) + ki*e*dt
	} else {
		p.level += kp * e
	}
	if e >= 0 && p.level < prev {
		// At or under the cap nothing needs throttling, so the ceiling
		// never moves down: a load surge that stays within the cap would
		// otherwise kick the velocity-form P term (large negative Δe) and
		// throttle a compliant cluster. Overshoot (e < 0) gets the full
		// PI response, including the fast P kick in both directions.
		p.level = prev
	}
	top := float64(len(p.Gears) - 1)
	if p.level > top {
		p.level = top
	} else if p.level < 0 {
		p.level = 0
	}
	p.prevErr, p.lastT, p.hasPrev = e, now, true

	// Quantize the ceiling with a small upward tolerance: at full
	// headroom accumulated float dust in the draw must not let the level
	// dip an ulp below the top index and floor into a spurious one-gear
	// throttle of the whole machine.
	ceil := int(p.level + levelEps)
	topIdx := len(p.Gears) - 1
	if ceil != topIdx || !p.atTop {
		// Walk the running jobs only when the ceiling can bind: with the
		// ceiling at the top index now AND after the previous pass, every
		// running job already sits at its natural gear (only this loop ever
		// lowers a job below natural, and doing so needs a sub-top ceiling),
		// so the walk is provably a no-op. Skipping it keeps an uncapped or
		// under-cap controller O(1) per pass instead of O(running jobs).
		p.actuating = true
		for _, rs := range sys.Running() {
			if p.EcoOnly && !rs.Job.Eco {
				continue
			}
			nat, ok := p.natural[rs.Job.ID]
			if !ok {
				continue
			}
			want := nat
			if ceil < want {
				want = ceil
			}
			if g := p.Gears[want]; g != rs.Gear {
				sys.SetGear(rs, g, now)
				p.actuations++
			}
		}
		p.actuating = false
	}
	p.atTop = ceil == topIdx

	draw = p.meter.Draw() // post-actuation draw holds until the next pass
	if draw > p.peakDraw {
		p.peakDraw = draw
	}
	p.lastDraw = draw
}

// CapReport summarizes how the controller tracked its cap over a run.
// The draw integrals are pass-sampled: the draw observed at the end of
// each scheduling pass is held constant until the next one, which is
// exact for the active component (gears only change inside passes) and
// approximates idle-floor changes between passes.
type CapReport struct {
	Cap        float64 // absolute cap
	AvgDraw    float64 // time-averaged tracked draw
	PeakDraw   float64 // maximum post-actuation draw observed
	OverFrac   float64 // fraction of time the draw exceeded the cap
	OverEnergy float64 // ∫ max(0, draw − cap) dt
	Actuations int     // gear switches the controller issued
	Passes     int     // control passes run
}

// Report returns the steady-state cap-tracking statistics.
func (p *PowerCap) Report() CapReport {
	r := CapReport{
		Cap:        p.cap,
		PeakDraw:   p.peakDraw,
		OverEnergy: p.overSum,
		Actuations: p.actuations,
		Passes:     p.passesTotal,
	}
	if p.statT > 0 {
		r.AvgDraw = p.drawSum / p.statT
		r.OverFrac = p.overT / p.statT
	}
	return r
}

// EcoShare reports the fraction of jobs in tr carrying the Eco flag,
// a convenience for sizing eco-mode experiments.
func EcoShare(tr *workload.Trace) float64 {
	if len(tr.Jobs) == 0 {
		return 0
	}
	n := 0
	for _, j := range tr.Jobs {
		if j.Eco {
			n++
		}
	}
	return float64(n) / float64(len(tr.Jobs))
}
