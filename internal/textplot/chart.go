package textplot

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders one horizontal bar per (group, series) pair, scaled to
// width characters at the maximum value. data is indexed [group][series].
// It reproduces the grouped-bar figures of the paper (Figures 3, 4, 5).
func BarChart(title string, groups, series []string, data [][]float64, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	for _, row := range data {
		for _, v := range row {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	labelW := 0
	for _, s := range series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	for g, group := range groups {
		fmt.Fprintf(&b, "%s\n", group)
		if g >= len(data) {
			continue
		}
		for i, v := range data[g] {
			name := ""
			if i < len(series) {
				name = series[i]
			}
			n := int(math.Round(v / maxVal * float64(width)))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s |%s %.4g\n", labelW, name, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}

// LineChart plots one or more named series on a shared character grid of
// the given width and height, used for the wait-time trace of Figure 6.
// Each series is a list of (x, y) points; x and y ranges are shared.
func LineChart(title string, names []string, series [][][2]float64, width, height int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range series {
		for _, p := range s {
			minX = math.Min(minX, p[0])
			maxX = math.Max(maxX, p[0])
			maxY = math.Max(maxY, p[1])
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		return b.String() + "(no data)\n"
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s {
			col := int((p[0] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p[1]-minY)/(maxY-minY)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	for i, row := range grid {
		yVal := maxY - (maxY-minY)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%10.0f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.0f%*.0f\n", "", width/2, minX, width-width/2, maxX)
	for i, n := range names {
		fmt.Fprintf(&b, "  %c = %s\n", marks[i%len(marks)], n)
	}
	return b.String()
}
