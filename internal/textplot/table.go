// Package textplot renders the reproduction's tables and figures as
// aligned text tables, ASCII bar charts and line charts, and CSV files, so
// every artifact of the paper can be regenerated on a terminal without
// plotting dependencies.
package textplot

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render lays the table out with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				if i == 0 {
					fmt.Fprintf(&b, "%-*s", widths[i], c)
				} else {
					fmt.Fprintf(&b, "%*s", widths[i], c)
				}
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV serializes the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
