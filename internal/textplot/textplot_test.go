package textplot

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := Table{
		Title:  "T",
		Header: []string{"name", "value"},
	}
	tb.AddRow("a", "1")
	tb.AddRow("longer", "22")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[2], "name") || !strings.Contains(lines[2], "value") {
		t.Errorf("header line = %q", lines[2])
	}
	// All data lines must be equally wide (alignment).
	if len(lines[4]) != len(lines[5]) {
		t.Errorf("rows not aligned: %q vs %q", lines[4], lines[5])
	}
}

func TestTableNote(t *testing.T) {
	tb := Table{Header: []string{"x"}, Note: "hello"}
	if !strings.Contains(tb.Render(), "note: hello") {
		t.Error("note missing")
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "x,y")
	tb.AddRow(`q"z`, "2")
	csv := tb.CSV()
	want := "a,b\n1,\"x,y\"\n\"q\"\"z\",2\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("B", []string{"g1", "g2"}, []string{"s1", "s2"},
		[][]float64{{1, 2}, {4, 0}}, 20)
	if !strings.Contains(out, "g1") || !strings.Contains(out, "g2") {
		t.Error("groups missing")
	}
	// Largest value gets the full width.
	if !strings.Contains(out, strings.Repeat("#", 20)+" 4") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "| 0") {
		t.Errorf("zero bar should be empty:\n%s", out)
	}
}

func TestBarChartEmptyData(t *testing.T) {
	out := BarChart("B", []string{"g"}, []string{"s"}, [][]float64{{0}}, 10)
	if out == "" {
		t.Error("empty output")
	}
}

func TestLineChart(t *testing.T) {
	s1 := [][2]float64{{0, 0}, {50, 5}, {100, 10}}
	s2 := [][2]float64{{0, 10}, {100, 0}}
	out := LineChart("L", []string{"up", "down"}, [][][2]float64{s1, s2}, 40, 8)
	if !strings.Contains(out, "* = up") || !strings.Contains(out, "o = down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("marks missing")
	}
}

func TestLineChartNoData(t *testing.T) {
	out := LineChart("L", nil, nil, 10, 5)
	if !strings.Contains(out, "no data") {
		t.Errorf("expected no-data marker, got %q", out)
	}
}
