// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation (Tables 1–3, Figures 3–9), runs the
// underlying simulation grid in parallel with caching, and renders the
// same rows and series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// Config identifies one simulation cell of the evaluation grid.
type Config struct {
	Workload string // preset name (CTC, SDSC, ...)
	// BSLDThr is the BSLD threshold; 0 selects the no-DVFS baseline.
	BSLDThr float64
	// WQThr is the wait-queue threshold (core.NoWQLimit = "NO LIMIT");
	// ignored for baselines.
	WQThr int
	// SizeFactor scales the machine (1.0 = original system size).
	SizeFactor float64
}

// baseline reports whether the cell runs without DVFS.
func (c Config) baseline() bool { return c.BSLDThr == 0 }

// label is the column caption used in tables ("1.5/4", "2/NO", "noDVFS");
// it shares the sweep cell caption so tables and CSV rows never diverge.
func (c Config) label() string {
	return sweep.PolicyConfig{BSLDThr: c.BSLDThr, WQThr: c.WQThr}.Label()
}

// Cell is one simulated grid point.
type Cell struct {
	Config
	Results metrics.Results
	// WaitSeries supports the Figure 6 trace; retained for every cell.
	WaitSeries []metrics.WaitPoint
	CPUs       int
}

// Suite lazily runs and caches grid cells. It is safe for concurrent use.
type Suite struct {
	jobs   int  // trace length (paper: 5000); smaller for quick tests
	stream bool // stream workloads per cell instead of caching traces

	// comp compiles cells into scenarios; its arena cache shares each
	// workload (generated once when materializing, one stream prototype
	// cloned per run when streaming) across every cell of the suite.
	comp scenario.Compiler

	mu     sync.Mutex
	traces map[string]*workload.Trace // extension experiments' materialized copies
	cells  map[Config]*Cell
}

// NewSuite returns a suite simulating jobs-long trace segments; jobs <= 0
// selects the paper's 5000.
func NewSuite(jobs int) *Suite {
	if jobs <= 0 {
		jobs = wgen.StandardJobs
	}
	return &Suite{
		jobs:   jobs,
		traces: make(map[string]*workload.Trace),
		cells:  make(map[Config]*Cell),
	}
}

// NewStreamingSuite returns a suite whose cells stream their workloads:
// every simulation gets an independent lazily-generating source instead
// of a shared cached trace, so the suite's memory is bounded by cell
// results, not trace length. Results are bit-identical to NewSuite's.
func NewStreamingSuite(jobs int) *Suite {
	s := NewSuite(jobs)
	s.stream = true
	return s
}

// Jobs returns the configured trace segment length.
func (s *Suite) Jobs() int { return s.jobs }

// trace returns (generating once) the workload trace for a preset.
func (s *Suite) trace(name string) (*workload.Trace, error) {
	s.mu.Lock()
	tr, ok := s.traces[name]
	s.mu.Unlock()
	if ok {
		return tr, nil
	}
	model, err := wgen.Preset(name)
	if err != nil {
		return nil, err
	}
	model.Jobs = s.jobs
	tr, err = wgen.Generate(model)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.traces[name] = tr
	s.mu.Unlock()
	return tr, nil
}

// Cell runs (or returns the cached) simulation for cfg.
func (s *Suite) Cell(cfg Config) (*Cell, error) {
	if cfg.SizeFactor == 0 {
		cfg.SizeFactor = 1
	}
	s.mu.Lock()
	if c, ok := s.cells[cfg]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()

	sc, err := s.comp.Compile(scenario.Spec{
		Workload:      cfg.Workload,
		Jobs:          s.jobs,
		Materialize:   !s.stream,
		Policy:        scenario.PolicyConfig{BSLDThr: cfg.BSLDThr, WQThr: cfg.WQThr},
		SizeFactor:    cfg.SizeFactor,
		KeepCollector: true,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: cell %+v: %w", cfg, err)
	}
	out, err := sc.Execute()
	if err != nil {
		return nil, fmt.Errorf("experiments: cell %+v: %w", cfg, err)
	}
	cell := &Cell{
		Config:     cfg,
		Results:    out.Results,
		WaitSeries: out.Collector.WaitSeries(),
		CPUs:       out.CPUs,
	}
	s.mu.Lock()
	// Another goroutine may have raced us; keep the first stored cell so
	// callers always observe one canonical result (runs are deterministic
	// anyway).
	if prior, ok := s.cells[cfg]; ok {
		cell = prior
	} else {
		s.cells[cfg] = cell
	}
	s.mu.Unlock()
	return cell, nil
}

// Prefetch runs the given cells across the sweep pool (`workers`
// goroutines; <=0 selects all cores), returning the first error. It warms
// the cache so subsequent experiment builders are pure formatting.
func (s *Suite) Prefetch(cfgs []Config, workers int) error {
	// Deduplicate so each distinct simulation runs once.
	seen := make(map[Config]bool)
	var uniq []Config
	for _, c := range cfgs {
		if c.SizeFactor == 0 {
			c.SizeFactor = 1
		}
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	// No serial trace warming is needed: the compiler's arena cache
	// resolves each distinct workload exactly once even when concurrent
	// cells race on it.
	pool := &sweep.Pool{Workers: workers}
	return pool.ForEach(context.Background(), len(uniq), func(i int) error {
		_, err := s.Cell(uniq[i])
		return err
	})
}

// Workloads are the five paper traces in presentation order.
func Workloads() []string {
	return []string{"CTC", "SDSC", "SDSCBlue", "LLNLThunder", "LLNLAtlas"}
}

// BSLDThresholds are the paper's BSLDthreshold values.
func BSLDThresholds() []float64 { return []float64{1.5, 2, 3} }

// WQThresholds are the paper's WQthreshold values (0, 4, 16, NO LIMIT).
func WQThresholds() []int { return []int{0, 4, 16, core.NoWQLimit} }

// SizeFactors are the enlarged-system scales of Figures 7–9: the original
// size plus 10%, 20%, 50%, 75%, 100% and 125% increases.
func SizeFactors() []float64 { return []float64{1.0, 1.1, 1.2, 1.5, 1.75, 2.0, 2.25} }

// GridConfigs enumerates every cell the full reproduction needs — the
// baselines plus the two declarative paper sweeps — so one Prefetch call
// warms everything.
func GridConfigs() []Config {
	var cfgs []Config
	// Baselines (Table 1, normalization denominators).
	for _, w := range Workloads() {
		cfgs = append(cfgs, Config{Workload: w, SizeFactor: 1})
	}
	// Figures 3–5 grid, then Figures 7–9 / Table 3 enlarged systems.
	cfgs = append(cfgs, configsOf(PaperGrid())...)
	cfgs = append(cfgs, configsOf(EnlargedGrid())...)
	return cfgs
}
