package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	sharedOnce  sync.Once
	sharedSuite *Suite
)

// testSuite returns one shared suite simulating shortened traces; cells
// are cached across all tests in the package, so the grid runs once.
func testSuite() *Suite {
	sharedOnce.Do(func() { sharedSuite = NewSuite(700) })
	return sharedSuite
}

func TestSuiteCellCaching(t *testing.T) {
	s := testSuite()
	cfg := Config{Workload: "CTC", BSLDThr: 2, WQThr: 4}
	a, err := s.Cell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Cell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cell not cached")
	}
	// SizeFactor 0 normalizes to 1.
	c, err := s.Cell(Config{Workload: "CTC", BSLDThr: 2, WQThr: 4, SizeFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("SizeFactor 0 and 1 should share a cell")
	}
}

func TestSuiteUnknownWorkload(t *testing.T) {
	if _, err := testSuite().Cell(Config{Workload: "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPrefetchParallelMatchesSerial(t *testing.T) {
	cfgs := []Config{
		{Workload: "CTC"},
		{Workload: "CTC", BSLDThr: 2, WQThr: 0},
		{Workload: "CTC", BSLDThr: 2, WQThr: core.NoWQLimit},
		{Workload: "SDSC"},
		{Workload: "SDSC", BSLDThr: 2, WQThr: 0},
	}
	par := testSuite()
	if err := par.Prefetch(cfgs, 4); err != nil {
		t.Fatal(err)
	}
	ser := testSuite()
	if err := ser.Prefetch(cfgs, 1); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		a, _ := par.Cell(cfg)
		b, _ := ser.Cell(cfg)
		if a.Results != b.Results {
			t.Errorf("parallel and serial results differ for %+v", cfg)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	s := testSuite()
	tb, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	if tb.Rows[0][0] != "CTC" || tb.Rows[4][0] != "LLNLAtlas" {
		t.Error("workload order wrong")
	}
	out := tb.Render()
	if !strings.Contains(out, "4.66") || !strings.Contains(out, "24.91") {
		t.Error("paper reference values missing from Table 1")
	}
}

func TestTable2Values(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 6 {
		t.Fatalf("gear rows = %d, want 6", len(tb.Rows))
	}
	if tb.Rows[0][0] != "0.8" || tb.Rows[5][0] != "2.3" {
		t.Error("gear frequencies wrong")
	}
	if !strings.Contains(tb.Note, "21") {
		t.Errorf("idle-fraction note missing: %q", tb.Note)
	}
}

func TestFig3EnergyNeverAboveOneForIdleZero(t *testing.T) {
	s := testSuite()
	tb, err := Fig3(s, EnergyIdleZero)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 15 { // 5 workloads × 3 thresholds
		t.Fatalf("rows = %d, want 15", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[2:] {
			v := parsePct(t, cell)
			if v > 100.0001 {
				t.Errorf("computational energy above baseline: %s in row %v", cell, row)
			}
			if v <= 0 {
				t.Errorf("non-positive energy: %s", cell)
			}
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%f%%", &v); err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}

func sscanf(s string, v *float64) (int, error) { return fmt.Sscanf(s, "%f", v) }
func sscanInt(s string, v *int) (int, error)   { return fmt.Sscanf(s, "%d", v) }

func TestFig4CountsWithinJobRange(t *testing.T) {
	s := testSuite()
	tb, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		for _, cell := range row[2:] {
			var n int
			if _, err := sscanInt(cell, &n); err != nil {
				t.Fatalf("bad count %q", cell)
			}
			if n < 0 || n > s.Jobs() {
				t.Errorf("reduced jobs %d out of [0,%d]", n, s.Jobs())
			}
		}
	}
}

func TestFig5BSLDAtLeastOne(t *testing.T) {
	s := testSuite()
	tb, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		for _, cell := range row[2:] {
			var v float64
			if _, err := sscanf(cell, &v); err != nil {
				t.Fatalf("bad BSLD %q", cell)
			}
			if v < 1 {
				t.Errorf("BSLD %v < 1", v)
			}
		}
	}
}

func TestFig6(t *testing.T) {
	s := testSuite()
	chart, tb, err := Fig6(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "DVFS_2_16") {
		t.Error("chart legend missing")
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("summary rows = %d", len(tb.Rows))
	}
}

func TestFig7CompEnergyMonotoneInSize(t *testing.T) {
	s := testSuite()
	tb, err := Fig7(s, EnergyIdleZero)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		prev := 1e18
		for _, cell := range row[1:] {
			v := parsePct(t, cell)
			// Allow small non-monotonic wiggle from discreteness.
			if v > prev*1.05 {
				t.Errorf("%s: computational energy rose with system size: %v after %v", row[0], v, prev)
			}
			prev = v
		}
	}
}

func TestFig9Shape(t *testing.T) {
	s := testSuite()
	tb, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 { // 5 workloads × 2 WQ modes
		t.Fatalf("rows = %d, want 10", len(tb.Rows))
	}
}

func TestTable3HasPaperColumns(t *testing.T) {
	s := testSuite()
	tb, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Header) != 11 {
		t.Fatalf("header = %v", tb.Header)
	}
	// SDSC paper wait 36001 must appear.
	found := false
	for _, row := range tb.Rows {
		for _, c := range row {
			if c == "36001" {
				found = true
			}
		}
	}
	if !found {
		t.Error("paper Table 3 values missing")
	}
}

func TestRunAllWritesCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in short mode")
	}
	s := NewSuite(300)
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := RunAll(s, &buf, dir, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Table 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 14 { // 13 artifact tables + fig6_series
		var names []string
		for _, f := range files {
			names = append(names, f.Name())
		}
		t.Errorf("csv files = %d (%v), want 14", len(files), names)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "Workload,") {
		t.Errorf("table1.csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestWriteSVGs(t *testing.T) {
	s := testSuite()
	dir := t.TempDir()
	if err := WriteSVGs(s, dir); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 11 {
		var names []string
		for _, f := range files {
			names = append(names, f.Name())
		}
		t.Errorf("svg files = %d (%v), want 11", len(files), names)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("fig6.svg is not an SVG document")
	}
}
