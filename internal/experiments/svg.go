package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/svgplot"
)

// NamedSVG is one rendered figure document.
type NamedSVG struct {
	Name string
	Doc  string
}

// BuildSVGs renders every figure of the evaluation as SVG documents, in a
// stable order. The suite's grid must already be warm.
func BuildSVGs(s *Suite) ([]NamedSVG, error) {
	order := []string{
		"fig3_idle0.svg", "fig3_idlelow.svg", "fig4.svg", "fig5.svg", "fig6.svg",
		"fig7_idle0.svg", "fig7_idlelow.svg", "fig8_idle0.svg", "fig8_idlelow.svg",
		"fig9_wq0.svg", "fig9_wqno.svg",
	}
	builders := s.svgBuilders()
	out := make([]NamedSVG, 0, len(order))
	for _, name := range order {
		doc, err := builders[name]()
		if err != nil {
			return nil, fmt.Errorf("experiments: svg %s: %w", name, err)
		}
		out = append(out, NamedSVG{Name: name, Doc: doc})
	}
	return out, nil
}

// WriteSVGs renders every figure of the evaluation as an SVG document in
// dir, complementing the text tables and CSV files. The suite's grid must
// already be warm (RunAll prefetches it).
func WriteSVGs(s *Suite, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	svgs, err := BuildSVGs(s)
	if err != nil {
		return err
	}
	for _, sv := range svgs {
		if err := os.WriteFile(filepath.Join(dir, sv.Name), []byte(sv.Doc), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// svgBuilders maps figure file names to their builders.
func (s *Suite) svgBuilders() map[string]func() (string, error) {
	return map[string]func() (string, error){
		"fig3_idle0.svg":   func() (string, error) { return s.svgGrid("Figure 3 (idle=0): normalized energy %", EnergyIdleZero) },
		"fig3_idlelow.svg": func() (string, error) { return s.svgGrid("Figure 3 (idle=low): normalized energy %", EnergyIdleLow) },
		"fig4.svg":         s.svgFig4,
		"fig5.svg":         s.svgFig5,
		"fig6.svg":         s.svgFig6,
		"fig7_idle0.svg":   func() (string, error) { return s.svgEnlarged("Figure 7 (idle=0): WQ=0", 0, EnergyIdleZero) },
		"fig7_idlelow.svg": func() (string, error) { return s.svgEnlarged("Figure 7 (idle=low): WQ=0", 0, EnergyIdleLow) },
		"fig8_idle0.svg": func() (string, error) {
			return s.svgEnlarged("Figure 8 (idle=0): WQ=NO", core.NoWQLimit, EnergyIdleZero)
		},
		"fig8_idlelow.svg": func() (string, error) {
			return s.svgEnlarged("Figure 8 (idle=low): WQ=NO", core.NoWQLimit, EnergyIdleLow)
		},
		"fig9_wq0.svg":  func() (string, error) { return s.svgFig9("Figure 9: average BSLD, WQ=0", 0) },
		"fig9_wqno.svg": func() (string, error) { return s.svgFig9("Figure 9: average BSLD, WQ=NO", core.NoWQLimit) },
	}
}

// gridValues collects the Figures 3–5 grid as numeric data: one group per
// (workload, threshold), one series per WQ limit.
func (s *Suite) gridValues(value func(c, base *Cell) float64) (groups, series []string, data [][]float64, err error) {
	series = []string{"WQ 0", "WQ 4", "WQ 16", "WQ NO"}
	for _, w := range Workloads() {
		base, err := s.baselineCell(w)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, thr := range BSLDThresholds() {
			groups = append(groups, fmt.Sprintf("%s %g", w, thr))
			row := make([]float64, 0, len(WQThresholds()))
			for _, wq := range WQThresholds() {
				c, err := s.Cell(Config{Workload: w, BSLDThr: thr, WQThr: wq, SizeFactor: 1})
				if err != nil {
					return nil, nil, nil, err
				}
				row = append(row, value(c, base))
			}
			data = append(data, row)
		}
	}
	return groups, series, data, nil
}

func (s *Suite) svgGrid(title string, mode EnergyMode) (string, error) {
	groups, series, data, err := s.gridValues(func(c, base *Cell) float64 {
		return 100 * mode.energy(c) / mode.energy(base)
	})
	if err != nil {
		return "", err
	}
	return svgplot.BarChart(title, "energy (% of no-DVFS)", groups, series, data), nil
}

func (s *Suite) svgFig4() (string, error) {
	groups, series, data, err := s.gridValues(func(c, _ *Cell) float64 {
		return float64(c.Results.ReducedJobs)
	})
	if err != nil {
		return "", err
	}
	return svgplot.BarChart("Figure 4: jobs run at reduced frequency", "jobs", groups, series, data), nil
}

func (s *Suite) svgFig5() (string, error) {
	groups, series, data, err := s.gridValues(func(c, _ *Cell) float64 {
		return c.Results.AvgBSLD
	})
	if err != nil {
		return "", err
	}
	return svgplot.BarChart("Figure 5: average BSLD", "BSLD", groups, series, data), nil
}

func (s *Suite) svgFig6() (string, error) {
	origCells, dvfsCells, err := Fig6Series(s)
	if err != nil {
		return "", err
	}
	sample := func(c *Cell) [][2]float64 {
		pts := c.WaitSeries
		step := len(pts)/400 + 1
		out := make([][2]float64, 0, len(pts)/step+1)
		for i := 0; i < len(pts); i += step {
			out = append(out, [2]float64{pts[i].Submit, pts[i].Wait})
		}
		return out
	}
	return svgplot.LineChart("Figure 6: SDSCBlue per-job wait time", "submit time (s)", "wait (s)",
		[]string{"Orig", "DVFS_2_16"},
		[][][2]float64{sample(origCells[0]), sample(dvfsCells[0])}), nil
}

func (s *Suite) svgEnlarged(title string, wq int, mode EnergyMode) (string, error) {
	var series [][][2]float64
	for _, w := range Workloads() {
		base, err := s.baselineCell(w)
		if err != nil {
			return "", err
		}
		var pts [][2]float64
		for _, sf := range SizeFactors() {
			c, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: wq, SizeFactor: sf})
			if err != nil {
				return "", err
			}
			pts = append(pts, [2]float64{(sf - 1) * 100, 100 * mode.energy(c) / mode.energy(base)})
		}
		series = append(series, pts)
	}
	return svgplot.LineChart(title, "system size increase (%)", "energy (% of orig no-DVFS)",
		Workloads(), series), nil
}

func (s *Suite) svgFig9(title string, wq int) (string, error) {
	var series [][][2]float64
	for _, w := range Workloads() {
		var pts [][2]float64
		for _, sf := range SizeFactors() {
			c, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: wq, SizeFactor: sf})
			if err != nil {
				return "", err
			}
			pts = append(pts, [2]float64{(sf - 1) * 100, c.Results.AvgBSLD})
		}
		series = append(series, pts)
	}
	return svgplot.LineChart(title, "system size increase (%)", "average BSLD",
		Workloads(), series), nil
}
