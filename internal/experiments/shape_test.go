package experiments

// Shape assertions: the qualitative results of the paper (DESIGN.md §6),
// checked on the shared shortened grid. These are the tests that fail if
// a change breaks the reproduction rather than just the plumbing.

import (
	"testing"

	"repro/internal/core"
)

func cellOf(t *testing.T, cfg Config) *Cell {
	t.Helper()
	c, err := testSuite().Cell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Shape 1: computational energy never rises above the no-DVFS baseline
// (already asserted table-wide in TestFig3EnergyNeverAboveOneForIdleZero)
// and the saturated SDSC workload saves the least at the paper's central
// setting.
func TestShapeSDSCSavesLeast(t *testing.T) {
	savings := map[string]float64{}
	for _, w := range Workloads() {
		base := cellOf(t, Config{Workload: w})
		c := cellOf(t, Config{Workload: w, BSLDThr: 2, WQThr: core.NoWQLimit})
		savings[w] = 1 - c.Results.CompEnergy/base.Results.CompEnergy
	}
	for _, w := range Workloads() {
		if w == "SDSC" {
			continue
		}
		if savings["SDSC"] > savings[w] {
			t.Errorf("SDSC saves %.1f%% > %s's %.1f%% — saturated workload should save least",
				100*savings["SDSC"], w, 100*savings[w])
		}
	}
}

// Shape 2: for fixed BSLDthreshold, removing the wait-queue limit saves at
// least as much energy as the strictest limit.
func TestShapeWQRelaxationSaves(t *testing.T) {
	for _, w := range Workloads() {
		for _, thr := range BSLDThresholds() {
			strict := cellOf(t, Config{Workload: w, BSLDThr: thr, WQThr: 0})
			loose := cellOf(t, Config{Workload: w, BSLDThr: thr, WQThr: core.NoWQLimit})
			if loose.Results.CompEnergy > strict.Results.CompEnergy*1.02 {
				t.Errorf("%s thr=%g: WQ=NO energy %.4g above WQ=0 energy %.4g",
					w, thr, loose.Results.CompEnergy, strict.Results.CompEnergy)
			}
		}
	}
}

// Shape 3: frequency scaling does not improve performance — average BSLD
// under any policy setting is at least the baseline's (tiny tolerance for
// schedule reshuffling artifacts).
func TestShapeDVFSWorsensBSLD(t *testing.T) {
	for _, w := range Workloads() {
		base := cellOf(t, Config{Workload: w})
		for _, thr := range BSLDThresholds() {
			for _, wq := range WQThresholds() {
				c := cellOf(t, Config{Workload: w, BSLDThr: thr, WQThr: wq})
				if c.Results.AvgBSLD < base.Results.AvgBSLD*0.90 {
					t.Errorf("%s (%g,%d): avg BSLD %.2f markedly below baseline %.2f",
						w, thr, wq, c.Results.AvgBSLD, base.Results.AvgBSLD)
				}
			}
		}
	}
}

// Shape 4: enlarged systems — at the largest size, computational energy is
// well below the original and average BSLD is no worse.
func TestShapeEnlargementHelps(t *testing.T) {
	for _, w := range Workloads() {
		for _, wq := range []int{0, core.NoWQLimit} {
			base := cellOf(t, Config{Workload: w})
			orig := cellOf(t, Config{Workload: w, BSLDThr: 2, WQThr: wq, SizeFactor: 1})
			big := cellOf(t, Config{Workload: w, BSLDThr: 2, WQThr: wq, SizeFactor: 2.25})
			if big.Results.CompEnergy >= orig.Results.CompEnergy {
				t.Errorf("%s wq=%d: +125%% system comp energy %.4g not below original %.4g",
					w, wq, big.Results.CompEnergy, orig.Results.CompEnergy)
			}
			if big.Results.AvgBSLD > orig.Results.AvgBSLD*1.05 {
				t.Errorf("%s wq=%d: +125%% system BSLD %.2f worse than original %.2f",
					w, wq, big.Results.AvgBSLD, orig.Results.AvgBSLD)
			}
			// The paper's dimensioning pitch: bigger machine + DVFS at or
			// below the original baseline's energy with sane performance.
			if big.Results.CompEnergy >= base.Results.CompEnergy {
				t.Errorf("%s wq=%d: enlarged comp energy above no-DVFS baseline", w, wq)
			}
		}
	}
}

// Shape 5: the Eidle=low accounting eventually punishes enlargement — the
// largest machine is never the energy minimum for every workload (idle
// power of the extra processors wins at some point).
func TestShapeIdleLowInteriorMinimum(t *testing.T) {
	risingTail := 0
	for _, w := range Workloads() {
		var min, last float64
		for i, sf := range SizeFactors() {
			c := cellOf(t, Config{Workload: w, BSLDThr: 2, WQThr: core.NoWQLimit, SizeFactor: sf})
			e := c.Results.TotalEnergyLow
			if i == 0 || e < min {
				min = e
			}
			last = e
		}
		if last > min*1.01 {
			risingTail++
		}
	}
	if risingTail < 3 {
		t.Errorf("Eidle=low rose at +125%% for only %d of 5 workloads; expected the interior-minimum shape", risingTail)
	}
}

// Shape 6: the Figure 4 non-monotonicity — at least one workload reduces
// fewer jobs at a higher BSLD threshold (the paper highlights Thunder).
func TestShapeReducedJobsNonMonotone(t *testing.T) {
	found := false
	for _, w := range Workloads() {
		for _, wq := range WQThresholds() {
			lo := cellOf(t, Config{Workload: w, BSLDThr: 1.5, WQThr: wq})
			hi := cellOf(t, Config{Workload: w, BSLDThr: 2, WQThr: wq})
			if hi.Results.ReducedJobs < lo.Results.ReducedJobs {
				found = true
			}
		}
	}
	if !found {
		t.Error("no workload shows fewer reduced jobs at a higher threshold; Figure 4's key observation is gone")
	}
}

// The programmatic checklist must pass on the shared grid, and every
// check carries evidence text.
func TestRunChecksAllPass(t *testing.T) {
	checks, err := RunChecks(testSuite())
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 8 {
		t.Fatalf("checks = %d, want >= 8", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("check failed: %s (%s)", c.Name, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("check %q has no evidence", c.Name)
		}
	}
}
