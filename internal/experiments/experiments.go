package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/sweep"
	"repro/internal/textplot"
)

// EnergyMode selects between the paper's two energy accountings.
type EnergyMode int

const (
	// EnergyIdleZero is "computational energy": idle processors dissipate
	// no power.
	EnergyIdleZero EnergyMode = iota
	// EnergyIdleLow charges idle processors the lowest-gear idle power.
	EnergyIdleLow
)

func (m EnergyMode) String() string {
	if m == EnergyIdleZero {
		return "idle=0"
	}
	return "idle=low"
}

// energy extracts the cell's energy under the mode.
func (m EnergyMode) energy(c *Cell) float64 {
	if m == EnergyIdleZero {
		return c.Results.CompEnergy
	}
	return c.Results.TotalEnergyLow
}

func pct(v float64) string  { return fmt.Sprintf("%.2f%%", 100*v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func sec0(v float64) string { return fmt.Sprintf("%.0f", v) }

// baselineCell fetches the original-size no-DVFS run for a workload.
func (s *Suite) baselineCell(w string) (*Cell, error) {
	return s.Cell(Config{Workload: w, SizeFactor: 1})
}

// Table1 reproduces Table 1: workload characteristics and the average
// BSLD without DVFS, annotated with the paper's values.
func Table1(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title:  "Table 1: Workloads",
		Header: []string{"Workload", "CPUs", "Jobs", "AvgBSLD", "paper", "AvgWait(s)", "Util"},
		Note:   "paper column: Table 1 of Etinski et al. 2010 (5000-job segments, no DVFS)",
	}
	for _, w := range Workloads() {
		c, err := s.baselineCell(w)
		if err != nil {
			return t, err
		}
		t.AddRow(w, fmt.Sprint(c.CPUs), fmt.Sprint(c.Results.Jobs),
			f2(c.Results.AvgBSLD), f2(PaperTable1BSLD[w]),
			sec0(c.Results.AvgWait), f2(c.Results.Utilization))
	}
	return t, nil
}

// Table2 reproduces Table 2: the DVFS gear set, with the derived power
// figures of the model (Section 4).
func Table2() textplot.Table {
	pm := dvfs.PaperPowerModel()
	t := textplot.Table{
		Title:  "Table 2: DVFS gear set",
		Header: []string{"Frequency(GHz)", "Voltage(V)", "Pdyn", "Pstatic", "Pactive", "E/work vs top"},
		Note: fmt.Sprintf("idle power = %.4g (%.1f%% of top active power, paper says ~21%%); static fraction at top = 25%%",
			pm.Idle(), 100*pm.IdleFraction()),
	}
	tm := dvfs.NewTimeModel(0.5, pm.Gears)
	top := pm.Gears.Top()
	for _, g := range pm.Gears {
		ratio := pm.Active(g) * tm.CoefGear(g) / pm.Active(top)
		t.AddRow(fmt.Sprintf("%.1f", g.Freq), fmt.Sprintf("%.1f", g.Voltage),
			fmt.Sprintf("%.3f", pm.Dynamic(g)), fmt.Sprintf("%.3f", pm.Static(g)),
			fmt.Sprintf("%.3f", pm.Active(g)), pct(ratio))
	}
	return t
}

// PaperGrid declares the Figures 3–5 study — workload × BSLD threshold ×
// WQ threshold at the original machine size — as a sweep grid.
func PaperGrid() sweep.Grid {
	return sweep.Grid{Traces: Workloads(), Policies: PaperPolicies()}
}

// EnlargedGrid declares the Figures 7–9 / Table 3 study: every workload
// on enlarged machines at BSLDthreshold 2 for both WQ extremes.
func EnlargedGrid() sweep.Grid {
	return sweep.Grid{
		Traces: Workloads(),
		Policies: []sweep.PolicyConfig{
			{BSLDThr: 2, WQThr: 0},
			{BSLDThr: 2, WQThr: core.NoWQLimit},
		},
		SizeFactors: SizeFactors(),
	}
}

// configsOf converts a sweep grid's points into suite cache keys, in
// expansion order.
func configsOf(g sweep.Grid) []Config {
	pts := g.Points()
	cfgs := make([]Config, len(pts))
	for i, p := range pts {
		cfgs[i] = Config{
			Workload:   p.Trace,
			BSLDThr:    p.Policy.BSLDThr,
			WQThr:      p.Policy.WQThr,
			SizeFactor: p.SizeFactor,
		}
	}
	return cfgs
}

// gridTable builds a (workload × threshold) × WQ table from a cell value
// extractor. Every figure of the original-size study shares this layout.
func gridTable(s *Suite, title, note string, value func(c, base *Cell) string) (textplot.Table, error) {
	t := textplot.Table{
		Title:  title,
		Header: []string{"Workload", "BSLDthr", "WQ 0", "WQ 4", "WQ 16", "WQ NO"},
		Note:   note,
	}
	for _, w := range Workloads() {
		base, err := s.baselineCell(w)
		if err != nil {
			return t, err
		}
		for _, thr := range BSLDThresholds() {
			row := []string{w, fmt.Sprintf("%g", thr)}
			for _, wq := range WQThresholds() {
				c, err := s.Cell(Config{Workload: w, BSLDThr: thr, WQThr: wq, SizeFactor: 1})
				if err != nil {
					return t, err
				}
				row = append(row, value(c, base))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Fig3 reproduces Figure 3: CPU energy of the power-aware schedule
// normalized to the no-DVFS baseline, for the given energy mode.
func Fig3(s *Suite, mode EnergyMode) (textplot.Table, error) {
	return gridTable(s,
		fmt.Sprintf("Figure 3 (%s): normalized energy, original system size", mode),
		"1.00 = no-DVFS baseline energy; lower is better. Paper: all workloads except SDSC save ~10%+, up to 22% at (3, NO).",
		func(c, base *Cell) string {
			return pct(mode.energy(c) / mode.energy(base))
		})
}

// Fig4 reproduces Figure 4: the number of jobs run at reduced frequency.
func Fig4(s *Suite) (textplot.Table, error) {
	return gridTable(s,
		"Figure 4: number of jobs run at reduced frequency",
		"Paper highlights: LLNLThunder 1219 @ (1.5,4) vs 854 @ (2,4); SDSCBlue 2778 @ (2,NO) vs 2654 @ (3,NO).",
		func(c, _ *Cell) string { return fmt.Sprint(c.Results.ReducedJobs) })
}

// Fig5 reproduces Figure 5: average BSLD under the power-aware scheduler.
func Fig5(s *Suite) (textplot.Table, error) {
	return gridTable(s,
		"Figure 5: average BSLD, original system size",
		"Baselines (Table 1): CTC 4.66, SDSC 24.91, SDSCBlue 5.15, LLNLThunder 1, LLNLAtlas 1.08 in the paper.",
		func(c, _ *Cell) string { return f2(c.Results.AvgBSLD) })
}

// Fig6Series returns the SDSC-Blue wait-time traces of Figure 6: the
// no-DVFS baseline and the (BSLDthr=2, WQ=16) power-aware schedule.
func Fig6Series(s *Suite) (orig, dvfsRun []*Cell, err error) {
	base, err := s.Cell(Config{Workload: "SDSCBlue", SizeFactor: 1})
	if err != nil {
		return nil, nil, err
	}
	pol, err := s.Cell(Config{Workload: "SDSCBlue", BSLDThr: 2, WQThr: 16, SizeFactor: 1})
	if err != nil {
		return nil, nil, err
	}
	return []*Cell{base}, []*Cell{pol}, nil
}

// Fig6 renders Figure 6 as an ASCII line chart of per-job wait time over
// a window of the SDSC-Blue trace (the paper zooms into a segment; we
// plot the middle third, where queueing is established).
func Fig6(s *Suite) (string, textplot.Table, error) {
	origCells, dvfsCells, err := Fig6Series(s)
	if err != nil {
		return "", textplot.Table{}, err
	}
	orig, dvfsRun := origCells[0], dvfsCells[0]
	window := func(c *Cell) [][2]float64 {
		pts := c.WaitSeries
		lo, hi := len(pts)/3, 2*len(pts)/3
		out := make([][2]float64, 0, hi-lo)
		for _, p := range pts[lo:hi] {
			out = append(out, [2]float64{p.Submit, p.Wait})
		}
		return out
	}
	chart := textplot.LineChart(
		"Figure 6: SDSCBlue wait time (middle third of trace), seconds",
		[]string{"Orig", "DVFS_2_16"},
		[][][2]float64{window(orig), window(dvfsRun)}, 72, 18)

	t := textplot.Table{
		Title:  "Figure 6 (summary): SDSCBlue wait time, Orig vs DVFS(2,16)",
		Header: []string{"Series", "AvgWait(s)", "MaxWait(s)"},
		Note:   "paper: wait time with frequency scaling is much higher than without it",
	}
	t.AddRow("Orig", sec0(orig.Results.AvgWait), sec0(orig.Results.MaxWait))
	t.AddRow("DVFS_2_16", sec0(dvfsRun.Results.AvgWait), sec0(dvfsRun.Results.MaxWait))
	return chart, t, nil
}

// enlargedTable builds a (workload) × (size factor) table for the
// enlarged-system experiments at BSLDthreshold 2 and a fixed WQ mode.
func enlargedTable(s *Suite, title, note string, wq int, value func(c, base *Cell) string) (textplot.Table, error) {
	header := []string{"Workload"}
	for _, sf := range SizeFactors() {
		header = append(header, fmt.Sprintf("+%.0f%%", (sf-1)*100))
	}
	t := textplot.Table{Title: title, Header: header, Note: note}
	for _, w := range Workloads() {
		base, err := s.baselineCell(w)
		if err != nil {
			return t, err
		}
		row := []string{w}
		for _, sf := range SizeFactors() {
			c, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: wq, SizeFactor: sf})
			if err != nil {
				return t, err
			}
			row = append(row, value(c, base))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: normalized energies of enlarged systems with
// WQthreshold 0, relative to the original system without DVFS.
func Fig7(s *Suite, mode EnergyMode) (textplot.Table, error) {
	return enlargedTable(s,
		fmt.Sprintf("Figure 7 (%s): normalized energy of enlarged systems, WQ=0, BSLDthr=2", mode),
		"normalized to the original-size no-DVFS energy. Paper: computational energy decreases with size; idle=low has a minimum.",
		0,
		func(c, base *Cell) string { return pct(mode.energy(c) / mode.energy(base)) })
}

// Fig8 reproduces Figure 8: the same with no wait-queue limit.
func Fig8(s *Suite, mode EnergyMode) (textplot.Table, error) {
	return enlargedTable(s,
		fmt.Sprintf("Figure 8 (%s): normalized energy of enlarged systems, WQ=NO, BSLDthr=2", mode),
		"normalized to the original-size no-DVFS energy. Paper: 20% larger system can cut computational energy by >25%.",
		core.NoWQLimit,
		func(c, base *Cell) string { return pct(mode.energy(c) / mode.energy(base)) })
}

// Fig9 reproduces Figure 9: average BSLD for enlarged systems, for both
// WQ modes of the paper's experiment.
func Fig9(s *Suite) (textplot.Table, error) {
	header := []string{"Workload", "WQ"}
	for _, sf := range SizeFactors() {
		header = append(header, fmt.Sprintf("+%.0f%%", (sf-1)*100))
	}
	t := textplot.Table{
		Title:  "Figure 9: average BSLD for enlarged systems, BSLDthr=2",
		Header: header,
		Note:   "paper: an additional size increase always improves performance; SDSCBlue beats its no-DVFS baseline with only +10%.",
	}
	for _, w := range Workloads() {
		for _, wq := range []int{core.NoWQLimit, 0} {
			label := "NO"
			if wq == 0 {
				label = "0"
			}
			row := []string{w, label}
			for _, sf := range SizeFactors() {
				c, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: wq, SizeFactor: sf})
				if err != nil {
					return t, err
				}
				row = append(row, f2(c.Results.AvgBSLD))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Table3 reproduces Table 3: average wait time in seconds for the five
// scheduling/system configurations, with the paper's values interleaved.
func Table3(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title: "Table 3: average wait time (s)",
		Header: []string{"Workload",
			"orig-noDVFS", "paper", "origWQ0", "paper", "origWQNO", "paper",
			"+50%WQ0", "paper", "+50%WQNO", "paper"},
		Note: "DVFS columns use BSLDthr=2. paper columns: Table 3 of Etinski et al. 2010.",
	}
	for _, w := range Workloads() {
		ref := PaperTable3Wait[w]
		cells := make([]*Cell, 5)
		var err error
		if cells[0], err = s.baselineCell(w); err != nil {
			return t, err
		}
		if cells[1], err = s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: 0, SizeFactor: 1}); err != nil {
			return t, err
		}
		if cells[2], err = s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: core.NoWQLimit, SizeFactor: 1}); err != nil {
			return t, err
		}
		if cells[3], err = s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: 0, SizeFactor: 1.5}); err != nil {
			return t, err
		}
		if cells[4], err = s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: core.NoWQLimit, SizeFactor: 1.5}); err != nil {
			return t, err
		}
		row := []string{w}
		for i, c := range cells {
			row = append(row, sec0(c.Results.AvgWait), sec0(ref[i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}
