package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestExtBoost(t *testing.T) {
	s := NewSuite(400)
	tb, err := ExtBoost(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		offE := parsePct(t, row[1])
		onE := parsePct(t, row[2])
		// Boost can only raise frequencies, so energy with boost is at
		// least energy without (within numerical noise on tiny traces).
		if onE < offE-1.0 {
			t.Errorf("%s: boost energy %v unexpectedly below static %v", row[0], onE, offE)
		}
	}
}

func TestExtPerJobBeta(t *testing.T) {
	s := NewSuite(400)
	tb, err := ExtPerJobBeta(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:3] {
			v := parsePct(t, cell)
			if v <= 0 || v > 100.001 {
				t.Errorf("energy %v out of (0,100]", v)
			}
		}
	}
}

func TestExtPowerDown(t *testing.T) {
	s := NewSuite(400)
	tb, err := ExtPowerDown(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		pd := parsePct(t, row[2])
		both := parsePct(t, row[3])
		if pd >= 100 {
			t.Errorf("%s: power-down saves nothing (%v%%)", row[0], pd)
		}
		// Combining DVFS with power-down must beat power-down alone:
		// execution energy shrinks, idle handling is identical.
		if both > pd+1.0 {
			t.Errorf("%s: combined %v%% worse than power-down alone %v%%", row[0], both, pd)
		}
	}
}

func TestRunExtensionsRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions in short mode")
	}
	s := NewSuite(300)
	var buf bytes.Buffer
	dir := t.TempDir()
	if err := RunExtensions(s, &buf, dir); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dynamic frequency boost", "per-job β", "power-down", "power capping"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExtLoadSweep(t *testing.T) {
	s := NewSuite(400)
	tb, err := ExtLoadSweep(s, "SDSCBlue")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Savings shrink (energy ratio grows) as load rises, end to end.
	first := parsePct(t, tb.Rows[0][2])
	last := parsePct(t, tb.Rows[len(tb.Rows)-1][2])
	if last < first {
		t.Errorf("energy ratio fell with load: %v -> %v", first, last)
	}
}

func TestExtEstimateQuality(t *testing.T) {
	s := NewSuite(400)
	tb, err := ExtEstimateQuality(s, "CTC")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		v := parsePct(t, row[1])
		if v <= 0 || v > 100.001 {
			t.Errorf("%s: energy %v out of range", row[0], v)
		}
	}
}

func TestExtLoadSweepUnknownWorkload(t *testing.T) {
	s := NewSuite(100)
	if _, err := ExtLoadSweep(s, "nosuch"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ExtEstimateQuality(s, "nosuch"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestExtPolicyComparison(t *testing.T) {
	s := NewSuite(400)
	tb, err := ExtPolicyComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:3] {
			v := parsePct(t, cell)
			if v <= 0 || v > 105 {
				t.Errorf("%s: energy %v out of range", row[0], v)
			}
		}
	}
}

func TestExtPowerCap(t *testing.T) {
	s := NewSuite(400)
	tb, err := ExtPowerCap(s, "CTC")
	if err != nil {
		t.Fatal(err)
	}
	// 2 thresholds × 4 cap levels (uncapped anchor + 3 caps).
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] == "none" {
			if row[4] != "0" {
				t.Errorf("uncapped row reports %s regears", row[4])
			}
			continue
		}
		var capf, draw float64
		if _, err := fmt.Sscanf(row[1], "%f", &capf); err != nil {
			t.Fatalf("cap cell %q: %v", row[1], err)
		}
		if _, err := fmt.Sscanf(row[2], "%f", &draw); err != nil {
			t.Fatalf("draw cell %q: %v", row[2], err)
		}
		// The controller holds the tracked draw near or under the cap
		// (small overshoot from discrete gear levels, plus cell rounding).
		if draw > capf*1.1+0.01 {
			t.Errorf("thr=%s cap=%v: avg draw %v above cap", row[0], capf, draw)
		}
	}
	if _, err := ExtPowerCap(s, "nosuch"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestExtSeedSensitivity(t *testing.T) {
	s := NewSuite(300)
	tb, err := ExtSeedSensitivity(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "±") {
				t.Errorf("cell %q missing ±", cell)
			}
		}
	}
}
