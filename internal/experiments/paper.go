package experiments

import "repro/internal/sweep"

// Reference values transcribed from the paper, used to annotate the
// reproduction's output and to fill EXPERIMENTS.md with paper-vs-measured
// comparisons, plus the paper's parameter axes as declarative sweep
// configurations.

// PaperPolicies returns the Figures 3–5 policy axis — every BSLD
// threshold × wait-queue threshold combination of the evaluation — in
// presentation order (threshold outer, WQ inner).
func PaperPolicies() []sweep.PolicyConfig {
	var pols []sweep.PolicyConfig
	for _, thr := range BSLDThresholds() {
		for _, wq := range WQThresholds() {
			pols = append(pols, sweep.PolicyConfig{BSLDThr: thr, WQThr: wq})
		}
	}
	return pols
}

// PaperTable1BSLD is the "Avg BSLD" column of Table 1: the average bounded
// slowdown of the 5000-job segments without DVFS.
var PaperTable1BSLD = map[string]float64{
	"CTC":         4.66,
	"SDSC":        24.91,
	"SDSCBlue":    5.15,
	"LLNLThunder": 1.0,
	"LLNLAtlas":   1.08,
}

// PaperTable1CPUs is the system size column of Table 1.
var PaperTable1CPUs = map[string]int{
	"CTC":         430,
	"SDSC":        128,
	"SDSCBlue":    1152,
	"LLNLThunder": 4008,
	"LLNLAtlas":   9216,
}

// PaperTable3Wait is Table 3: average wait time in seconds for five
// scheduling/system configurations, in the order: original size without
// DVFS, original size (BSLDthr=2, WQ=0), original size (BSLDthr=2, WQ=NO),
// 50% enlarged (WQ=0), 50% enlarged (WQ=NO).
var PaperTable3Wait = map[string][5]float64{
	"CTC":         {7107, 12361, 16060, 2980, 4183},
	"SDSC":        {36001, 35946, 45845, 9202, 11713},
	"SDSCBlue":    {4798, 6587, 8766, 2351, 3153},
	"LLNLThunder": {0, 1927, 6876, 379, 1877},
	"LLNLAtlas":   {69, 1841, 6691, 708, 2807},
}

// Headline claims of the abstract and Section 5, recorded for
// EXPERIMENTS.md:
//
//   - CPU energy decreases by 7%–18% on average depending on the allowed
//     performance penalty.
//   - The least restrictive combination (BSLDthr=3, WQ=NO) reaches
//     savings of up to 22% in computational energy for workloads other
//     than SDSC.
//   - SDSC (original average BSLD 24.91) cannot save energy.
//   - LLNLThunder saves 8.95% of computational energy at (1.5, 4) with
//     1219 reduced jobs, but only 3.79% at (2, 4) with 854 reduced jobs —
//     a higher BSLD threshold can reduce fewer jobs.
//   - SDSCBlue at (2, NO) reduces 2778 jobs; at (3, NO) it reduces 2654
//     jobs yet saves more energy.
//   - A 20% larger system with power-aware scheduling cuts computational
//     energy by more than 25% (almost 30%) at same-or-better performance.
//   - A 50% increase gives much better performance and up to 35% lower
//     computational energy.
//   - SDSCBlue needs only a 10% size increase to beat the original
//     no-DVFS performance.
const (
	PaperThunderSavings15_4   = 8.95 // % computational energy saved at (1.5, 4)
	PaperThunderSavings2_4    = 3.79 // % at (2, 4)
	PaperThunderReduced15_4   = 1219 // reduced jobs at (1.5, 4)
	PaperThunderReduced2_4    = 854  // reduced jobs at (2, 4)
	PaperSDSCBlueReduced2_NO  = 2778 // reduced jobs at (2, NO)
	PaperSDSCBlueReduced3_NO  = 2654 // reduced jobs at (3, NO)
	PaperAvgSavingsLowPct     = 7.0  // headline band, %
	PaperAvgSavingsHighPct    = 18.0 // headline band, %
	PaperMaxSavings3NOPct     = 22.0 // best-case at (3, NO), %
	PaperEnlarged20SavingsPct = 30.0 // ~30% at 20% enlargement
	PaperEnlarged50SavingsPct = 35.0 // up to 35% at 50% enlargement
)
