package experiments

import (
	"fmt"

	"repro/internal/altpolicy"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/nodepower"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// Extension experiments beyond the paper's evaluation: the dynamic boost
// the paper names as future work (§7), the per-job β analysis it plans
// (§7), and a node power-down baseline from its related work (§6). They
// run outside the Suite's cached grid because they vary knobs the grid
// does not expose.

// extTrace generates the workload at the suite's segment length.
func extTrace(s *Suite, name string) (runner.Spec, error) {
	tr, err := s.trace(name)
	if err != nil {
		return runner.Spec{}, err
	}
	return runner.Spec{Trace: tr}, nil
}

func extPolicy(params core.Params) (sched.GearPolicy, error) {
	gears := dvfs.PaperGearSet()
	return core.NewPolicy(params, gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
}

// ExtBoost compares the paper's future-work extension — dynamically
// raising running reduced jobs to Ftop when the queue exceeds a bound —
// against the static assignment, at (BSLDthr=2, WQ=NO).
func ExtBoost(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title: "Extension: dynamic frequency boost (paper §7 future work), BSLDthr=2, WQ=NO, boost above 16 waiting",
		Header: []string{"Workload", "energy off", "energy on", "wait off(s)", "wait on(s)",
			"BSLD off", "BSLD on"},
		Note: "energy = computational, normalized to no-DVFS; boost trades some savings for shorter queues",
	}
	for _, w := range Workloads() {
		spec, err := extTrace(s, w)
		if err != nil {
			return t, err
		}
		base, err := runner.Run(spec)
		if err != nil {
			return t, err
		}
		row := []string{w}
		var energies, waits, bslds []string
		for _, boost := range []bool{false, true} {
			pol, err := extPolicy(core.Params{
				BSLDThreshold: 2, WQThreshold: core.NoWQLimit,
				Boost: boost, BoostWQ: 16,
			})
			if err != nil {
				return t, err
			}
			run := spec
			run.Policy = pol
			out, err := runner.Run(run)
			if err != nil {
				return t, err
			}
			energies = append(energies, pct(out.Results.CompEnergy/base.Results.CompEnergy))
			waits = append(waits, sec0(out.Results.AvgWait))
			bslds = append(bslds, f2(out.Results.AvgBSLD))
		}
		row = append(row, energies[0], energies[1], waits[0], waits[1], bslds[0], bslds[1])
		t.AddRow(row...)
	}
	return t, nil
}

// ExtPerJobBeta contrasts the paper's uniform β=0.5 with heterogeneous
// per-job β drawn from U[0.2, 0.8] (same mean), the analysis §7 proposes
// to enable modeling of per-job DVFS potential.
func ExtPerJobBeta(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title:  "Extension: per-job β (paper §7 future work), BSLDthr=2, WQ=NO",
		Header: []string{"Workload", "energy β=0.5", "energy β~U[0.2,0.8]", "BSLD β=0.5", "BSLD β~U"},
		Note:   "per-job β keeps the mean dilation but lets the policy favour jobs with low penalty",
	}
	for _, w := range Workloads() {
		model, err := wgen.Preset(w)
		if err != nil {
			return t, err
		}
		model.Jobs = s.jobs
		uniform, err := wgen.Generate(model)
		if err != nil {
			return t, err
		}
		model.BetaMin, model.BetaMax = 0.2, 0.8
		perJob, err := wgen.Generate(model)
		if err != nil {
			return t, err
		}
		pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
		if err != nil {
			return t, err
		}
		// Run both traces through identical baseline/policy pairs.
		var energies, bslds []string
		for _, trace := range []*workload.Trace{uniform, perJob} {
			base, err := runner.Run(runner.Spec{Trace: trace})
			if err != nil {
				return t, err
			}
			out, err := runner.Run(runner.Spec{Trace: trace, Policy: pol})
			if err != nil {
				return t, err
			}
			energies = append(energies, pct(out.Results.CompEnergy/base.Results.CompEnergy))
			bslds = append(bslds, f2(out.Results.AvgBSLD))
		}
		t.AddRow(w, energies[0], energies[1], bslds[0], bslds[1])
	}
	return t, nil
}

// ExtPolicyComparison pits the paper's BSLD-guarded assignment against
// the utilization-driven trigger of the related work (Fan et al., §6):
// comparable savings, but without the per-job prediction nothing bounds
// the slowdown of a reduced job.
func ExtPolicyComparison(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title: "Extension: BSLD-threshold vs utilization-driven DVFS (related work §6)",
		Header: []string{"Workload", "energy bsld(2,NO)", "energy util(.3,.9)",
			"BSLD bsld(2,NO)", "BSLD util(.3,.9)", "BSLD base"},
		Note: "utilization-driven reduces on an idle machine regardless of the job's slowdown outlook",
	}
	gears := dvfs.PaperGearSet()
	for _, w := range Workloads() {
		spec, err := extTrace(s, w)
		if err != nil {
			return t, err
		}
		base, err := runner.Run(spec)
		if err != nil {
			return t, err
		}
		bsldPol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
		if err != nil {
			return t, err
		}
		utilPol, err := altpolicy.NewUtilizationDriven(gears, 0.3, 0.9)
		if err != nil {
			return t, err
		}
		var energies, bslds []string
		for _, pol := range []sched.GearPolicy{bsldPol, utilPol} {
			run := spec
			run.Policy = pol
			out, err := runner.Run(run)
			if err != nil {
				return t, err
			}
			energies = append(energies, pct(out.Results.CompEnergy/base.Results.CompEnergy))
			bslds = append(bslds, f2(out.Results.AvgBSLD))
		}
		t.AddRow(w, energies[0], energies[1], bslds[0], bslds[1], f2(base.Results.AvgBSLD))
	}
	return t, nil
}

// ExtEstimateQuality varies the accuracy of user runtime estimates. The
// requested time enters both EASY's planning and the BSLD predictor of
// eq. (2), so estimate pathologies — the best-documented quirk of PWA
// traces — shift what the policy dares to reduce.
func ExtEstimateQuality(s *Suite, workloadName string) (textplot.Table, error) {
	t := textplot.Table{
		Title:  fmt.Sprintf("Extension: user estimate quality (%s, BSLDthr=2, WQ=NO)", workloadName),
		Header: []string{"estimates", "energy(idle=0)", "avgBSLD policy", "avgBSLD base", "reduced"},
		Note:   "perfect = requests equal runtimes; default = calibrated PWA-like overestimation; sloppy = 3× heavier tail",
	}
	model, err := wgen.Preset(workloadName)
	if err != nil {
		return t, err
	}
	model.Jobs = s.jobs
	pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
	if err != nil {
		return t, err
	}
	variants := []struct {
		name   string
		mutate func(*wgen.Model)
	}{
		{"perfect", func(m *wgen.Model) { m.AccurateFrac = 1 }},
		{"default", func(m *wgen.Model) {}},
		{"sloppy", func(m *wgen.Model) { m.OverestMean *= 3 }},
	}
	for _, v := range variants {
		m := model
		v.mutate(&m)
		tr, err := wgen.Generate(m)
		if err != nil {
			return t, err
		}
		base, err := runner.Run(runner.Spec{Trace: tr})
		if err != nil {
			return t, err
		}
		out, err := runner.Run(runner.Spec{Trace: tr, Policy: pol})
		if err != nil {
			return t, err
		}
		t.AddRow(v.name,
			pct(out.Results.CompEnergy/base.Results.CompEnergy),
			f2(out.Results.AvgBSLD), f2(base.Results.AvgBSLD),
			fmt.Sprint(out.Results.ReducedJobs))
	}
	return t, nil
}

// ExtLoadSweep measures how the policy's savings respond to offered load
// by rescaling one workload's arrival process — the generalization of the
// paper's SDSC observation that a saturated system cannot save energy.
func ExtLoadSweep(s *Suite, workloadName string) (textplot.Table, error) {
	t := textplot.Table{
		Title:  fmt.Sprintf("Extension: savings vs offered load (%s, BSLDthr=2, WQ=NO)", workloadName),
		Header: []string{"load ×", "utilization", "energy(idle=0)", "avgBSLD policy", "avgBSLD base"},
		Note:   "each row rescales interarrival gaps; energy normalized to the no-DVFS run at the SAME load",
	}
	tr, err := s.trace(workloadName)
	if err != nil {
		return t, err
	}
	pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
	if err != nil {
		return t, err
	}
	for _, factor := range []float64{0.6, 0.8, 1.0, 1.2, 1.4} {
		scaled := workload.ScaleLoad(tr, factor)
		base, err := runner.Run(runner.Spec{Trace: scaled})
		if err != nil {
			return t, err
		}
		out, err := runner.Run(runner.Spec{Trace: scaled, Policy: pol})
		if err != nil {
			return t, err
		}
		t.AddRow(fmt.Sprintf("%.1f", factor),
			f2(base.Results.Utilization),
			pct(out.Results.CompEnergy/base.Results.CompEnergy),
			f2(out.Results.AvgBSLD),
			f2(base.Results.AvgBSLD))
	}
	return t, nil
}

// ExtSeedSensitivity replicates the headline measurement across RNG seeds
// of the synthetic generators, quantifying how much of each number is
// trace-sampling noise: the reproduction's claims should be (and are)
// stable far beyond the seed-to-seed spread.
func ExtSeedSensitivity(s *Suite, replicas int) (textplot.Table, error) {
	if replicas < 2 {
		replicas = 5
	}
	t := textplot.Table{
		Title: fmt.Sprintf("Extension: seed sensitivity (%d trace replicas per workload, BSLDthr=2, WQ=NO)", replicas),
		Header: []string{"Workload", "base BSLD mean±sd", "savings% mean±sd",
			"BSLD penalty mean±sd"},
		Note: "each replica regenerates the synthetic trace with a different seed; ± is one standard deviation",
	}
	pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
	if err != nil {
		return t, err
	}
	for _, w := range Workloads() {
		model, err := wgen.Preset(w)
		if err != nil {
			return t, err
		}
		model.Jobs = s.jobs
		var baseB, savings, penalty stats.Summary
		for r := 0; r < replicas; r++ {
			m := model
			m.Seed = model.Seed + int64(r)*7919 // deterministic distinct seeds
			tr, err := wgen.Generate(m)
			if err != nil {
				return t, err
			}
			base, err := runner.Run(runner.Spec{Trace: tr})
			if err != nil {
				return t, err
			}
			out, err := runner.Run(runner.Spec{Trace: tr, Policy: pol})
			if err != nil {
				return t, err
			}
			baseB.Add(base.Results.AvgBSLD)
			savings.Add(100 * (1 - out.Results.CompEnergy/base.Results.CompEnergy))
			penalty.Add(out.Results.AvgBSLD - base.Results.AvgBSLD)
		}
		ms := func(sm stats.Summary) string {
			return fmt.Sprintf("%.2f±%.2f", sm.Mean(), sm.StdDev())
		}
		t.AddRow(w, ms(baseB), ms(savings), ms(penalty))
	}
	return t, nil
}

// ExtPowerDown evaluates the related-work alternative (§6): power down
// idle nodes instead of scaling frequency, and the combination of both.
// Energies are total (Eidle=low accounting), normalized to the no-DVFS,
// always-on baseline.
func ExtPowerDown(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title:  "Extension: idle-node power-down baseline (related work §6), total energy normalized to no-DVFS always-on",
		Header: []string{"Workload", "DVFS(2,NO)", "power-down", "DVFS+power-down"},
		Note: fmt.Sprintf("power-down: %.0f s idle timeout, %.0f s wake energy, perfect off (optimistic bound)",
			nodepower.DefaultPolicy().IdleOffDelay, nodepower.DefaultPolicy().WakeEnergySeconds),
	}
	pm := dvfs.PaperPowerModel()
	for _, w := range Workloads() {
		spec, err := extTrace(s, w)
		if err != nil {
			return t, err
		}
		pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
		if err != nil {
			return t, err
		}
		type variant struct {
			policy sched.GearPolicy
		}
		totalWith := func(v variant) (float64, error) {
			tracker := nodepower.NewTracker(spec.Trace.CPUs)
			run := spec
			run.Policy = v.policy
			run.ExtraRecorders = []sched.Recorder{tracker}
			out, err := runner.Run(run)
			if err != nil {
				return 0, err
			}
			rep, err := tracker.Evaluate(nodepower.DefaultPolicy(), pm, spec.Trace.Jobs[0].Submit)
			if err != nil {
				return 0, err
			}
			return out.Results.CompEnergy + rep.TotalIdleSideEnergy(), nil
		}
		base, err := runner.Run(spec)
		if err != nil {
			return t, err
		}
		denom := base.Results.TotalEnergyLow
		dvfsOnly, err := runner.Run(runner.Spec{Trace: spec.Trace, Policy: pol})
		if err != nil {
			return t, err
		}
		pdOnly, err := totalWith(variant{policy: nil})
		if err != nil {
			return t, err
		}
		both, err := totalWith(variant{policy: pol})
		if err != nil {
			return t, err
		}
		t.AddRow(w,
			pct(dvfsOnly.Results.TotalEnergyLow/denom),
			pct(pdOnly/denom),
			pct(both/denom))
	}
	return t, nil
}
