package experiments

import (
	"context"
	"fmt"

	"repro/internal/altpolicy"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/nodepower"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/textplot"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// Extension experiments beyond the paper's evaluation: the dynamic boost
// the paper names as future work (§7), the per-job β analysis it plans
// (§7), and a node power-down baseline from its related work (§6). They
// run outside the Suite's cached grid because they vary knobs the grid
// does not expose; each builds its spec list up front and executes it
// through the sweep pool, so every table fills at full core count while
// the rendered rows stay in presentation order.

// extTrace generates the workload at the suite's segment length.
func extTrace(s *Suite, name string) (runner.Spec, error) {
	tr, err := s.trace(name)
	if err != nil {
		return runner.Spec{}, err
	}
	return runner.Spec{Trace: tr}, nil
}

func extPolicy(params core.Params) (sched.GearPolicy, error) {
	gears := dvfs.PaperGearSet()
	return core.NewPolicy(params, gears, dvfs.NewTimeModel(runner.DefaultBeta, gears))
}

// runAll executes the specs across the sweep pool and returns outcomes in
// spec order; the first per-run failure aborts. Runs execute concurrently,
// so a stateful gear policy (a sched.PowerController without a clone
// seam) must not be shared between specs — stateless policies like
// core.Policy may be.
func runAll(specs []runner.Spec) ([]runner.Outcome, error) {
	runs := make([]sweep.Run, len(specs))
	for i, sp := range specs {
		runs[i] = sweep.Run{Point: sweep.Point{Index: i}, Spec: sp}
	}
	results, err := (&sweep.Pool{}).Execute(context.Background(), runs)
	if err != nil {
		return nil, err
	}
	outs := make([]runner.Outcome, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		outs[i] = r.Outcome
	}
	return outs, nil
}

// ExtBoost compares the paper's future-work extension — dynamically
// raising running reduced jobs to Ftop when the queue exceeds a bound —
// against the static assignment, at (BSLDthr=2, WQ=NO).
func ExtBoost(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title: "Extension: dynamic frequency boost (paper §7 future work), BSLDthr=2, WQ=NO, boost above 16 waiting",
		Header: []string{"Workload", "energy off", "energy on", "wait off(s)", "wait on(s)",
			"BSLD off", "BSLD on"},
		Note: "energy = computational, normalized to no-DVFS; boost trades some savings for shorter queues",
	}
	var specs []runner.Spec
	for _, w := range Workloads() {
		spec, err := extTrace(s, w)
		if err != nil {
			return t, err
		}
		specs = append(specs, spec)
		for _, boost := range []bool{false, true} {
			pol, err := extPolicy(core.Params{
				BSLDThreshold: 2, WQThreshold: core.NoWQLimit,
				Boost: boost, BoostWQ: 16,
			})
			if err != nil {
				return t, err
			}
			run := spec
			run.Policy = pol
			specs = append(specs, run)
		}
	}
	outs, err := runAll(specs)
	if err != nil {
		return t, err
	}
	for i, w := range Workloads() {
		base, off, on := outs[3*i], outs[3*i+1], outs[3*i+2]
		t.AddRow(w,
			pct(off.Results.CompEnergy/base.Results.CompEnergy),
			pct(on.Results.CompEnergy/base.Results.CompEnergy),
			sec0(off.Results.AvgWait), sec0(on.Results.AvgWait),
			f2(off.Results.AvgBSLD), f2(on.Results.AvgBSLD))
	}
	return t, nil
}

// ExtPerJobBeta contrasts the paper's uniform β=0.5 with heterogeneous
// per-job β drawn from U[0.2, 0.8] (same mean), the analysis §7 proposes
// to enable modeling of per-job DVFS potential.
func ExtPerJobBeta(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title:  "Extension: per-job β (paper §7 future work), BSLDthr=2, WQ=NO",
		Header: []string{"Workload", "energy β=0.5", "energy β~U[0.2,0.8]", "BSLD β=0.5", "BSLD β~U"},
		Note:   "per-job β keeps the mean dilation but lets the policy favour jobs with low penalty",
	}
	pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
	if err != nil {
		return t, err
	}
	// Four runs per workload: baseline and policy on the uniform-β trace,
	// then on the per-job-β trace.
	var specs []runner.Spec
	for _, w := range Workloads() {
		model, err := wgen.Preset(w)
		if err != nil {
			return t, err
		}
		model.Jobs = s.jobs
		uniform, err := wgen.Generate(model)
		if err != nil {
			return t, err
		}
		model.BetaMin, model.BetaMax = 0.2, 0.8
		perJob, err := wgen.Generate(model)
		if err != nil {
			return t, err
		}
		for _, trace := range []*workload.Trace{uniform, perJob} {
			specs = append(specs,
				runner.Spec{Trace: trace},
				runner.Spec{Trace: trace, Policy: pol})
		}
	}
	outs, err := runAll(specs)
	if err != nil {
		return t, err
	}
	for i, w := range Workloads() {
		var energies, bslds []string
		for k := 0; k < 2; k++ {
			base, out := outs[4*i+2*k], outs[4*i+2*k+1]
			energies = append(energies, pct(out.Results.CompEnergy/base.Results.CompEnergy))
			bslds = append(bslds, f2(out.Results.AvgBSLD))
		}
		t.AddRow(w, energies[0], energies[1], bslds[0], bslds[1])
	}
	return t, nil
}

// ExtPolicyComparison pits the paper's BSLD-guarded assignment against
// the utilization-driven trigger of the related work (Fan et al., §6):
// comparable savings, but without the per-job prediction nothing bounds
// the slowdown of a reduced job.
func ExtPolicyComparison(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title: "Extension: BSLD-threshold vs utilization-driven DVFS (related work §6)",
		Header: []string{"Workload", "energy bsld(2,NO)", "energy util(.3,.9)",
			"BSLD bsld(2,NO)", "BSLD util(.3,.9)", "BSLD base"},
		Note: "utilization-driven reduces on an idle machine regardless of the job's slowdown outlook",
	}
	gears := dvfs.PaperGearSet()
	var specs []runner.Spec
	for _, w := range Workloads() {
		spec, err := extTrace(s, w)
		if err != nil {
			return t, err
		}
		bsldPol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
		if err != nil {
			return t, err
		}
		// The utilization policy binds to its system, so each concurrent
		// run needs a fresh instance.
		utilPol, err := altpolicy.NewUtilizationDriven(gears, 0.3, 0.9)
		if err != nil {
			return t, err
		}
		specs = append(specs, spec)
		for _, pol := range []sched.GearPolicy{bsldPol, utilPol} {
			run := spec
			run.Policy = pol
			specs = append(specs, run)
		}
	}
	outs, err := runAll(specs)
	if err != nil {
		return t, err
	}
	for i, w := range Workloads() {
		base, bsldOut, utilOut := outs[3*i], outs[3*i+1], outs[3*i+2]
		t.AddRow(w,
			pct(bsldOut.Results.CompEnergy/base.Results.CompEnergy),
			pct(utilOut.Results.CompEnergy/base.Results.CompEnergy),
			f2(bsldOut.Results.AvgBSLD), f2(utilOut.Results.AvgBSLD),
			f2(base.Results.AvgBSLD))
	}
	return t, nil
}

// ExtEstimateQuality varies the accuracy of user runtime estimates. The
// requested time enters both EASY's planning and the BSLD predictor of
// eq. (2), so estimate pathologies — the best-documented quirk of PWA
// traces — shift what the policy dares to reduce.
func ExtEstimateQuality(s *Suite, workloadName string) (textplot.Table, error) {
	t := textplot.Table{
		Title:  fmt.Sprintf("Extension: user estimate quality (%s, BSLDthr=2, WQ=NO)", workloadName),
		Header: []string{"estimates", "energy(idle=0)", "avgBSLD policy", "avgBSLD base", "reduced"},
		Note:   "perfect = requests equal runtimes; default = calibrated PWA-like overestimation; sloppy = 3× heavier tail",
	}
	model, err := wgen.Preset(workloadName)
	if err != nil {
		return t, err
	}
	model.Jobs = s.jobs
	pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
	if err != nil {
		return t, err
	}
	variants := []struct {
		name   string
		mutate func(*wgen.Model)
	}{
		{"perfect", func(m *wgen.Model) { m.AccurateFrac = 1 }},
		{"default", func(m *wgen.Model) {}},
		{"sloppy", func(m *wgen.Model) { m.OverestMean *= 3 }},
	}
	var specs []runner.Spec
	for _, v := range variants {
		m := model
		v.mutate(&m)
		tr, err := wgen.Generate(m)
		if err != nil {
			return t, err
		}
		specs = append(specs,
			runner.Spec{Trace: tr},
			runner.Spec{Trace: tr, Policy: pol})
	}
	outs, err := runAll(specs)
	if err != nil {
		return t, err
	}
	for i, v := range variants {
		base, out := outs[2*i], outs[2*i+1]
		t.AddRow(v.name,
			pct(out.Results.CompEnergy/base.Results.CompEnergy),
			f2(out.Results.AvgBSLD), f2(base.Results.AvgBSLD),
			fmt.Sprint(out.Results.ReducedJobs))
	}
	return t, nil
}

// ExtLoadSweep measures how the policy's savings respond to offered load
// by rescaling one workload's arrival process — the generalization of the
// paper's SDSC observation that a saturated system cannot save energy.
func ExtLoadSweep(s *Suite, workloadName string) (textplot.Table, error) {
	t := textplot.Table{
		Title:  fmt.Sprintf("Extension: savings vs offered load (%s, BSLDthr=2, WQ=NO)", workloadName),
		Header: []string{"load ×", "utilization", "energy(idle=0)", "avgBSLD policy", "avgBSLD base"},
		Note:   "each row rescales interarrival gaps; energy normalized to the no-DVFS run at the SAME load",
	}
	tr, err := s.trace(workloadName)
	if err != nil {
		return t, err
	}
	pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
	if err != nil {
		return t, err
	}
	factors := []float64{0.6, 0.8, 1.0, 1.2, 1.4}
	var specs []runner.Spec
	for _, factor := range factors {
		scaled := workload.ScaleLoad(tr, factor)
		specs = append(specs,
			runner.Spec{Trace: scaled},
			runner.Spec{Trace: scaled, Policy: pol})
	}
	outs, err := runAll(specs)
	if err != nil {
		return t, err
	}
	for i, factor := range factors {
		base, out := outs[2*i], outs[2*i+1]
		t.AddRow(fmt.Sprintf("%.1f", factor),
			f2(base.Results.Utilization),
			pct(out.Results.CompEnergy/base.Results.CompEnergy),
			f2(out.Results.AvgBSLD),
			f2(base.Results.AvgBSLD))
	}
	return t, nil
}

// ExtSeedSensitivity replicates the headline measurement across RNG seeds
// of the synthetic generators, quantifying how much of each number is
// trace-sampling noise: the reproduction's claims should be (and are)
// stable far beyond the seed-to-seed spread.
func ExtSeedSensitivity(s *Suite, replicas int) (textplot.Table, error) {
	if replicas < 2 {
		replicas = 5
	}
	t := textplot.Table{
		Title: fmt.Sprintf("Extension: seed sensitivity (%d trace replicas per workload, BSLDthr=2, WQ=NO)", replicas),
		Header: []string{"Workload", "base BSLD mean±sd", "savings% mean±sd",
			"BSLD penalty mean±sd"},
		Note: "each replica regenerates the synthetic trace with a different seed; ± is one standard deviation",
	}
	pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
	if err != nil {
		return t, err
	}
	var specs []runner.Spec
	for _, w := range Workloads() {
		model, err := wgen.Preset(w)
		if err != nil {
			return t, err
		}
		model.Jobs = s.jobs
		for r := 0; r < replicas; r++ {
			m := model
			m.Seed = model.Seed + int64(r)*7919 // deterministic distinct seeds
			tr, err := wgen.Generate(m)
			if err != nil {
				return t, err
			}
			specs = append(specs,
				runner.Spec{Trace: tr},
				runner.Spec{Trace: tr, Policy: pol})
		}
	}
	outs, err := runAll(specs)
	if err != nil {
		return t, err
	}
	for i, w := range Workloads() {
		var baseB, savings, penalty stats.Summary
		for r := 0; r < replicas; r++ {
			base, out := outs[2*(i*replicas+r)], outs[2*(i*replicas+r)+1]
			baseB.Add(base.Results.AvgBSLD)
			savings.Add(100 * (1 - out.Results.CompEnergy/base.Results.CompEnergy))
			penalty.Add(out.Results.AvgBSLD - base.Results.AvgBSLD)
		}
		ms := func(sm stats.Summary) string {
			return fmt.Sprintf("%.2f±%.2f", sm.Mean(), sm.StdDev())
		}
		t.AddRow(w, ms(baseB), ms(savings), ms(penalty))
	}
	return t, nil
}

// ExtPowerCap crosses closed-loop power-cap levels with the policy's
// BSLD threshold: the PI gear-ceiling controller (altpolicy.PowerCap)
// holds the tracked draw under each cap while the threshold governs how
// aggressively the per-job policy reduces on its own. Each threshold's
// uncapped run anchors the BSLD-degradation and energy columns, the
// paper-style trade-off read: capping buys a power bound with queue-time
// currency.
func ExtPowerCap(s *Suite, workloadName string) (textplot.Table, error) {
	t := textplot.Table{
		Title: fmt.Sprintf("Extension: closed-loop power capping × BSLD threshold (%s, WQ=NO, PI gear-ceiling controller)", workloadName),
		Header: []string{"BSLDthr", "cap", "avg draw", "over-cap time", "regears",
			"avgBSLD", "ΔBSLD", "energy vs uncapped"},
		Note: "cap and avg draw are fractions of peak machine draw (all CPUs at Ftop); ΔBSLD and energy are relative to the same threshold uncapped",
	}
	spec0, err := extTrace(s, workloadName)
	if err != nil {
		return t, err
	}
	pm := dvfs.PaperPowerModel()
	peak := float64(spec0.Trace.CPUs) * pm.Active(pm.Gears.Top())
	thresholds := []float64{2, 5}
	caps := []float64{0, 0.85, 0.7, 0.55}
	var specs []runner.Spec
	for _, thr := range thresholds {
		pol, err := extPolicy(core.Params{BSLDThreshold: thr, WQThreshold: core.NoWQLimit})
		if err != nil {
			return t, err
		}
		for _, capf := range caps {
			run := spec0
			run.Policy = pol
			if capf > 0 {
				run.Controller = scenario.ControllerConfig{CapFrac: capf}
			}
			specs = append(specs, run)
		}
	}
	outs, err := runAll(specs)
	if err != nil {
		return t, err
	}
	for i, thr := range thresholds {
		uncapped := outs[i*len(caps)]
		for j, capf := range caps {
			out := outs[i*len(caps)+j]
			if capf == 0 {
				t.AddRow(fmt.Sprintf("%g", thr), "none", "-", "-", "0",
					f2(out.Results.AvgBSLD), "-", pct(1))
				continue
			}
			pc, ok := out.Controller.(*altpolicy.PowerCap)
			if !ok {
				return t, fmt.Errorf("experiments: capped run returned controller %T", out.Controller)
			}
			rep := pc.Report()
			t.AddRow(
				fmt.Sprintf("%g", thr),
				fmt.Sprintf("%.2f", capf),
				fmt.Sprintf("%.2f", rep.AvgDraw/peak),
				pct(rep.OverFrac),
				fmt.Sprint(rep.Actuations),
				f2(out.Results.AvgBSLD),
				f2(out.Results.AvgBSLD-uncapped.Results.AvgBSLD),
				pct(out.Results.CompEnergy/uncapped.Results.CompEnergy))
		}
	}
	return t, nil
}

// ExtPowerDown evaluates the related-work alternative (§6): power down
// idle nodes instead of scaling frequency, and the combination of both.
// Energies are total (Eidle=low accounting), normalized to the no-DVFS,
// always-on baseline.
func ExtPowerDown(s *Suite) (textplot.Table, error) {
	t := textplot.Table{
		Title:  "Extension: idle-node power-down baseline (related work §6), total energy normalized to no-DVFS always-on",
		Header: []string{"Workload", "DVFS(2,NO)", "power-down", "DVFS+power-down"},
		Note: fmt.Sprintf("power-down: %.0f s idle timeout, %.0f s wake energy, perfect off (optimistic bound)",
			nodepower.DefaultPolicy().IdleOffDelay, nodepower.DefaultPolicy().WakeEnergySeconds),
	}
	pm := dvfs.PaperPowerModel()
	// Four runs per workload: always-on baseline, DVFS only, power-down
	// tracking without and with DVFS. Each tracked run owns its tracker.
	var specs []runner.Spec
	var trackers []*nodepower.Tracker
	for _, w := range Workloads() {
		spec, err := extTrace(s, w)
		if err != nil {
			return t, err
		}
		pol, err := extPolicy(core.Params{BSLDThreshold: 2, WQThreshold: core.NoWQLimit})
		if err != nil {
			return t, err
		}
		specs = append(specs, spec)
		dvfsOnly := spec
		dvfsOnly.Policy = pol
		specs = append(specs, dvfsOnly)
		for _, tracked := range []sched.GearPolicy{nil, pol} {
			tracker := nodepower.NewTracker(spec.Trace.CPUs)
			trackers = append(trackers, tracker)
			run := spec
			run.Policy = tracked
			run.ExtraRecorders = []sched.Recorder{tracker}
			specs = append(specs, run)
		}
	}
	outs, err := runAll(specs)
	if err != nil {
		return t, err
	}
	for i, w := range Workloads() {
		base, dvfsOnly := outs[4*i], outs[4*i+1]
		denom := base.Results.TotalEnergyLow
		tr, err := s.trace(w)
		if err != nil {
			return t, err
		}
		total := make([]float64, 2)
		for k := 0; k < 2; k++ {
			rep, err := trackers[2*i+k].Evaluate(nodepower.DefaultPolicy(), pm, tr.Jobs[0].Submit)
			if err != nil {
				return t, err
			}
			total[k] = outs[4*i+2+k].Results.CompEnergy + rep.TotalIdleSideEnergy()
		}
		t.AddRow(w,
			pct(dvfsOnly.Results.TotalEnergyLow/denom),
			pct(total[0]/denom),
			pct(total[1]/denom))
	}
	return t, nil
}
