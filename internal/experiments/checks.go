package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Check is one verifiable claim of the reproduction.
type Check struct {
	Name   string
	Detail string // measured evidence, filled in by RunChecks
	Pass   bool
}

// RunChecks evaluates every qualitative claim of DESIGN.md §6 against the
// suite's grid and returns the checklist. It is the programmatic form of
// the reproduction: cmd/reprocheck prints it, tests assert it.
func RunChecks(s *Suite) ([]Check, error) {
	var checks []Check
	add := func(name string, pass bool, detail string, args ...any) {
		checks = append(checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	// 1. Baseline anchors near Table 1. The generators are calibrated at
	// the paper's 5000-job segments; shorter suites skip this check.
	if s.Jobs() >= 4000 {
		worstDev := 0.0
		worstName := ""
		for _, w := range Workloads() {
			base, err := s.baselineCell(w)
			if err != nil {
				return nil, err
			}
			want := PaperTable1BSLD[w]
			dev := math.Abs(base.Results.AvgBSLD-want) / want
			if dev > worstDev {
				worstDev, worstName = dev, w
			}
		}
		add("baseline BSLDs anchor to Table 1", worstDev < 0.35,
			"worst deviation %.0f%% (%s)", 100*worstDev, worstName)
	} else {
		add("baseline BSLDs anchor to Table 1", true,
			"skipped: calibration holds at 5000-job segments (running %d)", s.Jobs())
	}

	// 2. Computational energy never above baseline.
	maxRatio := 0.0
	for _, w := range Workloads() {
		base, err := s.baselineCell(w)
		if err != nil {
			return nil, err
		}
		for _, thr := range BSLDThresholds() {
			for _, wq := range WQThresholds() {
				c, err := s.Cell(Config{Workload: w, BSLDThr: thr, WQThr: wq})
				if err != nil {
					return nil, err
				}
				maxRatio = math.Max(maxRatio, c.Results.CompEnergy/base.Results.CompEnergy)
			}
		}
	}
	add("Eidle=0 energy never exceeds baseline", maxRatio <= 1.0001,
		"max normalized energy %.4f", maxRatio)

	// 3. SDSC (saturated) saves least at the central setting.
	savings := map[string]float64{}
	for _, w := range Workloads() {
		base, err := s.baselineCell(w)
		if err != nil {
			return nil, err
		}
		c, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: core.NoWQLimit})
		if err != nil {
			return nil, err
		}
		savings[w] = 1 - c.Results.CompEnergy/base.Results.CompEnergy
	}
	sdscLeast := true
	for _, w := range Workloads() {
		if w != "SDSC" && savings["SDSC"] > savings[w] {
			sdscLeast = false
		}
	}
	add("saturated SDSC saves least at (2,NO)", sdscLeast,
		"SDSC %.1f%%, others %.1f–%.1f%%", 100*savings["SDSC"],
		100*minOther(savings), 100*maxOther(savings))

	// 4. Relaxing WQthreshold increases savings.
	wqMonotone := true
	for _, w := range Workloads() {
		for _, thr := range BSLDThresholds() {
			strict, err := s.Cell(Config{Workload: w, BSLDThr: thr, WQThr: 0})
			if err != nil {
				return nil, err
			}
			loose, err := s.Cell(Config{Workload: w, BSLDThr: thr, WQThr: core.NoWQLimit})
			if err != nil {
				return nil, err
			}
			if loose.Results.CompEnergy > strict.Results.CompEnergy*1.02 {
				wqMonotone = false
			}
		}
	}
	add("removing the WQ limit saves at least as much", wqMonotone, "checked all 15 pairs")

	// 5. Average savings band at the paper's settings.
	avg := func(thr float64, wq int) (float64, error) {
		sum := 0.0
		for _, w := range Workloads() {
			base, err := s.baselineCell(w)
			if err != nil {
				return 0, err
			}
			c, err := s.Cell(Config{Workload: w, BSLDThr: thr, WQThr: wq})
			if err != nil {
				return 0, err
			}
			sum += 100 * (1 - c.Results.CompEnergy/base.Results.CompEnergy)
		}
		return sum / float64(len(Workloads())), nil
	}
	conservativeAvg, err := avg(1.5, 0)
	if err != nil {
		return nil, err
	}
	aggressiveAvg, err := avg(3, core.NoWQLimit)
	if err != nil {
		return nil, err
	}
	add("average savings rise with permissiveness toward the paper's band",
		conservativeAvg > 2 && aggressiveAvg > conservativeAvg && aggressiveAvg < 45,
		"(1.5,0): %.1f%%, (3,NO): %.1f%% (paper: 7–18%% avg, 22%% best)",
		conservativeAvg, aggressiveAvg)

	// 6. DVFS worsens average BSLD.
	penaltyOK := true
	for _, w := range Workloads() {
		base, err := s.baselineCell(w)
		if err != nil {
			return nil, err
		}
		c, err := s.Cell(Config{Workload: w, BSLDThr: 3, WQThr: core.NoWQLimit})
		if err != nil {
			return nil, err
		}
		if c.Results.AvgBSLD < base.Results.AvgBSLD*0.9 {
			penaltyOK = false
		}
	}
	add("frequency scaling penalizes performance", penaltyOK, "checked at (3,NO)")

	// 7. Enlarged systems, the dimensioning headline, as two sub-claims:
	// the conservative WQ=0 setting preserves (or improves) performance at
	// +20% on the congested workloads...
	if s.Jobs() >= 4000 {
		perfOK := 0
		for _, w := range []string{"CTC", "SDSC", "SDSCBlue"} {
			base, err := s.baselineCell(w)
			if err != nil {
				return nil, err
			}
			c, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: 0, SizeFactor: 1.2})
			if err != nil {
				return nil, err
			}
			if c.Results.CompEnergy < base.Results.CompEnergy && c.Results.AvgBSLD <= base.Results.AvgBSLD*1.05 {
				perfOK++
			}
		}
		add("+20% machine (WQ=0): savings at same-or-better performance", perfOK >= 2,
			"%d of 3 congested workloads", perfOK)
	} else {
		add("+20% machine (WQ=0): savings at same-or-better performance", true,
			"skipped: evaluated at 5000-job segments (running %d)", s.Jobs())
	}
	// ...and the permissive WQ=NO setting delivers the ~25–30% average
	// energy cut the paper quotes.
	sumSave := 0.0
	for _, w := range Workloads() {
		base, err := s.baselineCell(w)
		if err != nil {
			return nil, err
		}
		c, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: core.NoWQLimit, SizeFactor: 1.2})
		if err != nil {
			return nil, err
		}
		sumSave += 100 * (1 - c.Results.CompEnergy/base.Results.CompEnergy)
	}
	avgSave20 := sumSave / float64(len(Workloads()))
	add("+20% machine (WQ=NO): average savings near the paper's ~30%", avgSave20 > 15,
		"average %.1f%%", avgSave20)

	// 8. Eidle=low has a rising tail (interior minimum).
	rising := 0
	for _, w := range Workloads() {
		var min, last float64
		for i, sf := range SizeFactors() {
			c, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: core.NoWQLimit, SizeFactor: sf})
			if err != nil {
				return nil, err
			}
			e := c.Results.TotalEnergyLow
			if i == 0 || e < min {
				min = e
			}
			last = e
		}
		if last > min*1.01 {
			rising++
		}
	}
	add("Eidle=low grows again on very large machines", rising >= 3,
		"%d of 5 workloads show the interior minimum", rising)

	// 9. Figure 4's non-monotone reduced-job counts exist.
	nonMono := false
	for _, w := range Workloads() {
		for _, wq := range WQThresholds() {
			lo, err := s.Cell(Config{Workload: w, BSLDThr: 1.5, WQThr: wq})
			if err != nil {
				return nil, err
			}
			hi, err := s.Cell(Config{Workload: w, BSLDThr: 2, WQThr: wq})
			if err != nil {
				return nil, err
			}
			if hi.Results.ReducedJobs < lo.Results.ReducedJobs {
				nonMono = true
			}
		}
	}
	add("higher threshold can reduce fewer jobs (Fig 4)", nonMono, "observed")

	return checks, nil
}

func minOther(m map[string]float64) float64 {
	min := math.Inf(1)
	for w, v := range m {
		if w != "SDSC" && v < min {
			min = v
		}
	}
	return min
}

func maxOther(m map[string]float64) float64 {
	max := math.Inf(-1)
	for w, v := range m {
		if w != "SDSC" && v > max {
			max = v
		}
	}
	return max
}
