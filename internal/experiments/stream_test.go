package experiments

import "testing"

// TestStreamingSuiteMatchesMaterialized: a streaming suite's cells are
// bit-identical to the default suite's — the experiment tables cannot
// tell which workload pipeline produced them.
func TestStreamingSuiteMatchesMaterialized(t *testing.T) {
	cfgs := []Config{
		{Workload: "CTC"},
		{Workload: "CTC", BSLDThr: 2, WQThr: 16},
		{Workload: "SDSCBlue", BSLDThr: 3, WQThr: 0, SizeFactor: 1.2},
	}
	mat, str := NewSuite(400), NewStreamingSuite(400)
	for _, cfg := range cfgs {
		want, err := mat.Cell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := str.Cell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Results != want.Results || got.CPUs != want.CPUs {
			t.Fatalf("cell %+v: streaming results differ", cfg)
		}
		if len(got.WaitSeries) != len(want.WaitSeries) {
			t.Fatalf("cell %+v: wait series %d vs %d points", cfg, len(got.WaitSeries), len(want.WaitSeries))
		}
		for i := range got.WaitSeries {
			if got.WaitSeries[i] != want.WaitSeries[i] {
				t.Fatalf("cell %+v: wait series point %d differs", cfg, i)
			}
		}
	}
}
