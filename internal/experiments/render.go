package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/textplot"
)

// artifact is one rendered table destined for the terminal and a CSV file.
type artifact struct {
	name  string
	table textplot.Table
}

// writeCSVs persists the artifacts into csvDir (created if needed).
func writeCSVs(artifacts []artifact, csvDir string) error {
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	for _, a := range artifacts {
		path := filepath.Join(csvDir, a.name+".csv")
		if err := os.WriteFile(path, []byte(a.table.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// RunAll executes the complete reproduction — every table and figure of
// the paper — writing rendered text to w and, when csvDir is non-empty,
// one CSV file per artifact into that directory. workers bounds the
// parallelism of the simulation grid (<=0 selects GOMAXPROCS).
func RunAll(s *Suite, w io.Writer, csvDir string, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if err := s.Prefetch(GridConfigs(), workers); err != nil {
		return err
	}

	var artifacts []artifact
	add := func(name string, t textplot.Table, err error) error {
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		artifacts = append(artifacts, artifact{name, t})
		return nil
	}

	t1, err := Table1(s)
	if err := add("table1", t1, err); err != nil {
		return err
	}
	if err := add("table2", Table2(), nil); err != nil {
		return err
	}
	f3a, err := Fig3(s, EnergyIdleZero)
	if err := add("fig3_idle0", f3a, err); err != nil {
		return err
	}
	f3b, err := Fig3(s, EnergyIdleLow)
	if err := add("fig3_idlelow", f3b, err); err != nil {
		return err
	}
	f4, err := Fig4(s)
	if err := add("fig4", f4, err); err != nil {
		return err
	}
	f5, err := Fig5(s)
	if err := add("fig5", f5, err); err != nil {
		return err
	}
	chart, f6, err := Fig6(s)
	if err := add("fig6", f6, err); err != nil {
		return err
	}
	f7a, err := Fig7(s, EnergyIdleZero)
	if err := add("fig7_idle0", f7a, err); err != nil {
		return err
	}
	f7b, err := Fig7(s, EnergyIdleLow)
	if err := add("fig7_idlelow", f7b, err); err != nil {
		return err
	}
	f8a, err := Fig8(s, EnergyIdleZero)
	if err := add("fig8_idle0", f8a, err); err != nil {
		return err
	}
	f8b, err := Fig8(s, EnergyIdleLow)
	if err := add("fig8_idlelow", f8b, err); err != nil {
		return err
	}
	f9, err := Fig9(s)
	if err := add("fig9", f9, err); err != nil {
		return err
	}
	t3, err := Table3(s)
	if err := add("table3", t3, err); err != nil {
		return err
	}

	for _, a := range artifacts {
		if _, err := fmt.Fprintf(w, "%s\n", a.table.Render()); err != nil {
			return err
		}
		if a.name == "fig6" {
			if _, err := fmt.Fprintf(w, "%s\n", chart); err != nil {
				return err
			}
		}
	}

	if csvDir != "" {
		if err := writeCSVs(artifacts, csvDir); err != nil {
			return err
		}
		// The full Figure 6 series as CSV (the table only summarizes it).
		origCells, dvfsCells, err := Fig6Series(s)
		if err != nil {
			return err
		}
		series := textplot.Table{Header: []string{"submit_s", "wait_orig_s", "wait_dvfs_2_16_s"}}
		orig, dvfsRun := origCells[0].WaitSeries, dvfsCells[0].WaitSeries
		for i := range orig {
			row := []string{fmt.Sprintf("%.0f", orig[i].Submit), fmt.Sprintf("%.0f", orig[i].Wait), ""}
			if i < len(dvfsRun) {
				row[2] = fmt.Sprintf("%.0f", dvfsRun[i].Wait)
			}
			series.AddRow(row...)
		}
		path := filepath.Join(csvDir, "fig6_series.csv")
		if err := os.WriteFile(path, []byte(series.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// RunExtensions executes the beyond-the-paper experiments (dynamic boost,
// per-job β, node power-down) and renders them like RunAll.
func RunExtensions(s *Suite, w io.Writer, csvDir string) error {
	var artifacts []artifact
	boost, err := ExtBoost(s)
	if err != nil {
		return fmt.Errorf("experiments: ext-boost: %w", err)
	}
	artifacts = append(artifacts, artifact{"ext_boost", boost})
	beta, err := ExtPerJobBeta(s)
	if err != nil {
		return fmt.Errorf("experiments: ext-beta: %w", err)
	}
	artifacts = append(artifacts, artifact{"ext_perjob_beta", beta})
	pd, err := ExtPowerDown(s)
	if err != nil {
		return fmt.Errorf("experiments: ext-powerdown: %w", err)
	}
	artifacts = append(artifacts, artifact{"ext_powerdown", pd})
	sweep, err := ExtLoadSweep(s, "SDSCBlue")
	if err != nil {
		return fmt.Errorf("experiments: ext-loadsweep: %w", err)
	}
	artifacts = append(artifacts, artifact{"ext_loadsweep", sweep})
	est, err := ExtEstimateQuality(s, "CTC")
	if err != nil {
		return fmt.Errorf("experiments: ext-estimates: %w", err)
	}
	artifacts = append(artifacts, artifact{"ext_estimates", est})
	polCmp, err := ExtPolicyComparison(s)
	if err != nil {
		return fmt.Errorf("experiments: ext-policycmp: %w", err)
	}
	artifacts = append(artifacts, artifact{"ext_policycmp", polCmp})
	seeds, err := ExtSeedSensitivity(s, 5)
	if err != nil {
		return fmt.Errorf("experiments: ext-seeds: %w", err)
	}
	artifacts = append(artifacts, artifact{"ext_seeds", seeds})
	cap, err := ExtPowerCap(s, "CTC")
	if err != nil {
		return fmt.Errorf("experiments: ext-powercap: %w", err)
	}
	artifacts = append(artifacts, artifact{"ext_powercap", cap})
	for _, a := range artifacts {
		if _, err := fmt.Fprintf(w, "%s\n", a.table.Render()); err != nil {
			return err
		}
	}
	if csvDir != "" {
		return writeCSVs(artifacts, csvDir)
	}
	return nil
}
