package runner

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/wgen"
)

// streamSpecPair builds identical specs over the materialized and the
// streamed form of one preset segment.
func streamSpecPair(t *testing.T, jobs int, mutate func(*Spec)) (Spec, Spec) {
	t.Helper()
	m := wgen.CTC()
	m.Jobs = jobs
	tr, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	src, err := wgen.Stream(m)
	if err != nil {
		t.Fatal(err)
	}
	a := Spec{Trace: tr}
	b := Spec{Source: src}
	if mutate != nil {
		mutate(&a)
		mutate(&b)
	}
	return a, b
}

// policy builds the paper's gear policy for the streaming tests.
func policy(t *testing.T) sched.GearPolicy {
	t.Helper()
	gears := dvfs.PaperGearSet()
	pol, err := core.NewPolicy(core.Params{BSLDThreshold: 2, WQThreshold: 16},
		gears, dvfs.NewTimeModel(DefaultBeta, gears))
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestRunSourceMatchesTrace: a Spec driven by a lazily generating source
// produces bit-identical Results to the same Spec over the materialized
// trace, across scheduling variants and with the power-aware policy.
func TestRunSourceMatchesTrace(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"easy-nodvfs", nil},
		{"easy-policy", func(s *Spec) { s.Policy = policy(t) }},
		{"conservative", func(s *Spec) { s.Variant = sched.Conservative }},
		{"sjf-sized", func(s *Spec) { s.Order = sched.SJFOrder; s.SizeFactor = 1.2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := streamSpecPair(t, 600, tc.mutate)
			outA, err := Run(a)
			if err != nil {
				t.Fatal(err)
			}
			outB, err := Run(b)
			if err != nil {
				t.Fatal(err)
			}
			if outA.Results != outB.Results {
				t.Fatalf("streamed Results differ:\ntrace:  %+v\nsource: %+v", outA.Results, outB.Results)
			}
			if outA.CPUs != outB.CPUs || outA.PeakEvents != outB.PeakEvents {
				t.Fatalf("outcome metadata differs: cpus %d/%d peak %d/%d",
					outA.CPUs, outB.CPUs, outA.PeakEvents, outB.PeakEvents)
			}
		})
	}
}

// TestRunSourceRepeatable: Run rewinds the source, so the same Spec (and
// BaselinePair, which reuses it) executes any number of times.
func TestRunSourceRepeatable(t *testing.T) {
	_, b := streamSpecPair(t, 400, func(s *Spec) { s.Policy = policy(t) })
	first, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if first.Results != second.Results {
		t.Fatal("rerun over the same source diverged")
	}
	withPol, base, err := BaselinePair(b)
	if err != nil {
		t.Fatal(err)
	}
	if withPol.Results != first.Results {
		t.Fatal("BaselinePair policy run diverged")
	}
	if base.Results == first.Results {
		t.Fatal("baseline unexpectedly identical to the policy run")
	}
}

// TestRunWorkloadInputValidation: exactly one of Trace and Source.
func TestRunWorkloadInputValidation(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Fatal("accepted a spec with no workload")
	}
	a, b := streamSpecPair(t, 10, nil)
	both := Spec{Trace: a.Trace, Source: b.Source}
	if _, err := Run(both); err == nil {
		t.Fatal("accepted a spec with both Trace and Source")
	}
}

// TestRunSourceKeepCollector: per-job records work over streamed
// workloads too (the jobs are allocated per arrival and retained by the
// collector).
func TestRunSourceKeepCollector(t *testing.T) {
	a, b := streamSpecPair(t, 300, func(s *Spec) { s.KeepCollector = true })
	outA, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	recA, recB := outA.Collector.Records(), outB.Collector.Records()
	if len(recA) != 300 || len(recB) != 300 {
		t.Fatalf("records %d/%d, want 300", len(recA), len(recB))
	}
	for i := range recA {
		if recA[i].Job.ID != recB[i].Job.ID || recA[i].Start != recB[i].Start ||
			recA[i].BSLD != recB[i].BSLD || recA[i].Energy != recB[i].Energy {
			t.Fatalf("record %d differs: %+v vs %+v", i, recA[i], recB[i])
		}
	}
}
