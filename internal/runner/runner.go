// Package runner wires a workload trace, a cluster configuration and a
// gear policy into one simulation run and returns the aggregated metrics.
// It is the legacy single-run entry point the CLI tools, examples,
// experiments and benchmarks share; since the scenario layer landed it is
// a thin adapter — Run compiles the Spec through scenario.Compile and
// executes the result, byte-identically to the pre-scenario code path.
// New code that executes one description many times (sweeps, servers)
// should compile a scenario.Scenario directly and reuse it.
package runner

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/workload"
)

// DefaultBeta is the β of the execution time model the paper assumes for
// all jobs.
const DefaultBeta = scenario.DefaultBeta

// Spec describes one simulation run. Zero values select the paper's
// defaults.
type Spec struct {
	// Trace is the materialized workload. Exactly one of Trace and Source
	// must be set.
	Trace *workload.Trace
	// Source streams the workload instead of materializing it: a replay
	// holds O(running jobs) live memory regardless of trace length. Run
	// rewinds the source, so the same Spec can be executed repeatedly
	// (BaselinePair does).
	Source workload.JobSource

	// SizeFactor scales the machine relative to the trace's original
	// system (1.0 = original, 1.2 = "20% increased"). Zero means 1.0.
	SizeFactor float64
	// CPUs overrides the machine size outright when non-zero.
	CPUs int

	Variant sched.Variant
	// Policy assigns gears; nil runs the no-DVFS baseline (top gear).
	Policy sched.GearPolicy
	// Selection maps job processes to processors (First Fit default).
	Selection cluster.Selection
	// Order is the queue discipline (FCFS default).
	Order sched.Order
	// Reservations is the EASY reservation depth (0/1 classic).
	Reservations int

	Gears dvfs.GearSet // nil → paper gear set

	// PowerModel overrides the paper's power model when non-nil.
	PowerModel *dvfs.PowerModel

	// Controller configures the closed-loop power controller; the zero
	// value runs without one (the pre-controller code path, hash
	// included).
	Controller scenario.ControllerConfig

	// Beta is the β of the execution time model. By legacy convention the
	// zero value means "use DefaultBeta" — an explicit 0 cannot be
	// expressed here; use scenario.Spec (whose *float64 Beta rejects
	// non-positive values instead of masking them) if you need to
	// distinguish unset from zero.
	Beta float64
	// ShortJobTh is Th of the BSLD formula. Zero means
	// core.DefaultShortJobThreshold (600 s) by the same legacy
	// convention; see Beta.
	ShortJobTh float64

	// KeepCollector retains per-job records in the outcome (needed for
	// wait-time series, Figure 6).
	KeepCollector bool

	// ExtraRecorders observe the run alongside the metrics collector
	// (e.g. nodepower.Tracker for the power-down baseline).
	ExtraRecorders []sched.Recorder

	// Compat re-enables seed-era scheduler hot-path behavior; zero (the
	// optimized path) for all production runs. Benchmarks and determinism
	// regressions use sched.SeedCompat() to compare implementations.
	Compat sched.Compat
}

// Outcome is the result of one run; it is the scenario layer's Outcome.
type Outcome = scenario.Outcome

// Compile resolves the legacy Spec into a compiled scenario, which can
// then be executed any number of times (concurrently, when backed by a
// Trace). Run and BaselinePair are Compile + Execute.
func Compile(spec Spec) (*scenario.Scenario, error) {
	if spec.Trace == nil && spec.Source == nil {
		return nil, fmt.Errorf("runner: no workload input: set exactly one of Spec.Trace and Spec.Source")
	}
	if spec.Trace != nil && spec.Source != nil {
		return nil, fmt.Errorf("runner: both Trace and Source set; choose one workload input")
	}
	ss := scenario.Spec{
		Trace:          spec.Trace,
		Source:         spec.Source,
		GearPolicy:     spec.Policy,
		SizeFactor:     spec.SizeFactor,
		CPUs:           spec.CPUs,
		Variant:        spec.Variant.String(),
		Selection:      spec.Selection.String(),
		Order:          spec.Order.String(),
		Reservations:   spec.Reservations,
		Gears:          spec.Gears,
		PowerModel:     spec.PowerModel,
		Controller:     spec.Controller,
		KeepCollector:  spec.KeepCollector,
		ExtraRecorders: spec.ExtraRecorders,
		Compat:         spec.Compat,
	}
	// Legacy zero-means-default: only forward explicitly set values; the
	// scenario layer then rejects non-positive ones loudly.
	if spec.Beta != 0 {
		beta := spec.Beta
		ss.Beta = &beta
	}
	if spec.ShortJobTh != 0 {
		th := spec.ShortJobTh
		ss.ShortJobTh = &th
	}
	return scenario.Compile(ss)
}

// Run executes the simulation described by spec.
func Run(spec Spec) (Outcome, error) {
	sc, err := Compile(spec)
	if err != nil {
		return Outcome{}, err
	}
	return sc.Execute()
}

// BaselinePair runs the spec once with its policy and once as the no-DVFS
// baseline on the same machine size, returning (policy, baseline).
// Normalized energies in the paper are always relative to such baselines.
func BaselinePair(spec Spec) (Outcome, Outcome, error) {
	sc, err := Compile(spec)
	if err != nil {
		return Outcome{}, Outcome{}, err
	}
	return sc.ExecutePair()
}
