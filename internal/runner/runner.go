// Package runner wires a workload trace, a cluster configuration and a
// gear policy into one simulation run and returns the aggregated metrics.
// It is the single entry point the CLI tools, examples, experiments and
// benchmarks share.
package runner

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// DefaultBeta is the β of the execution time model the paper assumes for
// all jobs.
const DefaultBeta = 0.5

// Spec describes one simulation run. Zero values select the paper's
// defaults.
type Spec struct {
	// Trace is the materialized workload. Exactly one of Trace and Source
	// must be set.
	Trace *workload.Trace
	// Source streams the workload instead of materializing it: a replay
	// holds O(running jobs) live memory regardless of trace length. Run
	// rewinds the source, so the same Spec can be executed repeatedly
	// (BaselinePair does).
	Source workload.JobSource

	// SizeFactor scales the machine relative to the trace's original
	// system (1.0 = original, 1.2 = "20% increased"). Zero means 1.0.
	SizeFactor float64
	// CPUs overrides the machine size outright when non-zero.
	CPUs int

	Variant sched.Variant
	// Policy assigns gears; nil runs the no-DVFS baseline (top gear).
	Policy sched.GearPolicy
	// Selection maps job processes to processors (First Fit default).
	Selection cluster.Selection
	// Order is the queue discipline (FCFS default).
	Order sched.Order
	// Reservations is the EASY reservation depth (0/1 classic).
	Reservations int

	Gears      dvfs.GearSet     // nil → paper gear set
	PowerModel *dvfs.PowerModel // nil → paper power model
	Beta       float64          // 0 → DefaultBeta
	ShortJobTh float64          // 0 → core.DefaultShortJobThreshold

	// KeepCollector retains per-job records in the outcome (needed for
	// wait-time series, Figure 6).
	KeepCollector bool

	// ExtraRecorders observe the run alongside the metrics collector
	// (e.g. nodepower.Tracker for the power-down baseline).
	ExtraRecorders []sched.Recorder

	// Compat re-enables seed-era scheduler hot-path behavior; zero (the
	// optimized path) for all production runs. Benchmarks and determinism
	// regressions use sched.SeedCompat() to compare implementations.
	Compat sched.Compat
}

// Outcome is the result of one run.
type Outcome struct {
	Results   metrics.Results
	Collector *metrics.Collector // nil unless Spec.KeepCollector
	Policy    string
	CPUs      int
	// PeakEvents is the high-water mark of the simulation event heap, a
	// scale diagnostic: O(running jobs) on the optimized hot path versus
	// O(trace) under Compat.UpfrontArrivals.
	PeakEvents int
}

// Run executes the simulation described by spec.
func Run(spec Spec) (Outcome, error) {
	if spec.Trace == nil && spec.Source == nil {
		return Outcome{}, fmt.Errorf("runner: nil trace")
	}
	if spec.Trace != nil && spec.Source != nil {
		return Outcome{}, fmt.Errorf("runner: both Trace and Source set; choose one workload input")
	}
	gears := spec.Gears
	if gears == nil {
		gears = dvfs.PaperGearSet()
	}
	pm := spec.PowerModel
	if pm == nil {
		pm = dvfs.PaperPowerModel()
	}
	beta := spec.Beta
	if beta == 0 {
		beta = DefaultBeta
	}
	th := spec.ShortJobTh
	if th == 0 {
		th = core.DefaultShortJobThreshold
	}
	baseCPUs := 0
	if spec.Trace != nil {
		baseCPUs = spec.Trace.CPUs
	} else {
		baseCPUs = spec.Source.CPUs()
	}
	cpus := spec.CPUs
	if cpus == 0 {
		f := spec.SizeFactor
		if f == 0 {
			f = 1
		}
		if f <= 0 {
			return Outcome{}, fmt.Errorf("runner: non-positive size factor %v", spec.SizeFactor)
		}
		cpus = int(math.Round(float64(baseCPUs) * f))
	}
	pol := spec.Policy
	if pol == nil {
		pol = sched.FixedGear{Gear: gears.Top()}
	}
	// Without KeepCollector the run only needs the aggregate Results, so
	// the collector streams: no O(trace) record list is held alive.
	col := metrics.NewStreamingCollector(pm, th)
	if spec.KeepCollector {
		col = metrics.NewCollector(pm, th)
	}
	var rec sched.Recorder = col
	if len(spec.ExtraRecorders) > 0 {
		rec = append(sched.MultiRecorder{col}, spec.ExtraRecorders...)
	}
	sys, err := sched.New(sched.Config{
		CPUs:         cpus,
		Gears:        gears,
		TimeModel:    dvfs.NewTimeModel(beta, gears),
		Policy:       pol,
		Variant:      spec.Variant,
		Recorder:     rec,
		Selection:    spec.Selection,
		Order:        spec.Order,
		Reservations: spec.Reservations,
		Compat:       spec.Compat,
	})
	if err != nil {
		return Outcome{}, err
	}
	if spec.Trace != nil {
		err = sys.Simulate(spec.Trace)
	} else {
		err = sys.SimulateSource(spec.Source)
	}
	if err != nil {
		return Outcome{}, err
	}
	start, end := col.Window()
	busy := sys.Cluster().BusyCPUSeconds(end)
	idle := sys.Cluster().IdleCPUSeconds(start, end)
	out := Outcome{
		Results:    col.Summarize(idle, busy, cpus),
		Policy:     pol.Name(),
		CPUs:       cpus,
		PeakEvents: sys.PeakEvents(),
	}
	if spec.KeepCollector {
		out.Collector = col
	}
	return out, nil
}

// BaselinePair runs the spec once with its policy and once as the no-DVFS
// baseline on the same machine size, returning (policy, baseline).
// Normalized energies in the paper are always relative to such baselines.
func BaselinePair(spec Spec) (Outcome, Outcome, error) {
	withPolicy, err := Run(spec)
	if err != nil {
		return Outcome{}, Outcome{}, err
	}
	base := spec
	base.Policy = nil
	baseline, err := Run(base)
	if err != nil {
		return Outcome{}, Outcome{}, err
	}
	return withPolicy, baseline, nil
}
