package runner

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/wgen"
	"repro/internal/workload"
)

func smallTrace(t *testing.T) *workload.Trace {
	t.Helper()
	m := wgen.CTC()
	m.Jobs = 400
	tr, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func bsldPolicy(t *testing.T, thr float64, wq int) sched.GearPolicy {
	t.Helper()
	gears := dvfs.PaperGearSet()
	p, err := core.NewPolicy(core.Params{BSLDThreshold: thr, WQThreshold: wq},
		gears, dvfs.NewTimeModel(DefaultBeta, gears))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunBaseline(t *testing.T) {
	out, err := Run(Spec{Trace: smallTrace(t)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Results.Jobs != 400 {
		t.Errorf("jobs = %d, want 400", out.Results.Jobs)
	}
	if out.CPUs != 430 {
		t.Errorf("cpus = %d, want 430 (trace size)", out.CPUs)
	}
	if out.Results.ReducedJobs != 0 {
		t.Errorf("baseline reduced jobs = %d, want 0", out.Results.ReducedJobs)
	}
	if out.Results.AvgBSLD < 1 {
		t.Errorf("avg BSLD = %v, want >= 1", out.Results.AvgBSLD)
	}
	if out.Results.CompEnergy <= 0 || out.Results.TotalEnergyLow <= out.Results.CompEnergy {
		t.Errorf("energies: comp %v, total %v", out.Results.CompEnergy, out.Results.TotalEnergyLow)
	}
}

func TestRunRejectsNilTrace(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestRunSizeFactor(t *testing.T) {
	out, err := Run(Spec{Trace: smallTrace(t), SizeFactor: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if out.CPUs != 516 {
		t.Errorf("cpus = %d, want 516 (430×1.2)", out.CPUs)
	}
	if _, err := Run(Spec{Trace: smallTrace(t), SizeFactor: -1}); err == nil {
		t.Error("negative size factor accepted")
	}
}

func TestRunExplicitCPUs(t *testing.T) {
	out, err := Run(Spec{Trace: smallTrace(t), CPUs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if out.CPUs != 1000 {
		t.Errorf("cpus = %d, want 1000", out.CPUs)
	}
}

// The central energy claim: with the paper's power model and β=0.5,
// frequency scaling can only reduce computational energy.
func TestDVFSNeverIncreasesComputationalEnergy(t *testing.T) {
	tr := smallTrace(t)
	pol, base, err := BaselinePair(Spec{Trace: tr, Policy: bsldPolicy(t, 2, core.NoWQLimit)})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Results.CompEnergy > base.Results.CompEnergy*(1+1e-9) {
		t.Errorf("DVFS comp energy %v exceeds baseline %v",
			pol.Results.CompEnergy, base.Results.CompEnergy)
	}
	if pol.Results.ReducedJobs == 0 {
		t.Error("policy reduced no jobs on a moderately loaded trace")
	}
	// Performance must not improve: frequency scaling penalizes BSLD.
	if pol.Results.AvgBSLD < base.Results.AvgBSLD-1e-9 {
		t.Errorf("DVFS avg BSLD %v better than baseline %v",
			pol.Results.AvgBSLD, base.Results.AvgBSLD)
	}
}

// BaselinePair must run the exact same machine twice — once with the
// policy, once at the top gear — since every normalized energy in the
// paper divides by such a baseline.
func TestBaselinePair(t *testing.T) {
	tr := smallTrace(t)
	cases := []struct {
		name string
		spec Spec
	}{
		{"original size", Spec{Trace: tr, Policy: bsldPolicy(t, 2, 16)}},
		{"enlarged", Spec{Trace: tr, Policy: bsldPolicy(t, 2, core.NoWQLimit), SizeFactor: 1.5}},
		{"explicit cpus", Spec{Trace: tr, Policy: bsldPolicy(t, 3, 0), CPUs: 600}},
		{"fcfs variant", Spec{Trace: tr, Policy: bsldPolicy(t, 1.5, 4), Variant: sched.FCFS}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol, base, err := BaselinePair(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if pol.CPUs != base.CPUs {
				t.Errorf("machine sizes differ: policy %d, baseline %d", pol.CPUs, base.CPUs)
			}
			if base.Results.ReducedJobs != 0 {
				t.Errorf("baseline reduced %d jobs", base.Results.ReducedJobs)
			}
			if base.Policy == pol.Policy {
				t.Errorf("baseline policy name %q equals the DVFS policy's", base.Policy)
			}
			// The baseline leg must be identical to a plain no-policy run.
			plain := tc.spec
			plain.Policy = nil
			want, err := Run(plain)
			if err != nil {
				t.Fatal(err)
			}
			if base.Results != want.Results {
				t.Error("baseline leg differs from a direct no-policy run")
			}
		})
	}
}

func TestBaselinePairPropagatesErrors(t *testing.T) {
	if _, _, err := BaselinePair(Spec{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, _, err := BaselinePair(Spec{Trace: smallTrace(t), SizeFactor: -2}); err == nil {
		t.Error("negative size factor accepted")
	}
}

func TestKeepCollector(t *testing.T) {
	out, err := Run(Spec{Trace: smallTrace(t), KeepCollector: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Collector == nil {
		t.Fatal("collector not kept")
	}
	if len(out.Collector.WaitSeries()) != 400 {
		t.Errorf("wait series = %d points", len(out.Collector.WaitSeries()))
	}
	out2, _ := Run(Spec{Trace: smallTrace(t)})
	if out2.Collector != nil {
		t.Error("collector kept without KeepCollector")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := Spec{Trace: smallTrace(t), Policy: bsldPolicy(t, 2, 16)}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Results != b.Results {
		t.Errorf("identical specs produced different results:\n%+v\n%+v", a.Results, b.Results)
	}
}

// Enlarging the system must improve (or preserve) job performance under
// the same policy — the monotonicity behind Figure 9.
func TestLargerSystemNoWorseBSLD(t *testing.T) {
	tr := smallTrace(t)
	small, err := Run(Spec{Trace: tr, SizeFactor: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Spec{Trace: tr, SizeFactor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if big.Results.AvgBSLD > small.Results.AvgBSLD*1.02 {
		t.Errorf("50%% larger system worsened BSLD: %v vs %v",
			big.Results.AvgBSLD, small.Results.AvgBSLD)
	}
}

func TestBetaZeroMeansNoDilationPenalty(t *testing.T) {
	tr := smallTrace(t)
	// With β≈0 the lowest gear never dilates, so every job is reduced and
	// wall-clock schedules match the baseline exactly.
	out, err := Run(Spec{Trace: tr, Policy: bsldPolicy(t, 1.5, core.NoWQLimit), Beta: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Spec{Trace: tr, Beta: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Results.AvgWait-base.Results.AvgWait) > 1e-6 {
		t.Errorf("β=0: wait changed (%v vs %v)", out.Results.AvgWait, base.Results.AvgWait)
	}
	// Nearly every job is reduced; the exception is a job whose *wait*
	// alone pushes predicted BSLD over the threshold, which falls back to
	// Ftop by design (Figure 1's else branch).
	if out.Results.ReducedJobs < out.Results.Jobs*95/100 {
		t.Errorf("β=0: reduced %d of %d jobs, want ≥95%%", out.Results.ReducedJobs, out.Results.Jobs)
	}
}

func TestRunOrderAndReservationsPassThrough(t *testing.T) {
	// The saturated SDSC model keeps a deep queue, so the order option
	// visibly changes the schedule.
	m := wgen.SDSC()
	m.Jobs = 400
	tr, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	fcfsOrder, err := Run(Spec{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	sjf, err := Run(Spec{Trace: tr, Order: sched.SJFOrder})
	if err != nil {
		t.Fatal(err)
	}
	if sjf.Results.AvgWait == fcfsOrder.Results.AvgWait {
		t.Error("SJF order produced the identical schedule; option not applied")
	}
	flex, err := Run(Spec{Trace: tr, Reservations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if flex.Results.Jobs != fcfsOrder.Results.Jobs {
		t.Error("flexible run lost jobs")
	}
	// Deep flexible equals conservative.
	deep, err := Run(Spec{Trace: tr, Reservations: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Run(Spec{Trace: tr, Variant: sched.Conservative})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Results.AvgWait != cons.Results.AvgWait {
		t.Errorf("deep flexible wait %v != conservative %v",
			deep.Results.AvgWait, cons.Results.AvgWait)
	}
}

func TestRunSelectionPassThrough(t *testing.T) {
	tr := smallTrace(t)
	ff, err := Run(Spec{Trace: tr, KeepCollector: true})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := Run(Spec{Trace: tr, Selection: cluster.ContiguousBestFit, KeepCollector: true})
	if err != nil {
		t.Fatal(err)
	}
	// Identical scheduling metrics (processor identity is timing-neutral)...
	if ff.Results.AvgWait != cont.Results.AvgWait || ff.Results.AvgBSLD != cont.Results.AvgBSLD {
		t.Error("selection policy changed scheduling times on a flat machine")
	}
	// ...but placement contiguity improves or holds.
	if cont.Results.MeanAllocRuns > ff.Results.MeanAllocRuns {
		t.Errorf("contiguous selection runs %v worse than first fit %v",
			cont.Results.MeanAllocRuns, ff.Results.MeanAllocRuns)
	}
}

// TestRunWorkloadErrorMessages pins both error branches of the workload
// input check: no input names both fields (the old message blamed only
// the trace), and a double input names the conflict.
func TestRunWorkloadErrorMessages(t *testing.T) {
	_, err := Run(Spec{})
	if err == nil {
		t.Fatal("empty spec accepted")
	}
	for _, want := range []string{"Trace", "Source"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("no-workload error %q does not name Spec.%s", err, want)
		}
	}
	tr := smallTrace(t)
	_, err = Run(Spec{Trace: tr, Source: tr.Source()})
	if err == nil {
		t.Fatal("spec with both Trace and Source accepted")
	}
	if !strings.Contains(err.Error(), "both Trace and Source") {
		t.Errorf("double-workload error %q does not name the conflict", err)
	}
}

// TestCompileExposesScenario: the legacy Spec adapts onto a compiled
// scenario whose direct execution is bit-identical to Run.
func TestCompileExposesScenario(t *testing.T) {
	tr := smallTrace(t)
	spec := Spec{Trace: tr, Policy: bsldPolicy(t, 2, core.NoWQLimit)}
	sc, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Hash() == "" || sc.CPUs() != 430 {
		t.Fatalf("implausible scenario: hash %q cpus %d", sc.Hash(), sc.CPUs())
	}
	direct, err := sc.Execute()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Results != legacy.Results {
		t.Fatalf("scenario execution diverged from Run:\n%+v\n%+v",
			direct.Results, legacy.Results)
	}
}
