// Package svgplot renders the reproduction's figures as standalone SVG
// documents using only the standard library, so the paper's grouped-bar
// and line figures can be regenerated as graphics, not just text tables.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// palette cycles across series.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7",
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// layout constants shared by both chart kinds.
const (
	chartW   = 840
	chartH   = 480
	marginL  = 70
	marginR  = 20
	marginT  = 50
	marginB  = 90
	plotW    = chartW - marginL - marginR
	plotH    = chartH - marginT - marginB
	tickN    = 5
	fontFace = `font-family="sans-serif"`
)

func header(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartW, chartH, chartW, chartH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" %s font-size="16" font-weight="bold">%s</text>`+"\n",
		marginL, fontFace, esc(title))
	return b.String()
}

// yAxis draws the axis, gridlines and tick labels for [0, maxY].
func yAxis(b *strings.Builder, maxY float64, label string) {
	for i := 0; i <= tickN; i++ {
		v := maxY * float64(i) / tickN
		y := float64(marginT+plotH) - float64(plotH)*float64(i)/tickN
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" %s font-size="11" text-anchor="end">%.4g</text>`+"\n",
			marginL-6, y+4, fontFace, v)
	}
	fmt.Fprintf(b, `<text x="16" y="%d" %s font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, fontFace, marginT+plotH/2, esc(label))
}

// legend draws the series swatches above the plot.
func legend(b *strings.Builder, names []string) {
	x := marginL
	for i, n := range names {
		color := palette[i%len(palette)]
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", x, 32, color)
		fmt.Fprintf(b, `<text x="%d" y="42" %s font-size="12">%s</text>`+"\n", x+16, fontFace, esc(n))
		x += 16 + 8*len(n) + 24
	}
}

// BarChart renders grouped vertical bars (the Figures 3–5 layout):
// data[group][series], one cluster of len(series) bars per group.
func BarChart(title, yLabel string, groups, series []string, data [][]float64) string {
	var b strings.Builder
	b.WriteString(header(title))
	maxY := 0.0
	for _, row := range data {
		for _, v := range row {
			maxY = math.Max(maxY, v)
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	yAxis(&b, maxY, yLabel)
	legend(&b, series)

	nGroups := len(groups)
	if nGroups == 0 {
		nGroups = 1
	}
	groupW := float64(plotW) / float64(nGroups)
	barW := groupW * 0.8 / math.Max(1, float64(len(series)))
	for g, group := range groups {
		gx := float64(marginL) + groupW*float64(g)
		if g < len(data) {
			for si, v := range data[g] {
				h := v / maxY * float64(plotH)
				x := gx + groupW*0.1 + barW*float64(si)
				y := float64(marginT+plotH) - h
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %.4g</title></rect>`+"\n",
					x, y, barW, h, palette[si%len(palette)], esc(group), esc(series[si%len(series)]), v)
			}
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" %s font-size="11" text-anchor="middle" transform="rotate(-30 %.1f %d)">%s</text>`+"\n",
			gx+groupW/2, marginT+plotH+20, fontFace, gx+groupW/2, marginT+plotH+20, esc(group))
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	b.WriteString("</svg>\n")
	return b.String()
}

// LineChart renders one polyline per series over shared axes (the Figure
// 6–9 layout). Each series is a list of (x, y) points.
func LineChart(title, xLabel, yLabel string, names []string, series [][][2]float64) string {
	var b strings.Builder
	b.WriteString(header(title))
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, s := range series {
		for _, p := range s {
			minX = math.Min(minX, p[0])
			maxX = math.Max(maxX, p[0])
			maxY = math.Max(maxY, p[1])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX = 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= 0 {
		maxY = 1
	}
	yAxis(&b, maxY, yLabel)
	legend(&b, names)
	// X ticks.
	for i := 0; i <= tickN; i++ {
		v := minX + (maxX-minX)*float64(i)/tickN
		x := float64(marginL) + float64(plotW)*float64(i)/tickN
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" %s font-size="11" text-anchor="middle">%.4g</text>`+"\n",
			x, marginT+plotH+18, fontFace, v)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" %s font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, chartH-14, fontFace, esc(xLabel))
	for si, s := range series {
		if len(s) == 0 {
			continue
		}
		var pts []string
		for _, p := range s {
			x := float64(marginL) + (p[0]-minX)/(maxX-minX)*float64(plotW)
			y := float64(marginT+plotH) - p[1]/maxY*float64(plotH)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		color := palette[si%len(palette)]
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for _, p := range s {
			x := float64(marginL) + (p[0]-minX)/(maxX-minX)*float64(plotW)
			y := float64(marginT+plotH) - p[1]/maxY*float64(plotH)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, color)
		}
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	b.WriteString("</svg>\n")
	return b.String()
}
