package svgplot

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the document with encoding/xml, so malformed markup
// (unescaped text, unclosed tags) fails the test.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
}

func TestBarChartWellFormed(t *testing.T) {
	doc := BarChart("Energy <norm> & friends", "energy %",
		[]string{"CTC", "SDSC"}, []string{"WQ 0", "WQ \"NO\""},
		[][]float64{{90, 85}, {99, 91}})
	wellFormed(t, doc)
	if !strings.Contains(doc, "<svg") || !strings.Contains(doc, "</svg>") {
		t.Error("not an svg document")
	}
	// One rect per bar (plus background).
	if n := strings.Count(doc, "<rect"); n < 5 {
		t.Errorf("rect count = %d, want >= 5", n)
	}
	// Escaping of special characters in labels.
	if strings.Contains(doc, "<norm>") {
		t.Error("title not escaped")
	}
}

func TestBarChartEmptyData(t *testing.T) {
	doc := BarChart("t", "y", nil, nil, nil)
	wellFormed(t, doc)
}

func TestLineChartWellFormed(t *testing.T) {
	doc := LineChart("Wait", "size", "seconds",
		[]string{"Orig", "DVFS"},
		[][][2]float64{
			{{1, 100}, {1.5, 50}, {2, 25}},
			{{1, 200}, {1.5, 80}, {2, 30}},
		})
	wellFormed(t, doc)
	if n := strings.Count(doc, "<polyline"); n != 2 {
		t.Errorf("polyline count = %d, want 2", n)
	}
	if n := strings.Count(doc, "<circle"); n != 6 {
		t.Errorf("circle count = %d, want 6", n)
	}
}

func TestLineChartNoData(t *testing.T) {
	wellFormed(t, LineChart("t", "x", "y", nil, nil))
}

func TestLineChartSinglePointSeries(t *testing.T) {
	wellFormed(t, LineChart("t", "x", "y", []string{"a"}, [][][2]float64{{{5, 5}}}))
}
