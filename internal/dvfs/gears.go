// Package dvfs models DVFS-enabled processors: frequency/voltage gear sets,
// the CPU power model (dynamic ACfV² plus static αV), and the β execution
// time dilation model, exactly as described in Section 4 of Etinski et al.,
// "BSLD Threshold Driven Power Management Policy for HPC Centers" (2010).
package dvfs

import (
	"errors"
	"fmt"
	"sort"
)

// Gear is one frequency/voltage operating point of a DVFS processor.
type Gear struct {
	Freq    float64 // clock frequency in GHz
	Voltage float64 // supply voltage in volts
}

// String renders the gear as "2.3GHz@1.5V".
func (g Gear) String() string {
	return fmt.Sprintf("%.1fGHz@%.1fV", g.Freq, g.Voltage)
}

// GearSet is an ordered collection of gears, lowest frequency first.
type GearSet []Gear

// PaperGearSet returns the six-gear set of Table 2 in the paper:
// frequencies 0.8–2.3 GHz paired with voltages 1.0–1.5 V.
func PaperGearSet() GearSet {
	return GearSet{
		{Freq: 0.8, Voltage: 1.0},
		{Freq: 1.1, Voltage: 1.1},
		{Freq: 1.4, Voltage: 1.2},
		{Freq: 1.7, Voltage: 1.3},
		{Freq: 2.0, Voltage: 1.4},
		{Freq: 2.3, Voltage: 1.5},
	}
}

// Validate checks that the set is non-empty, strictly increasing in
// frequency, non-decreasing in voltage, and has positive entries.
func (gs GearSet) Validate() error {
	if len(gs) == 0 {
		return errors.New("dvfs: gear set is empty")
	}
	for i, g := range gs {
		if g.Freq <= 0 || g.Voltage <= 0 {
			return fmt.Errorf("dvfs: gear %d (%v) has non-positive frequency or voltage", i, g)
		}
		if i > 0 {
			if gs[i-1].Freq >= g.Freq {
				return fmt.Errorf("dvfs: gear frequencies must be strictly increasing (gear %d)", i)
			}
			if gs[i-1].Voltage > g.Voltage {
				return fmt.Errorf("dvfs: gear voltages must be non-decreasing (gear %d)", i)
			}
		}
	}
	return nil
}

// Lowest returns the lowest-frequency gear. The set must be non-empty.
func (gs GearSet) Lowest() Gear { return gs[0] }

// Top returns the highest-frequency gear Ftop. The set must be non-empty.
func (gs GearSet) Top() Gear { return gs[len(gs)-1] }

// IsTop reports whether g is the highest gear of the set.
func (gs GearSet) IsTop(g Gear) bool { return g == gs.Top() }

// Index returns the position of g in the set, or -1 when absent.
func (gs GearSet) Index(g Gear) int {
	for i, h := range gs {
		if h == g {
			return i
		}
	}
	return -1
}

// AtOrAbove returns the gears with frequency >= f, preserving order.
func (gs GearSet) AtOrAbove(f float64) GearSet {
	i := sort.Search(len(gs), func(i int) bool { return gs[i].Freq >= f })
	return gs[i:]
}
