package dvfs

import (
	"errors"
	"fmt"
)

// PowerModel computes per-processor power following Section 4 of the paper:
//
//	P_dynamic = A·C·f·V²            (eq. 3)
//	P_static  = α·V                 (eq. 4)
//
// All applications share one average activity factor; a running processor's
// activity is ActivityRatio (2.5 in the paper) times an idle processor's.
// The coefficient α is derived from StaticFraction: at the top gear the
// static power makes up StaticFraction (25% in the paper) of the total
// active power. Idle processors are assumed to run at the lowest gear with
// the idle activity factor, which with the paper's constants yields ≈21% of
// the power of a processor executing a job at the top frequency.
type PowerModel struct {
	Gears GearSet
	// ACRunning is the product A·C for a processor executing a job. Its
	// absolute value only sets the power unit; normalized energies are
	// invariant to it.
	ACRunning float64
	// ActivityRatio is A_running / A_idle (2.5 in the paper).
	ActivityRatio float64
	// StaticFraction is P_static / P_total at the top gear for a running
	// processor (0.25 in the paper).
	StaticFraction float64

	alpha  float64 // static power coefficient, derived
	acIdle float64 // A·C for an idle processor, derived
}

// NewPowerModel derives α and the idle activity product from the paper's
// calibration rules and returns a ready-to-use model.
func NewPowerModel(gears GearSet, acRunning, activityRatio, staticFraction float64) (*PowerModel, error) {
	if err := gears.Validate(); err != nil {
		return nil, err
	}
	if acRunning <= 0 {
		return nil, errors.New("dvfs: ACRunning must be positive")
	}
	if activityRatio < 1 {
		return nil, errors.New("dvfs: ActivityRatio must be >= 1")
	}
	if staticFraction < 0 || staticFraction >= 1 {
		return nil, fmt.Errorf("dvfs: StaticFraction %v out of [0,1)", staticFraction)
	}
	m := &PowerModel{
		Gears:          gears,
		ACRunning:      acRunning,
		ActivityRatio:  activityRatio,
		StaticFraction: staticFraction,
	}
	top := gears.Top()
	dynTop := acRunning * top.Freq * top.Voltage * top.Voltage
	// P_static(top) = sf·P_total(top) and P_dyn(top) = (1-sf)·P_total(top),
	// hence α·V_top = dynTop·sf/(1-sf).
	m.alpha = dynTop * staticFraction / (1 - staticFraction) / top.Voltage
	m.acIdle = acRunning / activityRatio
	return m, nil
}

// PaperPowerModel returns the model with the paper's constants: Table 2
// gears, activity ratio 2.5, static fraction 25%, and a unit A·C product.
func PaperPowerModel() *PowerModel {
	m, err := NewPowerModel(PaperGearSet(), 1.0, 2.5, 0.25)
	if err != nil {
		panic("dvfs: paper power model invalid: " + err.Error())
	}
	return m
}

// Alpha returns the derived static power coefficient α.
func (m *PowerModel) Alpha() float64 { return m.alpha }

// Dynamic returns the dynamic power of a running processor at gear g.
func (m *PowerModel) Dynamic(g Gear) float64 {
	return m.ACRunning * g.Freq * g.Voltage * g.Voltage
}

// Static returns the static (leakage) power at gear g's voltage.
func (m *PowerModel) Static(g Gear) float64 { return m.alpha * g.Voltage }

// Active returns the total power of a processor executing a job at gear g.
func (m *PowerModel) Active(g Gear) float64 {
	return m.Dynamic(g) + m.Static(g)
}

// Idle returns the power of an idle processor: lowest gear, idle activity.
func (m *PowerModel) Idle() float64 {
	low := m.Gears.Lowest()
	return m.acIdle*low.Freq*low.Voltage*low.Voltage + m.alpha*low.Voltage
}

// IdleFraction returns Idle() normalized by the active power at the top
// gear; the paper reports ≈0.21 for its constants.
func (m *PowerModel) IdleFraction() float64 {
	return m.Idle() / m.Active(m.Gears.Top())
}

// Scale returns a copy of the model with all powers multiplied by k, e.g.
// to express results in watts given a measured top-gear package power.
func (m *PowerModel) Scale(k float64) *PowerModel {
	scaled, err := NewPowerModel(m.Gears, m.ACRunning*k, m.ActivityRatio, m.StaticFraction)
	if err != nil {
		panic("dvfs: scaling produced invalid model: " + err.Error())
	}
	return scaled
}
