package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

// The paper states that with its constants an idle processor consumes 21%
// of the power of a processor executing a job at the highest frequency.
// This is the strongest calibration check of the whole power model.
func TestPaperIdleFractionIs21Percent(t *testing.T) {
	m := PaperPowerModel()
	got := m.IdleFraction()
	if math.Abs(got-0.21) > 0.005 {
		t.Errorf("idle fraction = %.4f, paper says ~0.21", got)
	}
}

// Static power must be 25% of total active power at the top gear.
func TestPaperStaticFractionAtTop(t *testing.T) {
	m := PaperPowerModel()
	top := m.Gears.Top()
	frac := m.Static(top) / m.Active(top)
	if math.Abs(frac-0.25) > 1e-12 {
		t.Errorf("static fraction at top = %v, want 0.25", frac)
	}
}

func TestActivePowerMonotoneInGear(t *testing.T) {
	m := PaperPowerModel()
	prev := 0.0
	for _, g := range m.Gears {
		p := m.Active(g)
		if p <= prev {
			t.Errorf("active power not strictly increasing at %v: %v <= %v", g, p, prev)
		}
		prev = p
	}
}

func TestDynamicFormula(t *testing.T) {
	m := PaperPowerModel()
	g := Gear{2.0, 1.4}
	want := 1.0 * 2.0 * 1.4 * 1.4
	if math.Abs(m.Dynamic(g)-want) > 1e-12 {
		t.Errorf("Dynamic(%v) = %v, want %v", g, m.Dynamic(g), want)
	}
}

func TestStaticProportionalToVoltage(t *testing.T) {
	m := PaperPowerModel()
	a, b := Gear{0.8, 1.0}, Gear{2.3, 1.5}
	ratio := m.Static(b) / m.Static(a)
	if math.Abs(ratio-1.5) > 1e-12 {
		t.Errorf("static power ratio = %v, want 1.5 (proportional to V)", ratio)
	}
}

func TestIdleBelowAllActive(t *testing.T) {
	m := PaperPowerModel()
	idle := m.Idle()
	for _, g := range m.Gears {
		if idle >= m.Active(g) {
			t.Errorf("idle power %v not below active power %v at %v", idle, m.Active(g), g)
		}
	}
}

func TestNewPowerModelRejectsBadInputs(t *testing.T) {
	gs := PaperGearSet()
	cases := []struct {
		name       string
		gears      GearSet
		ac, ar, sf float64
	}{
		{"bad gears", GearSet{}, 1, 2.5, 0.25},
		{"zero ac", gs, 0, 2.5, 0.25},
		{"ratio<1", gs, 1, 0.5, 0.25},
		{"sf=1", gs, 1, 2.5, 1},
		{"sf<0", gs, 1, 2.5, -0.1},
	}
	for _, c := range cases {
		if _, err := NewPowerModel(c.gears, c.ac, c.ar, c.sf); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestScale(t *testing.T) {
	m := PaperPowerModel()
	s := m.Scale(95 / m.Active(m.Gears.Top())) // calibrate top active power to 95 W
	if math.Abs(s.Active(s.Gears.Top())-95) > 1e-9 {
		t.Errorf("scaled top power = %v, want 95", s.Active(s.Gears.Top()))
	}
	// Scaling must preserve all power ratios.
	if math.Abs(s.IdleFraction()-m.IdleFraction()) > 1e-12 {
		t.Error("scaling changed the idle fraction")
	}
}

// Property: for any valid static fraction and activity ratio, the idle
// power is positive and below active power at every gear.
func TestQuickPowerOrdering(t *testing.T) {
	gs := PaperGearSet()
	f := func(sfRaw, arRaw uint8) bool {
		sf := float64(sfRaw%90) / 100  // 0.00 .. 0.89
		ar := 1 + float64(arRaw%40)/10 // 1.0 .. 4.9
		m, err := NewPowerModel(gs, 1, ar, sf)
		if err != nil {
			return false
		}
		idle := m.Idle()
		if idle <= 0 {
			return false
		}
		for _, g := range m.Gears {
			if m.Active(g) < idle {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphaAccessor(t *testing.T) {
	m := PaperPowerModel()
	// α must reproduce the static power: P_static(g) = α·V.
	g := m.Gears.Top()
	if math.Abs(m.Alpha()*g.Voltage-m.Static(g)) > 1e-12 {
		t.Errorf("Alpha()·V = %v, Static = %v", m.Alpha()*g.Voltage, m.Static(g))
	}
}
