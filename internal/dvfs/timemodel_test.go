package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoefAtTopIsOne(t *testing.T) {
	tm := NewTimeModel(0.5, PaperGearSet())
	if c := tm.CoefGear(PaperGearSet().Top()); math.Abs(c-1) > 1e-12 {
		t.Errorf("Coef(fmax) = %v, want 1", c)
	}
}

func TestCoefBetaOneHalvingDoubles(t *testing.T) {
	// β = 1: halving the frequency doubles execution time.
	tm := TimeModel{Beta: 1, Fmax: 2.0}
	if c := tm.Coef(1.0); math.Abs(c-2) > 1e-12 {
		t.Errorf("Coef(f/2) with β=1 = %v, want 2", c)
	}
}

func TestCoefBetaZeroNoDilation(t *testing.T) {
	tm := TimeModel{Beta: 0, Fmax: 2.3}
	for _, g := range PaperGearSet() {
		if c := tm.CoefGear(g); math.Abs(c-1) > 1e-12 {
			t.Errorf("β=0 Coef(%v) = %v, want 1", g, c)
		}
	}
}

func TestPaperBetaHalfValues(t *testing.T) {
	tm := NewTimeModel(0.5, PaperGearSet())
	// Hand-computed: Coef(0.8) = 0.5*(2.3/0.8 - 1) + 1 = 1.9375.
	if c := tm.Coef(0.8); math.Abs(c-1.9375) > 1e-12 {
		t.Errorf("Coef(0.8) = %v, want 1.9375", c)
	}
	// Coef(2.0) = 0.5*(2.3/2.0 - 1) + 1 = 1.075.
	if c := tm.Coef(2.0); math.Abs(c-1.075) > 1e-12 {
		t.Errorf("Coef(2.0) = %v, want 1.075", c)
	}
}

func TestCoefMonotoneDecreasingInFreq(t *testing.T) {
	tm := NewTimeModel(0.5, PaperGearSet())
	gs := PaperGearSet()
	for i := 1; i < len(gs); i++ {
		if tm.CoefGear(gs[i]) >= tm.CoefGear(gs[i-1]) {
			t.Errorf("Coef not decreasing between %v and %v", gs[i-1], gs[i])
		}
	}
}

func TestDilate(t *testing.T) {
	tm := NewTimeModel(0.5, PaperGearSet())
	got := tm.Dilate(1000, Gear{0.8, 1.0})
	if math.Abs(got-1937.5) > 1e-9 {
		t.Errorf("Dilate(1000, 0.8GHz) = %v, want 1937.5", got)
	}
}

func TestCoefWithBetaOverride(t *testing.T) {
	tm := NewTimeModel(0.5, PaperGearSet())
	g := Gear{0.8, 1.0}
	if c := tm.CoefWithBeta(-1, g); math.Abs(c-tm.CoefGear(g)) > 1e-12 {
		t.Error("negative per-job beta should fall back to model beta")
	}
	if c := tm.CoefWithBeta(0, g); math.Abs(c-1) > 1e-12 {
		t.Errorf("CoefWithBeta(0) = %v, want 1", c)
	}
	want := 1.0*(2.3/0.8-1) + 1
	if c := tm.CoefWithBeta(1, g); math.Abs(c-want) > 1e-12 {
		t.Errorf("CoefWithBeta(1) = %v, want %v", c, want)
	}
}

// Reproduces the observation in Section 5 discussion: with the paper's
// power model and β=0.5, running a job at ANY reduced gear consumes less
// computational energy than at the top gear, which is why Eidle=0
// normalized energy can never exceed 1.
func TestEnergyPerJobAlwaysSavedAtReducedGears(t *testing.T) {
	pm := PaperPowerModel()
	tm := NewTimeModel(0.5, pm.Gears)
	top := tm.EnergyPerJob(pm, 4, 3600, pm.Gears.Top())
	for _, g := range pm.Gears[:len(pm.Gears)-1] {
		e := tm.EnergyPerJob(pm, 4, 3600, g)
		if e >= top {
			t.Errorf("energy at %v (%v) not below top-gear energy (%v)", g, e, top)
		}
	}
}

// Property: the energy saving above holds for every β in [0,1] with the
// paper's gear set — energy(g) <= energy(top) for all gears.
func TestQuickEnergySavedForAllBeta(t *testing.T) {
	pm := PaperPowerModel()
	f := func(bRaw uint8, cpus uint8, tRaw uint16) bool {
		beta := float64(bRaw%101) / 100
		tm := NewTimeModel(beta, pm.Gears)
		n := int(cpus%64) + 1
		rt := float64(tRaw) + 1
		top := tm.EnergyPerJob(pm, n, rt, pm.Gears.Top())
		for _, g := range pm.Gears {
			if tm.EnergyPerJob(pm, n, rt, g) > top+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Coef >= 1 for all gears and β in [0,1] (lower frequency never
// shortens execution).
func TestQuickCoefAtLeastOne(t *testing.T) {
	gs := PaperGearSet()
	f := func(bRaw uint8) bool {
		tm := NewTimeModel(float64(bRaw%101)/100, gs)
		for _, g := range gs {
			if tm.CoefGear(g) < 1-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
