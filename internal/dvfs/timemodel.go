package dvfs

// TimeModel is the β execution-time dilation model of eq. (5) in the paper
// (originally from Hsu & Feng, "A power-aware run-time system for
// high-performance computing"):
//
//	T(f) / T(fmax) = β·(fmax/f − 1) + 1
//
// β = 1 means halving the frequency doubles the run time (fully
// CPU-bound); β = 0 means frequency does not affect run time (fully
// memory- or communication-bound). The paper uses β = 0.5 for all jobs.
type TimeModel struct {
	Beta float64 // dilation sensitivity in [0, 1]
	Fmax float64 // top frequency the undilated run time refers to, GHz
}

// NewTimeModel returns a β model anchored at the top gear of gs.
func NewTimeModel(beta float64, gs GearSet) TimeModel {
	return TimeModel{Beta: beta, Fmax: gs.Top().Freq}
}

// Coef returns the run-time multiplier T(f)/T(fmax) at frequency f.
func (tm TimeModel) Coef(f float64) float64 {
	return tm.Beta*(tm.Fmax/f-1) + 1
}

// CoefGear returns the run-time multiplier for gear g.
func (tm TimeModel) CoefGear(g Gear) float64 { return tm.Coef(g.Freq) }

// Dilate returns the run time at gear g of a job whose run time at the top
// frequency is t.
func (tm TimeModel) Dilate(t float64, g Gear) float64 {
	return t * tm.CoefGear(g)
}

// CoefWithBeta returns the multiplier using a per-job β override, keeping
// the model's anchor frequency. Negative beta falls back to the model's β,
// which lets callers store "unset" per-job values as -1.
func (tm TimeModel) CoefWithBeta(beta float64, g Gear) float64 {
	if beta < 0 {
		beta = tm.Beta
	}
	return beta*(tm.Fmax/g.Freq-1) + 1
}

// EnergyPerJob returns the CPU energy a job consumes on cpus processors
// running for t seconds (top-frequency time) at gear g under power model
// pm: cpus × P_active(g) × dilated time. This is the "computational
// energy" contribution of one job.
func (tm TimeModel) EnergyPerJob(pm *PowerModel, cpus int, t float64, g Gear) float64 {
	return float64(cpus) * pm.Active(g) * tm.Dilate(t, g)
}
