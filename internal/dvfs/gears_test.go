package dvfs

import (
	"testing"
	"testing/quick"
)

func TestPaperGearSetMatchesTable2(t *testing.T) {
	gs := PaperGearSet()
	want := []struct{ f, v float64 }{
		{0.8, 1.0}, {1.1, 1.1}, {1.4, 1.2}, {1.7, 1.3}, {2.0, 1.4}, {2.3, 1.5},
	}
	if len(gs) != len(want) {
		t.Fatalf("gear count = %d, want %d", len(gs), len(want))
	}
	for i, w := range want {
		if gs[i].Freq != w.f || gs[i].Voltage != w.v {
			t.Errorf("gear %d = %v, want %.1fGHz@%.1fV", i, gs[i], w.f, w.v)
		}
	}
}

func TestGearSetValidate(t *testing.T) {
	if err := PaperGearSet().Validate(); err != nil {
		t.Errorf("paper gear set invalid: %v", err)
	}
	cases := []struct {
		name string
		gs   GearSet
	}{
		{"empty", GearSet{}},
		{"zero freq", GearSet{{0, 1}}},
		{"zero volt", GearSet{{1, 0}}},
		{"non-increasing freq", GearSet{{1, 1}, {1, 1.1}}},
		{"decreasing voltage", GearSet{{1, 1.2}, {2, 1.1}}},
	}
	for _, c := range cases {
		if err := c.gs.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestLowestTop(t *testing.T) {
	gs := PaperGearSet()
	if gs.Lowest().Freq != 0.8 {
		t.Errorf("Lowest = %v", gs.Lowest())
	}
	if gs.Top().Freq != 2.3 {
		t.Errorf("Top = %v", gs.Top())
	}
	if !gs.IsTop(Gear{2.3, 1.5}) {
		t.Error("IsTop(2.3GHz) = false")
	}
	if gs.IsTop(Gear{0.8, 1.0}) {
		t.Error("IsTop(0.8GHz) = true")
	}
}

func TestIndex(t *testing.T) {
	gs := PaperGearSet()
	for i, g := range gs {
		if gs.Index(g) != i {
			t.Errorf("Index(%v) = %d, want %d", g, gs.Index(g), i)
		}
	}
	if gs.Index(Gear{9.9, 9.9}) != -1 {
		t.Error("Index of absent gear != -1")
	}
}

func TestAtOrAbove(t *testing.T) {
	gs := PaperGearSet()
	sub := gs.AtOrAbove(1.4)
	if len(sub) != 4 || sub[0].Freq != 1.4 {
		t.Errorf("AtOrAbove(1.4) = %v", sub)
	}
	if len(gs.AtOrAbove(0)) != len(gs) {
		t.Error("AtOrAbove(0) should return all gears")
	}
	if len(gs.AtOrAbove(9)) != 0 {
		t.Error("AtOrAbove(9) should be empty")
	}
}

func TestGearString(t *testing.T) {
	if s := (Gear{2.3, 1.5}).String(); s != "2.3GHz@1.5V" {
		t.Errorf("String = %q", s)
	}
}

// Property: AtOrAbove never returns a gear below the cutoff and preserves order.
func TestQuickAtOrAbove(t *testing.T) {
	gs := PaperGearSet()
	f := func(raw uint16) bool {
		cut := float64(raw%300) / 100 // 0.00 .. 2.99
		sub := gs.AtOrAbove(cut)
		for i, g := range sub {
			if g.Freq < cut {
				return false
			}
			if i > 0 && sub[i-1].Freq >= g.Freq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
