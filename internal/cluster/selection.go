package cluster

import "fmt"

// The paper's simulator (Alvio, §3.1) separates the job scheduling policy
// from the resource selection policy, which "determines how job processes
// are mapped to the processors" — First Fit in the paper's experiments.
// Processor identity does not change scheduling times on a flat machine,
// but it decides placement contiguity (relevant for interconnect locality
// and for how well idle processors coalesce for power-down), so the
// selection layer is reproduced with the common alternatives.

// Selection identifies a resource selection policy.
type Selection int

const (
	// FirstFit takes the lowest-numbered free processors (the paper's
	// choice). This is the default and uses the fast heap path.
	FirstFit Selection = iota
	// ContiguousBestFit prefers the smallest contiguous run of free
	// processors that fits the job, falling back to gathering runs from
	// the lowest IDs when no single run fits.
	ContiguousBestFit
	// NextFit continues scanning from where the previous allocation
	// ended, spreading load across the machine.
	NextFit
)

// String names the selection policy.
func (s Selection) String() string {
	switch s {
	case FirstFit:
		return "firstfit"
	case ContiguousBestFit:
		return "contiguous"
	case NextFit:
		return "nextfit"
	}
	return fmt.Sprintf("selection(%d)", int(s))
}

// ParseSelection resolves a policy name.
func ParseSelection(name string) (Selection, error) {
	switch name {
	case "firstfit", "ff", "":
		return FirstFit, nil
	case "contiguous", "bestfit", "cbf":
		return ContiguousBestFit, nil
	case "nextfit", "nf":
		return NextFit, nil
	}
	return 0, fmt.Errorf("cluster: unknown selection policy %q (firstfit, contiguous, nextfit)", name)
}

// Runs returns the number of maximal contiguous ID runs in the
// allocation — 1 means fully contiguous placement. IDs must be ascending,
// which Allocate guarantees.
func (a Alloc) Runs() int {
	if len(a.IDs) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(a.IDs); i++ {
		if a.IDs[i] != a.IDs[i-1]+1 {
			runs++
		}
	}
	return runs
}

// selectContiguous picks n processors from the free bitmap preferring the
// tightest contiguous fit.
func (c *Cluster) selectContiguous(n int) []int {
	bestStart, bestLen := -1, int(^uint(0)>>1)
	runStart := -1
	for i := 0; i <= c.total; i++ {
		free := i < c.total && c.freeMap[i]
		if free && runStart < 0 {
			runStart = i
		}
		if !free && runStart >= 0 {
			runLen := i - runStart
			if runLen >= n && runLen < bestLen {
				bestStart, bestLen = runStart, runLen
			}
			runStart = -1
		}
	}
	if bestStart >= 0 {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = bestStart + i
		}
		return ids
	}
	// No single run fits: gather lowest free IDs (First Fit fallback).
	return c.selectLowest(n)
}

// selectNextFit scans circularly from the cursor left by the previous
// allocation.
func (c *Cluster) selectNextFit(n int) []int {
	ids := make([]int, 0, n)
	for off := 0; off < c.total && len(ids) < n; off++ {
		i := (c.cursor + off) % c.total
		if c.freeMap[i] {
			ids = append(ids, i)
		}
	}
	if len(ids) > 0 {
		c.cursor = (ids[len(ids)-1] + 1) % c.total
	}
	sortInts(ids)
	return ids
}

// selectLowest gathers the n lowest free IDs from the bitmap.
func (c *Cluster) selectLowest(n int) []int {
	ids := make([]int, 0, n)
	for i := 0; i < c.total && len(ids) < n; i++ {
		if c.freeMap[i] {
			ids = append(ids, i)
		}
	}
	return ids
}

// sortInts is insertion sort: allocations are small or nearly sorted, and
// this avoids pulling package sort into the hot path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
