package cluster

import "fmt"

// The paper's simulator (Alvio, §3.1) separates the job scheduling policy
// from the resource selection policy, which "determines how job processes
// are mapped to the processors" — First Fit in the paper's experiments.
// Processor identity does not change scheduling times on a flat machine,
// but it decides placement contiguity (relevant for interconnect locality
// and for how well idle processors coalesce for power-down), so the
// selection layer is reproduced with the common alternatives.
//
// Every selector emits run-length intervals directly and marks the
// ownership bitmap as it goes; none of them materializes per-processor ID
// slices.

// Selection identifies a resource selection policy.
type Selection int

const (
	// FirstFit takes the lowest-numbered free processors (the paper's
	// choice). This is the default and uses the fast heap path.
	FirstFit Selection = iota
	// ContiguousBestFit prefers the smallest contiguous run of free
	// processors that fits the job, falling back to gathering runs from
	// the lowest IDs when no single run fits.
	ContiguousBestFit
	// NextFit continues scanning from where the previous allocation
	// ended, spreading load across the machine.
	NextFit
)

// String names the selection policy.
func (s Selection) String() string {
	switch s {
	case FirstFit:
		return "firstfit"
	case ContiguousBestFit:
		return "contiguous"
	case NextFit:
		return "nextfit"
	}
	return fmt.Sprintf("selection(%d)", int(s))
}

// ParseSelection resolves a policy name.
func ParseSelection(name string) (Selection, error) {
	switch name {
	case "firstfit", "ff", "":
		return FirstFit, nil
	case "contiguous", "bestfit", "cbf":
		return ContiguousBestFit, nil
	case "nextfit", "nf":
		return NextFit, nil
	}
	return 0, fmt.Errorf("cluster: unknown selection policy %q (firstfit, contiguous, nextfit)", name)
}

// takeRun marks [lo, hi] allocated and appends it to the run list,
// merging with an adjacent predecessor.
func (c *Cluster) takeRun(runs []Run, lo, hi int) []Run {
	for id := lo; id <= hi; id++ {
		c.freeMap[id] = false
	}
	return appendRunInterval(runs, lo, hi)
}

// selectContiguous picks n processors from the free bitmap preferring the
// tightest contiguous fit.
func (c *Cluster) selectContiguous(dst []Run, n int) []Run {
	bestStart, bestLen := -1, int(^uint(0)>>1)
	runStart := -1
	for i := 0; i <= c.total; i++ {
		free := i < c.total && c.freeMap[i]
		if free && runStart < 0 {
			runStart = i
		}
		if !free && runStart >= 0 {
			runLen := i - runStart
			if runLen >= n && runLen < bestLen {
				bestStart, bestLen = runStart, runLen
			}
			runStart = -1
		}
	}
	if bestStart >= 0 {
		return c.takeRun(dst, bestStart, bestStart+n-1)
	}
	// No single run fits: gather lowest free IDs (First Fit fallback).
	return c.selectLowest(dst, n)
}

// selectNextFit scans circularly from the cursor left by the previous
// allocation. Scan order is high segment [cursor, total) then the wrapped
// low segment [0, cursor); the wrapped runs must precede the high-segment
// runs in the ascending result, so the scan stages runs in a reused
// scratch list and stitches them in order, merging across the cursor
// boundary when the two segments touch.
func (c *Cluster) selectNextFit(dst []Run, n int) []Run {
	scan := c.scanScratch[:0]
	count := 0
	last := -1
	collect := func(from, to int) {
		for i := from; i < to && count < n; i++ {
			if c.freeMap[i] {
				c.freeMap[i] = false
				count++
				last = i
				scan = appendRun(scan, i)
			}
		}
	}
	collect(c.cursor, c.total)
	k := len(scan) // runs collected from the high segment
	collect(0, c.cursor)
	c.scanScratch = scan
	if count == 0 {
		return dst
	}
	c.cursor = (last + 1) % c.total
	low, high := scan[k:], scan[:k]
	dst = append(dst, low...)
	for _, r := range high {
		dst = appendRunInterval(dst, r.Lo, r.Hi)
	}
	return dst
}

// selectLowest gathers the n lowest free IDs from the bitmap.
func (c *Cluster) selectLowest(dst []Run, n int) []Run {
	count := 0
	runStart := -1
	for i := 0; i < c.total && count < n; i++ {
		if c.freeMap[i] {
			if runStart < 0 {
				runStart = i
			}
			count++
			if count == n {
				dst = c.takeRun(dst, runStart, i)
				runStart = -1
			}
			continue
		}
		if runStart >= 0 {
			dst = c.takeRun(dst, runStart, i-1)
			runStart = -1
		}
	}
	if runStart >= 0 {
		// Scan hit the machine end mid-run; close it there. Allocate
		// guards n <= nfree, so count == n here.
		dst = c.takeRun(dst, runStart, c.total-1)
	}
	return dst
}
