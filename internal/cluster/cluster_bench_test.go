package cluster

import (
	"math/rand"
	"testing"
)

// benchAllocRelease exercises a steady allocate/release mix at ~75%
// occupancy on an Atlas-sized machine under each selection policy.
func benchAllocRelease(b *testing.B, sel Selection) {
	b.Helper()
	const total = 9216
	r := rand.New(rand.NewSource(3))
	c, err := NewWithSelection(total, sel)
	if err != nil {
		b.Fatal(err)
	}
	var live []Alloc
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		if c.FreeCount() > total/4 {
			n := 1 + r.Intn(256)
			if n > c.FreeCount() {
				n = c.FreeCount()
			}
			a, err := c.Allocate(n, now)
			if err != nil {
				b.Fatal(err)
			}
			live = append(live, a)
		} else {
			i := r.Intn(len(live))
			if err := c.Release(live[i], now); err != nil {
				b.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
}

func BenchmarkAllocateFirstFit(b *testing.B)   { benchAllocRelease(b, FirstFit) }
func BenchmarkAllocateContiguous(b *testing.B) { benchAllocRelease(b, ContiguousBestFit) }
func BenchmarkAllocateNextFit(b *testing.B)    { benchAllocRelease(b, NextFit) }
