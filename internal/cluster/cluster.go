// Package cluster models the machine: a pool of identical DVFS-enabled
// processors. It implements the resource selection policies of the
// paper's simulator architecture (§3.1) — First Fit, as used in the
// paper's experiments, plus contiguous best-fit and next-fit — and
// integrates busy CPU-time over the run, which the energy accounting
// needs to charge idle power to unused processors.
package cluster

import (
	"fmt"
)

// Run is a maximal contiguous interval of processor IDs: every processor
// in [Lo, Hi] (inclusive) belongs to the allocation.
type Run struct {
	Lo, Hi int
}

// Len returns the number of processors in the run.
func (r Run) Len() int { return r.Hi - r.Lo + 1 }

// Alloc is a concrete assignment of processors to a job, stored as
// run-length intervals. Runs are ascending by Lo, pairwise disjoint, and
// maximal (adjacent runs are always merged), so len(Runs) is exactly the
// placement-contiguity count the metrics layer reports. First Fit packs
// jobs into very few runs, which is why interval storage replaces the
// seed-era explicit []int: a 1024-processor job is one 16-byte Run
// instead of an 8 KiB ID slice held alive for the job's whole lifetime.
type Alloc struct {
	Runs []Run
}

// Count returns the number of processors in the allocation.
func (a Alloc) Count() int {
	n := 0
	for _, r := range a.Runs {
		n += r.Len()
	}
	return n
}

// IDs materializes the allocation's processor identifiers in ascending
// order. It allocates and exists for tests and debugging; hot paths
// iterate Runs directly.
func (a Alloc) IDs() []int {
	ids := make([]int, 0, a.Count())
	for _, r := range a.Runs {
		for id := r.Lo; id <= r.Hi; id++ {
			ids = append(ids, id)
		}
	}
	return ids
}

// AllocOf builds an allocation from explicit processor IDs, merging
// consecutive ascending IDs into runs. IDs are taken in the given order,
// so a duplicated or descending ID produces an extra (possibly
// overlapping) run — Release rejects such allocations, which is exactly
// what the double-release tests construct. Test helper; production
// allocations come from Cluster.Allocate.
func AllocOf(ids ...int) Alloc {
	var a Alloc
	for _, id := range ids {
		a.Runs = appendRun(a.Runs, id)
	}
	return a
}

// appendRunInterval extends a run list with [lo, hi], merging into the
// last run when lo extends it by one. Intervals must arrive ascending
// and non-overlapping for the result to be canonical.
func appendRunInterval(runs []Run, lo, hi int) []Run {
	if k := len(runs); k > 0 && runs[k-1].Hi+1 == lo {
		runs[k-1].Hi = hi
		return runs
	}
	return append(runs, Run{Lo: lo, Hi: hi})
}

// appendRun is appendRunInterval for a single processor ID.
func appendRun(runs []Run, id int) []Run { return appendRunInterval(runs, id, id) }

// intHeap is a min-heap of processor IDs backing the First Fit free list.
// It is hand-rolled rather than built on container/heap: the interface
// indirection and per-int boxing of the generic heap dominated the
// allocation profile of million-job replays (two boxed ints per processor
// per job). Pop order is identical — a min-heap over distinct ints always
// yields them ascending.
type intHeap []int

func (h *intHeap) push(v int) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *intHeap) pop() int {
	s := *h
	n := len(s) - 1
	v := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s[r] < s[l] {
			min = r
		}
		if s[i] <= s[min] {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return v
}

// Cluster tracks processor occupancy over simulated time. All mutating
// calls carry the current simulation time so the busy integral stays
// exact. The zero value is not usable; construct with New or
// NewWithSelection.
type Cluster struct {
	total int
	sel   Selection

	// First Fit uses a min-heap free list (O(log n) per processor); the
	// other policies scan the bitmap. freeMap is maintained for every
	// policy as the ownership ledger: it is what detects double releases
	// before they corrupt nfree/busy or duplicate IDs in the free heap.
	free    intHeap
	freeMap []bool
	nfree   int
	cursor  int // next-fit scan position

	// scanScratch stages the runs of a next-fit circular scan so the
	// final run list can be emitted in ascending order without allocating.
	scanScratch []Run

	busy         int
	lastChange   float64
	busyIntegral float64 // Σ busy · dt, CPU-seconds
}

// New returns a cluster of total processors under First Fit selection.
func New(total int) *Cluster {
	c, err := NewWithSelection(total, FirstFit)
	if err != nil {
		panic("cluster: " + err.Error())
	}
	return c
}

// NewWithSelection returns a cluster using the given selection policy.
func NewWithSelection(total int, sel Selection) (*Cluster, error) {
	if total < 1 {
		return nil, fmt.Errorf("invalid size %d", total)
	}
	c := &Cluster{total: total, sel: sel, nfree: total}
	switch sel {
	case FirstFit:
		// Ascending initialization is already a valid min-heap.
		c.free = make(intHeap, total)
		for i := range c.free {
			c.free[i] = i
		}
	case ContiguousBestFit, NextFit:
	default:
		return nil, fmt.Errorf("unknown selection policy %v", sel)
	}
	c.freeMap = make([]bool, total)
	for i := range c.freeMap {
		c.freeMap[i] = true
	}
	return c, nil
}

// Total returns the number of processors in the machine.
func (c *Cluster) Total() int { return c.total }

// Selection returns the active resource selection policy.
func (c *Cluster) Selection() Selection { return c.sel }

// FreeCount returns the number of currently unallocated processors.
func (c *Cluster) FreeCount() int { return c.nfree }

// Busy returns the number of currently allocated processors.
func (c *Cluster) Busy() int { return c.busy }

// Allocate reserves n free processors at time now, chosen by the
// selection policy. It fails if fewer than n processors are free or time
// runs backwards.
func (c *Cluster) Allocate(n int, now float64) (Alloc, error) {
	var a Alloc
	if err := c.AllocateInto(&a, n, now); err != nil {
		return Alloc{}, err
	}
	return a, nil
}

// AllocateInto is Allocate writing its result into a, reusing a.Runs'
// capacity. It is the zero-allocation path the scheduler uses with pooled
// run states; any previous contents of a are discarded.
func (c *Cluster) AllocateInto(a *Alloc, n int, now float64) error {
	if n < 1 || n > c.nfree {
		a.Runs = a.Runs[:0]
		return fmt.Errorf("cluster: cannot allocate %d of %d free processors", n, c.nfree)
	}
	if now < c.lastChange {
		a.Runs = a.Runs[:0]
		return fmt.Errorf("cluster: time moved backwards (%v < %v)", now, c.lastChange)
	}
	c.advance(now)
	runs := a.Runs[:0]
	switch c.sel {
	case FirstFit:
		// Min-heap pops yield IDs ascending, so runs build canonically.
		for i := 0; i < n; i++ {
			id := c.free.pop()
			c.freeMap[id] = false
			runs = appendRun(runs, id)
		}
	case ContiguousBestFit:
		runs = c.selectContiguous(runs, n)
	case NextFit:
		runs = c.selectNextFit(runs, n)
	}
	a.Runs = runs
	got := a.Count()
	if got != n {
		// Selection invariant broken: undo the marks and leave the
		// cluster untouched.
		for _, r := range runs {
			for id := r.Lo; id <= r.Hi; id++ {
				c.freeMap[id] = true
				if c.sel == FirstFit {
					c.free.push(id)
				}
			}
		}
		a.Runs = a.Runs[:0]
		return fmt.Errorf("cluster: selection %v produced %d of %d processors", c.sel, got, n)
	}
	c.nfree -= n
	c.busy += n
	return nil
}

// Release returns an allocation's processors to the free pool at time now.
// Every selection policy tracks per-processor ownership, so releasing a
// processor that is already free — including overlapping runs within the
// same allocation — is rejected without mutating the cluster state.
func (c *Cluster) Release(a Alloc, now float64) error {
	if now < c.lastChange {
		return fmt.Errorf("cluster: time moved backwards (%v < %v)", now, c.lastChange)
	}
	n := a.Count()
	if c.busy < n {
		return fmt.Errorf("cluster: releasing %d processors with only %d busy", n, c.busy)
	}
	// Check-and-mark in one pass so an overlap inside a.Runs is caught;
	// roll the marks back on error to leave the ledger untouched.
	for ri, r := range a.Runs {
		if r.Lo < 0 || r.Hi >= c.total || r.Lo > r.Hi {
			c.rollbackRelease(a.Runs[:ri], r, r.Lo-1)
			return fmt.Errorf("cluster: releasing foreign processor run [%d,%d]", r.Lo, r.Hi)
		}
		for id := r.Lo; id <= r.Hi; id++ {
			if c.freeMap[id] {
				c.rollbackRelease(a.Runs[:ri], r, id-1)
				return fmt.Errorf("cluster: double release of processor %d", id)
			}
			c.freeMap[id] = true
		}
	}
	c.advance(now)
	if c.sel == FirstFit {
		for _, r := range a.Runs {
			for id := r.Lo; id <= r.Hi; id++ {
				c.free.push(id)
			}
		}
	}
	c.nfree += n
	c.busy -= n
	return nil
}

// rollbackRelease un-marks the fully processed runs plus the partial run
// cur up to and including lastDone (exclusive marks are restored).
func (c *Cluster) rollbackRelease(done []Run, cur Run, lastDone int) {
	for _, r := range done {
		for id := r.Lo; id <= r.Hi; id++ {
			c.freeMap[id] = false
		}
	}
	for id := cur.Lo; id <= lastDone; id++ {
		c.freeMap[id] = false
	}
}

// advance accrues the busy integral up to now.
func (c *Cluster) advance(now float64) {
	c.busyIntegral += float64(c.busy) * (now - c.lastChange)
	c.lastChange = now
}

// BusyCPUSeconds returns the integral of busy processors over time through
// now. now must not precede the last state change.
func (c *Cluster) BusyCPUSeconds(now float64) float64 {
	if now < c.lastChange {
		now = c.lastChange
	}
	return c.busyIntegral + float64(c.busy)*(now-c.lastChange)
}

// IdleCPUSeconds returns total·window − busy integral for the window
// [start, now]. The busy integral is assumed to have started accruing at
// or after start.
func (c *Cluster) IdleCPUSeconds(start, now float64) float64 {
	window := now - start
	if window < 0 {
		window = 0
	}
	idle := float64(c.total)*window - c.BusyCPUSeconds(now)
	if idle < 0 {
		idle = 0
	}
	return idle
}
