// Package cluster models the machine: a pool of identical DVFS-enabled
// processors. It implements the resource selection policies of the
// paper's simulator architecture (§3.1) — First Fit, as used in the
// paper's experiments, plus contiguous best-fit and next-fit — and
// integrates busy CPU-time over the run, which the energy accounting
// needs to charge idle power to unused processors.
package cluster

import (
	"fmt"
)

// Alloc is a concrete assignment of processors to a job.
type Alloc struct {
	IDs []int // processor identifiers, ascending
}

// intHeap is a min-heap of processor IDs backing the First Fit free list.
// It is hand-rolled rather than built on container/heap: the interface
// indirection and per-int boxing of the generic heap dominated the
// allocation profile of million-job replays (two boxed ints per processor
// per job). Pop order is identical — a min-heap over distinct ints always
// yields them ascending.
type intHeap []int

func (h *intHeap) push(v int) {
	*h = append(*h, v)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *intHeap) pop() int {
	s := *h
	n := len(s) - 1
	v := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s[r] < s[l] {
			min = r
		}
		if s[i] <= s[min] {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return v
}

// Cluster tracks processor occupancy over simulated time. All mutating
// calls carry the current simulation time so the busy integral stays
// exact. The zero value is not usable; construct with New or
// NewWithSelection.
type Cluster struct {
	total int
	sel   Selection

	// First Fit uses a min-heap free list (O(log n) per processor); the
	// other policies scan the bitmap. freeMap is maintained for every
	// policy as the ownership ledger: it is what detects double releases
	// before they corrupt nfree/busy or duplicate IDs in the free heap.
	free    intHeap
	freeMap []bool
	nfree   int
	cursor  int // next-fit scan position

	busy         int
	lastChange   float64
	busyIntegral float64 // Σ busy · dt, CPU-seconds
}

// New returns a cluster of total processors under First Fit selection.
func New(total int) *Cluster {
	c, err := NewWithSelection(total, FirstFit)
	if err != nil {
		panic("cluster: " + err.Error())
	}
	return c
}

// NewWithSelection returns a cluster using the given selection policy.
func NewWithSelection(total int, sel Selection) (*Cluster, error) {
	if total < 1 {
		return nil, fmt.Errorf("invalid size %d", total)
	}
	c := &Cluster{total: total, sel: sel, nfree: total}
	switch sel {
	case FirstFit:
		// Ascending initialization is already a valid min-heap.
		c.free = make(intHeap, total)
		for i := range c.free {
			c.free[i] = i
		}
	case ContiguousBestFit, NextFit:
	default:
		return nil, fmt.Errorf("unknown selection policy %v", sel)
	}
	c.freeMap = make([]bool, total)
	for i := range c.freeMap {
		c.freeMap[i] = true
	}
	return c, nil
}

// Total returns the number of processors in the machine.
func (c *Cluster) Total() int { return c.total }

// Selection returns the active resource selection policy.
func (c *Cluster) Selection() Selection { return c.sel }

// FreeCount returns the number of currently unallocated processors.
func (c *Cluster) FreeCount() int { return c.nfree }

// Busy returns the number of currently allocated processors.
func (c *Cluster) Busy() int { return c.busy }

// Allocate reserves n free processors at time now, chosen by the
// selection policy. It fails if fewer than n processors are free or time
// runs backwards.
func (c *Cluster) Allocate(n int, now float64) (Alloc, error) {
	if n < 1 || n > c.nfree {
		return Alloc{}, fmt.Errorf("cluster: cannot allocate %d of %d free processors", n, c.nfree)
	}
	if now < c.lastChange {
		return Alloc{}, fmt.Errorf("cluster: time moved backwards (%v < %v)", now, c.lastChange)
	}
	c.advance(now)
	var ids []int
	switch c.sel {
	case FirstFit:
		ids = make([]int, n)
		for i := 0; i < n; i++ {
			ids[i] = c.free.pop()
		}
	case ContiguousBestFit:
		ids = c.selectContiguous(n)
	case NextFit:
		ids = c.selectNextFit(n)
	}
	if len(ids) != n {
		return Alloc{}, fmt.Errorf("cluster: selection %v produced %d of %d processors", c.sel, len(ids), n)
	}
	for _, id := range ids {
		c.freeMap[id] = false
	}
	c.nfree -= n
	c.busy += n
	return Alloc{IDs: ids}, nil
}

// Release returns an allocation's processors to the free pool at time now.
// Every selection policy tracks per-processor ownership, so releasing a
// processor that is already free — including a duplicate ID within the
// same allocation — is rejected without mutating the cluster state.
func (c *Cluster) Release(a Alloc, now float64) error {
	if now < c.lastChange {
		return fmt.Errorf("cluster: time moved backwards (%v < %v)", now, c.lastChange)
	}
	if c.busy < len(a.IDs) {
		return fmt.Errorf("cluster: releasing %d processors with only %d busy", len(a.IDs), c.busy)
	}
	// Check-and-mark in one pass so a duplicate ID inside a.IDs is caught;
	// roll the marks back on error to leave the ledger untouched.
	for i, id := range a.IDs {
		if id < 0 || id >= c.total || c.freeMap[id] {
			for _, done := range a.IDs[:i] {
				c.freeMap[done] = false
			}
			if id < 0 || id >= c.total {
				return fmt.Errorf("cluster: releasing foreign processor %d", id)
			}
			return fmt.Errorf("cluster: double release of processor %d", id)
		}
		c.freeMap[id] = true
	}
	c.advance(now)
	if c.sel == FirstFit {
		for _, id := range a.IDs {
			c.free.push(id)
		}
	}
	c.nfree += len(a.IDs)
	c.busy -= len(a.IDs)
	return nil
}

// advance accrues the busy integral up to now.
func (c *Cluster) advance(now float64) {
	c.busyIntegral += float64(c.busy) * (now - c.lastChange)
	c.lastChange = now
}

// BusyCPUSeconds returns the integral of busy processors over time through
// now. now must not precede the last state change.
func (c *Cluster) BusyCPUSeconds(now float64) float64 {
	if now < c.lastChange {
		now = c.lastChange
	}
	return c.busyIntegral + float64(c.busy)*(now-c.lastChange)
}

// IdleCPUSeconds returns total·window − busy integral for the window
// [start, now]. The busy integral is assumed to have started accruing at
// or after start.
func (c *Cluster) IdleCPUSeconds(start, now float64) float64 {
	window := now - start
	if window < 0 {
		window = 0
	}
	idle := float64(c.total)*window - c.BusyCPUSeconds(now)
	if idle < 0 {
		idle = 0
	}
	return idle
}
