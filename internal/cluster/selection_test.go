package cluster

import (
	"math/rand"
	"testing"
)

func mustCluster(t *testing.T, total int, sel Selection) *Cluster {
	t.Helper()
	c, err := NewWithSelection(total, sel)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSelectionString(t *testing.T) {
	cases := map[Selection]string{
		FirstFit: "firstfit", ContiguousBestFit: "contiguous", NextFit: "nextfit",
	}
	for sel, want := range cases {
		if sel.String() != want {
			t.Errorf("%d.String() = %q, want %q", sel, sel.String(), want)
		}
	}
}

func TestParseSelection(t *testing.T) {
	for _, name := range []string{"firstfit", "ff", "", "contiguous", "bestfit", "nextfit", "nf"} {
		if _, err := ParseSelection(name); err != nil {
			t.Errorf("ParseSelection(%q): %v", name, err)
		}
	}
	if _, err := ParseSelection("zigzag"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestAllocRuns(t *testing.T) {
	cases := []struct {
		ids  []int
		want int
	}{
		{nil, 0},
		{[]int{3}, 1},
		{[]int{0, 1, 2}, 1},
		{[]int{0, 2, 3}, 2},
		{[]int{0, 2, 4}, 3},
	}
	for _, c := range cases {
		a := AllocOf(c.ids...)
		if got := len(a.Runs); got != c.want {
			t.Errorf("len(AllocOf(%v).Runs) = %d, want %d", c.ids, got, c.want)
		}
		if got := a.IDs(); !equalInts(got, c.ids) {
			t.Errorf("AllocOf(%v).IDs() = %v", c.ids, got)
		}
		if got := a.Count(); got != len(c.ids) {
			t.Errorf("AllocOf(%v).Count() = %d, want %d", c.ids, got, len(c.ids))
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestContiguousBestFitPicksTightestRun(t *testing.T) {
	c := mustCluster(t, 16, ContiguousBestFit)
	// Carve the machine into runs: occupy 4..5 and 9..12.
	a1, _ := c.Allocate(16, 0)
	c.Release(a1, 0) // warm the path; everything free again
	hold1, _ := c.Allocate(16, 1)
	c.Release(AllocOf(0, 1, 2, 3), 1)
	c.Release(AllocOf(6, 7, 8), 1)
	c.Release(AllocOf(13, 14, 15), 1)
	_ = hold1
	// Free runs: [0..3] (4), [6..8] (3), [13..15] (3). A 3-wide job must
	// take one of the tight 3-runs, not split the 4-run.
	got, err := c.Allocate(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("allocation %v not contiguous", got.IDs())
	}
	if got.IDs()[0] != 6 {
		t.Errorf("allocation %v, want the tightest run starting at 6", got.IDs())
	}
}

func TestContiguousFallbackSpansRuns(t *testing.T) {
	c := mustCluster(t, 8, ContiguousBestFit)
	all, _ := c.Allocate(8, 0)
	_ = all
	c.Release(AllocOf(0, 1), 0)
	c.Release(AllocOf(4, 5), 0)
	// No contiguous run of 3 exists; fallback takes lowest IDs.
	got, err := c.Allocate(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 4}
	for i, id := range want {
		if got.IDs()[i] != id {
			t.Fatalf("fallback allocation %v, want %v", got.IDs(), want)
		}
	}
}

func TestNextFitAdvancesCursor(t *testing.T) {
	c := mustCluster(t, 8, NextFit)
	a, _ := c.Allocate(3, 0) // takes 0,1,2; cursor at 3
	if a.IDs()[0] != 0 || a.IDs()[2] != 2 {
		t.Fatalf("first allocation %v", a.IDs())
	}
	b, _ := c.Allocate(2, 0) // takes 3,4
	if b.IDs()[0] != 3 || b.IDs()[1] != 4 {
		t.Fatalf("second allocation %v, want [3 4]", b.IDs())
	}
	c.Release(a, 1)
	// Cursor at 5: next allocation wraps 5,6,7 before reusing 0..2.
	d, _ := c.Allocate(3, 1)
	want := []int{5, 6, 7}
	for i, id := range want {
		if d.IDs()[i] != id {
			t.Fatalf("wrapped allocation %v, want %v", d.IDs(), want)
		}
	}
}

func TestNextFitWrapsAround(t *testing.T) {
	c := mustCluster(t, 4, NextFit)
	a, _ := c.Allocate(3, 0)
	c.Release(a, 1)
	// Cursor at 3: allocation of 2 takes 3 and wraps to 0.
	b, err := c.Allocate(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.IDs()[0] != 0 || b.IDs()[1] != 3 {
		t.Errorf("wrap allocation %v, want [0 3]", b.IDs())
	}
}

func TestDoubleReleaseDetectedOnBitmapPolicies(t *testing.T) {
	c := mustCluster(t, 4, ContiguousBestFit)
	a, _ := c.Allocate(2, 0)
	if err := c.Release(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(a, 2); err == nil {
		t.Error("double release accepted")
	}
}

// Property: all selection policies preserve the free+busy invariant and
// never hand out duplicate or out-of-range processors.
func TestQuickSelectionInvariants(t *testing.T) {
	for _, sel := range []Selection{FirstFit, ContiguousBestFit, NextFit} {
		r := rand.New(rand.NewSource(77))
		total := 32
		c := mustCluster(t, total, sel)
		var live []Alloc
		now := 0.0
		for step := 0; step < 500; step++ {
			now += r.Float64()
			if r.Intn(2) == 0 && c.FreeCount() > 0 {
				n := 1 + r.Intn(c.FreeCount())
				a, err := c.Allocate(n, now)
				if err != nil {
					t.Fatalf("%v: %v", sel, err)
				}
				live = append(live, a)
			} else if len(live) > 0 {
				i := r.Intn(len(live))
				if err := c.Release(live[i], now); err != nil {
					t.Fatalf("%v: %v", sel, err)
				}
				live = append(live[:i], live[i+1:]...)
			}
			if c.FreeCount()+c.Busy() != total {
				t.Fatalf("%v: free %d + busy %d != %d", sel, c.FreeCount(), c.Busy(), total)
			}
			seen := map[int]bool{}
			for _, a := range live {
				prev := -1
				for _, id := range a.IDs() {
					if seen[id] || id < 0 || id >= total {
						t.Fatalf("%v: duplicate or out-of-range id %d", sel, id)
					}
					if id <= prev {
						t.Fatalf("%v: allocation ids not ascending: %v", sel, a.IDs())
					}
					prev = id
					seen[id] = true
				}
				// Runs must be canonical: ascending, disjoint, and maximal
				// (no two adjacent runs could be merged).
				for i := 1; i < len(a.Runs); i++ {
					if a.Runs[i].Lo <= a.Runs[i-1].Hi+1 {
						t.Fatalf("%v: non-canonical runs %v", sel, a.Runs)
					}
				}
				for _, r := range a.Runs {
					if r.Lo > r.Hi {
						t.Fatalf("%v: inverted run %v", sel, r)
					}
				}
			}
		}
	}
}

// Contiguity comparison: on a fragmenting random workload the contiguous
// policy produces placements at least as compact as First Fit on average.
func TestContiguousBeatsFirstFitOnRuns(t *testing.T) {
	runsFor := func(sel Selection) float64 {
		r := rand.New(rand.NewSource(99))
		c := mustCluster(t, 64, sel)
		var live []Alloc
		total, count := 0, 0
		now := 0.0
		for step := 0; step < 2000; step++ {
			now += 1
			if r.Intn(3) != 0 && c.FreeCount() >= 8 {
				a, err := c.Allocate(1+r.Intn(8), now)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, a)
				total += len(a.Runs)
				count++
			} else if len(live) > 0 {
				i := r.Intn(len(live))
				c.Release(live[i], now)
				live = append(live[:i], live[i+1:]...)
			}
		}
		return float64(total) / float64(count)
	}
	ff := runsFor(FirstFit)
	cbf := runsFor(ContiguousBestFit)
	if cbf > ff {
		t.Errorf("contiguous placement runs %.3f worse than first fit %.3f", cbf, ff)
	}
}
