package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAllFree(t *testing.T) {
	c := New(8)
	if c.Total() != 8 || c.FreeCount() != 8 || c.Busy() != 0 {
		t.Errorf("fresh cluster state: total=%d free=%d busy=%d", c.Total(), c.FreeCount(), c.Busy())
	}
}

func TestNewPanicsOnInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestFirstFitLowestIDs(t *testing.T) {
	c := New(8)
	a, err := c.Allocate(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range a.IDs() {
		if id != i {
			t.Errorf("first allocation IDs = %v, want [0 1 2]", a.IDs())
			break
		}
	}
	b, _ := c.Allocate(2, 0)
	if b.IDs()[0] != 3 || b.IDs()[1] != 4 {
		t.Errorf("second allocation IDs = %v, want [3 4]", b.IDs())
	}
	// Release the first block; next allocation must reuse the lowest IDs.
	if err := c.Release(a, 1); err != nil {
		t.Fatal(err)
	}
	d, _ := c.Allocate(2, 1)
	if d.IDs()[0] != 0 || d.IDs()[1] != 1 {
		t.Errorf("post-release allocation IDs = %v, want [0 1] (First Fit)", d.IDs())
	}
}

func TestAllocateExhaustion(t *testing.T) {
	c := New(4)
	if _, err := c.Allocate(5, 0); err == nil {
		t.Error("over-allocation accepted")
	}
	c.Allocate(4, 0)
	if _, err := c.Allocate(1, 0); err == nil {
		t.Error("allocation from empty pool accepted")
	}
	if _, err := c.Allocate(0, 0); err == nil {
		t.Error("zero-size allocation accepted")
	}
}

func TestReleaseValidation(t *testing.T) {
	c := New(4)
	a, _ := c.Allocate(2, 0)
	if err := c.Release(AllocOf(99), 1); err == nil {
		t.Error("foreign processor release accepted")
	}
	if err := c.Release(a, 1); err != nil {
		t.Errorf("valid release rejected: %v", err)
	}
	if c.FreeCount() != 4 {
		t.Errorf("free after release = %d, want 4", c.FreeCount())
	}
}

func TestTimeMonotonicity(t *testing.T) {
	c := New(4)
	c.Allocate(1, 10)
	if _, err := c.Allocate(1, 5); err == nil {
		t.Error("backwards allocation time accepted")
	}
	a, _ := c.Allocate(1, 10)
	if err := c.Release(a, 5); err == nil {
		t.Error("backwards release time accepted")
	}
}

func TestBusyIntegral(t *testing.T) {
	c := New(10)
	a, _ := c.Allocate(4, 0)  // 4 busy from t=0
	b, _ := c.Allocate(2, 10) // 6 busy from t=10
	c.Release(a, 20)          // 2 busy from t=20
	c.Release(b, 30)          // 0 busy from t=30
	// Integral: 4*10 + 6*10 + 2*10 = 120 CPU-seconds.
	if got := c.BusyCPUSeconds(30); math.Abs(got-120) > 1e-9 {
		t.Errorf("BusyCPUSeconds(30) = %v, want 120", got)
	}
	// Still 120 later (nothing busy).
	if got := c.BusyCPUSeconds(50); math.Abs(got-120) > 1e-9 {
		t.Errorf("BusyCPUSeconds(50) = %v, want 120", got)
	}
}

func TestBusyIntegralMidAllocation(t *testing.T) {
	c := New(4)
	c.Allocate(3, 0)
	if got := c.BusyCPUSeconds(10); math.Abs(got-30) > 1e-9 {
		t.Errorf("BusyCPUSeconds(10) = %v, want 30", got)
	}
}

func TestIdleCPUSeconds(t *testing.T) {
	c := New(10)
	a, _ := c.Allocate(5, 0)
	c.Release(a, 10)
	// Window [0,20]: total 200 CPU-s, busy 50, idle 150.
	if got := c.IdleCPUSeconds(0, 20); math.Abs(got-150) > 1e-9 {
		t.Errorf("IdleCPUSeconds = %v, want 150", got)
	}
	if got := c.IdleCPUSeconds(20, 10); got != 0 {
		t.Errorf("inverted window idle = %v, want 0", got)
	}
}

// Property: random allocate/release sequences preserve the processor
// count invariant free + busy == total and never hand out duplicate IDs.
func TestQuickAllocReleaseInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := 1 + r.Intn(64)
		c := New(total)
		var live []Alloc
		now := 0.0
		for step := 0; step < 200; step++ {
			now += r.Float64()
			if r.Intn(2) == 0 && c.FreeCount() > 0 {
				n := 1 + r.Intn(c.FreeCount())
				a, err := c.Allocate(n, now)
				if err != nil {
					return false
				}
				live = append(live, a)
			} else if len(live) > 0 {
				i := r.Intn(len(live))
				if err := c.Release(live[i], now); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if c.FreeCount()+c.Busy() != total {
				return false
			}
			seen := make(map[int]bool)
			for _, a := range live {
				for _, id := range a.IDs() {
					if seen[id] || id < 0 || id >= total {
						return false
					}
					seen[id] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// AllocateInto must reuse the destination's run capacity: after a warmup
// allocation, re-allocating through the same Alloc performs no new slice
// allocation and fully overwrites the previous contents.
func TestAllocateIntoReusesCapacity(t *testing.T) {
	c := New(16)
	var a Alloc
	if err := c.AllocateInto(&a, 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(a, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.AllocateInto(&a, 4, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Release(a, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("AllocateInto allocated %.1f objects per cycle, want 0", allocs)
	}
	if got := a.IDs(); !equalInts(got, []int{0, 1, 2, 3}) {
		t.Errorf("reused allocation IDs = %v, want [0 1 2 3]", got)
	}
}

// Property: the busy integral is non-negative and non-decreasing in time.
func TestQuickBusyIntegralMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(8)
		now, prev := 0.0, 0.0
		var live []Alloc
		for step := 0; step < 100; step++ {
			now += r.Float64() * 5
			if r.Intn(2) == 0 && c.FreeCount() > 0 {
				a, _ := c.Allocate(1+r.Intn(c.FreeCount()), now)
				live = append(live, a)
			} else if len(live) > 0 {
				c.Release(live[len(live)-1], now)
				live = live[:len(live)-1]
			}
			cur := c.BusyCPUSeconds(now)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Regression: double release must be rejected under EVERY selection
// policy. The seed implementation only consulted the ownership bitmap of
// the contiguous/next-fit policies, so under First Fit (the paper's
// policy) a double release silently pushed duplicate IDs into the free
// heap, corrupting nfree/busy and letting one processor be allocated
// twice.
func TestDoubleReleaseRejectedAllPolicies(t *testing.T) {
	for _, sel := range []Selection{FirstFit, ContiguousBestFit, NextFit} {
		c, err := NewWithSelection(8, sel)
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.Allocate(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := c.Allocate(2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Release(a, 1); err != nil {
			t.Fatalf("%v: first release failed: %v", sel, err)
		}
		if err := c.Release(a, 2); err == nil {
			t.Fatalf("%v: double release accepted", sel)
		}
		// The failed release must not have mutated any accounting.
		if c.FreeCount() != 6 || c.Busy() != 2 {
			t.Fatalf("%v: free=%d busy=%d after rejected double release, want 6/2",
				sel, c.FreeCount(), c.Busy())
		}
		// A duplicate ID within one allocation is also a double release.
		dup := AllocOf(b.IDs()[0], b.IDs()[0])
		if err := c.Release(dup, 3); err == nil {
			t.Fatalf("%v: duplicate-ID release accepted", sel)
		}
		if c.FreeCount() != 6 || c.Busy() != 2 {
			t.Fatalf("%v: free=%d busy=%d after rejected duplicate release, want 6/2",
				sel, c.FreeCount(), c.Busy())
		}
		if err := c.Release(b, 4); err != nil {
			t.Fatalf("%v: valid release rejected after errors: %v", sel, err)
		}
		if c.FreeCount() != 8 || c.Busy() != 0 {
			t.Fatalf("%v: free=%d busy=%d at end, want 8/0", sel, c.FreeCount(), c.Busy())
		}
		// The machine must still allocate every processor exactly once.
		seen := map[int]bool{}
		all, err := c.Allocate(8, 5)
		if err != nil {
			t.Fatalf("%v: full allocation failed: %v", sel, err)
		}
		for _, id := range all.IDs() {
			if seen[id] {
				t.Fatalf("%v: processor %d allocated twice", sel, id)
			}
			seen[id] = true
		}
	}
}
