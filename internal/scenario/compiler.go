package scenario

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/altpolicy"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// Compiler compiles specs into scenarios, sharing workload arenas across
// compilations: an SWF log is parsed once, a materialized preset is
// generated once, and a streamed preset pays its RNG summing passes once —
// every scenario over the same workload then replays the shared immutable
// result through independent cursors. A Compiler is safe for concurrent
// use; the zero value is ready.
type Compiler struct {
	mu     sync.Mutex
	arenas map[arenaKey]*arena
}

// arenaKey identifies one shared workload resolution.
type arenaKey struct {
	name        string
	jobs        int
	swfCPUs     int
	filter      workload.SWFFilter
	materialize bool
}

// arena is one resolved named workload: a materialized trace (SWF logs
// and Materialize presets) or a stream prototype presets clone cursors
// from. The once gate makes concurrent compilations of the same workload
// resolve it exactly once.
type arena struct {
	once  sync.Once
	trace *workload.Trace
	proto *wgen.Source
	eco   workload.EcoSet // stream-preset eco tagging, applied per cloned cursor
	err   error
}

// Compile resolves the spec into an immutable scenario using a throwaway
// compiler. Callers compiling many specs over shared workloads (sweeps,
// servers) should hold a Compiler so arenas are reused.
func Compile(spec Spec) (*Scenario, error) {
	var c Compiler
	return c.Compile(spec)
}

// Compile resolves every default, validates the spec, resolves the
// workload through the shared arena cache and returns the compiled
// scenario.
func (c *Compiler) Compile(spec Spec) (*Scenario, error) {
	if err := oneWorkloadInput(spec); err != nil {
		return nil, err
	}

	gears := spec.Gears
	if gears == nil {
		gears = dvfs.PaperGearSet()
	}
	if err := gears.Validate(); err != nil {
		return nil, err
	}
	pm := spec.PowerModel
	if pm == nil {
		pm = dvfs.PaperPowerModel()
	}
	beta, err := positiveOrDefault(spec.Beta, DefaultBeta, "Beta")
	if err != nil {
		return nil, err
	}
	shortTh, err := positiveOrDefault(spec.ShortJobTh, core.DefaultShortJobThreshold, "ShortJobTh")
	if err != nil {
		return nil, err
	}
	variant, err := sched.ParseVariant(spec.Variant)
	if err != nil {
		return nil, err
	}
	selection, err := cluster.ParseSelection(spec.Selection)
	if err != nil {
		return nil, err
	}
	order, err := sched.ParseOrder(spec.Order)
	if err != nil {
		return nil, err
	}
	if spec.Reservations < 0 {
		return nil, fmt.Errorf("scenario: negative reservation depth %d", spec.Reservations)
	}

	s := &Scenario{
		variant:        variant,
		selection:      selection,
		order:          order,
		reservations:   spec.Reservations,
		gears:          gears,
		pm:             pm,
		beta:           beta,
		shortTh:        shortTh,
		keepCollector:  spec.KeepCollector,
		extraRecorders: spec.ExtraRecorders,
		compat:         spec.Compat,
		concurrent:     true,
	}

	// Gear policy: a pre-built object wins over the data-level config.
	switch {
	case spec.GearPolicy != nil:
		s.policy = spec.GearPolicy
		s.policyDesc = policyDescriptor(spec.GearPolicy)
		if _, ctrl := spec.GearPolicy.(sched.PowerController); ctrl {
			if _, cloner := spec.GearPolicy.(sched.PolicyCloner); !cloner {
				// A system-bound policy without a clone seam would share
				// mutable state across executions.
				s.concurrent = false
			}
		}
	case !spec.Policy.Baseline():
		pol, err := core.NewPolicy(spec.Policy.params(), gears, dvfs.NewTimeModel(beta, gears))
		if err != nil {
			return nil, err
		}
		s.policy = pol
		s.policyDesc = policyDescriptor(pol)
	default:
		s.policyDesc = baselineDesc
	}

	// Power controller: a pre-built object wins over the data-level
	// config; a zero ControllerConfig compiles no controller at all, so
	// the cap-disabled path is the pre-controller path, hash included.
	switch {
	case spec.GearController != nil:
		s.controller = spec.GearController
		s.controllerDesc = controllerDescriptor(spec.GearController)
		if _, cloner := spec.GearController.(sched.ControllerCloner); !cloner {
			// Controllers are bound to their system; without a clone seam
			// executions would share the bound state.
			s.concurrent = false
		}
	case spec.Controller.Enabled():
		ctrl, err := buildController(spec.Controller, gears, pm)
		if err != nil {
			return nil, err
		}
		s.controller = ctrl
		s.controllerDesc = controllerDescriptor(ctrl)
	}

	baseCPUs, err := c.resolveWorkload(spec, s)
	if err != nil {
		return nil, err
	}
	if spec.Source != nil || len(spec.ExtraRecorders) > 0 {
		s.concurrent = false
	}

	// Machine size: explicit override, else the workload's original system
	// scaled by the size factor.
	s.cpus = spec.CPUs
	if s.cpus == 0 {
		f := spec.SizeFactor
		if f == 0 {
			f = 1
		}
		if f <= 0 {
			return nil, fmt.Errorf("scenario: non-positive size factor %v", spec.SizeFactor)
		}
		s.cpus = int(math.Round(float64(baseCPUs) * f))
	}

	s.hash = s.contentHash()
	return s, nil
}

// buildController compiles a data-level controller config. PI gain
// defaults are resolved here, before hashing, so an explicit default
// gain and an omitted one describe the same scenario.
func buildController(cfg ControllerConfig, gears dvfs.GearSet, pm *dvfs.PowerModel) (sched.PowerController, error) {
	switch cfg.Kind {
	case "", "powercap":
		kp, ki := cfg.Kp, cfg.Ki
		if kp == 0 {
			kp = altpolicy.DefaultKp
		}
		if ki == 0 {
			ki = altpolicy.DefaultKi
		}
		return altpolicy.NewPowerCap(gears, pm, cfg.CapFrac, kp, ki, cfg.EcoOnly)
	}
	return nil, fmt.Errorf("scenario: unknown controller kind %q (powercap)", cfg.Kind)
}

// oneWorkloadInput enforces that exactly one of the four workload inputs
// is set, naming every field in both error directions.
func oneWorkloadInput(spec Spec) error {
	var set []string
	if spec.Workload != "" {
		set = append(set, "Workload")
	}
	if spec.Trace != nil {
		set = append(set, "Trace")
	}
	if spec.Source != nil {
		set = append(set, "Source")
	}
	if spec.Factory != nil {
		set = append(set, "Factory")
	}
	switch len(set) {
	case 0:
		return fmt.Errorf("scenario: no workload input: set exactly one of Workload, Trace, Source or Factory")
	case 1:
		return nil
	default:
		return fmt.Errorf("scenario: %s all set; choose one workload input", strings.Join(set, " and "))
	}
}

// resolveWorkload fills the scenario's workload fields (name, length,
// descriptor, and exactly one of trace/source/factory) and returns the
// processor count of the workload's original system.
func (c *Compiler) resolveWorkload(spec Spec, s *Scenario) (int, error) {
	switch {
	case spec.Trace != nil:
		s.adoptTrace(spec.Trace)
		s.wdesc = fmt.Sprintf("trace!%s|len=%d|cpus=%d", spec.Trace.Name, len(spec.Trace.Jobs), spec.Trace.CPUs)
		return spec.Trace.CPUs, nil
	case spec.Source != nil:
		s.source = spec.Source
		s.name = spec.Source.Name()
		s.jobCount = sourceLen(spec.Source)
		s.wdesc = fmt.Sprintf("source!%s|len=%d|cpus=%d", s.name, s.jobCount, spec.Source.CPUs())
		return spec.Source.CPUs(), nil
	case spec.Factory != nil:
		// Probe once for identity; the probe cursor is discarded.
		probe, err := spec.Factory()
		if err != nil {
			return 0, fmt.Errorf("scenario: workload factory: %w", err)
		}
		s.factory = spec.Factory
		s.name = probe.Name()
		s.jobCount = sourceLen(probe)
		s.wdesc = fmt.Sprintf("factory!%s|len=%d|cpus=%d", s.name, s.jobCount, probe.CPUs())
		return probe.CPUs(), nil
	}

	a := c.arena(arenaKey{
		name:        spec.Workload,
		jobs:        spec.Jobs,
		swfCPUs:     spec.SWFCPUs,
		filter:      spec.Filter,
		materialize: spec.Materialize,
	})
	a.once.Do(func() { a.resolve(spec) })
	if a.err != nil {
		return 0, a.err
	}
	baseCPUs := 0
	if a.trace != nil {
		s.adoptTrace(a.trace)
		baseCPUs = a.trace.CPUs
	} else {
		proto, eco := a.proto, a.eco
		s.factory = func() (workload.JobSource, error) { return workload.TagEco(proto.Clone(), eco), nil }
		s.name = proto.Name()
		s.jobCount = proto.Len()
		baseCPUs = proto.CPUs()
	}
	// Named workloads hash canonically: the name plus every knob that
	// changes the generated/parsed content. Materialize is excluded —
	// arena vs cloned cursors is bit-identical.
	s.wdesc = fmt.Sprintf("name!%s|jobs=%d|swfcpus=%d|filter=%+v", spec.Workload, spec.Jobs, spec.SWFCPUs, spec.Filter)
	return baseCPUs, nil
}

// arena returns (creating if needed) the shared arena slot for the key.
func (c *Compiler) arena(k arenaKey) *arena {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.arenas == nil {
		c.arenas = make(map[arenaKey]*arena)
	}
	a := c.arenas[k]
	if a == nil {
		a = &arena{}
		c.arenas[k] = a
	}
	return a
}

// resolve loads the named workload into the arena: SWF logs always parse
// into a trace, presets generate a trace when materializing and a stream
// prototype otherwise. Presets honor the filter's EcoUsers hook exactly
// like the SWF parsers ("*" opts in every job, user IDs match when the
// model assigns a user pool); the filter is part of the arena key, so a
// tagged trace never aliases an untagged one.
func (a *arena) resolve(spec Spec) {
	if strings.HasSuffix(spec.Workload, ".swf") {
		a.trace, a.err = workload.ParseSWFFile(spec.Workload, spec.SWFCPUs, spec.Filter)
		return
	}
	m, err := wgen.Preset(spec.Workload)
	if err != nil {
		a.err = err
		return
	}
	if spec.Jobs > 0 {
		m.Jobs = spec.Jobs
	}
	eco, err := spec.Filter.EcoSet()
	if err != nil {
		a.err = err
		return
	}
	if spec.Materialize {
		a.trace, a.err = wgen.Generate(m)
		if a.err == nil {
			eco.Tag(a.trace.Jobs)
		}
		return
	}
	a.eco = eco
	a.proto, a.err = wgen.Stream(m)
}

// adoptTrace wires a shared trace arena into the scenario.
func (s *Scenario) adoptTrace(tr *workload.Trace) {
	s.trace = tr
	s.name = tr.Name
	s.jobCount = len(tr.Jobs)
}

// sourceLen is the source's job count when it can know it upfront, -1
// otherwise.
func sourceLen(src workload.JobSource) int {
	if c, ok := src.(workload.Counted); ok {
		return c.Len()
	}
	return -1
}
