package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/altpolicy"
	"repro/internal/core"
	"repro/internal/sched"
)

// baselineDesc is the canonical policy descriptor of the no-DVFS
// baseline.
const baselineDesc = "noDVFS"

// policyDescriptor canonicalizes a gear policy for hashing. The paper's
// policy hashes its full parameter set — Name() alone ("bsld(2,16)")
// omits Boost, StrictBackfillBSLD and ShortJobThreshold, which would make
// distinct configurations collide. Other policy implementations fall back
// to their Name with a marker recording that the descriptor may not cover
// every knob.
func policyDescriptor(p sched.GearPolicy) string {
	switch pol := p.(type) {
	case *core.Policy:
		return fmt.Sprintf("core!%+v", pol.Params())
	case sched.FixedGear:
		return "fixed!" + pol.Gear.String()
	default:
		return "opaque!" + p.Name()
	}
}

// controllerDescriptor canonicalizes a power controller for hashing,
// with the same full-fidelity rule as policyDescriptor: the power-cap
// controller hashes every result-relevant knob (resolved gains
// included), other implementations fall back to Name with an opaque
// marker.
func controllerDescriptor(c sched.PowerController) string {
	switch ctrl := c.(type) {
	case *altpolicy.PowerCap:
		return fmt.Sprintf("powercap!cap=%.17g|kp=%.17g|ki=%.17g|eco=%t",
			ctrl.CapFrac, ctrl.Kp, ctrl.Ki, ctrl.EcoOnly)
	default:
		return "opaque!" + c.Name()
	}
}

// contentHash computes the canonical scenario hash: SHA-256 over a
// line-oriented canonical form covering everything that determines the
// Results — the workload descriptor, the resolved machine size, the
// scheduling options, gears, power model, β, Th and the policy
// descriptor. Result-neutral knobs (KeepCollector, ExtraRecorders,
// Materialize, Compat) are excluded: the verification spine proves them
// byte-identical. Floats print with %g at full round-trip precision.
func (s *Scenario) contentHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "v1\nworkload=%s\ncpus=%d\n", s.wdesc, s.cpus)
	fmt.Fprintf(h, "variant=%s\nselection=%s\norder=%s\nreservations=%d\n",
		s.variant, s.selection, s.order, s.reservations)
	for _, g := range s.gears {
		fmt.Fprintf(h, "gear=%.17g:%.17g\n", g.Freq, g.Voltage)
	}
	fmt.Fprintf(h, "pm=%.17g:%.17g:%.17g\n", s.pm.ACRunning, s.pm.ActivityRatio, s.pm.StaticFraction)
	fmt.Fprintf(h, "beta=%.17g\nshortth=%.17g\n", s.beta, s.shortTh)
	fmt.Fprintf(h, "policy=%s\n", s.policyDesc)
	if s.controllerDesc != "" {
		// Appended only when a controller is configured, so every
		// controller-free scenario hashes exactly as it did before the
		// controller layer existed (cache keys survive the upgrade).
		fmt.Fprintf(h, "controller=%s\n", s.controllerDesc)
	}
	return hex.EncodeToString(h.Sum(nil))
}
