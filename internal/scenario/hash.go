package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/altpolicy"
	"repro/internal/core"
	"repro/internal/sched"
)

// baselineDesc is the canonical policy descriptor of the no-DVFS
// baseline.
const baselineDesc = "noDVFS"

// policyDescriptor canonicalizes a gear policy for hashing. The paper's
// policy hashes its full parameter set — Name() alone ("bsld(2,16)")
// omits Boost, StrictBackfillBSLD and ShortJobThreshold, which would make
// distinct configurations collide. Other policy implementations fall back
// to their Name with a marker recording that the descriptor may not cover
// every knob.
func policyDescriptor(p sched.GearPolicy) string {
	switch pol := p.(type) {
	case *core.Policy:
		return fmt.Sprintf("core!%+v", pol.Params())
	case sched.FixedGear:
		return "fixed!" + pol.Gear.String()
	default:
		return "opaque!" + p.Name()
	}
}

// controllerDescriptor canonicalizes a power controller for hashing,
// with the same full-fidelity rule as policyDescriptor: the power-cap
// controller hashes every result-relevant knob (resolved gains
// included), other implementations fall back to Name with an opaque
// marker.
func controllerDescriptor(c sched.PowerController) string {
	switch ctrl := c.(type) {
	case *altpolicy.PowerCap:
		return fmt.Sprintf("powercap!cap=%.17g|kp=%.17g|ki=%.17g|eco=%t",
			ctrl.CapFrac, ctrl.Kp, ctrl.Ki, ctrl.EcoOnly)
	default:
		return "opaque!" + c.Name()
	}
}

// contentHash computes the canonical scenario hash: SHA-256 over a
// line-oriented canonical form covering everything that determines the
// Results — the workload descriptor, the resolved machine size, the
// scheduling options, gears, power model, β, Th and the policy
// descriptor. Result-neutral knobs (KeepCollector, ExtraRecorders,
// Materialize, Compat) are excluded: the verification spine proves them
// byte-identical. Floats print with %g at full round-trip precision.
func (s *Scenario) contentHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "v1\nworkload=%s\ncpus=%d\n", s.wdesc, s.cpus)
	fmt.Fprintf(h, "variant=%s\nselection=%s\norder=%s\nreservations=%d\n",
		s.variant, s.selection, s.order, s.reservations)
	for _, g := range s.gears {
		fmt.Fprintf(h, "gear=%.17g:%.17g\n", g.Freq, g.Voltage)
	}
	fmt.Fprintf(h, "pm=%.17g:%.17g:%.17g\n", s.pm.ACRunning, s.pm.ActivityRatio, s.pm.StaticFraction)
	fmt.Fprintf(h, "beta=%.17g\nshortth=%.17g\n", s.beta, s.shortTh)
	fmt.Fprintf(h, "policy=%s\n", s.policyDesc)
	if s.controllerDesc != "" {
		// Appended only when a controller is configured, so every
		// controller-free scenario hashes exactly as it did before the
		// controller layer existed (cache keys survive the upgrade).
		fmt.Fprintf(h, "controller=%s\n", s.controllerDesc)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ── Hash-coverage declaration ────────────────────────────────────────
//
// Machine-checked by reprovet's hashcover analyzer (internal/analysis):
// every field of Spec must appear in exactly one of the two maps below,
// and every Scenario field named on the right-hand side of hashedVia
// must actually be read by contentHash above. Adding a Spec field
// without extending one of these maps — i.e. without deciding whether
// the field is part of the cache key — fails `go test ./...` (the
// driver test in internal/analysis) and the CI reprovet step.
//
// How to classify a new Spec field:
//
//  1. Could the field change any byte of the Outcome (the schedule, the
//     Results, controller stats)? Then it is result-relevant: fold its
//     canonical resolved form into contentHash, and record in hashedVia
//     which Scenario field carries it there. Hash the RESOLVED form,
//     not the raw spec value, so spellings that compile identically
//     ("easy" vs "") share a cache entry.
//
//  2. Otherwise it must be proven result-neutral the way the entries of
//     hashNeutral are — a byte-identity test in the verification spine
//     exercising both settings — and allowlisted here with that
//     justification. Never allowlist a field because hashing it is
//     inconvenient: a missed result-relevant field silently poisons
//     cmd/schedd's cache key and any future hash-sharded backends,
//     returning one configuration's results for another's query.

// hashedVia maps each result-relevant Spec field to the resolved
// Scenario field that carries it into contentHash.
var hashedVia = map[string]string{
	// The workload: name/Jobs/SWFCPUs/Filter (and the pre-resolved
	// Trace/Source/Factory escape hatches) all fold into the canonical
	// workload descriptor line.
	"Workload": "wdesc",
	"Jobs":     "wdesc",
	"SWFCPUs":  "wdesc",
	"Filter":   "wdesc",
	"Trace":    "wdesc",
	"Source":   "wdesc",
	"Factory":  "wdesc",

	// Machine size: SizeFactor and CPUs resolve to one processor count.
	"SizeFactor": "cpus",
	"CPUs":       "cpus",

	// Scheduling options.
	"Variant":      "variant",
	"Selection":    "selection",
	"Order":        "order",
	"Reservations": "reservations",

	// Power and execution-time model.
	"Gears":      "gears",
	"PowerModel": "pm",
	"Beta":       "beta",
	"ShortJobTh": "shortTh",

	// Gear policy and power controller, via their full-fidelity
	// canonical descriptors (policyDescriptor / controllerDescriptor).
	"Policy":         "policyDesc",
	"GearPolicy":     "policyDesc",
	"Controller":     "controllerDesc",
	"GearController": "controllerDesc",
}

// hashNeutral is the documented result-neutral allowlist: Spec fields
// deliberately excluded from the hash, each with the proof that makes
// the exclusion safe.
var hashNeutral = map[string]string{
	"Materialize":    "arena replay vs cloned-cursor streaming is pinned bit-identical (TestStreamMatchesGenerate; BenchmarkStreamingMillionHeap asserts Results equality in-bench)",
	"KeepCollector":  "retained per-job records never change Results: the streaming collector folds them online bit-identically (streaming-vs-retained collector tests)",
	"ExtraRecorders": "recorders observe the run; one that mutated scheduling state would break its own Recorder contract, not the hash",
	"Compat":         "every compat mode is pinned byte-identical to the optimized path by the determinism suite (internal/sched/compat_test.go)",
}

// HashCoverage returns copies of the hash-coverage declaration: the
// Spec-field→Scenario-field map the canonical hash covers, and the
// result-neutral allowlist with its justifications. Exposed for tests
// and tooling; the authoritative check is reprovet's hashcover analyzer.
func HashCoverage() (hashed, neutral map[string]string) {
	hashed = make(map[string]string, len(hashedVia))
	//lint:nondeterm copying map→map is order-insensitive
	for k, v := range hashedVia {
		hashed[k] = v
	}
	neutral = make(map[string]string, len(hashNeutral))
	//lint:nondeterm copying map→map is order-insensitive
	for k, v := range hashNeutral {
		neutral[k] = v
	}
	return hashed, neutral
}
