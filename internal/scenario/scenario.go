// Package scenario compiles a run description into an immutable,
// goroutine-safe value: the scenario. A scenario owns everything one
// simulation needs — the resolved platform (gears, power model, β, the
// short-job threshold), the machine size, the scheduling options, the gear
// policy, and a workload *factory* that hands every caller an independent
// cursor over one shared workload — plus a canonical content hash
// identifying the run for caching and deduplication.
//
// The package exists because simulation-as-a-service needs thousands of
// concurrent what-if queries over shared workloads: SWF logs are parsed
// once into a shared arena and every execution walks it through its own
// cursor, wgen presets are constructed once and stream from cloned RNG
// cursors, and stateful gear policies are cloned per execution (see
// sched.PolicyCloner), so Execute is safe to call from any number of
// goroutines on one compiled scenario and — the whole pipeline being
// deterministic — every call returns bit-identical Results.
//
// Compile once, execute many:
//
//	sc, err := scenario.Compile(scenario.Spec{
//		Workload: "CTC",
//		Policy:   scenario.PolicyConfig{BSLDThr: 2, WQThr: 16},
//	})
//	out, err := sc.Execute() // from as many goroutines as you like
//
// runner.Run and BaselinePair are thin adapters over this package, the
// sweep grid expands to scenarios, and cmd/schedd serves scenarios over
// HTTP with an LRU cache keyed by Scenario.Hash.
package scenario

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workload"
)

// DefaultBeta is the β of the execution time model the paper assumes for
// all jobs; runner.DefaultBeta aliases it.
const DefaultBeta = 0.5

// PolicyConfig selects the paper's gear policy as pure data. The zero
// value is the no-DVFS baseline (top gear for every job). sweep.PolicyConfig
// aliases this type, so grid JSON and what-if requests share one shape.
type PolicyConfig struct {
	// BSLDThr is the BSLD threshold of the paper's algorithm; 0 selects
	// the baseline without DVFS.
	BSLDThr float64 `json:"bsld_thr"`
	// WQThr is the wait-queue threshold (core.NoWQLimit = "NO LIMIT");
	// ignored for baselines.
	WQThr int `json:"wq_thr"`
	// Boost enables the §7 dynamic frequency boost above BoostWQ waiters.
	Boost   bool `json:"boost,omitempty"`
	BoostWQ int  `json:"boost_wq,omitempty"`
}

// Baseline reports whether the configuration runs without DVFS.
func (p PolicyConfig) Baseline() bool { return p.BSLDThr == 0 }

// Label is a compact caption ("2/NO", "1.5/4", "noDVFS").
func (p PolicyConfig) Label() string {
	if p.Baseline() {
		return "noDVFS"
	}
	wq := fmt.Sprint(p.WQThr)
	if p.WQThr == core.NoWQLimit {
		wq = "NO"
	}
	if p.Boost {
		return fmt.Sprintf("%g/%s+boost%d", p.BSLDThr, wq, p.BoostWQ)
	}
	return fmt.Sprintf("%g/%s", p.BSLDThr, wq)
}

// Validate reports the first problem with the configuration.
func (p PolicyConfig) Validate() error {
	if p.Baseline() {
		return nil
	}
	params := core.Params{
		BSLDThreshold: p.BSLDThr, WQThreshold: p.WQThr,
		Boost: p.Boost, BoostWQ: p.BoostWQ,
	}
	return params.Validate()
}

// params returns the core.Params the configuration describes.
func (p PolicyConfig) params() core.Params {
	return core.Params{
		BSLDThreshold: p.BSLDThr,
		WQThreshold:   p.WQThr,
		Boost:         p.Boost,
		BoostWQ:       p.BoostWQ,
	}
}

// ControllerConfig selects a per-pass power controller as pure data —
// the wire-format counterpart of Spec.GearController, the same way
// PolicyConfig mirrors Spec.GearPolicy. The zero value disables the
// control loop entirely: no controller is compiled, the canonical hash
// is unchanged, and the run is byte-identical to a controller-free one.
type ControllerConfig struct {
	// Kind names the controller; "" and "powercap" select the PI
	// power-cap controller (the only kind today).
	Kind string `json:"kind,omitempty"`
	// CapFrac is the power cap as a fraction of the machine's maximum
	// draw (all processors active at the top gear), in (0, 1]. Zero
	// disables the controller — cap-disabled and controller-free are the
	// same run.
	CapFrac float64 `json:"cap_frac,omitempty"`
	// Kp and Ki override the PI gains (0 selects the defaults).
	Kp float64 `json:"kp,omitempty"`
	Ki float64 `json:"ki,omitempty"`
	// EcoOnly restricts actuation to jobs carrying the Eco opt-in flag
	// (see workload.SWFFilter.EcoUsers).
	EcoOnly bool `json:"eco_only,omitempty"`
}

// Enabled reports whether the configuration compiles to a controller.
func (c ControllerConfig) Enabled() bool { return c.CapFrac != 0 }

// Label is a compact caption ("cap0.7", "cap0.7eco", "nocap").
func (c ControllerConfig) Label() string {
	if !c.Enabled() {
		return "nocap"
	}
	eco := ""
	if c.EcoOnly {
		eco = "eco"
	}
	return fmt.Sprintf("cap%g%s", c.CapFrac, eco)
}

// Spec describes a run before compilation. The JSON-visible fields form
// the data-level description cmd/schedd accepts over the wire and are the
// ones the canonical hash covers; the `json:"-"` fields are escape
// hatches for callers that already hold resolved objects (runner's legacy
// Spec adapts through them).
type Spec struct {
	// Workload names the workload: a wgen preset (CTC, Million, ...) or a
	// path ending in .swf. Exactly one of Workload, Trace, Source and
	// Factory must be set.
	Workload string `json:"workload,omitempty"`
	// Jobs overrides a preset's trace length (0 keeps the model's native
	// length); ignored for .swf workloads.
	Jobs int `json:"jobs,omitempty"`
	// SWFCPUs supplies the system size for .swf logs without a MaxProcs
	// header (0 requires the header).
	SWFCPUs int `json:"swf_cpus,omitempty"`
	// Filter cleans .swf workloads (status-based drops); its EcoUsers
	// hook additionally tags preset jobs ("*" opts in every job, user
	// IDs match models with a user pool).
	Filter workload.SWFFilter `json:"filter,omitempty"`
	// Materialize generates preset workloads once into a shared trace
	// arena instead of re-streaming from cloned RNG cursors: executions
	// then replay the shared slice (stable-pointer fast path) at the cost
	// of O(trace) resident memory. Results are bit-identical either way.
	Materialize bool `json:"-"`

	// Trace is a pre-materialized workload arena: executions share the
	// (immutable) job slice, each through its own cursor.
	Trace *workload.Trace `json:"-"`
	// Source is a single pre-built stream. The scheduler rewinds it per
	// execution, so sequential re-execution works (BaselinePair), but a
	// scenario compiled from one shared cursor is NOT safe for concurrent
	// Execute — see Scenario.ConcurrentSafe.
	Source workload.JobSource `json:"-"`
	// Factory builds an independent source per call; it must be safe for
	// concurrent use (each call returns a source no other caller holds).
	Factory func() (workload.JobSource, error) `json:"-"`

	// Policy is the paper's gear policy as data; the zero value is the
	// no-DVFS baseline.
	Policy PolicyConfig `json:"policy"`
	// GearPolicy overrides Policy with a pre-built policy object. If it
	// is stateful it should implement sched.PolicyCloner so concurrent
	// executions do not share mutable state.
	GearPolicy sched.GearPolicy `json:"-"`

	// Controller selects the per-pass power controller as data; the zero
	// value runs without one (byte-identical to the pre-controller path).
	Controller ControllerConfig `json:"controller,omitempty"`
	// GearController overrides Controller with a pre-built controller
	// object. If it is stateful it should implement
	// sched.ControllerCloner so concurrent executions do not share
	// mutable state.
	GearController sched.PowerController `json:"-"`

	// SizeFactor scales the machine relative to the workload's original
	// system (1.0 = original, 1.2 = "20% increased"). Zero means 1.0.
	SizeFactor float64 `json:"size_factor,omitempty"`
	// CPUs overrides the machine size outright when non-zero.
	CPUs int `json:"cpus,omitempty"`

	// Variant is the base scheduling policy: easy (default), fcfs or
	// conservative.
	Variant string `json:"variant,omitempty"`
	// Selection is the resource selection policy: firstfit (default),
	// contiguous or nextfit.
	Selection string `json:"selection,omitempty"`
	// Order is the queue discipline: fcfs (default) or sjf.
	Order string `json:"order,omitempty"`
	// Reservations is the EASY reservation depth (0/1 classic).
	Reservations int `json:"reservations,omitempty"`

	// Gears is the DVFS gear set (nil → the paper's Table 2 set).
	Gears dvfs.GearSet `json:"gears,omitempty"`
	// PowerModel overrides the paper's power model.
	PowerModel *dvfs.PowerModel `json:"-"`
	// Beta is the β of the execution time model. nil selects the paper's
	// DefaultBeta; a set value must be positive — an explicit zero is an
	// error, never silently the default (use nil for the default).
	Beta *float64 `json:"beta,omitempty"`
	// ShortJobTh is Th of the BSLD formula. nil selects the paper's
	// 600 s; a set value must be positive — an explicit zero is an error.
	ShortJobTh *float64 `json:"short_job_th,omitempty"`

	// KeepCollector retains per-job records in the outcome (needed for
	// wait-time series, Figure 6).
	KeepCollector bool `json:"-"`
	// ExtraRecorders observe every execution alongside the metrics
	// collector. They are shared between executions, so a scenario with
	// extra recorders is not safe for concurrent Execute.
	ExtraRecorders []sched.Recorder `json:"-"`
	// Compat re-enables seed-era scheduler hot-path behavior; zero (the
	// optimized path) for all production runs.
	Compat sched.Compat `json:"-"`
}

// Outcome is the result of one execution. runner.Outcome aliases it.
type Outcome struct {
	Results   metrics.Results
	Collector *metrics.Collector // nil unless Spec.KeepCollector
	Policy    string
	CPUs      int
	// PeakEvents is the high-water mark of the simulation event heap, a
	// scale diagnostic: O(running jobs) on the optimized hot path versus
	// O(trace) under Compat.UpfrontArrivals.
	PeakEvents int
	// Controller is the power controller instance this execution ran
	// under (the per-execution clone for cloneable controllers), nil for
	// controller-free runs. Callers downcast it for controller-specific
	// reports, e.g. (*altpolicy.PowerCap).Report().
	Controller sched.PowerController
}

// Scenario is a compiled, immutable run description. All fields are
// resolved and read-only after Compile; Execute never mutates the
// scenario, so one value can back any number of concurrent executions
// (ConcurrentSafe reports the escape-hatch exceptions).
type Scenario struct {
	// Workload. Exactly one of trace, source and factory is set: trace is
	// a shared immutable arena each execution walks through its own
	// cursor, factory mints an independent cursor per execution, source is
	// a single shared cursor the scheduler rewinds (sequential use only).
	name     string
	jobCount int    // workload length when known upfront, else -1
	wdesc    string // canonical workload descriptor the hash covers
	trace    *workload.Trace
	source   workload.JobSource
	factory  func() (workload.JobSource, error)

	cpus int // resolved machine size

	variant      sched.Variant
	selection    cluster.Selection
	order        sched.Order
	reservations int

	gears   dvfs.GearSet
	pm      *dvfs.PowerModel
	beta    float64
	shortTh float64

	// policy is nil for the no-DVFS baseline. policyDesc is the canonical
	// descriptor the hash covers (full core.Params fidelity for the
	// paper's policy — Name() alone omits Boost/Strict/ShortJobTh).
	policy     sched.GearPolicy
	policyDesc string

	// controller is nil for controller-free runs. controllerDesc is the
	// canonical descriptor; empty when no controller is configured, so
	// controller-free hashes are unchanged from the pre-controller era.
	controller     sched.PowerController
	controllerDesc string

	keepCollector  bool
	extraRecorders []sched.Recorder
	compat         sched.Compat

	hash       string
	concurrent bool
}

// Hash is the canonical content hash of the scenario: two scenarios with
// equal hashes describe result-identical runs. It covers the workload
// identity, the resolved machine size, gears, power model, β, Th, the
// scheduling options and the policy descriptor — and deliberately not
// result-neutral observation knobs (KeepCollector, ExtraRecorders,
// Materialize, Compat), which are proven byte-identical by the
// verification spine.
func (s *Scenario) Hash() string { return s.hash }

// Workload is the resolved workload name.
func (s *Scenario) Workload() string { return s.name }

// Jobs is the workload length, or -1 when the source cannot know it
// upfront (an unparsed .swf stream).
func (s *Scenario) Jobs() int { return s.jobCount }

// CPUs is the resolved machine size (after SizeFactor/CPUs).
func (s *Scenario) CPUs() int { return s.cpus }

// PolicyName names the gear policy ("bsld(2,16)", "fixed(2.3GHz)").
func (s *Scenario) PolicyName() string {
	if s.policy == nil {
		return sched.FixedGear{Gear: s.gears.Top()}.Name()
	}
	return s.policy.Name()
}

// Baseline reports whether the scenario runs without DVFS.
func (s *Scenario) Baseline() bool { return s.policy == nil }

// ConcurrentSafe reports whether Execute may be called from multiple
// goroutines at once. It is false only for the escape hatches that
// inject shared mutable state: a Spec.Source cursor, ExtraRecorders
// (shared observers), a stateful Spec.GearPolicy without
// sched.PolicyCloner, or a Spec.GearController without
// sched.ControllerCloner.
func (s *Scenario) ConcurrentSafe() bool { return s.concurrent }

// NewSource hands the caller an independent cursor over the scenario's
// workload. For trace-backed scenarios that is a fresh cursor over the
// shared arena; for factory-backed ones a newly minted stream. For the
// single-cursor escape hatch (Spec.Source) every call returns the same
// shared cursor — see ConcurrentSafe.
func (s *Scenario) NewSource() (workload.JobSource, error) {
	switch {
	case s.trace != nil:
		return s.trace.Source(), nil
	case s.factory != nil:
		return s.factory()
	default:
		return s.source, nil
	}
}

// WithBaseline returns a derived scenario running the no-DVFS baseline on
// the same workload and machine; everything else (including
// KeepCollector) carries over. The power controller is dropped too: the
// baseline is the uncontrolled top-gear reference the paper normalizes
// against, so a capped scenario's pair reports cap cost against the
// uncapped machine. The workload arena/factory is shared, so the pair
// never parses or generates twice.
func (s *Scenario) WithBaseline() *Scenario {
	if s.policy == nil && s.controller == nil {
		return s
	}
	b := *s
	b.policy = nil
	b.policyDesc = baselineDesc
	b.controller = nil
	b.controllerDesc = ""
	b.hash = b.contentHash()
	return &b
}

// WithoutController returns a derived scenario identical but for the
// control loop, which is removed — the uncapped reference a capped run's
// BSLD degradation is measured against.
func (s *Scenario) WithoutController() *Scenario {
	if s.controller == nil {
		return s
	}
	b := *s
	b.controller = nil
	b.controllerDesc = ""
	b.hash = b.contentHash()
	return &b
}

// executionPolicy resolves the gear policy one execution will use: the
// top-gear fallback for baselines, a per-execution clone for stateful
// policies implementing sched.PolicyCloner, the shared (immutable) policy
// otherwise.
func (s *Scenario) executionPolicy() sched.GearPolicy {
	if s.policy == nil {
		return sched.FixedGear{Gear: s.gears.Top()}
	}
	if c, ok := s.policy.(sched.PolicyCloner); ok {
		return c.ClonePolicy()
	}
	return s.policy
}

// executionController resolves the power controller one execution will
// use: nil for controller-free runs, a per-execution clone for stateful
// controllers implementing sched.ControllerCloner, the shared controller
// otherwise.
func (s *Scenario) executionController() sched.PowerController {
	if s.controller == nil {
		return nil
	}
	if c, ok := s.controller.(sched.ControllerCloner); ok {
		return c.CloneController()
	}
	return s.controller
}

// Execute runs the simulation the scenario describes. It never mutates
// the scenario; on a ConcurrentSafe scenario any number of goroutines may
// call it at once, and determinism makes every call return bit-identical
// Results.
func (s *Scenario) Execute() (Outcome, error) {
	pol := s.executionPolicy()
	ctrl := s.executionController()
	// Without KeepCollector the run only needs the aggregate Results, so
	// the collector streams: no O(trace) record list is held alive.
	col := metrics.NewStreamingCollector(s.pm, s.shortTh)
	if s.keepCollector {
		col = metrics.NewCollector(s.pm, s.shortTh)
	}
	var rec sched.Recorder = col
	if len(s.extraRecorders) > 0 {
		// A fresh slice per execution: the shared extraRecorders backing
		// array must never be appended into.
		rec = append(sched.MultiRecorder{col}, s.extraRecorders...)
	}
	sys, err := sched.New(sched.Config{
		CPUs:         s.cpus,
		Gears:        s.gears,
		TimeModel:    dvfs.NewTimeModel(s.beta, s.gears),
		Policy:       pol,
		Variant:      s.variant,
		Recorder:     rec,
		Controller:   ctrl,
		Selection:    s.selection,
		Order:        s.order,
		Reservations: s.reservations,
		Compat:       s.compat,
	})
	if err != nil {
		return Outcome{}, err
	}
	if s.trace != nil {
		// The arena fast path: Simulate verifies sortedness without
		// mutating the shared trace and replays stable *Job pointers.
		err = sys.Simulate(s.trace)
	} else {
		src := s.source
		if s.factory != nil {
			if src, err = s.factory(); err != nil {
				return Outcome{}, err
			}
		}
		err = sys.SimulateSource(src)
	}
	if err != nil {
		return Outcome{}, err
	}
	start, end := col.Window()
	busy := sys.Cluster().BusyCPUSeconds(end)
	idle := sys.Cluster().IdleCPUSeconds(start, end)
	out := Outcome{
		Results:    col.Summarize(idle, busy, s.cpus),
		Policy:     pol.Name(),
		CPUs:       s.cpus,
		PeakEvents: sys.PeakEvents(),
		Controller: ctrl,
	}
	if s.keepCollector {
		out.Collector = col
	}
	return out, nil
}

// ExecutePair runs the scenario and its no-DVFS baseline on the same
// machine size, returning (policy, baseline). Normalized energies in the
// paper are always relative to such baselines.
func (s *Scenario) ExecutePair() (Outcome, Outcome, error) {
	withPolicy, err := s.Execute()
	if err != nil {
		return Outcome{}, Outcome{}, err
	}
	baseline, err := s.WithBaseline().Execute()
	if err != nil {
		return Outcome{}, Outcome{}, err
	}
	return withPolicy, baseline, nil
}

// positiveOrDefault resolves an optional positive parameter: nil selects
// def, a set value must be a positive finite number — an explicit zero is
// an error, never silently the default.
func positiveOrDefault(v *float64, def float64, field string) (float64, error) {
	if v == nil {
		return def, nil
	}
	if *v <= 0 || math.IsInf(*v, 0) || math.IsNaN(*v) {
		return 0, fmt.Errorf("scenario: %s must be a positive finite number, got %v (omit the field for the default %g)", field, *v, def)
	}
	return *v, nil
}
