package scenario

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/wgen"
	"repro/internal/workload"
)

func ctcSpec() Spec {
	return Spec{
		Workload: "CTC", Jobs: 400,
		Policy: PolicyConfig{BSLDThr: 2, WQThr: 4},
	}
}

func compile(t *testing.T, spec Spec) *Scenario {
	t.Helper()
	sc, err := Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return sc
}

func wantErr(t *testing.T, spec Spec, substr string) {
	t.Helper()
	_, err := Compile(spec)
	if err == nil {
		t.Fatalf("Compile accepted a spec that should fail with %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestCompileValidation(t *testing.T) {
	zero, neg := 0.0, -1.5
	tr := &workload.Trace{Name: "t", CPUs: 8, Jobs: []*workload.Job{{ID: 1, Procs: 1, Runtime: 10, ReqTime: 10}}}

	wantErr(t, Spec{}, "no workload input")
	wantErr(t, Spec{Workload: "CTC", Trace: tr}, "Workload and Trace all set")

	s := ctcSpec()
	s.Beta = &zero
	wantErr(t, s, "Beta must be a positive finite number")
	s = ctcSpec()
	s.Beta = &neg
	wantErr(t, s, "Beta")
	s = ctcSpec()
	s.ShortJobTh = &zero
	wantErr(t, s, "ShortJobTh must be a positive finite number")

	s = ctcSpec()
	s.Reservations = -1
	wantErr(t, s, "negative reservation depth")
	s = ctcSpec()
	s.SizeFactor = -0.5
	wantErr(t, s, "non-positive size factor")
	s = ctcSpec()
	s.Variant = "roundrobin"
	wantErr(t, s, "roundrobin")
	s = ctcSpec()
	s.Selection = "worstfit"
	wantErr(t, s, "worstfit")
	s = ctcSpec()
	s.Order = "lifo"
	wantErr(t, s, "lifo")
	s = ctcSpec()
	s.Policy.WQThr = -3
	wantErr(t, s, "WQThreshold")
	wantErr(t, Spec{Workload: "NoSuchPreset"}, "unknown workload")
}

func TestHashDeterminismAndSensitivity(t *testing.T) {
	base := compile(t, ctcSpec())
	if again := compile(t, ctcSpec()); again.Hash() != base.Hash() {
		t.Fatalf("same spec hashed differently: %s vs %s", base.Hash(), again.Hash())
	}

	// Result-relevant knobs must move the hash.
	mutations := map[string]func(*Spec){
		"policy":     func(s *Spec) { s.Policy.BSLDThr = 3 },
		"wq":         func(s *Spec) { s.Policy.WQThr = 16 },
		"baseline":   func(s *Spec) { s.Policy = PolicyConfig{} },
		"jobs":       func(s *Spec) { s.Jobs = 500 },
		"workload":   func(s *Spec) { s.Workload = "SDSC" },
		"sizefactor": func(s *Spec) { s.SizeFactor = 1.2 },
		"cpus":       func(s *Spec) { s.CPUs = 99 },
		"variant":    func(s *Spec) { s.Variant = "fcfs" },
		"selection":  func(s *Spec) { s.Selection = "contiguous" },
		"order":      func(s *Spec) { s.Order = "sjf" },
		"resv":       func(s *Spec) { s.Reservations = 4 },
		"beta":       func(s *Spec) { b := 0.3; s.Beta = &b },
		"shortth":    func(s *Spec) { th := 120.0; s.ShortJobTh = &th },
	}
	seen := map[string]string{base.Hash(): "base"}
	for name, mutate := range mutations {
		s := ctcSpec()
		mutate(&s)
		h := compile(t, s).Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutation %q collides with %q: hash %s", name, prev, h)
		}
		seen[h] = name
	}

	// Result-neutral observation knobs must NOT move the hash.
	for name, mutate := range map[string]func(*Spec){
		"keepcollector": func(s *Spec) { s.KeepCollector = true },
		"materialize":   func(s *Spec) { s.Materialize = true },
		"compat":        func(s *Spec) { s.Compat = sched.Compat{ScanRemoval: true} },
	} {
		s := ctcSpec()
		mutate(&s)
		if h := compile(t, s).Hash(); h != base.Hash() {
			t.Errorf("result-neutral knob %q moved the hash", name)
		}
	}

	// Explicit defaults hash like omitted ones: β=0.5 set explicitly is the
	// same scenario as β=nil.
	s := ctcSpec()
	b := DefaultBeta
	s.Beta = &b
	if h := compile(t, s).Hash(); h != base.Hash() {
		t.Errorf("explicit default Beta moved the hash")
	}
}

func TestCompilerSharesArenas(t *testing.T) {
	var c Compiler
	spec := ctcSpec()
	spec.Materialize = true
	a := mustCompile(t, &c, spec)
	spec.Policy.BSLDThr = 3 // different policy, same workload
	b := mustCompile(t, &c, spec)
	if a.trace == nil || a.trace != b.trace {
		t.Fatalf("two compilations over one workload did not share the trace arena")
	}

	// Streaming presets share the prototype: every minted source is an
	// independent cursor, but compilation does the summing passes once.
	spec.Materialize = false
	s1 := mustCompile(t, &c, spec)
	src1, err := s1.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	src2, err := s1.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	if src1 == src2 {
		t.Fatalf("factory-backed scenario handed out the same cursor twice")
	}
}

func mustCompile(t *testing.T, c *Compiler, spec Spec) *Scenario {
	t.Helper()
	sc, err := c.Compile(spec)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return sc
}

func TestConcurrentCompileResolvesWorkloadOnce(t *testing.T) {
	var c Compiler
	spec := ctcSpec()
	spec.Materialize = true
	const n = 8
	scs := make([]*Scenario, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc, err := c.Compile(spec)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			scs[i] = sc
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < n; i++ {
		if scs[i].Hash() != scs[0].Hash() {
			t.Fatalf("goroutine %d hash %s != %s", i, scs[i].Hash(), scs[0].Hash())
		}
		if scs[i].trace != scs[0].trace {
			t.Fatalf("goroutine %d got a different trace arena", i)
		}
	}
}

// TestSharedScenarioConcurrentExecute is the refactor's core guarantee:
// N goroutines executing one compiled scenario concurrently (run under
// -race in CI) produce bit-identical results, for both the materialized
// arena path and the cloned-RNG streaming path.
func TestSharedScenarioConcurrentExecute(t *testing.T) {
	for _, materialize := range []bool{true, false} {
		name := "stream"
		if materialize {
			name = "materialized"
		}
		t.Run(name, func(t *testing.T) {
			spec := ctcSpec()
			spec.Materialize = materialize
			sc := compile(t, spec)
			if !sc.ConcurrentSafe() {
				t.Fatalf("compiled scenario not concurrent-safe")
			}
			const n = 8
			outs := make([]Outcome, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					out, err := sc.Execute()
					if err != nil {
						t.Errorf("goroutine %d: %v", i, err)
						return
					}
					outs[i] = out
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			for i := 1; i < n; i++ {
				if outs[i].Results != outs[0].Results {
					t.Fatalf("goroutine %d diverged:\n%+v\n%+v", i, outs[0].Results, outs[i].Results)
				}
			}
			if outs[0].Results.Jobs != 400 || outs[0].Results.AvgBSLD <= 0 {
				t.Fatalf("implausible results %+v", outs[0].Results)
			}
		})
	}
}

// TestMaterializedMatchesStreaming pins the bit-identity between the
// shared-arena and cloned-cursor workload paths.
func TestMaterializedMatchesStreaming(t *testing.T) {
	stream := compile(t, ctcSpec())
	spec := ctcSpec()
	spec.Materialize = true
	arena := compile(t, spec)
	if stream.Hash() != arena.Hash() {
		t.Fatalf("materialize moved the hash: %s vs %s", stream.Hash(), arena.Hash())
	}
	a, err := stream.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := arena.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if a.Results != b.Results {
		t.Fatalf("streaming and materialized runs diverged:\n%+v\n%+v", a.Results, b.Results)
	}
}

func TestWithBaseline(t *testing.T) {
	sc := compile(t, ctcSpec())
	base := sc.WithBaseline()
	if !base.Baseline() || sc.Baseline() {
		t.Fatalf("Baseline flags wrong: derived=%v original=%v", base.Baseline(), sc.Baseline())
	}
	if base.Hash() == sc.Hash() {
		t.Fatalf("baseline hash equals policy hash")
	}
	if base.WithBaseline() != base {
		t.Fatalf("WithBaseline on a baseline should return the receiver")
	}
	if base.CPUs() != sc.CPUs() || base.Workload() != sc.Workload() {
		t.Fatalf("baseline changed machine or workload")
	}
	out, baseOut, err := sc.ExecutePair()
	if err != nil {
		t.Fatal(err)
	}
	if out.Results.CompEnergy >= baseOut.Results.CompEnergy {
		t.Fatalf("DVFS energy %g not below baseline %g",
			out.Results.CompEnergy, baseOut.Results.CompEnergy)
	}
}

// boundPolicy is a stateful policy-cum-controller without a clone seam.
type boundPolicy struct{ sched.FixedGear }

func (boundPolicy) Bind(*sched.System) {}

func (boundPolicy) ControlPass(*sched.System, float64) {}

// clonablePolicy adds the seam, counting how often it is exercised.
type clonablePolicy struct {
	boundPolicy
	clones *int
}

func (p clonablePolicy) ClonePolicy() sched.GearPolicy {
	*p.clones++
	return p.boundPolicy
}

func TestConcurrentSafety(t *testing.T) {
	// The factory/trace paths are safe by construction.
	if sc := compile(t, ctcSpec()); !sc.ConcurrentSafe() {
		t.Error("named-workload scenario should be concurrent-safe")
	}

	// A shared single cursor is not.
	src, err := wgen.ResolveSource("CTC", 0, 200, workload.SWFFilter{})
	if err != nil {
		t.Fatal(err)
	}
	if sc := compile(t, Spec{Source: src}); sc.ConcurrentSafe() {
		t.Error("shared-cursor scenario must not be concurrent-safe")
	}

	// Shared recorders are not.
	s := ctcSpec()
	s.ExtraRecorders = []sched.Recorder{sched.MultiRecorder{}}
	if sc := compile(t, s); sc.ConcurrentSafe() {
		t.Error("extra-recorder scenario must not be concurrent-safe")
	}

	// A controller-implementing policy without PolicyCloner shares
	// mutable state.
	s = ctcSpec()
	s.GearPolicy = boundPolicy{}
	if sc := compile(t, s); sc.ConcurrentSafe() {
		t.Error("bound policy without a clone seam must not be concurrent-safe")
	}

	// With the seam it is safe again, and each execution gets its own clone.
	clones := 0
	s = ctcSpec()
	s.GearPolicy = clonablePolicy{clones: &clones}
	sc := compile(t, s)
	if !sc.ConcurrentSafe() {
		t.Error("clonable bound policy should be concurrent-safe")
	}
	sc.executionPolicy()
	sc.executionPolicy()
	if clones != 2 {
		t.Errorf("executionPolicy exercised the clone seam %d times, want 2", clones)
	}
}
