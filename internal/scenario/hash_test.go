package scenario

import (
	"reflect"
	"testing"
)

// TestHashCoverageMatchesSpec is the reflection-based runtime complement
// of reprovet's hashcover analyzer: every Spec field must be declared in
// exactly one of the coverage maps, every declared name must be a real
// field, and every allowlist entry must carry its justification. The
// analyzer proves the same facts syntactically (plus that the carriers
// are read by contentHash); this keeps the contract visible even when
// only this package's tests run.
func TestHashCoverageMatchesSpec(t *testing.T) {
	hashed, neutral := HashCoverage()
	st := reflect.TypeOf(Spec{})
	fields := map[string]bool{}
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		fields[name] = true
		_, h := hashed[name]
		_, n := neutral[name]
		if h == n {
			t.Errorf("Spec.%s: declared hashed=%v result-neutral=%v; must be exactly one", name, h, n)
		}
	}
	for name := range hashed {
		if !fields[name] {
			t.Errorf("hashedVia entry %q names no Spec field", name)
		}
	}
	for name, just := range neutral {
		if !fields[name] {
			t.Errorf("hashNeutral entry %q names no Spec field", name)
		}
		if just == "" {
			t.Errorf("hashNeutral entry %q carries no justification", name)
		}
	}
}
