// Package antest is a miniature analysistest for the reprovet suite: it
// runs one analyzer over a fixture package under testdata/src and matches
// the diagnostics against `// want` comments in the fixture sources:
//
//	x := rand.Int() // want `uses the process-global random source`
//
// A want comment carries one or more quoted or backquoted Go string
// literals; each is a regexp that must match one diagnostic reported on
// that line. Diagnostics without a matching want, and wants no diagnostic
// matched, fail the test — so fixtures pin both that bad patterns are
// flagged and that allowed patterns stay silent.
package antest

import (
	"regexp"
	"strconv"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var (
	once   sync.Once
	shared *analysis.Loader
)

// Loader returns the process-wide fixture loader. Sharing one loader
// across tests shares its FileSet and export-data index, so every fixture
// after the first type-checks without re-running `go list`.
func Loader() *analysis.Loader {
	once.Do(func() { shared = analysis.NewLoader() })
	return shared
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var (
	wantRe = regexp.MustCompile(`^//\s*want\s+(.+)$`)
	litRe  = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// Run loads dir as a package with import path asPath, applies the one
// analyzer, and checks its diagnostics against the fixture's want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := Loader().LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matched `%s`", w.file, w.line, a.Name, w.re)
		}
	}
}

// collectWants parses every want comment of the fixture package.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lits := litRe.FindAllString(m[1], -1)
				if len(lits) == 0 {
					t.Fatalf("%s:%d: want comment carries no string literal", pos.Filename, pos.Line)
				}
				for _, lit := range lits {
					s, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, s, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches its message.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
