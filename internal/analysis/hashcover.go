package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// HashCover enforces the scenario-hash coverage contract: the canonical
// SHA-256 content hash (internal/scenario/hash.go) is the cache and
// sharding key of cmd/schedd, so a scenario.Spec field the hash silently
// ignores poisons every key derived from it. The package must declare,
// next to contentHash, two maps:
//
//	var hashedVia   = map[string]string{...} // Spec field → Scenario field carrying it into the hash
//	var hashNeutral = map[string]string{...} // Spec field → why it provably cannot change Results
//
// and the analyzer fails unless (a) every Spec field appears in exactly
// one of them, (b) every key names a real Spec field (no stale entries
// surviving a rename), and (c) every Scenario field named by hashedVia
// is actually read by contentHash. Adding a Spec field without deciding
// its hash status is therefore a build error, caught by the driver test
// under plain `go test ./...`.
//
// The analyzer anchors on any package named "scenario" declaring a Spec
// struct, so its own fixtures exercise the same code path as the real
// repro/internal/scenario package.
var HashCover = &Analyzer{
	Name: "hashcover",
	Doc:  "every scenario.Spec field must be hashed or explicitly allowlisted as result-neutral",
	Run:  runHashCover,
}

func runHashCover(pass *Pass) error {
	if pass.Pkg.Name() != "scenario" {
		return nil
	}
	spec := findStruct(pass, "Spec")
	if spec == nil {
		return nil // not a scenario package in the sense of this contract
	}

	// The declaration maps. Their absence is the first finding: the
	// contract cannot be verified without them.
	hashed, hashedEntries := mapLiteral(pass, "hashedVia")
	neutral, neutralEntries := mapLiteral(pass, "hashNeutral")
	if hashedEntries == nil && neutralEntries == nil {
		pass.Reportf(spec.pos,
			"package scenario declares no hashedVia/hashNeutral coverage maps next to contentHash; hashcover cannot verify that every Spec field has a decided hash status")
		return nil
	}

	// (a) every Spec field is declared exactly once.
	fields := specFields(spec.typ)
	fieldSet := map[string]bool{}
	for _, f := range fields {
		fieldSet[f.name] = true
		inHashed := hashed[f.name] != ""
		_, inNeutral := neutral[f.name]
		switch {
		case inHashed && inNeutral:
			pass.Reportf(f.pos,
				"scenario.Spec field %s is declared both hashed (hashedVia) and result-neutral (hashNeutral); it must be exactly one", f.name)
		case !inHashed && !inNeutral:
			pass.Reportf(f.pos,
				"scenario.Spec field %s is neither folded into the canonical hash (hashedVia) nor in the documented result-neutral allowlist (hashNeutral): decide its hash status — see the coverage comment block in hash.go", f.name)
		}
	}

	// (b) no stale declaration entries.
	for name, pos := range hashedEntries {
		if !fieldSet[name] {
			pass.Reportf(pos, "hashedVia entry %q names no scenario.Spec field (stale after a rename?)", name)
		}
	}
	for name, pos := range neutralEntries {
		if !fieldSet[name] {
			pass.Reportf(pos, "hashNeutral entry %q names no scenario.Spec field (stale after a rename?)", name)
		}
	}
	for name, pos := range neutralEntries {
		if just, ok := neutral[name]; ok && just == "" {
			pass.Reportf(pos, "hashNeutral entry %q carries no justification; record why the field provably cannot change Results", name)
		}
	}

	// (c) every carrier field hashedVia names is actually written into
	// the hash by contentHash.
	carriers := contentHashReads(pass)
	if carriers == nil {
		pass.Reportf(spec.pos, "package scenario declares hash coverage maps but no contentHash method to check them against")
		return nil
	}
	reported := map[string]bool{}
	for field, carrier := range hashed {
		if !carriers[carrier] && !reported[field] {
			reported[field] = true
			pass.Reportf(hashedEntries[field],
				"hashedVia says Spec.%s flows into the hash through Scenario field %q, but contentHash never reads s.%s", field, carrier, carrier)
		}
	}
	return nil
}

// structDecl is a located struct type declaration.
type structDecl struct {
	typ *ast.StructType
	pos token.Pos
}

// specField is one named field of the Spec struct.
type specField struct {
	name string
	pos  token.Pos
}

// findStruct locates a top-level struct type declaration by name.
func findStruct(pass *Pass, name string) *structDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return &structDecl{typ: st, pos: ts.Pos()}
				}
			}
		}
	}
	return nil
}

// specFields lists the named fields of the struct. Every field is
// checked regardless of JSON visibility: the json:"-" escape hatches
// (pre-resolved objects, compat modes) decide results just as much as
// the wire-format fields and need a declared hash status too.
func specFields(st *ast.StructType) []specField {
	var out []specField
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			out = append(out, specField{name: n.Name, pos: n.Pos()})
		}
	}
	return out
}

// mapLiteral reads a package-level `var name = map[string]string{...}`
// declaration, returning key→value and key→position. Both are nil when
// the variable is missing or not a literal map.
func mapLiteral(pass *Pass, name string) (map[string]string, map[string]token.Pos) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					vals := map[string]string{}
					poss := map[string]token.Pos{}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						k, ok1 := stringLit(kv.Key)
						v, ok2 := stringLit(kv.Value)
						if !ok1 || !ok2 {
							continue
						}
						vals[k] = v
						poss[k] = kv.Pos()
					}
					return vals, poss
				}
			}
		}
	}
	return nil, nil
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	return s, err == nil
}

// contentHashReads returns the set of Scenario fields the contentHash
// method reads (every selector on a Scenario-typed expression in its
// body), or nil when no contentHash method exists.
func contentHashReads(pass *Pass) map[string]bool {
	scenObj := pass.Pkg.Scope().Lookup("Scenario")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "contentHash" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			reads := map[string]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				t := pass.Info.TypeOf(sel.X)
				if t == nil || scenObj == nil {
					return true
				}
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if types.Identical(t, scenObj.Type()) {
					reads[sel.Sel.Name] = true
				}
				return true
			})
			return reads
		}
	}
	return nil
}
