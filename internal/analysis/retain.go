package analysis

import (
	"go/ast"
	"go/types"
)

// Retain enforces the RunState pooling contract (internal/sched pools
// run states and recycles them once JobFinished returns): lifecycle
// observers — implementations of sched.Recorder or sched.GearObserver —
// must not store a pooled *sched.RunState, or pooled memory reachable
// from one (rs.Phases, rs.Alloc.Runs, &rs.Alloc, ...), into a struct
// field, map or slice element, or package-level variable. Storing
// rs.Job is allowed: jobs live in the workload arena, not the pool.
// Package-level stores of *sched.RunState are flagged in every function
// of every package, observer or not.
//
// A store that is provably released again before the pool recycles the
// run state (e.g. tracked between JobStarted and JobFinished and deleted
// in the latter) can be waived with //lint:retain <justification>.
var Retain = &Analyzer{
	Name: "retain",
	Doc:  "recorders must not retain pooled *sched.RunState past their callbacks",
	Run:  runRetain,
}

const schedPath = "repro/internal/sched"

func runRetain(pass *Pass) error {
	schedPkg := findPackage(pass.Pkg, schedPath)
	if schedPkg == nil {
		return nil // the package cannot even name a RunState
	}
	rsObj := schedPkg.Scope().Lookup("RunState")
	if rsObj == nil {
		return nil
	}
	ptrRS := types.NewPointer(rsObj.Type())
	recorder := lookupInterface(schedPkg, "Recorder")
	gearObs := lookupInterface(schedPkg, "GearObserver")

	var jobPtr types.Type
	if wl := findPackage(pass.Pkg, "repro/internal/workload"); wl != nil {
		if job := wl.Scope().Lookup("Job"); job != nil {
			jobPtr = types.NewPointer(job.Type())
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			observer := false
			if fn.Recv != nil && len(fn.Recv.List) == 1 {
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
						t := recv.Type()
						observer = implementsEither(t, recorder) || implementsEither(t, gearObs)
					}
				}
			}
			checkRetainStores(pass, fn.Body, observer, ptrRS, jobPtr)
		}
	}
	return nil
}

// checkRetainStores flags assignments that store retentive values into
// escaping destinations. Inside observer methods any field, element or
// package-variable store escapes; elsewhere only package-variable stores
// are checked (an arbitrary consumer may own RunState storage — the
// scheduler itself does — but a global store outlives every run).
func checkRetainStores(pass *Pass, body ast.Node, observer bool, ptrRS types.Type, jobPtr types.Type) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			// A single multi-value RHS is a call or comma-ok expression:
			// its results are fresh values, never a pooled pointer the
			// callee still owns that we could alias here.
			return true
		}
		for i, lhs := range as.Lhs {
			kind, escaping := retainDest(pass, lhs, observer)
			if !escaping {
				continue
			}
			for _, bad := range retentiveExprs(pass, as.Rhs[i], ptrRS, jobPtr) {
				what := "pooled *sched.RunState"
				if !types.Identical(pass.Info.TypeOf(bad), ptrRS) {
					what = "pooled memory reachable from a *sched.RunState"
				}
				pass.Reportf(bad.Pos(),
					"stores %s into %s: the scheduler recycles run states after JobFinished; copy the data (or key by rs.Job.ID) instead",
					what, kind)
			}
		}
		return true
	})
}

// retainDest classifies an assignment destination. observer widens the
// escaping set from package variables to fields and elements.
func retainDest(pass *Pass, lhs ast.Expr, observer bool) (string, bool) {
	switch e := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "a struct field", observer
	case *ast.IndexExpr:
		return "a map or slice element", observer
	case *ast.StarExpr:
		return "shared memory through a pointer", observer
	case *ast.Ident:
		if obj, ok := pass.Info.ObjectOf(e).(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
			return "a package-level variable", true
		}
	}
	return "", false
}

// retentiveExprs walks a stored value and collects the sub-expressions
// that would retain pooled memory: any *sched.RunState, and any
// reference-typed (pointer/slice/map) selector chain rooted at one —
// except rs.Job, which outlives the pool. The walk prunes at calls
// (their results are fresh) other than append, whose arguments all flow
// into the stored slice (including the first: append may reuse its
// backing array).
func retentiveExprs(pass *Pass, rhs ast.Expr, ptrRS types.Type, jobPtr types.Type) []ast.Expr {
	var bad []ast.Expr
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false // closure capture is out of scope here
			case *ast.CallExpr:
				if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
					if obj, isBuiltin := pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin && obj != nil {
						for _, arg := range x.Args {
							walk(arg)
						}
					}
				}
				return false
			case ast.Expr:
				if isRetentive(pass, x, ptrRS, jobPtr) {
					bad = append(bad, x)
					return false // report the outermost retentive chain once
				}
				switch x.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr:
					// A non-retentive projection (rs.Start, a copied
					// rs.Alloc.Runs[i] element, ...) derives a fresh value;
					// its base never flows into the store, so descending
					// would false-positive on the bare rs underneath.
					return false
				}
			}
			return true
		})
	}
	walk(rhs)
	return bad
}

// isRetentive reports whether the expression's value aliases pooled
// RunState memory.
func isRetentive(pass *Pass, e ast.Expr, ptrRS types.Type, jobPtr types.Type) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if types.Identical(t, ptrRS) {
		return true
	}
	if jobPtr != nil && types.Identical(t, jobPtr) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
	default:
		return false
	}
	return rootedAtRunState(pass, e, ptrRS)
}

// rootedAtRunState reports whether e is a selector/index/slice/deref
// chain with a prefix of type *sched.RunState (rs.Phases, rs.Alloc.Runs,
// (&rs.Alloc), rs.Phases[1:], ...).
func rootedAtRunState(pass *Pass, e ast.Expr, ptrRS types.Type) bool {
	for {
		e = unparen(e)
		if t := pass.Info.TypeOf(e); t != nil && types.Identical(t, ptrRS) {
			return true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return false
		}
	}
}
