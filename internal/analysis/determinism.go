package analysis

import (
	"go/ast"
	"go/types"
)

// CorePackages is the deterministic core: every path through these
// packages must schedule byte-identically across runs, hosts and
// worker counts — the property the whole verification spine (compat
// modes, golden tables, differential suites) asserts. Determinism
// flags the constructs that silently break it.
var CorePackages = []string{
	"repro/internal/sched",
	"repro/internal/profile",
	"repro/internal/sim",
	"repro/internal/cluster",
	"repro/internal/scenario",
}

// Determinism forbids nondeterminism sources in the deterministic core
// (CorePackages, non-test code):
//
//   - iterating a map with the key or value observed (Go randomizes the
//     order; collect and sort instead),
//   - wall-clock time (time.Now and friends — simulated time comes from
//     the event clock),
//   - the process-global math/rand source (seed an explicit *rand.Rand;
//     rand.New/NewSource and *rand.Rand methods are fine),
//   - goroutine spawns (scheduling interleavings are nondeterministic;
//     parallelism belongs in the sweep/server layers above the core).
//
// A provably order-insensitive use can be waived with
// //lint:nondeterm <justification> on the flagged line or the line
// above; the justification is mandatory.
var Determinism = &Analyzer{
	Name:   "determinism",
	Escape: "nondeterm",
	Doc:    "the deterministic core must stay free of nondeterminism sources",
	Run:    runDeterminism,
}

// bannedTimeFuncs are the wall-clock entry points of package time.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// allowedRandFuncs are the math/rand package-level constructors that
// build explicitly-seeded generators rather than using the global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runDeterminism(pass *Pass) error {
	core := false
	for _, p := range CorePackages {
		if pass.Pkg.Path() == p {
			core = true
			break
		}
	}
	if !core {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(x.Pos(),
					"goroutine spawned in deterministic core package %s: interleavings are nondeterministic and break bit-identity; keep parallelism in the sweep/server layers", pass.Pkg.Path())
			case *ast.RangeStmt:
				checkMapRange(pass, x)
			case *ast.SelectorExpr:
				checkBannedSelector(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags map iterations that observe the key or value.
// `for range m` (counting) is deterministic and allowed.
func checkMapRange(pass *Pass, r *ast.RangeStmt) {
	t := pass.Info.TypeOf(r.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	observes := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		if id, ok := unparen(e).(*ast.Ident); ok && id.Name == "_" {
			return false
		}
		return true
	}
	if !observes(r.Key) && !observes(r.Value) {
		return
	}
	pass.Reportf(r.Pos(),
		"iterates map %s with the key or value observed: map order is nondeterministic and poisons results downstream; iterate a sorted copy of the keys", types.ExprString(r.X))
}

// checkBannedSelector flags package-level time/math-rand functions.
func checkBannedSelector(pass *Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on an explicitly seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"time.%s in deterministic core package %s: simulated time must come from the event clock, never the wall clock", fn.Name(), pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(),
				"%s.%s uses the process-global random source: seed an explicit *rand.Rand (rand.New(rand.NewSource(seed))) so runs replay identically", fn.Pkg().Path(), fn.Name())
		}
	}
}
