package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/antest"
)

func fixture(dir string) string {
	return filepath.Join("testdata", "src", dir)
}

func TestRetainFixture(t *testing.T) {
	antest.Run(t, analysis.Retain, fixture("retain"),
		"repro/internal/analysis/testdata/src/retain")
}

func TestHashCoverFixtures(t *testing.T) {
	// Every fixture poses as a different synthetic import path: hashcover
	// anchors on the package name and Spec struct, exactly like the real
	// repro/internal/scenario package.
	for _, dir := range []string{
		"hashcover_ok",
		"hashcover_missing",
		"hashcover_stale",
		"hashcover_undeclared",
	} {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			antest.Run(t, analysis.HashCover, fixture(dir), "fix/"+dir)
		})
	}
}

func TestDeterminismFixture(t *testing.T) {
	// Posing as a deterministic-core package, the fixture's wants fire.
	antest.Run(t, analysis.Determinism, fixture("determinism"), analysis.CorePackages[0])
}

func TestDeterminismIgnoresNonCorePackages(t *testing.T) {
	// The same nondeterministic code outside the core is out of scope:
	// parallelism and wall-clock time belong to the sweep/server layers.
	pkg, err := antest.Loader().LoadDir(fixture("determinism"), "repro/internal/experiments/fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.Determinism})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("determinism fired outside the core: %s", d)
	}
}

func TestSrcErrFixture(t *testing.T) {
	antest.Run(t, analysis.SrcErr, fixture("srcerr"),
		"repro/internal/analysis/testdata/src/srcerr")
}
