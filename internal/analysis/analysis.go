// Package analysis implements reprovet, the repo's custom static-analysis
// suite: compiler-grade checks for the correctness contracts that the
// runtime verification spine (compat modes, differential suites, golden
// tables) cannot see because they are conventions between packages, not
// behaviors of one run.
//
// Four analyzers (see All):
//
//   - retain: recorders must not retain pooled *sched.RunState values (or
//     slices reachable from them) past their lifecycle callbacks — the
//     scheduler recycles them after JobFinished.
//   - hashcover: every scenario.Spec field must have a declared hash
//     status in internal/scenario/hash.go — folded into the canonical
//     content hash or explicitly allowlisted as result-neutral.
//   - determinism: the deterministic core packages must stay free of
//     nondeterminism sources (map-order iteration, wall-clock time,
//     global math/rand, goroutine spawns).
//   - srcerr: workload.JobSource drain loops must check Err(), and error
//     results must not be discarded with a blank identifier.
//
// The suite runs three ways: `go test ./internal/analysis` (the clean-run
// driver test, so tier-1 catches violations), `go run ./cmd/reprovet ./...`
// (the CI gate, -json for machine-readable output), and per-analyzer
// fixture tests under testdata/src.
//
// A finding can be waived with an escape comment on the flagged line or
// the line directly above it:
//
//	//lint:<analyzer> <justification>
//
// The justification is mandatory: an escape without one does not suppress
// the finding and the diagnostic calls the omission out.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer/Pass/Reportf) but is built on the standard library
// only: packages load through `go list -export` and type-check against
// compiler export data, so the module needs no external dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	// Escape overrides the //lint:<name> escape-comment name when it
	// differs from the analyzer name (e.g. determinism waives findings
	// via //lint:nondeterm). Empty means Name.
	Escape string
	Run    func(*Pass) error
}

// escapeName is the //lint: directive name that waives this analyzer.
func (a *Analyzer) escapeName() string {
	if a.Escape != "" {
		return a.Escape
	}
	return a.Name
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
// The JSON form is the machine-readable output of `cmd/reprovet -json`.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one package: the parsed files,
// the type-checked package object and its expression/object tables.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	escapes map[string]map[int]*escape // file → line → escape comment
	diags   []Diagnostic
}

// escape is one //lint:<name> <justification> comment.
type escape struct {
	name string
	just string
}

var escapeRe = regexp.MustCompile(`^//lint:([a-z]+)(?:[ \t]+(.*))?$`)

// indexEscapes scans the package's comments for escape directives so
// Reportf can match findings against them by line.
func (p *Pass) indexEscapes() {
	p.escapes = make(map[string]map[int]*escape)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := escapeRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.escapes[pos.Filename]
				if lines == nil {
					lines = make(map[int]*escape)
					p.escapes[pos.Filename] = lines
				}
				lines[pos.Line] = &escape{name: m[1], just: strings.TrimSpace(m[2])}
			}
		}
	}
}

// escapeFor returns the escape directive governing a finding of this
// analyzer at the given position: on the same line or the line above.
func (p *Pass) escapeFor(pos token.Position) *escape {
	lines := p.escapes[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if e := lines[ln]; e != nil && e.name == p.Analyzer.escapeName() {
			return e
		}
	}
	return nil
}

// Reportf records a finding unless a justified escape comment waives it.
// An escape without a justification does not suppress: the finding is
// reported with the omission appended, so the justification requirement
// is itself machine-checked.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	msg := fmt.Sprintf(format, args...)
	if e := p.escapeFor(position); e != nil {
		if e.just != "" {
			return
		}
		msg += fmt.Sprintf(" (//lint:%s escape present but lacks the required justification)", p.Analyzer.escapeName())
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  msg,
	})
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.indexEscapes()
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full reprovet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Retain, HashCover, Determinism, SrcErr}
}

// unparen strips parentheses (ast.Unparen needs a newer toolchain than
// the module's go directive guarantees).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// findPackage locates an imported package by path in the import graph of
// pkg (including pkg itself), or nil if the package never reaches it.
func findPackage(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	seen := map[*types.Package]bool{pkg: true}
	queue := pkg.Imports()
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		queue = append(queue, p.Imports()...)
	}
	return nil
}

// lookupInterface resolves a named interface type from a package scope.
func lookupInterface(pkg *types.Package, name string) *types.Interface {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// implementsEither reports whether T or *T implements the interface.
func implementsEither(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}
