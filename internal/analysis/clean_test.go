package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/antest"
)

// TestRepoClean is the driver test wiring reprovet into plain
// `go test ./...`: every analyzer must report zero findings on the whole
// module. For retain and determinism this pins an all-clean state; for
// hashcover it re-proves the coverage declaration in
// internal/scenario/hash.go against the real Spec on every test run, so
// adding a Spec field without deciding its hash status fails tier-1, not
// just CI.
func TestRepoClean(t *testing.T) {
	pkgs, err := antest.Loader().Load("repro/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}

	// The pins below are only meaningful if the load actually covered the
	// packages each contract lives in.
	must := map[string]bool{"repro/internal/scenario": false, "repro/internal/experiments": false}
	for _, p := range analysis.CorePackages {
		must[p] = false
	}
	for _, pkg := range pkgs {
		if _, ok := must[pkg.Path]; ok {
			must[pkg.Path] = true
		}
	}
	for path, seen := range must {
		if !seen {
			t.Fatalf("load of repro/... missed %s; the clean-run pin would be vacuous", path)
		}
	}

	for _, a := range analysis.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		})
	}
}
