package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path (or the synthetic path of a fixture)
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Loader loads and type-checks packages without external dependencies:
// `go list -export` supplies compiler export data for every import, and
// only the packages under analysis are parsed from source. One Loader
// shares a FileSet, an importer cache and the export-data index across
// loads, so repeated fixture loads cost one `go list` in total.
type Loader struct {
	mu       sync.Mutex
	fset     *token.FileSet
	exports  map[string]string // import path → export data file
	meta     map[string]*listPkg
	imp      types.ImporterFrom
	pkgCache map[string]*Package
	dirCache map[string]*Package
}

// NewLoader returns an empty loader. Loaders are safe for concurrent use.
func NewLoader() *Loader {
	l := &Loader{
		fset:     token.NewFileSet(),
		exports:  make(map[string]string),
		meta:     make(map[string]*listPkg),
		pkgCache: make(map[string]*Package),
		dirCache: make(map[string]*Package),
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	l.imp = importer.ForCompiler(l.fset, "gc", lookup).(types.ImporterFrom)
	return l
}

// goList runs `go list -export -json -deps patterns...` and merges the
// results into the loader's metadata, returning this invocation's
// entries in output order.
func (l *Loader) goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-export",
		"-json=Dir,ImportPath,Export,Standard,DepOnly,GoFiles,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		listed = append(listed, &p)
		if prev, ok := l.meta[p.ImportPath]; ok {
			// A package can be a bare dependency in one invocation and a
			// target in a later one; a target entry always wins.
			if prev.DepOnly && !p.DepOnly {
				l.meta[p.ImportPath] = &p
			}
		} else {
			l.meta[p.ImportPath] = &p
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return listed, nil
}

// ensure guarantees export data is indexed for every given import path
// (and its dependencies), running `go list` only for the missing ones.
func (l *Loader) ensure(paths []string) error {
	var missing []string
	for _, p := range paths {
		if p == "unsafe" { // resolved internally by the gc importer
			continue
		}
		if _, ok := l.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	_, err := l.goList(missing)
	return err
}

// Load loads the packages matching the go-list patterns (testdata trees
// are excluded from wildcard patterns, as everywhere in the go tool) and
// type-checks each matched package from source.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := l.check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check type-checks one listed package from source, with caching.
func (l *Loader) check(p *listPkg) (*Package, error) {
	if pkg, ok := l.pkgCache[p.ImportPath]; ok {
		return pkg, nil
	}
	var paths []string
	for _, f := range p.GoFiles {
		paths = append(paths, filepath.Join(p.Dir, f))
	}
	pkg, err := l.typecheck(p.ImportPath, paths)
	if err != nil {
		return nil, err
	}
	l.pkgCache[p.ImportPath] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks all non-test .go files of one directory
// as a package with the given import path — the fixture loader:
// testdata packages are invisible to go-list wildcards, and asPath lets
// a fixture pose as any package (e.g. a deterministic-core path).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := dir + "\x00" + asPath
	if pkg, ok := l.dirCache[key]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	pkg, err := l.typecheck(asPath, paths)
	if err != nil {
		return nil, err
	}
	l.dirCache[key] = pkg
	return pkg, nil
}

// typecheck parses the files and type-checks them as one package,
// resolving imports from export data (fetched on demand).
func (l *Loader) typecheck(path string, filePaths []string) (*Package, error) {
	var files []*ast.File
	var imports []string
	for _, fp := range filePaths {
		f, err := parser.ParseFile(l.fset, fp, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports = append(imports, p)
			}
		}
	}
	if err := l.ensure(imports); err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
