// Package scenario (fixture) declares a Spec but no coverage maps at
// all: the contract cannot even be checked, which is itself the finding.
package scenario

// Spec has no hashedVia/hashNeutral declaration anywhere in the package.
type Spec struct { // want `package scenario declares no hashedVia/hashNeutral coverage maps next to contentHash`
	Workload string
}
