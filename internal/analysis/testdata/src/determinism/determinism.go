// Package detfix exercises the determinism analyzer. The fixture test
// loads it posing as a deterministic-core import path; a second load
// under a non-core path must produce no findings at all.
package detfix

import (
	"math/rand"
	"time"
)

func spawn(done chan struct{}) {
	go func() { // want `goroutine spawned in deterministic core package`
		done <- struct{}{}
	}()
}

func wallClock() time.Time {
	return time.Now() // want `simulated time must come from the event clock, never the wall clock`
}

func globalRand() int {
	return rand.Int() // want `math/rand\.Int uses the process-global random source`
}

func mapOrder(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `iterates map m with the key or value observed`
		sum += v
	}
	return sum
}

// Allowed patterns: none of the functions below may be flagged.

func count(m map[string]float64) int {
	n := 0
	for range m { // counting never observes the nondeterministic order
		n++
	}
	return n
}

func blanks(m map[string]float64) int {
	n := 0
	for _, _ = range m { // both positions blank: still order-blind
		n++
	}
	return n
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // explicit seeding is the fix, not a finding
	return r.Float64()                  // methods on a seeded *rand.Rand are fine
}

func elapsed(start, now time.Time) time.Duration {
	return now.Sub(start) // arithmetic on supplied times is fine; only the wall-clock entry points are banned
}

func waived(m map[int]bool) int {
	n := 0
	//lint:nondeterm counting set bits is order-insensitive
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

func badWaiver(m map[int]int) int {
	s := 0
	//lint:nondeterm
	for _, v := range m { // want `escape present but lacks the required justification`
		s += v
	}
	return s
}
