// Package scenario (fixture) adds Spec fields without deciding their
// hash status — the exact mistake hashcover exists to catch. Compat is
// in neither map (the canonical failure), Jobs is in both, and Keep's
// allowlist entry carries no justification.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Spec grew fields its coverage declaration never decided on.
type Spec struct {
	Workload string
	Jobs     int    // want `scenario\.Spec field Jobs is declared both hashed \(hashedVia\) and result-neutral \(hashNeutral\)`
	Compat   string // want `scenario\.Spec field Compat is neither folded into the canonical hash \(hashedVia\) nor in the documented result-neutral allowlist \(hashNeutral\)`
	Keep     bool
}

// Scenario is the compiled form.
type Scenario struct {
	wdesc string
}

func (s *Scenario) contentHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\n", s.wdesc)
	return hex.EncodeToString(h.Sum(nil))
}

var hashedVia = map[string]string{
	"Workload": "wdesc",
	"Jobs":     "wdesc",
}

var hashNeutral = map[string]string{
	"Jobs": "folded into the workload descriptor already",
	"Keep": "", // want `hashNeutral entry "Keep" carries no justification`
}
