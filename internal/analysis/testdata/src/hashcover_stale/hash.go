// Package scenario (fixture) carries a coverage declaration that rotted:
// entries naming renamed-away Spec fields, and a carrier contentHash
// stopped reading.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Spec lost its Renamed field; the maps kept it.
type Spec struct {
	Workload string
	CPUs     int
}

// Scenario is the compiled form; cpus is declared but never hashed.
type Scenario struct {
	wdesc string
	cpus  int
}

func (s *Scenario) contentHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\n", s.wdesc)
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Scenario) size() int { return s.cpus }

var hashedVia = map[string]string{
	"Workload": "wdesc",
	"CPUs":     "cpus",  // want `hashedVia says Spec\.CPUs flows into the hash through Scenario field "cpus", but contentHash never reads s\.cpus`
	"Renamed":  "wdesc", // want `hashedVia entry "Renamed" names no scenario\.Spec field`
}

var hashNeutral = map[string]string{
	"Gone": "a justification for a field that no longer exists", // want `hashNeutral entry "Gone" names no scenario\.Spec field`
}
