// Package scenario (fixture) satisfies the hashcover contract: every
// Spec field is declared exactly once, no stale entries, every carrier
// read by contentHash. The analyzer must stay silent.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Spec mirrors the real scenario.Spec shape at miniature scale.
type Spec struct {
	Workload string
	CPUs     int
	Keep     bool
}

// Scenario is the compiled form.
type Scenario struct {
	wdesc string
	cpus  int
}

func (s *Scenario) contentHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s\ncpus=%d\n", s.wdesc, s.cpus)
	return hex.EncodeToString(h.Sum(nil))
}

var hashedVia = map[string]string{
	"Workload": "wdesc",
	"CPUs":     "cpus",
}

var hashNeutral = map[string]string{
	"Keep": "retained records fold online bit-identically",
}
