// Package srcfix exercises the srcerr analyzer: blank-discarded errors
// and Err()-less JobSource drain loops are flagged; comma-ok booleans,
// checked drains, combinator methods and justified escapes are not.
package srcfix

import (
	"strconv"

	"repro/internal/workload"
)

func doWork() error { return nil }

func swallowDirect() {
	_ = doWork() // want `error result discarded with the blank identifier`
}

func swallowTuple() int {
	n, _ := strconv.Atoi("7") // want `error result discarded with the blank identifier`
	return n
}

func handled() (int, error) {
	n, err := strconv.Atoi("7")
	if err != nil {
		return 0, err
	}
	return n, nil
}

func commaOK(m map[string]int) int {
	v, _ := m["k"] // the blank slot is a bool, not an error
	return v
}

func waivedDiscard() {
	//lint:srcerr best-effort cleanup; failure cannot change any result
	_ = doWork()
}

// drainNoErr pulls the source dry without ever consulting Err(): a
// failed stream truncates the workload silently.
func drainNoErr(src workload.JobSource) int {
	n := 0
	for { // want `loop drains a workload\.JobSource but the function never checks Err\(\)`
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	return n
}

// drainChecked consults Err after the loop — the contract the analyzer
// enforces.
func drainChecked(src workload.JobSource) (int, error) {
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	return n, src.Err()
}

// counter wraps another source; as a JobSource itself it propagates the
// inner error through its own Err by contract, so its drain loop is
// exempt.
type counter struct {
	src workload.JobSource
	n   int
}

func (c *counter) Name() string { return c.src.Name() }
func (c *counter) CPUs() int    { return c.src.CPUs() }
func (c *counter) Next() (workload.Job, bool) {
	j, ok := c.src.Next()
	if ok {
		c.n++
	}
	return j, ok
}
func (c *counter) Reset() error { return c.src.Reset() }
func (c *counter) Err() error   { return c.src.Err() }

func (c *counter) drainAll() {
	for {
		if _, ok := c.src.Next(); !ok {
			return
		}
	}
}
