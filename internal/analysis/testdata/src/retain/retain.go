// Package retainfix exercises the retain analyzer: lifecycle observers
// storing pooled RunState memory are flagged; copies, rs.Job stores and
// justified escapes are not.
package retainfix

import (
	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/workload"
)

// leakySink retains pooled memory from its callbacks; every store below
// is a finding.
type leakySink struct {
	last    *sched.RunState
	byJob   map[int]*sched.RunState
	runs    []cluster.Run
	history []*sched.RunState
}

func (s *leakySink) JobStarted(rs *sched.RunState, now float64) {
	s.last = rs             // want `stores pooled \*sched\.RunState into a struct field`
	s.byJob[rs.Job.ID] = rs // want `stores pooled \*sched\.RunState into a map or slice element`
}

func (s *leakySink) JobFinished(rs *sched.RunState, now float64) {
	s.runs = rs.Alloc.Runs            // want `stores pooled memory reachable from a \*sched\.RunState into a struct field`
	s.history = append(s.history, rs) // want `stores pooled \*sched\.RunState into a struct field`
}

// lastState is a package-level store: flagged in every function of every
// package, observer or not — a global outlives every run.
var lastState *sched.RunState

func stash(rs *sched.RunState) {
	lastState = rs // want `stores pooled \*sched\.RunState into a package-level variable`
}

// goodSink copies what it needs out of the pooled state; nothing below
// is flagged.
type goodSink struct {
	firstSubmit float64
	jobs        map[int]*workload.Job
	phases      []sched.Phase
	procs       int
}

func (s *goodSink) JobStarted(rs *sched.RunState, now float64) {
	s.firstSubmit = rs.Job.Submit // a copied float: projections derive fresh values
	s.jobs[rs.Job.ID] = rs.Job    // jobs live in the workload arena, not the pool
	s.procs = rs.Alloc.Count()    // call results are fresh
}

func (s *goodSink) JobFinished(rs *sched.RunState, now float64) {
	//lint:retain append copies the Phase values out of the pooled backing array
	s.phases = append(s.phases, rs.Phases...)
}

// localUse keeps rs in locals only — out of scope for the analyzer.
func localUse(rs *sched.RunState) float64 {
	held := rs
	return held.Start
}
