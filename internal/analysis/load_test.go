package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/antest"
)

func TestLoadTypechecksFromExportData(t *testing.T) {
	pkgs, err := antest.Loader().Load("repro/internal/scenario")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Name != "scenario" || pkg.Path != "repro/internal/scenario" {
		t.Fatalf("got %s (%s)", pkg.Path, pkg.Name)
	}
	if pkg.Types.Scope().Lookup("Spec") == nil {
		t.Error("type-checked scenario package lacks Spec in its scope")
	}
	if len(pkg.Info.Defs) == 0 || len(pkg.Info.Uses) == 0 {
		t.Error("type info tables are empty; analyzers would be blind")
	}
	// Imports must resolve through export data, not be faked as empty.
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "repro/internal/sched" && imp.Scope().Lookup("RunState") != nil {
			found = true
		}
	}
	if !found {
		t.Error("scenario's sched import carries no RunState; export data did not load")
	}
}

func TestLoadDirRejectsMissingDirectory(t *testing.T) {
	_, err := antest.Loader().LoadDir("testdata/src/no_such_fixture", "fix/none")
	if err == nil {
		t.Fatal("want an error for a missing fixture directory")
	}
}

func TestLoadReportsBrokenPatterns(t *testing.T) {
	_, err := analysis.NewLoader().Load("./no/such/package")
	if err == nil || !strings.Contains(err.Error(), "go list") {
		t.Fatalf("want a go list error, got %v", err)
	}
}
