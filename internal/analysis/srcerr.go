package analysis

import (
	"go/ast"
	"go/types"
)

// SrcErr enforces the streaming-error contract: a workload.JobSource
// signals failure out of band (Next returns false, the cause waits in
// Err()), so a drain loop that never asks Err() silently truncates the
// workload on a failed stream — the bug class PR 4 converted panics
// into. Two checks, both non-test code only:
//
//   - a for/range loop pulling src.Next() inside a function that never
//     calls Err() on any JobSource is flagged, unless the function is
//     itself a method of a JobSource implementation (combinators
//     propagate the inner error through their own Err by contract);
//   - an error result discarded with a blank identifier (`_ = f()`,
//     `v, _ := g()` where the blank slot is an error) is flagged —
//     comma-ok booleans are not errors and stay allowed.
//
// A deliberate discard can be waived with //lint:srcerr <justification>.
var SrcErr = &Analyzer{
	Name: "srcerr",
	Doc:  "JobSource drain loops must check Err(); error results must not be blank-discarded",
	Run:  runSrcErr,
}

const workloadPath = "repro/internal/workload"

func runSrcErr(pass *Pass) error {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var jobSource *types.Interface
	if wl := findPackage(pass.Pkg, workloadPath); wl != nil {
		jobSource = lookupInterface(wl, "JobSource")
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBlankErrors(pass, fn.Body, errIface)
			if jobSource != nil {
				checkDrainLoops(pass, fn, jobSource)
			}
		}
	}
	return nil
}

// checkBlankErrors flags error values assigned to the blank identifier.
func checkBlankErrors(pass *Pass, body ast.Node, errIface *types.Interface) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || id.Name != "_" {
				continue
			}
			t := blankSlotType(pass, as, i)
			if t == nil {
				continue
			}
			if !types.Implements(t, errIface) {
				continue
			}
			pass.Reportf(id.Pos(),
				"error result discarded with the blank identifier: handle or propagate it (a swallowed error here reports success on a failed run)")
		}
		return true
	})
}

// blankSlotType resolves the type of assignment slot i: direct for an
// N:N assignment, the i-th tuple element for a single multi-value RHS
// (calls and comma-ok expressions both record a tuple).
func blankSlotType(pass *Pass, as *ast.AssignStmt, i int) types.Type {
	if len(as.Lhs) == len(as.Rhs) {
		return pass.Info.TypeOf(as.Rhs[i])
	}
	if len(as.Rhs) != 1 {
		return nil
	}
	tup, ok := pass.Info.TypeOf(as.Rhs[0]).(*types.Tuple)
	if !ok || i >= tup.Len() {
		return nil
	}
	return tup.At(i).Type()
}

// checkDrainLoops flags loops that pull from a JobSource inside a
// function that never consults Err().
func checkDrainLoops(pass *Pass, fn *ast.FuncDecl, jobSource *types.Interface) {
	// Combinators: a JobSource wrapping another propagates the inner
	// error through its own Err() by contract; its Next() drain loop is
	// not a silent truncation.
	if fn.Recv != nil {
		if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				if implementsEither(recv.Type(), jobSource) {
					return
				}
			}
		}
	}
	sourceCall := func(n ast.Node, method string) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return false
		}
		t := pass.Info.TypeOf(sel.X)
		return t != nil && implementsEither(t, jobSource)
	}
	errChecked := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sourceCall(n, "Err") {
			errChecked = true
		}
		return !errChecked
	})
	if errChecked {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		drains := false
		ast.Inspect(body, func(m ast.Node) bool {
			if sourceCall(m, "Next") {
				drains = true
			}
			return !drains
		})
		if drains {
			pass.Reportf(n.Pos(),
				"loop drains a workload.JobSource but the function never checks Err(): a failed stream truncates the workload silently; check src.Err() after the loop")
			return false // one report per outermost draining loop
		}
		return true
	})
}
