package nodepower

import (
	"repro/internal/dvfs"
	"repro/internal/sched"
)

// Meter is the online power accumulator of the controller layer: it
// maintains the cluster's instantaneous draw and the running energy
// integral with an O(1) update per lifecycle event (job start, job
// finish, gear switch) — no scan of the run list, ever. Controllers
// query it each pass (Draw, Advance); the post-hoc Tracker.Evaluate
// replay stays as the differentially-tested reference for the same
// integrals.
//
// The model matches the metrics collector's: a busy processor draws
// pm.Active(gear) of the job occupying it, an idle one pm.Idle().
// Energy accrues in two buckets — active (execution) and idle — from
// t=0 through the last event observed (Advance pushes the integration
// frontier without changing state).
//
// Meter implements sched.Recorder and sched.GearObserver; attach it
// through sched.MultiRecorder or feed it from a controller's own
// lifecycle callbacks.
type Meter struct {
	pm    *dvfs.PowerModel
	total int

	busy       int     // busy processors right now
	drawActive float64 // Σ over running jobs of procs·Active(gear)
	lastT      float64 // integration frontier
	activeE    float64 // active-state energy through lastT
	idleE      float64 // idle-state energy through lastT
}

var (
	_ sched.Recorder     = (*Meter)(nil)
	_ sched.GearObserver = (*Meter)(nil)
)

// NewMeter returns a meter for a machine of total processors under the
// given power model.
func NewMeter(total int, pm *dvfs.PowerModel) *Meter {
	return &Meter{pm: pm, total: total}
}

// Advance integrates the current draw forward to now. Events arriving
// at earlier timestamps than the frontier are a caller error; same-time
// events integrate zero and are fine.
func (m *Meter) Advance(now float64) {
	if now <= m.lastT {
		return
	}
	dt := now - m.lastT
	m.activeE += m.drawActive * dt
	m.idleE += float64(m.total-m.busy) * m.pm.Idle() * dt
	m.lastT = now
}

// JobStarted implements sched.Recorder: integrate to now, then add the
// job's processors at its start gear to the draw.
func (m *Meter) JobStarted(rs *sched.RunState, now float64) {
	m.Advance(now)
	m.busy += rs.Job.Procs
	m.drawActive += float64(rs.Job.Procs) * m.pm.Active(rs.Gear)
}

// JobFinished implements sched.Recorder.
func (m *Meter) JobFinished(rs *sched.RunState, now float64) {
	m.Advance(now)
	m.busy -= rs.Job.Procs
	m.drawActive -= float64(rs.Job.Procs) * m.pm.Active(rs.Gear)
}

// JobRegeared implements sched.GearObserver: swap the job's draw from
// the old gear to the new one.
func (m *Meter) JobRegeared(rs *sched.RunState, old dvfs.Gear, now float64) {
	m.Advance(now)
	m.drawActive += float64(rs.Job.Procs) * (m.pm.Active(rs.Gear) - m.pm.Active(old))
}

// Draw is the instantaneous cluster draw: the running jobs at their
// current gears plus the idle floor of the unoccupied processors.
func (m *Meter) Draw() float64 {
	return m.drawActive + float64(m.total-m.busy)*m.pm.Idle()
}

// ActiveDraw is the running jobs' share of Draw.
func (m *Meter) ActiveDraw() float64 { return m.drawActive }

// BusyCPUs is the number of processors currently executing jobs.
func (m *Meter) BusyCPUs() int { return m.busy }

// Total is the machine size the meter was built for.
func (m *Meter) Total() int { return m.total }

// ActiveEnergy is the execution energy integrated through the frontier.
func (m *Meter) ActiveEnergy() float64 { return m.activeE }

// IdleEnergy is the idle-state energy integrated through the frontier
// (every unoccupied processor charged pm.Idle(), no power-down).
func (m *Meter) IdleEnergy() float64 { return m.idleE }

// Frontier is the time the energy integrals are valid through.
func (m *Meter) Frontier() float64 { return m.lastT }
