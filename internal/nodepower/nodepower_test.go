package nodepower

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// defaultBeta mirrors scenario.DefaultBeta; importing it (or runner)
// from an in-package test would close an import cycle now that the
// scenario compiler builds on altpolicy and nodepower.
const defaultBeta = 0.5

func record(t *Tracker, ids []int, procs, start, end float64) {
	rs := &sched.RunState{
		Job:   &workload.Job{ID: 1, Procs: int(procs)},
		Alloc: cluster.AllocOf(ids...),
	}
	t.JobStarted(rs, start)
	t.JobFinished(rs, end)
}

// Regression for the open-interval bug: a job still running at the last
// observed event used to be left open in the busy table, so its whole
// execution was charged as an idle gap. Evaluate must treat the
// processor as busy through the window end instead.
func TestEvaluateClosesOpenIntervalsAtWindowEnd(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	tr := NewTracker(2)
	// Processor 0: a normal job [0, 10), then idle to the end.
	record(tr, []int{0}, 1, 0, 10)
	// Processor 1: starts at 20 and NEVER finishes; the last event of the
	// run is processor 0's completion... then the started-but-unfinished
	// job pushes t.end to 20 via its JobStarted callback.
	open := &sched.RunState{
		Job:   &workload.Job{ID: 2, Procs: 1},
		Alloc: cluster.AllocOf(1),
	}
	tr.JobStarted(open, 20)

	// Busy accounting must include the open interval through the end.
	if got, want := tr.BusyCPUSeconds(), 10.0; got != want {
		t.Errorf("BusyCPUSeconds = %v, want %v (open interval is zero-length at end=20)", got, want)
	}

	rep, err := tr.Evaluate(Policy{IdleOffDelay: 1e9}, pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Idle time: proc 0 idles [10, 20) final; proc 1 idles [0, 20) before
	// its open interval — and nothing after 20, because it is busy at the
	// window end. The seed implementation charged proc 1 nothing before
	// 20 (no closed spans) and instead idled it over the whole window.
	wantIdle := (20.0 - 10.0) + 20.0
	if got := rep.IdleCPUSeconds; math.Abs(got-wantIdle) > 1e-9 {
		t.Errorf("IdleCPUSeconds = %v, want %v", got, wantIdle)
	}

	// With a longer run the open interval accrues busy time too.
	record(tr, []int{0}, 1, 30, 40) // pushes end to 40
	if got, want := tr.BusyCPUSeconds(), 10.0+10.0+(40.0-20.0); got != want {
		t.Errorf("BusyCPUSeconds = %v, want %v (open interval [20,40])", got, want)
	}
	rep, err = tr.Evaluate(Policy{IdleOffDelay: 1e9}, pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Proc 0: [10,30) idle plus nothing after 40 (final gap zero-length);
	// proc 1: [0,20) idle, busy through the end.
	wantIdle = 20.0 + 20.0
	if got := rep.IdleCPUSeconds; math.Abs(got-wantIdle) > 1e-9 {
		t.Errorf("after second job: IdleCPUSeconds = %v, want %v", got, wantIdle)
	}
}

func TestIdleGapsSingleProcessor(t *testing.T) {
	tr := NewTracker(1)
	record(tr, []int{0}, 1, 10, 20)
	record(tr, []int{0}, 1, 50, 60)
	gaps := tr.idleGaps(0, 0)
	want := []gap{{0, 10, false}, {20, 50, false}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %+v", gaps)
	}
	for i, g := range want {
		if gaps[i] != g {
			t.Errorf("gap %d = %+v, want %+v", i, gaps[i], g)
		}
	}
}

func TestIdleGapsTrailing(t *testing.T) {
	tr := NewTracker(2)
	record(tr, []int{0}, 1, 0, 10)
	record(tr, []int{1}, 1, 0, 100)
	gaps := tr.idleGaps(0, 0)
	// Processor 0 idles from 10 to the last event (100), final gap.
	if len(gaps) != 1 || gaps[0] != (gap{10, 100, true}) {
		t.Errorf("gaps = %+v", gaps)
	}
}

func TestEvaluateShortGapStaysOn(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	tr := NewTracker(1)
	record(tr, []int{0}, 1, 0, 10)
	record(tr, []int{0}, 1, 40, 50)
	rep, err := tr.Evaluate(Policy{IdleOffDelay: 60, WakeEnergySeconds: 100}, pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The 30 s gap is below the delay: full idle power, no shutdown.
	if rep.Shutdowns != 0 {
		t.Errorf("shutdowns = %d, want 0", rep.Shutdowns)
	}
	if math.Abs(rep.IdleEnergy-30*pm.Idle()) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", rep.IdleEnergy, 30*pm.Idle())
	}
}

func TestEvaluateLongGapPowersDown(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	tr := NewTracker(1)
	record(tr, []int{0}, 1, 0, 10)
	record(tr, []int{0}, 1, 1000, 1100)
	pol := Policy{IdleOffDelay: 90, WakeEnergySeconds: 100}
	rep, err := tr.Evaluate(pol, pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shutdowns != 1 {
		t.Fatalf("shutdowns = %d, want 1", rep.Shutdowns)
	}
	// Gap [10,1000): 90 s on at idle power, 900 s off (free), one wake.
	wantIdle := 90 * pm.Idle()
	wantWake := 100 * pm.Active(pm.Gears.Top())
	if math.Abs(rep.IdleEnergy-wantIdle) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", rep.IdleEnergy, wantIdle)
	}
	if math.Abs(rep.WakeEnergy-wantWake) > 1e-9 {
		t.Errorf("wake energy = %v, want %v", rep.WakeEnergy, wantWake)
	}
	if rep.OffEnergy != 0 {
		t.Errorf("off energy = %v, want 0 at OffPowerFraction 0", rep.OffEnergy)
	}
	if math.Abs(rep.OffCPUSeconds-900) > 1e-9 {
		t.Errorf("off seconds = %v, want 900", rep.OffCPUSeconds)
	}
}

func TestEvaluateFinalGapNoWakeCharge(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	tr := NewTracker(2)
	record(tr, []int{0}, 1, 0, 10)
	record(tr, []int{1}, 1, 0, 5000)
	rep, err := tr.Evaluate(Policy{IdleOffDelay: 60}, pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Processor 0's only gap is final: shutdown but no wake energy.
	if rep.Shutdowns != 1 || rep.WakeEnergy != 0 {
		t.Errorf("shutdowns=%d wake=%v, want 1 and 0", rep.Shutdowns, rep.WakeEnergy)
	}
}

func TestEvaluateResidualOffPower(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	tr := NewTracker(1)
	record(tr, []int{0}, 1, 0, 10)
	record(tr, []int{0}, 1, 1010, 1020)
	rep, err := tr.Evaluate(Policy{IdleOffDelay: 0, OffPowerFraction: 0.1}, pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 * pm.Idle() * 0.1
	if math.Abs(rep.OffEnergy-want) > 1e-9 {
		t.Errorf("off energy = %v, want %v", rep.OffEnergy, want)
	}
}

func TestEvaluateRejectsBadPolicy(t *testing.T) {
	tr := NewTracker(1)
	pm := dvfs.PaperPowerModel()
	bad := []Policy{
		{IdleOffDelay: -1},
		{WakeEnergySeconds: -1},
		{OffPowerFraction: 2},
	}
	for i, p := range bad {
		if _, err := tr.Evaluate(p, pm, 0); err == nil {
			t.Errorf("policy %d accepted", i)
		}
	}
}

// Integration: tracking a real simulation reproduces the cluster's busy
// integral exactly, and power-down always saves idle-side energy compared
// to always-on idle power.
func TestTrackerAgainstRealSimulation(t *testing.T) {
	m := wgen.CTC()
	m.Jobs = 400
	trace, err := wgen.Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	pm := dvfs.PaperPowerModel()
	gears := pm.Gears
	tracker := NewTracker(m.CPUs)
	sys, err := sched.New(sched.Config{
		CPUs: m.CPUs, Gears: gears,
		TimeModel: dvfs.NewTimeModel(defaultBeta, gears),
		Policy:    sched.FixedGear{Gear: gears.Top()},
		Variant:   sched.EASY,
		Recorder:  tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Simulate(trace); err != nil {
		t.Fatal(err)
	}
	end := tracker.end
	busyCluster := sys.Cluster().BusyCPUSeconds(end)
	if math.Abs(tracker.BusyCPUSeconds()-busyCluster) > 1e-6*busyCluster {
		t.Errorf("tracker busy %v != cluster busy %v", tracker.BusyCPUSeconds(), busyCluster)
	}
	windowStart := trace.Jobs[0].Submit
	alwaysOnIdle := sys.Cluster().IdleCPUSeconds(windowStart, end) * pm.Idle()
	rep, err := tracker.Evaluate(DefaultPolicy(), pm, windowStart)
	if err != nil {
		t.Fatal(err)
	}
	// Idle+off seconds must partition the always-on idle time.
	if got := rep.IdleCPUSeconds + rep.OffCPUSeconds; math.Abs(got-alwaysOnIdle/pm.Idle()) > 1e-6*got {
		t.Errorf("idle partition %v != %v", got, alwaysOnIdle/pm.Idle())
	}
	if rep.TotalIdleSideEnergy() >= alwaysOnIdle {
		t.Errorf("power-down energy %v not below always-on %v",
			rep.TotalIdleSideEnergy(), alwaysOnIdle)
	}
}

// Property-style: for any delay, the idle+off partition conserves total
// idle time and energies stay non-negative.
func TestEvaluateConservation(t *testing.T) {
	m := wgen.SDSCBlue()
	m.Jobs = 200
	trace, _ := wgen.Generate(m)
	pm := dvfs.PaperPowerModel()
	tracker := NewTracker(m.CPUs)
	sys, _ := sched.New(sched.Config{
		CPUs: m.CPUs, Gears: pm.Gears,
		TimeModel: dvfs.NewTimeModel(defaultBeta, pm.Gears),
		Policy:    sched.FixedGear{Gear: pm.Gears.Top()},
		Variant:   sched.EASY,
		Recorder:  tracker,
	})
	if err := sys.Simulate(trace); err != nil {
		t.Fatal(err)
	}
	var prevTotal float64
	first := true
	for _, delay := range []float64{0, 30, 300, 3000, 1e9} {
		rep, err := tracker.Evaluate(Policy{IdleOffDelay: delay, WakeEnergySeconds: 50}, pm, trace.Jobs[0].Submit)
		if err != nil {
			t.Fatal(err)
		}
		if rep.IdleEnergy < 0 || rep.OffEnergy < 0 || rep.WakeEnergy < 0 {
			t.Fatalf("negative energy at delay %v: %+v", delay, rep)
		}
		total := rep.IdleCPUSeconds + rep.OffCPUSeconds
		if first {
			prevTotal = total
			first = false
		}
		if math.Abs(total-prevTotal) > 1e-6*prevTotal {
			t.Errorf("idle partition changed with delay %v: %v vs %v", delay, total, prevTotal)
		}
	}
}
