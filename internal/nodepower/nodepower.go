// Package nodepower implements the energy-management baseline the paper's
// related work discusses (Lawson & Smirni, ICS'05; Pinheiro et al.;
// Hikita et al.): powering down idle nodes instead of — or in addition to
// — scaling frequency. It tracks per-processor occupancy from the
// scheduler's lifecycle callbacks and evaluates, after the run, how much
// energy a shutdown policy with a given idle timeout and wake cost would
// have used.
//
// The evaluation is accounting-only: shutdowns do not delay jobs in the
// schedule itself. With First Fit packing (jobs take the lowest-numbered
// free processors) high-numbered processors accumulate the long idle
// stretches, which is exactly the packing argument of Hikita et al. for
// making power-down effective. The resulting figure is the energy a
// perfectly predictive power-down controller would reach — an optimistic
// bound documented as such.
package nodepower

import (
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/sched"
)

// Tracker records per-processor busy intervals during a simulation. It
// implements sched.Recorder; attach it (for instance through
// sched.MultiRecorder) alongside the metrics collector.
//
// State is held in processor-indexed slices fed directly by the
// allocation's run-length intervals — the seed implementation kept
// map[int]float64 / map[int][]span tables, paying a hash per processor
// per job on the recording hot path.
type Tracker struct {
	total     int
	busyOpen  []bool    // processor -> a busy interval is open
	busyStart []float64 // processor -> open interval's start time
	spans     [][]span  // processor -> closed busy intervals
	end       float64   // last observed event time

	// meter, when attached (NewMeteredTracker), maintains the online
	// draw/energy accumulator alongside the interval record, fed from
	// the same callbacks.
	meter *Meter
}

type span struct{ start, end float64 }

// NewTracker returns a tracker for a machine of total processors.
func NewTracker(total int) *Tracker {
	return &Tracker{
		total:     total,
		busyOpen:  make([]bool, total),
		busyStart: make([]float64, total),
		spans:     make([][]span, total),
	}
}

var (
	_ sched.Recorder     = (*Tracker)(nil)
	_ sched.GearObserver = (*Tracker)(nil)
)

// NewMeteredTracker returns a tracker with an online Meter attached:
// the interval record for post-hoc Evaluate and the O(1) draw/energy
// accumulator are fed from the same lifecycle callbacks, which is what
// lets the differential test pin one against the other.
func NewMeteredTracker(total int, pm *dvfs.PowerModel) *Tracker {
	t := NewTracker(total)
	t.meter = NewMeter(total, pm)
	return t
}

// Meter returns the attached online accumulator, nil for a plain
// Tracker.
func (t *Tracker) Meter() *Meter { return t.meter }

// JobStarted implements sched.Recorder.
func (t *Tracker) JobStarted(rs *sched.RunState, now float64) {
	if t.meter != nil {
		t.meter.JobStarted(rs, now)
	}
	for _, r := range rs.Alloc.Runs {
		for id := r.Lo; id <= r.Hi; id++ {
			t.busyOpen[id] = true
			t.busyStart[id] = now
		}
	}
	if now > t.end {
		t.end = now
	}
}

// JobFinished implements sched.Recorder.
func (t *Tracker) JobFinished(rs *sched.RunState, now float64) {
	if t.meter != nil {
		t.meter.JobFinished(rs, now)
	}
	for _, r := range rs.Alloc.Runs {
		for id := r.Lo; id <= r.Hi; id++ {
			if t.busyOpen[id] {
				t.spans[id] = append(t.spans[id], span{t.busyStart[id], now})
				t.busyOpen[id] = false
			}
		}
	}
	if now > t.end {
		t.end = now
	}
}

// JobRegeared implements sched.GearObserver: occupancy intervals are
// gear-agnostic, so the event only feeds the attached meter's draw
// bookkeeping.
func (t *Tracker) JobRegeared(rs *sched.RunState, old dvfs.Gear, now float64) {
	if t.meter != nil {
		t.meter.JobRegeared(rs, old, now)
	}
}

// Policy parameterizes the shutdown controller.
type Policy struct {
	// IdleOffDelay is how long a processor stays idle before it powers
	// down. Pinheiro et al. report ~45 s to shut down and ~100 s to
	// bring a node back; a delay around that scale avoids thrashing.
	IdleOffDelay float64
	// WakeEnergySeconds charges each power-up transition the energy of
	// this many seconds at full active power (boot/restore cost).
	WakeEnergySeconds float64
	// OffPowerFraction is the residual power of a powered-down node as a
	// fraction of idle power (0 = perfectly off).
	OffPowerFraction float64
}

// DefaultPolicy mirrors the latencies reported by Pinheiro et al.
func DefaultPolicy() Policy {
	return Policy{IdleOffDelay: 60, WakeEnergySeconds: 100, OffPowerFraction: 0}
}

// Validate reports the first problem with the policy.
func (p Policy) Validate() error {
	switch {
	case p.IdleOffDelay < 0:
		return fmt.Errorf("nodepower: negative IdleOffDelay %v", p.IdleOffDelay)
	case p.WakeEnergySeconds < 0:
		return fmt.Errorf("nodepower: negative WakeEnergySeconds %v", p.WakeEnergySeconds)
	case p.OffPowerFraction < 0 || p.OffPowerFraction > 1:
		return fmt.Errorf("nodepower: OffPowerFraction %v out of [0,1]", p.OffPowerFraction)
	}
	return nil
}

// Report is the outcome of evaluating a shutdown policy over a run.
type Report struct {
	IdleEnergy     float64 // idle-state energy actually charged
	OffEnergy      float64 // residual energy while powered down
	WakeEnergy     float64 // transition energy
	Shutdowns      int     // number of power-down transitions
	OffCPUSeconds  float64 // processor-seconds spent powered down
	IdleCPUSeconds float64 // processor-seconds idle but powered on
}

// TotalIdleSideEnergy is everything the policy charges outside job
// execution (compare against P_idle × idle-seconds without power-down).
func (r Report) TotalIdleSideEnergy() float64 {
	return r.IdleEnergy + r.OffEnergy + r.WakeEnergy
}

// Evaluate replays each processor's idle gaps under the policy, from the
// window start (first event or 0) through the last completion. pm supplies
// idle and active power levels. A processor still busy at the end of the
// observation window (its job never finished before the last event) is
// treated as busy through the window end: its open interval is closed at
// t.end, so no idle energy is charged for time it was in fact computing.
func (t *Tracker) Evaluate(p Policy, pm *dvfs.PowerModel, windowStart float64) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	idleP := pm.Idle()
	activeP := pm.Active(pm.Gears.Top())
	var rep Report
	for id := 0; id < t.total; id++ {
		gaps := t.idleGaps(id, windowStart)
		for _, g := range gaps {
			dur := g.end - g.start
			if dur <= 0 {
				continue
			}
			if dur <= p.IdleOffDelay {
				rep.IdleEnergy += dur * idleP
				rep.IdleCPUSeconds += dur
				continue
			}
			// Powered on while waiting out the delay, then off until the
			// gap closes, then a wake transition (charged only when a job
			// follows — the final gap of the run never wakes).
			rep.IdleEnergy += p.IdleOffDelay * idleP
			rep.IdleCPUSeconds += p.IdleOffDelay
			off := dur - p.IdleOffDelay
			rep.OffEnergy += off * idleP * p.OffPowerFraction
			rep.OffCPUSeconds += off
			rep.Shutdowns++
			if !g.final {
				rep.WakeEnergy += p.WakeEnergySeconds * activeP
			}
		}
	}
	return rep, nil
}

type gap struct {
	start, end float64
	final      bool
}

// idleGaps returns the idle intervals of one processor over the window.
// An interval still open at the end of the run counts as busy through the
// window end, so it produces no trailing idle gap.
func (t *Tracker) idleGaps(id int, windowStart float64) []gap {
	spans := t.spans[id]
	var gaps []gap
	cursor := windowStart
	for _, s := range spans {
		if s.start > cursor {
			gaps = append(gaps, gap{start: cursor, end: s.start})
		}
		if s.end > cursor {
			cursor = s.end
		}
	}
	if t.busyOpen[id] {
		// The open interval closes at the window end; any gap before it
		// started is an ordinary (non-final) idle stretch.
		if s := t.busyStart[id]; s > cursor {
			gaps = append(gaps, gap{start: cursor, end: s})
		}
		return gaps
	}
	if t.end > cursor {
		gaps = append(gaps, gap{start: cursor, end: t.end, final: true})
	}
	return gaps
}

// BusyCPUSeconds returns the tracked busy processor-seconds, open
// intervals counted through the window end (for validation against the
// cluster's own integral).
func (t *Tracker) BusyCPUSeconds() float64 {
	sum := 0.0
	for _, spans := range t.spans {
		for _, s := range spans {
			sum += s.end - s.start
		}
	}
	for id, open := range t.busyOpen {
		if open && t.end > t.busyStart[id] {
			sum += t.end - t.busyStart[id]
		}
	}
	return sum
}
