package nodepower

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// The meter's O(1) accumulators must integrate to exactly what the
// post-hoc Evaluate replay reports. Random lifecycle schedules — starts,
// finishes, gear switches, and jobs left running at the window end (the
// still-open-interval edge fixed in PR 3) — are fed to a metered
// tracker; the meter's idle energy is then compared against Evaluate
// with an infinite power-down delay (pure idle-power accounting), its
// busy bookkeeping against the tracker's interval record, and its
// active energy against a test-side replay of the same event sequence.
// Tolerances are float tolerances, not bitwise: the two sides sum the
// same terms in different orders.
func TestMeterMatchesEvaluateRandomized(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	gears := pm.Gears
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		total := 8 + rng.Intn(24)
		tr := NewMeteredTracker(total, pm)
		m := tr.Meter()

		type liveJob struct {
			rs      *sched.RunState
			gearIdx int
		}
		var free []int
		for i := 0; i < total; i++ {
			free = append(free, i)
		}
		var live []*liveJob
		now, lastT := 0.0, 0.0
		wantActive := 0.0
		id := 0
		advance := func(to float64) {
			draw := 0.0
			for _, l := range live {
				draw += float64(l.rs.Job.Procs) * pm.Active(gears[l.gearIdx])
			}
			wantActive += draw * (to - lastT)
			lastT = to
		}
		start := func(at float64) {
			procs := 1 + rng.Intn(3)
			if procs > len(free) {
				procs = len(free)
			}
			ids := append([]int(nil), free[:procs]...)
			free = free[procs:]
			id++
			gi := rng.Intn(len(gears))
			rs := &sched.RunState{
				Job:   &workload.Job{ID: id, Procs: procs},
				Gear:  gears[gi],
				Alloc: cluster.AllocOf(ids...),
			}
			advance(at)
			tr.JobStarted(rs, at)
			live = append(live, &liveJob{rs: rs, gearIdx: gi})
		}
		for ev := 0; ev < 400; ev++ {
			now += rng.Float64() * 25
			switch op := rng.Intn(3); {
			case op == 0 && len(free) > 0:
				start(now)
			case op == 1 && len(live) > 0:
				k := rng.Intn(len(live))
				l := live[k]
				advance(now)
				tr.JobFinished(l.rs, now)
				for _, r := range l.rs.Alloc.Runs {
					for p := r.Lo; p <= r.Hi; p++ {
						free = append(free, p)
					}
				}
				live = append(live[:k], live[k+1:]...)
			case op == 2 && len(live) > 0:
				k := rng.Intn(len(live))
				l := live[k]
				advance(now) // integrate the old gear up to the switch first
				old := gears[l.gearIdx]
				l.gearIdx = rng.Intn(len(gears))
				l.rs.Gear = gears[l.gearIdx]
				tr.JobRegeared(l.rs, old, now)
			}
		}
		// Final event: a start that pushes the tracker's window end and is
		// never finished, so the run ends with open intervals — the meter
		// and the replay must both treat them as busy through the end.
		now += 1 + rng.Float64()
		if len(free) == 0 {
			l := live[0]
			advance(now)
			tr.JobFinished(l.rs, now)
			for _, r := range l.rs.Alloc.Runs {
				for p := r.Lo; p <= r.Hi; p++ {
					free = append(free, p)
				}
			}
			live = live[1:]
		}
		start(now)

		if got, want := m.Frontier(), now; got != want {
			t.Fatalf("seed %d: meter frontier %v, want %v", seed, got, want)
		}
		busy := 0
		for _, l := range live {
			busy += l.rs.Job.Procs
		}
		if m.BusyCPUs() != busy {
			t.Fatalf("seed %d: meter busy %d, want %d", seed, m.BusyCPUs(), busy)
		}

		// Idle energy: Evaluate with an infinite delay charges every idle
		// gap at idle power and nothing else — the post-hoc form of the
		// meter's (total − busy)·P_idle·dt accumulation over [0, end].
		rep, err := tr.Evaluate(Policy{IdleOffDelay: math.MaxFloat64}, pm, 0)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-9 * (1 + rep.IdleEnergy)
		if diff := math.Abs(m.IdleEnergy() - rep.IdleEnergy); diff > tol {
			t.Errorf("seed %d: meter idle energy %v, Evaluate %v (diff %g)",
				seed, m.IdleEnergy(), rep.IdleEnergy, diff)
		}
		// Busy seconds cross-check the same window bookkeeping.
		wantBusySec := tr.BusyCPUSeconds()
		gotBusySec := (float64(total)*now - (m.IdleEnergy() / pm.Idle()))
		if diff := math.Abs(gotBusySec - wantBusySec); diff > 1e-9*(1+wantBusySec) {
			t.Errorf("seed %d: meter-implied busy %v, tracker %v", seed, gotBusySec, wantBusySec)
		}
		// Active energy against the replayed integral.
		if diff := math.Abs(m.ActiveEnergy() - wantActive); diff > 1e-9*(1+wantActive) {
			t.Errorf("seed %d: meter active energy %v, replay %v", seed, m.ActiveEnergy(), wantActive)
		}
		// Draw is the instantaneous decomposition of the same state.
		wantDraw := float64(total-busy) * pm.Idle()
		for _, l := range live {
			wantDraw += float64(l.rs.Job.Procs) * pm.Active(gears[l.gearIdx])
		}
		if diff := math.Abs(m.Draw() - wantDraw); diff > 1e-9*(1+wantDraw) {
			t.Errorf("seed %d: draw %v, want %v", seed, m.Draw(), wantDraw)
		}
	}
}

// A metered tracker riding a real simulation (with mid-run gear
// switches) must agree with the post-hoc replay of its own record.
func TestMeterOnRealSimulation(t *testing.T) {
	pm := dvfs.PaperPowerModel()
	gears := pm.Gears
	tr := NewMeteredTracker(16, pm)
	sys, err := sched.New(sched.Config{
		CPUs: 16, Gears: gears,
		TimeModel:  dvfs.NewTimeModel(defaultBeta, gears),
		Policy:     sched.FixedGear{Gear: gears.Lowest()},
		Variant:    sched.EASY,
		Recorder:   tr,
		Controller: boostAll{gears: gears},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := &workload.Trace{Name: "m", CPUs: 16}
	rng := rand.New(rand.NewSource(3))
	sub := 0.0
	for i := 1; i <= 300; i++ {
		sub += rng.Float64() * 40
		trace.Jobs = append(trace.Jobs, &workload.Job{
			ID: i, Submit: sub, Runtime: 50 + rng.Float64()*900,
			Procs: 1 + rng.Intn(8), ReqTime: 1200, Beta: -1,
		})
	}
	if err := sys.Simulate(trace); err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Evaluate(Policy{IdleOffDelay: math.MaxFloat64}, pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Meter()
	if diff := math.Abs(m.IdleEnergy() - rep.IdleEnergy); diff > 1e-9*(1+rep.IdleEnergy) {
		t.Errorf("meter idle energy %v, Evaluate %v", m.IdleEnergy(), rep.IdleEnergy)
	}
	if m.ActiveEnergy() <= 0 {
		t.Error("no active energy metered")
	}
	// The active-draw accumulator returns to zero modulo float dust from
	// the +=/−= round trips, so the drained machine sits at the idle
	// floor within tolerance.
	if m.BusyCPUs() != 0 || math.Abs(m.Draw()-16*pm.Idle()) > 1e-6 {
		t.Errorf("drained machine still drawing: busy=%d draw=%v", m.BusyCPUs(), m.Draw())
	}
}

// boostAll raises every running job to the top gear whenever anything
// waits, so the real-simulation differential exercises JobRegeared.
type boostAll struct{ gears dvfs.GearSet }

func (b boostAll) Name() string           { return "boost-all" }
func (b boostAll) Bind(sys *sched.System) {}
func (b boostAll) ControlPass(sys *sched.System, now float64) {
	if sys.QueueLen() == 0 {
		return
	}
	for _, rs := range sys.Running() {
		sys.SetGear(rs, b.gears.Top(), now)
	}
}
