package nodepower

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// BenchmarkMeterEvents pins the O(1) cost of the online meter's event
// handlers — the per-start/finish/regear work every metered simulation
// pays. A regression to interval-walking accounting would show up as a
// jump proportional to the live-job count, which stays fixed here.
func BenchmarkMeterEvents(b *testing.B) {
	pm := dvfs.PaperPowerModel()
	tr := NewMeteredTracker(64, pm)
	gears := pm.Gears
	rs := &sched.RunState{
		Job:   &workload.Job{ID: 1, Procs: 4},
		Gear:  gears.Top(),
		Alloc: cluster.AllocOf(0, 1, 2, 3),
	}
	m := tr.Meter()
	b.ReportAllocs()
	now := 0.0
	for i := 0; i < b.N; i++ {
		now += 1
		tr.JobStarted(rs, now)
		now += 1
		old := rs.Gear
		rs.Gear = gears[len(gears)-1]
		tr.JobRegeared(rs, old, now)
		now += 1
		tr.JobFinished(rs, now)
		rs.Gear = gears.Top()
	}
	if m.Draw() < 0 {
		b.Fatal("negative draw")
	}
	b.ReportMetric(float64(3*b.N)/b.Elapsed().Seconds(), "events/s")
}
