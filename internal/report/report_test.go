package report

import (
	"bytes"
	"html/template"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/textplot"
)

func TestRenderEscapesAndStructure(t *testing.T) {
	tb := textplot.Table{
		Title:  "Table <1> & co",
		Header: []string{"a", "b"},
		Note:   `note with "quotes"`,
	}
	tb.AddRow("x<y", "1")
	d := Data{
		Jobs: 42,
		Checks: []experiments.Check{
			{Name: "claim <one>", Detail: "ok", Pass: true},
			{Name: "claim two", Detail: "bad", Pass: false},
		},
		Sections: []Section{{Table: tb}},
		Figures:  []Figure{{Name: "fig", SVG: template.HTML("<svg></svg>")}},
	}
	var buf bytes.Buffer
	if err := Render(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Table &lt;1&gt; &amp; co", // escaped title
		"x&lt;y",                   // escaped cell
		"claim &lt;one&gt;",        // escaped check
		`<span class="pass">`,
		`<span class="fail">`,
		"<svg></svg>", // figures inline unescaped
		"42-job",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "<y") && !strings.Contains(out, "x&lt;y") {
		t.Error("cell not escaped")
	}
}

func TestRenderDefaultTitle(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Data{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reproduction report") {
		t.Error("default title missing")
	}
}

func TestBuildFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report build in short mode")
	}
	s := experiments.NewSuite(500)
	d, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Checks) < 8 {
		t.Errorf("checks = %d", len(d.Checks))
	}
	if len(d.Sections) != 13 {
		t.Errorf("sections = %d, want 13", len(d.Sections))
	}
	if len(d.Figures) != 11 {
		t.Errorf("figures = %d, want 11", len(d.Figures))
	}
	var buf bytes.Buffer
	if err := Render(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Figure 9") {
		t.Error("report missing core artifacts")
	}
	if strings.Count(out, "<svg") != 11 {
		t.Errorf("inline svg count = %d", strings.Count(out, "<svg"))
	}
}
