package wgen

import (
	"math"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Source generates a model's trace lazily, one job per Next call, and is
// bit-identical to materializing the same model through Generate: the
// workload layer's streaming pipeline can replay a ten-million-job preset
// in O(running jobs) peak heap instead of holding the ~91 MB/1M-job slice.
//
// Generate fixes the arrival span from aggregate quantities (total demand,
// the sum of all gap weights, and — with a daily cycle — the cycle-adjusted
// gap sum) before it can place the first arrival. The stream recovers those
// aggregates without storing anything by replaying the deterministic RNG:
// construction runs one (or, with a daily cycle, two) summing passes over
// the seeded stream, and emission then re-draws each job with two RNG
// cursors — one positioned at the job-attribute section, one fast-forwarded
// to the gap section. The arithmetic per step is kept operation-for-
// operation identical to Generate's, so the floating point agrees exactly
// (TestStreamMatchesGenerate pins this for every preset). The price is a
// small constant factor of extra RNG work per generated job; the win is
// O(1) generator memory at any trace length.
type Source struct {
	m     Model // defaults applied
	shape float64

	// Aggregates fixed at construction.
	span       float64 // arrival span realizing the target load
	gapSum     float64 // Σ raw gamma gap weights
	cycleScale float64 // span / Σ cycle-adjusted gaps (daily cycle only)

	// Emission state, built lazily on the first Next after construction
	// or Reset: the gap-cursor fast-forward costs one attribute replay,
	// so it must not be spent on sources that are Reset before use (the
	// scheduler always rewinds a source it is handed).
	attrRNG  *stats.RNG // cursor over the job-attribute draws; nil = rewind pending
	gapRNG   *stats.RNG // cursor fast-forwarded to the gap draws
	drawUser func() int
	i        int
	t        float64 // pre-cycle submit accumulator
	submit   float64 // emitted submit accumulator (cycle path)
}

var (
	_ workload.JobSource = (*Source)(nil)
	_ workload.Counted   = (*Source)(nil)
)

// Stream returns a lazy generator for the model. Construction costs the
// RNG summing passes described on Source; each rewind (the first Next
// after construction or Reset) costs one more attribute replay to
// position the gap cursor.
func Stream(m Model) (*Source, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m = m.withDefaults()
	s := &Source{m: m, shape: 1 / (m.ArrivalCV * m.ArrivalCV)}

	// Pass 1: replay attribute draws accumulating demand, then the gap
	// draws accumulating their sum — the exact accumulation order of
	// Generate, so span and gapSum match bit for bit.
	rng := stats.NewRNG(m.Seed)
	drawUser := m.newUserDraw(rng)
	demand := 0.0 // CPU·seconds
	for i := 0; i < m.Jobs; i++ {
		j := m.drawJob(rng, drawUser, i+1)
		demand += float64(j.Procs) * j.Runtime
	}
	for i := 0; i < m.Jobs-1; i++ {
		s.gapSum += rng.Gamma(s.shape, 1)
	}
	s.span = demand / (float64(m.CPUs) * m.Load)

	if m.DailyCycle > 0 {
		// Pass 2: replay the gaps once more, accumulating the pre-cycle
		// submit times and the cycle-adjusted gap sum applyDailyCycle
		// derives from them.
		rng2 := stats.NewRNG(m.Seed)
		drawUser2 := m.newUserDraw(rng2)
		for i := 0; i < m.Jobs; i++ {
			m.drawJob(rng2, drawUser2, i+1)
		}
		t, cycleSum := 0.0, 0.0
		for i := 1; i < m.Jobs; i++ {
			gap := rng2.Gamma(s.shape, 1)
			tNew := t
			if s.gapSum > 0 {
				tNew = t + gap/s.gapSum*s.span
			}
			// applyDailyCycle recomputes the gap by subtracting adjacent
			// submits and rates it at the later one; mirror both exactly.
			delta := tNew - t
			rate := 1 + m.DailyCycle*math.Sin(2*math.Pi*tNew/86400)
			cycleSum += delta / rate
			t = tNew
		}
		if cycleSum > 0 {
			s.cycleScale = s.span / cycleSum
		}
	}

	return s, nil
}

// rewind (re)builds the emission cursors.
func (s *Source) rewind() {
	s.attrRNG = stats.NewRNG(s.m.Seed)
	s.drawUser = s.m.newUserDraw(s.attrRNG)
	// The gap cursor replays the attribute section to reach the gap draws.
	s.gapRNG = stats.NewRNG(s.m.Seed)
	skipUser := s.m.newUserDraw(s.gapRNG)
	for i := 0; i < s.m.Jobs; i++ {
		s.m.drawJob(s.gapRNG, skipUser, i+1)
	}
	s.i, s.t, s.submit = 0, 0, 0
}

// Clone returns an independent source over the same model. The clone
// shares the construction-time aggregates (span, gap sum, cycle scale) —
// so cloning is O(1) and never repeats the summing passes — and starts
// rewind-pending with its own RNG cursors, making it safe to hand each
// concurrent replay of one shared prototype its own clone.
func (s *Source) Clone() *Source {
	c := *s
	c.attrRNG, c.gapRNG, c.drawUser = nil, nil, nil
	c.i, c.t, c.submit = 0, 0, 0
	return &c
}

// Name implements workload.JobSource.
func (s *Source) Name() string { return s.m.Name }

// CPUs implements workload.JobSource.
func (s *Source) CPUs() int { return s.m.CPUs }

// Len implements workload.Counted.
func (s *Source) Len() int { return s.m.Jobs }

// Err implements workload.JobSource; generation cannot fail after
// construction.
func (s *Source) Err() error { return nil }

// Reset implements workload.JobSource. The cursor rebuild is deferred to
// the next Next call.
func (s *Source) Reset() error {
	s.attrRNG = nil
	return nil
}

// Next implements workload.JobSource.
func (s *Source) Next() (workload.Job, bool) {
	if s.attrRNG == nil {
		s.rewind()
	}
	if s.i >= s.m.Jobs {
		return workload.Job{}, false
	}
	j := s.m.drawJob(s.attrRNG, s.drawUser, s.i+1)
	if s.i > 0 {
		// Generate: t += gaps[i-1]/sum*span, guarded on sum > 0.
		gap := s.gapRNG.Gamma(s.shape, 1)
		tNew := s.t
		if s.gapSum > 0 {
			tNew = s.t + gap/s.gapSum*s.span
		}
		if s.m.DailyCycle > 0 {
			delta := tNew - s.t
			rate := 1 + s.m.DailyCycle*math.Sin(2*math.Pi*tNew/86400)
			s.submit += (delta / rate) * s.cycleScale
			j.Submit = s.submit
		} else {
			j.Submit = tNew
		}
		s.t = tNew
	}
	s.i++
	return j, true
}
