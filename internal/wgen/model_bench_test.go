package wgen

import "testing"

// BenchmarkGenerate measures synthetic trace generation throughput.
func BenchmarkGenerate(b *testing.B) {
	for _, m := range Presets() {
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Generate(m); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.Jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
