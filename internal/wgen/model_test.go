package wgen

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func smallModel() Model {
	m := CTC()
	m.Jobs = 500
	return m
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(smallModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	if len(tr.Jobs) != 500 {
		t.Errorf("jobs = %d, want 500", len(tr.Jobs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallModel())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		x, y := a.Jobs[i], b.Jobs[i]
		if x.Submit != y.Submit || x.Runtime != y.Runtime || x.Procs != y.Procs || x.ReqTime != y.ReqTime {
			t.Fatalf("job %d differs between identical generations", i)
		}
	}
}

func TestGenerateSeedChangesTrace(t *testing.T) {
	m1, m2 := smallModel(), smallModel()
	m2.Seed++
	a, _ := Generate(m1)
	b, _ := Generate(m2)
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].Runtime == b.Jobs[i].Runtime {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Error("different seeds produced identical runtimes")
	}
}

func TestGenerateHitsTargetLoad(t *testing.T) {
	for _, m := range Presets() {
		m.Jobs = 2000
		tr, err := Generate(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		st := tr.ComputeStats()
		if math.Abs(st.Utilization-m.Load)/m.Load > 0.02 {
			t.Errorf("%s: utilization %v, want %v (±2%%)", m.Name, st.Utilization, m.Load)
		}
	}
}

func TestGenerateArrivalsSorted(t *testing.T) {
	tr, err := Generate(smallModel())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
			t.Fatal("arrivals not sorted")
		}
	}
	if tr.Jobs[0].Submit != 0 {
		t.Errorf("first submit = %v, want 0", tr.Jobs[0].Submit)
	}
}

func TestRequestAtLeastRuntimeRounded(t *testing.T) {
	tr, err := Generate(smallModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.ReqTime < j.Runtime*0.99 {
			t.Fatalf("job %d requested %v < runtime %v", j.ID, j.ReqTime, j.Runtime)
		}
	}
}

func TestSDSCBlueNoSerialMinEight(t *testing.T) {
	m := SDSCBlue()
	m.Jobs = 1000
	tr, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.Procs < 8 {
			t.Fatalf("SDSCBlue job %d has %d < 8 processors", j.ID, j.Procs)
		}
	}
}

func TestCTCHasManySerialJobs(t *testing.T) {
	m := CTC()
	m.Jobs = 2000
	tr, _ := Generate(m)
	st := tr.ComputeStats()
	if st.SerialShare < 0.25 || st.SerialShare > 0.45 {
		t.Errorf("CTC serial share = %v, want ≈0.35", st.SerialShare)
	}
}

func TestThunderMostlyShortJobs(t *testing.T) {
	m := LLNLThunder()
	m.Jobs = 2000
	tr, _ := Generate(m)
	short := 0
	for _, j := range tr.Jobs {
		if j.Runtime < 600 {
			short++
		}
	}
	if frac := float64(short) / float64(len(tr.Jobs)); frac < 0.30 {
		t.Errorf("Thunder short-job fraction = %v, want ≥ 0.30", frac)
	}
}

func TestPresetLookup(t *testing.T) {
	for _, name := range []string{"CTC", "sdsc", "SDSCBlue", "llnlthunder", "LLNLAtlas"} {
		if _, err := Preset(name); err != nil {
			t.Errorf("Preset(%q): %v", name, err)
		}
	}
	if _, err := Preset("nosuch"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetSystemSizesMatchPaper(t *testing.T) {
	want := map[string]int{
		"CTC": 430, "SDSC": 128, "SDSCBlue": 1152,
		"LLNLThunder": 4008, "LLNLAtlas": 9216,
	}
	for _, m := range Presets() {
		if m.CPUs != want[m.Name] {
			t.Errorf("%s CPUs = %d, want %d", m.Name, m.CPUs, want[m.Name])
		}
		if m.Jobs != StandardJobs {
			t.Errorf("%s jobs = %d, want %d", m.Name, m.Jobs, StandardJobs)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	base := CTC()
	mutations := []func(*Model){
		func(m *Model) { m.CPUs = 0 },
		func(m *Model) { m.Jobs = 0 },
		func(m *Model) { m.Load = 0 },
		func(m *Model) { m.Load = -1 },
		func(m *Model) { m.MinProcs = 600; m.MaxProcs = 500 },
		func(m *Model) { m.MaxProcs = base.CPUs + 1 },
		func(m *Model) { m.SerialFrac = 1.5 },
		func(m *Model) { m.ArrivalCV = -1 },
		func(m *Model) { m.DailyCycle = 1 },
	}
	for i, mut := range mutations {
		m := CTC()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDailyCyclePreservesLoad(t *testing.T) {
	m := smallModel()
	m.DailyCycle = 0.5
	tr, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if math.Abs(st.Utilization-m.Load)/m.Load > 0.02 {
		t.Errorf("utilization with daily cycle = %v, want %v", st.Utilization, m.Load)
	}
}

func TestRoundUpNice(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{100, 300}, {300, 300}, {301, 600}, {3600, 3600},
		{3700, 5400}, {20000, 21600}, {25000, 28800},
	}
	for _, c := range cases {
		if got := roundUpNice(c.in); got != c.want {
			t.Errorf("roundUpNice(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

var _ = workload.Trace{} // keep the import for documentation examples
