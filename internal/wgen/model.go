// Package wgen generates synthetic workload traces modeled after the five
// Parallel Workload Archive logs the paper simulates (CTC SP2, SDSC SP2,
// SDSC Blue Horizon, LLNL Thunder, LLNL Atlas). The archive traces are
// proprietary data that cannot be fetched in this offline build, so each
// preset reproduces the characteristics the paper reports that drive the
// results: system size, 5000-job segments, degree of parallelism, runtime
// and user-estimate distributions, and — decisive for the evaluation — the
// load level, calibrated so the no-DVFS average BSLD under EASY
// backfilling lands near Table 1 of the paper.
package wgen

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Model parameterizes one synthetic workload.
type Model struct {
	Name string
	CPUs int   // system size (processors)
	Jobs int   // number of jobs to generate
	Seed int64 // RNG seed; same seed, same trace

	// Load is the offered utilization: Σ procs·runtime ÷ (CPUs·span).
	// Arrival times are scaled so the generated trace hits it exactly.
	Load float64
	// ArrivalCV is the coefficient of variation of interarrival gaps;
	// 1 is a Poisson process, larger is burstier.
	ArrivalCV float64
	// DailyCycle adds a day/night arrival-rate modulation of the given
	// relative amplitude in [0,1); 0 disables.
	DailyCycle float64

	// Degree of parallelism.
	SerialFrac   float64 // probability of a 1-processor job
	MinProcs     int     // lower bound for parallel jobs (8 on SDSC Blue)
	MaxProcs     int     // upper bound (defaults to CPUs)
	Pow2Frac     float64 // probability a parallel size snaps to a power of two
	SizeLogMean  float64 // lognormal location of parallel sizes
	SizeLogSigma float64 // lognormal scale of parallel sizes

	// Runtime distribution (seconds at the top frequency).
	ShortFrac  float64 // probability of a short job
	ShortMean  float64 // exponential mean of short jobs
	RtLogMean  float64 // lognormal location of the runtime body
	RtLogSigma float64 // lognormal scale of the runtime body
	MinRuntime float64 // clamp (defaults to 1 s)
	MaxRuntime float64 // clamp (defaults to 48 h)

	// User estimates: requested = runtime · (1 + factor), with factor
	// exponential of mean OverestMean, rounded up to scheduler-friendly
	// values; AccurateFrac of jobs request (almost) exactly their runtime.
	AccurateFrac float64
	OverestMean  float64

	// Users is the size of the submitting-user pool; 0 leaves jobs with
	// unknown user (-1). Activity across users is Zipf-distributed with
	// exponent UserSkew (default 1.5 when Users > 0).
	Users    int
	UserSkew float64

	// BetaMin/BetaMax draw a per-job β uniformly (the paper's Section 7
	// future work models per-job DVFS potential). Both zero leaves jobs
	// on the global β.
	BetaMin, BetaMax float64
}

// withDefaults fills optional fields.
func (m Model) withDefaults() Model {
	if m.MaxProcs == 0 {
		m.MaxProcs = m.CPUs
	}
	if m.MinProcs == 0 {
		m.MinProcs = 1
	}
	if m.MinRuntime == 0 {
		m.MinRuntime = 1
	}
	if m.MaxRuntime == 0 {
		m.MaxRuntime = 48 * 3600
	}
	if m.ArrivalCV == 0 {
		m.ArrivalCV = 1
	}
	return m
}

// Validate reports the first problem with the model.
func (m Model) Validate() error {
	m = m.withDefaults()
	switch {
	case m.CPUs < 1:
		return fmt.Errorf("wgen: %s: CPUs %d", m.Name, m.CPUs)
	case m.Jobs < 1:
		return fmt.Errorf("wgen: %s: Jobs %d", m.Name, m.Jobs)
	case m.Load <= 0:
		return fmt.Errorf("wgen: %s: Load %v must be positive", m.Name, m.Load)
	case m.MinProcs > m.MaxProcs || m.MaxProcs > m.CPUs:
		return fmt.Errorf("wgen: %s: size bounds [%d,%d] invalid for %d CPUs", m.Name, m.MinProcs, m.MaxProcs, m.CPUs)
	case m.SerialFrac < 0 || m.SerialFrac > 1:
		return fmt.Errorf("wgen: %s: SerialFrac %v", m.Name, m.SerialFrac)
	case m.ArrivalCV <= 0:
		return fmt.Errorf("wgen: %s: ArrivalCV %v", m.Name, m.ArrivalCV)
	case m.DailyCycle < 0 || m.DailyCycle >= 1:
		return fmt.Errorf("wgen: %s: DailyCycle %v out of [0,1)", m.Name, m.DailyCycle)
	case m.Users < 0:
		return fmt.Errorf("wgen: %s: negative Users %d", m.Name, m.Users)
	case m.BetaMin < 0 || m.BetaMax > 1 || m.BetaMin > m.BetaMax:
		return fmt.Errorf("wgen: %s: per-job beta range [%v,%v] invalid", m.Name, m.BetaMin, m.BetaMax)
	}
	return nil
}

// newUserDraw builds the Zipf user sampler, or nil when Users is 0. It
// must be constructed at the same RNG stream position in every replay
// (Stream's passes and Generate share this helper for that reason).
func (m Model) newUserDraw(rng *stats.RNG) func() int {
	if m.Users <= 0 {
		return nil
	}
	skew := m.UserSkew
	if skew == 0 {
		skew = 1.5
	}
	return rng.Zipf(skew, m.Users)
}

// drawJob samples one job's attributes (everything but the submit time)
// in the canonical draw order. Generate and the streaming Source both go
// through it, so a replay of the same seeded RNG yields bit-identical
// jobs. It returns by value: the streaming source's summing passes
// discard millions of draws and must not allocate per job.
func (m Model) drawJob(rng *stats.RNG, drawUser func() int, id int) workload.Job {
	procs := m.drawProcs(rng)
	rt := m.drawRuntime(rng)
	req := m.drawRequest(rng, rt)
	j := workload.Job{
		ID: id, Procs: procs, Runtime: rt, ReqTime: req, Beta: -1, User: -1,
		Status: workload.StatusCompleted,
	}
	if drawUser != nil {
		j.User = drawUser()
	}
	if m.BetaMax > 0 {
		j.Beta = rng.Uniform(m.BetaMin, m.BetaMax)
	}
	return j
}

// Generate builds the trace. The same model (including seed) always
// produces the identical trace — and the identical job stream as
// Stream(m), which generates lazily instead (TestStreamMatchesGenerate
// pins the equivalence).
func Generate(m Model) (*workload.Trace, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	m = m.withDefaults()
	rng := stats.NewRNG(m.Seed)
	tr := &workload.Trace{Name: m.Name, CPUs: m.CPUs}

	// First pass: draw sizes, runtimes and estimates; accumulate demand.
	drawUser := m.newUserDraw(rng)
	demand := 0.0 // CPU·seconds
	for i := 0; i < m.Jobs; i++ {
		j := m.drawJob(rng, drawUser, i+1)
		tr.Jobs = append(tr.Jobs, &j)
		demand += float64(j.Procs) * j.Runtime
	}

	// Second pass: spread arrivals over a span that realizes the target
	// load. Gamma-distributed gap weights give the requested burstiness.
	span := demand / (float64(m.CPUs) * m.Load)
	gaps := make([]float64, m.Jobs-1)
	sum := 0.0
	shape := 1 / (m.ArrivalCV * m.ArrivalCV)
	for i := range gaps {
		gaps[i] = rng.Gamma(shape, 1)
		sum += gaps[i]
	}
	t := 0.0
	for i := 1; i < m.Jobs; i++ {
		if sum > 0 {
			t += gaps[i-1] / sum * span
		}
		tr.Jobs[i].Submit = t
	}
	if m.DailyCycle > 0 {
		applyDailyCycle(tr, m.DailyCycle, span)
	}
	tr.SortBySubmit()
	return tr, nil
}

// drawProcs samples the processor count. When SerialFrac is set it alone
// decides the share of 1-processor jobs; the parallel branch then floors
// at 2 so the lognormal tail cannot inflate the serial population.
func (m Model) drawProcs(r *stats.RNG) int {
	if m.SerialFrac > 0 && r.Bernoulli(m.SerialFrac) {
		return 1
	}
	lo := m.MinProcs
	if m.SerialFrac > 0 && lo < 2 {
		lo = 2
	}
	v := r.Lognormal(m.SizeLogMean, m.SizeLogSigma)
	if r.Bernoulli(m.Pow2Frac) {
		v = math.Pow(2, math.Round(math.Log2(math.Max(v, 1))))
	}
	p := int(math.Round(v))
	if p < lo {
		p = lo
	}
	if p > m.MaxProcs {
		p = m.MaxProcs
	}
	return p
}

// drawRuntime samples the execution time at the top frequency.
func (m Model) drawRuntime(r *stats.RNG) float64 {
	var rt float64
	if m.ShortFrac > 0 && r.Bernoulli(m.ShortFrac) {
		rt = r.Exp(m.ShortMean)
	} else {
		rt = r.Lognormal(m.RtLogMean, m.RtLogSigma)
	}
	return clamp(rt, m.MinRuntime, m.MaxRuntime)
}

// drawRequest samples the user estimate for a job of the given runtime.
// Estimates overestimate heavily and cluster on round values, following
// the well-known PWA estimate pathologies.
func (m Model) drawRequest(r *stats.RNG, rt float64) float64 {
	if r.Bernoulli(m.AccurateFrac) {
		return roundUpNice(rt * 1.05)
	}
	factor := 1 + r.Exp(m.OverestMean)
	if factor > 10 {
		factor = 10
	}
	return roundUpNice(rt * factor)
}

// roundUpNice rounds an estimate up to values users actually type:
// multiples of 5 minutes below one hour, of 30 minutes below 6 hours, and
// of 2 hours above.
func roundUpNice(sec float64) float64 {
	var step float64
	switch {
	case sec <= 3600:
		step = 300
	case sec <= 6*3600:
		step = 1800
	default:
		step = 7200
	}
	return math.Ceil(sec/step) * step
}

// applyDailyCycle stretches night-time gaps and compresses day-time gaps,
// then rescales so the span (and hence the load) is preserved.
func applyDailyCycle(tr *workload.Trace, amplitude, span float64) {
	n := len(tr.Jobs)
	if n < 2 {
		return
	}
	gaps := make([]float64, n-1)
	sum := 0.0
	for i := 1; i < n; i++ {
		gap := tr.Jobs[i].Submit - tr.Jobs[i-1].Submit
		// Arrival rate peaks mid-day: rate(t) = 1 + A·sin(2πt/day).
		rate := 1 + amplitude*math.Sin(2*math.Pi*tr.Jobs[i].Submit/86400)
		gaps[i-1] = gap / rate
		sum += gaps[i-1]
	}
	scale := span / sum
	t := 0.0
	for i := 1; i < n; i++ {
		t += gaps[i-1] * scale
		tr.Jobs[i].Submit = t
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
