package wgen

import (
	"strings"

	"repro/internal/workload"
)

// The CLI tools (bsldsim, sweep, ...) all resolve a workload name the
// same way: names ending in .swf load as SWF trace files, anything else
// is a built-in preset. ResolveTrace and ResolveSource are that shared
// resolution for the materialized and the streaming pipeline
// respectively, so the tools cannot drift apart on filter or override
// semantics.

// ResolveTrace materializes the named workload. cpus supplies the system
// size for SWF logs without a MaxProcs header (0 requires the header);
// jobs overrides a preset's trace length (0 keeps the model's native
// length). The filter's status cleaning applies to SWF logs only, but
// its EcoUsers hook tags presets too: "*" opts in every generated job,
// user IDs match when the model assigns a user pool (Model.Users).
func ResolveTrace(name string, cpus, jobs int, filter workload.SWFFilter) (*workload.Trace, error) {
	if strings.HasSuffix(name, ".swf") {
		return workload.ParseSWFFile(name, cpus, filter)
	}
	m, err := Preset(name)
	if err != nil {
		return nil, err
	}
	if jobs > 0 {
		m.Jobs = jobs
	}
	eco, err := filter.EcoSet()
	if err != nil {
		return nil, err
	}
	tr, err := Generate(m)
	if err != nil {
		return nil, err
	}
	eco.Tag(tr.Jobs)
	return tr, nil
}

// ResolveSource streams the named workload: presets generate lazily
// (Stream), SWF logs are read incrementally (workload.OpenSWFSource).
// Parameters are those of ResolveTrace, including the preset EcoUsers
// semantics. Every call returns an independent source, so concurrent
// runs never share a cursor.
func ResolveSource(name string, cpus, jobs int, filter workload.SWFFilter) (workload.JobSource, error) {
	if strings.HasSuffix(name, ".swf") {
		return workload.OpenSWFSource(name, cpus, filter)
	}
	m, err := Preset(name)
	if err != nil {
		return nil, err
	}
	if jobs > 0 {
		m.Jobs = jobs
	}
	eco, err := filter.EcoSet()
	if err != nil {
		return nil, err
	}
	src, err := Stream(m)
	if err != nil {
		return nil, err
	}
	return workload.TagEco(src, eco), nil
}
