package wgen

import (
	"strings"

	"repro/internal/workload"
)

// The CLI tools (bsldsim, sweep, ...) all resolve a workload name the
// same way: names ending in .swf load as SWF trace files, anything else
// is a built-in preset. ResolveTrace and ResolveSource are that shared
// resolution for the materialized and the streaming pipeline
// respectively, so the tools cannot drift apart on filter or override
// semantics.

// ResolveTrace materializes the named workload. cpus supplies the system
// size for SWF logs without a MaxProcs header (0 requires the header);
// jobs overrides a preset's trace length (0 keeps the model's native
// length); the filter applies to SWF logs only.
func ResolveTrace(name string, cpus, jobs int, filter workload.SWFFilter) (*workload.Trace, error) {
	if strings.HasSuffix(name, ".swf") {
		return workload.ParseSWFFile(name, cpus, filter)
	}
	m, err := Preset(name)
	if err != nil {
		return nil, err
	}
	if jobs > 0 {
		m.Jobs = jobs
	}
	return Generate(m)
}

// ResolveSource streams the named workload: presets generate lazily
// (Stream), SWF logs are read incrementally (workload.OpenSWFSource).
// Parameters are those of ResolveTrace. Every call returns an
// independent source, so concurrent runs never share a cursor.
func ResolveSource(name string, cpus, jobs int, filter workload.SWFFilter) (workload.JobSource, error) {
	if strings.HasSuffix(name, ".swf") {
		return workload.OpenSWFSource(name, cpus, filter)
	}
	m, err := Preset(name)
	if err != nil {
		return nil, err
	}
	if jobs > 0 {
		m.Jobs = jobs
	}
	return Stream(m)
}
