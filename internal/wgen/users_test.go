package wgen

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestGenerateUsers(t *testing.T) {
	m := CTC()
	m.Jobs = 2000
	m.Users = 50
	tr, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, j := range tr.Jobs {
		if j.User < 0 || j.User >= 50 {
			t.Fatalf("user %d out of pool", j.User)
		}
		counts[j.User]++
	}
	// Zipf activity: the busiest user dominates a uniform share.
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 3*m.Jobs/50 {
		t.Errorf("busiest user has %d jobs; expected Zipf skew above uniform %d", maxCount, m.Jobs/50)
	}
}

func TestGenerateNoUsersByDefault(t *testing.T) {
	m := CTC()
	m.Jobs = 100
	tr, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.User != -1 {
			t.Fatalf("default model assigned user %d", j.User)
		}
	}
}

func TestGeneratePerJobBeta(t *testing.T) {
	m := SDSCBlue()
	m.Jobs = 500
	m.BetaMin, m.BetaMax = 0.2, 0.8
	tr, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, j := range tr.Jobs {
		if j.Beta < 0.2 || j.Beta > 0.8 {
			t.Fatalf("beta %v out of [0.2, 0.8]", j.Beta)
		}
		distinct[j.Beta] = true
	}
	if len(distinct) < 100 {
		t.Errorf("only %d distinct betas; expected a spread", len(distinct))
	}
}

func TestGenerateBetaDisabledByDefault(t *testing.T) {
	m := SDSCBlue()
	m.Jobs = 50
	tr, _ := Generate(m)
	for _, j := range tr.Jobs {
		if j.Beta != -1 {
			t.Fatalf("default model set per-job beta %v", j.Beta)
		}
	}
}

func TestValidateBetaRange(t *testing.T) {
	m := CTC()
	m.BetaMin, m.BetaMax = 0.8, 0.2
	if err := m.Validate(); err == nil {
		t.Error("inverted beta range accepted")
	}
	m.BetaMin, m.BetaMax = 0.5, 1.5
	if err := m.Validate(); err == nil {
		t.Error("beta above 1 accepted")
	}
	m.BetaMin, m.BetaMax = 0, 0
	m.Users = -1
	if err := m.Validate(); err == nil {
		t.Error("negative user pool accepted")
	}
}

// Users + flurry cleaning integration: generated traces survive the
// cleaning pass unchanged at archive-scale thresholds (the generator
// produces no flurries by construction).
func TestGeneratedTracesAreFlurryFree(t *testing.T) {
	m := SDSC()
	m.Jobs = 2000
	m.Users = 40
	tr, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	_, removed := workload.RemoveFlurries(tr, workload.DefaultCleanConfig())
	if removed > m.Jobs/100 {
		t.Errorf("cleaning removed %d jobs from a synthetic trace", removed)
	}
}

// Distribution regression: two different seeds of the same model draw
// from the same distributions (small KS distance on runtimes), while
// different workload models are clearly distinguishable. Guards the
// generators against accidental distribution drift.
func TestDistributionStabilityAcrossSeeds(t *testing.T) {
	runtimes := func(m Model, seedDelta int64) stats.ECDF {
		m.Jobs = 4000
		m.Seed += seedDelta
		tr, err := Generate(m)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, len(tr.Jobs))
		for i, j := range tr.Jobs {
			xs[i] = j.Runtime
		}
		return stats.NewECDF(xs)
	}
	a := runtimes(SDSCBlue(), 0)
	b := runtimes(SDSCBlue(), 1234)
	if d := stats.KSDistance(a, b); d > 0.05 {
		t.Errorf("same model, different seeds: KS = %v, want < 0.05", d)
	}
	c := runtimes(LLNLThunder(), 0)
	if d := stats.KSDistance(a, c); d < 0.1 {
		t.Errorf("different models: KS = %v, want > 0.1", d)
	}
}
