package wgen

import (
	"testing"

	"repro/internal/workload"
)

// The EcoUsers hook applies to presets through both resolution paths:
// "*" opts in every generated job, materialized and streamed resolution
// agree job for job, and a malformed hook fails resolution instead of
// silently tagging nothing.
func TestResolvePresetEcoUsers(t *testing.T) {
	const jobs = 200
	plain, err := ResolveTrace("CTC", 0, jobs, workload.SWFFilter{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range plain.Jobs {
		if j.Eco {
			t.Fatalf("job %d eco without an EcoUsers hook", j.ID)
		}
	}

	star := workload.SWFFilter{EcoUsers: "*"}
	tr, err := ResolveTrace("CTC", 0, jobs, star)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != jobs {
		t.Fatalf("resolved %d jobs, want %d", len(tr.Jobs), jobs)
	}
	for _, j := range tr.Jobs {
		if !j.Eco {
			t.Fatalf("job %d not eco under \"*\"", j.ID)
		}
	}

	src, err := ResolveSource("CTC", 0, jobs, star)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := src.(workload.Counted); !ok || c.Len() != jobs {
		t.Errorf("tagged stream lost its length: %T", src)
	}
	streamed, err := workload.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed.Jobs) != len(tr.Jobs) {
		t.Fatalf("streamed %d jobs vs materialized %d", len(streamed.Jobs), len(tr.Jobs))
	}
	for i, j := range streamed.Jobs {
		if *j != *tr.Jobs[i] {
			t.Fatalf("streamed job %d differs from materialized: %+v vs %+v", i, *j, *tr.Jobs[i])
		}
	}

	// User-ID entries parse fine but cannot match a preset without a
	// user pool: every paper preset leaves Job.User at -1.
	ids, err := ResolveTrace("CTC", 0, jobs, workload.SWFFilter{EcoUsers: "1,7"})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range ids.Jobs {
		if j.Eco {
			t.Fatalf("job %d (user %d) eco under an ID list on a userless preset", j.ID, j.User)
		}
	}

	bad := workload.SWFFilter{EcoUsers: "seven"}
	if _, err := ResolveTrace("CTC", 0, jobs, bad); err == nil {
		t.Error("ResolveTrace accepted a malformed EcoUsers hook")
	}
	if _, err := ResolveSource("CTC", 0, jobs, bad); err == nil {
		t.Error("ResolveSource accepted a malformed EcoUsers hook")
	}
}

// A user-pool model resolved with an ID hook tags exactly the listed
// users' jobs — the preset pipeline matches the SWF field-12 semantics.
func TestStreamEcoUsersWithUserPool(t *testing.T) {
	m := CTC()
	m.Jobs = 300
	m.Users = 20
	src, err := Stream(m)
	if err != nil {
		t.Fatal(err)
	}
	set, err := workload.SWFFilter{EcoUsers: "0,3"}.EcoSet()
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := workload.Collect(workload.TagEco(src, set))
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, j := range tagged.Jobs {
		want := j.User == 0 || j.User == 3
		if j.Eco != want {
			t.Fatalf("job %d user %d eco=%v, want %v", j.ID, j.User, j.Eco, want)
		}
		if want {
			matched++
		}
	}
	if matched == 0 {
		t.Error("no jobs matched the ID hook despite a 20-user pool")
	}
}
