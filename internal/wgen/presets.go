package wgen

import (
	"fmt"
	"math"
	"strings"
)

// Paper Table 1, for reference while calibrating:
//
//	Workload      #CPUs  jobs(K)  avg BSLD (no DVFS)
//	CTC            430   20–25    4.66
//	SDSC           128   40–45    24.91
//	SDSCBlue      1152   20–25    5.15
//	LLNLThunder   4008   20–25    1.00
//	LLNLAtlas     9216   10–15    1.08
//
// Each preset generates the 5000-job segment the paper simulates. The
// Load values below are calibrated against our EASY implementation so
// the baseline average BSLDs land near Table 1 (see EXPERIMENTS.md).

// StandardJobs is the trace segment length the paper simulates.
const StandardJobs = 5000

// CTC returns the model of the Cornell Theory Center IBM SP2 log: many
// large (long) jobs with a relatively low degree of parallelism.
func CTC() Model {
	return Model{
		Name: "CTC", CPUs: 430, Jobs: StandardJobs, Seed: 430001,
		Load: 1.04, ArrivalCV: 2.4,
		SerialFrac: 0.35, MinProcs: 1, MaxProcs: 336, Pow2Frac: 0.4,
		SizeLogMean: math.Log(4), SizeLogSigma: 1.3,
		ShortFrac: 0.2, ShortMean: 240,
		RtLogMean: math.Log(2800), RtLogSigma: 1.7, MaxRuntime: 18 * 3600,
		AccurateFrac: 0.2, OverestMean: 1.6,
	}
}

// SDSC returns the model of the San Diego Supercomputer Center SP2 log:
// fewer sequential jobs than CTC, similar runtimes, heavily overloaded
// (the paper's baseline average BSLD is 24.91).
func SDSC() Model {
	return Model{
		Name: "SDSC", CPUs: 128, Jobs: StandardJobs, Seed: 128001,
		Load: 1.12, ArrivalCV: 1.2,
		SerialFrac: 0.25, MinProcs: 1, MaxProcs: 128, Pow2Frac: 0.5,
		SizeLogMean: math.Log(4), SizeLogSigma: 1.2,
		ShortFrac: 0.2, ShortMean: 240,
		RtLogMean: math.Log(2800), RtLogSigma: 1.7, MaxRuntime: 18 * 3600,
		AccurateFrac: 0.2, OverestMean: 1.6,
	}
}

// SDSCBlue returns the model of the SDSC Blue Horizon log: no sequential
// jobs — every job gets at least 8 processors, mostly powers of two.
func SDSCBlue() Model {
	return Model{
		Name: "SDSCBlue", CPUs: 1152, Jobs: StandardJobs, Seed: 1152001,
		Load: 0.69, ArrivalCV: 2.0,
		SerialFrac: 0, MinProcs: 8, MaxProcs: 1152, Pow2Frac: 0.85,
		SizeLogMean: math.Log(32), SizeLogSigma: 1.2,
		ShortFrac: 0.25, ShortMean: 300,
		RtLogMean: math.Log(1600), RtLogSigma: 1.6, MaxRuntime: 36 * 3600,
		AccurateFrac: 0.2, OverestMean: 1.5,
	}
}

// LLNLThunder returns the model of the LLNL Thunder log: large numbers of
// smaller and medium jobs, most shorter than the 600 s BSLD threshold, on
// a big machine — the baseline average BSLD is exactly 1.
func LLNLThunder() Model {
	return Model{
		Name: "LLNLThunder", CPUs: 4008, Jobs: StandardJobs, Seed: 4008001,
		Load: 0.82, ArrivalCV: 1.0,
		SerialFrac: 0.2, MinProcs: 1, MaxProcs: 1024, Pow2Frac: 0.5,
		SizeLogMean: math.Log(32), SizeLogSigma: 1.1,
		ShortFrac: 0.4, ShortMean: 300,
		RtLogMean: math.Log(5400), RtLogSigma: 1.3, MaxRuntime: 24 * 3600,
		AccurateFrac: 0.25, OverestMean: 1.4,
	}
}

// LLNLAtlas returns the model of the LLNL Atlas log: large parallel jobs
// on the biggest system of the study, lightly loaded (baseline 1.08).
func LLNLAtlas() Model {
	return Model{
		Name: "LLNLAtlas", CPUs: 9216, Jobs: StandardJobs, Seed: 9216001,
		Load: 0.52, ArrivalCV: 1.0,
		SerialFrac: 0.05, MinProcs: 8, MaxProcs: 8192, Pow2Frac: 0.7,
		SizeLogMean: math.Log(256), SizeLogSigma: 1.0,
		ShortFrac: 0.3, ShortMean: 300,
		RtLogMean: math.Log(2400), RtLogSigma: 1.4, MaxRuntime: 24 * 3600,
		AccurateFrac: 0.4, OverestMean: 0.6,
	}
}

// MillionJobs is the trace length of the large-scale stress preset.
const MillionJobs = 1_000_000

// Million returns a production-scale stress preset: one million mostly
// small, short jobs on a 32K-processor machine at 85% offered load, with
// on the order of ten thousand jobs running concurrently. It is NOT part
// of the paper's evaluation (Presets) — it exists to exercise the
// scheduler hot path at a scale where the seed implementation's O(trace)
// event heap and O(running) completion removal dominated the wall clock.
func Million() Model {
	return Model{
		Name: "Million", CPUs: 32768, Jobs: MillionJobs, Seed: 32768001,
		Load: 0.85, ArrivalCV: 1.5,
		SerialFrac: 0.7, MinProcs: 1, MaxProcs: 256, Pow2Frac: 0.5,
		SizeLogMean: math.Log(2), SizeLogSigma: 1.0,
		ShortFrac: 0.3, ShortMean: 120,
		RtLogMean: math.Log(1800), RtLogSigma: 1.5, MaxRuntime: 12 * 3600,
		AccurateFrac: 0.25, OverestMean: 1.5,
	}
}

// TenMillionJobs is the trace length of the streaming-scale stress preset.
const TenMillionJobs = 10_000_000

// TenMillion returns the streaming-scale stress preset: ten million jobs
// on the Million preset's 32K-processor machine, with a mild daily
// arrival cycle so the multi-week horizon exercises non-stationary load.
// The amplitude keeps the peak offered load under 1 (0.85 × 1.1): a
// sustained overload would grow the wait queue without bound, which
// stresses queue scans rather than the streaming pipeline this preset
// exists for. A trace this long cannot reasonably be materialized (~1 GB
// of Job structs plus the generation arrays); it is meant to be replayed
// through wgen.Stream → runner.Spec.Source, which holds O(running jobs)
// peak heap regardless of trace length.
func TenMillion() Model {
	m := Million()
	m.Name = "TenMillion"
	m.Jobs = TenMillionJobs
	m.Seed = 32768010
	m.DailyCycle = 0.1
	return m
}

// Presets returns the five workload models in the paper's order.
func Presets() []Model {
	return []Model{CTC(), SDSC(), SDSCBlue(), LLNLThunder(), LLNLAtlas()}
}

// Preset looks a model up by case-insensitive name, including the
// non-paper Million and TenMillion stress presets.
func Preset(name string) (Model, error) {
	for _, m := range append(Presets(), Million(), TenMillion()) {
		if strings.EqualFold(m.Name, name) {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("wgen: unknown workload %q (have CTC, SDSC, SDSCBlue, LLNLThunder, LLNLAtlas, Million, TenMillion)", name)
}
