package wgen

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// streamModels are the models the determinism tests cover: every paper
// preset at its native length plus shortened stress presets (so the
// daily-cycle path and the Million parameters are exercised without
// million-job test runtimes).
func streamModels() []Model {
	models := Presets()
	million := Million()
	million.Jobs = 20_000
	tenM := TenMillion()
	tenM.Jobs = 5_000
	models = append(models, million, tenM)
	// Exercise the per-user and per-job-beta draw paths the presets skip.
	users := CTC()
	users.Name = "CTC-users"
	users.Jobs = 2_000
	users.Users = 50
	users.BetaMin, users.BetaMax = 0.3, 0.7
	// And the daily cycle on a paper-sized machine.
	cycle := SDSC()
	cycle.Name = "SDSC-cycle"
	cycle.Jobs = 2_000
	cycle.DailyCycle = 0.5
	return append(models, users, cycle)
}

// TestStreamMatchesGenerate pins the tentpole property of the streaming
// generator: Stream(m) yields the exact job sequence Generate(m)
// materializes — same IDs, same draws, bit-identical submit times — for
// every preset family, so the streaming pipeline replays the same
// schedules the materialized one does.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, m := range streamModels() {
		t.Run(m.Name, func(t *testing.T) {
			want, err := Generate(m)
			if err != nil {
				t.Fatal(err)
			}
			src, err := Stream(m)
			if err != nil {
				t.Fatal(err)
			}
			if src.Name() != want.Name || src.CPUs() != want.CPUs {
				t.Fatalf("source metadata %s/%d, want %s/%d", src.Name(), src.CPUs(), want.Name, want.CPUs)
			}
			if src.Len() != len(want.Jobs) {
				t.Fatalf("Len() = %d, want %d", src.Len(), len(want.Jobs))
			}
			for i, wj := range want.Jobs {
				gj, ok := src.Next()
				if !ok {
					t.Fatalf("stream ended after %d jobs, want %d", i, len(want.Jobs))
				}
				if gj != *wj {
					t.Fatalf("job %d: streamed %+v, generated %+v", i, gj, *wj)
				}
			}
			if _, ok := src.Next(); ok {
				t.Fatalf("stream yields more than %d jobs", len(want.Jobs))
			}
			if err := src.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStreamSWFByteIdentical pins the end-to-end export: the streaming
// writer over a lazy source produces the identical bytes WriteSWF
// produces from the materialized trace, MaxJobs header included.
func TestStreamSWFByteIdentical(t *testing.T) {
	for _, m := range streamModels() {
		t.Run(m.Name, func(t *testing.T) {
			tr, err := Generate(m)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := workload.WriteSWF(&want, tr); err != nil {
				t.Fatal(err)
			}
			src, err := Stream(m)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			n, err := workload.WriteSWFStream(&got, src)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(tr.Jobs) {
				t.Fatalf("streamed %d jobs, want %d", n, len(tr.Jobs))
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("streamed SWF differs from materialized (got %d bytes, want %d)", got.Len(), want.Len())
			}
		})
	}
}

// TestStreamReset proves a source rewinds exactly: a partially consumed
// then reset stream replays the identical sequence, so one source can
// back repeated simulation runs.
func TestStreamReset(t *testing.T) {
	m := SDSCBlue()
	m.Jobs = 1_000
	m.DailyCycle = 0.4
	src, err := Stream(m)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]workload.Job, 0, m.Jobs)
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		first = append(first, j)
	}
	if len(first) != m.Jobs {
		t.Fatalf("first pass yielded %d jobs, want %d", len(first), m.Jobs)
	}
	// Partial consume, then rewind.
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 137; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("partial pass ended at %d", i)
		}
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	for i, w := range first {
		g, ok := src.Next()
		if !ok {
			t.Fatalf("replay ended after %d jobs", i)
		}
		if g != w {
			t.Fatalf("replay job %d: %+v, want %+v", i, g, w)
		}
	}
}

// TestStreamRejectsInvalidModel mirrors Generate's validation.
func TestStreamRejectsInvalidModel(t *testing.T) {
	m := CTC()
	m.Load = -1
	if _, err := Stream(m); err == nil {
		t.Fatal("Stream accepted an invalid model")
	}
}
