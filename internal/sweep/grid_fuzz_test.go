package sweep

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzGridValidate hardens grid axis validation against arbitrary input:
// Validate must never panic, and any grid it accepts must expand to
// exactly Size() points whose axis values echo the declared axes.
func FuzzGridValidate(f *testing.F) {
	f.Add("CTC,SDSC", 2.0, 16, false, 1.2, 430, "easy", "firstfit", "fcfs", 0)
	f.Add("CTC", 0.0, 0, false, 1.0, 0, "", "", "", 0)
	f.Add("", 1.5, core.NoWQLimit, true, 0.5, -1, "fcfs", "nextfit", "sjf", 2)
	f.Add("LLNLAtlas", 0.99, -3, false, -2.0, 9216, "conservative", "contiguous", "lifo", -1)
	f.Add("a,,b", 3.0, 4, true, 2.25, 128, "bogus", "worstfit", "fcfs", 1000)
	f.Fuzz(func(t *testing.T, traces string, bsld float64, wq int, boost bool,
		sf float64, cpus int, variant, selection, order string, res int) {
		var names []string
		if traces != "" {
			names = strings.Split(traces, ",")
		}
		g := Grid{
			Traces:       names,
			Policies:     []PolicyConfig{{BSLDThr: bsld, WQThr: wq, Boost: boost, BoostWQ: wq}},
			SizeFactors:  []float64{sf},
			CPUs:         []int{cpus},
			Variants:     []string{variant},
			Selections:   []string{selection},
			Orders:       []string{order},
			Reservations: []int{res},
		}
		if err := g.Validate(); err != nil {
			return
		}
		pts := g.Points()
		if len(pts) != g.Size() {
			t.Fatalf("valid grid expanded to %d points, Size() = %d", len(pts), g.Size())
		}
		if len(pts) != len(names) {
			t.Fatalf("one cell per trace expected: %d points for %d traces", len(pts), len(names))
		}
		for i, p := range pts {
			if p.Index != i {
				t.Fatalf("point %d carries Index %d", i, p.Index)
			}
			if p.Trace != names[i] {
				t.Fatalf("point %d trace %q, want %q", i, p.Trace, names[i])
			}
			if p.SizeFactor != sf || p.CPUs != cpus || p.Reservations != res {
				t.Fatalf("axis values not echoed: %+v", p)
			}
			if p.Label() == "" {
				t.Fatal("empty point label")
			}
		}
	})
}
