// Package sweep turns the paper's parameter studies into a first-class
// subsystem: a declarative Grid of simulation axes (traces, BSLD
// thresholds, size factors, machine sizes, scheduling variants, selections,
// queue orders, reservation depths) that expands to a deterministic ordered
// list of runs, and a Pool that executes those runs across CPU cores while
// keeping the output byte-identical to a serial sweep.
//
// Determinism contract: Grid.Points always enumerates the cross product in
// the same nested axis order (trace outermost, cap fractions innermost), and
// Pool.Execute writes each result into the slot of its input index, so the
// result slice never depends on worker count or scheduling interleavings —
// only per-run wall-clock does.
package sweep

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/workload"
)

// PolicyConfig selects the gear policy of one grid cell. It is the
// scenario layer's policy configuration — grid JSON, legacy sweeps and
// what-if requests all share one shape. The zero value is the no-DVFS
// baseline (top gear for every job).
type PolicyConfig = scenario.PolicyConfig

// Grid declares one sweep as a cross product of axes. Empty axes collapse
// to a single default value (noted per field), so a Grid with only Traces
// set sweeps the plain no-DVFS baseline over those traces.
type Grid struct {
	// Traces names workload presets (wgen.Preset) or .swf files.
	Traces []string `json:"traces"`
	// Policies are the gear policies; empty → the no-DVFS baseline only.
	Policies []PolicyConfig `json:"policies,omitempty"`
	// SizeFactors scale the machine (empty → 1.0, the original size).
	SizeFactors []float64 `json:"size_factors,omitempty"`
	// CPUs overrides the machine size outright; 0 keeps the size-factor
	// path (empty → 0).
	CPUs []int `json:"cpus,omitempty"`
	// Variants are base scheduling policies by name (empty → easy).
	Variants []string `json:"variants,omitempty"`
	// Selections are resource selection policies by name (empty → firstfit).
	Selections []string `json:"selections,omitempty"`
	// Orders are queue disciplines by name (empty → fcfs).
	Orders []string `json:"orders,omitempty"`
	// Reservations are EASY reservation depths (empty → 0, classic).
	Reservations []int `json:"reservations,omitempty"`
	// CapFracs are power-cap levels as fractions of the machine's peak
	// draw, each compiled into a closed-loop PowerCap controller; 0 runs
	// without a controller (empty → 0, uncapped).
	CapFracs []float64 `json:"cap_fracs,omitempty"`
}

// Point is one expanded grid cell: pure data, resolvable to a runner.Spec.
type Point struct {
	// Index is the cell's position in grid order; Pool results keep it.
	Index int `json:"index"`

	Trace        string       `json:"trace"`
	Policy       PolicyConfig `json:"policy"`
	SizeFactor   float64      `json:"size_factor"`
	CPUs         int          `json:"cpus,omitempty"`
	Variant      string       `json:"variant"`
	Selection    string       `json:"selection"`
	Order        string       `json:"order"`
	Reservations int          `json:"reservations"`
	CapFrac      float64      `json:"cap_frac,omitempty"`
}

// Label is a human-readable cell caption for progress lines and CSV rows.
func (p Point) Label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", p.Trace, p.Policy.Label())
	if p.CPUs != 0 {
		fmt.Fprintf(&b, "/cpus=%d", p.CPUs)
	} else if p.SizeFactor != 1 {
		fmt.Fprintf(&b, "/sf=%g", p.SizeFactor)
	}
	if p.Variant != "easy" {
		b.WriteString("/" + p.Variant)
	}
	if p.Selection != "firstfit" {
		b.WriteString("/" + p.Selection)
	}
	if p.Order != "fcfs" {
		b.WriteString("/" + p.Order)
	}
	if p.Reservations != 0 {
		fmt.Fprintf(&b, "/res=%d", p.Reservations)
	}
	if p.CapFrac > 0 {
		fmt.Fprintf(&b, "/cap=%g", p.CapFrac)
	}
	return b.String()
}

// withDefaults returns the grid with every empty axis collapsed to its
// single default value. Validation and expansion share it so they agree.
func (g Grid) withDefaults() Grid {
	if len(g.Policies) == 0 {
		g.Policies = []PolicyConfig{{}}
	}
	if len(g.SizeFactors) == 0 {
		g.SizeFactors = []float64{1}
	}
	if len(g.CPUs) == 0 {
		g.CPUs = []int{0}
	}
	if len(g.Variants) == 0 {
		g.Variants = []string{"easy"}
	}
	if len(g.Selections) == 0 {
		g.Selections = []string{"firstfit"}
	}
	if len(g.Orders) == 0 {
		g.Orders = []string{"fcfs"}
	}
	if len(g.Reservations) == 0 {
		g.Reservations = []int{0}
	}
	if len(g.CapFracs) == 0 {
		g.CapFracs = []float64{0}
	}
	return g
}

// Validate reports the first problem with any axis value.
func (g Grid) Validate() error {
	if len(g.Traces) == 0 {
		return fmt.Errorf("sweep: grid has no traces")
	}
	for _, tr := range g.Traces {
		if tr == "" {
			return fmt.Errorf("sweep: empty trace name")
		}
	}
	d := g.withDefaults()
	for _, p := range d.Policies {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("sweep: policy %s: %w", p.Label(), err)
		}
	}
	for _, sf := range d.SizeFactors {
		if !(sf > 0) || math.IsInf(sf, 1) { // rejects NaN, 0, negatives, +Inf
			return fmt.Errorf("sweep: size factor %v is not a positive finite number", sf)
		}
	}
	for _, c := range d.CPUs {
		if c < 0 {
			return fmt.Errorf("sweep: negative CPUs override %d", c)
		}
	}
	// A CPUs override makes runner.Run ignore the size factor, so crossing
	// the two axes would run duplicate cells whose size_factor column lies.
	for _, c := range d.CPUs {
		if c == 0 {
			continue
		}
		for _, sf := range d.SizeFactors {
			if sf != 1 {
				return fmt.Errorf("sweep: CPUs override %d cannot be combined with size factor %v (the override wins and the factor would be ignored)", c, sf)
			}
		}
	}
	for _, v := range d.Variants {
		if _, err := sched.ParseVariant(v); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, s := range d.Selections {
		if _, err := cluster.ParseSelection(s); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, o := range d.Orders {
		if _, err := sched.ParseOrder(o); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, r := range d.Reservations {
		if r < 0 {
			return fmt.Errorf("sweep: negative reservation depth %d", r)
		}
	}
	for _, c := range d.CapFracs {
		if c < 0 || c > 1 || math.IsNaN(c) {
			return fmt.Errorf("sweep: cap fraction %v out of [0, 1] (0 = uncapped)", c)
		}
	}
	return nil
}

// Size is the number of cells the grid expands to.
func (g Grid) Size() int {
	d := g.withDefaults()
	return len(d.Traces) * len(d.Policies) * len(d.SizeFactors) * len(d.CPUs) *
		len(d.Variants) * len(d.Selections) * len(d.Orders) * len(d.Reservations) *
		len(d.CapFracs)
}

// Points expands the grid in its canonical order: traces outermost, then
// policies, size factors, CPU overrides, variants, selections, orders,
// reservation depths and cap fractions innermost. The order is part of the determinism
// contract — callers may rely on result index i meaning the same cell on
// every run.
func (g Grid) Points() []Point {
	d := g.withDefaults()
	pts := make([]Point, 0, g.Size())
	for _, tr := range d.Traces {
		for _, pol := range d.Policies {
			for _, sf := range d.SizeFactors {
				for _, cpus := range d.CPUs {
					for _, v := range d.Variants {
						for _, sel := range d.Selections {
							for _, ord := range d.Orders {
								for _, res := range d.Reservations {
									for _, capf := range d.CapFracs {
										pts = append(pts, Point{
											Index:        len(pts),
											Trace:        tr,
											Policy:       pol,
											SizeFactor:   sf,
											CPUs:         cpus,
											Variant:      v,
											Selection:    sel,
											Order:        ord,
											Reservations: res,
											CapFrac:      capf,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Resolver materializes Points into compiled scenarios (or legacy
// runner.Specs): it owns workload loading and the gear/power model shared
// by every cell of a sweep. With neither a Trace nor a Source loader set,
// Scenario resolves workload names through the scenario layer's shared
// arena cache — SWF logs parse once, presets generate or stream once —
// while the legacy Spec method still requires an explicit loader.
type Resolver struct {
	// Trace loads a workload by name. Optional: without it (and without
	// Source) the Scenario method resolves names through the scenario
	// compiler instead.
	Trace func(name string) (*workload.Trace, error)
	// Source, when set, takes precedence over Trace and loads the
	// workload as a streaming source instead. It is invoked once per grid
	// cell and must return an INDEPENDENT source each call: concurrent
	// pool workers each own their cell's cursor, so runs never share
	// mutable workload state (where Trace-based sweeps hand every worker
	// the same materialized slice). With a generating source
	// (wgen.Stream) workers regenerate on the fly and a sweep's memory
	// stays O(workers · running jobs) instead of O(trace).
	Source func(name string) (workload.JobSource, error)
	// Gears is the DVFS gear set (nil → paper gear set).
	Gears dvfs.GearSet
	// Beta is the β of the execution time model (0 → runner.DefaultBeta).
	Beta float64
	// KeepCollector retains per-job records in every outcome.
	KeepCollector bool

	// Jobs, SWFCPUs, Filter and Materialize parameterize name-based
	// workload resolution (loader-less Scenario calls only): they are the
	// scenario.Spec fields of the same names.
	Jobs        int
	SWFCPUs     int
	Filter      workload.SWFFilter
	Materialize bool

	// comp is the shared scenario compiler: every cell of the sweep
	// resolves workloads through one arena cache.
	comp scenario.Compiler
}

// gears returns the effective gear set.
func (r *Resolver) gears() dvfs.GearSet {
	if r.Gears != nil {
		return r.Gears
	}
	return dvfs.PaperGearSet()
}

// beta returns the effective dilation exponent.
func (r *Resolver) beta() float64 {
	if r.Beta != 0 {
		return r.Beta
	}
	return runner.DefaultBeta
}

// Spec resolves one grid point into a runnable spec. With a Source
// loader every call builds a fresh, independent source, so the returned
// specs can execute concurrently.
func (r *Resolver) Spec(p Point) (runner.Spec, error) {
	var (
		tr  *workload.Trace
		src workload.JobSource
		err error
	)
	switch {
	case r.Source != nil:
		src, err = r.Source(p.Trace)
	case r.Trace != nil:
		tr, err = r.Trace(p.Trace)
	default:
		return runner.Spec{}, fmt.Errorf("sweep: resolver has no trace loader")
	}
	if err != nil {
		return runner.Spec{}, fmt.Errorf("sweep: trace %q: %w", p.Trace, err)
	}
	variant, err := sched.ParseVariant(p.Variant)
	if err != nil {
		return runner.Spec{}, err
	}
	selection, err := cluster.ParseSelection(p.Selection)
	if err != nil {
		return runner.Spec{}, err
	}
	order, err := sched.ParseOrder(p.Order)
	if err != nil {
		return runner.Spec{}, err
	}
	spec := runner.Spec{
		Trace:         tr,
		Source:        src,
		SizeFactor:    p.SizeFactor,
		CPUs:          p.CPUs,
		Variant:       variant,
		Selection:     selection,
		Order:         order,
		Reservations:  p.Reservations,
		Gears:         r.Gears,
		Beta:          r.Beta,
		KeepCollector: r.KeepCollector,
	}
	if p.CapFrac > 0 {
		spec.Controller = scenario.ControllerConfig{CapFrac: p.CapFrac}
	}
	if !p.Policy.Baseline() {
		gears := r.gears()
		pol, err := core.NewPolicy(core.Params{
			BSLDThreshold: p.Policy.BSLDThr,
			WQThreshold:   p.Policy.WQThr,
			Boost:         p.Policy.Boost,
			BoostWQ:       p.Policy.BoostWQ,
		}, gears, dvfs.NewTimeModel(r.beta(), gears))
		if err != nil {
			return runner.Spec{}, fmt.Errorf("sweep: point %s: %w", p.Label(), err)
		}
		spec.Policy = pol
	}
	return spec, nil
}

// Scenario compiles one grid point into an immutable scenario through
// the resolver's shared compiler. A custom Trace loader feeds the
// compiled scenario a shared arena; a custom Source loader becomes the
// scenario's per-execution factory; with neither, the workload name
// resolves through the compiler's own arena cache (parameterized by the
// resolver's Jobs/SWFCPUs/Filter/Materialize), so every cell over the
// same workload shares one parse/generation.
func (r *Resolver) Scenario(p Point) (*scenario.Scenario, error) {
	ss := scenario.Spec{
		Policy:        p.Policy,
		SizeFactor:    p.SizeFactor,
		CPUs:          p.CPUs,
		Variant:       p.Variant,
		Selection:     p.Selection,
		Order:         p.Order,
		Reservations:  p.Reservations,
		Gears:         r.Gears,
		KeepCollector: r.KeepCollector,
	}
	if p.CapFrac > 0 {
		ss.Controller = scenario.ControllerConfig{CapFrac: p.CapFrac}
	}
	if r.Beta != 0 {
		beta := r.Beta
		ss.Beta = &beta
	}
	switch {
	case r.Source != nil:
		load, name := r.Source, p.Trace
		ss.Factory = func() (workload.JobSource, error) { return load(name) }
	case r.Trace != nil:
		tr, err := r.Trace(p.Trace)
		if err != nil {
			return nil, fmt.Errorf("sweep: trace %q: %w", p.Trace, err)
		}
		ss.Trace = tr
	default:
		ss.Workload = p.Trace
		ss.Jobs = r.Jobs
		ss.SWFCPUs = r.SWFCPUs
		ss.Filter = r.Filter
		ss.Materialize = r.Materialize
	}
	sc, err := r.comp.Compile(ss)
	if err != nil {
		return nil, fmt.Errorf("sweep: point %s: %w", p.Label(), err)
	}
	return sc, nil
}
