package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// Run pairs a grid point with its resolved work, ready for execution: a
// compiled scenario (preferred — Sweep produces these), or a legacy
// runner.Spec when Scenario is nil.
type Run struct {
	Point    Point
	Scenario *scenario.Scenario
	Spec     runner.Spec
}

// Result is one executed cell. Err carries the per-run failure (or the
// context error for runs skipped after cancellation); Outcome is only
// meaningful when Err is nil.
type Result struct {
	Point   Point
	Outcome runner.Outcome
	Err     error
}

// Pool executes runs across a fixed set of worker goroutines. The zero
// value is ready to use and sizes itself to runtime.NumCPU().
type Pool struct {
	// Workers is the goroutine count; <= 0 selects runtime.NumCPU().
	Workers int
	// OnProgress, when set, observes each completed run. Calls are
	// serialized and done increases by one per call, but completion
	// order (which cell finishes when) is nondeterministic — only the
	// final result slice is ordered.
	OnProgress func(done, total int, r Result)
}

// workerCount resolves the effective parallelism for n runs.
func (p *Pool) workerCount(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Execute runs every item and returns results in input order, regardless
// of worker count or finish order: slot i always holds runs[i]'s result.
// Per-run simulation errors are captured in Result.Err and do not stop the
// sweep. Canceling ctx stops dispatching promptly; runs not yet started
// get ctx's error. The context error is surfaced as Execute's own error
// only when at least one run was actually skipped — a cancellation that
// loses the race against completion leaves a fully valid result set, and
// callers must not be made to discard it.
func (p *Pool) Execute(ctx context.Context, runs []Run) ([]Result, error) {
	results := make([]Result, len(runs))
	if len(runs) == 0 {
		return results, nil
	}
	var (
		next    int64 = -1
		done    int64
		skipped int64
		mu      sync.Mutex // serializes OnProgress
		wg      sync.WaitGroup
	)
	for w := p.workerCount(len(runs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(runs) {
					return
				}
				r := Result{Point: runs[i].Point}
				if err := ctx.Err(); err != nil {
					r.Err = err
					atomic.AddInt64(&skipped, 1)
				} else if sc := runs[i].Scenario; sc != nil {
					r.Outcome, r.Err = sc.Execute()
				} else {
					r.Outcome, r.Err = runner.Run(runs[i].Spec)
				}
				results[i] = r
				if p.OnProgress != nil {
					mu.Lock()
					p.OnProgress(int(atomic.AddInt64(&done, 1)), len(runs), r)
					mu.Unlock()
				} else {
					atomic.AddInt64(&done, 1)
				}
			}
		}()
	}
	wg.Wait()
	if atomic.LoadInt64(&skipped) > 0 {
		return results, ctx.Err()
	}
	return results, nil
}

// ForEach applies fn to every index in [0, n) across the pool's workers,
// stopping early on the first error or context cancellation. When several
// indices fail concurrently, the error of the smallest index is returned,
// so the reported failure does not depend on goroutine scheduling.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next   int64 = -1
		mu     sync.Mutex
		errIdx = n
		first  error
		wg     sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := p.workerCount(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return context.Cause(ctx)
}

// Sweep expands the grid, compiles every point into a scenario through
// the resolver's shared compiler and executes the runs on the pool (a nil
// pool runs with defaults). Grid axis problems and workload
// loading/compilation failures abort before any simulation starts;
// simulation errors are captured per result.
func Sweep(ctx context.Context, g Grid, r *Resolver, p *Pool) ([]Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	pts := g.Points()
	runs := make([]Run, len(pts))
	for i, pt := range pts {
		sc, err := r.Scenario(pt)
		if err != nil {
			return nil, err
		}
		runs[i] = Run{Point: pt, Scenario: sc}
	}
	if p == nil {
		p = &Pool{}
	}
	return p.Execute(ctx, runs)
}

// CachedLoader wraps a trace loader so each distinct name is loaded once.
// The returned function is safe for concurrent use.
func CachedLoader(load func(name string) (*workload.Trace, error)) func(name string) (*workload.Trace, error) {
	var mu sync.Mutex
	cache := make(map[string]*workload.Trace)
	return func(name string) (*workload.Trace, error) {
		mu.Lock()
		defer mu.Unlock()
		if tr, ok := cache[name]; ok {
			return tr, nil
		}
		tr, err := load(name)
		if err != nil {
			return nil, err
		}
		cache[name] = tr
		return tr, nil
	}
}
