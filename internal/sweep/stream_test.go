package sweep

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// streamGrid is a small but multi-axis grid for the per-run source tests.
func streamGrid() Grid {
	return Grid{
		Traces: []string{"CTC", "SDSCBlue"},
		Policies: []PolicyConfig{
			{},
			{BSLDThr: 2, WQThr: 16},
			{BSLDThr: 3, WQThr: core.NoWQLimit},
		},
		SizeFactors: []float64{1, 1.2},
	}
}

// streamResolver gives every run its own lazily generating source.
func streamResolver(jobs int) *Resolver {
	return &Resolver{Source: func(name string) (workload.JobSource, error) {
		m, err := wgen.Preset(name)
		if err != nil {
			return nil, err
		}
		m.Jobs = jobs
		return wgen.Stream(m)
	}}
}

// traceResolver shares one materialized trace per name across runs (the
// pre-streaming behavior, kept as the reference).
func traceResolver(jobs int) *Resolver {
	return &Resolver{Trace: CachedLoader(func(name string) (*workload.Trace, error) {
		m, err := wgen.Preset(name)
		if err != nil {
			return nil, err
		}
		m.Jobs = jobs
		return wgen.Generate(m)
	})}
}

// TestSweepStreamingSourcesMatchTraces runs the same grid through shared
// materialized traces and through independent per-run streaming sources,
// in parallel, and requires bit-identical results: no cross-run state,
// no worker-count dependence, no drift from the regeneration. Run under
// -race (CI does) this also proves workers never share a source cursor.
func TestSweepStreamingSourcesMatchTraces(t *testing.T) {
	g := streamGrid()
	ctx := context.Background()
	want, err := Sweep(ctx, g, traceResolver(400), &Pool{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		got, err := Sweep(ctx, g, streamResolver(400), &Pool{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, i, got[i].Err)
			}
			if got[i].Outcome.Results != want[i].Outcome.Results {
				t.Fatalf("workers=%d run %d (%s): streamed results differ",
					workers, i, got[i].Point.Label())
			}
		}
	}
}

// TestSweepStreamingRepeatable: executing the same streamed sweep twice
// yields identical results — per-run sources leave no residue (the
// cross-run mutation the shared-slice design risked).
func TestSweepStreamingRepeatable(t *testing.T) {
	g := streamGrid()
	ctx := context.Background()
	r := streamResolver(300)
	first, err := Sweep(ctx, g, r, &Pool{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Sweep(ctx, g, r, &Pool{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Outcome.Results != second[i].Outcome.Results {
			t.Fatalf("run %d (%s) drifted across sweep executions", i, first[i].Point.Label())
		}
	}
}

// TestResolverRequiresLoader keeps the no-loader diagnostic.
func TestResolverRequiresLoader(t *testing.T) {
	r := &Resolver{}
	if _, err := r.Spec(Point{Trace: "CTC"}); err == nil {
		t.Fatal("resolver without loaders built a spec")
	}
}
