package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/wgen"
	"repro/internal/workload"
)

// testLoader generates short preset segments, cached across a test.
func testLoader(jobs int) func(string) (*workload.Trace, error) {
	return CachedLoader(func(name string) (*workload.Trace, error) {
		m, err := wgen.Preset(name)
		if err != nil {
			return nil, err
		}
		m.Jobs = jobs
		return wgen.Generate(m)
	})
}

func TestGridExpansionOrderAndCount(t *testing.T) {
	g := Grid{
		Traces:      []string{"CTC", "SDSC"},
		Policies:    []PolicyConfig{{}, {BSLDThr: 2, WQThr: core.NoWQLimit}},
		SizeFactors: []float64{1, 1.5},
	}
	pts := g.Points()
	if len(pts) != 8 || g.Size() != 8 {
		t.Fatalf("expanded %d points, Size()=%d, want 8", len(pts), g.Size())
	}
	// Canonical nesting: trace outermost, then policy, then size factor.
	want := []string{
		"CTC/noDVFS", "CTC/noDVFS/sf=1.5", "CTC/2/NO", "CTC/2/NO/sf=1.5",
		"SDSC/noDVFS", "SDSC/noDVFS/sf=1.5", "SDSC/2/NO", "SDSC/2/NO/sf=1.5",
	}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
		if p.Label() != want[i] {
			t.Errorf("point %d = %q, want %q", i, p.Label(), want[i])
		}
	}
}

func TestGridDefaultsCollapseEmptyAxes(t *testing.T) {
	g := Grid{Traces: []string{"CTC"}}
	pts := g.Points()
	if len(pts) != 1 {
		t.Fatalf("expanded %d points, want 1", len(pts))
	}
	p := pts[0]
	if !p.Policy.Baseline() || p.SizeFactor != 1 || p.CPUs != 0 ||
		p.Variant != "easy" || p.Selection != "firstfit" || p.Order != "fcfs" ||
		p.Reservations != 0 {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestGridFullCrossProduct(t *testing.T) {
	g := Grid{
		Traces:       []string{"CTC"},
		Policies:     []PolicyConfig{{}, {BSLDThr: 1.5, WQThr: 0}, {BSLDThr: 3, WQThr: 4}},
		SizeFactors:  []float64{1, 1.2},
		CPUs:         []int{0, 512},
		Variants:     []string{"easy", "fcfs"},
		Selections:   []string{"firstfit", "nextfit"},
		Orders:       []string{"fcfs", "sjf"},
		Reservations: []int{0, 2},
	}
	if g.Size() != 3*2*2*2*2*2*2 {
		t.Fatalf("Size = %d, want %d", g.Size(), 3*2*2*2*2*2*2)
	}
	pts := g.Points()
	if len(pts) != g.Size() {
		t.Fatalf("Points len %d != Size %d", len(pts), g.Size())
	}
	// The innermost axis varies fastest.
	if pts[0].Reservations != 0 || pts[1].Reservations != 2 {
		t.Errorf("reservations not innermost: %+v %+v", pts[0], pts[1])
	}
	if pts[0].Trace != "CTC" || pts[len(pts)-1].Trace != "CTC" {
		t.Errorf("trace axis broken")
	}
}

func TestGridValidate(t *testing.T) {
	cases := []struct {
		name string
		grid Grid
		ok   bool
	}{
		{"minimal", Grid{Traces: []string{"CTC"}}, true},
		{"full paper axes", Grid{
			Traces:   []string{"CTC"},
			Policies: []PolicyConfig{{BSLDThr: 2, WQThr: core.NoWQLimit}},
		}, true},
		{"no traces", Grid{}, false},
		{"empty trace name", Grid{Traces: []string{""}}, false},
		{"bsld below 1", Grid{Traces: []string{"CTC"},
			Policies: []PolicyConfig{{BSLDThr: 0.5}}}, false},
		{"negative wq", Grid{Traces: []string{"CTC"},
			Policies: []PolicyConfig{{BSLDThr: 2, WQThr: -1}}}, false},
		{"zero size factor", Grid{Traces: []string{"CTC"},
			SizeFactors: []float64{0}}, false},
		{"negative size factor", Grid{Traces: []string{"CTC"},
			SizeFactors: []float64{-1}}, false},
		{"NaN size factor", Grid{Traces: []string{"CTC"},
			SizeFactors: []float64{math.NaN()}}, false},
		{"negative cpus", Grid{Traces: []string{"CTC"}, CPUs: []int{-4}}, false},
		{"cpus override crossed with size factor", Grid{Traces: []string{"CTC"},
			CPUs: []int{512}, SizeFactors: []float64{1, 1.2}}, false},
		{"cpus override with default size", Grid{Traces: []string{"CTC"},
			CPUs: []int{0, 512}}, true},
		{"unknown variant", Grid{Traces: []string{"CTC"},
			Variants: []string{"sjf"}}, false},
		{"unknown selection", Grid{Traces: []string{"CTC"},
			Selections: []string{"worstfit"}}, false},
		{"unknown order", Grid{Traces: []string{"CTC"},
			Orders: []string{"lifo"}}, false},
		{"negative reservations", Grid{Traces: []string{"CTC"},
			Reservations: []int{-1}}, false},
	}
	for _, tc := range cases {
		err := tc.grid.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid grid accepted", tc.name)
		}
	}
}

// The determinism contract of the subsystem: the same grid produces
// byte-identical results whether it runs on 1, 4 or NumCPU workers.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	g := Grid{
		Traces: []string{"CTC", "SDSC"},
		Policies: []PolicyConfig{
			{},
			{BSLDThr: 2, WQThr: 16},
			{BSLDThr: 3, WQThr: core.NoWQLimit},
		},
		SizeFactors: []float64{1, 1.2},
	}
	resolver := &Resolver{Trace: testLoader(150)}
	encode := func(results []Result) []byte {
		t.Helper()
		type row struct {
			Point   Point
			Results any
			Policy  string
			CPUs    int
			Err     string
		}
		rows := make([]row, len(results))
		for i, r := range results {
			rows[i] = row{Point: r.Point, Results: r.Outcome.Results,
				Policy: r.Outcome.Policy, CPUs: r.Outcome.CPUs}
			if r.Err != nil {
				rows[i].Err = r.Err.Error()
			}
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var reference []byte
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		results, err := Sweep(context.Background(), g, resolver, &Pool{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != g.Size() {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), g.Size())
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d: run %d failed: %v", workers, i, r.Err)
			}
			if r.Point.Index != i {
				t.Fatalf("workers=%d: slot %d holds point %d", workers, i, r.Point.Index)
			}
		}
		got := encode(results)
		if reference == nil {
			reference = got
			continue
		}
		if string(got) != string(reference) {
			t.Errorf("workers=%d: results differ from 1-worker sweep", workers)
		}
	}
}

// Cancellation must stop dispatching promptly, mark undone runs with the
// context error, and leave no worker goroutines behind.
func TestPoolCancellationPromptNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	loader := testLoader(300)
	tr, err := loader("CTC")
	if err != nil {
		t.Fatal(err)
	}
	runs := make([]Run, 64)
	for i := range runs {
		runs[i] = Run{Point: Point{Index: i, Trace: "CTC"}, Spec: runner.Spec{Trace: tr}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool := &Pool{Workers: 2}
	var fired int32
	pool.OnProgress = func(done, total int, r Result) {
		if atomic.AddInt32(&fired, 1) == 1 {
			cancel()
		}
	}
	start := time.Now()
	results, err := pool.Execute(ctx, runs)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Execute error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation not prompt: took %v", elapsed)
	}
	completed, skipped := 0, 0
	for i, r := range results {
		if r.Point.Index != i {
			t.Fatalf("slot %d holds point %d", i, r.Point.Index)
		}
		switch {
		case r.Err == nil:
			completed++
		case errors.Is(r.Err, context.Canceled):
			skipped++
		default:
			t.Fatalf("run %d: unexpected error %v", i, r.Err)
		}
	}
	if completed == 0 {
		t.Error("no run completed before cancel")
	}
	if skipped == 0 {
		t.Error("cancellation skipped no runs (cancel came too late to test anything)")
	}
	// All worker goroutines must exit once Execute returns.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, now)
	}
}

func TestPoolPerRunErrorCapture(t *testing.T) {
	loader := testLoader(100)
	tr, err := loader("CTC")
	if err != nil {
		t.Fatal(err)
	}
	runs := []Run{
		{Point: Point{Index: 0}, Spec: runner.Spec{Trace: tr}},
		{Point: Point{Index: 1}, Spec: runner.Spec{}}, // nil trace: must fail
		{Point: Point{Index: 2}, Spec: runner.Spec{Trace: tr}},
	}
	results, err := (&Pool{Workers: 3}).Execute(context.Background(), runs)
	if err != nil {
		t.Fatalf("Execute error = %v; per-run failures must not abort the sweep", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy runs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("nil-trace run reported no error")
	}
	if !reflect.DeepEqual(results[0].Outcome.Results, results[2].Outcome.Results) {
		t.Error("identical specs produced different results")
	}
}

func TestForEachReportsSmallestFailingIndex(t *testing.T) {
	// Many indices fail; the reported one must be the smallest regardless
	// of which worker hits its error first.
	for trial := 0; trial < 20; trial++ {
		err := (&Pool{Workers: 8}).ForEach(context.Background(), 100, func(i int) error {
			if i >= 3 {
				return fmt.Errorf("fail(%d)", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail(3)" {
			t.Fatalf("trial %d: err = %v, want fail(3)", trial, err)
		}
	}
}

func TestForEachStopsEarly(t *testing.T) {
	var calls int32
	sentinel := errors.New("boom")
	err := (&Pool{Workers: 1}).ForEach(context.Background(), 1000, func(i int) error {
		atomic.AddInt32(&calls, 1)
		if i == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n := atomic.LoadInt32(&calls); n > 7 {
		t.Errorf("ForEach kept going after the error: %d calls", n)
	}
}

func TestForEachEmptyAndCompletes(t *testing.T) {
	if err := (&Pool{}).ForEach(context.Background(), 0, func(int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Errorf("n=0 err = %v", err)
	}
	var sum int64
	if err := (&Pool{Workers: 4}).ForEach(context.Background(), 100, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 99*100/2 {
		t.Errorf("indices not covered exactly once: sum = %d", sum)
	}
}

func TestProgressCallbackSequence(t *testing.T) {
	loader := testLoader(100)
	tr, err := loader("CTC")
	if err != nil {
		t.Fatal(err)
	}
	runs := make([]Run, 10)
	for i := range runs {
		runs[i] = Run{Point: Point{Index: i}, Spec: runner.Spec{Trace: tr}}
	}
	var seen []int
	pool := &Pool{Workers: 4, OnProgress: func(done, total int, r Result) {
		// Calls are serialized by the pool, so no locking needed here.
		if total != len(runs) {
			t.Errorf("total = %d, want %d", total, len(runs))
		}
		seen = append(seen, done)
	}}
	if _, err := pool.Execute(context.Background(), runs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(runs) {
		t.Fatalf("%d progress calls, want %d", len(seen), len(runs))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("done sequence %v not 1..%d", seen, len(runs))
		}
	}
}

func TestCachedLoaderLoadsOnce(t *testing.T) {
	var loads int32
	load := CachedLoader(func(name string) (*workload.Trace, error) {
		atomic.AddInt32(&loads, 1)
		if name == "bad" {
			return nil, errors.New("no such trace")
		}
		return &workload.Trace{Name: name, CPUs: 1}, nil
	})
	a, err := load("CTC")
	if err != nil {
		t.Fatal(err)
	}
	b, err := load("CTC")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache returned distinct traces")
	}
	if loads != 1 {
		t.Errorf("loaded %d times, want 1", loads)
	}
	// Errors are not cached.
	if _, err := load("bad"); err == nil {
		t.Error("error swallowed")
	}
	if _, err := load("bad"); err == nil {
		t.Error("error swallowed on retry")
	}
	if loads != 3 {
		t.Errorf("loads = %d, want 3", loads)
	}
}

func TestResolverSpecBuildsPolicy(t *testing.T) {
	r := &Resolver{Trace: testLoader(100)}
	base, err := r.Spec(Point{Trace: "CTC", SizeFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Policy != nil {
		t.Error("baseline point resolved with a gear policy")
	}
	pol, err := r.Spec(Point{Trace: "CTC", SizeFactor: 1,
		Policy: PolicyConfig{BSLDThr: 2, WQThr: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if pol.Policy == nil {
		t.Fatal("policy point resolved without a gear policy")
	}
	if _, err := r.Spec(Point{Trace: "nosuch", SizeFactor: 1}); err == nil {
		t.Error("unknown trace accepted")
	}
	if _, err := r.Spec(Point{Trace: "CTC", SizeFactor: 1, Variant: "bogus"}); err == nil {
		t.Error("bogus variant accepted")
	}
}

// A sweep through runner.BaselinePair semantics: the grid's baseline cell
// must equal what BaselinePair computes as the denominator run.
func TestSweepBaselineMatchesBaselinePair(t *testing.T) {
	r := &Resolver{Trace: testLoader(150)}
	spec, err := r.Spec(Point{Trace: "SDSC", SizeFactor: 1,
		Policy: PolicyConfig{BSLDThr: 2, WQThr: core.NoWQLimit}})
	if err != nil {
		t.Fatal(err)
	}
	withPol, base, err := runner.BaselinePair(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{
		Traces:   []string{"SDSC"},
		Policies: []PolicyConfig{{}, {BSLDThr: 2, WQThr: core.NoWQLimit}},
	}
	results, err := Sweep(context.Background(), g, r, &Pool{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Outcome.Results != base.Results {
		t.Error("grid baseline cell differs from BaselinePair baseline")
	}
	if results[1].Outcome.Results != withPol.Results {
		t.Error("grid policy cell differs from BaselinePair policy run")
	}
}

// Regression: a cancellation that arrives only after every run has
// completed must not surface the context error — the result set is fully
// valid and callers would otherwise discard it.
func TestPoolLateCancellationKeepsResults(t *testing.T) {
	loader := testLoader(40)
	tr, err := loader("CTC")
	if err != nil {
		t.Fatal(err)
	}
	runs := make([]Run, 6)
	for i := range runs {
		runs[i] = Run{Point: Point{Index: i, Trace: "CTC"}, Spec: runner.Spec{Trace: tr}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := &Pool{Workers: 1}
	pool.OnProgress = func(done, total int, r Result) {
		if done == total {
			// Cancel while the last result is being reported: every run
			// has already executed, none can be skipped.
			cancel()
		}
	}
	results, err := pool.Execute(ctx, runs)
	if err != nil {
		t.Fatalf("Execute returned %v for a fully completed sweep", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d carries error %v, want none", i, r.Err)
		}
	}
	// And an empty sweep over an already-canceled context is not an error.
	canceled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := pool.Execute(canceled, nil); err != nil {
		t.Fatalf("empty Execute returned %v, want nil", err)
	}
}
