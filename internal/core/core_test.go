package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

func testPolicy(t *testing.T, params Params) *Policy {
	t.Helper()
	gears := dvfs.PaperGearSet()
	p, err := NewPolicy(params, gears, dvfs.NewTimeModel(0.5, gears))
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	return p
}

func job(reqTime float64) *workload.Job {
	return &workload.Job{ID: 1, Submit: 0, Runtime: reqTime, Procs: 4, ReqTime: reqTime, Beta: -1}
}

func TestPredictedBSLDFormula(t *testing.T) {
	// (wait + rq*coef) / max(th, rq), floored at 1.
	cases := []struct {
		wait, rq, coef, th, want float64
	}{
		{0, 3600, 1, 600, 1},           // no wait, no dilation
		{3600, 3600, 1, 600, 2},        // wait = runtime
		{0, 3600, 1.9375, 600, 1.9375}, // pure dilation
		{0, 100, 1, 600, 1},            // short job clamped
		{1100, 100, 1, 600, 2},         // (1100+100)/600
		{0, 100, 2, 600, 1},            // short dilated job still clamped: 200/600 < 1
	}
	for _, c := range cases {
		if got := PredictedBSLD(c.wait, c.rq, c.coef, c.th); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PredictedBSLD(%v,%v,%v,%v) = %v, want %v", c.wait, c.rq, c.coef, c.th, got, c.want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{BSLDThreshold: 0.5, WQThreshold: 0},
		{BSLDThreshold: 2, WQThreshold: -1},
		{BSLDThreshold: 2, WQThreshold: 0, ShortJobThreshold: -1},
	}
	for i, p := range bad {
		if err := p.WithDefaults().Validate(); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
	if err := (Params{BSLDThreshold: 2, WQThreshold: 4}).WithDefaults().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestDefaults(t *testing.T) {
	p := (Params{BSLDThreshold: 2}).WithDefaults()
	if p.ShortJobThreshold != DefaultShortJobThreshold {
		t.Errorf("default Th = %v, want %v", p.ShortJobThreshold, DefaultShortJobThreshold)
	}
}

func TestName(t *testing.T) {
	p := testPolicy(t, Params{BSLDThreshold: 2, WQThreshold: 16})
	if p.Name() != "bsld(2,16)" {
		t.Errorf("Name = %q", p.Name())
	}
	p = testPolicy(t, Params{BSLDThreshold: 1.5, WQThreshold: NoWQLimit})
	if p.Name() != "bsld(1.5,NO)" {
		t.Errorf("Name = %q", p.Name())
	}
}

// With no wait and a long job, the lowest gear's dilation alone decides:
// Coef(0.8GHz)=1.9375 -> pred 1.9375. Threshold 2 admits the lowest gear;
// threshold 1.5 must climb to a faster gear.
func TestReserveGearPicksLowestPassingGear(t *testing.T) {
	j := job(7200)
	loose := testPolicy(t, Params{BSLDThreshold: 2, WQThreshold: NoWQLimit})
	if g := loose.ReserveGear(j, 0, 0, 0); g.Freq != 0.8 {
		t.Errorf("threshold 2: gear %v, want 0.8GHz", g)
	}
	tight := testPolicy(t, Params{BSLDThreshold: 1.5, WQThreshold: NoWQLimit})
	// Coef(1.1)=0.5*(2.3/1.1-1)+1 ≈ 1.545 -> fails 1.5; Coef(1.4) ≈ 1.321 -> passes.
	if g := tight.ReserveGear(j, 0, 0, 0); g.Freq != 1.4 {
		t.Errorf("threshold 1.5: gear %v, want 1.4GHz", g)
	}
}

func TestReserveGearWaitRaisesGear(t *testing.T) {
	p := testPolicy(t, Params{BSLDThreshold: 2, WQThreshold: NoWQLimit})
	j := job(7200)
	// Started immediately: lowest gear passes (pred 1.9375 < 2).
	if g := p.ReserveGear(j, 0, 0, 0); g.Freq != 0.8 {
		t.Errorf("no wait: %v", g)
	}
	// A start 7200 s after submit adds wait/rq = 1 to the prediction, so
	// even the top gear predicts 2: nothing passes, fall back to Ftop.
	if g := p.ReserveGear(j, 7200, 7200, 0); g.Freq != 2.3 {
		t.Errorf("long wait: %v, want Ftop fallback", g)
	}
}

func TestReserveGearWQGate(t *testing.T) {
	p := testPolicy(t, Params{BSLDThreshold: 3, WQThreshold: 4})
	j := job(7200)
	if g := p.ReserveGear(j, 0, 0, 4); g.Freq != 0.8 {
		t.Errorf("wq=4 at threshold 4: %v, want reduced gear", g)
	}
	if g := p.ReserveGear(j, 0, 0, 5); g.Freq != 2.3 {
		t.Errorf("wq=5 above threshold 4: %v, want Ftop", g)
	}
}

func TestReserveGearWQZero(t *testing.T) {
	// "0 means no DVFS will be applied if there is a job waiting".
	p := testPolicy(t, Params{BSLDThreshold: 3, WQThreshold: 0})
	j := job(7200)
	if g := p.ReserveGear(j, 0, 0, 0); g.Freq != 0.8 {
		t.Errorf("empty queue: %v, want reduced", g)
	}
	if g := p.ReserveGear(j, 0, 0, 1); g.Freq != 2.3 {
		t.Errorf("one waiting job: %v, want Ftop", g)
	}
}

func TestShortJobsAlwaysReduced(t *testing.T) {
	// A job below Th has predicted BSLD 1 at every gear as long as
	// wait+dilated time stays under Th, so the lowest gear always wins.
	p := testPolicy(t, Params{BSLDThreshold: 1.5, WQThreshold: NoWQLimit})
	j := job(100)
	if g := p.ReserveGear(j, 0, 0, 0); g.Freq != 0.8 {
		t.Errorf("short job gear = %v, want lowest", g)
	}
}

func allFeasible(dvfs.Gear) bool  { return true }
func noneFeasible(dvfs.Gear) bool { return false }

func TestBackfillGearPicksLowestFeasiblePassing(t *testing.T) {
	p := testPolicy(t, Params{BSLDThreshold: 2, WQThreshold: NoWQLimit})
	j := job(7200)
	g, ok := p.BackfillGear(j, 0, 0, allFeasible)
	if !ok || g.Freq != 0.8 {
		t.Errorf("backfill = %v,%v, want 0.8GHz", g, ok)
	}
	// Low gears infeasible (would violate the reservation): the policy
	// climbs until both feasibility and BSLD pass.
	onlyFast := func(g dvfs.Gear) bool { return g.Freq >= 1.7 }
	g, ok = p.BackfillGear(j, 0, 0, onlyFast)
	if !ok || g.Freq != 1.7 {
		t.Errorf("backfill = %v,%v, want 1.7GHz", g, ok)
	}
}

func TestBackfillGearInfeasibleEverywhere(t *testing.T) {
	p := testPolicy(t, Params{BSLDThreshold: 2, WQThreshold: NoWQLimit})
	if _, ok := p.BackfillGear(job(7200), 0, 0, noneFeasible); ok {
		t.Error("backfill accepted with no feasible gear")
	}
}

func TestBackfillLenientTopFallback(t *testing.T) {
	// Wait long enough that even the top gear fails the BSLD test.
	j := job(7200)
	wait := 4 * 7200.0 // pred at top = (wait+rq)/rq = 5 > 3
	lenient := testPolicy(t, Params{BSLDThreshold: 3, WQThreshold: NoWQLimit})
	g, ok := lenient.BackfillGear(j, wait, 0, allFeasible)
	if !ok || g.Freq != 2.3 {
		t.Errorf("lenient fallback = %v,%v, want Ftop accepted", g, ok)
	}
	strict := testPolicy(t, Params{BSLDThreshold: 3, WQThreshold: NoWQLimit, StrictBackfillBSLD: true})
	if _, ok := strict.BackfillGear(j, wait, 0, allFeasible); ok {
		t.Error("strict mode backfilled a job whose BSLD exceeds the threshold at Ftop")
	}
}

func TestBackfillWQGateRestrictsToTop(t *testing.T) {
	p := testPolicy(t, Params{BSLDThreshold: 3, WQThreshold: 0})
	j := job(7200)
	g, ok := p.BackfillGear(j, 0, 1, allFeasible)
	if !ok || g.Freq != 2.3 {
		t.Errorf("backfill above WQ gate = %v,%v, want Ftop", g, ok)
	}
}

// End-to-end: the policy inside the EASY engine reduces an isolated job
// and leaves a saturated system at the top gear.
func TestPolicyInsideEASY(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pol := testPolicy(t, Params{BSLDThreshold: 2, WQThreshold: 0})
	rec := &captureRecorder{}
	sys, err := sched.New(sched.Config{
		CPUs: 4, Gears: gears, TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy: pol, Variant: sched.EASY, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "t", CPUs: 4, Jobs: []*workload.Job{
		{ID: 1, Submit: 0, Runtime: 7200, Procs: 4, ReqTime: 7200, Beta: -1},
		{ID: 2, Submit: 10, Runtime: 7200, Procs: 4, ReqTime: 7200, Beta: -1},
	}}
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	// Job 1 arrived into an empty system: reduced (pred 1.9375 < 2).
	if g := rec.gears[1]; g.Freq != 0.8 {
		t.Errorf("job 1 gear = %v, want 0.8GHz", g)
	}
	// Job 2 had to wait roughly one dilated runtime: prediction fails at
	// every gear, so it runs at Ftop.
	if g := rec.gears[2]; g.Freq != 2.3 {
		t.Errorf("job 2 gear = %v, want Ftop", g)
	}
}

type captureRecorder struct {
	gears map[int]dvfs.Gear // gear at start
	final map[int]dvfs.Gear // gear at completion
}

func (c *captureRecorder) JobStarted(rs *sched.RunState, now float64) {
	if c.gears == nil {
		c.gears = map[int]dvfs.Gear{}
	}
	c.gears[rs.Job.ID] = rs.Gear
}

func (c *captureRecorder) JobFinished(rs *sched.RunState, now float64) {
	if c.final == nil {
		c.final = map[int]dvfs.Gear{}
	}
	c.final[rs.Job.ID] = rs.Gear
}

// Property: PredictedBSLD >= 1 always, and is monotone in wait and coef.
func TestQuickPredictedBSLDProperties(t *testing.T) {
	f := func(w1, w2, rq, c1, c2 uint16) bool {
		wait1, wait2 := float64(w1), float64(w1)+float64(w2)
		req := float64(rq) + 1
		coef1 := 1 + float64(c1)/1000
		coef2 := coef1 + float64(c2)/1000
		th := 600.0
		a := PredictedBSLD(wait1, req, coef1, th)
		b := PredictedBSLD(wait2, req, coef1, th)
		c := PredictedBSLD(wait1, req, coef2, th)
		return a >= 1 && b >= a && c >= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ReserveGear returns a gear from the set, and a higher
// BSLD threshold never yields a higher frequency (more permissive
// thresholds allow lower gears) for identical inputs.
func TestQuickReserveGearMonotoneInThreshold(t *testing.T) {
	gears := dvfs.PaperGearSet()
	tm := dvfs.NewTimeModel(0.5, gears)
	f := func(rqRaw, waitRaw uint16, t1Raw, t2Raw uint8) bool {
		rq := float64(rqRaw) + 1
		wait := float64(waitRaw)
		th1 := 1 + float64(t1Raw)/32
		th2 := th1 + float64(t2Raw)/32
		p1, err1 := NewPolicy(Params{BSLDThreshold: th1, WQThreshold: NoWQLimit}, gears, tm)
		p2, err2 := NewPolicy(Params{BSLDThreshold: th2, WQThreshold: NoWQLimit}, gears, tm)
		if err1 != nil || err2 != nil {
			return false
		}
		j := &workload.Job{ID: 1, Submit: 0, Runtime: rq, Procs: 1, ReqTime: rq, Beta: -1}
		g1 := p1.ReserveGear(j, wait, wait, 0)
		g2 := p2.ReserveGear(j, wait, wait, 0)
		if gears.Index(g1) < 0 || gears.Index(g2) < 0 {
			return false
		}
		// Exception: the Ftop fallback of a tight threshold can sit above
		// a loose threshold's reduced gear; but a looser threshold must
		// never force a *higher* gear when the tight one accepted reduced.
		if gears.Index(g1) != len(gears)-1 && gears.Index(g2) > gears.Index(g1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParamsAccessorAndDefaults(t *testing.T) {
	p := testPolicy(t, Params{BSLDThreshold: 2, WQThreshold: 4})
	got := p.Params()
	if got.BSLDThreshold != 2 || got.WQThreshold != 4 {
		t.Errorf("Params = %+v", got)
	}
	if got.ShortJobThreshold != DefaultShortJobThreshold {
		t.Errorf("defaults not applied: %v", got.ShortJobThreshold)
	}
}

// The boost extension through the full engine: a reduced running job is
// raised to Ftop once the queue exceeds BoostWQ.
func TestBoostThroughEngine(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pol := testPolicy(t, Params{BSLDThreshold: 2, WQThreshold: core0(), Boost: true, BoostWQ: 0})
	rec := &captureRecorder{}
	sys, err := sched.New(sched.Config{
		CPUs: 4, Gears: gears, TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy: pol, Variant: sched.EASY, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Name: "b", CPUs: 4, Jobs: []*workload.Job{
		{ID: 1, Submit: 0, Runtime: 3600, Procs: 4, ReqTime: 3600, Beta: -1},
		{ID: 2, Submit: 100, Runtime: 100, Procs: 4, ReqTime: 100, Beta: -1},
	}}
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	// Job 1 started reduced (empty system, pred 1.94 < 2) but finished at
	// the top gear: the arrival of job 2 triggered the boost.
	if g := rec.gears[1]; g.Freq != 0.8 {
		t.Fatalf("job 1 start gear = %v, want 0.8GHz", g)
	}
	if g := rec.final[1]; g.Freq != 2.3 {
		t.Errorf("job 1 final gear = %v, want boosted to 2.3GHz", g)
	}
}

// core0 returns NoWQLimit without colliding with the package constant in
// expressions above (keeps the literal table readable).
func core0() int { return NoWQLimit }
