package core

import (
	"testing"

	"repro/internal/dvfs"
	"repro/internal/workload"
)

// BenchmarkReserveGear measures the per-decision cost of the frequency
// loop in MakeJobReservation; it runs on every job start.
func BenchmarkReserveGear(b *testing.B) {
	gears := dvfs.PaperGearSet()
	p, err := NewPolicy(Params{BSLDThreshold: 2, WQThreshold: NoWQLimit},
		gears, dvfs.NewTimeModel(0.5, gears))
	if err != nil {
		b.Fatal(err)
	}
	j := &workload.Job{ID: 1, Submit: 0, Runtime: 3600, Procs: 16, ReqTime: 7200, Beta: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ReserveGear(j, float64(i%10000), float64(i%10000), i%8)
	}
}

// BenchmarkBackfillGear measures the backfill decision including the
// feasibility callback, the scheduler's inner-loop hot path.
func BenchmarkBackfillGear(b *testing.B) {
	gears := dvfs.PaperGearSet()
	p, err := NewPolicy(Params{BSLDThreshold: 2, WQThreshold: NoWQLimit},
		gears, dvfs.NewTimeModel(0.5, gears))
	if err != nil {
		b.Fatal(err)
	}
	j := &workload.Job{ID: 1, Submit: 0, Runtime: 3600, Procs: 16, ReqTime: 7200, Beta: -1}
	feasible := func(g dvfs.Gear) bool { return g.Freq >= 1.4 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.BackfillGear(j, float64(i%10000), i%8, feasible)
	}
}
