// Package core implements the paper's contribution: the BSLD-threshold
// driven CPU frequency assignment algorithm integrated into parallel job
// scheduling (Figures 1 and 2 of Etinski et al. 2010).
//
// A job is scheduled at the lowest gear whose *predicted bounded slowdown*
//
//	PredBSLD = max( (WT + RQ·Coef(f)) / max(Th, RQ), 1 )        (eq. 2)
//
// stays below BSLDThreshold, and reduced gears are considered only while
// at most WQThreshold other jobs wait in the queue. The policy plugs into
// the EASY backfilling engine of internal/sched through the
// sched.GearPolicy interface; it works with any base scheduling policy, as
// the paper notes.
package core

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// NoWQLimit disables the wait-queue gate: frequency is assigned purely on
// predicted BSLD ("NO LIMIT" in the paper's experiments).
const NoWQLimit = math.MaxInt32

// DefaultShortJobThreshold is Th in the BSLD formula: jobs shorter than
// this do not inflate slowdowns (600 s in the paper: "HPC jobs shorter
// than 10 minutes can be assumed to be very short jobs").
const DefaultShortJobThreshold = 600.0

// Params are the tunables of the frequency assignment algorithm.
type Params struct {
	// BSLDThreshold is the predicted-BSLD bound a reduced gear must keep
	// (1.5, 2 and 3 in the paper).
	BSLDThreshold float64
	// WQThreshold is the largest number of other waiting jobs that still
	// allows frequency reduction (0, 4, 16 or NoWQLimit in the paper).
	WQThreshold int
	// ShortJobThreshold is Th of eq. (2); DefaultShortJobThreshold if zero.
	ShortJobThreshold float64
	// StrictBackfillBSLD selects the literal Figure 2 pseudo-code, which
	// requires the BSLD test to pass even at the top gear for a backfill.
	// The default (false) gates only reduced gears, which matches the
	// wait-time behaviour of Table 3 (see DESIGN.md).
	StrictBackfillBSLD bool
	// Boost enables the paper's future-work extension: after every
	// scheduling pass, if more than BoostWQ jobs wait, all running
	// reduced jobs are raised to the top gear.
	Boost   bool
	BoostWQ int
}

// WithDefaults fills unset fields.
func (p Params) WithDefaults() Params {
	if p.ShortJobThreshold == 0 {
		p.ShortJobThreshold = DefaultShortJobThreshold
	}
	return p
}

// Validate reports the first problem with the parameters.
func (p Params) Validate() error {
	if p.BSLDThreshold < 1 {
		return fmt.Errorf("core: BSLDThreshold %v < 1 can never accept a reduced gear", p.BSLDThreshold)
	}
	if p.WQThreshold < 0 {
		return fmt.Errorf("core: negative WQThreshold %d", p.WQThreshold)
	}
	if p.ShortJobThreshold < 0 {
		return fmt.Errorf("core: negative ShortJobThreshold %v", p.ShortJobThreshold)
	}
	if p.Boost && p.BoostWQ < 0 {
		return fmt.Errorf("core: negative BoostWQ %d with Boost enabled", p.BoostWQ)
	}
	return nil
}

// PredictedBSLD evaluates eq. (2): the bounded slowdown a job would see
// with the given wait time if it runs for reqTime·coef seconds, bounded
// below by 1 and with short jobs clamped by th.
func PredictedBSLD(wait, reqTime, coef, th float64) float64 {
	denom := math.Max(th, reqTime)
	v := (wait + reqTime*coef) / denom
	if v < 1 {
		return 1
	}
	return v
}

// Policy is the frequency assignment algorithm as a sched.GearPolicy.
type Policy struct {
	params Params
	gears  dvfs.GearSet
	tm     dvfs.TimeModel
}

var _ sched.GearPolicy = (*Policy)(nil)
var _ sched.EstMonotonePolicy = (*Policy)(nil)

// EstMonotone implements sched.EstMonotonePolicy: ReserveGear iterates
// gears from the lowest frequency and picks the first whose predicted
// BSLD passes the threshold. PredictedBSLD is nondecreasing in the wait
// (eq. 2's numerator grows with it), so each gear's pass flips from
// true to false at most once as the start grows, and the first-passing
// index — with the Ftop fallback as the final stop — only moves toward
// higher frequencies. The wait-queue branch doesn't depend on the start
// at all.
func (p *Policy) EstMonotone() {}

// NewPolicy validates params and binds the algorithm to a gear set and
// time model.
func NewPolicy(params Params, gears dvfs.GearSet, tm dvfs.TimeModel) (*Policy, error) {
	params = params.WithDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := gears.Validate(); err != nil {
		return nil, err
	}
	return &Policy{params: params, gears: gears, tm: tm}, nil
}

// Params returns the policy's parameters (defaults applied).
func (p *Policy) Params() Params { return p.params }

// Name identifies the configuration, e.g. "bsld(2,16)".
func (p *Policy) Name() string {
	wq := fmt.Sprint(p.params.WQThreshold)
	if p.params.WQThreshold == NoWQLimit {
		wq = "NO"
	}
	return fmt.Sprintf("bsld(%g,%s)", p.params.BSLDThreshold, wq)
}

// predicted evaluates eq. (2) for job j at gear g with the given wait.
func (p *Policy) predicted(j *workload.Job, g dvfs.Gear, wait float64) float64 {
	coef := p.tm.CoefWithBeta(j.Beta, g)
	return PredictedBSLD(wait, j.ReqTime, coef, p.params.ShortJobThreshold)
}

// satisfies is the paper's satisfiesBSLD: predicted BSLD strictly below
// the threshold.
func (p *Policy) satisfies(j *workload.Job, g dvfs.Gear, wait float64) bool {
	return p.predicted(j, g, wait) < p.params.BSLDThreshold
}

// ReserveGear implements MakeJobReservation (Figure 1): iterate gears from
// the lowest, pick the first whose predicted BSLD passes; above the
// wait-queue threshold, or when no gear passes, use Ftop. The head job is
// always scheduled — Ftop is the unconditional fallback.
func (p *Policy) ReserveGear(j *workload.Job, start, now float64, wqOthers int) dvfs.Gear {
	if wqOthers > p.params.WQThreshold {
		return p.gears.Top()
	}
	wait := start - j.Submit
	if wait < 0 {
		wait = 0
	}
	for _, g := range p.gears {
		if p.satisfies(j, g, wait) {
			return g
		}
	}
	return p.gears.Top()
}

// BackfillGear implements BackfillJob (Figure 2): find the lowest gear
// with a correct allocation (feasible) and a passing predicted BSLD. Above
// the wait-queue threshold only the top gear is considered. In the default
// lenient mode a feasible top-gear backfill is accepted even when its
// predicted BSLD exceeds the threshold; StrictBackfillBSLD restores the
// literal pseudo-code (see DESIGN.md for why the default differs).
func (p *Policy) BackfillGear(j *workload.Job, now float64, wqOthers int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	wait := now - j.Submit
	if wait < 0 {
		wait = 0
	}
	candidates := p.gears
	if wqOthers > p.params.WQThreshold {
		candidates = p.gears[len(p.gears)-1:]
	}
	for _, g := range candidates {
		if feasible(g) && p.satisfies(j, g, wait) {
			return g, true
		}
	}
	if !p.params.StrictBackfillBSLD {
		if top := p.gears.Top(); feasible(top) {
			return top, true
		}
	}
	return dvfs.Gear{}, false
}

// Bind implements sched.PowerController. The policy is stateless across
// passes, so there is nothing to retain; implementing the controller
// interface is what routes ControlPass to the dynamic boost below (the
// policy is auto-promoted to the controller seam by sched.New).
func (p *Policy) Bind(*sched.System) {}

// ControlPass implements the dynamic boost extension when enabled:
// running jobs at reduced gears are raised to Ftop while too many jobs
// wait.
func (p *Policy) ControlPass(sys *sched.System, now float64) {
	if !p.params.Boost || sys.QueueLen() <= p.params.BoostWQ {
		return
	}
	top := p.gears.Top()
	for _, rs := range sys.Running() {
		if rs.Gear != top {
			sys.SetGear(rs, top, now)
		}
	}
}
