package sched

// Failure injection: pathological workloads that historically break job
// schedulers — thundering-herd arrivals, machine-sized jobs, zero-length
// jobs, heavy kill-limit truncation, adversarial estimates. Every variant
// must survive them with invariants intact.

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func simulateAll(t *testing.T, cpus int, tr *workload.Trace) map[Variant]*auditRecorder {
	t.Helper()
	out := map[Variant]*auditRecorder{}
	for _, v := range []Variant{EASY, FCFS, Conservative} {
		rec := newAudit(t, cpus)
		sys := paperSystem(t, cpus, v, topPolicy(), rec)
		if err := sys.Simulate(tr); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(rec.ends) != len(tr.Jobs) {
			t.Fatalf("%v: finished %d of %d jobs", v, len(rec.ends), len(tr.Jobs))
		}
		out[v] = rec
	}
	return out
}

// Thundering herd: every job arrives at the same instant.
func TestPathologicalSimultaneousArrivals(t *testing.T) {
	tr := &workload.Trace{Name: "herd", CPUs: 8}
	for i := 1; i <= 200; i++ {
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i, Submit: 0, Runtime: float64(1 + i%17), Procs: 1 + i%8,
			ReqTime: float64(20 + i%31), Beta: -1,
		})
	}
	simulateAll(t, 8, tr)
}

// Every job needs the whole machine: strict serialization.
func TestPathologicalMachineSizedJobs(t *testing.T) {
	tr := &workload.Trace{Name: "wall", CPUs: 16}
	for i := 1; i <= 50; i++ {
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i, Submit: float64(i), Runtime: 100, Procs: 16, ReqTime: 100, Beta: -1,
		})
	}
	recs := simulateAll(t, 16, tr)
	// Serialized execution: makespan >= 50 × 100 for every variant.
	for v, rec := range recs {
		last := 0.0
		for _, e := range rec.ends {
			last = math.Max(last, e)
		}
		if last < 5000 {
			t.Errorf("%v: machine-sized jobs finished too early (%v)", v, last)
		}
	}
}

// Zero-runtime jobs (cleaned traces keep sub-second jobs rounded to 0):
// the engine treats them as instantaneous but must not lose them.
func TestPathologicalZeroRuntime(t *testing.T) {
	tr := &workload.Trace{Name: "zero", CPUs: 4}
	for i := 1; i <= 40; i++ {
		rt := 0.0
		if i%2 == 0 {
			rt = 10
		}
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i, Submit: float64(i), Runtime: rt, Procs: 2, ReqTime: 10, Beta: -1,
		})
	}
	simulateAll(t, 4, tr)
}

// Every job lies: actual runtimes exceed requests, so all jobs are killed
// at their limit. Completion must be exactly at request × coef.
func TestPathologicalAllJobsKilled(t *testing.T) {
	tr := &workload.Trace{Name: "liars", CPUs: 8}
	for i := 1; i <= 60; i++ {
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i, Submit: float64(10 * i), Runtime: 1e6, Procs: 1 + i%4,
			ReqTime: float64(60 + i%120), Beta: -1,
		})
	}
	rec := newAudit(t, 8)
	sys := paperSystem(t, 8, EASY, topPolicy(), rec)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		got := rec.ends[j.ID] - rec.starts[j.ID]
		if math.Abs(got-j.ReqTime) > 1e-9 {
			t.Fatalf("job %d ran %v, want killed at %v", j.ID, got, j.ReqTime)
		}
	}
}

// Adversarial estimates: tiny requests (immediate-kill risk for planning)
// mixed with 100× overestimates. Backfilling must neither deadlock nor
// violate capacity.
func TestPathologicalEstimateSpread(t *testing.T) {
	tr := &workload.Trace{Name: "spread", CPUs: 12}
	for i := 1; i <= 150; i++ {
		rt := float64(10 + i%90)
		req := rt
		if i%3 == 0 {
			req = rt * 100
		}
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i, Submit: float64(i * 3), Runtime: rt, Procs: 1 + i%12, ReqTime: req, Beta: -1,
		})
	}
	simulateAll(t, 12, tr)
}

// A single 1-CPU machine degenerates every policy to sequential FCFS-ish
// execution; all variants must agree on total busy time.
func TestPathologicalSingleProcessor(t *testing.T) {
	tr := &workload.Trace{Name: "uni", CPUs: 1}
	for i := 1; i <= 100; i++ {
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i, Submit: float64(i), Runtime: float64(1 + i%7), Procs: 1,
			ReqTime: float64(1 + i%7), Beta: -1,
		})
	}
	recs := simulateAll(t, 1, tr)
	var totals []float64
	for _, rec := range recs {
		sum := 0.0
		for id, e := range rec.ends {
			sum += e - rec.starts[id]
		}
		totals = append(totals, sum)
	}
	for i := 1; i < len(totals); i++ {
		if math.Abs(totals[i]-totals[0]) > 1e-9 {
			t.Errorf("busy time differs across variants: %v", totals)
		}
	}
}

// Long idle gaps between bursts: the event engine must jump across dead
// time without issues, and BSLD windows must not corrupt.
func TestPathologicalSparseBursts(t *testing.T) {
	tr := &workload.Trace{Name: "bursts", CPUs: 8}
	id := 0
	for burst := 0; burst < 5; burst++ {
		base := float64(burst) * 1e7
		for i := 0; i < 20; i++ {
			id++
			tr.Jobs = append(tr.Jobs, &workload.Job{
				ID: id, Submit: base + float64(i), Runtime: 100, Procs: 1 + i%8,
				ReqTime: 200, Beta: -1,
			})
		}
	}
	simulateAll(t, 8, tr)
}

// Regression: two running jobs completing at the same instant. When the
// first completion's pass runs, the second job sits exactly at its kill
// limit but still holds processors (its event fires later at the same
// timestamp). The planner must not treat it as released — this used to
// over-commit the machine and panic under conservative backfilling.
func TestSimultaneousCompletionNotDoubleCounted(t *testing.T) {
	tr := mkTrace(4,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 2, ReqTime: 100},
		&workload.Job{ID: 2, Submit: 0, Runtime: 100, Procs: 2, ReqTime: 100},
		&workload.Job{ID: 3, Submit: 1, Runtime: 50, Procs: 4, ReqTime: 50},
	)
	for _, v := range []Variant{EASY, Conservative} {
		rec := newAudit(t, 4)
		sys := paperSystem(t, 4, v, topPolicy(), rec)
		if err := sys.Simulate(tr); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if rec.starts[3] != 100 {
			t.Errorf("%v: job 3 start = %v, want 100", v, rec.starts[3])
		}
	}
}

// A recorder that panics must not corrupt cluster state silently — the
// panic propagates (fail-fast) rather than being swallowed.
func TestRecorderPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("recorder panic was swallowed")
		}
	}()
	sys := paperSystem(t, 4, EASY, topPolicy(), panicRecorder{})
	tr := mkTrace(4, &workload.Job{ID: 1, Submit: 0, Runtime: 10, Procs: 1, ReqTime: 10})
	_ = sys.Simulate(tr)
}

type panicRecorder struct{}

func (panicRecorder) JobStarted(*RunState, float64)  { panic("injected failure") }
func (panicRecorder) JobFinished(*RunState, float64) {}
