package sched

import (
	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Phase is a stretch of a job's execution at one gear. Jobs scheduled once
// have a single phase; the dynamic boost extension appends more.
type Phase struct {
	Gear dvfs.Gear
	Dur  float64 // wall-clock seconds spent at Gear
}

// RunState tracks an executing job.
type RunState struct {
	Job   *workload.Job
	Gear  dvfs.Gear // current gear
	Start float64   // actual start time

	// PlannedEnd is the job's kill limit under the current gear
	// (start + requested·Coef plus any phase history); the scheduler
	// plans reservations and backfills against it.
	PlannedEnd float64
	// ActualEnd is when the completion event fires:
	// start + effective-runtime·Coef with phase history applied.
	ActualEnd float64

	Alloc cluster.Alloc
	endEv sim.Handle

	// runIdx is this entry's slot in System.runList, kept so completion
	// removal is O(1) (the slot is tombstoned and compacted lazily).
	runIdx int

	// profEnd is the End this job's occupancy is recorded with in the
	// persistent availability profile (the planned end, clamped at epoch
	// loads). Completions and gear switches credit exactly this interval
	// back, keeping the incremental base skyline equal to a fresh build.
	profEnd float64

	// phaseStart is when the current gear began; closed phases live in
	// Phases. workDone accumulates completed top-frequency seconds of the
	// closed phases (for mid-run gear switches).
	phaseStart float64
	workDone   float64 // top-frequency seconds completed before phaseStart
	reqDone    float64 // top-frequency requested-time seconds elapsed before phaseStart
	Phases     []Phase

	// Reduced reports whether the job ever executed below the top gear —
	// the quantity Figure 4 counts.
	Reduced bool
}

// AllPhases returns the closed phases plus the in-progress phase truncated
// at time now.
func (rs *RunState) AllPhases(now float64) []Phase {
	out := make([]Phase, 0, len(rs.Phases)+1)
	out = append(out, rs.Phases...)
	if now > rs.phaseStart {
		out = append(out, Phase{Gear: rs.Gear, Dur: now - rs.phaseStart})
	}
	return out
}

// WallClock returns the job's execution time so far at time now.
func (rs *RunState) WallClock(now float64) float64 { return now - rs.Start }
