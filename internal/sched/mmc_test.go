package sched

// Queueing-theory validation: on Poisson arrivals with exponential service
// and FCFS discipline, the simulator must reproduce M/M/1 and M/M/c
// analytic waiting times. This validates the event engine, the FCFS path
// and the metric plumbing end to end against closed-form ground truth.

import (
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// mmTrace builds a single-processor-per-job Poisson/exponential trace.
func mmTrace(seed int64, n int, cpus int, lambda, mu float64) *workload.Trace {
	r := stats.NewRNG(seed)
	tr := &workload.Trace{Name: "mm", CPUs: cpus}
	t := 0.0
	for i := 0; i < n; i++ {
		t += r.Exp(1 / lambda)
		rt := r.Exp(1 / mu)
		if rt < 1e-6 {
			rt = 1e-6
		}
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i + 1, Submit: t, Runtime: rt, Procs: 1,
			// Requested time far above any sample so estimates do not
			// truncate services (exact exponential service).
			ReqTime: 1e9, Beta: -1,
		})
	}
	return tr
}

// waits simulates the trace under FCFS and returns the mean wait.
func meanWaitFCFS(t *testing.T, tr *workload.Trace) float64 {
	t.Helper()
	rec := newAudit(t, tr.CPUs)
	gears := dvfs.PaperGearSet()
	sys, err := New(Config{
		CPUs: tr.CPUs, Gears: gears,
		TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy:    FixedGear{Gear: gears.Top()},
		Variant:   FCFS,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, j := range tr.Jobs {
		sum += rec.starts[j.ID] - j.Submit
	}
	return sum / float64(len(tr.Jobs))
}

// M/M/1: Wq = ρ/(μ−λ) with ρ = λ/μ.
func TestMM1WaitMatchesTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("long queueing validation")
	}
	lambda, mu := 0.7, 1.0
	want := lambda / mu / (mu - lambda)
	// Average over several seeds to tame the (deterministic) sampling
	// noise of finite traces.
	sum := 0.0
	seeds := []int64{1, 2, 3, 4, 5}
	for _, s := range seeds {
		sum += meanWaitFCFS(t, mmTrace(s, 60000, 1, lambda, mu))
	}
	got := sum / float64(len(seeds))
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("M/M/1 mean wait = %.4f, theory %.4f (±8%%)", got, want)
	}
}

// erlangC returns the probability an arriving job waits in an M/M/c queue.
func erlangC(c int, a float64) float64 {
	// a = λ/μ offered load in Erlangs; iteratively compute the Erlang B
	// blocking probability, then convert to Erlang C.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// M/M/c: Wq = C(c, a) / (cμ − λ).
func TestMMcWaitMatchesTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("long queueing validation")
	}
	const c = 4
	lambda, mu := 3.2, 1.0 // ρ = 0.8
	a := lambda / mu
	want := erlangC(c, a) / (float64(c)*mu - lambda)
	sum := 0.0
	seeds := []int64{11, 12, 13, 14, 15}
	for _, s := range seeds {
		sum += meanWaitFCFS(t, mmTrace(s, 60000, c, lambda, mu))
	}
	got := sum / float64(len(seeds))
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("M/M/%d mean wait = %.4f, theory %.4f (±8%%)", c, got, want)
	}
}

// With single-processor jobs backfilling cannot overtake under FCFS-equal
// conditions, so EASY must match FCFS exactly on these traces.
func TestMMEASYEqualsFCFSForSerialJobs(t *testing.T) {
	tr := mmTrace(21, 5000, 4, 3.2, 1.0)
	fcfs := meanWaitFCFS(t, tr)
	rec := newAudit(t, tr.CPUs)
	gears := dvfs.PaperGearSet()
	sys, err := New(Config{
		CPUs: tr.CPUs, Gears: gears,
		TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy:    FixedGear{Gear: gears.Top()},
		Variant:   EASY,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, j := range tr.Jobs {
		sum += rec.starts[j.ID] - j.Submit
	}
	easy := sum / float64(len(tr.Jobs))
	if math.Abs(easy-fcfs) > 1e-9 {
		t.Errorf("EASY wait %.6f != FCFS wait %.6f on all-serial equal-size jobs", easy, fcfs)
	}
}
