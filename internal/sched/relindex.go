package sched

import (
	"sort"

	"repro/internal/profile"
)

// The chunked ordered release index replaces the flat (PlannedEnd, id)-
// sorted release slice on the replanning hot path. The flat slice costs an
// O(running) memmove per insert and remove — after PR 5 made the
// availability profile persistent, those memmoves were the dominant term
// of conservative/flexible passes. The index keeps the same total order
// over small sorted chunks: an insert or remove binary-searches the chunk
// directory, then moves at most one chunk's worth of entries, so the cost
// is O(log n + C) for chunk capacity C instead of O(n). In-order
// iteration (the shadow sweep, the profile bulk snapshot) walks the
// chunks front to back and is as cache-friendly as the flat slice was.
//
// The flat slice survives behind Compat.SliceReleases as the
// differentially-tested reference, mirroring Compat.RebuildProfile.
const (
	// relChunkMax is the split threshold: a chunk reaching this many
	// entries is halved. 256 releases (16 bytes each) keep a chunk within
	// a few cache lines' worth of memmove per mutation.
	relChunkMax = 256
	// relChunkMin is the merge threshold: a chunk draining below it is
	// folded into a neighbor when the pair fits comfortably, bounding the
	// directory's growth under removal-heavy churn.
	relChunkMin = relChunkMax / 8
	// relChunkFill is the target fill of bulk-loaded chunks, leaving
	// headroom so a load followed by inserts doesn't split immediately.
	relChunkFill = relChunkMax / 2
)

// relIndex is an ordered index over the live jobs' planned releases,
// keyed by (PlannedEnd, job ID): a directory of sorted chunks whose key
// ranges are disjoint and ascending. The zero value is an empty index.
type relIndex struct {
	chunks [][]release // each non-empty, sorted, < relChunkMax entries
	size   int
	spare  [][]release // recycled chunk backings
}

// relKeyAtOrAfter reports whether c's key (t, id) is >= the given key —
// the predicate both binary searches share.
func relKeyAtOrAfter(c release, t float64, id int) bool {
	return c.t > t || (c.t == t && c.id >= id)
}

// len returns the number of indexed releases.
func (ix *relIndex) len() int { return ix.size }

// min returns the first release in (t, id) order.
func (ix *relIndex) min() (release, bool) {
	if len(ix.chunks) == 0 {
		return release{}, false
	}
	return ix.chunks[0][0], true
}

// reset empties the index, recycling every chunk backing.
func (ix *relIndex) reset() {
	for i, ch := range ix.chunks {
		ix.spare = append(ix.spare, ch[:0])
		ix.chunks[i] = nil
	}
	ix.chunks = ix.chunks[:0]
	ix.size = 0
}

// newChunk pops a recycled chunk backing or allocates a fresh one.
func (ix *relIndex) newChunk() []release {
	if n := len(ix.spare); n > 0 {
		ch := ix.spare[n-1]
		ix.spare[n-1] = nil
		ix.spare = ix.spare[:n-1]
		return ch
	}
	return make([]release, 0, relChunkMax)
}

// findChunk returns the index of the first chunk whose last key is at or
// after (t, id) — the only chunk that may hold the key — or len(chunks)
// when the key is beyond every chunk.
func (ix *relIndex) findChunk(t float64, id int) int {
	return sort.Search(len(ix.chunks), func(i int) bool {
		ch := ix.chunks[i]
		return relKeyAtOrAfter(ch[len(ch)-1], t, id)
	})
}

// insert adds r, keeping the chunk holding its position sorted and
// splitting it when it reaches the capacity threshold.
func (ix *relIndex) insert(r release) {
	if len(ix.chunks) == 0 {
		ix.chunks = append(ix.chunks, append(ix.newChunk(), r))
		ix.size = 1
		return
	}
	ci := ix.findChunk(r.t, r.id)
	if ci == len(ix.chunks) {
		ci-- // beyond every key: extend the last chunk
	}
	ch := ix.chunks[ci]
	k := sort.Search(len(ch), func(i int) bool { return relKeyAtOrAfter(ch[i], r.t, r.id) })
	ch = append(ch, release{})
	copy(ch[k+1:], ch[k:])
	ch[k] = r
	ix.chunks[ci] = ch
	ix.size++
	if len(ch) >= relChunkMax {
		ix.split(ci)
	}
}

// split halves the chunk at ci into two directory entries.
func (ix *relIndex) split(ci int) {
	ch := ix.chunks[ci]
	mid := len(ch) / 2
	right := append(ix.newChunk(), ch[mid:]...)
	ix.chunks = append(ix.chunks, nil)
	copy(ix.chunks[ci+2:], ix.chunks[ci+1:])
	ix.chunks[ci] = ch[:mid]
	ix.chunks[ci+1] = right
}

// remove deletes the release keyed (t, id), reporting whether it was
// present. A chunk draining below the merge threshold is folded into a
// neighbor when the pair fits, so removal-heavy churn cannot fragment the
// directory into near-empty chunks.
func (ix *relIndex) remove(t float64, id int) bool {
	ci := ix.findChunk(t, id)
	if ci == len(ix.chunks) {
		return false
	}
	ch := ix.chunks[ci]
	k := sort.Search(len(ch), func(i int) bool { return relKeyAtOrAfter(ch[i], t, id) })
	if k == len(ch) || ch[k].t != t || ch[k].id != id {
		return false
	}
	copy(ch[k:], ch[k+1:])
	ch = ch[:len(ch)-1]
	ix.chunks[ci] = ch
	ix.size--
	switch {
	case len(ch) == 0:
		ix.dropChunk(ci)
	case len(ch) < relChunkMin:
		ix.mergeAt(ci)
	}
	return true
}

// dropChunk removes the (empty) directory entry at ci.
func (ix *relIndex) dropChunk(ci int) {
	ix.spare = append(ix.spare, ix.chunks[ci][:0])
	copy(ix.chunks[ci:], ix.chunks[ci+1:])
	ix.chunks[len(ix.chunks)-1] = nil
	ix.chunks = ix.chunks[:len(ix.chunks)-1]
}

// mergeAt folds the underfull chunk at ci into its smaller neighbor when
// the combined chunk stays clear of the split threshold; a small chunk
// next to two near-full neighbors is left alone (it cannot fragment
// further — its neighbors' fullness bounds the directory size).
func (ix *relIndex) mergeAt(ci int) {
	ch := ix.chunks[ci]
	into := -1
	if ci > 0 {
		into = ci - 1
	}
	if ci+1 < len(ix.chunks) && (into < 0 || len(ix.chunks[ci+1]) < len(ix.chunks[into])) {
		into = ci + 1
	}
	if into < 0 || len(ch)+len(ix.chunks[into]) > 3*relChunkMax/4 {
		return
	}
	if into == ci-1 {
		ix.chunks[into] = append(ix.chunks[into], ch...)
		ix.chunks[ci] = ch[:0]
	} else {
		// Prepend ch to the right neighbor, reusing ch's backing.
		merged := append(ch, ix.chunks[into]...)
		ix.chunks[ci] = ix.chunks[into][:0]
		ix.chunks[into] = merged
	}
	ix.dropChunk(ci)
}

// load bulk-initializes the index from a (t, id)-sorted release slice,
// filling chunks to the target fill so follow-up inserts have headroom.
func (ix *relIndex) load(rels []release) {
	ix.reset()
	for len(rels) > 0 {
		n := relChunkFill
		if len(rels) < n {
			n = len(rels)
		}
		ix.chunks = append(ix.chunks, append(ix.newChunk(), rels[:n]...))
		ix.size += n
		rels = rels[n:]
	}
}

// appendClamped appends every indexed release in (t, id) order to buf,
// with times at or before now clamped strictly after it — the bulk
// snapshot feeding profile.LoadReleases / StartEpoch. Clamping maps a
// prefix of the order onto one shared point, so the result stays sorted.
func (ix *relIndex) appendClamped(buf []profile.Release, now float64) []profile.Release {
	for _, ch := range ix.chunks {
		for _, r := range ch {
			buf = append(buf, profile.Release{Time: clampRelease(r.t, now), CPUs: r.cpus})
		}
	}
	return buf
}

// each calls fn on every release in (t, id) order until fn returns false.
// Hot-path consumers iterate ix.chunks directly; this is the ordered
// traversal for tests and oracles.
func (ix *relIndex) each(fn func(release) bool) {
	for _, ch := range ix.chunks {
		for _, r := range ch {
			if !fn(r) {
				return
			}
		}
	}
}
