package sched

import (
	"testing"

	"repro/internal/dvfs"
	"repro/internal/workload"
)

// Determinism regression for the hot-path refactor: the optimized
// implementation (streamed arrivals, tombstoned run list, reused scratch)
// must replay every trace identically to the seed implementation
// (upfront arrival heap, linear-scan removal, per-pass allocation) under
// every base policy and queue order. Start and end times are compared
// exactly — any ordering drift in the run-list iteration or the event
// heap shows up as a changed schedule.
func TestCompatModesProduceIdenticalSchedules(t *testing.T) {
	type fixture struct {
		name    string
		variant Variant
		order   Order
		resv    int
	}
	fixtures := []fixture{
		{"easy", EASY, FCFSOrder, 0},
		{"fcfs", FCFS, FCFSOrder, 0},
		{"conservative", Conservative, FCFSOrder, 0},
		{"easy-sjf", EASY, SJFOrder, 0},
		{"flexible-4", EASY, FCFSOrder, 4},
		{"conservative-sjf", Conservative, SJFOrder, 0},
	}
	gears := dvfs.PaperGearSet()
	policies := map[string]func() GearPolicy{
		"top": topPolicy,
		// The wait/wq-sensitive policy flips gears as queues grow and
		// earliest starts drift, stressing the persistent profile's
		// changed-prefix revalidation: a retained reservation may only be
		// reused when re-asking the policy provably returns the same gear.
		"varying": func() GearPolicy { return varyingPolicy{gears: gears} },
		// The boosting policy re-gears running jobs from ControlPass, so the
		// persistent profile must swap their base occupancies mid-epoch.
		"boosting": func() GearPolicy { return boostingPolicy{gears: gears} },
	}
	run := func(fx fixture, pol GearPolicy, compat Compat, seed int64) (map[int]float64, map[int]float64) {
		rec := newAudit(t, 16)
		sys, err := New(Config{
			CPUs:         16,
			Gears:        gears,
			TimeModel:    dvfs.NewTimeModel(0.5, gears),
			Policy:       pol,
			Variant:      fx.variant,
			Order:        fx.order,
			Reservations: fx.resv,
			Recorder:     rec,
			Compat:       compat,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Simulate(randomTrace(seed, 16, 250)); err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		return rec.starts, rec.ends
	}
	compats := map[string]Compat{
		"seed":           SeedCompat(),
		"stream-only":    {ScanRemoval: true, ScratchAlloc: true},
		"tombstone-only": {UpfrontArrivals: true, ScratchAlloc: true},
		// Rebuild-per-pass over the chunked index snapshot and over the
		// flat slice: both must match the persistent-profile default.
		"rebuild-profile": {RebuildProfile: true},
		"rebuild-slice":   {RebuildProfile: true, SliceReleases: true},
		// The PR 3–5 memmove-backed release cache, the differential
		// reference for the chunked ordered release index.
		"slice-releases": {SliceReleases: true},
		// The PR 6–8 flat profile tiers (pending buffer + skyline tree +
		// flat reservation slices), the differential reference for the
		// chunked skyline and reservation indexes.
		"flat-resv": {FlatReservations: true},
	}
	for _, fx := range fixtures {
		for pname, mk := range policies {
			t.Run(fx.name+"/"+pname, func(t *testing.T) {
				for seed := int64(1); seed <= 4; seed++ {
					wantStarts, wantEnds := run(fx, mk(), Compat{}, seed)
					for cname, c := range compats {
						gotStarts, gotEnds := run(fx, mk(), c, seed)
						if len(gotStarts) != len(wantStarts) {
							t.Fatalf("seed %d %s: %d jobs started, optimized %d",
								seed, cname, len(gotStarts), len(wantStarts))
						}
						for id, st := range wantStarts {
							if gotStarts[id] != st {
								t.Fatalf("seed %d %s: job %d start %v, optimized %v",
									seed, cname, id, gotStarts[id], st)
							}
							if gotEnds[id] != wantEnds[id] {
								t.Fatalf("seed %d %s: job %d end %v, optimized %v",
									seed, cname, id, gotEnds[id], wantEnds[id])
							}
						}
					}
				}
			})
		}
	}
}

// varyingPolicy is a deterministic gear policy whose decisions depend on
// everything a pass may change — the queue depth and the reservation's
// earliest start — so any stale reservation reuse in the persistent
// profile shows up as a schedule divergence.
type varyingPolicy struct {
	gears dvfs.GearSet
}

func (p varyingPolicy) Name() string { return "varying" }

// EstMonotone marks the policy for the widened changed-prefix analysis:
// as the start grows the decision flips gears[0] -> Top at the 120 s
// wait boundary and never back, so it satisfies the monotonicity
// contract while still being genuinely start-dependent — the compat
// fixtures therefore differentially pin the widened reuse path against
// every non-widened mode. boostingPolicy stays unmarked on purpose, so
// the conservative any-mutation-replans path keeps coverage too.
func (varyingPolicy) EstMonotone() {}

func (p varyingPolicy) ReserveGear(j *workload.Job, start, now float64, wqOthers int) dvfs.Gear {
	if wqOthers > 3 {
		return p.gears.Top()
	}
	if start-j.Submit > 120 {
		return p.gears.Top()
	}
	return p.gears[0]
}

func (p varyingPolicy) BackfillGear(j *workload.Job, now float64, wqOthers int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	start := len(p.gears) - 1
	if wqOthers <= 3 && now-j.Submit <= 120 {
		start = 0
	}
	for i := start; i < len(p.gears); i++ {
		if feasible(p.gears[i]) {
			return p.gears[i], true
		}
	}
	return dvfs.Gear{}, false
}

// boostingPolicy starts everything at the lowest gear and raises running
// reduced jobs to the top gear whenever more than two jobs wait — the
// paper's dynamic boost shape — so gear switches (SetGear) hit the
// persistent profile's occupancy-swap path on every variant.
type boostingPolicy struct {
	gears dvfs.GearSet
}

func (p boostingPolicy) Name() string { return "boosting" }

func (p boostingPolicy) ReserveGear(j *workload.Job, start, now float64, wqOthers int) dvfs.Gear {
	return p.gears[0]
}

func (p boostingPolicy) BackfillGear(j *workload.Job, now float64, wqOthers int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	for _, g := range p.gears {
		if feasible(g) {
			return g, true
		}
	}
	return dvfs.Gear{}, false
}

func (p boostingPolicy) Bind(*System) {}

func (p boostingPolicy) ControlPass(sys *System, now float64) {
	if sys.QueueLen() <= 2 {
		return
	}
	top := p.gears.Top()
	for _, rs := range sys.Running() {
		if rs.Gear != top {
			sys.SetGear(rs, top, now)
		}
	}
}

// The tombstoned run list must preserve start order across heavy churn:
// Running() always reports live jobs in the order they started, and the
// indexes stay consistent after compaction.
func TestRunListTombstoneCompaction(t *testing.T) {
	checker := runOrderChecker{t: t}
	sys := paperSystem(t, 8, EASY, orderAuditPolicy{checker: &checker}, nil)
	tr := randomTrace(7, 8, 300)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if sys.runningCount() != 0 {
		t.Errorf("runningCount = %d after drain, want 0", sys.runningCount())
	}
	if checker.passes == 0 {
		t.Fatal("order checker never ran")
	}
}

type runOrderChecker struct {
	t      *testing.T
	passes int
}

// orderAuditPolicy verifies Running()'s ordering and index invariants
// after every pass, mid-simulation, where tombstones are live.
type orderAuditPolicy struct {
	checker *runOrderChecker
}

func (p orderAuditPolicy) Name() string { return "order-audit" }
func (p orderAuditPolicy) ReserveGear(j *workload.Job, start, now float64, wq int) dvfs.Gear {
	return dvfs.PaperGearSet().Top()
}
func (p orderAuditPolicy) BackfillGear(j *workload.Job, now float64, wq int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	g := dvfs.PaperGearSet().Top()
	return g, feasible(g)
}
func (p orderAuditPolicy) Bind(*System) {}
func (p orderAuditPolicy) ControlPass(sys *System, now float64) {
	p.checker.passes++
	running := sys.Running()
	for i, rs := range running {
		if rs == nil {
			p.checker.t.Fatalf("Running()[%d] is nil", i)
		}
		if rs.runIdx != i {
			p.checker.t.Fatalf("Running()[%d].runIdx = %d", i, rs.runIdx)
		}
		if i > 0 && rs.Start < running[i-1].Start {
			p.checker.t.Fatalf("Running() out of start order at %d: %v < %v",
				i, rs.Start, running[i-1].Start)
		}
	}
	if got := sys.runningCount(); got != len(running) {
		p.checker.t.Fatalf("runningCount = %d, Running() has %d", got, len(running))
	}
}
