package sched

import (
	"testing"

	"repro/internal/dvfs"
	"repro/internal/workload"
)

// Determinism regression for the hot-path refactor: the optimized
// implementation (streamed arrivals, tombstoned run list, reused scratch)
// must replay every trace identically to the seed implementation
// (upfront arrival heap, linear-scan removal, per-pass allocation) under
// every base policy and queue order. Start and end times are compared
// exactly — any ordering drift in the run-list iteration or the event
// heap shows up as a changed schedule.
func TestCompatModesProduceIdenticalSchedules(t *testing.T) {
	type fixture struct {
		name    string
		variant Variant
		order   Order
		resv    int
	}
	fixtures := []fixture{
		{"easy", EASY, FCFSOrder, 0},
		{"fcfs", FCFS, FCFSOrder, 0},
		{"conservative", Conservative, FCFSOrder, 0},
		{"easy-sjf", EASY, SJFOrder, 0},
		{"flexible-4", EASY, FCFSOrder, 4},
	}
	gears := dvfs.PaperGearSet()
	run := func(fx fixture, compat Compat, seed int64) (map[int]float64, map[int]float64) {
		rec := newAudit(t, 16)
		sys, err := New(Config{
			CPUs:         16,
			Gears:        gears,
			TimeModel:    dvfs.NewTimeModel(0.5, gears),
			Policy:       topPolicy(),
			Variant:      fx.variant,
			Order:        fx.order,
			Reservations: fx.resv,
			Recorder:     rec,
			Compat:       compat,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Simulate(randomTrace(seed, 16, 250)); err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		return rec.starts, rec.ends
	}
	compats := map[string]Compat{
		"seed":           SeedCompat(),
		"stream-only":    {ScanRemoval: true, ScratchAlloc: true},
		"tombstone-only": {UpfrontArrivals: true, ScratchAlloc: true},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				wantStarts, wantEnds := run(fx, Compat{}, seed)
				for cname, c := range compats {
					gotStarts, gotEnds := run(fx, c, seed)
					if len(gotStarts) != len(wantStarts) {
						t.Fatalf("seed %d %s: %d jobs started, optimized %d",
							seed, cname, len(gotStarts), len(wantStarts))
					}
					for id, st := range wantStarts {
						if gotStarts[id] != st {
							t.Fatalf("seed %d %s: job %d start %v, optimized %v",
								seed, cname, id, gotStarts[id], st)
						}
						if gotEnds[id] != wantEnds[id] {
							t.Fatalf("seed %d %s: job %d end %v, optimized %v",
								seed, cname, id, gotEnds[id], wantEnds[id])
						}
					}
				}
			}
		})
	}
}

// The tombstoned run list must preserve start order across heavy churn:
// Running() always reports live jobs in the order they started, and the
// indexes stay consistent after compaction.
func TestRunListTombstoneCompaction(t *testing.T) {
	checker := runOrderChecker{t: t}
	sys := paperSystem(t, 8, EASY, orderAuditPolicy{checker: &checker}, nil)
	tr := randomTrace(7, 8, 300)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if sys.runningCount() != 0 {
		t.Errorf("runningCount = %d after drain, want 0", sys.runningCount())
	}
	if checker.passes == 0 {
		t.Fatal("order checker never ran")
	}
}

type runOrderChecker struct {
	t      *testing.T
	passes int
}

// orderAuditPolicy verifies Running()'s ordering and index invariants
// after every pass, mid-simulation, where tombstones are live.
type orderAuditPolicy struct {
	checker *runOrderChecker
}

func (p orderAuditPolicy) Name() string { return "order-audit" }
func (p orderAuditPolicy) ReserveGear(j *workload.Job, start, now float64, wq int) dvfs.Gear {
	return dvfs.PaperGearSet().Top()
}
func (p orderAuditPolicy) BackfillGear(j *workload.Job, now float64, wq int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	g := dvfs.PaperGearSet().Top()
	return g, feasible(g)
}
func (p orderAuditPolicy) PostPass(sys *System, now float64) {
	p.checker.passes++
	running := sys.Running()
	for i, rs := range running {
		if rs == nil {
			p.checker.t.Fatalf("Running()[%d] is nil", i)
		}
		if rs.runIdx != i {
			p.checker.t.Fatalf("Running()[%d].runIdx = %d", i, rs.runIdx)
		}
		if i > 0 && rs.Start < running[i-1].Start {
			p.checker.t.Fatalf("Running() out of start order at %d: %v < %v",
				i, rs.Start, running[i-1].Start)
		}
	}
	if got := sys.runningCount(); got != len(running) {
		p.checker.t.Fatalf("runningCount = %d, Running() has %d", got, len(running))
	}
}
