package sched

import (
	"strings"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/workload"
)

// corruptingPolicy mutates one running job's PlannedEnd behind the
// release schedule's back once the simulation is warm — the invariant
// violation relRemove used to answer with a process-killing panic. It is
// otherwise the fixed top-gear policy.
type corruptingPolicy struct {
	gears     dvfs.GearSet
	after     float64
	corrupted bool
}

func (p *corruptingPolicy) Name() string { return "corrupting" }

func (p *corruptingPolicy) ReserveGear(j *workload.Job, start, now float64, wq int) dvfs.Gear {
	return p.gears.Top()
}

func (p *corruptingPolicy) BackfillGear(j *workload.Job, now float64, wq int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	g := p.gears.Top()
	return g, feasible(g)
}

func (p *corruptingPolicy) Bind(*System) {}

func (p *corruptingPolicy) ControlPass(sys *System, now float64) {
	if p.corrupted || now < p.after {
		return
	}
	running := sys.Running()
	if len(running) == 0 {
		return
	}
	running[0].PlannedEnd += 12345.75
	p.corrupted = true
}

// TestCorruptedPlannedEndReportsNotCrashes is the regression for the
// relRemove "release schedule lost job" panic: a PlannedEnd corrupted
// between relAdd and relRemove must surface as an error from Simulate —
// on the incremental schedules (chunked index and compat slice alike) —
// and must never take the process down, under every compat mode. The
// non-incremental modes rebuild the schedule from the run list each
// consumer, so the corruption is absorbed and the run completes; what the
// test pins there is the absence of a crash.
func TestCorruptedPlannedEndReportsNotCrashes(t *testing.T) {
	gears := dvfs.PaperGearSet()
	cases := []struct {
		name      string
		variant   Variant
		resv      int
		compat    Compat
		wantError bool
	}{
		{"conservative-index", Conservative, 0, Compat{}, true},
		{"conservative-slice", Conservative, 0, Compat{SliceReleases: true}, true},
		{"conservative-rebuild-index", Conservative, 0, Compat{RebuildProfile: true}, true},
		{"conservative-rebuild-slice", Conservative, 0, Compat{RebuildProfile: true, SliceReleases: true}, true},
		{"flexible-index", EASY, 4, Compat{}, true},
		{"conservative-seed", Conservative, 0, SeedCompat(), false},
		{"easy-lazy-slice", EASY, 0, Compat{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol := &corruptingPolicy{gears: gears, after: 50}
			sys, err := New(Config{
				CPUs: 16, Gears: gears,
				TimeModel:    dvfs.NewTimeModel(0.5, gears),
				Policy:       pol,
				Variant:      tc.variant,
				Reservations: tc.resv,
				Compat:       tc.compat,
			})
			if err != nil {
				t.Fatal(err)
			}
			err = sys.Simulate(randomTrace(11, 16, 200))
			if !pol.corrupted {
				t.Fatal("fixture never corrupted a PlannedEnd; raise the trace length")
			}
			if tc.wantError {
				if err == nil {
					t.Fatal("Simulate returned nil, want release-schedule invariant error")
				}
				if !strings.Contains(err.Error(), "release schedule lost job") {
					t.Fatalf("Simulate error = %q, want a release-schedule invariant report", err)
				}
			} else if err != nil {
				t.Fatalf("Simulate returned %v; the rebuilding schedule should absorb the corruption", err)
			}
		})
	}
}

// TestRelRemoveErrorFromSetGear covers the other relRemove caller: a gear
// switch on a corrupted RunState reports through the same error path
// instead of panicking mid-ControlPass.
func TestRelRemoveErrorFromSetGear(t *testing.T) {
	gears := dvfs.PaperGearSet()
	pol := &regearCorruptPolicy{gears: gears, after: 50}
	sys, err := New(Config{
		CPUs: 16, Gears: gears,
		TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy:    pol,
		Variant:   Conservative,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Simulate(randomTrace(12, 16, 200))
	if !pol.corrupted {
		t.Fatal("fixture never corrupted a PlannedEnd")
	}
	if err == nil || !strings.Contains(err.Error(), "release schedule lost job") {
		t.Fatalf("Simulate error = %v, want a release-schedule invariant report", err)
	}
}

// regearCorruptPolicy corrupts a running job's PlannedEnd and immediately
// asks for a gear switch on it, driving the corrupted key through
// SetGear's relRemove.
type regearCorruptPolicy struct {
	gears     dvfs.GearSet
	after     float64
	corrupted bool
}

func (p *regearCorruptPolicy) Name() string { return "regear-corrupt" }

func (p *regearCorruptPolicy) ReserveGear(j *workload.Job, start, now float64, wq int) dvfs.Gear {
	return p.gears.Top()
}

func (p *regearCorruptPolicy) BackfillGear(j *workload.Job, now float64, wq int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	g := p.gears.Top()
	return g, feasible(g)
}

func (p *regearCorruptPolicy) Bind(*System) {}

func (p *regearCorruptPolicy) ControlPass(sys *System, now float64) {
	if p.corrupted || now < p.after {
		return
	}
	running := sys.Running()
	if len(running) == 0 {
		return
	}
	rs := running[0]
	rs.PlannedEnd += 999.5
	p.corrupted = true
	sys.SetGear(rs, p.gears[0], now)
}
