package sched

import (
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/workload"
)

// runningSpec is one running job held by a shadow edge-case fixture.
type runningSpec struct {
	cpus int
	end  float64
}

// buildVariantSystem constructs a System mid-simulation like
// buildRunningSystem, but for any variant/compat combination, so the
// shadow sweep can be probed over the slice cache, the chunked index and
// the seed rebuild alike (conservative systems are index-backed; New
// starts the schedule dirty, so the white-box run list is picked up).
func buildVariantSystem(t *testing.T, total int, variant Variant, compat Compat, running []runningSpec) *System {
	t.Helper()
	gears := dvfs.PaperGearSet()
	sys, err := New(Config{
		CPUs: total, Gears: gears,
		TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy:    FixedGear{Gear: gears.Top()},
		Variant:   variant,
		Compat:    compat,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range running {
		alloc, err := sys.cl.Allocate(r.cpus, 0)
		if err != nil {
			t.Fatalf("setup allocation: %v", err)
		}
		sys.runList = append(sys.runList, &RunState{
			Job:        &workload.Job{ID: i + 1, Procs: r.cpus, Runtime: r.end, ReqTime: r.end, Beta: -1},
			Gear:       gears.Top(),
			PlannedEnd: r.end,
			Alloc:      alloc,
		})
	}
	return sys
}

// TestShadowEdgeCasesPinnedAgainstSeed pins the optimized shadow sweeps —
// the flat sorted slice (classic EASY) and the chunked release index
// (replanning variants) — against the seed-era rebuild-clamp-sort
// reference on the boundary shapes where the clamp and the equal-time
// grouping interact:
//
//   - every release at or before now, so the whole schedule clamps onto
//     one shared instant (math.Nextafter(now, +inf));
//   - a head job larger than any release prefix, so the sweep must
//     consume the entire schedule;
//   - an equal-time release group spanning the availability threshold,
//     whose tail must still count toward the extra-processor pool;
//   - the head already fitting, where no release may be consumed.
func TestShadowEdgeCasesPinnedAgainstSeed(t *testing.T) {
	cases := []struct {
		name      string
		total     int
		running   []runningSpec
		headProcs int
		now       float64
	}{
		{
			// All three planned ends are <= now: each clamps to the same
			// one-ulp-after-now instant, forming a single release group.
			name:  "all-clamped-to-now",
			total: 16,
			running: []runningSpec{
				{cpus: 4, end: 10}, {cpus: 6, end: 55}, {cpus: 6, end: 100},
			},
			headProcs: 12,
			now:       100,
		},
		{
			// The head needs the whole machine: no proper release prefix
			// frees enough, so the sweep runs off the end of the schedule.
			name:  "head-larger-than-any-prefix",
			total: 16,
			running: []runningSpec{
				{cpus: 2, end: 20}, {cpus: 3, end: 40}, {cpus: 5, end: 60}, {cpus: 6, end: 80},
			},
			headProcs: 16,
			now:       5,
		},
		{
			// Five releases share t=50; availability crosses the head's
			// need mid-group, and the group's tail still counts as extra.
			name:  "equal-time-group-spans-threshold",
			total: 20,
			running: []runningSpec{
				{cpus: 4, end: 50}, {cpus: 4, end: 50}, {cpus: 4, end: 50},
				{cpus: 4, end: 50}, {cpus: 4, end: 50},
			},
			headProcs: 6,
			now:       10,
		},
		{
			// Equal-time group at the clamp instant: two jobs at their
			// kill limit plus one strictly-later release; the head fits
			// after the clamped group alone.
			name:  "clamped-group-plus-future-release",
			total: 12,
			running: []runningSpec{
				{cpus: 4, end: 30}, {cpus: 4, end: 30}, {cpus: 4, end: 90},
			},
			headProcs: 8,
			now:       30,
		},
		{
			// The head fits right now: the sweep must consume nothing and
			// report the shadow at now itself.
			name:  "head-fits-immediately",
			total: 16,
			running: []runningSpec{
				{cpus: 4, end: 25}, {cpus: 4, end: 25},
			},
			headProcs: 8,
			now:       3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			head := &workload.Job{ID: 999, Procs: tc.headProcs, Runtime: 10, ReqTime: 10, Beta: -1}

			// Seed reference: rebuild, clamp, sort on a scratch system.
			seedSys := buildVariantSystem(t, tc.total, EASY, Compat{ScratchAlloc: true}, tc.running)
			wantT, wantExtra := seedSys.shadow(head, tc.now)

			paths := []struct {
				name    string
				variant Variant
				compat  Compat
				indexed bool
			}{
				{"slice", EASY, Compat{}, false},
				{"index", Conservative, Compat{}, true},
				{"compat-slice-releases", Conservative, Compat{SliceReleases: true}, false},
			}
			for _, p := range paths {
				sys := buildVariantSystem(t, tc.total, p.variant, p.compat, tc.running)
				if sys.relIndexed != p.indexed {
					t.Fatalf("%s: relIndexed = %v, want %v", p.name, sys.relIndexed, p.indexed)
				}
				gotT, gotExtra := sys.shadow(head, tc.now)
				if math.Abs(gotT-wantT) > 0 || gotExtra != wantExtra {
					t.Errorf("%s: shadow = (%v, %d), seed reference (%v, %d)",
						p.name, gotT, gotExtra, wantT, wantExtra)
				}
				if p.indexed {
					if err := checkRelIndexInvariants(&sys.relIdx); err != nil {
						t.Errorf("%s: %v", p.name, err)
					}
				}
				// The sweep must not mutate the schedule: a second call
				// answers identically (the slice path memoizes via
				// relDirty, the index serves repeated sweeps in place).
				gotT2, gotExtra2 := sys.shadow(head, tc.now)
				if gotT2 != gotT || gotExtra2 != gotExtra {
					t.Errorf("%s: second sweep diverged: (%v, %d) then (%v, %d)",
						p.name, gotT, gotExtra, gotT2, gotExtra2)
				}
			}

			// Shadow time semantics: strictly after now whenever at least
			// one release was consumed, exactly now otherwise.
			free := tc.total
			for _, r := range tc.running {
				free -= r.cpus
			}
			if free >= tc.headProcs {
				if wantT != tc.now {
					t.Errorf("head fits now but shadow = %v, want now = %v", wantT, tc.now)
				}
			} else if wantT <= tc.now {
				t.Errorf("blocked head got shadow %v, want > now = %v", wantT, tc.now)
			}
		})
	}
}
