package sched

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Variant selects the base job scheduling policy.
type Variant int

const (
	// EASY is aggressive backfilling with a single reservation for the
	// head of the queue (the paper's base policy).
	EASY Variant = iota
	// FCFS starts jobs strictly in arrival order, no backfilling.
	FCFS
	// Conservative gives every queued job a reservation; a job may jump
	// ahead only if it delays no earlier-queued job.
	Conservative
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case EASY:
		return "easy"
	case FCFS:
		return "fcfs"
	case Conservative:
		return "conservative"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// ParseVariant resolves a base policy name.
func ParseVariant(name string) (Variant, error) {
	switch name {
	case "easy", "":
		return EASY, nil
	case "fcfs":
		return FCFS, nil
	case "conservative", "cons":
		return Conservative, nil
	}
	return 0, fmt.Errorf("sched: unknown scheduling variant %q (easy, fcfs, conservative)", name)
}

// Recorder receives job lifecycle callbacks; the metrics collector
// implements it. A nil Recorder disables recording. Implementations must
// not retain rs (or its Alloc.Runs / Phases slices) past the callback:
// the scheduler recycles run states once JobFinished returns.
type Recorder interface {
	JobStarted(rs *RunState, now float64)
	JobFinished(rs *RunState, now float64)
}

// Order is the queue discipline: the order in which waiting jobs are
// considered for reservations and backfilling.
type Order int

const (
	// FCFSOrder considers jobs in arrival order (the paper's setting).
	FCFSOrder Order = iota
	// SJFOrder considers shorter requested times first — the classic
	// backfilling variant trading fairness for wait time.
	SJFOrder
)

// String names the order.
func (o Order) String() string {
	if o == SJFOrder {
		return "sjf"
	}
	return "fcfs"
}

// ParseOrder resolves a queue discipline name.
func ParseOrder(name string) (Order, error) {
	switch name {
	case "fcfs", "":
		return FCFSOrder, nil
	case "sjf":
		return SJFOrder, nil
	}
	return 0, fmt.Errorf("sched: unknown queue order %q (fcfs, sjf)", name)
}

// Compat selects seed-era reference implementations of hot-path pieces.
// The zero value is the optimized path and is what every production
// caller should use; the flags exist so benchmarks can quantify each
// optimization and so determinism regressions can prove the optimized
// path replays traces identically to the original implementation.
type Compat struct {
	// UpfrontArrivals schedules every arrival of the trace into the event
	// heap before the run starts (heap size O(trace)) instead of feeding
	// arrivals lazily from the sorted trace (heap size O(running jobs)).
	UpfrontArrivals bool
	// ScanRemoval removes finished jobs from the run list by linear scan
	// and ordered deletion (O(running) per completion) instead of the
	// indexed tombstone scheme.
	ScanRemoval bool
	// ScratchAlloc allocates fresh scratch (shadow release lists, kept
	// queues, availability profiles, engine events) on every pass instead
	// of reusing per-system buffers.
	ScratchAlloc bool
	// RebuildProfile rebuilds the availability profile from the cached
	// release schedule on every replanning pass instead of persisting it
	// across passes under the changed-prefix analysis. It quantifies the
	// incremental-replanning win on its own (ScratchAlloc implies an even
	// older per-entry rebuild).
	RebuildProfile bool
	// SliceReleases maintains the (PlannedEnd, id)-sorted release
	// schedule of the replanning variants as a flat slice with O(running)
	// memmove insert/remove (the PR 3–5 path) instead of the chunked
	// ordered release index. Kept as the differentially-tested reference
	// and to quantify the index win on its own.
	SliceReleases bool
	// FlatReservations keeps the persistent profile's reservation layer
	// in the flat tier pair (merged slice plus lazily re-sorted pending
	// slice, the PR 5–8 path) instead of the chunked ordered reservation
	// index. Kept as the differentially-tested reference and to quantify
	// the index win on its own.
	FlatReservations bool
}

// SeedCompat returns the full seed-era behavior: every hot-path
// optimization disabled.
func SeedCompat() Compat {
	return Compat{UpfrontArrivals: true, ScanRemoval: true, ScratchAlloc: true,
		RebuildProfile: true, SliceReleases: true, FlatReservations: true}
}

// Config assembles a simulated system.
type Config struct {
	CPUs      int
	Gears     dvfs.GearSet
	TimeModel dvfs.TimeModel
	Policy    GearPolicy
	Variant   Variant
	Recorder  Recorder
	// Controller is the per-pass observe–decide–actuate seam: it is bound
	// to the system by New and its ControlPass runs after every scheduling
	// pass. A Policy that itself implements PowerController keeps its own
	// per-pass hook regardless (the §7 dynamic boost rides on this, and is
	// bound by New); it runs before Controller, which actuates last. Nil
	// with a controller-free policy disables the loop entirely.
	Controller PowerController
	// Selection is the resource selection policy mapping job processes
	// to processors (First Fit in the paper).
	Selection cluster.Selection
	// Order is the queue discipline (FCFS in the paper).
	Order Order
	// Reservations sets how many blocked jobs hold reservations under
	// EASY: 0 or 1 is classic EASY (single reservation); larger values
	// give "flexible" backfilling that protects the first K queued jobs;
	// Conservative ignores this (every job is protected).
	Reservations int
	// Compat re-enables seed-era hot-path behavior for benchmarking and
	// determinism regression; leave zero for production use.
	Compat Compat
}

// System simulates one cluster under one scheduling policy.
type System struct {
	cfg    Config
	engine *sim.Engine
	cl     *cluster.Cluster
	queue  []*workload.Job

	// runList holds running jobs in start order. Finished entries are
	// tombstoned to nil (O(1) removal) and compacted once they exceed
	// half the slice; iteration must skip nils. runNil counts tombstones.
	runList []*RunState
	runNil  int

	// policyCtrl is the gear policy's own per-pass hook when the policy
	// implements PowerController (the §7 dynamic boost). It runs before
	// the explicit Config.Controller so a cluster-level controller always
	// acts last and its enforcement wins.
	policyCtrl PowerController

	// src streams the workload into the engine: only one future arrival
	// is in the event heap at any time, so heap size stays O(running
	// jobs) — and with a lazily generating source (wgen.Stream, the
	// incremental SWF reader) total live memory does too. srcPtr is the
	// source's stable-pointer fast path (SliceSource), which avoids
	// allocating a Job per arrival on materialized replays.
	src        workload.JobSource
	srcPtr     workload.PtrSource
	srcTrusted bool    // jobs were validated upfront (Simulate); skip per-arrival checks
	fedJobs    int     // arrivals fed so far
	lastSubmit float64 // monotonicity check over the stream
	srcErr     error   // first streaming failure; aborts the run
	invErr     error   // first scheduler invariant violation; aborts the run

	// The release schedule holds the live jobs' planned releases sorted
	// by (PlannedEnd, job ID). Under the profile-replanning variants
	// (conservative, flexible EASY) it is maintained incrementally per
	// start/completion/gear change, because every pass consumes it: the
	// chunked ordered index relIdx by default (O(log n + chunk) per
	// mutation), the flat relCache slice with memmove insert/remove under
	// Compat.SliceReleases (the differential reference). Under classic
	// EASY the flat slice is rebuilt lazily (relDirty) only when a
	// blocked pass actually needs the shadow sweep, since most events
	// mutate the run list without ever consuming the schedule; relCache
	// doubles as the sort scratch for index bulk loads.
	relCache       []release
	relIdx         relIndex
	relDirty       bool
	relIncremental bool
	relIndexed     bool

	// prof and profRels are per-system scratch reused across replanning
	// passes: the availability profile and the clamped release schedule
	// fed to its bulk loader.
	prof     *profile.Profile
	profRels []profile.Release

	// Persistent-profile (incremental replanning) state. The default
	// replanning path keeps prof alive across passes: the base skyline is
	// mutated in O(1) per start/completion/gear switch, and reservations
	// placed in earlier passes are reused verbatim up to the first queue
	// position whose reservation could move (the changed-prefix
	// analysis). resvMeta records, per retained reservation, the inputs
	// that planned it; profClean is how many leading entries the next
	// pass may consider reusing; profMut notes a base mutation since they
	// were planned that invalidates the whole prefix. Under the widened
	// analysis (profWiden — the gear policy implements EstMonotonePolicy)
	// only mutations that free capacity set it (completion, gear switch):
	// a job start's occupancy was feasibility-validated against the full
	// tier including every retained reservation, so it can neither delay
	// a retained window nor open an earlier one, and cleanPrefix instead
	// re-asks the gear decision at both ends of the interval the
	// top-gear estimate may have drifted across.
	resvMeta  []resvInfo
	profLive  bool
	profMut   bool
	profWiden bool
	profClean int

	// rsPool recycles RunStates after their completion callbacks ran,
	// together with their Alloc.Runs and Phases capacity, so the steady
	// state of a replay allocates nothing per job.
	rsPool []*RunState
}

// New validates the configuration and returns a ready system.
func New(cfg Config) (*System, error) {
	if cfg.CPUs < 1 {
		return nil, fmt.Errorf("sched: invalid CPU count %d", cfg.CPUs)
	}
	if err := cfg.Gears.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("sched: nil gear policy")
	}
	if cfg.TimeModel.Fmax <= 0 {
		return nil, fmt.Errorf("sched: time model missing anchor frequency")
	}
	cl, err := cluster.NewWithSelection(cfg.CPUs, cfg.Selection)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	s := &System{
		cfg:    cfg,
		engine: sim.NewEngine(),
		cl:     cl,
		// Starts dirty so a first consumer rebuilds from the run list even
		// when it was assembled outside start() (as white-box tests do).
		relDirty: true,
	}
	s.relIncremental = !cfg.Compat.ScratchAlloc &&
		(cfg.Variant == Conservative || (cfg.Variant == EASY && cfg.Reservations > 1))
	s.relIndexed = s.relIncremental && !cfg.Compat.SliceReleases
	_, s.profWiden = cfg.Policy.(EstMonotonePolicy)
	s.engine.NoPool = cfg.Compat.ScratchAlloc
	// A gear policy that is also a controller serves both seams: the
	// per-job decisions through GearPolicy, the per-pass ones through
	// ControlPass. It keeps its hook even when an explicit cluster-level
	// controller is configured, so e.g. the §7 boost composes with power
	// capping instead of being silently dropped.
	if pc, ok := cfg.Policy.(PowerController); ok {
		s.policyCtrl = pc
	}
	if any(s.cfg.Controller) == any(cfg.Policy) {
		// Registering the policy explicitly is the same as promotion; a
		// nil-nil match is harmless (both slots stay empty).
		s.cfg.Controller = nil
	}
	if s.policyCtrl != nil {
		s.policyCtrl.Bind(s)
	}
	if s.cfg.Controller != nil {
		// A controller that observes lifecycle events (an online power
		// meter) is spliced into the recorder chain, so callers configure
		// it once and the observe half of the loop wires itself.
		if rec, ok := s.cfg.Controller.(Recorder); ok {
			if s.cfg.Recorder == nil {
				s.cfg.Recorder = rec
			} else {
				s.cfg.Recorder = MultiRecorder{s.cfg.Recorder, rec}
			}
		}
		s.cfg.Controller.Bind(s)
	}
	return s, nil
}

// controlPass runs the power-controller seam at the end of a scheduling
// pass. It is the actuation point of the controller layer: starts and
// backfills for this epoch are placed, so controllers see (and may
// regear) the post-decision running set. The policy's own hook runs
// first; the explicit cluster-level controller actuates last, so its
// enforcement wins over per-job boosting.
func (s *System) controlPass(now float64) {
	if s.policyCtrl != nil {
		s.policyCtrl.ControlPass(s, now)
	}
	if s.cfg.Controller != nil {
		s.cfg.Controller.ControlPass(s, now)
	}
}

// Now returns the current simulation time.
func (s *System) Now() float64 { return s.engine.Now() }

// PeakEvents returns the high-water mark of the event heap over the run —
// O(running jobs) with streamed arrivals, O(trace) under the seed-era
// upfront scheduling.
func (s *System) PeakEvents() int { return s.engine.MaxPending() }

// QueueLen returns the number of jobs waiting on execution.
func (s *System) QueueLen() int { return len(s.queue) }

// Running returns the running jobs in start order. The slice is shared;
// callers must not mutate it.
func (s *System) Running() []*RunState {
	if s.runNil > 0 {
		s.compactRunList()
	}
	return s.runList
}

// runningCount returns the number of live entries in the run list.
func (s *System) runningCount() int { return len(s.runList) - s.runNil }

// compactRunList squeezes tombstones out of the run list, preserving
// start order and refreshing every entry's index.
func (s *System) compactRunList() {
	w := 0
	for _, rs := range s.runList {
		if rs == nil {
			continue
		}
		rs.runIdx = w
		s.runList[w] = rs
		w++
	}
	for i := w; i < len(s.runList); i++ {
		s.runList[i] = nil
	}
	s.runList = s.runList[:w]
	s.runNil = 0
}

// Cluster exposes the machine, e.g. for utilization accounting.
func (s *System) Cluster() *cluster.Cluster { return s.cl }

// Gears returns the configured gear set.
func (s *System) Gears() dvfs.GearSet { return s.cfg.Gears }

// Coef returns the run-time dilation multiplier for job j at gear g,
// honouring a per-job β override.
func (s *System) Coef(j *workload.Job, g dvfs.Gear) float64 {
	return s.cfg.TimeModel.CoefWithBeta(j.Beta, g)
}

// reqDur is the planned occupancy (kill limit) of j at gear g.
func (s *System) reqDur(j *workload.Job, g dvfs.Gear) float64 {
	return j.ReqTime * s.Coef(j, g)
}

// actDur is the true execution time of j at gear g.
func (s *System) actDur(j *workload.Job, g dvfs.Gear) float64 {
	return j.EffectiveRuntime() * s.Coef(j, g)
}

// Simulate schedules every job of the trace and runs to completion. The
// trace must fit the machine.
//
// Arrivals are fed to the event engine lazily from the submit-sorted
// trace: at most one future arrival is in the event heap at any time, so
// the heap holds O(running jobs) events regardless of trace length. An
// unsorted trace is sorted into a private copy first (the event heap of
// the original implementation performed the same ordering implicitly).
func (s *System) Simulate(tr *workload.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	sorted := true
	for i, j := range tr.Jobs {
		if j.Procs > s.cfg.CPUs {
			return fmt.Errorf("sched: job %d needs %d > %d processors", j.ID, j.Procs, s.cfg.CPUs)
		}
		if i > 0 && j.Submit < tr.Jobs[i-1].Submit {
			sorted = false
		}
	}
	jobs := tr.Jobs
	if sorted {
		// Nothing to do: the adapter below streams jobs in slice order.
	} else if s.cfg.Compat.UpfrontArrivals {
		// The seed path historically accepted unsorted traces in file
		// order — the event heap sorts, with insertion order breaking
		// submit ties exactly like the stable sort below.
	} else {
		jobs = append([]*workload.Job(nil), tr.Jobs...)
		sort.SliceStable(jobs, func(a, b int) bool {
			return jobs[a].Submit < jobs[b].Submit
		})
	}
	// Everything feedArrival would check per arrival was just verified
	// over the whole (now sorted) trace, so the hot path can skip it.
	return s.simulateSource(workload.NewSliceSource(tr.Name, tr.CPUs, jobs), true)
}

// SimulateSource schedules every job the source yields and runs to
// completion. The source is rewound first, so one source can back
// repeated runs (policy and baseline, sweep cells). Jobs are validated as
// they stream: a malformed or machine-overflowing job, a submit-time
// regression, or a source failure aborts the run with an error.
//
// Only the next pending arrival is held in the event heap, so with a
// lazily generating source the whole simulation runs in O(running jobs)
// live memory regardless of workload length.
func (s *System) SimulateSource(src workload.JobSource) error {
	return s.simulateSource(src, false)
}

// simulateSource is the shared run loop; trusted skips the per-arrival
// validation for workloads Simulate already verified upfront.
func (s *System) simulateSource(src workload.JobSource, trusted bool) error {
	if err := src.Reset(); err != nil {
		return fmt.Errorf("sched: resetting workload source %q: %w", src.Name(), err)
	}
	s.src = src
	s.srcPtr, _ = src.(workload.PtrSource)
	s.srcTrusted = trusted
	s.fedJobs, s.lastSubmit, s.srcErr, s.invErr = 0, 0, nil, nil
	if s.cfg.Compat.UpfrontArrivals {
		// Seed-era reference behavior: the whole workload enters the event
		// heap before the run starts — O(trace) heap, kept for benchmarks.
		for {
			err := s.feedArrival()
			if err != nil {
				return err
			}
			if s.src == nil {
				break
			}
		}
	} else if err := s.feedArrival(); err != nil {
		return err
	}
	if s.fedJobs == 0 {
		return fmt.Errorf("sched: workload %q is empty", src.Name())
	}
	s.engine.Run(s.dispatch)
	if s.srcErr != nil {
		return s.srcErr
	}
	if s.invErr != nil {
		return s.invErr
	}
	if len(s.queue) > 0 || s.runningCount() > 0 {
		return fmt.Errorf("sched: simulation drained with %d queued and %d running jobs",
			len(s.queue), s.runningCount())
	}
	return nil
}

// nextJob pulls the next job from the source, using the stable-pointer
// fast path when available and allocating otherwise (the job must outlive
// the stream cursor: it is referenced until its completion callbacks ran).
func (s *System) nextJob() (*workload.Job, bool) {
	if s.srcPtr != nil {
		return s.srcPtr.NextPtr()
	}
	j, ok := s.src.Next()
	if !ok {
		return nil, false
	}
	cp := j
	return &cp, true
}

// feedArrival schedules the next pending arrival of the streamed
// workload, validating it against the machine and the stream's ordering
// contract. The source is dropped once exhausted.
func (s *System) feedArrival() error {
	if s.src == nil {
		return nil
	}
	j, ok := s.nextJob()
	if !ok {
		err := s.src.Err()
		s.src, s.srcPtr = nil, nil
		if err != nil {
			return fmt.Errorf("sched: workload stream failed after %d jobs: %w", s.fedJobs, err)
		}
		return nil
	}
	if !s.srcTrusted {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("sched: %w", err)
		}
		if j.Procs > s.cfg.CPUs {
			return fmt.Errorf("sched: job %d needs %d > %d processors", j.ID, j.Procs, s.cfg.CPUs)
		}
		if !s.cfg.Compat.UpfrontArrivals {
			// Streamed feeding relies on nondecreasing submits: the next
			// arrival is scheduled while the engine sits at the previous
			// one.
			if s.fedJobs > 0 && j.Submit < s.lastSubmit {
				return fmt.Errorf("sched: workload stream not sorted by submit time (job %d at %v after %v)",
					j.ID, j.Submit, s.lastSubmit)
			}
			s.lastSubmit = j.Submit
		}
	}
	s.fedJobs++
	if _, err := s.engine.Schedule(j.Submit, sim.EvArrival, j); err != nil {
		return fmt.Errorf("sched: scheduling arrival of job %d: %w", j.ID, err)
	}
	return nil
}

func (s *System) dispatch(ev sim.Event) {
	now := s.engine.Now()
	switch ev.Kind {
	case sim.EvArrival:
		s.queue = append(s.queue, ev.Payload.(*workload.Job))
		// Replenish the event heap with the next stream arrival before
		// the pass runs; a validation or source failure aborts the run
		// (SimulateSource surfaces the error after the engine stops).
		if err := s.feedArrival(); err != nil {
			s.srcErr = err
			s.engine.Stop()
			return
		}
		s.pass(now)
	case sim.EvEnd:
		s.finish(ev.Payload.(*RunState), now)
		s.pass(now)
	}
	if o, ok := s.cfg.Recorder.(PassObserver); ok {
		o.PassEnd(now, len(s.queue), s.cl.Busy())
	}
}

// fail records a scheduler invariant violation and stops the engine; the
// run surfaces the first one through Simulate/SimulateSource's error
// return instead of crashing the process.
func (s *System) fail(err error) {
	if s.invErr == nil {
		s.invErr = err
	}
	s.engine.Stop()
}

// PassObserver is an optional extension of Recorder: implementations
// receive a system-state sample (wait-queue depth, busy processors) after
// every scheduling pass, enabling utilization and backlog time series.
type PassObserver interface {
	PassEnd(now float64, queued, busy int)
}

// pass is one scheduling cycle: start queue heads while they fit, then
// apply the variant's lookahead (reservation + backfilling for EASY,
// nothing for FCFS, full replanning for conservative).
func (s *System) pass(now float64) {
	if s.cfg.Order == SJFOrder {
		// Shortest requested time first, ties by arrival. Sorting the
		// queue itself makes the discipline apply to head starts,
		// reservations and the backfill scan alike.
		sort.SliceStable(s.queue, func(a, b int) bool {
			if s.queue[a].ReqTime != s.queue[b].ReqTime {
				return s.queue[a].ReqTime < s.queue[b].ReqTime
			}
			return s.queue[a].ID < s.queue[b].ID
		})
	}
	if s.cfg.Variant == Conservative {
		s.profilePass(now, len(s.queue))
		return
	}
	if s.cfg.Variant == EASY && s.cfg.Reservations > 1 {
		s.profilePass(now, s.cfg.Reservations)
		return
	}
	if s.cfg.Compat.ScratchAlloc {
		// Seed-era queue pop: re-slicing forward abandons the backing
		// array's front, so nearly every subsequent arrival append
		// reallocates (kept as the benchmark reference).
		for len(s.queue) > 0 && s.queue[0].Procs <= s.cl.FreeCount() {
			j := s.queue[0]
			s.queue = s.queue[1:]
			g := s.cfg.Policy.ReserveGear(j, now, now, len(s.queue))
			s.start(j, g, now)
		}
	} else {
		// Start queue heads in place, then shift the remainder to the
		// front: the queue's capacity stays anchored at index 0, so
		// arrival appends reuse it instead of allocating.
		started := 0
		for started < len(s.queue) && s.queue[started].Procs <= s.cl.FreeCount() {
			j := s.queue[started]
			started++
			g := s.cfg.Policy.ReserveGear(j, now, now, len(s.queue)-started)
			s.start(j, g, now)
		}
		if started > 0 {
			n := copy(s.queue, s.queue[started:])
			for i := n; i < len(s.queue); i++ {
				s.queue[i] = nil
			}
			s.queue = s.queue[:n]
		}
	}
	if len(s.queue) == 0 || s.cfg.Variant == FCFS {
		s.controlPass(now)
		return
	}

	// EASY backfilling. The head cannot start; compute its shadow time
	// (reservation start) and the extra processors not needed by it.
	// Surviving jobs are filtered into the queue's own backing array
	// (writes always trail reads), so a pass allocates nothing.
	head := s.queue[0]
	shadow, extra := s.shadow(head, now)
	free := s.cl.FreeCount()
	kept := s.queue[:1]
	if s.cfg.Compat.ScratchAlloc {
		kept = make([]*workload.Job, 1, len(s.queue))
		kept[0] = head
	}
	qlen := len(s.queue)
	for _, j := range s.queue[1:] {
		started := false
		if j.Procs <= free {
			feasible := func(g dvfs.Gear) bool {
				// The backfill must not delay the reservation: either it
				// completes (by its kill limit) before the shadow time, or
				// it fits into the processors the head leaves over.
				return now+s.reqDur(j, g) <= shadow || j.Procs <= extra
			}
			if g, ok := s.cfg.Policy.BackfillGear(j, now, qlen-1, feasible); ok && feasible(g) {
				s.start(j, g, now)
				free -= j.Procs
				if now+s.reqDur(j, g) > shadow {
					extra -= j.Procs
				}
				qlen--
				started = true
			}
		}
		if !started {
			kept = append(kept, j)
		}
	}
	s.setQueue(kept)
	s.controlPass(now)
}

// setQueue installs the filtered queue. kept usually aliases the queue's
// backing array, so the abandoned tail is cleared to keep started jobs
// from lingering behind the slice length.
func (s *System) setQueue(kept []*workload.Job) {
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = kept
}

// resvInfo records one retained reservation: the inputs that planned it
// (the top-gear earliest start fed to ReserveGear and the gear it chose)
// and the resulting slot start, so the next pass can prove a fresh replan
// would reproduce the reservation verbatim before reusing it.
type resvInfo struct {
	job   *workload.Job
	est   float64
	start float64
	gear  dvfs.Gear
}

// profilePass replans the queue against an availability profile. The
// first maxRes blocked jobs receive reservations (placed in queue order,
// never delaying an earlier one); the rest may only start immediately, and
// only if that disturbs no reservation. maxRes = len(queue) yields
// conservative backfilling; small maxRes yields "flexible" EASY variants
// protecting the first K queued jobs.
//
// The default path persists the profile across passes: the base skyline
// is kept current incrementally and the leading run of reservations whose
// replan provably reproduces them is reused verbatim. A pass then costs
// one gear-policy re-ask per retained reservation (the reuse proof) plus
// full replanning of the changed suffix — the O(running) profile rebuild
// and the per-prefix-position profile sweeps are gone.
// Compat.RebuildProfile selects the bulk-rebuild-per-pass reference,
// Compat.ScratchAlloc the seed-era per-entry rebuild; all three produce
// byte-identical schedules.
func (s *System) profilePass(now float64, maxRes int) {
	var prof *profile.Profile
	resume := 0
	switch {
	case s.cfg.Compat.ScratchAlloc:
		// Seed-era path: a fresh profile filled entry by entry from the
		// run list. Releases at or before `now` are clamped strictly
		// after it — a job at its kill limit still occupies processors
		// until its completion event fires (possibly at this same
		// timestamp, later in the event order), so the profile must not
		// over-commit the machine.
		prof = profile.New(s.cl.Total())
		for _, rs := range s.runList {
			if rs == nil {
				continue // tombstoned completion
			}
			prof.Add(profile.Entry{Start: now, End: clampRelease(rs.PlannedEnd, now), CPUs: rs.Job.Procs})
		}
	case s.cfg.Compat.RebuildProfile:
		// Bulk-rebuild reference: load the sorted release schedule from
		// scratch every pass (from the index or the compat slice). The
		// clamp maps a prefix of the sorted order onto one shared point
		// strictly after now, so the schedule stays sorted and the
		// resulting step function is identical to the seed path's.
		if s.prof == nil {
			s.prof = profile.New(s.cl.Total())
		}
		s.profRels = s.appendClampedReleases(s.profRels[:0], now)
		s.prof.LoadReleases(s.cl.Total(), now, s.profRels)
		prof = s.prof
	default:
		prof = s.persistentProfile(now)
		resume = s.cleanPrefix(now, maxRes)
		prof.TruncateReservations(resume)
		s.truncResvMeta(resume)
	}
	incremental := !s.cfg.Compat.ScratchAlloc && !s.cfg.Compat.RebuildProfile
	kept := s.queue[:resume]
	if s.cfg.Compat.ScratchAlloc {
		kept = make([]*workload.Job, 0, len(s.queue))
	}
	qlen := len(s.queue)
	reserved := resume
	for _, j := range s.queue[resume:] {
		if reserved < maxRes {
			// Reservation (or immediate start): the gear decision sees
			// the start the job would get at the top gear; the slot is
			// then recomputed with the chosen gear's dilated duration.
			est := prof.EarliestStart(j.Procs, s.reqDur(j, s.cfg.Gears.Top()), now)
			g := s.cfg.Policy.ReserveGear(j, est, now, qlen-1)
			d := s.reqDur(j, g)
			st := prof.EarliestStart(j.Procs, d, now)
			if st <= now {
				s.start(j, g, now) // registers its own occupancy when incremental
				qlen--
				if !incremental {
					// The clamp keeps a zero-duration start (ReqTime 0)
					// occupying its processors at `now` itself; without it
					// the pass could place another job on them and break
					// the allocation invariant.
					prof.Add(profile.Entry{Start: now, End: clampRelease(now+d, now), CPUs: j.Procs})
				}
			} else {
				if incremental {
					prof.AddReservation(profile.Entry{Start: st, End: st + d, CPUs: j.Procs})
					s.resvMeta = append(s.resvMeta, resvInfo{job: j, est: est, start: st, gear: g})
				} else {
					prof.Add(profile.Entry{Start: st, End: st + d, CPUs: j.Procs})
				}
				reserved++
				kept = append(kept, j)
			}
			continue
		}
		// Beyond the protected prefix: immediate backfill or nothing.
		feasible := func(g dvfs.Gear) bool {
			return prof.CanPlace(j.Procs, now, s.reqDur(j, g))
		}
		if g, ok := s.cfg.Policy.BackfillGear(j, now, qlen-1, feasible); ok && feasible(g) {
			s.start(j, g, now)
			qlen--
			if !incremental {
				prof.Add(profile.Entry{Start: now, End: clampRelease(now+s.reqDur(j, g), now), CPUs: j.Procs})
			}
			continue
		}
		kept = append(kept, j)
	}
	s.setQueue(kept)
	if incremental {
		if s.profMut {
			// The base changed under the retained reservations in a way the
			// reuse proof doesn't cover (under the widened analysis only
			// freed capacity — a completion or gear switch — raises the
			// flag; otherwise any start this pass does too): the next pass
			// must replan from the head.
			s.profClean = 0
			s.profMut = false
		} else {
			s.profClean = len(s.resvMeta)
		}
	}
	s.controlPass(now)
}

// persistentProfile returns the across-pass availability profile, opening
// a fresh epoch when needed: on first use, when a cached release time has
// reached `now` (a fresh build would clamp it differently — the rare
// kill-limit-exact case), or when accumulated credit history outgrew the
// running set. An epoch load is O(running); every other pass reuses the
// profile as-is.
func (s *System) persistentProfile(now float64) *profile.Profile {
	if s.prof == nil {
		s.prof = profile.New(s.cl.Total())
		s.prof.FlatReservations(s.cfg.Compat.FlatReservations)
	}
	minRel, hasRel := s.minRelease()
	if !s.profLive || (hasRel && minRel <= now) || s.prof.BaseDeltas() > 4*s.releaseCount()+256 {
		s.profRels = s.appendClampedReleases(s.profRels[:0], now)
		s.prof.StartEpoch(s.cl.Total(), now, s.profRels)
		// Re-anchor the credit bookkeeping: completions must hand back
		// exactly the occupancy the epoch load recorded.
		for _, rs := range s.runList {
			if rs != nil {
				rs.profEnd = clampRelease(rs.PlannedEnd, now)
			}
		}
		s.profLive = true
		s.profMut = false
		s.profClean = 0
		s.truncResvMeta(0)
	}
	s.prof.BeginPass(now)
	return s.prof
}

// truncResvMeta drops the reservation metadata suffix, clearing the
// abandoned entries so completed jobs don't linger reachable behind the
// backing array's length (the same hygiene setQueue applies to the
// queue).
func (s *System) truncResvMeta(n int) {
	for i := n; i < len(s.resvMeta); i++ {
		s.resvMeta[i] = resvInfo{}
	}
	s.resvMeta = s.resvMeta[:n]
}

// cleanPrefix returns how many leading queue positions keep their
// retained reservations verbatim this pass. A position is reusable when
// nothing its plan depends on can have changed: the base skyline is
// untouched in any way that could move its reservation (profMut — under
// the conservative analysis any start, completion or gear switch; under
// the widened one only completions and gear switches, since a start's
// occupancy was validated against the full tier), every earlier position
// is reused, the queue still holds the same job there, its planning
// inputs are still in the future (est at or after now, start strictly
// after — otherwise the job must be considered for starting), and the
// gear policy, re-asked at this pass's queue depth, still picks the same
// gear. Under the widened analysis added occupancy may have drifted the
// top-gear estimate anywhere within [est, start] (occupancy only delays
// it, and it never passes the reservation start the full-duration query
// reproduces), so the decision is re-asked at both interval ends — for
// an EstMonotonePolicy, unchanged at both endpoints means unchanged
// across the interval. The first position that fails dirties everything
// after it, which the caller replans.
func (s *System) cleanPrefix(now float64, maxRes int) int {
	limit := s.profClean
	if s.profMut {
		limit = 0
	}
	s.profMut = false
	if limit > len(s.resvMeta) {
		limit = len(s.resvMeta)
	}
	if limit > len(s.queue) {
		limit = len(s.queue)
	}
	if limit > maxRes {
		limit = maxRes
	}
	wq := len(s.queue) - 1
	k := 0
	for k < limit {
		m := &s.resvMeta[k]
		if s.queue[k] != m.job || m.est < now || m.start <= now {
			break
		}
		if s.cfg.Policy.ReserveGear(m.job, m.est, now, wq) != m.gear {
			break
		}
		if s.profWiden && m.start != m.est &&
			s.cfg.Policy.ReserveGear(m.job, m.start, now, wq) != m.gear {
			break
		}
		k++
	}
	return k
}

// newRunState pops a recycled RunState (keeping its Alloc.Runs and
// Phases capacity, contents cleared) or allocates a fresh one.
func (s *System) newRunState() *RunState {
	if n := len(s.rsPool); n > 0 {
		rs := s.rsPool[n-1]
		s.rsPool = s.rsPool[:n-1]
		runs, phases := rs.Alloc.Runs[:0], rs.Phases[:0]
		*rs = RunState{}
		rs.Alloc.Runs = runs
		rs.Phases = phases
		return rs
	}
	return &RunState{}
}

// start begins executing j at gear g immediately.
func (s *System) start(j *workload.Job, g dvfs.Gear, now float64) {
	rs := s.newRunState()
	if err := s.cl.AllocateInto(&rs.Alloc, j.Procs, now); err != nil {
		// The pass only starts jobs that fit; failure is a scheduler bug.
		panic(fmt.Sprintf("sched: allocation invariant broken for job %d: %v", j.ID, err))
	}
	rs.Job = j
	rs.Gear = g
	rs.Start = now
	rs.PlannedEnd = now + s.reqDur(j, g)
	rs.ActualEnd = now + s.actDur(j, g)
	rs.phaseStart = now
	rs.Reduced = !s.cfg.Gears.IsTop(g)
	s.relAdd(rs)
	if s.profLive {
		// Keep the persistent profile's base skyline current. Under the
		// conservative analysis the new occupancy invalidates retained
		// reservations (profMut); under the widened one it cannot — it was
		// feasibility-validated against the full tier including them, so
		// it neither delays a retained window nor opens an earlier one.
		// The clamp gives zero-duration jobs (ReqTime 0) a one-ulp
		// occupancy: they hold their processors at `now` itself, so later
		// placements in the same pass cannot over-commit the machine.
		if !s.profWiden {
			s.profMut = true
		}
		rs.profEnd = clampRelease(rs.PlannedEnd, now)
		s.prof.Occupy(j.Procs, now, rs.profEnd)
	}
	h, err := s.engine.Schedule(rs.ActualEnd, sim.EvEnd, rs)
	if err != nil {
		panic(fmt.Sprintf("sched: scheduling completion of job %d: %v", j.ID, err))
	}
	rs.endEv = h
	rs.runIdx = len(s.runList)
	s.runList = append(s.runList, rs)
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.JobStarted(rs, now)
	}
}

// finish releases j's processors and closes its phase history. Removal
// from the run list is O(1): the slot is tombstoned and the list is
// compacted once tombstones outnumber live entries, preserving start
// order exactly (the property shadow and profilePass iterate under).
func (s *System) finish(rs *RunState, now float64) {
	if err := s.cl.Release(rs.Alloc, now); err != nil {
		panic(fmt.Sprintf("sched: release invariant broken for job %d: %v", rs.Job.ID, err))
	}
	if err := s.relRemove(rs); err != nil {
		// The release schedule lost this job (a corrupted PlannedEnd):
		// abort the run and surface the error rather than continuing on
		// an inconsistent schedule.
		s.fail(err)
		return
	}
	if s.profLive {
		// Hand the planned occupancy tail back to the persistent profile:
		// the job completed before its kill limit, so the skyline frees
		// its processors from now on instead of at the planned end.
		s.profMut = true
		s.prof.Vacate(rs.Job.Procs, now, rs.profEnd)
	}
	if s.cfg.Compat.ScanRemoval {
		for i, r := range s.runList {
			if r == rs {
				s.runList = append(s.runList[:i], s.runList[i+1:]...)
				break
			}
		}
	} else {
		s.runList[rs.runIdx] = nil
		s.runNil++
		if s.runNil*2 > len(s.runList) {
			s.compactRunList()
		}
	}
	// Close the open phase in place (equivalent to rs.AllPhases(now) but
	// without copying the closed-phase history for every completion).
	if now > rs.phaseStart {
		rs.Phases = append(rs.Phases, Phase{Gear: rs.Gear, Dur: now - rs.phaseStart})
	}
	rs.phaseStart = now // the open phase is now empty
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.JobFinished(rs, now)
	}
	if !s.cfg.Compat.ScratchAlloc {
		// The RunState is dead once its completion callbacks returned:
		// recycle it (recorders must not retain it past JobFinished).
		s.rsPool = append(s.rsPool, rs)
	}
}

// SetGear switches a running job to gear g at time now, rescaling its
// remaining work under the β model and re-scheduling its completion. It
// implements the paper's future-work extension of dynamically raising
// frequencies of running jobs. Controllers call it from ControlPass.
// Recorders implementing GearObserver are notified after the switch.
func (s *System) SetGear(rs *RunState, g dvfs.Gear, now float64) {
	if g == rs.Gear {
		return
	}
	old := rs.Gear
	if err := s.relRemove(rs); err != nil { // the schedule holds the old PlannedEnd
		s.fail(err)
		return
	}
	oldCoef := s.Coef(rs.Job, rs.Gear)
	dur := now - rs.phaseStart
	if dur > 0 {
		rs.Phases = append(rs.Phases, Phase{Gear: rs.Gear, Dur: dur})
		rs.workDone += dur / oldCoef
		rs.reqDone += dur / oldCoef
	}
	rs.phaseStart = now
	rs.Gear = g
	newCoef := s.Coef(rs.Job, g)
	remWork := rs.Job.EffectiveRuntime() - rs.workDone
	if remWork < 0 {
		remWork = 0
	}
	remReq := rs.Job.ReqTime - rs.reqDone
	if remReq < 0 {
		remReq = 0
	}
	rs.ActualEnd = now + remWork*newCoef
	rs.PlannedEnd = now + remReq*newCoef
	s.relAdd(rs)
	if s.profLive {
		// Swap the job's planned occupancy for the re-geared one.
		s.profMut = true
		s.prof.Vacate(rs.Job.Procs, now, rs.profEnd)
		s.prof.Occupy(rs.Job.Procs, now, rs.PlannedEnd)
		rs.profEnd = rs.PlannedEnd
	}
	if !s.cfg.Gears.IsTop(g) {
		rs.Reduced = true
	}
	s.engine.Cancel(rs.endEv)
	h, err := s.engine.Schedule(rs.ActualEnd, sim.EvEnd, rs)
	if err != nil {
		panic(fmt.Sprintf("sched: rescheduling completion of job %d: %v", rs.Job.ID, err))
	}
	rs.endEv = h
	if o, ok := s.cfg.Recorder.(GearObserver); ok {
		o.JobRegeared(rs, old, now)
	}
}
