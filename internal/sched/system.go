package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Variant selects the base job scheduling policy.
type Variant int

const (
	// EASY is aggressive backfilling with a single reservation for the
	// head of the queue (the paper's base policy).
	EASY Variant = iota
	// FCFS starts jobs strictly in arrival order, no backfilling.
	FCFS
	// Conservative gives every queued job a reservation; a job may jump
	// ahead only if it delays no earlier-queued job.
	Conservative
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case EASY:
		return "easy"
	case FCFS:
		return "fcfs"
	case Conservative:
		return "conservative"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// ParseVariant resolves a base policy name.
func ParseVariant(name string) (Variant, error) {
	switch name {
	case "easy", "":
		return EASY, nil
	case "fcfs":
		return FCFS, nil
	case "conservative", "cons":
		return Conservative, nil
	}
	return 0, fmt.Errorf("sched: unknown scheduling variant %q (easy, fcfs, conservative)", name)
}

// Recorder receives job lifecycle callbacks; the metrics collector
// implements it. A nil Recorder disables recording.
type Recorder interface {
	JobStarted(rs *RunState, now float64)
	JobFinished(rs *RunState, now float64)
}

// Order is the queue discipline: the order in which waiting jobs are
// considered for reservations and backfilling.
type Order int

const (
	// FCFSOrder considers jobs in arrival order (the paper's setting).
	FCFSOrder Order = iota
	// SJFOrder considers shorter requested times first — the classic
	// backfilling variant trading fairness for wait time.
	SJFOrder
)

// String names the order.
func (o Order) String() string {
	if o == SJFOrder {
		return "sjf"
	}
	return "fcfs"
}

// ParseOrder resolves a queue discipline name.
func ParseOrder(name string) (Order, error) {
	switch name {
	case "fcfs", "":
		return FCFSOrder, nil
	case "sjf":
		return SJFOrder, nil
	}
	return 0, fmt.Errorf("sched: unknown queue order %q (fcfs, sjf)", name)
}

// Config assembles a simulated system.
type Config struct {
	CPUs      int
	Gears     dvfs.GearSet
	TimeModel dvfs.TimeModel
	Policy    GearPolicy
	Variant   Variant
	Recorder  Recorder
	// Selection is the resource selection policy mapping job processes
	// to processors (First Fit in the paper).
	Selection cluster.Selection
	// Order is the queue discipline (FCFS in the paper).
	Order Order
	// Reservations sets how many blocked jobs hold reservations under
	// EASY: 0 or 1 is classic EASY (single reservation); larger values
	// give "flexible" backfilling that protects the first K queued jobs;
	// Conservative ignores this (every job is protected).
	Reservations int
}

// System simulates one cluster under one scheduling policy.
type System struct {
	cfg     Config
	engine  *sim.Engine
	cl      *cluster.Cluster
	queue   []*workload.Job
	runList []*RunState
}

// New validates the configuration and returns a ready system.
func New(cfg Config) (*System, error) {
	if cfg.CPUs < 1 {
		return nil, fmt.Errorf("sched: invalid CPU count %d", cfg.CPUs)
	}
	if err := cfg.Gears.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("sched: nil gear policy")
	}
	if cfg.TimeModel.Fmax <= 0 {
		return nil, fmt.Errorf("sched: time model missing anchor frequency")
	}
	cl, err := cluster.NewWithSelection(cfg.CPUs, cfg.Selection)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	s := &System{
		cfg:    cfg,
		engine: sim.NewEngine(),
		cl:     cl,
	}
	if b, ok := cfg.Policy.(SystemBinder); ok {
		b.Bind(s)
	}
	return s, nil
}

// SystemBinder is implemented by gear policies that need to observe the
// system state (e.g. cluster utilization) when making decisions; New
// calls Bind before the simulation starts.
type SystemBinder interface {
	Bind(*System)
}

// Now returns the current simulation time.
func (s *System) Now() float64 { return s.engine.Now() }

// QueueLen returns the number of jobs waiting on execution.
func (s *System) QueueLen() int { return len(s.queue) }

// Running returns the running jobs in start order. The slice is shared;
// callers must not mutate it.
func (s *System) Running() []*RunState { return s.runList }

// Cluster exposes the machine, e.g. for utilization accounting.
func (s *System) Cluster() *cluster.Cluster { return s.cl }

// Gears returns the configured gear set.
func (s *System) Gears() dvfs.GearSet { return s.cfg.Gears }

// Coef returns the run-time dilation multiplier for job j at gear g,
// honouring a per-job β override.
func (s *System) Coef(j *workload.Job, g dvfs.Gear) float64 {
	return s.cfg.TimeModel.CoefWithBeta(j.Beta, g)
}

// reqDur is the planned occupancy (kill limit) of j at gear g.
func (s *System) reqDur(j *workload.Job, g dvfs.Gear) float64 {
	return j.ReqTime * s.Coef(j, g)
}

// actDur is the true execution time of j at gear g.
func (s *System) actDur(j *workload.Job, g dvfs.Gear) float64 {
	return j.EffectiveRuntime() * s.Coef(j, g)
}

// Simulate schedules every job of the trace and runs to completion. The
// trace must fit the machine.
func (s *System) Simulate(tr *workload.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	for _, j := range tr.Jobs {
		if j.Procs > s.cfg.CPUs {
			return fmt.Errorf("sched: job %d needs %d > %d processors", j.ID, j.Procs, s.cfg.CPUs)
		}
		if _, err := s.engine.Schedule(j.Submit, sim.EvArrival, j); err != nil {
			return fmt.Errorf("sched: scheduling arrival of job %d: %w", j.ID, err)
		}
	}
	s.engine.Run(s.dispatch)
	if len(s.queue) > 0 || len(s.runList) > 0 {
		return fmt.Errorf("sched: simulation drained with %d queued and %d running jobs",
			len(s.queue), len(s.runList))
	}
	return nil
}

func (s *System) dispatch(ev sim.Event) {
	now := s.engine.Now()
	switch ev.Kind {
	case sim.EvArrival:
		s.queue = append(s.queue, ev.Payload.(*workload.Job))
		s.pass(now)
	case sim.EvEnd:
		s.finish(ev.Payload.(*RunState), now)
		s.pass(now)
	}
	if o, ok := s.cfg.Recorder.(PassObserver); ok {
		o.PassEnd(now, len(s.queue), s.cl.Busy())
	}
}

// PassObserver is an optional extension of Recorder: implementations
// receive a system-state sample (wait-queue depth, busy processors) after
// every scheduling pass, enabling utilization and backlog time series.
type PassObserver interface {
	PassEnd(now float64, queued, busy int)
}

// pass is one scheduling cycle: start queue heads while they fit, then
// apply the variant's lookahead (reservation + backfilling for EASY,
// nothing for FCFS, full replanning for conservative).
func (s *System) pass(now float64) {
	if s.cfg.Order == SJFOrder {
		// Shortest requested time first, ties by arrival. Sorting the
		// queue itself makes the discipline apply to head starts,
		// reservations and the backfill scan alike.
		sort.SliceStable(s.queue, func(a, b int) bool {
			if s.queue[a].ReqTime != s.queue[b].ReqTime {
				return s.queue[a].ReqTime < s.queue[b].ReqTime
			}
			return s.queue[a].ID < s.queue[b].ID
		})
	}
	if s.cfg.Variant == Conservative {
		s.profilePass(now, len(s.queue))
		return
	}
	if s.cfg.Variant == EASY && s.cfg.Reservations > 1 {
		s.profilePass(now, s.cfg.Reservations)
		return
	}
	for len(s.queue) > 0 && s.queue[0].Procs <= s.cl.FreeCount() {
		j := s.queue[0]
		s.queue = s.queue[1:]
		g := s.cfg.Policy.ReserveGear(j, now, now, len(s.queue))
		s.start(j, g, now)
	}
	if len(s.queue) == 0 || s.cfg.Variant == FCFS {
		s.cfg.Policy.PostPass(s, now)
		return
	}

	// EASY backfilling. The head cannot start; compute its shadow time
	// (reservation start) and the extra processors not needed by it.
	head := s.queue[0]
	shadow, extra := s.shadow(head, now)
	free := s.cl.FreeCount()
	kept := make([]*workload.Job, 1, len(s.queue))
	kept[0] = head
	qlen := len(s.queue)
	for _, j := range s.queue[1:] {
		started := false
		if j.Procs <= free {
			feasible := func(g dvfs.Gear) bool {
				// The backfill must not delay the reservation: either it
				// completes (by its kill limit) before the shadow time, or
				// it fits into the processors the head leaves over.
				return now+s.reqDur(j, g) <= shadow || j.Procs <= extra
			}
			if g, ok := s.cfg.Policy.BackfillGear(j, now, qlen-1, feasible); ok && feasible(g) {
				s.start(j, g, now)
				free -= j.Procs
				if now+s.reqDur(j, g) > shadow {
					extra -= j.Procs
				}
				qlen--
				started = true
			}
		}
		if !started {
			kept = append(kept, j)
		}
	}
	s.queue = kept
	s.cfg.Policy.PostPass(s, now)
}

// profilePass replans the queue against an availability profile. The
// first maxRes blocked jobs receive reservations (placed in queue order,
// never delaying an earlier one); the rest may only start immediately, and
// only if that disturbs no reservation. maxRes = len(queue) yields
// conservative backfilling; small maxRes yields "flexible" EASY variants
// protecting the first K queued jobs.
func (s *System) profilePass(now float64, maxRes int) {
	prof := profile.New(s.cl.Total())
	for _, rs := range s.runList {
		// A job at its kill limit still occupies processors until its
		// completion event fires (possibly at this same timestamp, later
		// in the event order), so its release must stay strictly after
		// `now` or the profile would over-commit the machine.
		end := rs.PlannedEnd
		if end <= now {
			end = math.Nextafter(now, math.Inf(1))
		}
		prof.Add(profile.Entry{Start: now, End: end, CPUs: rs.Job.Procs})
	}
	kept := make([]*workload.Job, 0, len(s.queue))
	qlen := len(s.queue)
	reserved := 0
	for _, j := range s.queue {
		if reserved < maxRes {
			// Reservation (or immediate start): the gear decision sees
			// the start the job would get at the top gear; the slot is
			// then recomputed with the chosen gear's dilated duration.
			est := prof.EarliestStart(j.Procs, s.reqDur(j, s.cfg.Gears.Top()), now)
			g := s.cfg.Policy.ReserveGear(j, est, now, qlen-1)
			d := s.reqDur(j, g)
			st := prof.EarliestStart(j.Procs, d, now)
			if st <= now {
				s.start(j, g, now)
				qlen--
				prof.Add(profile.Entry{Start: now, End: now + d, CPUs: j.Procs})
			} else {
				prof.Add(profile.Entry{Start: st, End: st + d, CPUs: j.Procs})
				reserved++
				kept = append(kept, j)
			}
			continue
		}
		// Beyond the protected prefix: immediate backfill or nothing.
		feasible := func(g dvfs.Gear) bool {
			return prof.CanPlace(j.Procs, now, s.reqDur(j, g))
		}
		if g, ok := s.cfg.Policy.BackfillGear(j, now, qlen-1, feasible); ok && feasible(g) {
			s.start(j, g, now)
			qlen--
			prof.Add(profile.Entry{Start: now, End: now + s.reqDur(j, g), CPUs: j.Procs})
			continue
		}
		kept = append(kept, j)
	}
	s.queue = kept
	s.cfg.Policy.PostPass(s, now)
}

// start begins executing j at gear g immediately.
func (s *System) start(j *workload.Job, g dvfs.Gear, now float64) {
	alloc, err := s.cl.Allocate(j.Procs, now)
	if err != nil {
		// The pass only starts jobs that fit; failure is a scheduler bug.
		panic(fmt.Sprintf("sched: allocation invariant broken for job %d: %v", j.ID, err))
	}
	rs := &RunState{
		Job:        j,
		Gear:       g,
		Start:      now,
		PlannedEnd: now + s.reqDur(j, g),
		ActualEnd:  now + s.actDur(j, g),
		Alloc:      alloc,
		phaseStart: now,
		Reduced:    !s.cfg.Gears.IsTop(g),
	}
	h, err := s.engine.Schedule(rs.ActualEnd, sim.EvEnd, rs)
	if err != nil {
		panic(fmt.Sprintf("sched: scheduling completion of job %d: %v", j.ID, err))
	}
	rs.endEv = h
	s.runList = append(s.runList, rs)
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.JobStarted(rs, now)
	}
}

// finish releases j's processors and closes its phase history.
func (s *System) finish(rs *RunState, now float64) {
	if err := s.cl.Release(rs.Alloc, now); err != nil {
		panic(fmt.Sprintf("sched: release invariant broken for job %d: %v", rs.Job.ID, err))
	}
	for i, r := range s.runList {
		if r == rs {
			s.runList = append(s.runList[:i], s.runList[i+1:]...)
			break
		}
	}
	rs.Phases = rs.AllPhases(now)
	rs.phaseStart = now // the open phase is now empty
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.JobFinished(rs, now)
	}
}

// SetGear switches a running job to gear g at time now, rescaling its
// remaining work under the β model and re-scheduling its completion. It
// implements the paper's future-work extension of dynamically raising
// frequencies of running jobs. Policies call it from PostPass.
func (s *System) SetGear(rs *RunState, g dvfs.Gear, now float64) {
	if g == rs.Gear {
		return
	}
	oldCoef := s.Coef(rs.Job, rs.Gear)
	dur := now - rs.phaseStart
	if dur > 0 {
		rs.Phases = append(rs.Phases, Phase{Gear: rs.Gear, Dur: dur})
		rs.workDone += dur / oldCoef
		rs.reqDone += dur / oldCoef
	}
	rs.phaseStart = now
	rs.Gear = g
	newCoef := s.Coef(rs.Job, g)
	remWork := rs.Job.EffectiveRuntime() - rs.workDone
	if remWork < 0 {
		remWork = 0
	}
	remReq := rs.Job.ReqTime - rs.reqDone
	if remReq < 0 {
		remReq = 0
	}
	rs.ActualEnd = now + remWork*newCoef
	rs.PlannedEnd = now + remReq*newCoef
	if !s.cfg.Gears.IsTop(g) {
		rs.Reduced = true
	}
	s.engine.Cancel(rs.endEv)
	h, err := s.engine.Schedule(rs.ActualEnd, sim.EvEnd, rs)
	if err != nil {
		panic(fmt.Sprintf("sched: rescheduling completion of job %d: %v", rs.Job.ID, err))
	}
	rs.endEv = h
}
