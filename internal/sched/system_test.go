package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/workload"
)

// auditRecorder captures job lifecycle events and audits the processor
// invariant (busy never exceeds the machine size).
type auditRecorder struct {
	t       *testing.T
	total   int
	busy    int
	maxBusy int
	starts  map[int]float64
	ends    map[int]float64
	gears   map[int]dvfs.Gear
	reduced map[int]bool
	phases  map[int][]Phase
}

func newAudit(t *testing.T, total int) *auditRecorder {
	return &auditRecorder{
		t: t, total: total,
		starts: map[int]float64{}, ends: map[int]float64{},
		gears: map[int]dvfs.Gear{}, reduced: map[int]bool{},
		phases: map[int][]Phase{},
	}
}

func (a *auditRecorder) JobStarted(rs *RunState, now float64) {
	id := rs.Job.ID
	if _, dup := a.starts[id]; dup {
		a.t.Errorf("job %d started twice", id)
	}
	if now < rs.Job.Submit {
		a.t.Errorf("job %d started at %v before submit %v", id, now, rs.Job.Submit)
	}
	a.starts[id] = now
	a.gears[id] = rs.Gear
	a.busy += rs.Job.Procs
	if a.busy > a.maxBusy {
		a.maxBusy = a.busy
	}
	if a.busy > a.total {
		a.t.Errorf("busy processors %d exceed machine size %d at t=%v", a.busy, a.total, now)
	}
}

func (a *auditRecorder) JobFinished(rs *RunState, now float64) {
	id := rs.Job.ID
	a.ends[id] = now
	a.reduced[id] = rs.Reduced
	// Copy: the scheduler recycles RunStates (and their Phases backing
	// arrays) once JobFinished returns.
	a.phases[id] = append([]Phase(nil), rs.Phases...)
	a.busy -= rs.Job.Procs
}

func paperSystem(t *testing.T, cpus int, variant Variant, pol GearPolicy, rec Recorder) *System {
	t.Helper()
	gears := dvfs.PaperGearSet()
	sys, err := New(Config{
		CPUs:      cpus,
		Gears:     gears,
		TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy:    pol,
		Variant:   variant,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys
}

func topPolicy() GearPolicy { return FixedGear{Gear: dvfs.PaperGearSet().Top()} }

func mkTrace(cpus int, jobs ...*workload.Job) *workload.Trace {
	for _, j := range jobs {
		if j.Beta == 0 {
			j.Beta = -1
		}
	}
	return &workload.Trace{Name: "test", CPUs: cpus, Jobs: jobs}
}

func TestNewRejectsBadConfig(t *testing.T) {
	gears := dvfs.PaperGearSet()
	tm := dvfs.NewTimeModel(0.5, gears)
	cases := []Config{
		{CPUs: 0, Gears: gears, TimeModel: tm, Policy: topPolicy()},
		{CPUs: 4, Gears: dvfs.GearSet{}, TimeModel: tm, Policy: topPolicy()},
		{CPUs: 4, Gears: gears, TimeModel: tm, Policy: nil},
		{CPUs: 4, Gears: gears, Policy: topPolicy()}, // zero time model
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSingleJobRunsImmediately(t *testing.T) {
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, topPolicy(), rec)
	tr := mkTrace(4, &workload.Job{ID: 1, Submit: 5, Runtime: 100, Procs: 2, ReqTime: 200})
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if rec.starts[1] != 5 {
		t.Errorf("start = %v, want 5", rec.starts[1])
	}
	if rec.ends[1] != 105 {
		t.Errorf("end = %v, want 105 (runtime, not requested)", rec.ends[1])
	}
}

func TestJobKilledAtRequestedLimit(t *testing.T) {
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, topPolicy(), rec)
	tr := mkTrace(4, &workload.Job{ID: 1, Submit: 0, Runtime: 500, Procs: 1, ReqTime: 300})
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if rec.ends[1] != 300 {
		t.Errorf("end = %v, want 300 (killed at limit)", rec.ends[1])
	}
}

// The canonical EASY scenario: a short job jumps the queue through the
// hole left before the head job's reservation, and a long one is refused.
func TestEASYBackfillClassic(t *testing.T) {
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, topPolicy(), rec)
	tr := mkTrace(4,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 2, ReqTime: 100},  // runs [0,100)
		&workload.Job{ID: 2, Submit: 10, Runtime: 100, Procs: 4, ReqTime: 100}, // head: reserved at 100
		&workload.Job{ID: 3, Submit: 20, Runtime: 50, Procs: 2, ReqTime: 50},   // backfills: ends 70 <= 100
		&workload.Job{ID: 4, Submit: 30, Runtime: 100, Procs: 2, ReqTime: 100}, // must wait: would delay head
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{1: 0, 2: 100, 3: 20, 4: 200}
	for id, w := range want {
		if got := rec.starts[id]; got != w {
			t.Errorf("job %d start = %v, want %v", id, got, w)
		}
	}
}

// Without backfilling (FCFS) the same trace keeps strict arrival order.
func TestFCFSNoBackfill(t *testing.T) {
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, FCFS, topPolicy(), rec)
	tr := mkTrace(4,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 2, ReqTime: 100},
		&workload.Job{ID: 2, Submit: 10, Runtime: 100, Procs: 4, ReqTime: 100},
		&workload.Job{ID: 3, Submit: 20, Runtime: 50, Procs: 2, ReqTime: 50},
		&workload.Job{ID: 4, Submit: 30, Runtime: 100, Procs: 2, ReqTime: 100},
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	// Job 2 waits for job 1; jobs 3 and 4 wait for job 2, then share.
	want := map[int]float64{1: 0, 2: 100, 3: 200, 4: 200}
	for id, w := range want {
		if got := rec.starts[id]; got != w {
			t.Errorf("job %d start = %v, want %v", id, got, w)
		}
	}
}

// A backfilled job may run past the shadow time if it fits into the extra
// processors the head job leaves free.
func TestEASYBackfillOnExtraProcessors(t *testing.T) {
	rec := newAudit(t, 8)
	sys := paperSystem(t, 8, EASY, topPolicy(), rec)
	tr := mkTrace(8,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 3, ReqTime: 100},  // [0,100)
		&workload.Job{ID: 2, Submit: 0, Runtime: 50, Procs: 3, ReqTime: 50},    // [0,50)
		&workload.Job{ID: 3, Submit: 10, Runtime: 100, Procs: 7, ReqTime: 100}, // head: shadow=100, extra=1
		&workload.Job{ID: 4, Submit: 20, Runtime: 500, Procs: 1, ReqTime: 500}, // long but 1 cpu <= extra: backfills
		&workload.Job{ID: 5, Submit: 25, Runtime: 500, Procs: 1, ReqTime: 500}, // extra exhausted: waits
		&workload.Job{ID: 6, Submit: 30, Runtime: 60, Procs: 1, ReqTime: 60},   // ends 90 <= 100: backfills
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if rec.starts[4] != 20 {
		t.Errorf("job 4 start = %v, want 20 (fits extra processors)", rec.starts[4])
	}
	if rec.starts[6] != 30 {
		t.Errorf("job 6 start = %v, want 30 (ends before shadow)", rec.starts[6])
	}
	if rec.starts[3] != 100 {
		t.Errorf("head start = %v, want 100 (reservation honoured)", rec.starts[3])
	}
	if rec.starts[5] < 100 {
		t.Errorf("job 5 start = %v, want >= 100 (extra exhausted)", rec.starts[5])
	}
}

// Early completions must trigger rescheduling so the head starts sooner
// than its requested-time reservation predicted.
func TestEarlyCompletionReschedules(t *testing.T) {
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, topPolicy(), rec)
	tr := mkTrace(4,
		// Requests 1000 s but actually runs 50 s.
		&workload.Job{ID: 1, Submit: 0, Runtime: 50, Procs: 4, ReqTime: 1000},
		&workload.Job{ID: 2, Submit: 10, Runtime: 100, Procs: 4, ReqTime: 100},
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if rec.starts[2] != 50 {
		t.Errorf("job 2 start = %v, want 50 (rescheduled on early end)", rec.starts[2])
	}
}

// Reduced-gear execution dilates the run time by the β model coefficient.
func TestGearDilatesRuntime(t *testing.T) {
	low := dvfs.PaperGearSet().Lowest()
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, FixedGear{Gear: low}, rec)
	tr := mkTrace(4, &workload.Job{ID: 1, Submit: 0, Runtime: 1000, Procs: 2, ReqTime: 1000})
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	// Coef(0.8) = 0.5*(2.3/0.8-1)+1 = 1.9375 -> ends at 1937.5.
	if math.Abs(rec.ends[1]-1937.5) > 1e-9 {
		t.Errorf("end = %v, want 1937.5", rec.ends[1])
	}
	if !rec.reduced[1] {
		t.Error("job not marked reduced")
	}
	if len(rec.phases[1]) != 1 || rec.phases[1][0].Gear != low {
		t.Errorf("phases = %+v, want single low-gear phase", rec.phases[1])
	}
}

// Per-job β overrides the global model.
func TestPerJobBetaOverride(t *testing.T) {
	low := dvfs.PaperGearSet().Lowest()
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, FixedGear{Gear: low}, rec)
	tr := mkTrace(4, &workload.Job{ID: 1, Submit: 0, Runtime: 1000, Procs: 2, ReqTime: 1000, Beta: 0})
	// Beta 0 would be overwritten by mkTrace's -1 defaulting; set after.
	tr.Jobs[0].Beta = 0
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if math.Abs(rec.ends[1]-1000) > 1e-9 {
		t.Errorf("end = %v, want 1000 (β=0 means no dilation)", rec.ends[1])
	}
}

// boostPolicy runs everything at the lowest gear but raises running jobs
// to the top gear as soon as any job waits — the dynamic boost extension.
type boostPolicy struct {
	gears dvfs.GearSet
}

func (p boostPolicy) Name() string { return "boost-test" }
func (p boostPolicy) ReserveGear(*workload.Job, float64, float64, int) dvfs.Gear {
	return p.gears.Lowest()
}
func (p boostPolicy) BackfillGear(j *workload.Job, now float64, wq int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	return p.gears.Lowest(), feasible(p.gears.Lowest())
}
func (p boostPolicy) Bind(*System) {}
func (p boostPolicy) ControlPass(sys *System, now float64) {
	if sys.QueueLen() == 0 {
		return
	}
	for _, rs := range sys.Running() {
		sys.SetGear(rs, p.gears.Top(), now)
	}
}

func TestDynamicBoostRescalesRemainingWork(t *testing.T) {
	gears := dvfs.PaperGearSet()
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, boostPolicy{gears: gears}, rec)
	// Job 1 occupies the machine at the lowest gear (Coef 1.9375). At
	// t=968.75 exactly half its work is done (500 of 1000 top-seconds).
	// Job 2's arrival then boosts it to the top gear, so the remaining
	// 500 top-seconds run undilated: completion at 968.75+500 = 1468.75.
	tr := mkTrace(4,
		&workload.Job{ID: 1, Submit: 0, Runtime: 1000, Procs: 4, ReqTime: 1000},
		&workload.Job{ID: 2, Submit: 968.75, Runtime: 100, Procs: 1, ReqTime: 100},
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if math.Abs(rec.ends[1]-1468.75) > 1e-9 {
		t.Errorf("boosted job end = %v, want 1468.75", rec.ends[1])
	}
	ph := rec.phases[1]
	if len(ph) != 2 {
		t.Fatalf("phases = %+v, want 2", ph)
	}
	if math.Abs(ph[0].Dur-968.75) > 1e-9 || ph[0].Gear != gears.Lowest() {
		t.Errorf("phase 0 = %+v", ph[0])
	}
	if math.Abs(ph[1].Dur-500) > 1e-9 || ph[1].Gear != gears.Top() {
		t.Errorf("phase 1 = %+v", ph[1])
	}
	if !rec.reduced[1] {
		t.Error("boosted job must still count as reduced")
	}
}

// Conservative backfilling fills a hole ahead of the queue when doing so
// delays no earlier reservation, unlike FCFS.
func TestConservativeFillsHole(t *testing.T) {
	rec := newAudit(t, 6)
	sys := paperSystem(t, 6, Conservative, topPolicy(), rec)
	tr := mkTrace(6,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 4, ReqTime: 100}, // [0,100)
		&workload.Job{ID: 2, Submit: 1, Runtime: 50, Procs: 6, ReqTime: 50},   // reserved [100,150)
		&workload.Job{ID: 3, Submit: 2, Runtime: 90, Procs: 2, ReqTime: 90},   // fits [2,92) beside job 1
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if rec.starts[3] != 2 {
		t.Errorf("job 3 start = %v, want 2 (hole fill)", rec.starts[3])
	}
	if rec.starts[2] != 100 {
		t.Errorf("job 2 start = %v, want 100 (reservation kept)", rec.starts[2])
	}
}

// Conservative must refuse a jump-ahead that would delay an earlier
// reservation.
func TestConservativeProtectsReservations(t *testing.T) {
	rec := newAudit(t, 6)
	sys := paperSystem(t, 6, Conservative, topPolicy(), rec)
	tr := mkTrace(6,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 4, ReqTime: 100},
		&workload.Job{ID: 2, Submit: 1, Runtime: 50, Procs: 6, ReqTime: 50}, // reserved [100,150)
		// Overlaps job 2's reservation window on 2 cpus: 6+2 > 6, refused.
		&workload.Job{ID: 3, Submit: 2, Runtime: 120, Procs: 2, ReqTime: 120},
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if rec.starts[3] < 150 {
		t.Errorf("job 3 start = %v, want >= 150", rec.starts[3])
	}
}

func TestSimulateRejectsOversizedJob(t *testing.T) {
	sys := paperSystem(t, 4, EASY, topPolicy(), nil)
	tr := mkTrace(8, &workload.Job{ID: 1, Submit: 0, Runtime: 10, Procs: 8, ReqTime: 10})
	if err := sys.Simulate(tr); err == nil {
		t.Error("oversized job accepted")
	}
}

func randomTrace(seed int64, cpus, n int) *workload.Trace {
	r := rand.New(rand.NewSource(seed))
	tr := &workload.Trace{Name: "rand", CPUs: cpus}
	t := 0.0
	for i := 0; i < n; i++ {
		t += r.Float64() * 30
		rt := 1 + r.Float64()*300
		rq := rt * (1 + r.Float64()*3)
		tr.Jobs = append(tr.Jobs, &workload.Job{
			ID: i + 1, Submit: t, Runtime: rt, Procs: 1 + r.Intn(cpus), ReqTime: rq, Beta: -1,
		})
	}
	return tr
}

// Property: every variant completes every job, never oversubscribes the
// machine, and never starts a job before its submit time.
func TestRandomTracesAllVariants(t *testing.T) {
	for _, variant := range []Variant{EASY, FCFS, Conservative} {
		for seed := int64(0); seed < 8; seed++ {
			rec := newAudit(t, 16)
			sys := paperSystem(t, 16, variant, topPolicy(), rec)
			tr := randomTrace(seed, 16, 120)
			if err := sys.Simulate(tr); err != nil {
				t.Fatalf("%v seed %d: %v", variant, seed, err)
			}
			if len(rec.ends) != 120 {
				t.Errorf("%v seed %d: %d/120 jobs finished", variant, seed, len(rec.ends))
			}
		}
	}
}

// Property: FCFS starts jobs in strict arrival order.
func TestFCFSOrderingProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rec := newAudit(t, 8)
		sys := paperSystem(t, 8, FCFS, topPolicy(), rec)
		tr := randomTrace(seed, 8, 80)
		if err := sys.Simulate(tr); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(tr.Jobs); i++ {
			a, b := tr.Jobs[i-1], tr.Jobs[i]
			if rec.starts[b.ID] < rec.starts[a.ID] {
				t.Fatalf("seed %d: job %d (arrived later) started %v before job %d at %v",
					seed, b.ID, rec.starts[b.ID], a.ID, rec.starts[a.ID])
			}
		}
	}
}

// Property: determinism — identical configurations produce identical
// schedules.
func TestDeterminism(t *testing.T) {
	run := func() map[int]float64 {
		rec := newAudit(t, 16)
		sys := paperSystem(t, 16, EASY, topPolicy(), rec)
		if err := sys.Simulate(randomTrace(99, 16, 200)); err != nil {
			t.Fatal(err)
		}
		return rec.starts
	}
	a, b := run(), run()
	for id, st := range a {
		if b[id] != st {
			t.Fatalf("job %d start differs between identical runs: %v vs %v", id, st, b[id])
		}
	}
}

// Property: with accurate estimates and backfilling, no job starts later
// than it would under FCFS *for the head-of-queue job at any time* —
// checked indirectly: EASY's makespan never exceeds FCFS's on these traces
// plus the strong invariant that both complete the same work.
func TestEASYCompletesSameWorkAsFCFS(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		totals := map[Variant]float64{}
		for _, v := range []Variant{EASY, FCFS} {
			rec := newAudit(t, 12)
			sys := paperSystem(t, 12, v, topPolicy(), rec)
			tr := randomTrace(seed, 12, 100)
			if err := sys.Simulate(tr); err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for id, e := range rec.ends {
				sum += e - rec.starts[id]
			}
			totals[v] = sum
		}
		if math.Abs(totals[EASY]-totals[FCFS]) > 1e-6 {
			t.Errorf("seed %d: total runtime differs: EASY %v vs FCFS %v",
				seed, totals[EASY], totals[FCFS])
		}
	}
}

func TestSystemAccessorsAndStrings(t *testing.T) {
	sys := paperSystem(t, 4, EASY, topPolicy(), nil)
	if sys.Now() != 0 {
		t.Errorf("Now = %v", sys.Now())
	}
	if sys.Cluster().Total() != 4 {
		t.Errorf("Cluster.Total = %d", sys.Cluster().Total())
	}
	if len(sys.Gears()) != 6 {
		t.Errorf("Gears = %d", len(sys.Gears()))
	}
	for v, want := range map[Variant]string{EASY: "easy", FCFS: "fcfs", Conservative: "conservative", Variant(9): "variant(9)"} {
		if v.String() != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), v.String(), want)
		}
	}
	for o, want := range map[Order]string{FCFSOrder: "fcfs", SJFOrder: "sjf"} {
		if o.String() != want {
			t.Errorf("Order.String() = %q, want %q", o.String(), want)
		}
	}
	if got := (FixedGear{Gear: sys.Gears().Top()}).Name(); got != "fixed@2.3GHz@1.5V" {
		t.Errorf("FixedGear.Name = %q", got)
	}
}

func TestMultiRecorderFanOut(t *testing.T) {
	a := newAudit(t, 4)
	b := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, topPolicy(), MultiRecorder{a, b})
	tr := mkTrace(4, &workload.Job{ID: 1, Submit: 0, Runtime: 10, Procs: 2, ReqTime: 10})
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if a.starts[1] != b.starts[1] || a.ends[1] != b.ends[1] {
		t.Error("multi-recorder members diverged")
	}
}

func TestRunStateWallClock(t *testing.T) {
	rs := &RunState{Start: 100}
	if rs.WallClock(150) != 50 {
		t.Errorf("WallClock = %v", rs.WallClock(150))
	}
}
