package sched

import (
	"strings"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/workload"
)

// valueSource hides SliceSource's stable-pointer fast path, forcing the
// scheduler through the allocate-per-arrival path every generating source
// (wgen.Stream, SWFSource) takes.
type valueSource struct {
	src *workload.SliceSource
}

func (v valueSource) Name() string               { return v.src.Name() }
func (v valueSource) CPUs() int                  { return v.src.CPUs() }
func (v valueSource) Next() (workload.Job, bool) { return v.src.Next() }
func (v valueSource) Reset() error               { return v.src.Reset() }
func (v valueSource) Err() error                 { return v.src.Err() }

// newSystem builds a system for the streaming tests.
func newSystem(t *testing.T, variant Variant, order Order, resv int) *System {
	t.Helper()
	gears := dvfs.PaperGearSet()
	sys, err := New(Config{
		CPUs:         16,
		Gears:        gears,
		TimeModel:    dvfs.NewTimeModel(0.5, gears),
		Policy:       topPolicy(),
		Variant:      variant,
		Order:        order,
		Reservations: resv,
		Recorder:     newAudit(t, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSimulateSourceMatchesTrace proves the streamed consumption path —
// jobs copied out of a value source, one pending arrival at a time —
// schedules identically to the materialized Simulate under every base
// policy, so the streaming pipeline inherits the determinism guarantees.
func TestSimulateSourceMatchesTrace(t *testing.T) {
	fixtures := []struct {
		name    string
		variant Variant
		order   Order
		resv    int
	}{
		{"easy", EASY, FCFSOrder, 0},
		{"fcfs", FCFS, FCFSOrder, 0},
		{"conservative", Conservative, FCFSOrder, 0},
		{"easy-sjf", EASY, SJFOrder, 0},
		{"flexible-4", EASY, FCFSOrder, 4},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				tr := randomTrace(seed, 16, 200)

				sysA := newSystem(t, fx.variant, fx.order, fx.resv)
				if err := sysA.Simulate(tr); err != nil {
					t.Fatal(err)
				}
				recA := sysA.cfg.Recorder.(*auditRecorder)

				sysB := newSystem(t, fx.variant, fx.order, fx.resv)
				if err := sysB.SimulateSource(valueSource{tr.Source()}); err != nil {
					t.Fatal(err)
				}
				recB := sysB.cfg.Recorder.(*auditRecorder)

				if len(recA.starts) != len(recB.starts) {
					t.Fatalf("seed %d: %d vs %d jobs started", seed, len(recA.starts), len(recB.starts))
				}
				for id, st := range recA.starts {
					if recB.starts[id] != st {
						t.Fatalf("seed %d: job %d starts %v (trace) vs %v (source)", seed, id, st, recB.starts[id])
					}
					if recB.ends[id] != recA.ends[id] {
						t.Fatalf("seed %d: job %d ends %v (trace) vs %v (source)", seed, id, recA.ends[id], recB.ends[id])
					}
				}
			}
		})
	}
}

// TestSimulateSourceRewinds: SimulateSource rewinds the source itself, so
// a half-consumed source still replays the full workload.
func TestSimulateSourceRewinds(t *testing.T) {
	tr := randomTrace(3, 16, 50)
	src := tr.Source()
	for i := 0; i < 20; i++ {
		src.Next()
	}
	sys := newSystem(t, EASY, FCFSOrder, 0)
	if err := sys.SimulateSource(src); err != nil {
		t.Fatal(err)
	}
	rec := sys.cfg.Recorder.(*auditRecorder)
	if len(rec.starts) != 50 {
		t.Fatalf("scheduled %d jobs, want 50", len(rec.starts))
	}
}

// TestSimulateSourceErrors covers the streamed validation paths: empty
// workloads, machine overflow, malformed jobs and submit regressions all
// surface as errors instead of panics or silent corruption.
func TestSimulateSourceErrors(t *testing.T) {
	job := func(id int, submit float64, procs int) *workload.Job {
		return &workload.Job{ID: id, Submit: submit, Runtime: 10, Procs: procs, ReqTime: 20}
	}
	cases := []struct {
		name string
		jobs []*workload.Job
		want string
	}{
		{"empty", nil, "is empty"},
		{"oversized", []*workload.Job{job(1, 0, 17)}, "needs 17 > 16 processors"},
		{"invalid", []*workload.Job{job(1, 0, 0)}, "requests 0 processors"},
		{"unsorted", []*workload.Job{job(1, 100, 1), job(2, 50, 1)}, "not sorted"},
		{"mid-stream-oversized", []*workload.Job{job(1, 0, 1), job(2, 5, 17)}, "needs 17 > 16 processors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := newSystem(t, EASY, FCFSOrder, 0)
			err := sys.SimulateSource(workload.NewSliceSource("bad", 16, tc.jobs))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
