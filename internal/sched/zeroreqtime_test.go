package sched

import (
	"testing"

	"repro/internal/dvfs"
	"repro/internal/workload"
)

// Regression for the zero-ReqTime backfill crash: real SWF logs contain
// jobs with a zero requested time, whose planned occupancy (kill limit)
// is zero seconds. profile.CanPlace used to report any non-positive
// duration as placeable without looking at instantaneous availability, so
// a replanning pass would backfill such a job onto a fully busy machine
// and start() would panic on the allocation invariant. The job must
// instead stay queued until processors are actually free.
func TestZeroReqTimeJobAtFullMachineStaysQueued(t *testing.T) {
	for _, compat := range []struct {
		name string
		c    Compat
	}{
		{"incremental", Compat{}},
		{"rebuild", Compat{RebuildProfile: true}},
		{"seed", SeedCompat()},
	} {
		t.Run(compat.name, func(t *testing.T) {
			gears := dvfs.PaperGearSet()
			sys, err := New(Config{
				CPUs:      4,
				Gears:     gears,
				TimeModel: dvfs.NewTimeModel(0.5, gears),
				Policy:    topPolicy(),
				Variant:   EASY,
				Compat:    compat.c,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Fill the machine, then queue two reserved jobs ahead of the
			// zero-ReqTime job so it lands in the backfill-candidate
			// suffix of the replanning pass.
			filler := &workload.Job{ID: 1, Procs: 4, Submit: 0, Runtime: 100, ReqTime: 100, Beta: -1}
			sys.start(filler, gears.Top(), 0)
			blockedA := &workload.Job{ID: 2, Procs: 4, Submit: 0, Runtime: 50, ReqTime: 60, Beta: -1}
			blockedB := &workload.Job{ID: 3, Procs: 4, Submit: 0, Runtime: 50, ReqTime: 60, Beta: -1}
			zero := &workload.Job{ID: 4, Procs: 1, Submit: 0, Runtime: 0, ReqTime: 0, Beta: -1}
			sys.queue = []*workload.Job{blockedA, blockedB, zero}

			sys.profilePass(0, 2) // used to panic: allocation invariant broken

			found := false
			for _, j := range sys.queue {
				if j == zero {
					found = true
				}
			}
			if !found {
				t.Fatal("zero-ReqTime job left the queue on a full machine")
			}
			if got := sys.cl.FreeCount(); got != 0 {
				t.Fatalf("machine should stay full, %d processors free", got)
			}
		})
	}
}

// A legitimately backfilled zero-ReqTime job must still occupy its
// processors within the pass that starts it: its planned occupancy is
// zero seconds long, but the profile records a one-ulp interval at now,
// so a later placement in the same pass cannot be handed the same
// processors (which used to panic the allocation invariant one job
// further down the queue).
func TestZeroReqTimeStartOccupiesWithinPass(t *testing.T) {
	for _, compat := range []struct {
		name string
		c    Compat
	}{
		{"incremental", Compat{}},
		{"rebuild", Compat{RebuildProfile: true}},
		{"seed", SeedCompat()},
	} {
		t.Run(compat.name, func(t *testing.T) {
			gears := dvfs.PaperGearSet()
			sys, err := New(Config{
				CPUs:      4,
				Gears:     gears,
				TimeModel: dvfs.NewTimeModel(0.5, gears),
				Policy:    topPolicy(),
				Variant:   EASY,
				Compat:    compat.c,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Three of four processors busy; the head needs all four, so
			// both 1-proc jobs behind it are backfill candidates. The
			// zero-ReqTime job takes the last free processor — the normal
			// job after it must see a full machine and stay queued.
			filler := &workload.Job{ID: 1, Procs: 3, Submit: 0, Runtime: 100, ReqTime: 100, Beta: -1}
			sys.start(filler, gears.Top(), 0)
			blocked := &workload.Job{ID: 2, Procs: 4, Submit: 0, Runtime: 50, ReqTime: 60, Beta: -1}
			zero := &workload.Job{ID: 3, Procs: 1, Submit: 0, Runtime: 0, ReqTime: 0, Beta: -1}
			normal := &workload.Job{ID: 4, Procs: 1, Submit: 0, Runtime: 30, ReqTime: 40, Beta: -1}
			sys.queue = []*workload.Job{blocked, zero, normal}

			sys.profilePass(0, 1) // used to panic placing `normal`

			for _, j := range sys.queue {
				if j == zero {
					t.Fatal("zero-ReqTime job stayed queued with a processor free")
				}
			}
			found := false
			for _, j := range sys.queue {
				if j == normal {
					found = true
				}
			}
			if !found {
				t.Fatal("normal job started on a machine the zero-ReqTime job filled")
			}
		})
	}
}

// The flip side: once processors are free, a zero-ReqTime job must place
// immediately (the degenerate window still requires — and only requires —
// instantaneous availability).
func TestZeroReqTimeJobStartsOnFreeMachine(t *testing.T) {
	gears := dvfs.PaperGearSet()
	sys, err := New(Config{
		CPUs:      4,
		Gears:     gears,
		TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy:    topPolicy(),
		Variant:   EASY,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three of four processors busy: the 1-proc zero-ReqTime job fits.
	filler := &workload.Job{ID: 1, Procs: 3, Submit: 0, Runtime: 100, ReqTime: 100, Beta: -1}
	sys.start(filler, gears.Top(), 0)
	blocked := &workload.Job{ID: 2, Procs: 4, Submit: 0, Runtime: 50, ReqTime: 60, Beta: -1}
	zero := &workload.Job{ID: 3, Procs: 1, Submit: 0, Runtime: 0, ReqTime: 0, Beta: -1}
	sys.queue = []*workload.Job{blocked, zero}
	sys.profilePass(0, 1)
	for _, j := range sys.queue {
		if j == zero {
			t.Fatal("zero-ReqTime job stayed queued with a processor free")
		}
	}
}
