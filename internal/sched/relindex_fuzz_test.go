package sched

import (
	"testing"
)

// FuzzReleaseIndex drives the chunked release index from an arbitrary
// byte-encoded op stream and asserts its ordering, size and membership
// invariants against the sorted-slice oracle after every mutation. Each
// op consumes two bytes: the opcode selector and an argument. Inserts
// draw the release time from the argument's low nibble (heavy ties) and
// allocate a fresh id; removals target a live entry picked by the
// argument, or probe an absent key. The seed corpus lives under
// testdata/fuzz/FuzzReleaseIndex; CI runs a short -fuzz smoke on top of
// the seeds.
func FuzzReleaseIndex(f *testing.F) {
	f.Add([]byte{})
	// Insert ramp then FIFO drain.
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 1, 0, 1, 0, 1, 0, 1, 0})
	// Tie-heavy inserts interleaved with targeted removals and probes.
	f.Add([]byte{0, 0x11, 0, 0x11, 0, 0x11, 2, 7, 1, 1, 0, 0x11, 3, 5, 1, 0, 2, 0})
	// Enough churn to split and re-merge chunks.
	seed := make([]byte, 0, 1200)
	for i := 0; i < 300; i++ {
		seed = append(seed, 0, byte(i))
	}
	for i := 0; i < 150; i++ {
		seed = append(seed, 1, byte(3*i))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		var ix relIndex
		var o relOracle
		var liveIDs []int
		live := map[int]release{}
		nextID := 1
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 4 {
			case 0: // insert a fresh release; low nibble times force ties
				r := release{t: float64(arg & 0x0f), cpus: 1 + int(arg>>4), id: nextID}
				ix.insert(r)
				o.insert(r)
				live[nextID] = r
				liveIDs = append(liveIDs, nextID)
				nextID++
			case 1: // remove a live entry
				if len(liveIDs) == 0 {
					continue
				}
				k := int(arg) % len(liveIDs)
				id := liveIDs[k]
				r := live[id]
				if !ix.remove(r.t, r.id) {
					t.Fatalf("remove(%v,%d) missed a live entry", r.t, r.id)
				}
				if !o.remove(r.t, r.id) {
					t.Fatalf("oracle desync at (%v,%d)", r.t, r.id)
				}
				delete(live, id)
				liveIDs[k] = liveIDs[len(liveIDs)-1]
				liveIDs = liveIDs[:len(liveIDs)-1]
			case 2: // probe an absent key: must miss without mutating
				tAbs := float64(arg & 0x0f)
				if ix.remove(tAbs, nextID) {
					t.Fatalf("remove(%v,%d) hit an absent key", tAbs, nextID)
				}
			case 3: // re-add a live entry at a new time (gear switch shape)
				if len(liveIDs) == 0 {
					continue
				}
				k := int(arg) % len(liveIDs)
				id := liveIDs[k]
				r := live[id]
				if !ix.remove(r.t, r.id) || !o.remove(r.t, r.id) {
					t.Fatalf("re-add lost (%v,%d)", r.t, r.id)
				}
				r.t = float64((arg >> 4) & 0x0f)
				ix.insert(r)
				o.insert(r)
				live[id] = r
			}
			if ix.len() != len(o.rels) {
				t.Fatalf("op %d: size %d, oracle %d", i/2, ix.len(), len(o.rels))
			}
			if err := checkRelIndexInvariants(&ix); err != nil {
				t.Fatalf("op %d: %v", i/2, err)
			}
		}
		// Final membership + order audit against the oracle.
		k := 0
		ix.each(func(r release) bool {
			if r != o.rels[k] {
				t.Fatalf("final order[%d] = %+v, oracle %+v", k, r, o.rels[k])
			}
			k++
			return true
		})
		if k != len(o.rels) {
			t.Fatalf("final iteration yielded %d entries, oracle %d", k, len(o.rels))
		}
		for _, r := range live {
			mn, ok := ix.min()
			if !ok {
				t.Fatal("min reported empty with live entries")
			}
			if r.t < mn.t || (r.t == mn.t && r.id < mn.id) {
				t.Fatalf("min %+v not minimal, live entry %+v precedes it", mn, r)
			}
		}
	})
}
