// Package sched implements parallel job scheduling on a DVFS cluster: the
// EASY backfilling policy of Mu'alem & Feitelson (the paper's base policy)
// plus plain FCFS and conservative backfilling baselines. Frequency
// decisions are delegated to a GearPolicy, which is how the paper's
// BSLD-threshold algorithm (internal/core) plugs in.
package sched

import (
	"repro/internal/dvfs"
	"repro/internal/workload"
)

// GearPolicy chooses the CPU gear for every scheduling decision. The
// engine guarantees:
//
//   - ReserveGear is called exactly when a job is about to start (the head
//     of the queue fitting the free processors, or a job arriving into an
//     idle-enough machine). Whatever gear it returns is used.
//   - BackfillGear is called when a job could jump ahead of the reserved
//     head job. feasible(g) reports whether an immediate start at gear g
//     keeps the head's reservation intact; the policy must only return
//     gears for which feasible is true. ok=false leaves the job queued.
//
// Per-pass adjustment of running jobs (the dynamic boost extension,
// power capping) lives on the PowerController seam, not here: a policy
// that also implements PowerController is promoted to the system's
// controller automatically by New.
//
// wqOthers is the number of jobs waiting in the queue excluding the job
// under decision, matching the paper's WQthreshold semantics.
type GearPolicy interface {
	Name() string
	ReserveGear(j *workload.Job, start, now float64, wqOthers int) dvfs.Gear
	BackfillGear(j *workload.Job, now float64, wqOthers int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool)
}

// EstMonotonePolicy marks a GearPolicy whose ReserveGear decision is
// monotone in the start argument: for fixed job, pass time and queue
// depth, the returned gear moves through the gear order in one
// direction only as the candidate start grows (constant counts). The
// scheduler's replanning uses the marker to widen its changed-prefix
// analysis: when only job starts touched the base skyline since a
// reservation was planned, the replanned earliest start can only have
// drifted between the recorded top-gear estimate and the recorded
// reservation start, so a decision that is monotone over that interval
// and unchanged at both endpoints is provably unchanged everywhere in
// it — the reservation is reused without replanning. Policies without
// the marker keep the conservative analysis (any base mutation replans
// from the head). A threshold policy over a predicted-slowdown that is
// nondecreasing in the start qualifies; a policy keying on, say, start
// parity would not.
type EstMonotonePolicy interface {
	GearPolicy
	// EstMonotone is a marker; implementations assert the monotonicity
	// contract above and never call it.
	EstMonotone()
}

// PolicyCloner is implemented by stateful gear policies (typically ones
// doubling as PowerControllers) that can mint an unbound copy of
// themselves, so several executions — concurrent ones in particular —
// never share mutable policy state: each run clones the policy and binds
// the clone to its own system. Stateless policies (core.Policy,
// FixedGear) don't need it; they are safe to share as-is.
type PolicyCloner interface {
	// ClonePolicy returns an independent, unbound copy carrying the same
	// configuration.
	ClonePolicy() GearPolicy
}

// MultiRecorder fans lifecycle callbacks out to several recorders, so
// metrics collection and auxiliary trackers (e.g. per-node occupancy for
// the power-down baseline) can observe the same run.
type MultiRecorder []Recorder

// JobStarted implements Recorder.
func (m MultiRecorder) JobStarted(rs *RunState, now float64) {
	for _, r := range m {
		r.JobStarted(rs, now)
	}
}

// JobFinished implements Recorder.
func (m MultiRecorder) JobFinished(rs *RunState, now float64) {
	for _, r := range m {
		r.JobFinished(rs, now)
	}
}

// PassEnd forwards system-state samples to members implementing
// PassObserver.
func (m MultiRecorder) PassEnd(now float64, queued, busy int) {
	for _, r := range m {
		if o, ok := r.(PassObserver); ok {
			o.PassEnd(now, queued, busy)
		}
	}
}

// JobRegeared forwards gear switches to members implementing
// GearObserver.
func (m MultiRecorder) JobRegeared(rs *RunState, old dvfs.Gear, now float64) {
	for _, r := range m {
		if o, ok := r.(GearObserver); ok {
			o.JobRegeared(rs, old, now)
		}
	}
}

// FixedGear always schedules at one gear; with the top gear it is the
// paper's no-DVFS baseline.
type FixedGear struct {
	Gear dvfs.Gear
}

// Name implements GearPolicy.
func (p FixedGear) Name() string { return "fixed@" + p.Gear.String() }

// ReserveGear implements GearPolicy.
func (p FixedGear) ReserveGear(*workload.Job, float64, float64, int) dvfs.Gear { return p.Gear }

// BackfillGear implements GearPolicy.
func (p FixedGear) BackfillGear(j *workload.Job, now float64, wqOthers int, feasible func(dvfs.Gear) bool) (dvfs.Gear, bool) {
	return p.Gear, feasible(p.Gear)
}

// EstMonotone implements EstMonotonePolicy: a constant decision is
// trivially monotone in the start.
func (FixedGear) EstMonotone() {}
