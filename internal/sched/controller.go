package sched

import "repro/internal/dvfs"

// PowerController is the per-pass decision seam: where GearPolicy answers
// "what gear should this job start at?", a controller answers "given the
// cluster state right now, which running jobs should change gear?". It is
// the observe–decide–actuate loop of closed-loop power management:
//
//   - Bind is called once by New, before the simulation starts, handing
//     the controller the System it will observe and actuate (via SetGear,
//     Running, QueueLen, Cluster, ...).
//   - ControlPass runs after every scheduling pass — exactly the point
//     where the retired GearPolicy.PostPass hook ran — and may adjust
//     running jobs through System methods. The engine calls it after the
//     pass's starts and backfills are placed, so the controller sees the
//     post-decision state of the epoch.
//
// A controller that also implements Recorder (and optionally GearObserver)
// is fed the run's lifecycle callbacks, which is how metering controllers
// maintain O(1) online draw state without scanning the run list.
//
// Two controllers can be live at once: a GearPolicy implementing this
// interface keeps its per-pass hook (the §7 boost) even when an explicit
// Config.Controller is set, and the explicit controller runs after it —
// per-job boosting proposes, cluster-level enforcement disposes.
type PowerController interface {
	Name() string
	Bind(sys *System)
	ControlPass(sys *System, now float64)
}

// ControllerCloner is implemented by stateful controllers that can mint
// an unbound copy of themselves, so several executions — concurrent ones
// in particular — never share mutable controller state. It is the
// controller-seam analogue of PolicyCloner.
type ControllerCloner interface {
	// CloneController returns an independent, unbound copy carrying the
	// same configuration.
	CloneController() PowerController
}

// GearObserver is an optional extension of Recorder: implementations are
// notified when a running job switches gear (SetGear), completing the
// lifecycle triple {JobStarted, JobRegeared, JobFinished} that online
// power accounting needs for O(1) draw updates. The callback fires after
// the switch: rs.Gear is the new gear, old the one it left.
type GearObserver interface {
	JobRegeared(rs *RunState, old dvfs.Gear, now float64)
}
