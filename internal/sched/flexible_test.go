package sched

import (
	"testing"

	"repro/internal/workload"
)

// flexSystem builds an EASY system with the given reservation depth.
func flexSystem(t *testing.T, cpus, reservations int, rec Recorder) *System {
	t.Helper()
	sys := paperSystem(t, cpus, EASY, topPolicy(), rec)
	sys.cfg.Reservations = reservations
	return sys
}

// The discriminating scenario: a backfill that respects the head's
// reservation but would push the SECOND queued job far back. Classic EASY
// (depth 1) takes it; flexible backfilling with two reservations refuses.
//
//	machine: 6 processors
//	A  t=0  3 cpus 100 s    — runs [0,100)
//	H1 t=1  4 cpus 50 s     — blocked; reservation [100,150)
//	H2 t=2  5 cpus 100 s    — blocked; depth-2 reservation [150,250)
//	X  t=3  2 cpus 300 s    — fits the head's 2 extra processors
func flexTrace() *workload.Trace {
	return mkTrace(6,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 3, ReqTime: 100},
		&workload.Job{ID: 2, Submit: 1, Runtime: 50, Procs: 4, ReqTime: 50},
		&workload.Job{ID: 3, Submit: 2, Runtime: 100, Procs: 5, ReqTime: 100},
		&workload.Job{ID: 4, Submit: 3, Runtime: 300, Procs: 2, ReqTime: 300},
	)
}

func TestClassicEASYDelaysSecondQueuedJob(t *testing.T) {
	rec := newAudit(t, 6)
	sys := flexSystem(t, 6, 1, rec)
	if err := sys.Simulate(flexTrace()); err != nil {
		t.Fatal(err)
	}
	// X backfills immediately on the head's extra processors...
	if rec.starts[4] != 3 {
		t.Errorf("X start = %v, want 3 (EASY extra-processor backfill)", rec.starts[4])
	}
	// ...which holds 2 processors until 303 and starves H2 (needs 5).
	if rec.starts[3] != 303 {
		t.Errorf("H2 start = %v, want 303 (delayed by the backfill)", rec.starts[3])
	}
	if rec.starts[2] != 100 {
		t.Errorf("H1 start = %v, want 100 (reservation held)", rec.starts[2])
	}
}

func TestFlexibleDepthTwoProtectsSecondJob(t *testing.T) {
	rec := newAudit(t, 6)
	sys := flexSystem(t, 6, 2, rec)
	if err := sys.Simulate(flexTrace()); err != nil {
		t.Fatal(err)
	}
	if rec.starts[2] != 100 {
		t.Errorf("H1 start = %v, want 100", rec.starts[2])
	}
	// H2's depth-2 reservation is honoured.
	if rec.starts[3] != 150 {
		t.Errorf("H2 start = %v, want 150 (protected by second reservation)", rec.starts[3])
	}
	// X must wait for H2 instead of jumping it.
	if rec.starts[4] != 250 {
		t.Errorf("X start = %v, want 250", rec.starts[4])
	}
}

// Depth len(queue) must behave exactly like the conservative variant.
func TestDeepFlexibleEqualsConservative(t *testing.T) {
	for seed := int64(30); seed < 36; seed++ {
		tr := randomTrace(seed, 12, 120)
		recFlex := newAudit(t, 12)
		flex := flexSystem(t, 12, 1<<30, recFlex)
		if err := flex.Simulate(tr); err != nil {
			t.Fatal(err)
		}
		recCons := newAudit(t, 12)
		cons := paperSystem(t, 12, Conservative, topPolicy(), recCons)
		if err := cons.Simulate(tr); err != nil {
			t.Fatal(err)
		}
		for id, st := range recFlex.starts {
			if recCons.starts[id] != st {
				t.Fatalf("seed %d job %d: flexible-deep start %v != conservative %v",
					seed, id, st, recCons.starts[id])
			}
		}
	}
}

// SJF ordering: with equal-size jobs competing for the machine, the
// shorter requested time goes first regardless of arrival order.
func TestSJFOrderPrefersShortJobs(t *testing.T) {
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, topPolicy(), rec)
	sys.cfg.Order = SJFOrder
	tr := mkTrace(4,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 4, ReqTime: 100}, // running
		&workload.Job{ID: 2, Submit: 1, Runtime: 500, Procs: 4, ReqTime: 500}, // long, arrives first
		&workload.Job{ID: 3, Submit: 2, Runtime: 50, Procs: 4, ReqTime: 50},   // short, arrives later
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if rec.starts[3] != 100 {
		t.Errorf("short job start = %v, want 100 (SJF)", rec.starts[3])
	}
	if rec.starts[2] != 150 {
		t.Errorf("long job start = %v, want 150", rec.starts[2])
	}
}

// The same trace under FCFS order keeps arrival order.
func TestFCFSOrderKeepsArrival(t *testing.T) {
	rec := newAudit(t, 4)
	sys := paperSystem(t, 4, EASY, topPolicy(), rec)
	tr := mkTrace(4,
		&workload.Job{ID: 1, Submit: 0, Runtime: 100, Procs: 4, ReqTime: 100},
		&workload.Job{ID: 2, Submit: 1, Runtime: 500, Procs: 4, ReqTime: 500},
		&workload.Job{ID: 3, Submit: 2, Runtime: 50, Procs: 4, ReqTime: 50},
	)
	if err := sys.Simulate(tr); err != nil {
		t.Fatal(err)
	}
	if rec.starts[2] != 100 || rec.starts[3] != 600 {
		t.Errorf("starts = %v/%v, want 100/600", rec.starts[2], rec.starts[3])
	}
}

// SJF must not lose or duplicate jobs and typically lowers mean wait on
// random workloads; assert completion invariants plus the wait comparison
// on deterministic seeds.
func TestSJFCompletesAllAndHelpsWait(t *testing.T) {
	better := 0
	const seeds = 6
	for seed := int64(40); seed < 40+seeds; seed++ {
		tr := randomTrace(seed, 12, 150)
		waits := map[Order]float64{}
		for _, ord := range []Order{FCFSOrder, SJFOrder} {
			rec := newAudit(t, 12)
			sys := paperSystem(t, 12, EASY, topPolicy(), rec)
			sys.cfg.Order = ord
			if err := sys.Simulate(tr); err != nil {
				t.Fatal(err)
			}
			if len(rec.ends) != 150 {
				t.Fatalf("order %v seed %d: %d/150 jobs finished", ord, seed, len(rec.ends))
			}
			sum := 0.0
			for _, j := range tr.Jobs {
				sum += rec.starts[j.ID] - j.Submit
			}
			waits[ord] = sum / 150
		}
		if waits[SJFOrder] <= waits[FCFSOrder] {
			better++
		}
	}
	if better < seeds/2 {
		t.Errorf("SJF beat FCFS wait on only %d of %d seeds", better, seeds)
	}
}
