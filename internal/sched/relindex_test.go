package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/profile"
)

// checkRelIndexInvariants verifies the index's structural contract: every
// chunk non-empty and below the split threshold, entries sorted strictly
// by (t, id) within and across chunks, and the size counter exact. Shared
// by the differential suite and the fuzz target.
func checkRelIndexInvariants(ix *relIndex) error {
	n := 0
	var prev release
	first := true
	for ci, ch := range ix.chunks {
		if len(ch) == 0 {
			return fmt.Errorf("chunk %d is empty", ci)
		}
		if len(ch) >= relChunkMax {
			return fmt.Errorf("chunk %d holds %d entries, split threshold %d", ci, len(ch), relChunkMax)
		}
		for k, r := range ch {
			if !first && !relKeyAtOrAfter(r, prev.t, prev.id) {
				return fmt.Errorf("order violated at chunk %d entry %d: (%v,%d) after (%v,%d)",
					ci, k, r.t, r.id, prev.t, prev.id)
			}
			if !first && r.t == prev.t && r.id == prev.id {
				return fmt.Errorf("duplicate key (%v,%d) at chunk %d entry %d", r.t, r.id, ci, k)
			}
			prev, first = r, false
			n++
		}
	}
	if n != ix.size {
		return fmt.Errorf("size counter %d, %d entries present", ix.size, n)
	}
	return nil
}

// relOracle is the naive sorted-slice reference the index is checked
// against: the exact memmove implementation the index replaces.
type relOracle struct {
	rels []release
}

func (o *relOracle) insert(r release) {
	i := sort.Search(len(o.rels), func(k int) bool {
		c := o.rels[k]
		return c.t > r.t || (c.t == r.t && c.id > r.id)
	})
	o.rels = append(o.rels, release{})
	copy(o.rels[i+1:], o.rels[i:])
	o.rels[i] = r
}

func (o *relOracle) remove(t float64, id int) bool {
	i := sort.Search(len(o.rels), func(k int) bool {
		return relKeyAtOrAfter(o.rels[k], t, id)
	})
	if i >= len(o.rels) || o.rels[i].t != t || o.rels[i].id != id {
		return false
	}
	copy(o.rels[i:], o.rels[i+1:])
	o.rels = o.rels[:len(o.rels)-1]
	return true
}

// compareRelIndex asserts the index agrees with the oracle on size, min,
// full iteration order and the clamped bulk snapshot.
func compareRelIndex(t *testing.T, ix *relIndex, o *relOracle, now float64) {
	t.Helper()
	if err := checkRelIndexInvariants(ix); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if ix.len() != len(o.rels) {
		t.Fatalf("len %d, oracle %d", ix.len(), len(o.rels))
	}
	if mn, ok := ix.min(); ok != (len(o.rels) > 0) {
		t.Fatalf("min ok=%v, oracle has %d entries", ok, len(o.rels))
	} else if ok && mn != o.rels[0] {
		t.Fatalf("min %+v, oracle %+v", mn, o.rels[0])
	}
	i := 0
	ix.each(func(r release) bool {
		if r != o.rels[i] {
			t.Fatalf("iteration[%d] = %+v, oracle %+v", i, r, o.rels[i])
		}
		i++
		return true
	})
	if i != len(o.rels) {
		t.Fatalf("iteration yielded %d entries, oracle %d", i, len(o.rels))
	}
	got := ix.appendClamped(nil, now)
	if len(got) != len(o.rels) {
		t.Fatalf("snapshot %d entries, oracle %d", len(got), len(o.rels))
	}
	for k, r := range o.rels {
		want := profile.Release{Time: clampRelease(r.t, now), CPUs: r.cpus}
		if got[k] != want {
			t.Fatalf("snapshot[%d] = %+v, want %+v (now=%v)", k, got[k], want, now)
		}
	}
}

// TestReleaseIndexMatchesSliceOracle drives the chunked index through
// thousands of randomized add/remove/iterate/snapshot sequences — heavy
// PlannedEnd ties, interleaved gear re-adds (remove + re-insert of a live
// id at a new time), removal of just-inserted entries — and cross-checks
// every observable against the naive sorted-slice oracle. CI runs it
// under -race alongside the rest of the suite.
func TestReleaseIndexMatchesSliceOracle(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		times int // distinct release times: small values force heavy ties
		ops   int
	}{
		{"heavy-ties", 7, 4000},
		{"moderate-ties", 97, 4000},
		{"distinct", 1 << 30, 2000},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(cfg.times)*7919 + 42))
			var ix relIndex
			var o relOracle
			live := map[int]release{} // id -> indexed release
			ids := []int(nil)         // iteration-stable view of live's keys
			nextID := 1

			add := func(id int) {
				rel := release{t: float64(r.Intn(cfg.times)), cpus: 1 + r.Intn(64), id: id}
				ix.insert(rel)
				o.insert(rel)
				live[id] = rel
				ids = append(ids, id)
			}
			drop := func(k int) {
				id := ids[k]
				rel := live[id]
				if !ix.remove(rel.t, rel.id) {
					t.Fatalf("remove(%v,%d) reported missing, entry is live", rel.t, rel.id)
				}
				if !o.remove(rel.t, rel.id) {
					t.Fatalf("oracle desync on (%v,%d)", rel.t, rel.id)
				}
				delete(live, id)
				ids[k] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}

			for op := 0; op < cfg.ops; op++ {
				switch c := r.Intn(10); {
				case c < 4 || len(ids) == 0: // insert a fresh release
					add(nextID)
					nextID++
				case c < 6: // remove a random live release
					drop(r.Intn(len(ids)))
				case c == 6: // gear re-add: remove a live id, re-insert at a new time
					k := r.Intn(len(ids))
					id := ids[k]
					drop(k)
					add(id)
				case c == 7: // remove a just-inserted entry
					add(nextID)
					nextID++
					drop(len(ids) - 1)
				case c == 8: // remove of an absent key must miss on both
					tAbs, idAbs := float64(r.Intn(cfg.times)), nextID+1+r.Intn(100)
					if ix.remove(tAbs, idAbs) {
						t.Fatalf("remove(%v,%d) succeeded for an absent key", tAbs, idAbs)
					}
					if o.remove(tAbs, idAbs) {
						t.Fatalf("oracle held absent key (%v,%d)", tAbs, idAbs)
					}
				default: // full comparison including a clamped snapshot
					compareRelIndex(t, &ix, &o, float64(r.Intn(cfg.times)))
				}
				if ix.len() != len(o.rels) {
					t.Fatalf("op %d: len %d, oracle %d", op, ix.len(), len(o.rels))
				}
			}
			compareRelIndex(t, &ix, &o, 0)

			// Drain completely through the index, then rebuild via bulk
			// load and check the loaded shape too.
			for len(ids) > 0 {
				drop(r.Intn(len(ids)))
			}
			compareRelIndex(t, &ix, &o, 0)
			for i := 0; i < 1000; i++ {
				add(nextID)
				nextID++
			}
			sorted := append([]release(nil), o.rels...)
			ix.load(sorted)
			compareRelIndex(t, &ix, &o, 3)
		})
	}
}

// TestReleaseIndexClampGroups pins the snapshot clamp semantics the
// profile depends on: every release at or before now lands on exactly
// math.Nextafter(now, +inf), forming one shared group, and the snapshot
// stays sorted.
func TestReleaseIndexClampGroups(t *testing.T) {
	var ix relIndex
	for id, tm := range []float64{0, 5, 10, 10, 17, 40} {
		ix.insert(release{t: tm, cpus: 2, id: id + 1})
	}
	now := 10.0
	snap := ix.appendClamped(nil, now)
	eps := math.Nextafter(now, math.Inf(1))
	for i, rel := range snap {
		if i < 4 {
			if rel.Time != eps {
				t.Errorf("snapshot[%d].Time = %v, want clamp %v", i, rel.Time, eps)
			}
		} else if rel.Time <= now {
			t.Errorf("snapshot[%d].Time = %v should be unclamped", i, rel.Time)
		}
		if i > 0 && rel.Time < snap[i-1].Time {
			t.Errorf("snapshot not sorted at %d: %v < %v", i, rel.Time, snap[i-1].Time)
		}
	}
}
