package sched

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/profile"
	"repro/internal/workload"
)

// release is one running job's planned processor release, the unit of the
// shadow-time sweep and of the availability-profile bulk load.
type release struct {
	t    float64
	cpus int
	id   int
}

// collectReleases rebuilds the sorted release slice from the live run
// list into the shared scratch cache and returns it.
func (s *System) collectReleases() []release {
	rels := s.relCache[:0]
	for _, rs := range s.runList {
		if rs == nil {
			continue // tombstoned completion
		}
		rels = append(rels, release{t: rs.PlannedEnd, cpus: rs.Job.Procs, id: rs.Job.ID})
	}
	slices.SortFunc(rels, func(a, b release) int {
		switch {
		case a.t < b.t:
			return -1
		case a.t > b.t:
			return 1
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		}
		return 0
	})
	s.relCache = rels
	return rels
}

// sortedReleases returns the live run list's planned releases sorted by
// (raw planned end, job ID) as a flat slice. Under the slice-backed
// replanning variants (Compat.SliceReleases) the cache is maintained
// incrementally and is always current; under classic EASY it is rebuilt
// here only when a start, completion or gear change invalidated it — a
// blocked pass (an arrival that starts nothing) reuses the previous sort
// outright, which is what keeps saturated replays from rebuilding+sorting
// O(running jobs) state on every event. Index-backed systems consume
// releaseIndex instead.
//
// Times are stored unclamped; consumers clamp entries at or before `now`
// to strictly-after-now on the fly. Clamping maps a prefix of the sorted
// order onto one shared time point, and every consumer treats equal-time
// releases as a single group, so the result is identical to the seed-era
// clamp-then-sort order.
func (s *System) sortedReleases() []release {
	if !s.relDirty {
		return s.relCache
	}
	rels := s.collectReleases()
	s.relDirty = false
	return rels
}

// releaseIndex returns the chunked ordered release index, rebuilding it
// from the run list when a consumer arrives before incremental
// maintenance began (New starts dirty so run lists assembled outside
// start(), as white-box tests do, are picked up).
func (s *System) releaseIndex() *relIndex {
	if s.relDirty {
		s.relIdx.load(s.collectReleases())
		s.relDirty = false
	}
	return &s.relIdx
}

// releaseCount returns the number of live planned releases.
func (s *System) releaseCount() int {
	if s.relIndexed {
		return s.releaseIndex().len()
	}
	return len(s.sortedReleases())
}

// minRelease returns the earliest (unclamped) planned release time.
func (s *System) minRelease() (float64, bool) {
	if s.relIndexed {
		r, ok := s.releaseIndex().min()
		return r.t, ok
	}
	rels := s.sortedReleases()
	if len(rels) == 0 {
		return 0, false
	}
	return rels[0].t, true
}

// appendClampedReleases appends the sorted release schedule, clamped
// strictly after now, to buf — the bulk snapshot feeding the availability
// profile's LoadReleases / StartEpoch.
func (s *System) appendClampedReleases(buf []profile.Release, now float64) []profile.Release {
	if s.relIndexed {
		return s.releaseIndex().appendClamped(buf, now)
	}
	for _, r := range s.sortedReleases() {
		buf = append(buf, profile.Release{Time: clampRelease(r.t, now), CPUs: r.cpus})
	}
	return buf
}

// relAdd registers a newly started (or re-geared) job's planned release:
// an ordered insert when the schedule is incrementally maintained, a
// dirty mark otherwise. A dirty index defers to the next consumer's
// rebuild from the run list, which will already include this job.
func (s *System) relAdd(rs *RunState) {
	if !s.relIncremental {
		s.relDirty = true
		return
	}
	r := release{t: rs.PlannedEnd, cpus: rs.Job.Procs, id: rs.Job.ID}
	if s.relIndexed {
		if !s.relDirty {
			s.relIdx.insert(r)
		}
		return
	}
	i := sort.Search(len(s.relCache), func(k int) bool {
		c := s.relCache[k]
		return c.t > r.t || (c.t == r.t && c.id > r.id)
	})
	s.relCache = append(s.relCache, release{})
	copy(s.relCache[i+1:], s.relCache[i:])
	s.relCache[i] = r
}

// relRemove drops a finished (or about-to-be-re-geared) job's planned
// release. rs.PlannedEnd must still hold the value relAdd registered; a
// release the schedule no longer knows is a scheduler invariant violation
// reported as an error, which callers surface through Simulate's error
// path via fail.
func (s *System) relRemove(rs *RunState) error {
	if !s.relIncremental {
		s.relDirty = true
		return nil
	}
	t, id := rs.PlannedEnd, rs.Job.ID
	if s.relIndexed {
		if !s.relDirty && !s.relIdx.remove(t, id) {
			return lostReleaseError(id, t)
		}
		return nil
	}
	i := sort.Search(len(s.relCache), func(k int) bool {
		c := s.relCache[k]
		return c.t > t || (c.t == t && c.id >= id)
	})
	if i >= len(s.relCache) || s.relCache[i].t != t || s.relCache[i].id != id {
		return lostReleaseError(id, t)
	}
	copy(s.relCache[i:], s.relCache[i+1:])
	s.relCache = s.relCache[:len(s.relCache)-1]
	return nil
}

// lostReleaseError reports a release schedule that lost track of a
// running job — a broken scheduler invariant (or a caller mutating
// PlannedEnd behind the schedule's back).
func lostReleaseError(id int, t float64) error {
	return fmt.Errorf("sched: release schedule lost job %d (planned end %v)", id, t)
}

// clampRelease keeps a release time strictly after now: a job at its kill
// limit still holds its processors until its completion event fires
// (possibly later at this same timestamp), so capacity planning must not
// hand its processors out at `now` itself.
func clampRelease(t, now float64) float64 {
	if t <= now {
		return math.Nextafter(now, math.Inf(1))
	}
	return t
}

// shadow computes the EASY reservation for a head job that cannot start
// now: the shadow time (earliest time enough processors are free according
// to the running jobs' kill limits) and the number of extra processors
// that remain free at the shadow time after the head starts. A backfilled
// job may run past the shadow time only on those extra processors.
//
// Because only running jobs hold processors (EASY keeps a single
// reservation), availability is non-decreasing in time and the sweep over
// planned completions is exact.
func (s *System) shadow(head *workload.Job, now float64) (float64, int) {
	avail := s.cl.FreeCount()
	if s.cfg.Compat.ScratchAlloc {
		return s.shadowSeed(head, now, avail)
	}
	if s.relIndexed {
		return s.shadowIndexed(head, now, avail)
	}
	rels := s.sortedReleases()
	shadowT := now
	i := 0
	for ; i < len(rels) && avail < head.Procs; i++ {
		avail += rels[i].cpus
		shadowT = clampRelease(rels[i].t, now)
	}
	// Include every release at exactly the shadow time: the head starts
	// once they have all completed, so their processors count as
	// available when sizing the extra pool.
	for ; i < len(rels) && clampRelease(rels[i].t, now) == shadowT; i++ {
		avail += rels[i].cpus
	}
	return shadowT, avail - head.Procs
}

// shadowIndexed is the shadow sweep over the chunked release index: the
// same two phases as the slice sweep — accumulate releases until the head
// fits, then absorb the equal-time group at the shadow instant — fused
// into one in-order walk of the chunks.
func (s *System) shadowIndexed(head *workload.Job, now float64, avail int) (float64, int) {
	shadowT := now
	grouping := avail >= head.Procs
	for _, ch := range s.releaseIndex().chunks {
		for _, r := range ch {
			if grouping {
				if clampRelease(r.t, now) != shadowT {
					return shadowT, avail - head.Procs
				}
				avail += r.cpus
				continue
			}
			avail += r.cpus
			shadowT = clampRelease(r.t, now)
			grouping = avail >= head.Procs
		}
	}
	return shadowT, avail - head.Procs
}

// shadowSeed is the seed-era shadow computation: rebuild the release
// list, clamp, then sort, on every blocked pass.
func (s *System) shadowSeed(head *workload.Job, now float64, avail int) (float64, int) {
	rels := make([]release, 0, s.runningCount())
	for _, rs := range s.runList {
		if rs == nil {
			continue
		}
		rels = append(rels, release{t: clampRelease(rs.PlannedEnd, now), cpus: rs.Job.Procs, id: rs.Job.ID})
	}
	sort.Slice(rels, func(i, j int) bool {
		if rels[i].t != rels[j].t {
			return rels[i].t < rels[j].t
		}
		return rels[i].id < rels[j].id
	})
	shadowT := now
	i := 0
	for ; i < len(rels) && avail < head.Procs; i++ {
		avail += rels[i].cpus
		shadowT = rels[i].t
	}
	for ; i < len(rels) && rels[i].t == shadowT; i++ {
		avail += rels[i].cpus
	}
	if shadowT < now {
		shadowT = now
	}
	return shadowT, avail - head.Procs
}
