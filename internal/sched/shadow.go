package sched

import (
	"math"
	"sort"

	"repro/internal/workload"
)

// release is one running job's planned processor release, the unit of the
// shadow-time sweep.
type release struct {
	t    float64
	cpus int
	id   int
}

// shadow computes the EASY reservation for a head job that cannot start
// now: the shadow time (earliest time enough processors are free according
// to the running jobs' kill limits) and the number of extra processors
// that remain free at the shadow time after the head starts. A backfilled
// job may run past the shadow time only on those extra processors.
//
// Because only running jobs hold processors (EASY keeps a single
// reservation), availability is non-decreasing in time and the sweep over
// planned completions is exact.
//
// The release list is assembled in a per-system scratch slice reused
// across passes; sorting by (time, job ID) makes the result independent of
// run-list iteration order.
func (s *System) shadow(head *workload.Job, now float64) (float64, int) {
	avail := s.cl.FreeCount()
	rels := s.relScratch[:0]
	if s.cfg.Compat.ScratchAlloc {
		rels = make([]release, 0, s.runningCount())
	}
	for _, rs := range s.runList {
		if rs == nil {
			continue // tombstoned completion
		}
		// A job at its kill limit still holds its processors until its
		// completion event fires (possibly later at this same timestamp);
		// its release time must stay strictly after `now` so backfills
		// cannot be granted capacity the head is about to claim.
		t := rs.PlannedEnd
		if t <= now {
			t = math.Nextafter(now, math.Inf(1))
		}
		rels = append(rels, release{t: t, cpus: rs.Job.Procs, id: rs.Job.ID})
	}
	if !s.cfg.Compat.ScratchAlloc {
		s.relScratch = rels // retain grown capacity for the next pass
	}
	sort.Slice(rels, func(i, j int) bool {
		if rels[i].t != rels[j].t {
			return rels[i].t < rels[j].t
		}
		return rels[i].id < rels[j].id
	})
	shadowT := now
	i := 0
	for ; i < len(rels) && avail < head.Procs; i++ {
		avail += rels[i].cpus
		shadowT = rels[i].t
	}
	// Include every release at exactly the shadow time: the head starts
	// once they have all completed, so their processors count as
	// available when sizing the extra pool.
	for ; i < len(rels) && rels[i].t == shadowT; i++ {
		avail += rels[i].cpus
	}
	if shadowT < now {
		shadowT = now
	}
	return shadowT, avail - head.Procs
}
