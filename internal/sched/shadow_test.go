package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/profile"
	"repro/internal/workload"
)

// buildRunningSystem constructs a System mid-simulation: `running` jobs
// hold processors with the given planned ends. It bypasses the event loop
// so the shadow computation can be probed directly.
func buildRunningSystem(t *testing.T, total int, running []struct {
	cpus int
	end  float64
}) *System {
	t.Helper()
	gears := dvfs.PaperGearSet()
	sys, err := New(Config{
		CPUs: total, Gears: gears,
		TimeModel: dvfs.NewTimeModel(0.5, gears),
		Policy:    FixedGear{Gear: gears.Top()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range running {
		alloc, err := sys.cl.Allocate(r.cpus, 0)
		if err != nil {
			t.Fatalf("setup allocation: %v", err)
		}
		sys.runList = append(sys.runList, &RunState{
			Job:        &workload.Job{ID: i + 1, Procs: r.cpus, Runtime: r.end, ReqTime: r.end, Beta: -1},
			Gear:       gears.Top(),
			PlannedEnd: r.end,
			Alloc:      alloc,
		})
	}
	return sys
}

// The availability profile is an independent oracle for the shadow time:
// with only running jobs, availability is non-decreasing, so the shadow
// time equals the earliest start of a job needing `procs` processors for
// an arbitrarily long duration.
func TestShadowMatchesProfileOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	const horizon = 1e7
	for trial := 0; trial < 300; trial++ {
		total := 2 + r.Intn(30)
		n := r.Intn(8)
		var running []struct {
			cpus int
			end  float64
		}
		used := 0
		for i := 0; i < n && used < total; i++ {
			c := 1 + r.Intn(total-used)
			running = append(running, struct {
				cpus int
				end  float64
			}{c, float64(1 + r.Intn(1000))})
			used += c
		}
		sys := buildRunningSystem(t, total, running)
		head := &workload.Job{ID: 99, Procs: 1 + r.Intn(total), Runtime: 10, ReqTime: 10, Beta: -1}

		gotShadow, gotExtra := sys.shadow(head, 0)

		prof := profile.New(total)
		for _, rs := range sys.runList {
			prof.Add(profile.Entry{Start: 0, End: rs.PlannedEnd, CPUs: rs.Job.Procs})
		}
		wantShadow := prof.EarliestStart(head.Procs, horizon, 0)
		if math.Abs(gotShadow-wantShadow) > 1e-9 {
			t.Fatalf("trial %d: shadow %v, oracle %v (total=%d, head=%d, running=%+v)",
				trial, gotShadow, wantShadow, total, head.Procs, running)
		}
		// Extra processors: free capacity at the shadow instant beyond
		// the head's need. The profile sees releases at exactly shadowT
		// as done (intervals are half-open), matching the engine.
		wantExtra := prof.FreeAt(gotShadow) - head.Procs
		if gotExtra != wantExtra {
			t.Fatalf("trial %d: extra %d, oracle %d", trial, gotExtra, wantExtra)
		}
		// Release all setup allocations to keep the cluster consistent.
		for _, rs := range sys.runList {
			if err := sys.cl.Release(rs.Alloc, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// A backfill accepted by the engine must keep the head's oracle start
// unchanged; this replays full simulations and verifies every head start
// against the strongest EASY guarantee: the head never starts later than
// the shadow time computed when it reached the queue head, as long as no
// running job exceeds its kill limit (they cannot, by construction).
func TestHeadNeverBeyondInitialShadow(t *testing.T) {
	gears := dvfs.PaperGearSet()
	for seed := int64(0); seed < 6; seed++ {
		shadowAt := map[int]float64{} // job ID -> shadow bound when first head
		rec := &headShadowRecorder{t: t, bounds: shadowAt}
		sys, err := New(Config{
			CPUs: 16, Gears: gears,
			TimeModel: dvfs.NewTimeModel(0.5, gears),
			Policy:    FixedGear{Gear: gears.Top()},
			Variant:   EASY,
			Recorder:  rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec.sys = sys
		tr := randomTrace(seed+500, 16, 150)
		if err := sys.Simulate(tr); err != nil {
			t.Fatal(err)
		}
	}
}

// headShadowRecorder snapshots the shadow bound for the queue head after
// every start, then asserts actual starts respect the bound.
type headShadowRecorder struct {
	t      *testing.T
	sys    *System
	bounds map[int]float64
}

func (h *headShadowRecorder) JobStarted(rs *RunState, now float64) {
	if bound, ok := h.bounds[rs.Job.ID]; ok && now > bound+1e-6 {
		h.t.Errorf("job %d started at %v, after its reservation bound %v", rs.Job.ID, now, bound)
	}
	// After this start, record/refresh the bound for the current head.
	if h.sys.QueueLen() > 0 {
		head := h.sys.queue[0]
		shadow, _ := h.sys.shadow(head, now)
		// The bound can only move earlier on early completions; keep the
		// smallest observed.
		if prev, ok := h.bounds[head.ID]; !ok || shadow < prev {
			h.bounds[head.ID] = shadow
		}
	}
}

func (h *headShadowRecorder) JobFinished(rs *RunState, now float64) {
	if h.sys.QueueLen() > 0 {
		head := h.sys.queue[0]
		shadow, _ := h.sys.shadow(head, now)
		if prev, ok := h.bounds[head.ID]; !ok || shadow < prev {
			h.bounds[head.ID] = shadow
		}
	}
}
