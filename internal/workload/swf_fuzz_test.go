package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSWF hardens the trace reader against arbitrary input: it must
// either return an error or a structurally valid trace, never panic, and
// surviving traces must round-trip through the writer.
func FuzzParseSWF(f *testing.F) {
	f.Add(sampleSWF, 64)
	f.Add("; MaxProcs: 8\n1 0 -1 10 2 -1 -1 2 20 -1 1 5 -1 -1 -1 -1 -1 -1\n", 0)
	f.Add("", 16)
	f.Add("; comment only\n", 4)
	f.Add("1 2 3\n", 4)
	f.Add("1 0 -1 1e300 1 -1 -1 1 1e300 -1 1 -1 -1 -1 -1 -1 -1 -1\n", 2)
	f.Add("1 -5 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n", 2)
	f.Fuzz(func(t *testing.T, input string, cpus int) {
		tr, err := ParseSWF(strings.NewReader(input), "fuzz", cpus)
		if err != nil {
			return
		}
		if tr.CPUs <= 0 {
			t.Fatalf("accepted trace with %d CPUs", tr.CPUs)
		}
		for _, j := range tr.Jobs {
			if j.Procs <= 0 || j.Runtime <= 0 || j.ReqTime <= 0 || j.Submit < 0 {
				t.Fatalf("accepted invalid job %+v", j)
			}
		}
		// Arrival order must hold.
		for i := 1; i < len(tr.Jobs); i++ {
			if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
				t.Fatal("jobs not sorted by submit")
			}
		}
		// Round-trip: writing and re-reading keeps the job count (the
		// writer rounds fractional seconds; zero-rounded runtimes may be
		// cleaned, so only an upper bound holds).
		var buf bytes.Buffer
		if err := WriteSWF(&buf, tr); err != nil {
			t.Fatalf("WriteSWF of accepted trace: %v", err)
		}
		back, err := ParseSWF(&buf, "fuzz2", tr.CPUs)
		if err != nil {
			t.Fatalf("re-parse of written trace: %v", err)
		}
		if len(back.Jobs) > len(tr.Jobs) {
			t.Fatalf("round trip grew jobs: %d -> %d", len(tr.Jobs), len(back.Jobs))
		}
	})
}
