package workload

import (
	"bytes"
	"io"
	"sort"
	"strings"
	"testing"
)

// FuzzParseSWF hardens the trace reader against arbitrary input: it must
// either return an error or a structurally valid trace, never panic, and
// surviving traces must round-trip through the writer.
func FuzzParseSWF(f *testing.F) {
	f.Add(sampleSWF, 64)
	f.Add("; MaxProcs: 8\n1 0 -1 10 2 -1 -1 2 20 -1 1 5 -1 -1 -1 -1 -1 -1\n", 0)
	f.Add("", 16)
	f.Add("; comment only\n", 4)
	f.Add("1 2 3\n", 4)
	f.Add("1 0 -1 1e300 1 -1 -1 1 1e300 -1 1 -1 -1 -1 -1 -1 -1 -1\n", 2)
	f.Add("1 -5 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n", 2)
	f.Fuzz(func(t *testing.T, input string, cpus int) {
		tr, err := ParseSWF(strings.NewReader(input), "fuzz", cpus)
		if err != nil {
			return
		}
		if tr.CPUs <= 0 {
			t.Fatalf("accepted trace with %d CPUs", tr.CPUs)
		}
		for _, j := range tr.Jobs {
			if j.Procs <= 0 || j.Runtime <= 0 || j.ReqTime <= 0 || j.Submit < 0 {
				t.Fatalf("accepted invalid job %+v", j)
			}
		}
		// Arrival order must hold.
		for i := 1; i < len(tr.Jobs); i++ {
			if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
				t.Fatal("jobs not sorted by submit")
			}
		}
		// Round-trip: writing and re-reading keeps the job count (the
		// writer rounds fractional seconds; zero-rounded runtimes may be
		// cleaned, so only an upper bound holds).
		var buf bytes.Buffer
		if err := WriteSWF(&buf, tr); err != nil {
			t.Fatalf("WriteSWF of accepted trace: %v", err)
		}
		back, err := ParseSWF(&buf, "fuzz2", tr.CPUs)
		if err != nil {
			t.Fatalf("re-parse of written trace: %v", err)
		}
		if len(back.Jobs) > len(tr.Jobs) {
			t.Fatalf("round trip grew jobs: %d -> %d", len(tr.Jobs), len(back.Jobs))
		}
	})
}

// FuzzSWFSource differentially tests the incremental SWF reader against
// the materializing parser: on any input, either both fail, or the
// stream fails only because the log is unsorted (the one case streaming
// legitimately rejects), or both succeed with the same job multiset —
// and the streamed sequence is itself in nondecreasing submit order.
func FuzzSWFSource(f *testing.F) {
	f.Add(sampleSWF, 64, false)
	f.Add("; MaxProcs: 8\n1 0 -1 10 2 -1 -1 2 20 -1 1 5 -1 -1 -1 -1 -1 -1\n", 0, true)
	f.Add("1 9 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n2 3 -1 10 1 -1 -1 1 20 -1 0 -1 -1 -1 -1 -1 -1 -1\n", 4, false)
	f.Add("; MaxProcs: 2\n\n; noise\nbroken line\n", 0, false)
	f.Fuzz(func(t *testing.T, input string, cpus int, dropFailed bool) {
		filter := SWFFilter{DropFailed: dropFailed}
		want, pErr := ParseSWFFiltered(strings.NewReader(input), "fuzz", cpus, filter)

		open := func() (io.ReadCloser, error) { return io.NopCloser(strings.NewReader(input)), nil }
		src, sErr := NewSWFSource(open, "fuzz", cpus, filter)
		var got []Job
		if sErr == nil {
			for {
				j, ok := src.Next()
				if !ok {
					break
				}
				got = append(got, j)
			}
			sErr = src.Err()
		}

		if pErr != nil {
			if sErr == nil {
				t.Fatalf("parser rejected (%v) but stream accepted %d jobs", pErr, len(got))
			}
			return
		}
		if sErr != nil {
			// The only stream-specific rejection is disorder.
			if !strings.Contains(sErr.Error(), "not sorted") {
				t.Fatalf("stream failed (%v) where the parser succeeded", sErr)
			}
			return
		}
		if len(got) != len(want.Jobs) {
			t.Fatalf("streamed %d jobs, parser %d", len(got), len(want.Jobs))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Submit < got[i-1].Submit {
				t.Fatal("streamed jobs not in submit order")
			}
		}
		// The parser tie-breaks equal submits by ID where the stream keeps
		// file order; compare under the parser's canonical order.
		sort.SliceStable(got, func(a, b int) bool {
			if got[a].Submit != got[b].Submit {
				return got[a].Submit < got[b].Submit
			}
			return got[a].ID < got[b].ID
		})
		for i := range got {
			if got[i] != *want.Jobs[i] {
				t.Fatalf("job %d: streamed %+v, parsed %+v", i, got[i], *want.Jobs[i])
			}
		}
	})
}
