// Package workload defines the rigid parallel job model used throughout
// the simulator and implements reading and writing of the Standard
// Workload Format (SWF) used by the Parallel Workload Archive, the source
// of the five traces evaluated in the paper.
//
// Workloads flow through the package in two forms: the materialized Trace
// (a job slice, convenient for analyses that need the whole workload) and
// the streaming JobSource (one job at a time in submit order, the form
// the scheduler consumes — a replay then holds O(running jobs) live
// memory regardless of trace length). SliceSource adapts the former to
// the latter; Collect goes the other way; SWFSource reads logs
// incrementally; and the combinators (Filter, Concat, Repeat,
// MergeByArrival, Scale) compose sources without materializing them.
package workload

import (
	"fmt"
	"sort"
)

// Job is one rigid parallel job of a workload trace. Times are seconds.
// Runtime and ReqTime refer to execution at the top CPU frequency; the
// scheduler dilates them when it assigns a reduced gear.
type Job struct {
	ID      int     // unique job number within the trace
	Submit  float64 // arrival time, seconds from trace start
	Runtime float64 // actual execution time at top frequency
	Procs   int     // number of processors (rigid)
	ReqTime float64 // user-requested wall-clock limit at top frequency
	// Beta optionally overrides the global β dilation sensitivity for this
	// job. Negative means "use the global value". Supports the paper's
	// future-work analysis of per-job DVFS potential.
	Beta float64
	// User identifies the submitting user (-1 unknown). Flurry cleaning —
	// the preprocessing the paper's "cleaned traces" received — operates
	// per user.
	User int
	// Status classifies the job's completion on the original system, as
	// recorded in SWF field 11. The zero value is StatusUnknown, so
	// hand-built traces are never accidentally marked failed; ParseSWF
	// and WriteSWF translate to and from the SWF on-disk encoding
	// (1 completed, 0 failed, 5 canceled, -1 missing). The simulator
	// itself ignores Status; it only drives the opt-in replay filters
	// (SWFFilter, RemoveFailed).
	Status int
	// Eco marks the job as opted into eco-mode power management
	// (Angelelli et al.'s user-assisted capping): an eco-only power-cap
	// controller may regear only jobs carrying the flag. SWF logs have no
	// such column, so the flag is derived at load time from the
	// submitting user via SWFFilter.EcoUsers (see EcoSet); wgen preset
	// resolution applies the same hook to generated jobs.
	Eco bool
}

// Job completion statuses (internal encoding; the zero value is unknown
// by design — see Job.Status for the SWF on-disk mapping).
const (
	StatusUnknown = iota
	StatusCompleted
	StatusFailed
	StatusCanceled
)

// Validate reports the first problem with the job's fields, or nil.
func (j *Job) Validate() error {
	switch {
	case j.Procs < 1:
		return fmt.Errorf("workload: job %d requests %d processors", j.ID, j.Procs)
	case j.Submit < 0:
		return fmt.Errorf("workload: job %d has negative submit time %v", j.ID, j.Submit)
	case j.Runtime < 0:
		return fmt.Errorf("workload: job %d has negative runtime %v", j.ID, j.Runtime)
	case j.ReqTime <= 0:
		return fmt.Errorf("workload: job %d has non-positive requested time %v", j.ID, j.ReqTime)
	}
	return nil
}

// EffectiveRuntime returns the runtime the cluster will observe at the top
// frequency: the actual runtime capped by the requested limit (jobs hitting
// their wall-clock limit are killed).
func (j *Job) EffectiveRuntime() float64 {
	if j.Runtime > j.ReqTime {
		return j.ReqTime
	}
	return j.Runtime
}

// Trace is an ordered collection of jobs plus the size of the system the
// trace was recorded on.
type Trace struct {
	Name string
	CPUs int // processors of the original system
	Jobs []*Job
}

// Validate checks the trace and every job in it.
func (t *Trace) Validate() error {
	if t.CPUs < 1 {
		return fmt.Errorf("workload: trace %q has %d CPUs", t.Name, t.CPUs)
	}
	if len(t.Jobs) == 0 {
		return fmt.Errorf("workload: trace %q is empty", t.Name)
	}
	for _, j := range t.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if j.Procs > t.CPUs {
			return fmt.Errorf("workload: job %d requests %d > %d system processors", j.ID, j.Procs, t.CPUs)
		}
	}
	return nil
}

// SortBySubmit orders the jobs by submit time, breaking ties by ID, which
// is the arrival order the scheduler consumes.
func (t *Trace) SortBySubmit() {
	sort.SliceStable(t.Jobs, func(a, b int) bool {
		if t.Jobs[a].Submit != t.Jobs[b].Submit {
			return t.Jobs[a].Submit < t.Jobs[b].Submit
		}
		return t.Jobs[a].ID < t.Jobs[b].ID
	})
}

// Stats summarizes the trace: totals used to report workload tables and to
// calibrate generators.
type Stats struct {
	Jobs          int
	TotalCPUHours float64 // Σ procs·runtime in hours
	Span          float64 // last submit − first submit, seconds
	Utilization   float64 // CPU-seconds demanded / (CPUs·span)
	SerialShare   float64 // fraction of single-processor jobs
	MeanRuntime   float64
	MeanProcs     float64
}

// ComputeStats derives summary statistics. The trace must be non-empty.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Jobs: len(t.Jobs)}
	if len(t.Jobs) == 0 {
		return s
	}
	first, last := t.Jobs[0].Submit, t.Jobs[0].Submit
	serial := 0
	var cpuSec, rtSum, procSum float64
	for _, j := range t.Jobs {
		if j.Submit < first {
			first = j.Submit
		}
		if j.Submit > last {
			last = j.Submit
		}
		cpuSec += float64(j.Procs) * j.EffectiveRuntime()
		rtSum += j.EffectiveRuntime()
		procSum += float64(j.Procs)
		if j.Procs == 1 {
			serial++
		}
	}
	s.TotalCPUHours = cpuSec / 3600
	s.Span = last - first
	if s.Span > 0 && t.CPUs > 0 {
		s.Utilization = cpuSec / (float64(t.CPUs) * s.Span)
	}
	s.SerialShare = float64(serial) / float64(len(t.Jobs))
	s.MeanRuntime = rtSum / float64(len(t.Jobs))
	s.MeanProcs = procSum / float64(len(t.Jobs))
	return s
}

// Slice returns a shallow copy of the trace restricted to jobs [lo, hi).
// Indices are clamped to the valid range.
func (t *Trace) Slice(lo, hi int) *Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Jobs) {
		hi = len(t.Jobs)
	}
	if lo > hi {
		lo = hi
	}
	return &Trace{Name: t.Name, CPUs: t.CPUs, Jobs: t.Jobs[lo:hi]}
}
