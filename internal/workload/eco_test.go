package workload

import (
	"strings"
	"testing"
)

func TestEcoSetParse(t *testing.T) {
	cases := []struct {
		in      string
		empty   bool
		opted   []int
		refused []int
		wantErr bool
	}{
		{in: "", empty: true, refused: []int{-1, 0, 7}},
		{in: "7", opted: []int{7}, refused: []int{-1, 0, 8}},
		{in: "1, 7,42", opted: []int{1, 7, 42}, refused: []int{-1, 2}},
		{in: "*", opted: []int{-1, 0, 7, 1 << 20}},
		{in: " * ", opted: []int{-1, 3}},
		{in: "1,x", wantErr: true},
		{in: "*,2", wantErr: true},
	}
	for _, c := range cases {
		set, err := SWFFilter{EcoUsers: c.in}.EcoSet()
		if c.wantErr {
			if err == nil {
				t.Errorf("EcoSet(%q): no error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("EcoSet(%q): %v", c.in, err)
			continue
		}
		if set.Empty() != c.empty {
			t.Errorf("EcoSet(%q).Empty() = %v, want %v", c.in, set.Empty(), c.empty)
		}
		for _, u := range c.opted {
			if !set.Opted(u) {
				t.Errorf("EcoSet(%q).Opted(%d) = false, want true", c.in, u)
			}
		}
		for _, u := range c.refused {
			if set.Opted(u) {
				t.Errorf("EcoSet(%q).Opted(%d) = true, want false", c.in, u)
			}
		}
	}
}

func TestEcoSetTagAndSource(t *testing.T) {
	mk := func() []*Job {
		return []*Job{
			{ID: 1, User: 7, Procs: 1, Runtime: 10},
			{ID: 2, User: -1, Procs: 1, Runtime: 10, Submit: 1},
			{ID: 3, User: 9, Procs: 1, Runtime: 10, Submit: 2},
		}
	}
	set, err := SWFFilter{EcoUsers: "7"}.EcoSet()
	if err != nil {
		t.Fatal(err)
	}
	jobs := mk()
	set.Tag(jobs)
	if !jobs[0].Eco || jobs[1].Eco || jobs[2].Eco {
		t.Errorf("Tag(7): eco flags = %v %v %v, want true false false", jobs[0].Eco, jobs[1].Eco, jobs[2].Eco)
	}

	all, err := SWFFilter{EcoUsers: "*"}.EcoSet()
	if err != nil {
		t.Fatal(err)
	}
	jobs = mk()
	all.Tag(jobs)
	for _, j := range jobs {
		if !j.Eco {
			t.Errorf("Tag(*): job %d not eco", j.ID)
		}
	}

	// The empty set leaves the source unwrapped; a non-empty one tags
	// streamed jobs and forwards the length.
	src := NewSliceSource("t", 4, mk())
	if got := TagEco(src, EcoSet{}); got != JobSource(src) {
		t.Error("TagEco(empty) wrapped the source")
	}
	tagged := TagEco(src, set)
	if tagged == JobSource(src) {
		t.Fatal("TagEco(non-empty) returned the source unwrapped")
	}
	if c, ok := tagged.(Counted); !ok || c.Len() != 3 {
		t.Errorf("tagged source lost the length: %v", tagged)
	}
	var eco []bool
	for {
		j, ok := tagged.Next()
		if !ok {
			break
		}
		eco = append(eco, j.Eco)
	}
	if len(eco) != 3 || !eco[0] || eco[1] || eco[2] {
		t.Errorf("streamed eco flags = %v, want [true false false]", eco)
	}
	if err := tagged.Reset(); err != nil {
		t.Fatal(err)
	}
	if j, ok := tagged.Next(); !ok || !j.Eco {
		t.Errorf("after reset: job %+v ok=%v, want eco first job", j, ok)
	}
}

// The SWF parsers honor "*": every job opts in, including ones whose
// user field is missing or negative.
func TestSWFEcoStar(t *testing.T) {
	const log = `; MaxProcs: 8
1 0 0 10 1 -1 -1 1 100 -1 1 7 -1 -1 -1 -1 -1 -1
2 5 0 10 1 -1 -1 1 100 -1 1 -1 -1 -1 -1 -1 -1 -1
3 9 0 10 1 -1 -1 1 100 -1 1
`
	tr, err := ParseSWFFiltered(strings.NewReader(log), "star", 0, SWFFilter{EcoUsers: "*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3", len(tr.Jobs))
	}
	for _, j := range tr.Jobs {
		if !j.Eco {
			t.Errorf("job %d (user %d) not eco under \"*\"", j.ID, j.User)
		}
	}
	if _, err := ParseSWFFiltered(strings.NewReader(log), "bad", 0, SWFFilter{EcoUsers: "seven"}); err == nil {
		t.Error("malformed EcoUsers parsed without error")
	}
}
