package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// SWFSource reads a Standard Workload Format log incrementally: one
// buffered line at a time, never materializing the trace. It accepts and
// cleans exactly the lines ParseSWF does (the decoding is shared), with
// two streaming-specific differences:
//
//   - The log must already be in nondecreasing submit order (as WriteSWF
//     output and virtually every archive log is); a regression makes the
//     stream fail with an error instead of sorting. Jobs submitted at the
//     same instant keep file order, where ParseSWF tie-breaks by ID.
//   - MaxProcs headers are honoured only up to the first job line (their
//     conventional position); the system size is fixed when the source is
//     opened.
type SWFSource struct {
	open   func() (io.ReadCloser, error)
	name   string
	cpus   int // resolved system size
	arg    int // caller-supplied size (Reset re-resolves from it)
	filter SWFFilter

	rc      io.ReadCloser
	sc      *bufio.Scanner
	p       swfParser
	pending Job
	primed  bool // pending holds the first job
	started bool // at least one job emitted
	last    float64
	err     error
}

var _ JobSource = (*SWFSource)(nil)

// NewSWFSource returns a streaming reader over the log the open callback
// provides; Reset re-invokes it, so the same source can back repeated
// simulation runs. The system size is taken from a MaxProcs header ahead
// of the first job when present, otherwise cpus must be positive.
func NewSWFSource(open func() (io.ReadCloser, error), name string, cpus int, filter SWFFilter) (*SWFSource, error) {
	s := &SWFSource{open: open, name: name, arg: cpus, filter: filter}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenSWFSource streams the SWF file at path; Reset reopens it.
func OpenSWFSource(path string, cpus int, filter SWFFilter) (*SWFSource, error) {
	return NewSWFSource(func() (io.ReadCloser, error) { return os.Open(path) }, path, cpus, filter)
}

// Name implements JobSource.
func (s *SWFSource) Name() string { return s.name }

// CPUs implements JobSource.
func (s *SWFSource) CPUs() int { return s.cpus }

// Err implements JobSource.
func (s *SWFSource) Err() error { return s.err }

// Close releases the underlying reader; Next reports end of stream
// afterwards. Reset reopens.
func (s *SWFSource) Close() error {
	s.sc = nil
	if s.rc == nil {
		return nil
	}
	rc := s.rc
	s.rc = nil
	return rc.Close()
}

// Reset implements JobSource: it reopens the log and re-resolves the
// system size.
func (s *SWFSource) Reset() error {
	if err := s.Close(); err != nil {
		return fmt.Errorf("workload: closing swf stream %q: %w", s.name, err)
	}
	rc, err := s.open()
	if err != nil {
		return fmt.Errorf("workload: opening swf stream %q: %w", s.name, err)
	}
	s.rc = rc
	s.sc = bufio.NewScanner(rc)
	s.sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	s.p = swfParser{cpus: s.arg, filter: s.filter}
	s.primed, s.started, s.last, s.err = false, false, 0, nil
	// Scan headers (and clean-skipped lines) up to the first job so the
	// system size is known before iteration begins, like ParseSWF's
	// post-parse check but upfront.
	job, ok, err := s.scan()
	if err != nil {
		s.Close()
		return err
	}
	s.cpus = s.p.cpus
	if s.cpus <= 0 {
		s.Close()
		return fmt.Errorf("workload: swf trace %q has no MaxProcs header and no explicit system size", s.name)
	}
	if ok {
		s.pending, s.primed = job, true
	}
	return nil
}

// scan advances the underlying scanner to the next surviving job.
func (s *SWFSource) scan() (Job, bool, error) {
	if s.sc == nil {
		return Job{}, false, nil
	}
	for s.sc.Scan() {
		job, ok, err := s.p.parseLine(s.sc.Text())
		if err != nil {
			return Job{}, false, err
		}
		if ok {
			return job, true, nil
		}
	}
	if err := s.sc.Err(); err != nil {
		return Job{}, false, fmt.Errorf("workload: reading swf: %w", err)
	}
	return Job{}, false, nil
}

// Next implements JobSource.
func (s *SWFSource) Next() (Job, bool) {
	if s.err != nil {
		return Job{}, false
	}
	var job Job
	if s.primed {
		job, s.primed = s.pending, false
	} else {
		var ok bool
		var err error
		job, ok, err = s.scan()
		if err != nil {
			s.err = err
			s.Close()
			return Job{}, false
		}
		if !ok {
			s.Close()
			return Job{}, false
		}
	}
	if s.started && job.Submit < s.last {
		s.err = fmt.Errorf("workload: swf trace %q is not sorted by submit time (job %d at %v after %v); materialize it with ParseSWF",
			s.name, job.ID, job.Submit, s.last)
		s.Close()
		return Job{}, false
	}
	s.started, s.last = true, job.Submit
	return job, true
}
