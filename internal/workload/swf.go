package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The Standard Workload Format (SWF) of the Parallel Workload Archive
// stores one job per line with 18 whitespace-separated fields. The fields
// relevant to scheduling simulation are:
//
//	 1  job number
//	 2  submit time (s)
//	 3  wait time (s)           — ignored on input (an output of scheduling)
//	 4  run time (s)
//	 5  number of allocated processors
//	 8  requested number of processors
//	 9  requested time (s)
//	11  status
//
// Missing values are encoded as -1. Comment and header lines start with
// ';'. Header directives of the form "; MaxProcs: N" carry the system size.

// SWFFilter selects which jobs of an SWF log survive parsing, keyed on
// field 11 (status). The zero value keeps everything, matching the raw
// log; replays of cleaned traces typically drop failed jobs, whose
// recorded runtimes do not represent useful work.
type SWFFilter struct {
	// DropFailed skips jobs with status 0 (failed).
	DropFailed bool
	// DropCanceled skips jobs with status 5 (canceled before start).
	DropCanceled bool
}

// keep reports whether a job with the given SWF status passes the filter.
func (f SWFFilter) keep(status int) bool {
	if f.DropFailed && status == StatusFailed {
		return false
	}
	if f.DropCanceled && status == StatusCanceled {
		return false
	}
	return true
}

// ParseSWF reads a trace in Standard Workload Format. The system size is
// taken from the MaxProcs header when present; otherwise cpus must be
// supplied by the caller (pass 0 to require the header). Jobs with
// non-positive runtime or processor counts are skipped, mirroring the
// "cleaned" traces the paper uses. Every completion status is kept; use
// ParseSWFFiltered to drop failed or canceled jobs.
func ParseSWF(r io.Reader, name string, cpus int) (*Trace, error) {
	return ParseSWFFiltered(r, name, cpus, SWFFilter{})
}

// ParseSWFFiltered reads a trace in Standard Workload Format, dropping
// jobs the status filter excludes.
func ParseSWFFiltered(r io.Reader, name string, cpus int, filter SWFFilter) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	tr := &Trace{Name: name, CPUs: cpus}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if v, ok := swfHeaderInt(line, "MaxProcs"); ok {
				tr.CPUs = v
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 9 {
			return nil, fmt.Errorf("workload: swf line %d has %d fields, want >= 9", lineNo, len(fields))
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: swf line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		job := &Job{
			ID:      int(vals[0]),
			Submit:  vals[1],
			Runtime: vals[3],
			Beta:    -1,
			User:    -1,
			Status:  StatusUnknown,
		}
		if len(vals) >= 11 {
			job.Status = statusFromSWF(int(vals[10])) // field 11
		}
		if len(vals) >= 12 && vals[11] >= 0 {
			job.User = int(vals[11]) // field 12: user ID
		}
		if !filter.keep(job.Status) {
			continue
		}
		// Processors: prefer the requested count (field 8) when valid,
		// else the allocated count (field 5), following PWA conventions.
		procs := int(vals[7])
		if procs <= 0 {
			procs = int(vals[4])
		}
		job.Procs = procs
		// Requested time: field 9; fall back to the actual runtime when
		// the estimate is missing.
		job.ReqTime = vals[8]
		if job.ReqTime <= 0 {
			job.ReqTime = job.Runtime
		}
		if job.Procs <= 0 || job.Runtime <= 0 || job.ReqTime <= 0 || job.Submit < 0 {
			continue // cleaned out, like flurry removal in PWA cleaned logs
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading swf: %w", err)
	}
	if tr.CPUs <= 0 {
		return nil, fmt.Errorf("workload: swf trace %q has no MaxProcs header and no explicit system size", name)
	}
	tr.SortBySubmit()
	return tr, nil
}

// statusFromSWF maps SWF field 11 onto the internal Status encoding.
// Unrecognized values (including the partial-execution codes 2–4 some
// logs use) read as unknown, which no filter drops.
func statusFromSWF(v int) int {
	switch v {
	case 0:
		return StatusFailed
	case 1:
		return StatusCompleted
	case 5:
		return StatusCanceled
	}
	return StatusUnknown
}

// statusToSWF maps the internal Status encoding onto SWF field 11.
func statusToSWF(s int) int {
	switch s {
	case StatusFailed:
		return 0
	case StatusCompleted:
		return 1
	case StatusCanceled:
		return 5
	}
	return -1
}

func swfHeaderInt(line, key string) (int, bool) {
	rest := strings.TrimLeft(line, "; \t")
	if !strings.HasPrefix(rest, key) {
		return 0, false
	}
	rest = strings.TrimPrefix(rest, key)
	rest = strings.TrimLeft(rest, ": \t")
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, false
	}
	return v, true
}

// WriteSWF writes the trace in Standard Workload Format, including a
// MaxProcs header, so generated traces can be consumed by other SWF tools.
// The completion status column carries each job's Status, so statuses
// round-trip through a write/parse cycle.
func WriteSWF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; SWF trace %s\n", t.Name)
	fmt.Fprintf(bw, "; MaxProcs: %d\n", t.CPUs)
	fmt.Fprintf(bw, "; MaxJobs: %d\n", len(t.Jobs))
	for _, j := range t.Jobs {
		// job submit wait run procs avgcpu mem reqprocs reqtime reqmem
		// status uid gid exe queue partition prevjob thinktime
		if _, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 %d %d -1 -1 -1 -1 -1 -1\n",
			j.ID, int64(j.Submit), int64(j.Runtime+0.5), j.Procs, j.Procs,
			int64(j.ReqTime+0.5), statusToSWF(j.Status), j.User); err != nil {
			return err
		}
	}
	return bw.Flush()
}
